// Real-network analogue of Table 4.1: latency of a raw UDP echo and of
// Circus replicated calls at degree 1..3, measured over real loopback
// sockets through rt::Runtime (wall-clock time, kernel UDP path). The
// paper's VAX-11/750 numbers are printed for context only — a modern
// kernel's loopback is three to four orders of magnitude faster than a
// 1985 Ethernet — the point of this bench is the *shape*: Circus degree
// 1 costs a small multiple of a bare UDP exchange, and each added
// member a roughly constant increment, on real sockets as in the
// simulator.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/process.h"
#include "src/obs/metrics.h"
#include "src/rt/runtime.h"

namespace {

using circus::Bytes;
using circus::StatusOr;
using circus::core::ModuleNumber;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::core::TroupeId;
using circus::net::DatagramSocket;
using circus::net::NetAddress;
using circus::rt::Runtime;
using circus::sim::Duration;
using circus::sim::Task;

using circus::bench::SampleStats;
using circus::bench::Summarize;

// ------------------------------------------------------- raw UDP echo --

Task<void> UdpEchoServer(DatagramSocket* socket, int calls) {
  for (int i = 0; i < calls; ++i) {
    circus::net::Datagram d = co_await socket->Receive();
    socket->SendRaw(d.source, std::move(d.payload));
  }
}

Task<void> UdpEchoClient(Runtime* runtime, DatagramSocket* socket,
                         NetAddress server, int calls, int payload_bytes,
                         std::vector<double>* out, bool* done) {
  const Bytes payload(static_cast<size_t>(payload_bytes), 0x5A);
  for (int i = 0; i < calls; ++i) {
    const circus::sim::TimePoint t0 = runtime->loop().WallNow();
    circus::Status sent = co_await socket->Send(server, payload);
    CIRCUS_CHECK(sent.ok());
    co_await socket->Receive();
    out->push_back((runtime->loop().WallNow() - t0).ToMillisF());
  }
  *done = true;
}

SampleStats RunRawUdpEcho(int calls, int payload_bytes) {
  Runtime runtime;
  circus::sim::Host* client_host = runtime.AddHost("client");
  circus::sim::Host* server_host = runtime.AddHost("server");
  DatagramSocket client(&runtime.fabric(), client_host, 0);
  DatagramSocket server(&runtime.fabric(), server_host, 0);

  std::vector<double> samples;
  bool done = false;
  server_host->Spawn(UdpEchoServer(&server, calls));
  client_host->Spawn(UdpEchoClient(&runtime, &client,
                                   server.local_address(), calls,
                                   payload_bytes, &samples, &done));
  CIRCUS_CHECK(runtime.RunUntil([&done] { return done; },
                                Duration::Seconds(60)));
  return Summarize(samples);
}

// ------------------------------------------------ Circus echo, degree n --

Task<void> CircusEchoClient(Runtime* runtime, RpcProcess* process,
                            Troupe troupe, ModuleNumber module, int calls,
                            int payload_bytes, std::vector<double>* out,
                            bool* done) {
  const ThreadId thread = process->NewRootThread();
  const Bytes args(static_cast<size_t>(payload_bytes), 0x5A);
  for (int i = 0; i < calls; ++i) {
    const circus::sim::TimePoint t0 = runtime->loop().WallNow();
    StatusOr<Bytes> r =
        co_await process->Call(thread, troupe, module, 0, args);
    CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    out->push_back((runtime->loop().WallNow() - t0).ToMillisF());
  }
  *done = true;
}

SampleStats RunCircusEchoReal(int degree, int calls, int payload_bytes,
                              circus::obs::MetricsRegistry::Snapshot* snap) {
  Runtime runtime;

  Troupe troupe;
  troupe.id = TroupeId{static_cast<uint64_t>(100 + degree)};
  std::vector<std::unique_ptr<RpcProcess>> members;
  ModuleNumber module = 0;
  for (int i = 0; i < degree; ++i) {
    circus::sim::Host* host =
        runtime.AddHost("member" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&runtime.fabric(), host, 0);
    module = process->ExportModule("echo");
    process->ExportProcedure(
        module, 0,
        [](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
          co_return Bytes(args);
        });
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    members.push_back(std::move(process));
  }

  circus::sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);

  std::vector<double> samples;
  bool done = false;
  client_host->Spawn(CircusEchoClient(&runtime, &client, troupe, module,
                                      calls, payload_bytes, &samples,
                                      &done));
  CIRCUS_CHECK(runtime.RunUntil([&done] { return done; },
                                Duration::Seconds(120)));
  if (snap != nullptr) {
    *snap = runtime.metrics().Snap(runtime.now().nanos());
  }
  return Summarize(samples);
}

void PrintRow(circus::bench::BenchReport& report, const char* label,
              const SampleStats& s, double paper_real_ms) {
  std::printf("%-8s %6zu %10.4f %10.4f %10.4f %10.4f   | %8.1f\n", label,
              s.count, s.mean, s.min, s.p99, s.max, paper_real_ms);
  report.AddRow("realnet")
      .Set("degree", label)
      .Set("calls", static_cast<uint64_t>(s.count))
      .Set("mean_ms", s.mean)
      .Set("min_ms", s.min)
      .Set("p99_ms", s.p99)
      .Set("max_ms", s.max)
      .Set("paper_real_ms", paper_real_ms);
}

// Protocol-health companion to each latency row: what the runtime's
// MetricsRegistry saw during the run (retransmissions, probe rounds,
// the collator wait distribution, loop wakeups). The same instruments a
// live circus_node exposes through its `metrics` endpoint.
void AddMetricsRow(circus::bench::BenchReport& report, const char* label,
                   const circus::obs::MetricsRegistry::Snapshot& snap) {
  auto counter = [&snap](const char* name) -> uint64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  circus::obs::HistogramStats wait;
  if (auto it = snap.histograms.find("rpc.collator_wait_ms");
      it != snap.histograms.end()) {
    wait = it->second;
  }
  report.AddRow("realnet_metrics")
      .Set("degree", label)
      .Set("retransmits", counter("msg.retransmits"))
      .Set("probe_rounds", counter("msg.probe_rounds"))
      .Set("duplicates_suppressed", counter("msg.duplicates_suppressed"))
      .Set("loop_wakeups", counter("rt.loop.wakeups"))
      .Set("socket_backpressure", counter("rt.socket.backpressure"))
      .Set("collator_wait_count", wait.count)
      .Set("collator_wait_mean_ms", wait.mean)
      .Set("collator_wait_p50_ms", wait.p50)
      .Set("collator_wait_p90_ms", wait.p90)
      .Set("collator_wait_p99_ms", wait.p99);
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("realnet", argc, argv);
  const int kCalls = report.Calls(200, 20);
  const int kPayload = 64;
  report.Note("calls", kCalls);
  report.Note("payload_bytes", kPayload);
  report.Note("transport", "real loopback UDP (rt::Runtime)");

  std::printf("Table 4.1 over real loopback UDP "
              "(ms per call, %d-call average, %d-byte payload)\n",
              kCalls, kPayload);
  std::printf("%-8s %6s %10s %10s %10s %10s   | %8s\n", "degree", "calls",
              "mean", "min", "p99", "max", "real*");
  std::printf("%60s | (* = paper, VAX-11/750 Ethernet)\n", "");

  PrintRow(report, "(UDP)", RunRawUdpEcho(kCalls, kPayload), 26.5);
  constexpr double kPaperReal[] = {48.0, 58.0, 69.4};
  for (int n = 1; n <= 3; ++n) {
    char label[8];
    std::snprintf(label, sizeof(label), "%d", n);
    circus::obs::MetricsRegistry::Snapshot snap;
    PrintRow(report, label, RunCircusEchoReal(n, kCalls, kPayload, &snap),
             kPaperReal[n - 1]);
    AddMetricsRow(report, label, snap);
  }
  return 0;
}
