// Reproduces the Section 4.4.2 theoretical analysis: with an efficient
// multicast implementation and exponentially distributed round-trip
// times, the expected time of a replicated call grows as H_n (i.e.
// logarithmically) with troupe size, whereas simulating multicast with
// successive point-to-point sendmsg operations grows linearly.
//
// Three columns per troupe size:
//  * closed form r*H_n (Theorem 4.3);
//  * measured multicast call latency over the protocol stack (zero
//    syscall cost, exponential per-packet delays with mean r/2 per
//    direction);
//  * measured point-to-point call latency under the 4.2BSD cost model
//    (sendmsg-dominated, linear — the Circus implementation's regime).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/avail/analysis.h"
#include "src/common/check.h"
#include "src/core/process.h"
#include "src/net/world.h"

using circus::Bytes;
using circus::StatusOr;
using circus::core::ModuleNumber;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::SyscallCostModel;
using circus::sim::Task;

namespace {

// Mean one-way packet latency; the analysis' r (mean round trip) is 2x.
constexpr double kOneWayMeanMs = 5.0;

double MeasureCallLatency(bool multicast, int replication, int calls) {
  World world(3000 + replication + (multicast ? 100 : 0),
              multicast ? SyscallCostModel::Free()
                        : SyscallCostModel::Berkeley42Bsd());
  circus::net::FaultPlan plan;
  plan.base_delay = Duration::Zero();
  plan.mean_extra_delay = Duration::MillisF(kOneWayMeanMs);
  world.network().set_default_fault_plan(plan);

  Troupe troupe;
  troupe.id = circus::core::TroupeId{88};
  const circus::net::HostAddress group = circus::net::MakeMulticastAddress(1);
  std::vector<std::unique_ptr<RpcProcess>> members;
  for (int i = 0; i < replication; ++i) {
    circus::sim::Host* host = world.AddHost("srv" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    const ModuleNumber module = process->ExportModule("echo");
    process->ExportProcedure(
        module, 0,
        [](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
          co_return args;
        });
    process->SetTroupeId(troupe.id);
    if (multicast) {
      process->JoinMulticastGroup(group);
    }
    troupe.members.push_back(process->module_address(module));
    members.push_back(std::move(process));
  }
  circus::sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8000);

  double total_ms = 0;
  bool done = false;
  auto workload = [](RpcProcess* c, Troupe t, bool mc,
                     circus::net::HostAddress g, int n, double* out,
                     bool* flag) -> Task<void> {
    const circus::core::ThreadId thread = c->NewRootThread();
    circus::core::CallOptions opts;
    if (mc) {
      opts.multicast_group = g;
    }
    for (int i = 0; i < n; ++i) {
      const circus::sim::TimePoint t0 = c->host()->executor().now();
      StatusOr<Bytes> r =
          co_await c->Call(thread, t, 0, 0, Bytes(8, 'm'), opts);
      CIRCUS_CHECK(r.ok());
      *out += (c->host()->executor().now() - t0).ToMillisF();
    }
    *flag = true;
  };
  world.executor().Spawn(
      workload(&client, troupe, multicast, group, calls, &total_ms, &done));
  world.RunFor(Duration::Seconds(3600));
  CIRCUS_CHECK(done);
  return total_ms / calls;
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("multicast_analysis", argc, argv);
  const int kCalls = report.Calls(150, 15);
  report.Note("calls", kCalls);
  std::printf("Section 4.4.2: multicast vs point-to-point replicated "
              "calls (ms per call)\n");
  std::printf("%-7s %14s %14s %16s\n", "n", "r*H_n (theory)",
              "multicast", "point-to-point");
  const double r = 2 * kOneWayMeanMs;  // mean round trip
  std::vector<double> multicast_series;
  std::vector<double> p2p_series;
  const std::vector<int> degrees =
      report.quick() ? std::vector<int>{1, 2, 12}
                     : std::vector<int>{1, 2, 3, 4, 6, 8, 12};
  for (int n : degrees) {
    const double theory = circus::avail::ExpectedMaxOfExponentials(n, r);
    const double mc = MeasureCallLatency(/*multicast=*/true, n, kCalls);
    const double pp = MeasureCallLatency(/*multicast=*/false, n, kCalls);
    multicast_series.push_back(mc);
    p2p_series.push_back(pp);
    std::printf("%-7d %14.1f %14.1f %16.1f\n", n, theory, mc, pp);
    report.AddRow("multicast_vs_p2p")
        .Set("n", n)
        .Set("theory_ms", theory)
        .Set("multicast_ms", mc)
        .Set("p2p_ms", pp);
  }
  std::printf(
      "\nshape check: multicast 12-member/1-member latency ratio = %.2f "
      "(H_12 = %.2f),\n             point-to-point ratio = %.2f "
      "(linear would be ~12)\n",
      multicast_series.back() / multicast_series.front(),
      circus::avail::HarmonicNumber(12),
      p2p_series.back() / p2p_series.front());
  return 0;
}
