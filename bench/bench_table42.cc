// Reproduces Table 4.2: CPU time for the Berkeley 4.2BSD system calls
// used in Circus. In this reproduction the measured costs are the
// simulator's cost model inputs, so this bench (a) prints the model
// beside the paper's measurements and (b) verifies, by running charged
// operations on a simulated host, that each syscall charges exactly its
// modelled cost — i.e. that the substrate the other benches stand on is
// calibrated as claimed.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/net/world.h"
#include "src/sim/syscall.h"
#include "tests/test_util.h"

using circus::sim::Duration;
using circus::sim::Syscall;
using circus::sim::SyscallCostModel;
using circus::sim::Task;

namespace {

struct Row {
  Syscall syscall;
  double paper_ms;
  const char* description;
};

constexpr Row kRows[] = {
    {Syscall::kSendMsg, 8.1, "send datagram"},
    {Syscall::kRecvMsg, 2.8, "receive datagram"},
    {Syscall::kSelect, 1.8, "inquire if datagram has arrived"},
    {Syscall::kSetITimer, 1.2, "start interval timer"},
    {Syscall::kGetTimeOfDay, 0.7, "get time of day"},
    {Syscall::kSigBlock, 0.4, "mask software interrupts"},
};

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("table42", argc, argv);
  const SyscallCostModel model = SyscallCostModel::Berkeley42Bsd();
  circus::net::World world(1, model);
  circus::sim::Host* host = world.AddHost("vax");

  std::printf("Table 4.2: CPU time for Berkeley 4.2BSD system calls used "
              "in Circus\n");
  std::printf("%-14s %10s %10s %10s  %s\n", "system call", "model(ms)",
              "charged", "paper(ms)", "description");
  for (const Row& row : kRows) {
    // Charge the syscall 100 times on the host and measure the per-call
    // CPU attributed to it.
    const circus::sim::CpuStats before = host->cpu();
    circus::testing::RunTask(world.executor(),
                             [](circus::sim::Host* h, Syscall s) -> Task<void> {
                               for (int i = 0; i < 100; ++i) {
                                 co_await h->DoSyscall(s);
                               }
                             }(host, row.syscall));
    const circus::sim::CpuStats used = host->cpu() - before;
    const double charged_ms = used.time(row.syscall).ToMillisF() / 100.0;
    std::printf("%-14s %10.1f %10.1f %10.1f  %s\n",
                std::string(SyscallName(row.syscall)).c_str(),
                model.cost(row.syscall).ToMillisF(), charged_ms,
                row.paper_ms, row.description);
    report.AddRow("table42")
        .Set("syscall", std::string(SyscallName(row.syscall)))
        .Set("model_ms", model.cost(row.syscall).ToMillisF())
        .Set("charged_ms", charged_ms)
        .Set("paper_ms", row.paper_ms);
  }
  return 0;
}
