// Open-loop load harness (EXPERIMENTS.md E20): Poisson arrivals of
// replicated echo calls against a troupe of 1..3 members on the
// calibrated 4.2BSD testbed, swept across offered rates that straddle
// the client-CPU saturation knee (~50 calls/s at degree 1 down to ~20
// at degree 3 — dominated by the 8.1/2.8 ms sendmsg/recvmsg kernel
// costs per segment, plus the 2.9+3n ms user-mode stub). Unlike the
// closed-loop Table 4.1 benches, arrivals do not wait for completions:
// each arrival spawns its own client coroutine, so latency explodes at
// the knee instead of throughput merely flattening. A LatencyAttributor
// on the world's event bus decomposes the two endpoint rates of each
// sweep into per-stage percentiles, showing *where* the queueing lives:
// the client-side stages (marshal, request fanout, reply collation) that
// all serialize on the one client CPU, while server stages stay flat.
//
// A second, wall-clock variant drives the same open-loop workload
// through rt::Runtime over real loopback sockets at one modest fixed
// rate. Its table is named `rt_wallclock` so check_bench_trend.sh skips
// it (real-kernel timings are not comparable across runs); the sim
// tables are deterministic per seed and are trend-gated.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/msg/segment.h"
#include "src/net/world.h"
#include "src/obs/latency.h"
#include "src/obs/util.h"
#include "src/rt/runtime.h"
#include "src/sim/random.h"

namespace {

using circus::Bytes;
using circus::StatusOr;
using circus::core::ModuleNumber;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::core::TroupeId;
using circus::obs::LatencyAttributor;
using circus::obs::Stage;
using circus::rt::Runtime;
using circus::sim::Duration;
using circus::sim::Task;
using circus::sim::TimePoint;

constexpr int kPayloadBytes = 16;  // single-segment call and return
// Open-loop shedding bound: arrivals past this many in-flight calls are
// dropped (counted, not latency-sampled), so a saturated sweep point
// models a finite listen queue instead of unbounded sim memory.
constexpr int kMaxOutstanding = 256;

struct LoadCounters {
  int outstanding = 0;
  int completed = 0;
  int shed = 0;
  bool arrivals_done = false;
  TimePoint last_completion;
  std::vector<double> latency_ms;
};

// ------------------------------------------------------- sim variant --

Task<void> SimCallOnce(RpcProcess* client, Troupe troupe,
                       ModuleNumber module, ThreadId thread, Bytes args,
                       LoadCounters* counters) {
  const TimePoint t0 = client->host()->executor().now();
  StatusOr<Bytes> r = co_await client->Call(thread, troupe, module, 0, args);
  CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  const TimePoint t1 = client->host()->executor().now();
  counters->latency_ms.push_back((t1 - t0).ToMillisF());
  counters->last_completion = t1;
  --counters->outstanding;
  ++counters->completed;
}

Task<void> SimArrivalLoop(RpcProcess* client, Troupe troupe,
                          ModuleNumber module, int arrivals,
                          Duration mean_gap, circus::sim::Rng rng,
                          LoadCounters* counters) {
  circus::sim::Host* host = client->host();
  const Bytes args(static_cast<size_t>(kPayloadBytes), 0x42);
  for (int i = 0; i < arrivals; ++i) {
    co_await host->SleepFor(rng.Exponential(mean_gap));
    if (counters->outstanding >= kMaxOutstanding) {
      ++counters->shed;
      continue;
    }
    ++counters->outstanding;
    const ThreadId thread = client->NewRootThread();
    host->Spawn(SimCallOnce(client, troupe, module, thread, args, counters));
  }
  counters->arrivals_done = true;
}

struct LoadResult {
  double offered_per_sec = 0;
  double achieved_per_sec = 0;
  int completed = 0;
  int shed = 0;
  circus::bench::SampleStats latency;  // ms
  uint64_t retransmits = 0;
  // Final per-resource USE readings for this sweep point (E21).
  std::vector<circus::obs::ResourceStats> util;
};

// Registers the two process-global allocation resources on a monitor.
// The probes baseline at registration, so the totals they report are
// scoped to this sweep point even though the counters are global.
void AddAllocResources(circus::obs::UtilizationMonitor* monitor) {
  monitor->AddResource(
      "alloc.marshal",
      [prev = circus::marshal::GlobalBufferStats()](int64_t) mutable {
        circus::obs::ResourceSample sample;
        const circus::marshal::BufferStats now =
            circus::marshal::GlobalBufferStats();
        sample.ops = now.buffers - prev.buffers;
        sample.bytes = now.bytes - prev.bytes;
        prev = now;
        return sample;
      });
  monitor->AddResource(
      "msg.segment",
      [prev = circus::msg::GlobalSegmentStats()](int64_t) mutable {
        circus::obs::ResourceSample sample;
        const circus::msg::SegmentStats now =
            circus::msg::GlobalSegmentStats();
        sample.ops = now.segments - prev.segments;
        sample.bytes = now.bytes - prev.bytes;
        prev = now;
        return sample;
      });
}

LoadResult RunSimLoad(int members, double rate_per_sec, double window_s,
                      LatencyAttributor* attributor) {
  circus::net::World world(
      42000 + members * 1000 + static_cast<int>(rate_per_sec),
      circus::sim::SyscallCostModel::Berkeley42Bsd());
  world.network().set_default_fault_plan(circus::bench::TestbedFaultPlan());
  attributor->Attach(&world.bus());

  circus::core::RpcOptions options;
  options.client_user_cost_base = circus::bench::kClientUserBase;
  options.client_user_cost_per_member = circus::bench::kClientUserPerMember;
  options.server_user_cost = circus::bench::kServerUser;
  // Past the knee the client's own CPU queue (kMaxOutstanding calls x
  // up to ~50 ms of serialized per-call CPU) delays ack processing for
  // many seconds. With the default 300 ms retransmit timer every queued
  // call would retransmit (8.1 ms kernel CPU each) long before its ack
  // is processed — a congestion collapse that ends in spurious
  // CRASH_DETECTED. Stretch the timers so overload reads as latency,
  // not as a crash; the no-loss testbed never needs the fast timers.
  options.endpoint.retransmit_interval = Duration::Seconds(10);
  options.endpoint.max_retransmits = 40;
  options.endpoint.probe_interval = Duration::Seconds(5);
  options.endpoint.max_silent_probes = 20;
  options.multicast_fallback = Duration::Seconds(10);

  Troupe troupe;
  troupe.id = TroupeId{20};
  std::vector<std::unique_ptr<RpcProcess>> servers;
  ModuleNumber module = 0;
  for (int i = 0; i < members; ++i) {
    circus::sim::Host* host = world.AddHost("srv" + std::to_string(i));
    auto process = std::make_unique<RpcProcess>(&world.network(), host,
                                                9000, options);
    module = process->ExportModule("echo");
    process->ExportProcedure(
        module, 0,
        [](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
          co_return Bytes(args);
        });
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    servers.push_back(std::move(process));
  }

  circus::sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8000, options);

  // USE telemetry for this sweep point: every host CPU, the executor
  // run queue, the simulated network, and the allocation hot spots —
  // sampled once per RunFor step below, entirely on virtual time.
  circus::obs::UtilizationMonitor monitor;
  monitor.SetBus(&world.bus());
  monitor.SetMetrics(&world.metrics());
  world.WireUtilization(&monitor);
  AddAllocResources(&monitor);
  monitor.Sample(world.now().nanos());  // baseline, zero-length window

  const int arrivals = static_cast<int>(rate_per_sec * window_s + 0.5);
  const Duration mean_gap = Duration::SecondsF(1.0 / rate_per_sec);
  LoadCounters counters;
  const TimePoint t0 = world.now();
  client_host->Spawn(SimArrivalLoop(&client, troupe, module, arrivals,
                                    mean_gap, world.rng().Fork(),
                                    &counters));
  // Run the arrival window plus a drain budget generous enough for a
  // full shed queue (kMaxOutstanding calls x ~12 ms serialized client
  // CPU) to clear.
  for (int spins = 0;
       !(counters.arrivals_done && counters.outstanding == 0); ++spins) {
    CIRCUS_CHECK_MSG(spins < 10000, "open-loop load did not drain");
    world.RunFor(Duration::Seconds(1));
    monitor.Sample(world.now().nanos());
  }

  LoadResult r;
  r.offered_per_sec = rate_per_sec;
  r.completed = counters.completed;
  r.shed = counters.shed;
  CIRCUS_CHECK(counters.completed + counters.shed == arrivals);
  const double busy_s = (counters.last_completion - t0).ToSecondsF();
  r.achieved_per_sec =
      busy_s > 0 ? static_cast<double>(counters.completed) / busy_s : 0;
  r.latency = circus::bench::Summarize(std::move(counters.latency_ms));
  r.retransmits = attributor->retransmits();
  r.util = monitor.resources();
  attributor->Detach();  // the caller's attributor outlives this World
  return r;
}

// -------------------------------------------------------- rt variant --

Task<void> RtCallOnce(Runtime* runtime, RpcProcess* client, Troupe troupe,
                      ModuleNumber module, ThreadId thread, Bytes args,
                      LoadCounters* counters) {
  const TimePoint t0 = runtime->loop().WallNow();
  StatusOr<Bytes> r = co_await client->Call(thread, troupe, module, 0, args);
  CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  counters->latency_ms.push_back(
      (runtime->loop().WallNow() - t0).ToMillisF());
  --counters->outstanding;
  ++counters->completed;
}

Task<void> RtArrivalLoop(Runtime* runtime, RpcProcess* client,
                         Troupe troupe, ModuleNumber module, int arrivals,
                         Duration mean_gap, circus::sim::Rng rng,
                         LoadCounters* counters) {
  circus::sim::Host* host = client->host();
  const Bytes args(static_cast<size_t>(kPayloadBytes), 0x42);
  for (int i = 0; i < arrivals; ++i) {
    co_await host->SleepFor(rng.Exponential(mean_gap));
    if (counters->outstanding >= kMaxOutstanding) {
      ++counters->shed;
      continue;
    }
    ++counters->outstanding;
    const ThreadId thread = client->NewRootThread();
    host->Spawn(RtCallOnce(runtime, client, troupe, module, thread, args,
                           counters));
  }
  counters->arrivals_done = true;
}

LoadResult RunRtLoad(int members, double rate_per_sec, int arrivals,
                     LatencyAttributor* attributor) {
  Runtime runtime;
  attributor->Attach(&runtime.bus());

  Troupe troupe;
  troupe.id = TroupeId{static_cast<uint64_t>(300 + members)};
  std::vector<std::unique_ptr<RpcProcess>> servers;
  ModuleNumber module = 0;
  for (int i = 0; i < members; ++i) {
    circus::sim::Host* host =
        runtime.AddHost("member" + std::to_string(i));
    auto process = std::make_unique<RpcProcess>(&runtime.fabric(), host, 0);
    module = process->ExportModule("echo");
    process->ExportProcedure(
        module, 0,
        [](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
          co_return Bytes(args);
        });
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    servers.push_back(std::move(process));
  }

  circus::sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);

  const Duration mean_gap = Duration::SecondsF(1.0 / rate_per_sec);
  LoadCounters counters;
  const TimePoint wall0 = runtime.loop().WallNow();
  client_host->Spawn(RtArrivalLoop(&runtime, &client, troupe, module,
                                   arrivals, mean_gap,
                                   circus::sim::Rng(4242), &counters));
  CIRCUS_CHECK(runtime.RunUntil(
      [&counters] {
        return counters.arrivals_done && counters.outstanding == 0;
      },
      Duration::Seconds(120)));

  LoadResult r;
  r.offered_per_sec = rate_per_sec;
  r.completed = counters.completed;
  r.shed = counters.shed;
  const double busy_s = (runtime.loop().WallNow() - wall0).ToSecondsF();
  r.achieved_per_sec =
      busy_s > 0 ? static_cast<double>(counters.completed) / busy_s : 0;
  r.latency = circus::bench::Summarize(std::move(counters.latency_ms));
  r.retransmits = attributor->retransmits();
  attributor->Detach();
  return r;
}

// ------------------------------------------------------------ report --

void AddLoadRow(circus::bench::BenchReport& report, const char* table,
                int members, const LoadResult& r) {
  std::printf("%-8d %10.0f %12.1f %10d %8d %10.2f %10.2f %10.2f %8llu\n",
              members, r.offered_per_sec, r.achieved_per_sec, r.completed,
              r.shed, r.latency.p50, r.latency.p99, r.latency.max,
              static_cast<unsigned long long>(r.retransmits));
  report.AddRow(table)
      .Set("members", members)
      .Set("offered_per_sec", r.offered_per_sec)
      .Set("achieved_per_sec", r.achieved_per_sec)
      .Set("completed", r.completed)
      .Set("shed", r.shed)
      .Set("p50_ms", r.latency.p50)
      .Set("p99_ms", r.latency.p99)
      .Set("max_ms", r.latency.max)
      .Set("retransmits", r.retransmits);
}

void AddStageRows(circus::bench::BenchReport& report, int members,
                  double rate_per_sec, const LatencyAttributor& att) {
  for (int s = 0; s < circus::obs::kStageCount; ++s) {
    const circus::obs::Histogram& h =
        att.StageHistogramUs(static_cast<Stage>(s));
    if (h.count() == 0) {
      continue;
    }
    const double share =
        att.end_to_end_us().sum() > 0 ? h.sum() / att.end_to_end_us().sum()
                                      : 0;
    report.AddRow("sim_stages")
        .Set("members", members)
        .Set("offered_per_sec", rate_per_sec)
        .Set("stage", circus::obs::StageName(static_cast<Stage>(s)))
        .Set("count", h.count())
        .Set("p50_us", h.Percentile(0.50))
        .Set("p99_us", h.Percentile(0.99))
        .Set("share_pct", share * 100.0);
  }
}

void AddUtilRows(circus::bench::BenchReport& report, int members,
                 const LoadResult& r) {
  for (const circus::obs::ResourceStats& res : r.util) {
    report.AddRow("sim_util")
        .Set("members", members)
        .Set("offered_per_sec", r.offered_per_sec)
        .Set("resource", res.name)
        .Set("busy_mean_pct", res.utilization_mean() * 100.0)
        .Set("busy_peak_pct", res.utilization_peak * 100.0)
        .Set("queue_peak", res.queue_peak)
        .Set("ops_total", res.ops_total)
        .Set("bytes_total", res.bytes_total)
        .Set("errors_total", res.errors_total)
        .Set("level", circus::obs::SaturationLevelName(res.level));
  }
}

// E21: names the resource that binds each troupe size at its capacity
// knee — the first sweep rate the troupe can no longer keep up with.
// The binding resource is the busiest (time-weighted mean) busy-share
// resource at that rate; the runner-up shows the headroom everywhere
// else.
void AttributeKnee(circus::bench::BenchReport& report, int members,
                   const std::vector<LoadResult>& sweep) {
  // Overload means queueing divergence, not just a throughput shortfall
  // — achieved/s alone is noisy over a short window (Poisson gaps read
  // as "missing" throughput at low rates). Require the latency
  // signature too: p50 well above the unloaded sweep point.
  const double base_p50 = sweep.front().latency.p50;
  const LoadResult* knee = nullptr;
  for (const LoadResult& r : sweep) {
    const bool shortfall = r.achieved_per_sec < 0.9 * r.offered_per_sec;
    const bool diverged = r.latency.p50 > 3.0 * base_p50;
    if ((shortfall && diverged) || r.shed > 0) {
      knee = &r;
      break;
    }
  }
  if (knee == nullptr) {
    std::printf("  n=%d: no knee inside the sweep (capacity above "
                "%.0f/s)\n",
                members, sweep.back().offered_per_sec);
    return;
  }
  const circus::obs::ResourceStats* binding = nullptr;
  const circus::obs::ResourceStats* runner_up = nullptr;
  for (const circus::obs::ResourceStats& res : knee->util) {
    if (res.util_weight_ns <= 0) {
      continue;  // queue-graded resource: no busy share to rank
    }
    if (binding == nullptr ||
        res.utilization_mean() > binding->utilization_mean()) {
      runner_up = binding;
      binding = &res;
    } else if (runner_up == nullptr ||
               res.utilization_mean() > runner_up->utilization_mean()) {
      runner_up = &res;
    }
  }
  if (binding == nullptr) {
    return;
  }
  std::printf("  n=%d: knee at %.0f offered/s (capacity %.1f/s) — "
              "bound by %s at %.1f%% busy (next: %s %.1f%%)\n",
              members, knee->offered_per_sec, knee->achieved_per_sec,
              binding->name.c_str(), binding->utilization_mean() * 100.0,
              runner_up ? runner_up->name.c_str() : "-",
              runner_up ? runner_up->utilization_mean() * 100.0 : 0.0);
  report.AddRow("sim_knee")
      .Set("members", members)
      .Set("knee_offered_per_sec", knee->offered_per_sec)
      .Set("capacity_per_sec", knee->achieved_per_sec)
      .Set("binding_resource", binding->name)
      .Set("binding_busy_pct", binding->utilization_mean() * 100.0)
      .Set("runner_up_resource", runner_up ? runner_up->name : "-")
      .Set("runner_up_busy_pct",
           runner_up ? runner_up->utilization_mean() * 100.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("throughput", argc, argv);
  // Sweep rates straddling the client-CPU knee at every troupe size
  // (capacity ~50/s at n=1 down to ~20/s at n=3).
  const std::vector<double> kRates = {10, 20, 40, 80, 160};
  const double window_s = report.quick() ? 1.5 : 6.0;
  const int rt_arrivals = report.Calls(400, 100);
  const double rt_rate = 200.0;
  report.Note("window_s", window_s);
  report.Note("payload_bytes", kPayloadBytes);
  report.Note("max_outstanding", kMaxOutstanding);

  std::printf("E20: open-loop Poisson load, replicated echo troupe "
              "(%.1f s window, %d-byte payload)\n\n",
              window_s, kPayloadBytes);
  std::printf("simulated 4.2BSD testbed "
              "(client-CPU capacity ~50/s at n=1, ~20/s at n=3):\n");
  std::printf("%-8s %10s %12s %10s %8s %10s %10s %10s %8s\n", "members",
              "offered/s", "achieved/s", "completed", "shed", "p50(ms)",
              "p99(ms)", "max(ms)", "rexmit");
  std::vector<std::vector<LoadResult>> sweeps;
  for (int members = 1; members <= 3; ++members) {
    std::vector<LoadResult> sweep;
    for (size_t i = 0; i < kRates.size(); ++i) {
      LatencyAttributor attributor;
      LoadResult r = RunSimLoad(members, kRates[i], window_s, &attributor);
      AddLoadRow(report, "sim_load", members, r);
      AddUtilRows(report, members, r);
      // Stage breakdown at the sweep endpoints: idle vs saturated.
      if (i == 0 || i + 1 == kRates.size()) {
        AddStageRows(report, members, kRates[i], attributor);
        if (i + 1 == kRates.size()) {
          std::printf("\n  stage attribution at %.0f/s (saturated):\n",
                      kRates[i]);
          std::string text = attributor.ToString();
          std::printf("%s", text.c_str());
          std::printf("\n");
        }
      }
      sweep.push_back(std::move(r));
    }
    sweeps.push_back(std::move(sweep));
  }

  std::printf("E21: knee attribution (USE telemetry at the first "
              "overloaded rate):\n");
  for (int members = 1; members <= 3; ++members) {
    AttributeKnee(report, members, sweeps[static_cast<size_t>(members - 1)]);
  }
  std::printf("\n");

  std::printf("real loopback UDP (rt::Runtime, wall clock — not "
              "trend-gated):\n");
  std::printf("%-8s %10s %12s %10s %8s %10s %10s %10s %8s\n", "members",
              "offered/s", "achieved/s", "completed", "shed", "p50(ms)",
              "p99(ms)", "max(ms)", "rexmit");
  for (int members = 1; members <= 3; members += 2) {
    LatencyAttributor attributor;
    const LoadResult r =
        RunRtLoad(members, rt_rate, rt_arrivals, &attributor);
    AddLoadRow(report, "rt_wallclock", members, r);
  }
  std::printf("\nthe sim knee tracks the client-CPU capacity line: past "
              "it, achieved/s pins at the\ncapacity while p99 latency "
              "explodes toward the shed bound — and the stage table\n"
              "attributes the growth to the client-side stages (marshal, "
              "request fanout, reply\ncollation), which all serialize on "
              "the one client CPU, while server queue and\nexecute stay "
              "flat.\n");
  return 0;
}
