// Shared scaffolding for the reproduction benches: the simulated
// 4.2BSD/VAX testbed configuration and the echo workloads of Figures
// 4.5-4.7, used by the Table 4.1/4.3 and Figure 4.8 benches.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/process.h"
#include "src/net/socket.h"
#include "src/net/stream.h"
#include "src/net/world.h"
#include "src/obs/json.h"

namespace circus::bench {

// Command-line scaffolding shared by the bench binaries. Flags:
//   --json[=path]  write the run's rows as a structured result file
//                  (default path: BENCH_<name>.json in the working
//                  directory) in addition to the printed table;
//   --quick        cut iteration counts to smoke-test size (used by
//                  scripts/check_bench.sh; callers pick the reduced
//                  counts via Calls()/Quick()).
// The file is written by the destructor, so `return 0` from main
// suffices. Format:
//   {"bench": <name>, "quick": <bool>, "notes": {...},
//    "tables": {<table>: [{row}, ...], ...}}
class BenchReport {
 public:
  BenchReport(std::string name, int argc, char** argv);
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport();

  bool quick() const { return quick_; }
  // Convenience: `full` iterations normally, `quick` under --quick.
  int Calls(int full, int quick) const { return quick_ ? quick : full; }

  // Appends a row to the named table and returns it for filling with
  // Set(). The reference is valid until the next AddRow on that table.
  obs::json::Value& AddRow(const std::string& table);
  // Top-level metadata ("seed", "calls", ...).
  void Note(const std::string& key, obs::json::Value value);

 private:
  std::string name_;
  bool quick_ = false;
  bool write_json_ = false;
  std::string json_path_;
  std::vector<std::string> table_order_;
  std::map<std::string, std::vector<obs::json::Value>> tables_;
  obs::json::Value notes_ = obs::json::Value::Object();
};

// Exact sample statistics for bench tables: sorted-sample percentiles
// (nearest-rank), unlike obs::Histogram's power-of-two bucket
// estimates. Every bench that reports a latency distribution derives
// its row from one of these instead of hand-rolling min/max/mean loops.
struct SampleStats {
  size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

// Nearest-rank percentile over an ascending-sorted sample vector;
// p in [0, 1]. 0 with no samples.
double SortedPercentile(const std::vector<double>& sorted, double p);

// Summarizes `samples` (taken by value: sorted in place).
SampleStats Summarize(std::vector<double> samples);

// Calibration of the simulated testbed against the paper's measurements:
//  * network propagation + interrupt latency per packet (Table 4.1's
//    26.5 ms UDP round trip = 13.3 ms client CPU + 10.9 ms server CPU +
//    ~2 packet flights);
//  * user-mode CPU of the Circus runtime per call (Table 4.1's user
//    column: ~5.9 ms at degree 1, growing ~3-4 ms per extra member).
inline constexpr sim::Duration kPacketDelay = sim::Duration::MillisF(1.15);
inline constexpr sim::Duration kClientUserBase = sim::Duration::MillisF(2.9);
inline constexpr sim::Duration kClientUserPerMember =
    sim::Duration::MillisF(3.0);
inline constexpr sim::Duration kServerUser = sim::Duration::MillisF(2.0);

// Fault plan implementing the calibrated testbed's network: every
// packet delayed by kPacketDelay, no loss. Benches that build their own
// World install this via set_default_fault_plan.
net::FaultPlan TestbedFaultPlan();

struct EchoTimings {
  double real_ms = 0;
  double total_cpu_ms = 0;
  double user_cpu_ms = 0;
  double kernel_cpu_ms = 0;
};

// One row of Table 4.1, measured the same way the paper measured it:
// wall-clock and getrusage-style CPU deltas around a loop of calls,
// averaged.
inline EchoTimings MeasureOnClientHost(net::World& world, sim::Host* client,
                                       int calls,
                                       const std::function<void()>& kick) {
  const sim::TimePoint t0 = world.now();
  const sim::CpuStats cpu0 = client->cpu();
  kick();  // runs the workload to completion (RunFor inside)
  const sim::Duration real = world.now() - t0;
  const sim::CpuStats used = client->cpu() - cpu0;
  EchoTimings t;
  t.real_ms = real.ToMillisF() / calls;
  t.user_cpu_ms = used.user_time.ToMillisF() / calls;
  t.kernel_cpu_ms = used.kernel_time().ToMillisF() / calls;
  t.total_cpu_ms = t.user_cpu_ms + t.kernel_cpu_ms;
  return t;
}

// The Figure 4.5 UDP echo pair: client does sendmsg / alarm / recvmsg /
// alarm; server does recvmsg / sendmsg.
EchoTimings RunUdpEcho(int calls);

// The Figure 4.6 TCP echo pair: connect once, then write/read loop.
EchoTimings RunTcpEcho(int calls);

// The Figure 4.7 Circus echo: a replicated procedure call to an echo
// troupe of `replication` members.
EchoTimings RunCircusEcho(int replication, int calls,
                          sim::CpuStats* client_cpu_out = nullptr);

}  // namespace circus::bench

#endif  // BENCH_BENCH_UTIL_H_
