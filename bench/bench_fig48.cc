// Reproduces Figure 4.8: performance of Circus replicated procedure
// calls as the degree of replication grows, printed as the four series
// (real, total CPU, user CPU, kernel CPU) plus a crude ASCII rendering.
// The paper's observation holds in the reproduction: with multicast
// simulated by successive sendmsg operations, every component of the
// time per call increases linearly with the size of the troupe.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  circus::bench::BenchReport report("fig48", argc, argv);
  const int kCalls = report.Calls(200, 20);
  const int kMaxDegree = report.quick() ? 3 : 5;
  report.Note("calls", kCalls);
  std::vector<circus::bench::EchoTimings> series;
  for (int n = 1; n <= kMaxDegree; ++n) {
    series.push_back(circus::bench::RunCircusEcho(n, kCalls));
  }

  std::printf("Figure 4.8: performance of Circus replicated procedure "
              "calls\n");
  std::printf("%-7s %10s %10s %10s %10s\n", "degree", "real", "total",
              "user", "kernel");
  for (int n = 1; n <= kMaxDegree; ++n) {
    const auto& t = series[n - 1];
    std::printf("%-7d %10.1f %10.1f %10.1f %10.1f\n", n, t.real_ms,
                t.total_cpu_ms, t.user_cpu_ms, t.kernel_cpu_ms);
    report.AddRow("fig48")
        .Set("degree", n)
        .Set("real_ms", t.real_ms)
        .Set("total_cpu_ms", t.total_cpu_ms)
        .Set("user_cpu_ms", t.user_cpu_ms)
        .Set("kernel_cpu_ms", t.kernel_cpu_ms);
  }

  // ASCII plot of real time per call.
  std::printf("\nreal time per call (ms)\n");
  const double max_real = series.back().real_ms;
  for (int n = 1; n <= kMaxDegree; ++n) {
    const int width = static_cast<int>(60.0 * series[n - 1].real_ms /
                                       max_real);
    std::printf("%d | %s %.1f\n", n, std::string(width, '#').c_str(),
                series[n - 1].real_ms);
  }

  // Linearity check: successive increments should be roughly constant.
  std::printf("\nincrement per added member (ms of real time):");
  for (int n = 2; n <= kMaxDegree; ++n) {
    std::printf(" %.1f", series[n - 1].real_ms - series[n - 2].real_ms);
  }
  std::printf("\n(the paper reports 10-20 ms per additional member)\n");
  return 0;
}
