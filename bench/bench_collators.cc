// Section 4.3.4 / 4.3.6 ablation: waiting policies and collators.
// With members whose service times are skewed, the unanimous (wait-all)
// default runs at the pace of the slowest member while first-come runs
// at the pace of the fastest; majority sits between. This bench measures
// replicated-call latency per collation mode, for troupes whose member
// delays are exponentially distributed, plus the buffered-result effect:
// the late members' calls are answered from the server-side buffer
// (execution appears instantaneous to them).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/core/process.h"
#include "src/net/world.h"

using circus::Bytes;
using circus::StatusOr;
using circus::core::CallOptions;
using circus::core::Collation;
using circus::core::ModuleNumber;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;

namespace {

struct LatencyResult {
  double mean_call_ms = 0;
  int watchdog_disagreements = 0;
};

LatencyResult MeasureLatency(Collation collation, bool watchdog,
                             int members, int calls,
                             double mean_service_ms, uint64_t seed) {
  World world(seed, circus::sim::SyscallCostModel::Free());
  Troupe troupe;
  troupe.id = circus::core::TroupeId{66};
  std::vector<std::unique_ptr<RpcProcess>> processes;
  // Per-member deterministic service-time streams.
  auto rngs = std::make_shared<std::vector<circus::sim::Rng>>();
  for (int i = 0; i < members; ++i) {
    rngs->emplace_back(seed * 131 + i);
  }
  for (int i = 0; i < members; ++i) {
    circus::sim::Host* host = world.AddHost("m" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    const ModuleNumber module = process->ExportModule("work");
    const int index = i;
    process->ExportProcedure(
        module, 0,
        [rngs, index, mean_service_ms](
            ServerCallContext& ctx,
            const Bytes& args) -> Task<StatusOr<Bytes>> {
          // Exponentially distributed execution time: replicas compute
          // at different rates (the Section 4.3.4 skew).
          co_await ctx.process->host()->SleepFor(
              (*rngs)[index].Exponential(
                  Duration::MillisF(mean_service_ms)));
          co_return args;
        });
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    processes.push_back(std::move(process));
  }
  circus::sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8000);

  double total_ms = 0;
  auto disagreements = std::make_shared<int>(0);
  bool done = false;
  world.executor().Spawn(
      [](RpcProcess* c, Troupe t, Collation col, bool wd, int n,
         double* out, std::shared_ptr<int> bad, bool* flag) -> Task<void> {
        const circus::core::ThreadId thread = c->NewRootThread();
        CallOptions opts;
        if (wd) {
          // First-come with background verification (Section 4.3.4).
          opts.watchdog = [bad](const circus::Status& verdict) {
            if (!verdict.ok()) {
              ++*bad;
            }
          };
        } else {
          opts.collation = col;
        }
        for (int i = 0; i < n; ++i) {
          const circus::sim::TimePoint t0 = c->host()->executor().now();
          StatusOr<Bytes> r =
              co_await c->Call(thread, t, 0, 0, Bytes(8, 'w'), opts);
          CIRCUS_CHECK(r.ok());
          *out += (c->host()->executor().now() - t0).ToMillisF();
        }
        *flag = true;
      }(&client, troupe, collation, watchdog, calls, &total_ms,
        disagreements, &done));
  world.RunFor(Duration::Seconds(3600));
  CIRCUS_CHECK(done);
  LatencyResult result;
  result.mean_call_ms = total_ms / calls;
  result.watchdog_disagreements = *disagreements;
  return result;
}

const char* CollationName(Collation c) {
  switch (c) {
    case Collation::kUnanimous:
      return "unanimous";
    case Collation::kFirstCome:
      return "first-come";
    case Collation::kMajority:
      return "majority";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("collators", argc, argv);
  const int kCalls = report.Calls(100, 20);
  constexpr double kMeanServiceMs = 20.0;
  report.Note("calls", kCalls);
  std::printf("Sections 4.3.4/4.3.6: waiting policies and collators\n");
  std::printf("(member service times ~ Exp(%.0f ms); ms per call over %d "
              "calls)\n\n",
              kMeanServiceMs, kCalls);
  std::printf("%-9s %12s %12s %12s %12s\n", "members", "unanimous",
              "first-come", "majority", "watchdog");
  const std::vector<int> sizes = report.quick()
                                     ? std::vector<int>{1, 3}
                                     : std::vector<int>{1, 3, 5, 7};
  for (int members : sizes) {
    std::printf("%-9d", members);
    circus::obs::json::Value& row =
        report.AddRow("collation").Set("members", members);
    const char* keys[] = {"unanimous_ms", "first_come_ms", "majority_ms"};
    int column = 0;
    for (Collation c : {Collation::kUnanimous, Collation::kFirstCome,
                        Collation::kMajority}) {
      const double ms =
          MeasureLatency(c, /*watchdog=*/false, members, kCalls,
                         kMeanServiceMs, 2222 + members)
              .mean_call_ms;
      std::printf(" %12.1f", ms);
      row.Set(keys[column++], ms);
    }
    LatencyResult wd =
        MeasureLatency(Collation::kFirstCome, /*watchdog=*/true, members,
                       kCalls, kMeanServiceMs, 2222 + members);
    std::printf(" %12.1f", wd.mean_call_ms);
    row.Set("watchdog_ms", wd.mean_call_ms);
    CIRCUS_CHECK(wd.watchdog_disagreements == 0);  // replicas agree
    std::printf("\n");
  }
  std::printf("\nexpected shape: unanimous tracks E[max] ~ H_n * mean "
              "(slowest member);\nfirst-come tracks E[min] = mean/n "
              "(fastest member); majority sits between\n(the median "
              "order statistic); watchdog matches first-come latency "
              "while still\nverifying every straggler in the "
              "background.\n");
  return 0;
}
