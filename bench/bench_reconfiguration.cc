// Figure 6.3 in vivo: the birth-death availability model validated
// against the running system rather than a Markov chain. A troupe of n
// members lives under continuous fault injection (member machines crash
// with exponential lifetimes, mean 1/lambda) while the Reconfigurer
// sweeps on a period chosen so the mean replacement time is 1/mu; a
// client issues a steady stream of replicated calls and we measure the
// fraction that fail outright (every member dead) against the Equation
// 6.1 prediction for the effective repair rate.
//
// The paper's operational claim reproduced here: replacing crashed
// members fast enough relative to their lifetime keeps a modestly
// replicated troupe effectively always available, and Equation 6.2 tells
// you how fast "fast enough" is.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/avail/analysis.h"
#include "src/binding/client.h"
#include "src/binding/deploy.h"
#include "src/binding/reconfigurer.h"
#include "src/common/check.h"
#include "src/config/parser.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"

using circus::Bytes;
using circus::Status;
using circus::StatusOr;
using circus::core::ModuleNumber;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;

namespace {

struct Member {
  std::unique_ptr<RpcProcess> process;
  ModuleNumber module = 0;
  int64_t counter = 0;
};

struct RunOutcome {
  int calls_ok = 0;
  int calls_failed = 0;
  int members_replaced = 0;
};

RunOutcome RunScenario(int troupe_size, double lifetime_minutes,
                       double sweep_minutes, double run_hours,
                       uint64_t seed) {
  World world(seed, circus::sim::SyscallCostModel::Free());
  auto ring = circus::binding::DeployRingmaster(
      world, world.AddHosts("ring", 1));

  // A generous pool of machines so replacements never run dry.
  const int kMachines = troupe_size + 14;
  circus::config::MachineDatabase database;
  std::map<circus::config::MachineId, circus::sim::Host*> machine_host;
  for (int i = 0; i < kMachines; ++i) {
    circus::sim::Host* host = world.AddHost("mach" + std::to_string(i));
    const circus::config::MachineId id = database.AddMachine(
        {{"name", circus::config::Value("mach" + std::to_string(i))},
         {"memory", circus::config::Value(8.0)}});
    machine_host[id] = host;
  }

  circus::sim::Host* agent_host = world.AddHost("agent");
  RpcProcess agent(&world.network(), agent_host, 8100);
  circus::binding::BindingClient agent_binding(&agent, ring.troupe);
  circus::binding::Reconfigurer reconfigurer(&agent, &agent_binding,
                                             &database);

  std::string vars;
  std::string formula;
  for (int i = 0; i < troupe_size; ++i) {
    const std::string v(1, static_cast<char>('a' + i));
    vars += (i ? ", " : "") + v;
    formula += (i ? " and " : "") + v + ".memory >= 4";
  }
  StatusOr<circus::config::TroupeSpec> spec =
      circus::config::ParseTroupeSpec("troupe (" + vars + ") where " +
                                      formula);
  CIRCUS_CHECK(spec.ok());

  std::vector<std::unique_ptr<Member>> members;
  reconfigurer.Manage(
      "service", std::move(*spec),
      [&](circus::config::MachineId machine)
          -> StatusOr<circus::binding::Reconfigurer::LaunchedMember> {
        auto it = machine_host.find(machine);
        if (it == machine_host.end() || !it->second->up()) {
          return Status(circus::ErrorCode::kUnavailable, "machine down");
        }
        auto member = std::make_unique<Member>();
        member->process = std::make_unique<RpcProcess>(&world.network(),
                                                       it->second, 9000);
        member->module = member->process->ExportModule("service");
        Member* raw = member.get();
        member->process->ExportProcedure(
            member->module, 0,
            [raw](ServerCallContext&,
                  const Bytes&) -> Task<StatusOr<Bytes>> {
              circus::marshal::Writer w;
              w.WriteI64(++raw->counter);
              co_return w.Take();
            });
        member->process->SetStateProvider(member->module, [raw] {
          circus::marshal::Writer w;
          w.WriteI64(raw->counter);
          return w.Take();
        });
        circus::binding::Reconfigurer::LaunchedMember launched;
        launched.process = member->process.get();
        launched.module = member->module;
        launched.accept_state = [raw](const Bytes& state) {
          circus::marshal::Reader r(state);
          raw->counter = r.ReadI64();
        };
        members.push_back(std::move(member));
        return launched;
      });

  RunOutcome outcome;

  // Initial instantiation.
  world.executor().Spawn(
      [](circus::binding::Reconfigurer* r, RunOutcome* out) -> Task<void> {
        StatusOr<circus::binding::ReconfigReport> report =
            co_await r->SweepOnce();
        CIRCUS_CHECK(report.ok());
        out->members_replaced += report->members_added;
      }(&reconfigurer, &outcome));
  world.RunFor(Duration::Seconds(60));

  // Fault injector: crash the machine under a random live member with
  // exponential inter-failure times (rate = troupe_size * lambda, since
  // each of the n members fails at rate lambda). The loop sleeps on its
  // own host so world teardown reaps it.
  circus::sim::Host* injector_host = world.AddHost("injector");
  circus::sim::Rng fault_rng(seed * 13 + 5);
  const Duration mean_between_failures = Duration::SecondsF(
      lifetime_minutes * 60.0 / troupe_size);
  world.executor().Spawn(
      [](circus::sim::Host* self, std::vector<std::unique_ptr<Member>>* pool,
         circus::sim::Rng rng, Duration mean) -> Task<void> {
        while (true) {
          co_await self->SleepFor(rng.Exponential(mean));
          std::vector<circus::sim::Host*> live;
          for (auto& m : *pool) {
            if (m->process->host()->up()) {
              live.push_back(m->process->host());
            }
          }
          if (live.empty()) {
            continue;
          }
          live[rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1)]
              ->Crash();
        }
      }(injector_host, &members, fault_rng.Fork(), mean_between_failures));

  // Repair process: periodic reconfiguration sweeps (host-bound sleep).
  world.executor().Spawn(
      [](circus::sim::Host* self, circus::binding::Reconfigurer* r,
         Duration period, RunOutcome* out) -> Task<void> {
        while (true) {
          co_await self->SleepFor(period);
          StatusOr<circus::binding::ReconfigReport> report =
              co_await r->SweepOnce();
          if (report.ok()) {
            out->members_replaced += report->members_added;
          }
        }
      }(agent_host, &reconfigurer, Duration::SecondsF(sweep_minutes * 60.0),
        &outcome));

  // Client load: one call per (simulated) 30 seconds through a binding
  // cache, counting hard failures (no member reachable / stale beyond
  // repair).
  circus::sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8200);
  circus::binding::BindingClient client_binding(&client, ring.troupe);
  circus::binding::BindingCache cache(&client_binding);
  client.SetClientTroupeResolver(cache.MakeResolver());
  world.executor().Spawn(
      [](RpcProcess* c, circus::binding::BindingCache* cch,
         RunOutcome* out) -> Task<void> {
        while (true) {
          co_await c->host()->SleepFor(Duration::Seconds(30));
          // Fresh membership each attempt: a real client would rebind on
          // stale IDs; polling keeps the load loop simple.
          cch->Invalidate("service");
          StatusOr<Bytes> r = co_await cch->CallByName(
              c, c->NewRootThread(), "service", 0, {});
          if (r.ok()) {
            ++out->calls_ok;
          } else {
            ++out->calls_failed;
          }
        }
      }(&client, &cache, &outcome));

  world.RunFor(Duration::SecondsF(run_hours * 3600.0));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("reconfiguration", argc, argv);
  const double run_hours = report.quick() ? 0.5 : 3.0;
  report.Note("run_hours", run_hours);
  std::printf("Figure 6.3 in vivo: troupe under continuous crash/replace "
              "churn\n");
  std::printf("(member lifetime 30 simulated minutes; reconfiguration "
              "sweep period varies;\n %.1f simulated hours of load, one "
              "call per 30 s)\n\n", run_hours);
  std::printf("%-3s %-12s %10s %10s %10s %12s\n", "n", "sweep(min)",
              "calls ok", "failed", "replaced", "pred. avail");
  for (int n : {2, 3}) {
    for (double sweep_minutes : {3.0, 10.0}) {
      if (report.quick() && (n > 2 || sweep_minutes > 3.0)) {
        continue;  // one scenario is enough for a smoke run
      }
      RunOutcome out = RunScenario(n, /*lifetime_minutes=*/30.0,
                                   sweep_minutes, run_hours,
                                   /*seed=*/7700 + n * 10 +
                                       static_cast<uint64_t>(sweep_minutes));
      // Effective mean replacement time ~ half the sweep period plus the
      // sweep's own latency; predict with mu = 1/(sweep/2).
      const double lambda = 1.0 / 30.0;            // per minute
      const double mu = 1.0 / (sweep_minutes / 2);  // per minute
      const double predicted =
          circus::avail::TroupeAvailability(n, lambda, mu);
      std::printf("%-3d %-12.0f %10d %10d %10d %12.6f\n", n, sweep_minutes,
                  out.calls_ok, out.calls_failed, out.members_replaced,
                  predicted);
      report.AddRow("churn")
          .Set("n", n)
          .Set("sweep_min", sweep_minutes)
          .Set("calls_ok", out.calls_ok)
          .Set("calls_failed", out.calls_failed)
          .Set("members_replaced", out.members_replaced)
          .Set("predicted_avail", predicted);
    }
  }
  std::printf("\nexpected shape: failures concentrate where the sweep is "
              "slow relative to\nthe lifetime and the troupe is small; "
              "faster sweeps and larger troupes push\nthe failed-call "
              "count toward zero, tracking Equation 6.1.\n");
  return 0;
}
