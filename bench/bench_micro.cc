// Real-time (wall clock) micro-benchmarks of the compute-bound pieces of
// the reproduction, using google-benchmark: the stub compiler front end
// and back end (Table 7.1's pipeline), the externalization layer
// (Figure 7.1), the segment codec (Figure 4.2), and the simulation
// kernel's event throughput. Unlike the table/figure benches these
// measure this implementation's own speed, not simulated time.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/bytes.h"
#include "src/marshal/marshal.h"
#include "src/msg/segment.h"
#include "src/sim/executor.h"
#include "src/stubgen/codegen.h"
#include "src/stubgen/idl_parser.h"

namespace {

constexpr const char* kNameServerIdl = R"(
NameServer: PROGRAM 26 VERSION 1 =
BEGIN
  Name: TYPE = STRING;
  Property: TYPE = RECORD [name: Name, value: SEQUENCE OF UNSPECIFIED];
  Properties: TYPE = SEQUENCE OF Property;
  Kind: TYPE = ENUMERATION {user(0), machine(1), service(2)};
  AlreadyExists: ERROR = 0;
  NotFound: ERROR = 1;
  Register: PROCEDURE [name: Name, properties: Properties]
    REPORTS [AlreadyExists] = 0;
  Lookup: PROCEDURE [name: Name] RETURNS [properties: Properties]
    REPORTS [NotFound] = 1;
  Delete: PROCEDURE [name: Name] REPORTS [NotFound] = 2;
END.
)";

void BM_IdlParse(benchmark::State& state) {
  for (auto _ : state) {
    auto program = circus::stubgen::ParseProgram(kNameServerIdl);
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_IdlParse);

void BM_StubCodegen(benchmark::State& state) {
  auto program = circus::stubgen::ParseProgram(kNameServerIdl);
  for (auto _ : state) {
    std::string header = circus::stubgen::GenerateHeader(*program);
    benchmark::DoNotOptimize(header);
  }
}
BENCHMARK(BM_StubCodegen);

void BM_MarshalWrite(benchmark::State& state) {
  const std::string name = "a-registered-service-name";
  for (auto _ : state) {
    circus::marshal::Writer w;
    for (int i = 0; i < 32; ++i) {
      w.WriteString(name);
      w.WriteU32(i);
      w.WriteI64(-i);
    }
    benchmark::DoNotOptimize(w.bytes());
  }
  state.SetBytesProcessed(state.iterations() * 32 *
                          (name.size() + 4 + 4 + 8));
}
BENCHMARK(BM_MarshalWrite);

void BM_MarshalRead(benchmark::State& state) {
  circus::marshal::Writer w;
  for (int i = 0; i < 32; ++i) {
    w.WriteString("a-registered-service-name");
    w.WriteU32(i);
    w.WriteI64(-i);
  }
  const circus::Bytes data = w.Take();
  for (auto _ : state) {
    circus::marshal::Reader r(data);
    for (int i = 0; i < 32; ++i) {
      benchmark::DoNotOptimize(r.ReadString());
      benchmark::DoNotOptimize(r.ReadU32());
      benchmark::DoNotOptimize(r.ReadI64());
    }
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_MarshalRead);

void BM_SegmentEncodeDecode(benchmark::State& state) {
  circus::msg::Segment s;
  s.type = circus::msg::MessageType::kCall;
  s.call_number = 42;
  s.total_segments = 3;
  s.segment_number = 2;
  s.data = circus::Bytes(1024, 'd');
  for (auto _ : state) {
    circus::Bytes wire = s.Encode();
    auto decoded = circus::msg::Segment::Decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * 1032);
}
BENCHMARK(BM_SegmentEncodeDecode);

void BM_ExecutorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    circus::sim::Executor executor;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      executor.ScheduleAfter(circus::sim::Duration::Micros(i),
                             [&counter] { ++counter; });
    }
    executor.RunUntilIdle();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ExecutorEventThroughput);

// Mirrors each google-benchmark run into the shared BENCH_micro.json
// report (one "micro" table row per benchmark) while keeping the usual
// console output.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(circus::bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      report_->AddRow("micro")
          .Set("name", run.benchmark_name())
          .Set("iterations", static_cast<int64_t>(run.iterations))
          .Set("real_ns_per_iter", run.GetAdjustedRealTime())
          .Set("cpu_ns_per_iter", run.GetAdjustedCPUTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  circus::bench::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("micro", argc, argv);
  // Forward everything except the report's own flags to google-benchmark;
  // --quick maps to a short minimum measuring time.
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick" || arg.rfind("--json", 0) == 0) {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (report.quick()) {
    bench_argv.push_back(min_time.data());
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
