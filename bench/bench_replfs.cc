// The replfs application bench (EXPERIMENTS.md E19): end-to-end cost of
// a replicated file-store transaction -- open, ordered-broadcast write
// staging, troupe commit -- as a function of troupe size, on the
// calibrated 4.2BSD testbed. Reports per-transaction commit latency,
// sustained transactions/sec, and the latency of a unanimous read, and
// checks that every member holds identical committed blocks afterward.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "gen/apps/replfs.h"
#include "src/apps/replfs/client.h"
#include "src/apps/replfs/server.h"
#include "src/common/check.h"
#include "src/core/process.h"
#include "src/net/world.h"

namespace fs = circus::idl::ReplFs;

using circus::Bytes;
using circus::Status;
using circus::StatusOr;
using circus::apps::replfs::BlockKey;
using circus::apps::replfs::Client;
using circus::apps::replfs::ClientOptions;
using circus::apps::replfs::Server;
using circus::apps::replfs::Session;
using circus::core::RpcProcess;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;

namespace {

constexpr uint32_t kWritesPerTxn = 2;
constexpr size_t kWordsPerBlock = 16;

Task<Status> WriteBlocksBody(std::string name, uint16_t fill,
                             Session* session) {
  StatusOr<uint16_t> fd = co_await session->Open(name);
  if (!fd.ok()) {
    co_return fd.status();
  }
  for (uint32_t b = 0; b < kWritesPerTxn; ++b) {
    fs::BlockData data(kWordsPerBlock,
                       static_cast<uint16_t>(fill + b));
    Status s = co_await session->Write(*fd, b, std::move(data));
    if (!s.ok()) {
      co_return s;
    }
  }
  co_return co_await session->Close(*fd);
}

Client::Body MakeWriteBlocksBody(std::string name, uint16_t fill) {
  return [name, fill](Session& session) {
    return WriteBlocksBody(name, fill, &session);
  };
}

struct RunResult {
  double mean_commit_ms = 0;
  double min_commit_ms = 0;
  double max_commit_ms = 0;
  double txns_per_second = 0;
  double read_ms = 0;
  bool replicas_identical = false;
};

Task<void> TxnLoop(Client* client, RpcProcess* process, int txns,
                   std::vector<double>* latencies,
                   circus::sim::TimePoint* finished_at, bool* done) {
  const ThreadId thread = process->NewRootThread();
  for (int i = 0; i < txns; ++i) {
    const Client::Body body = MakeWriteBlocksBody(
        "bench" + std::to_string(i % 8), static_cast<uint16_t>(i));
    const circus::sim::TimePoint start =
        process->host()->executor().now();
    Status s = co_await client->Run(thread, body);
    CIRCUS_CHECK_MSG(s.ok(), s.ToString().c_str());
    latencies->push_back(
        (process->host()->executor().now() - start).ToMillisF());
  }
  *finished_at = process->host()->executor().now();
  *done = true;
}

Task<void> ReadOnce(Client* client, RpcProcess* process, double* out_ms,
                    bool* done) {
  const ThreadId thread = process->NewRootThread();
  const circus::sim::TimePoint start = process->host()->executor().now();
  StatusOr<fs::BlockData> data =
      co_await client->ReadBlock(thread, "bench0", 0);
  CIRCUS_CHECK_MSG(data.ok(), data.status().ToString().c_str());
  *out_ms = (process->host()->executor().now() - start).ToMillisF();
  *done = true;
}

RunResult RunReplFsLoad(int members, int txns) {
  World world(9100 + members);
  Troupe troupe;
  troupe.id = circus::core::TroupeId{900};
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<Server>> servers;
  for (int i = 0; i < members; ++i) {
    circus::sim::Host* host = world.AddHost("fs" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto server = std::make_unique<Server>(process.get());
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(
        process->module_address(server->module_number()));
    world.executor().Spawn(server->DeliverLoop());
    processes.push_back(std::move(process));
    servers.push_back(std::move(server));
  }
  circus::sim::Host* client_host = world.AddHost("client");
  auto client_process =
      std::make_unique<RpcProcess>(&world.network(), client_host, 8000);
  Client client(client_process.get());
  client.Bind(troupe);

  std::vector<double> latencies;
  bool wrote = false;
  circus::sim::TimePoint finished_at;
  const circus::sim::TimePoint t0 = world.now();
  world.executor().Spawn(TxnLoop(&client, client_process.get(), txns,
                                 &latencies, &finished_at, &wrote));
  world.RunFor(Duration::Seconds(600));
  CIRCUS_CHECK_MSG(wrote, "transaction loop did not finish");
  // Throughput over the busy phase: the loop finishes well before the
  // RunFor budget drains.
  const double elapsed_s = (finished_at - t0).ToSecondsF();

  RunResult r;
  const circus::bench::SampleStats stats =
      circus::bench::Summarize(latencies);
  r.mean_commit_ms = stats.mean;
  r.min_commit_ms = stats.min;
  r.max_commit_ms = stats.max;
  r.txns_per_second = static_cast<double>(stats.count) / elapsed_s;

  bool read_done = false;
  world.executor().Spawn(
      ReadOnce(&client, client_process.get(), &r.read_ms, &read_done));
  world.RunFor(Duration::Seconds(60));
  CIRCUS_CHECK_MSG(read_done, "unanimous read did not finish");

  // Replication check: every member holds identical committed bytes.
  r.replicas_identical = true;
  const std::optional<Bytes> reference =
      servers[0]->store().Peek(BlockKey("bench0", 0));
  CIRCUS_CHECK(reference.has_value());
  for (auto& server : servers) {
    const std::optional<Bytes> block =
        server->store().Peek(BlockKey("bench0", 0));
    if (!block.has_value() || *block != *reference) {
      r.replicas_identical = false;
    }
    CIRCUS_CHECK(server->committed_transactions() ==
                 static_cast<uint64_t>(txns));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("replfs", argc, argv);
  const int kTxns = report.Calls(40, 8);
  report.Note("txns", kTxns);
  report.Note("writes_per_txn", static_cast<int>(kWritesPerTxn));
  report.Note("words_per_block", static_cast<int>(kWordsPerBlock));
  std::printf("E19: replfs replicated file store over generated stubs\n");
  std::printf("(%d transactions x %u block writes, 4.2BSD cost model)\n\n",
              kTxns, kWritesPerTxn);
  std::printf("%-9s %12s %10s %10s %10s %10s %12s\n", "members",
              "commit(ms)", "min", "max", "txns/sec", "read(ms)",
              "identical?");
  for (int members = 1; members <= 3; ++members) {
    RunResult r = RunReplFsLoad(members, kTxns);
    std::printf("%-9d %12.2f %10.2f %10.2f %10.1f %10.2f %12s\n", members,
                r.mean_commit_ms, r.min_commit_ms, r.max_commit_ms,
                r.txns_per_second, r.read_ms,
                r.replicas_identical ? "yes" : "NO");
    CIRCUS_CHECK(r.replicas_identical);
    report.AddRow("replfs_load")
        .Set("members", members)
        .Set("commit_ms", r.mean_commit_ms)
        .Set("min_commit_ms", r.min_commit_ms)
        .Set("max_commit_ms", r.max_commit_ms)
        .Set("txns_per_sec", r.txns_per_second)
        .Set("read_ms", r.read_ms)
        .Set("identical", r.replicas_identical);
  }
  std::printf("\nevery troupe size committed every transaction at every "
              "member with identical bytes.\n");
  return 0;
}
