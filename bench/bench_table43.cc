// Reproduces Table 4.3: execution profile of Circus replicated procedure
// calls — the percentage of total client CPU time spent in each of the
// six 4.2BSD system calls, as a function of the degree of replication.
// The paper's finding: sendmsg is the largest single contributor and the
// six calls together account for more than half of the CPU time; the
// linear growth of the sendmsg share with troupe size is what motivates
// a true multicast implementation (Section 4.4.2).
#include <cstdio>

#include "bench/bench_util.h"

using circus::sim::CpuStats;
using circus::sim::Syscall;

namespace {

constexpr Syscall kProfiled[] = {
    Syscall::kSendMsg,   Syscall::kRecvMsg,      Syscall::kSelect,
    Syscall::kSetITimer, Syscall::kGetTimeOfDay, Syscall::kSigBlock,
};

// Paper's Table 4.3 for reference (percent of total CPU; sendmsg column).
constexpr double kPaperSendmsgShare[] = {27.2, 28.8, 32.5, 32.9, 33.0};

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("table43", argc, argv);
  const int kCalls = report.Calls(200, 20);
  report.Note("calls", kCalls);
  std::printf("Table 4.3: execution profile for Circus replicated "
              "procedure calls\n");
  std::printf("(percentage of total client CPU time per system call)\n");
  std::printf("%-7s", "degree");
  for (Syscall s : kProfiled) {
    std::printf(" %12s", std::string(SyscallName(s)).c_str());
  }
  std::printf(" %8s %10s\n", "six sum", "paper-sm*");
  const int max_degree = report.quick() ? 3 : 5;
  for (int n = 1; n <= max_degree; ++n) {
    CpuStats cpu;
    circus::bench::RunCircusEcho(n, kCalls, &cpu);
    const double total_ms = cpu.total_time().ToMillisF();
    std::printf("%-7d", n);
    circus::obs::json::Value& row = report.AddRow("table43");
    row.Set("degree", n);
    double sum = 0;
    for (Syscall s : kProfiled) {
      const double share = 100.0 * cpu.time(s).ToMillisF() / total_ms;
      sum += share;
      std::printf(" %12.1f", share);
      row.Set(std::string(SyscallName(s)) + "_pct", share);
    }
    std::printf(" %8.1f %10.1f\n", sum, kPaperSendmsgShare[n - 1]);
    row.Set("six_sum_pct", sum);
    row.Set("paper_sendmsg_pct", kPaperSendmsgShare[n - 1]);
  }
  std::printf("(* paper's sendmsg share for comparison)\n");
  return 0;
}
