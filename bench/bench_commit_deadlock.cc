// Reproduces Equation 5.1: the probability that the troupe commit
// protocol deadlocks when k conflicting transactions run against an
// n-member troupe, assuming each member serializes them independently
// and uniformly: P[deadlock] = 1 - (1/k!)^(n-1).
//
// Two validations:
//  1. Monte Carlo over random serialization orders (fast, large trials);
//  2. the protocol itself: k clients run genuinely conflicting
//     transactions against an n-member troupe of TransactionalServers
//     with randomized per-path network delays, and we count how many
//     first attempts abort through the deadlock machinery.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/avail/analysis.h"
#include "src/common/check.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"
#include "src/txn/commit.h"

using circus::Bytes;
using circus::Status;
using circus::StatusOr;
using circus::core::ModuleNumber;
using circus::core::ProcedureNumber;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;
using circus::txn::CommitCoordinator;
using circus::txn::TransactionalServer;
using circus::txn::TxnId;

namespace {

constexpr ProcedureNumber kAdd = 1;

Bytes EncodeAdd(const TxnId& txn, int64_t delta) {
  circus::marshal::Writer w;
  txn.Write(w);
  w.WriteI64(delta);
  return w.Take();
}

Task<Status> AddBody(RpcProcess* process, ThreadId thread, Troupe troupe,
                     ModuleNumber module, TxnId txn) {
  StatusOr<Bytes> r =
      co_await process->Call(thread, troupe, module, kAdd,
                             EncodeAdd(txn, 1));
  co_return r.status();
}

// One trial: k clients run one conflicting transaction each; returns
// true if any deadlock machinery fired (lock timeout, waits-for abort,
// or coordinator timeout).
bool ProtocolTrial(uint64_t seed, int k, int n) {
  World world(seed, circus::sim::SyscallCostModel::Free());
  circus::sim::Rng delays(seed * 7 + 1);

  Troupe troupe;
  troupe.id = circus::core::TroupeId{99};
  ModuleNumber module = 0;
  std::vector<std::unique_ptr<RpcProcess>> server_procs;
  std::vector<std::unique_ptr<TransactionalServer>> servers;
  for (int i = 0; i < n; ++i) {
    circus::sim::Host* host = world.AddHost("s" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto server =
        std::make_unique<TransactionalServer>(process.get(), "counter");
    server->store().set_lock_timeout(Duration::Millis(300));
    module = server->module_number();
    TransactionalServer* raw = server.get();
    server->ExportProcedure(
        kAdd,
        [raw](ServerCallContext&,
              const Bytes& args) -> Task<StatusOr<Bytes>> {
          circus::marshal::Reader r(args);
          const TxnId txn = TxnId::Read(r);
          const int64_t delta = r.ReadI64();
          raw->store().Begin(txn);
          int64_t value = 0;
          StatusOr<Bytes> v = co_await raw->store().Get(txn, "x");
          if (v.ok()) {
            circus::marshal::Reader vr(*v);
            value = vr.ReadI64();
          } else if (v.status().code() != circus::ErrorCode::kNotFound) {
            co_return v.status();
          }
          circus::marshal::Writer w;
          w.WriteI64(value + delta);
          Status s = co_await raw->store().Put(txn, "x", w.Take());
          if (!s.ok()) {
            co_return s;
          }
          co_return Bytes{};
        });
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    server_procs.push_back(std::move(process));
    servers.push_back(std::move(server));
  }

  std::vector<std::unique_ptr<RpcProcess>> clients;
  std::vector<std::unique_ptr<CommitCoordinator>> coordinators;
  std::vector<std::unique_ptr<circus::sim::Rng>> jitters;
  uint64_t coordinator_timeouts = 0;
  for (int c = 0; c < k; ++c) {
    circus::sim::Host* host = world.AddHost("c" + std::to_string(c));
    clients.push_back(
        std::make_unique<RpcProcess>(&world.network(), host, 8000));
    coordinators.push_back(
        std::make_unique<CommitCoordinator>(clients.back().get()));
    jitters.push_back(
        std::make_unique<circus::sim::Rng>(seed * 97 + c));
    // Randomize per-path latency so each member serializes the arriving
    // transactions in an independent order (the Section 5.3.1 model).
    for (int m = 0; m < n; ++m) {
      circus::net::FaultPlan plan;
      plan.base_delay = Duration::Micros(delays.UniformInt(100, 50000));
      world.network().SetPairFaultPlan(host->id(),
                                       server_procs[m]->host()->id(), plan);
    }
    world.executor().Spawn(
        [](RpcProcess* client, CommitCoordinator* coordinator,
           Troupe t, ModuleNumber mod,
           circus::sim::Rng* jitter) -> Task<void> {
          const ThreadId thread = client->NewRootThread();
          circus::txn::RunTransactionOptions opts;
          opts.max_attempts = 12;
          opts.rng = jitter;  // randomized back-off avoids retry livelock
          opts.decision_timeout = Duration::Millis(700);
          const circus::txn::TransactionBody body =
              [client, thread, t, mod](const TxnId& txn) {
                return AddBody(client, thread, t, mod, txn);
              };
          Status s = co_await circus::txn::RunTransaction(
              client, coordinator, thread, t, mod, body, opts);
          CIRCUS_CHECK(s.ok());
        }(clients.back().get(), coordinators.back().get(), troupe,
          module, jitters.back().get()));
  }
  world.RunFor(Duration::Seconds(300));
  uint64_t deadlock_signals = coordinator_timeouts;
  for (auto& coordinator : coordinators) {
    deadlock_signals += coordinator->timeouts();
  }
  for (auto& server : servers) {
    deadlock_signals +=
        server->store().deadlock_aborts() + server->store().lock_timeouts();
  }
  return deadlock_signals > 0;
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("commit_deadlock", argc, argv);
  const int kMonteCarloTrials = report.Calls(100000, 5000);
  std::printf("Equation 5.1: P[deadlock] = 1 - (1/k!)^(n-1)\n\n");
  std::printf("Monte Carlo over independent serialization orders "
              "(%d trials):\n", kMonteCarloTrials);
  std::printf("%-4s %-4s %12s %12s\n", "k", "n", "closed form",
              "Monte Carlo");
  circus::sim::Rng rng(404);
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{
           {1, 3}, {2, 2}, {2, 3}, {2, 5}, {3, 2}, {3, 3}, {4, 2},
           {5, 3}}) {
    const double closed = circus::avail::CommitDeadlockProbability(k, n);
    const double sampled = circus::avail::SimulateCommitDeadlockProbability(
        rng, k, n, kMonteCarloTrials);
    std::printf("%-4d %-4d %12.4f %12.4f\n", k, n, closed, sampled);
    report.AddRow("monte_carlo")
        .Set("k", k)
        .Set("n", n)
        .Set("closed_form", closed)
        .Set("monte_carlo", sampled);
  }

  const int kTrials = report.Calls(30, 4);
  std::printf("\nthe protocol itself (2 conflicting clients, 2-member "
              "troupe, %d trials):\n", kTrials);
  int deadlocked = 0;
  for (int t = 0; t < kTrials; ++t) {
    if (ProtocolTrial(9000 + t, /*k=*/2, /*n=*/2)) {
      ++deadlocked;
    }
  }
  std::printf("deadlock machinery fired in %d/%d trials (predicted "
              "probability %.2f);\nevery transaction still committed via "
              "back-off retry.\n",
              deadlocked, kTrials,
              circus::avail::CommitDeadlockProbability(2, 2));
  report.AddRow("protocol_trials")
      .Set("trials", kTrials)
      .Set("deadlocked", deadlocked)
      .Set("predicted", circus::avail::CommitDeadlockProbability(2, 2));
  return 0;
}
