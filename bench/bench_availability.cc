// Reproduces Section 6.4.2 / Figure 6.3: the birth-death model of troupe
// reliability. Prints availability as a function of troupe size and of
// the repair/failure rate ratio — closed form (Equation 6.1) beside a
// continuous-time Monte Carlo of the same process — plus the Equation
// 6.2 replacement-time table and the paper's two worked examples.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/avail/analysis.h"
#include "src/sim/random.h"

using circus::avail::BirthDeathDistribution;
using circus::avail::MaxReplacementTimeOverLifetime;
using circus::avail::SimulateBirthDeath;
using circus::avail::TroupeAvailability;

int main(int argc, char** argv) {
  circus::bench::BenchReport report("availability", argc, argv);
  const double kModelHours = report.Calls(300000, 30000);
  circus::sim::Rng rng(606);

  std::printf("Equation 6.1 / Figure 6.3: troupe availability "
              "A = 1 - (lambda/(lambda+mu))^n\n\n");
  std::printf("lifetime fixed at 1 hour (lambda = 1); columns = mean "
              "replacement time\n");
  std::printf("%-3s", "n");
  const double repair_minutes[] = {30, 10, 6.6667, 2};
  for (double m : repair_minutes) {
    std::printf("  %7.0f min", m);
  }
  std::printf("\n");
  for (int n = 1; n <= 5; ++n) {
    std::printf("%-3d", n);
    circus::obs::json::Value& row =
        report.AddRow("availability").Set("n", n);
    for (double m : repair_minutes) {
      const double mu = 60.0 / m;
      const double a = TroupeAvailability(n, 1.0, mu);
      std::printf("  %11.6f", a);
      char key[32];
      std::snprintf(key, sizeof(key), "repair_%.0fmin", m);
      row.Set(key, a);
    }
    std::printf("\n");
  }

  std::printf("\nclosed form vs continuous-time Monte Carlo "
              "(n=3, lambda=1, mu=9, %.0f model hours):\n", kModelHours);
  circus::avail::BirthDeathSample sample =
      SimulateBirthDeath(rng, 3, 1.0, 9.0, kModelHours);
  const std::vector<double> p = BirthDeathDistribution(3, 1.0, 9.0);
  std::printf("%-10s %12s %12s\n", "k failed", "p_k (model)",
              "p_k (sim)");
  for (int k = 0; k <= 3; ++k) {
    std::printf("%-10d %12.6f %12.6f\n", k, p[k], sample.state_time[k]);
    report.AddRow("birth_death")
        .Set("k_failed", k)
        .Set("p_model", p[k])
        .Set("p_sim", sample.state_time[k]);
  }
  std::printf("availability: model %.6f, simulated %.6f\n",
              TroupeAvailability(3, 1.0, 9.0), sample.availability);
  report.Note("model_hours", kModelHours);
  report.Note("availability_model", TroupeAvailability(3, 1.0, 9.0));
  report.Note("availability_sim", sample.availability);

  std::printf("\nEquation 6.2: maximum replacement time (as a fraction "
              "of member lifetime)\nthat still achieves a target "
              "availability:\n");
  std::printf("%-6s %12s %12s %12s\n", "n", "A=0.99", "A=0.999",
              "A=0.9999");
  for (int n = 2; n <= 5; ++n) {
    std::printf("%-6d %12.4f %12.4f %12.4f\n", n,
                MaxReplacementTimeOverLifetime(n, 0.99),
                MaxReplacementTimeOverLifetime(n, 0.999),
                MaxReplacementTimeOverLifetime(n, 0.9999));
    report.AddRow("replacement_time")
        .Set("n", n)
        .Set("a99", MaxReplacementTimeOverLifetime(n, 0.99))
        .Set("a999", MaxReplacementTimeOverLifetime(n, 0.999))
        .Set("a9999", MaxReplacementTimeOverLifetime(n, 0.9999));
  }

  std::printf("\npaper's worked examples:\n");
  std::printf(" * 3 members, one-hour lifetime, 99.9%%: replacement "
              "within %.1f minutes (paper: 6m40s)\n",
              60.0 * MaxReplacementTimeOverLifetime(3, 0.999));
  std::printf(" * 5 members, one-hour lifetime, 99.9%%: replacement "
              "within %.1f minutes (paper: ~20m)\n",
              60.0 * MaxReplacementTimeOverLifetime(5, 0.999));
  return 0;
}
