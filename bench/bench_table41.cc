// Reproduces Table 4.1: performance of UDP, TCP, and Circus replicated
// procedure calls on the simulated VAX/Ethernet testbed. Columns are the
// paper's: real time and total/user/kernel CPU time per call, in
// milliseconds, averaged over a loop of echo calls. The paper's measured
// values are printed alongside for comparison; absolute agreement is not
// the goal (see EXPERIMENTS.md), the shape is: Circus degree 1 costs
// about twice a bare UDP exchange, and each added member contributes a
// roughly constant increment.
#include <cstdio>

#include "bench/bench_util.h"

namespace {

struct PaperRow {
  const char* label;
  double real, total, user, kernel;
};

constexpr PaperRow kPaper[] = {
    {"(UDP)", 26.5, 13.3, 0.8, 12.4}, {"(TCP)", 23.2, 8.3, 0.5, 7.8},
    {"1", 48.0, 24.1, 5.9, 18.2},     {"2", 58.0, 45.2, 10.0, 35.2},
    {"3", 69.4, 66.8, 13.0, 53.8},    {"4", 90.2, 87.2, 16.8, 70.4},
    {"5", 109.5, 107.2, 21.0, 86.1},
};

void PrintRow(circus::bench::BenchReport& report, const char* label,
              const circus::bench::EchoTimings& t, const PaperRow& paper) {
  std::printf("%-8s %8.1f %9.1f %8.1f %10.1f   | %8.1f %9.1f %8.1f %10.1f\n",
              label, t.real_ms, t.total_cpu_ms, t.user_cpu_ms,
              t.kernel_cpu_ms, paper.real, paper.total, paper.user,
              paper.kernel);
  report.AddRow("table41")
      .Set("degree", label)
      .Set("real_ms", t.real_ms)
      .Set("total_cpu_ms", t.total_cpu_ms)
      .Set("user_cpu_ms", t.user_cpu_ms)
      .Set("kernel_cpu_ms", t.kernel_cpu_ms)
      .Set("paper_real_ms", paper.real);
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("table41", argc, argv);
  const int kCalls = report.Calls(200, 20);
  report.Note("calls", kCalls);
  std::printf("Table 4.1: performance of UDP, TCP, and Circus "
              "(ms per call, %d-call average)\n",
              kCalls);
  std::printf("%-8s %8s %9s %8s %10s   | %8s %9s %8s %10s\n", "degree",
              "real", "total", "user", "kernel", "real*", "total*",
              "user*", "kernel*");
  std::printf("%-8s %49s | (* = paper, VAX-11/750)\n", "", "");

  PrintRow(report, "(UDP)", circus::bench::RunUdpEcho(kCalls), kPaper[0]);
  PrintRow(report, "(TCP)", circus::bench::RunTcpEcho(kCalls), kPaper[1]);
  const int max_degree = report.quick() ? 3 : 5;
  for (int n = 1; n <= max_degree; ++n) {
    char label[8];
    std::snprintf(label, sizeof(label), "%d", n);
    PrintRow(report, label, circus::bench::RunCircusEcho(n, kCalls),
             kPaper[1 + n]);
  }
  return 0;
}
