#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/marshal/marshal.h"
#include "src/obs/export.h"

namespace circus::bench {

double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Nearest rank: the ceil(p*n)-th sample, 1-based.
  const size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

SampleStats Summarize(std::vector<double> samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double total = 0;
  for (double v : samples) {
    total += v;
  }
  s.mean = total / static_cast<double>(s.count);
  s.p50 = SortedPercentile(samples, 0.50);
  s.p90 = SortedPercentile(samples, 0.90);
  s.p99 = SortedPercentile(samples, 0.99);
  return s;
}

BenchReport::BenchReport(std::string name, int argc, char** argv)
    : name_(std::move(name)) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      quick_ = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      write_json_ = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      write_json_ = true;
      json_path_ = arg + 7;
    }
    // Unrecognized flags are left for the bench's own parsing.
  }
  if (write_json_ && json_path_.empty()) {
    json_path_ = "BENCH_" + name_ + ".json";
  }
}

BenchReport::~BenchReport() {
  if (!write_json_) {
    return;
  }
  obs::json::Value root = obs::json::Value::Object();
  root.Set("bench", name_);
  root.Set("quick", quick_);
  root.Set("notes", std::move(notes_));
  obs::json::Value tables = obs::json::Value::Object();
  for (const std::string& table : table_order_) {
    obs::json::Value rows = obs::json::Value::Array();
    for (obs::json::Value& row : tables_[table]) {
      rows.Append(std::move(row));
    }
    tables.Set(table, std::move(rows));
  }
  root.Set("tables", std::move(tables));
  const Status written =
      obs::WriteStringToFile(json_path_, root.Dump() + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "%s: cannot write %s: %s\n", name_.c_str(),
                 json_path_.c_str(), written.ToString().c_str());
  }
}

obs::json::Value& BenchReport::AddRow(const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    table_order_.push_back(table);
    it = tables_.emplace(table, std::vector<obs::json::Value>{}).first;
  }
  it->second.push_back(obs::json::Value::Object());
  return it->second.back();
}

void BenchReport::Note(const std::string& key, obs::json::Value value) {
  notes_.Set(key, std::move(value));
}

using circus::Bytes;
using circus::BytesFromString;
using sim::Duration;
using sim::Syscall;
using sim::SyscallCostModel;
using sim::Task;

net::FaultPlan TestbedFaultPlan() {
  net::FaultPlan plan;
  plan.base_delay = kPacketDelay;
  return plan;
}

namespace {

constexpr int kEchoBytes = 16;  // single-segment call and return

}  // namespace

EchoTimings RunUdpEcho(int calls) {
  net::World world(1001, SyscallCostModel::Berkeley42Bsd());
  world.network().set_default_fault_plan(TestbedFaultPlan());
  sim::Host* client_host = world.AddHost("client");
  sim::Host* server_host = world.AddHost("server");
  net::DatagramSocket client(&world.network(), client_host, 2000);
  net::DatagramSocket server(&world.network(), server_host, 2001);

  // server: loop { recvmsg(); sendmsg(); }  (Figure 4.5)
  world.executor().Spawn(
      [](net::DatagramSocket* sock) -> Task<void> {
        while (true) {
          net::Datagram d = co_await sock->Receive();
          co_await sock->Send(d.source, std::move(d.payload));
        }
      }(&server));

  // client: loop { sendmsg(); alarm(t); recvmsg(); alarm(0); }
  sim::TimePoint finished;
  bool done = false;
  auto workload = [](net::DatagramSocket* sock, net::NetAddress to, int n,
                     sim::TimePoint* end, bool* flag) -> Task<void> {
    const Bytes payload(kEchoBytes, 'u');
    for (int i = 0; i < n; ++i) {
      // Loop and library overhead visible as user time in the paper's
      // measurements (0.8 ms per UDP call).
      co_await sock->host()->Compute(Duration::Micros(800));
      co_await sock->Send(to, payload);
      sock->host()->ChargeSyscallInstant(Syscall::kSetITimer);  // alarm(t)
      std::optional<net::Datagram> reply =
          co_await sock->ReceiveWithTimeout(Duration::Seconds(10));
      CIRCUS_CHECK(reply.has_value());
      sock->host()->ChargeSyscallInstant(Syscall::kSetITimer);  // alarm(0)
    }
    *end = sock->host()->executor().now();
    *flag = true;
  };
  world.executor().Spawn(
      workload(&client, server.local_address(), calls, &finished, &done));
  EchoTimings t = MeasureOnClientHost(world, client_host, calls, [&] {
    world.RunFor(Duration::Seconds(600));
  });
  CIRCUS_CHECK(done);
  t.real_ms = (finished - sim::TimePoint()).ToSecondsF() * 1000.0 / calls;
  return t;
}

EchoTimings RunTcpEcho(int calls) {
  net::World world(1002, SyscallCostModel::Berkeley42Bsd());
  world.network().set_default_fault_plan(TestbedFaultPlan());
  sim::Host* client_host = world.AddHost("client");
  sim::Host* server_host = world.AddHost("server");
  net::StreamListener listener(&world.network(), server_host, 2001);

  world.executor().Spawn(
      [](net::StreamListener* l) -> Task<void> {
        std::unique_ptr<net::StreamConnection> conn = co_await l->Accept();
        while (true) {
          Bytes data = co_await conn->Read();
          co_await conn->Write(std::move(data));
        }
      }(&listener));

  sim::TimePoint started;
  sim::TimePoint finished;
  bool done = false;
  auto workload = [](net::World* w, sim::Host* host, net::NetAddress to,
                     int n, sim::TimePoint* begin, sim::TimePoint* end,
                     bool* flag) -> Task<void> {
    auto conn_or = co_await net::StreamConnect(&w->network(), host, to);
    CIRCUS_CHECK(conn_or.ok());
    std::unique_ptr<net::StreamConnection> conn =
        std::move(conn_or).value();
    // The connection-establishment cost is amortized over the loop in
    // the paper's test; measure from after the handshake.
    *begin = host->executor().now();
    const Bytes payload(kEchoBytes, 't');
    for (int i = 0; i < n; ++i) {
      co_await host->Compute(Duration::Micros(500));
      co_await conn->Write(payload);
      Bytes reply = co_await conn->Read();
      CIRCUS_CHECK(reply.size() == kEchoBytes);
    }
    *end = host->executor().now();
    *flag = true;
    // Park so the connection (and its receiver loop) stays alive.
    co_await conn->Read();
  };
  world.executor().Spawn(workload(&world, client_host,
                                  listener.local_address(), calls,
                                  &started, &finished, &done));
  EchoTimings t = MeasureOnClientHost(world, client_host, calls, [&] {
    world.RunFor(Duration::Seconds(600));
  });
  CIRCUS_CHECK(done);
  t.real_ms = (finished - started).ToMillisF() / calls;
  return t;
}

EchoTimings RunCircusEcho(int replication, int calls,
                          sim::CpuStats* client_cpu_out) {
  net::World world(1003, SyscallCostModel::Berkeley42Bsd());
  world.network().set_default_fault_plan(TestbedFaultPlan());

  core::RpcOptions options;
  options.client_user_cost_base = kClientUserBase;
  options.client_user_cost_per_member = kClientUserPerMember;
  options.server_user_cost = kServerUser;

  core::Troupe troupe;
  troupe.id = core::TroupeId{77};
  std::vector<std::unique_ptr<core::RpcProcess>> members;
  for (int i = 0; i < replication; ++i) {
    sim::Host* host = world.AddHost("srv" + std::to_string(i));
    auto process = std::make_unique<core::RpcProcess>(&world.network(),
                                                      host, 9000, options);
    const core::ModuleNumber module = process->ExportModule("rpctest");
    process->ExportProcedure(
        module, 0,
        [](core::ServerCallContext&,
           const Bytes& args) -> Task<StatusOr<Bytes>> {
          co_return args;  // echo: result := argument (Figure 4.7)
        });
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    members.push_back(std::move(process));
  }

  sim::Host* client_host = world.AddHost("client");
  core::RpcProcess client(&world.network(), client_host, 8000, options);
  sim::TimePoint finished;
  bool done = false;
  auto workload = [](core::RpcProcess* c, core::Troupe t, int n,
                     sim::TimePoint* end, bool* flag) -> Task<void> {
    const core::ThreadId thread = c->NewRootThread();
    const Bytes buffer(kEchoBytes, 'b');
    for (int i = 0; i < n; ++i) {
      StatusOr<Bytes> reply = co_await c->Call(thread, t, 0, 0, buffer);
      CIRCUS_CHECK(reply.ok());
    }
    *end = c->host()->executor().now();
    *flag = true;
  };
  world.executor().Spawn(workload(&client, troupe, calls, &finished, &done));
  const sim::CpuStats cpu0 = client_host->cpu();
  EchoTimings t =
      MeasureOnClientHost(world, client_host, calls, [&] {
        world.RunFor(Duration::Seconds(3600));
      });
  CIRCUS_CHECK(done);
  t.real_ms = (finished - sim::TimePoint()).ToSecondsF() * 1000.0 / calls;
  if (client_cpu_out != nullptr) {
    *client_cpu_out = client_host->cpu() - cpu0;
  }
  return t;
}

}  // namespace circus::bench
