// Section 4.2.5 ablation: the Circus paired message protocol (all
// segments transmitted before any is acknowledged) versus the Xerox PARC
// RPC protocol (explicit acknowledgment of every segment but the last).
// The PARC scheme needs only one segment of buffering but roughly
// doubles the packet count of a multi-segment message; the Circus scheme
// sends the minimum number of segments at the cost of unbounded
// buffering. The paper also claims better recovery from lost datagrams
// for Circus on multi-segment messages — visible here as the completion
// time gap widening with the loss rate.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/msg/paired_endpoint.h"
#include "src/net/socket.h"
#include "src/net/tap.h"
#include "src/net/world.h"
#include "src/obs/wire.h"

using circus::Bytes;
using circus::Status;
using circus::msg::EndpointOptions;
using circus::msg::Message;
using circus::msg::MessageType;
using circus::msg::PairedEndpoint;
using circus::net::DatagramSocket;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::SyscallCostModel;
using circus::sim::Task;

namespace {

struct Result {
  double completion_ms = 0;
  uint64_t data_segments = 0;
  uint64_t ack_segments = 0;
  uint64_t retransmissions = 0;
};

Result RunTransfer(EndpointOptions::Mode mode, size_t message_bytes,
                   double loss, uint64_t seed) {
  World world(seed, SyscallCostModel::Free());
  circus::net::FaultPlan plan;
  plan.base_delay = Duration::MillisF(1.0);
  plan.loss_probability = loss;
  world.network().set_default_fault_plan(plan);
  circus::sim::Host* client_host = world.AddHost("client");
  circus::sim::Host* server_host = world.AddHost("server");
  DatagramSocket client_socket(&world.network(), client_host, 0);
  DatagramSocket server_socket(&world.network(), server_host, 9000);
  EndpointOptions options;
  options.mode = mode;
  options.retransmit_interval = Duration::Millis(100);
  options.max_retransmits = 100;
  PairedEndpoint client(&client_socket, options);
  PairedEndpoint server(&server_socket, options);

  // Server: echo a short return for each call (the return implicitly
  // acknowledges the call's tail).
  server_host->Spawn([](PairedEndpoint* ep) -> Task<void> {
    while (true) {
      Message m = co_await ep->NextIncomingCall();
      co_await ep->SendMessage(m.peer, MessageType::kReturn, m.call_number,
                               Bytes(8, 'r'));
    }
  }(&server));

  bool done = false;
  double elapsed_ms = 0;
  world.executor().Spawn(
      [](PairedEndpoint* ep, circus::net::NetAddress to, size_t bytes,
         double* out, bool* flag) -> Task<void> {
        const circus::sim::TimePoint t0 = ep->host()->executor().now();
        Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                            Bytes(bytes, 'x'));
        CIRCUS_CHECK(s.ok());
        auto reply = co_await ep->AwaitReturn(to, 1);
        CIRCUS_CHECK(reply.ok());
        *out = (ep->host()->executor().now() - t0).ToMillisF();
        *flag = true;
      }(&client, server.local_address(), message_bytes, &elapsed_ms,
        &done));
  world.RunFor(Duration::Seconds(600));
  CIRCUS_CHECK(done);

  Result r;
  r.completion_ms = elapsed_ms;
  r.data_segments = client.counters().data_segments_sent +
                    server.counters().data_segments_sent;
  r.ack_segments = client.counters().ack_segments_sent +
                   server.counters().ack_segments_sent;
  r.retransmissions = client.counters().retransmitted_segments +
                      server.counters().retransmitted_segments;
  return r;
}

const char* ModeName(EndpointOptions::Mode mode) {
  return mode == EndpointOptions::Mode::kSlidingWindow ? "circus"
                                                       : "parc";
}

// E17: the Section 4.2.4 postponed-acknowledgment analysis, measured on
// the wire rather than from endpoint counters — a packet tap at the
// Fabric seam records every datagram, and the wire auditor's per-call
// rollup counts the acks that actually crossed versus the ones the
// returns and follow-up calls absorbed.
struct WireCostRow {
  double packets_per_call = 0;
  double bytes_per_call = 0;
  double acks_per_call = 0;
  double implicit_acks_per_call = 0;
  double retransmits_per_call = 0;
};

WireCostRow RunTappedCalls(bool back_to_back, int calls, uint64_t seed) {
  World world(seed, SyscallCostModel::Free());
  circus::net::FaultPlan plan;
  plan.base_delay = Duration::MillisF(1.0);
  world.network().set_default_fault_plan(plan);
  world.CapturePackets();  // in-memory ring, audited below
  circus::sim::Host* client_host = world.AddHost("client");
  circus::sim::Host* server_host = world.AddHost("server");
  DatagramSocket client_socket(&world.network(), client_host, 0);
  DatagramSocket server_socket(&world.network(), server_host, 9000);
  const EndpointOptions options;
  PairedEndpoint client(&client_socket, options);
  PairedEndpoint server(&server_socket, options);

  server_host->Spawn([](PairedEndpoint* ep, int n) -> Task<void> {
    for (int i = 0; i < n; ++i) {
      Message m = co_await ep->NextIncomingCall();
      co_await ep->SendMessage(m.peer, MessageType::kReturn, m.call_number,
                               Bytes(8, 'r'));
    }
  }(&server, calls));

  bool done = false;
  client_host->Spawn(
      [](PairedEndpoint* ep, circus::net::NetAddress to, int n, bool gap,
         bool* flag) -> Task<void> {
        for (uint32_t call = 1; call <= static_cast<uint32_t>(n); ++call) {
          Status s = co_await ep->SendMessage(to, MessageType::kCall, call,
                                              Bytes(64, 'x'));
          CIRCUS_CHECK(s.ok());
          auto reply = co_await ep->AwaitReturn(to, call);
          CIRCUS_CHECK(reply.ok());
          if (gap) {
            // Idle past the retransmit timeout: the return cannot ride
            // on the next call, so its acknowledgment goes explicit.
            co_await ep->host()->SleepFor(Duration::Millis(700));
          }
        }
        *flag = true;
      }(&client, server.local_address(), calls, !back_to_back, &done));
  world.RunFor(Duration::Seconds(600));
  CIRCUS_CHECK(done);
  // Let the final return's acknowledgment round finish before reading
  // the capture.
  world.RunFor(Duration::Seconds(5));

  const circus::obs::wire::AuditReport audit = circus::obs::wire::AuditRecords(
      world.packet_capture()->Recent(),
      circus::obs::wire::AuditOptionsFor(options),
      /*complete=*/world.packet_capture()->dropped() == 0);
  // The bench doubles as an oracle run: legal traffic only.
  CIRCUS_CHECK(audit.violations.empty());
  CIRCUS_CHECK(audit.CompletedCalls() == static_cast<size_t>(calls));
  const circus::obs::wire::WireCost totals = audit.Totals();
  WireCostRow row;
  row.packets_per_call = static_cast<double>(audit.packets) / calls;
  row.bytes_per_call = static_cast<double>(audit.bytes) / calls;
  row.acks_per_call = static_cast<double>(totals.acks_sent) / calls;
  row.implicit_acks_per_call =
      static_cast<double>(totals.implicit_acks) / calls;
  row.retransmits_per_call = static_cast<double>(totals.retransmits) / calls;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("pairmsg_ablation", argc, argv);
  const int kRuns = report.Calls(5, 2);
  report.Note("runs_per_row", kRuns);
  std::printf("Section 4.2.5: Circus sliding-window vs PARC stop-and-wait "
              "paired messages\n");
  std::printf("(one call message of the given size + short return; 1 ms "
              "packet delay;\n %d-run averages)\n\n", kRuns);
  std::printf("%-9s %-7s %7s %10s %8s %8s %10s\n", "message", "mode",
              "loss", "time(ms)", "data", "acks", "retrans");
  for (size_t message_bytes : {4096, 16384, 65536}) {
    if (report.quick() && message_bytes == 16384) {
      continue;  // keep the extremes only for a smoke run
    }
    for (double loss : {0.0, 0.1, 0.3}) {
      if (report.quick() && loss == 0.1) {
        continue;
      }
      for (EndpointOptions::Mode mode :
           {EndpointOptions::Mode::kSlidingWindow,
            EndpointOptions::Mode::kStopAndWait}) {
        Result sum;
        for (int run = 0; run < kRuns; ++run) {
          Result r = RunTransfer(mode, message_bytes, loss,
                                 7000 + run * 31 +
                                     static_cast<uint64_t>(loss * 100));
          sum.completion_ms += r.completion_ms;
          sum.data_segments += r.data_segments;
          sum.ack_segments += r.ack_segments;
          sum.retransmissions += r.retransmissions;
        }
        std::printf("%-9zu %-7s %6.0f%% %10.1f %8.1f %8.1f %10.1f\n",
                    message_bytes, ModeName(mode), loss * 100,
                    sum.completion_ms / kRuns,
                    static_cast<double>(sum.data_segments) / kRuns,
                    static_cast<double>(sum.ack_segments) / kRuns,
                    static_cast<double>(sum.retransmissions) / kRuns);
        report.AddRow("transfer")
            .Set("message_bytes", static_cast<uint64_t>(message_bytes))
            .Set("mode", ModeName(mode))
            .Set("loss", loss)
            .Set("time_ms", sum.completion_ms / kRuns)
            .Set("data_segments",
                 static_cast<double>(sum.data_segments) / kRuns)
            .Set("ack_segments",
                 static_cast<double>(sum.ack_segments) / kRuns)
            .Set("retransmissions",
                 static_cast<double>(sum.retransmissions) / kRuns);
      }
    }
  }
  std::printf("\nexpected shape: PARC acks roughly one per data segment "
              "and pays a round\ntrip per segment; Circus blasts the "
              "window and completes in ~2 flights\nwhen nothing is "
              "lost.\n");

  // E17: packets per call on the tapped wire, with and without the
  // postponed-acknowledgment win (Section 4.2.4). Back-to-back calls
  // let every return ride as the call's ack and every next call absorb
  // the previous return's ack; paced calls idle past the timeout and
  // pay the acknowledgment traffic explicitly.
  const int kWireCalls = report.Calls(50, 10);
  std::printf("\nE17: wire cost per call from a packet-tap capture "
              "(%d single-segment calls,\n64-byte args, 8-byte result; "
              "audited clean against Section 4.2)\n\n", kWireCalls);
  std::printf("%-13s %10s %10s %8s %10s %8s\n", "pacing", "packets",
              "bytes", "acks", "implicit", "retrans");
  for (const bool back_to_back : {true, false}) {
    const WireCostRow row = RunTappedCalls(back_to_back, kWireCalls, 7707);
    const char* pacing = back_to_back ? "back_to_back" : "paced";
    std::printf("%-13s %10.2f %10.1f %8.2f %10.2f %8.2f\n", pacing,
                row.packets_per_call, row.bytes_per_call, row.acks_per_call,
                row.implicit_acks_per_call, row.retransmits_per_call);
    report.AddRow("wire_cost")
        .Set("pacing", pacing)
        .Set("packets_per_call", row.packets_per_call)
        .Set("bytes_per_call", row.bytes_per_call)
        .Set("acks_per_call", row.acks_per_call)
        .Set("implicit_acks_per_call", row.implicit_acks_per_call)
        .Set("retransmits_per_call", row.retransmits_per_call);
  }
  std::printf("\nexpected shape: back-to-back traffic approaches 2 "
              "packets per call (call +\nreturn, zero explicit acks); "
              "paced traffic pays roughly one explicit ack\nper call.\n");
  return 0;
}
