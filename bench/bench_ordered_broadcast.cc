// Reproduces Figure 5.1 in operation: the ordered broadcast protocol.
// Measures per-broadcast latency and sustained throughput as functions
// of troupe size, and verifies the protocol's guarantee — identical
// acceptance order at every member — under concurrent senders with
// heterogeneous network delays.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/core/process.h"
#include "src/net/world.h"
#include "src/txn/ordered_broadcast.h"

using circus::Bytes;
using circus::BytesFromString;
using circus::Status;
using circus::core::ModuleNumber;
using circus::core::RpcProcess;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;
using circus::txn::AtomicBroadcast;
using circus::txn::OrderedBroadcastServer;

namespace {

struct RunResult {
  double mean_latency_ms = 0;
  double broadcasts_per_second = 0;
  bool orders_identical = false;
};

RunResult RunBroadcastLoad(int members, int senders, int per_sender) {
  World world(5000 + members * 10 + senders,
              circus::sim::SyscallCostModel::Free());
  circus::sim::Rng delays(7 * members + senders);

  Troupe troupe;
  troupe.id = circus::core::TroupeId{55};
  ModuleNumber module = 0;
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<OrderedBroadcastServer>> servers;
  std::vector<std::vector<std::string>> orders(members);
  for (int i = 0; i < members; ++i) {
    circus::sim::Host* host = world.AddHost("m" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto server =
        std::make_unique<OrderedBroadcastServer>(process.get(), "obcast");
    module = server->module_number();
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    world.executor().Spawn(
        [](OrderedBroadcastServer* s,
           std::vector<std::string>* out) -> Task<void> {
          while (true) {
            Bytes m = co_await s->NextDelivered();
            out->push_back(circus::StringFromBytes(m));
          }
        }(server.get(), &orders[i]));
    processes.push_back(std::move(process));
    servers.push_back(std::move(server));
  }

  std::vector<std::unique_ptr<RpcProcess>> clients;
  double total_latency_ms = 0;
  int completed = 0;
  circus::sim::TimePoint busy_until;
  const circus::sim::TimePoint t0 = world.now();
  for (int c = 0; c < senders; ++c) {
    circus::sim::Host* host = world.AddHost("snd" + std::to_string(c));
    clients.push_back(
        std::make_unique<RpcProcess>(&world.network(), host, 8000));
    for (int m = 0; m < members; ++m) {
      circus::net::FaultPlan plan;
      plan.base_delay = Duration::Micros(delays.UniformInt(100, 3000));
      world.network().SetPairFaultPlan(host->id(),
                                       processes[m]->host()->id(), plan);
    }
    world.executor().Spawn(
        [](RpcProcess* client, Troupe t, ModuleNumber mod, int cid,
           int count, double* latency_out, int* done,
           circus::sim::TimePoint* busy) -> Task<void> {
          const ThreadId thread = client->NewRootThread();
          for (int k = 0; k < count; ++k) {
            const uint64_t id = (static_cast<uint64_t>(cid) << 32) | k;
            const circus::sim::TimePoint start =
                client->host()->executor().now();
            Status s = co_await AtomicBroadcast(
                client, thread, t, mod, id,
                BytesFromString("c" + std::to_string(cid) + ":" +
                                std::to_string(k)));
            CIRCUS_CHECK(s.ok());
            *latency_out +=
                (client->host()->executor().now() - start).ToMillisF();
            ++*done;
            if (client->host()->executor().now() > *busy) {
              *busy = client->host()->executor().now();
            }
          }
        }(clients.back().get(), troupe, module, c, per_sender,
          &total_latency_ms, &completed, &busy_until));
  }
  world.RunFor(Duration::Seconds(600));
  const double elapsed_s = (busy_until - t0).ToSecondsF();

  RunResult r;
  CIRCUS_CHECK(completed == senders * per_sender);
  r.mean_latency_ms = total_latency_ms / completed;
  // Throughput while the senders were actually active (they finish well
  // before the RunFor budget; use delivered/elapsed of the busy phase).
  r.broadcasts_per_second = completed / elapsed_s;
  r.orders_identical = true;
  for (int i = 1; i < members; ++i) {
    if (orders[i] != orders[0]) {
      r.orders_identical = false;
    }
  }
  CIRCUS_CHECK(orders[0].size() ==
               static_cast<size_t>(senders * per_sender));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("ordered_broadcast", argc, argv);
  const int kPerSender = report.Calls(10, 3);
  report.Note("per_sender", kPerSender);
  std::printf("Figure 5.1: ordered broadcast protocol under load\n");
  std::printf("(4 concurrent senders, %d broadcasts each, heterogeneous "
              "delays)\n\n", kPerSender);
  std::printf("%-9s %14s %16s %14s\n", "members", "latency(ms)",
              "broadcasts/sec", "same order?");
  const std::vector<int> sizes = report.quick()
                                     ? std::vector<int>{1, 3}
                                     : std::vector<int>{1, 2, 3, 4, 5};
  for (int members : sizes) {
    RunResult r = RunBroadcastLoad(members, /*senders=*/4, kPerSender);
    std::printf("%-9d %14.2f %16.1f %14s\n", members, r.mean_latency_ms,
                r.broadcasts_per_second,
                r.orders_identical ? "yes" : "NO");
    CIRCUS_CHECK(r.orders_identical);
    report.AddRow("broadcast_load")
        .Set("members", members)
        .Set("latency_ms", r.mean_latency_ms)
        .Set("broadcasts_per_sec", r.broadcasts_per_second)
        .Set("same_order", r.orders_identical);
  }
  std::printf("\nevery member accepted every broadcast in the identical "
              "order.\n");
  return 0;
}
