// Chaos sweep as an availability experiment: the Section 6.4 claim that
// a reconfigured troupe rides out member crashes is exercised by the
// chaos harness (src/chaos) instead of the closed-form Markov chain.
// Crash-only schedules of increasing intensity run against a 3-member
// troupe with a steady client load; the measured failed-call fraction is
// printed next to the Equation 6.1 unavailability prediction
// 1 - A(n, lambda, mu), with lambda read off the schedule (crashes per
// member per minute) and mu from the reconfiguration sweep period
// (replacement latency ~ half a period). Mixed rows add partitions,
// loss/duplication bursts, latency spikes and clock skew on top of the
// same crash budget: the paper's position is that those faults cost
// retransmissions, not availability, so the fraction should stay inside
// the same envelope.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/avail/analysis.h"
#include "src/chaos/harness.h"
#include "src/chaos/schedule.h"
#include "src/sim/time.h"

using circus::avail::TroupeAvailability;
using circus::chaos::ChaosReport;
using circus::chaos::GenerateSchedule;
using circus::chaos::HarnessOptions;
using circus::chaos::RunChaos;
using circus::chaos::Schedule;
using circus::chaos::ScheduleOptions;
using circus::sim::Duration;

namespace {

constexpr int kTroupeSize = 3;
constexpr double kHorizonMinutes = 4.0;

struct RowResult {
  int calls_issued = 0;
  int calls_failed = 0;
  int crashes = 0;
  int violations = 0;
};

RowResult RunRow(int crash_actions, double sweep_seconds, bool mixed,
                 uint64_t first_seed, int seeds_per_row) {
  ScheduleOptions schedule_opts;
  schedule_opts.horizon = Duration::SecondsF(kHorizonMinutes * 60.0);
  schedule_opts.min_start = Duration::Seconds(5);
  if (mixed) {
    // Same expected crash count, plus the full fault mix around it.
    schedule_opts.actions = crash_actions * 2;
    schedule_opts.crash_weight = 5;
    schedule_opts.partition_weight = 2;
    schedule_opts.loss_weight = 1;
    schedule_opts.latency_weight = 1;
    schedule_opts.skew_weight = 1;
  } else {
    schedule_opts.actions = crash_actions;
    schedule_opts.crash_weight = 1;
    schedule_opts.partition_weight = 0;
    schedule_opts.loss_weight = 0;
    schedule_opts.latency_weight = 0;
    schedule_opts.skew_weight = 0;
  }

  HarnessOptions harness_opts;
  harness_opts.troupe_size = kTroupeSize;
  harness_opts.warmup = Duration::Seconds(30);
  harness_opts.run_length = schedule_opts.horizon;
  harness_opts.settle_length = Duration::Seconds(60);
  harness_opts.call_period = Duration::Seconds(2);
  harness_opts.sweep_period = Duration::SecondsF(sweep_seconds);
  // Equation 6.1 counts the troupe available while any member is up, so
  // the measuring client uses first-come collation (the tests keep the
  // stricter quorum client).
  harness_opts.first_come_calls = true;

  RowResult row;
  for (int i = 0; i < seeds_per_row; ++i) {
    const uint64_t seed = first_seed + static_cast<uint64_t>(i);
    harness_opts.seed = seed;
    const Schedule schedule = GenerateSchedule(seed, schedule_opts);
    const ChaosReport report = RunChaos(schedule, harness_opts);
    row.calls_issued += report.calls_accepted + report.calls_failed;
    row.calls_failed += report.calls_failed;
    row.crashes += report.crashes_injected;
    row.violations += static_cast<int>(report.violations.size());
  }
  return row;
}

// One fully traced chaos run (--trace=<prefix>): a mixed fault schedule
// with transactions, exporting the event stream as <prefix>.json (Chrome
// trace_event, chrome://tracing / Perfetto) and <prefix>.jsonl.
void RunTraced(const std::string& prefix) {
  ScheduleOptions schedule_opts;
  schedule_opts.horizon = Duration::Seconds(120);
  schedule_opts.min_start = Duration::Seconds(5);
  schedule_opts.actions = 6;
  schedule_opts.crash_weight = 3;
  schedule_opts.partition_weight = 2;
  schedule_opts.loss_weight = 1;

  HarnessOptions harness_opts;
  harness_opts.seed = 4242;
  harness_opts.troupe_size = kTroupeSize;
  harness_opts.warmup = Duration::Seconds(30);
  harness_opts.run_length = schedule_opts.horizon;
  harness_opts.settle_length = Duration::Seconds(60);
  harness_opts.with_transactions = true;
  harness_opts.trace_json_path = prefix + ".json";
  harness_opts.trace_jsonl_path = prefix + ".jsonl";

  const Schedule schedule =
      GenerateSchedule(harness_opts.seed, schedule_opts);
  const ChaosReport report = RunChaos(schedule, harness_opts);
  std::printf("traced run (seed %llu): %s\n  wrote %s.json and %s.jsonl\n\n",
              static_cast<unsigned long long>(harness_opts.seed),
              report.Summary().c_str(), prefix.c_str(), prefix.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  circus::bench::BenchReport report("chaos", argc, argv);
  std::string trace_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_prefix = argv[i] + 8;
    }
  }
  if (!trace_prefix.empty()) {
    RunTraced(trace_prefix);
  }
  const int seeds_per_row = report.Calls(5, 1);
  report.Note("seeds_per_row", seeds_per_row);
  std::printf("Chaos sweep vs Equation 6.1: failed-call fraction under\n"
              "seeded fault schedules (3-member troupe, %d seeds per row,\n"
              "%.0f simulated minutes of chaos per seed, one call per "
              "2 s)\n\n",
              seeds_per_row, kHorizonMinutes);
  std::printf("%-7s %-8s %-9s %8s %7s %9s %11s %5s\n", "mix", "crashes",
              "sweep(s)", "calls", "failed", "measured", "pred. 6.1",
              "viol");
  for (const bool mixed : {false, true}) {
    for (const int crash_actions : {2, 4, 8}) {
      for (const double sweep_seconds : {15.0, 45.0}) {
        if (report.quick() && (mixed || crash_actions > 2)) {
          continue;  // one crash-only row is enough for a smoke run
        }
        const RowResult row =
            RunRow(crash_actions, sweep_seconds, mixed,
                   /*first_seed=*/9000 +
                       static_cast<uint64_t>(crash_actions) * 100 +
                       static_cast<uint64_t>(sweep_seconds) +
                       (mixed ? 7 : 0),
                   seeds_per_row);
        // Each schedule spreads `crash_actions` crashes over the horizon
        // and the troupe: lambda = crashes / (n * horizon). Replacement
        // waits for the next sweep, half a period on average.
        const double lambda =
            crash_actions / (kTroupeSize * kHorizonMinutes);
        const double mu = 1.0 / (sweep_seconds / 2.0 / 60.0);
        const double predicted =
            1.0 - TroupeAvailability(kTroupeSize, lambda, mu);
        const double measured =
            row.calls_issued > 0
                ? static_cast<double>(row.calls_failed) / row.calls_issued
                : 0.0;
        std::printf("%-7s %-8d %-9.0f %8d %7d %9.4f %11.6f %5d\n",
                    mixed ? "mixed" : "crash", row.crashes, sweep_seconds,
                    row.calls_issued, row.calls_failed, measured, predicted,
                    row.violations);
        report.AddRow("chaos_sweep")
            .Set("mix", mixed ? "mixed" : "crash")
            .Set("crashes", row.crashes)
            .Set("sweep_s", sweep_seconds)
            .Set("calls", row.calls_issued)
            .Set("failed", row.calls_failed)
            .Set("measured", measured)
            .Set("predicted", predicted)
            .Set("violations", row.violations);
      }
    }
  }
  std::printf(
      "\nexpected shape: the measured fraction is zero or near-zero while "
      "the\npredicted unavailability is small, and both grow together as "
      "crashes per\nlifetime rise or the sweep slows; mixed rows track the "
      "crash-only envelope\n(non-crash faults cost retransmissions, not "
      "availability), and the violation\ncolumn stays 0 -- every run also "
      "passes the full invariant monitor.\n");
  return 0;
}
