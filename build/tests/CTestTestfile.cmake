# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/msg_test[1]_include.cmake")
include("/root/repo/build/tests/marshal_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/binding_test[1]_include.cmake")
include("/root/repo/build/tests/txn_store_test[1]_include.cmake")
include("/root/repo/build/tests/txn_commit_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/stubgen_test[1]_include.cmake")
include("/root/repo/build/tests/avail_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/reconfig_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/voting_test[1]_include.cmake")
include("/root/repo/build/tests/collator_test[1]_include.cmake")
include("/root/repo/build/tests/stubgen_generated_test[1]_include.cmake")
