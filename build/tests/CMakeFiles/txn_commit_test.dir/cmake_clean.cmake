file(REMOVE_RECURSE
  "CMakeFiles/txn_commit_test.dir/txn_commit_test.cc.o"
  "CMakeFiles/txn_commit_test.dir/txn_commit_test.cc.o.d"
  "txn_commit_test"
  "txn_commit_test.pdb"
  "txn_commit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_commit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
