file(REMOVE_RECURSE
  "CMakeFiles/voting_test.dir/voting_test.cc.o"
  "CMakeFiles/voting_test.dir/voting_test.cc.o.d"
  "voting_test"
  "voting_test.pdb"
  "voting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
