file(REMOVE_RECURSE
  "CMakeFiles/msg_test.dir/msg_test.cc.o"
  "CMakeFiles/msg_test.dir/msg_test.cc.o.d"
  "msg_test"
  "msg_test.pdb"
  "msg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
