file(REMOVE_RECURSE
  "CMakeFiles/stubgen_generated_test.dir/stubgen_generated_test.cc.o"
  "CMakeFiles/stubgen_generated_test.dir/stubgen_generated_test.cc.o.d"
  "stubgen_generated_test"
  "stubgen_generated_test.pdb"
  "stubgen_generated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubgen_generated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
