# Empty dependencies file for stubgen_generated_test.
# This may be replaced when dependencies are built.
