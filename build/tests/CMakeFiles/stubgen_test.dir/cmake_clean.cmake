file(REMOVE_RECURSE
  "CMakeFiles/stubgen_test.dir/stubgen_test.cc.o"
  "CMakeFiles/stubgen_test.dir/stubgen_test.cc.o.d"
  "stubgen_test"
  "stubgen_test.pdb"
  "stubgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
