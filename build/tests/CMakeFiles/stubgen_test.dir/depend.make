# Empty dependencies file for stubgen_test.
# This may be replaced when dependencies are built.
