# Empty custom commands generated dependencies file for generate_name_server_stubs.
# This may be replaced when dependencies are built.
