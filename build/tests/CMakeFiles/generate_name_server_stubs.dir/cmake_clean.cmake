file(REMOVE_RECURSE
  "CMakeFiles/generate_name_server_stubs"
  "gen/name_server.h"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/generate_name_server_stubs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
