# Empty dependencies file for avail_test.
# This may be replaced when dependencies are built.
