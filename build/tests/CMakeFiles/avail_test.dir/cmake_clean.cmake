file(REMOVE_RECURSE
  "CMakeFiles/avail_test.dir/avail_test.cc.o"
  "CMakeFiles/avail_test.dir/avail_test.cc.o.d"
  "avail_test"
  "avail_test.pdb"
  "avail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
