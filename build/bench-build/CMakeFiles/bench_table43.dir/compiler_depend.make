# Empty compiler generated dependencies file for bench_table43.
# This may be replaced when dependencies are built.
