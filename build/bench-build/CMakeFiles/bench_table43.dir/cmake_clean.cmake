file(REMOVE_RECURSE
  "../bench/bench_table43"
  "../bench/bench_table43.pdb"
  "CMakeFiles/bench_table43.dir/bench_table43.cc.o"
  "CMakeFiles/bench_table43.dir/bench_table43.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table43.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
