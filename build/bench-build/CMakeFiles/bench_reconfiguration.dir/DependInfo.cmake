
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_reconfiguration.cc" "bench-build/CMakeFiles/bench_reconfiguration.dir/bench_reconfiguration.cc.o" "gcc" "bench-build/CMakeFiles/bench_reconfiguration.dir/bench_reconfiguration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/circus_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/binding/CMakeFiles/circus_binding.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/circus_config.dir/DependInfo.cmake"
  "/root/repo/build/src/avail/CMakeFiles/circus_avail.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/circus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/circus_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/circus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/circus_model.dir/DependInfo.cmake"
  "/root/repo/build/src/marshal/CMakeFiles/circus_marshal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/circus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/circus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
