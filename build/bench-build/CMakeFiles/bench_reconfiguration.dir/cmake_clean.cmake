file(REMOVE_RECURSE
  "../bench/bench_reconfiguration"
  "../bench/bench_reconfiguration.pdb"
  "CMakeFiles/bench_reconfiguration.dir/bench_reconfiguration.cc.o"
  "CMakeFiles/bench_reconfiguration.dir/bench_reconfiguration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
