file(REMOVE_RECURSE
  "../bench/bench_table41"
  "../bench/bench_table41.pdb"
  "CMakeFiles/bench_table41.dir/bench_table41.cc.o"
  "CMakeFiles/bench_table41.dir/bench_table41.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table41.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
