# Empty compiler generated dependencies file for bench_table41.
# This may be replaced when dependencies are built.
