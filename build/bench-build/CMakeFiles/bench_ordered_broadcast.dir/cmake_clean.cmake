file(REMOVE_RECURSE
  "../bench/bench_ordered_broadcast"
  "../bench/bench_ordered_broadcast.pdb"
  "CMakeFiles/bench_ordered_broadcast.dir/bench_ordered_broadcast.cc.o"
  "CMakeFiles/bench_ordered_broadcast.dir/bench_ordered_broadcast.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ordered_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
