# Empty compiler generated dependencies file for bench_ordered_broadcast.
# This may be replaced when dependencies are built.
