# Empty dependencies file for circus_bench_util.
# This may be replaced when dependencies are built.
