file(REMOVE_RECURSE
  "libcircus_bench_util.a"
)
