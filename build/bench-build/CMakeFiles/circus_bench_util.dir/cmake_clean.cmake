file(REMOVE_RECURSE
  "CMakeFiles/circus_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/circus_bench_util.dir/bench_util.cc.o.d"
  "libcircus_bench_util.a"
  "libcircus_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
