file(REMOVE_RECURSE
  "../bench/bench_pairmsg_ablation"
  "../bench/bench_pairmsg_ablation.pdb"
  "CMakeFiles/bench_pairmsg_ablation.dir/bench_pairmsg_ablation.cc.o"
  "CMakeFiles/bench_pairmsg_ablation.dir/bench_pairmsg_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pairmsg_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
