# Empty compiler generated dependencies file for bench_multicast_analysis.
# This may be replaced when dependencies are built.
