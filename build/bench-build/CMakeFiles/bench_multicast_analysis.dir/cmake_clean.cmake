file(REMOVE_RECURSE
  "../bench/bench_multicast_analysis"
  "../bench/bench_multicast_analysis.pdb"
  "CMakeFiles/bench_multicast_analysis.dir/bench_multicast_analysis.cc.o"
  "CMakeFiles/bench_multicast_analysis.dir/bench_multicast_analysis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicast_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
