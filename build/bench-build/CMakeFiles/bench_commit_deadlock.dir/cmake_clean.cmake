file(REMOVE_RECURSE
  "../bench/bench_commit_deadlock"
  "../bench/bench_commit_deadlock.pdb"
  "CMakeFiles/bench_commit_deadlock.dir/bench_commit_deadlock.cc.o"
  "CMakeFiles/bench_commit_deadlock.dir/bench_commit_deadlock.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
