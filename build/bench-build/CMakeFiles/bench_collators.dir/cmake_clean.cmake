file(REMOVE_RECURSE
  "../bench/bench_collators"
  "../bench/bench_collators.pdb"
  "CMakeFiles/bench_collators.dir/bench_collators.cc.o"
  "CMakeFiles/bench_collators.dir/bench_collators.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
