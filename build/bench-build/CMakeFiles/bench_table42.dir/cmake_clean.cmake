file(REMOVE_RECURSE
  "../bench/bench_table42"
  "../bench/bench_table42.pdb"
  "CMakeFiles/bench_table42.dir/bench_table42.cc.o"
  "CMakeFiles/bench_table42.dir/bench_table42.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table42.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
