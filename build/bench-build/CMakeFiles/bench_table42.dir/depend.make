# Empty dependencies file for bench_table42.
# This may be replaced when dependencies are built.
