# Empty compiler generated dependencies file for bench_fig48.
# This may be replaced when dependencies are built.
