file(REMOVE_RECURSE
  "../bench/bench_fig48"
  "../bench/bench_fig48.pdb"
  "CMakeFiles/bench_fig48.dir/bench_fig48.cc.o"
  "CMakeFiles/bench_fig48.dir/bench_fig48.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig48.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
