# Empty compiler generated dependencies file for circus_config.
# This may be replaced when dependencies are built.
