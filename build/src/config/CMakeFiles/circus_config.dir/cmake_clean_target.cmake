file(REMOVE_RECURSE
  "libcircus_config.a"
)
