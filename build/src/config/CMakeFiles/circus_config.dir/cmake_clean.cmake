file(REMOVE_RECURSE
  "CMakeFiles/circus_config.dir/ast.cc.o"
  "CMakeFiles/circus_config.dir/ast.cc.o.d"
  "CMakeFiles/circus_config.dir/manager.cc.o"
  "CMakeFiles/circus_config.dir/manager.cc.o.d"
  "CMakeFiles/circus_config.dir/parser.cc.o"
  "CMakeFiles/circus_config.dir/parser.cc.o.d"
  "libcircus_config.a"
  "libcircus_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
