file(REMOVE_RECURSE
  "CMakeFiles/circus_sim.dir/executor.cc.o"
  "CMakeFiles/circus_sim.dir/executor.cc.o.d"
  "CMakeFiles/circus_sim.dir/host.cc.o"
  "CMakeFiles/circus_sim.dir/host.cc.o.d"
  "CMakeFiles/circus_sim.dir/syscall.cc.o"
  "CMakeFiles/circus_sim.dir/syscall.cc.o.d"
  "CMakeFiles/circus_sim.dir/time.cc.o"
  "CMakeFiles/circus_sim.dir/time.cc.o.d"
  "libcircus_sim.a"
  "libcircus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
