file(REMOVE_RECURSE
  "libcircus_sim.a"
)
