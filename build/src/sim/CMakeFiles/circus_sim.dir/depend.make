# Empty dependencies file for circus_sim.
# This may be replaced when dependencies are built.
