file(REMOVE_RECURSE
  "CMakeFiles/circus_avail.dir/analysis.cc.o"
  "CMakeFiles/circus_avail.dir/analysis.cc.o.d"
  "libcircus_avail.a"
  "libcircus_avail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_avail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
