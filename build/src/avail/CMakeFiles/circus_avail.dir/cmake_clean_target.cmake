file(REMOVE_RECURSE
  "libcircus_avail.a"
)
