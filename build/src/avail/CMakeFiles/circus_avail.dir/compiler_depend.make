# Empty compiler generated dependencies file for circus_avail.
# This may be replaced when dependencies are built.
