
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stubgen/codegen.cc" "src/stubgen/CMakeFiles/circus_stubgen_lib.dir/codegen.cc.o" "gcc" "src/stubgen/CMakeFiles/circus_stubgen_lib.dir/codegen.cc.o.d"
  "/root/repo/src/stubgen/docgen.cc" "src/stubgen/CMakeFiles/circus_stubgen_lib.dir/docgen.cc.o" "gcc" "src/stubgen/CMakeFiles/circus_stubgen_lib.dir/docgen.cc.o.d"
  "/root/repo/src/stubgen/idl_parser.cc" "src/stubgen/CMakeFiles/circus_stubgen_lib.dir/idl_parser.cc.o" "gcc" "src/stubgen/CMakeFiles/circus_stubgen_lib.dir/idl_parser.cc.o.d"
  "/root/repo/src/stubgen/printer.cc" "src/stubgen/CMakeFiles/circus_stubgen_lib.dir/printer.cc.o" "gcc" "src/stubgen/CMakeFiles/circus_stubgen_lib.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/circus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
