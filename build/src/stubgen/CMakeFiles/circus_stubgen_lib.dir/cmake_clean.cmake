file(REMOVE_RECURSE
  "CMakeFiles/circus_stubgen_lib.dir/codegen.cc.o"
  "CMakeFiles/circus_stubgen_lib.dir/codegen.cc.o.d"
  "CMakeFiles/circus_stubgen_lib.dir/docgen.cc.o"
  "CMakeFiles/circus_stubgen_lib.dir/docgen.cc.o.d"
  "CMakeFiles/circus_stubgen_lib.dir/idl_parser.cc.o"
  "CMakeFiles/circus_stubgen_lib.dir/idl_parser.cc.o.d"
  "CMakeFiles/circus_stubgen_lib.dir/printer.cc.o"
  "CMakeFiles/circus_stubgen_lib.dir/printer.cc.o.d"
  "libcircus_stubgen_lib.a"
  "libcircus_stubgen_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_stubgen_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
