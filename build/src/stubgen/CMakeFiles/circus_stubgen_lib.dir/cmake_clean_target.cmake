file(REMOVE_RECURSE
  "libcircus_stubgen_lib.a"
)
