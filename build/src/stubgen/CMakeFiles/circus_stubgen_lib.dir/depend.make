# Empty dependencies file for circus_stubgen_lib.
# This may be replaced when dependencies are built.
