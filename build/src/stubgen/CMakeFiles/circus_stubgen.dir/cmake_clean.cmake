file(REMOVE_RECURSE
  "CMakeFiles/circus_stubgen.dir/main.cc.o"
  "CMakeFiles/circus_stubgen.dir/main.cc.o.d"
  "circus_stubgen"
  "circus_stubgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_stubgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
