# Empty dependencies file for circus_stubgen.
# This may be replaced when dependencies are built.
