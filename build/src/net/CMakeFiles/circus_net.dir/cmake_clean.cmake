file(REMOVE_RECURSE
  "CMakeFiles/circus_net.dir/address.cc.o"
  "CMakeFiles/circus_net.dir/address.cc.o.d"
  "CMakeFiles/circus_net.dir/network.cc.o"
  "CMakeFiles/circus_net.dir/network.cc.o.d"
  "CMakeFiles/circus_net.dir/socket.cc.o"
  "CMakeFiles/circus_net.dir/socket.cc.o.d"
  "CMakeFiles/circus_net.dir/stream.cc.o"
  "CMakeFiles/circus_net.dir/stream.cc.o.d"
  "CMakeFiles/circus_net.dir/world.cc.o"
  "CMakeFiles/circus_net.dir/world.cc.o.d"
  "libcircus_net.a"
  "libcircus_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
