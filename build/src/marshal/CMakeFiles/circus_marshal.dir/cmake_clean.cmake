file(REMOVE_RECURSE
  "CMakeFiles/circus_marshal.dir/marshal.cc.o"
  "CMakeFiles/circus_marshal.dir/marshal.cc.o.d"
  "libcircus_marshal.a"
  "libcircus_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
