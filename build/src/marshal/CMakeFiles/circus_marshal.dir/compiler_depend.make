# Empty compiler generated dependencies file for circus_marshal.
# This may be replaced when dependencies are built.
