file(REMOVE_RECURSE
  "libcircus_marshal.a"
)
