file(REMOVE_RECURSE
  "libcircus_model.a"
)
