# Empty compiler generated dependencies file for circus_model.
# This may be replaced when dependencies are built.
