file(REMOVE_RECURSE
  "CMakeFiles/circus_model.dir/history.cc.o"
  "CMakeFiles/circus_model.dir/history.cc.o.d"
  "CMakeFiles/circus_model.dir/recorder.cc.o"
  "CMakeFiles/circus_model.dir/recorder.cc.o.d"
  "libcircus_model.a"
  "libcircus_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
