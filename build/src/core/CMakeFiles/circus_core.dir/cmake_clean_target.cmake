file(REMOVE_RECURSE
  "libcircus_core.a"
)
