file(REMOVE_RECURSE
  "CMakeFiles/circus_core.dir/collator.cc.o"
  "CMakeFiles/circus_core.dir/collator.cc.o.d"
  "CMakeFiles/circus_core.dir/process.cc.o"
  "CMakeFiles/circus_core.dir/process.cc.o.d"
  "CMakeFiles/circus_core.dir/types.cc.o"
  "CMakeFiles/circus_core.dir/types.cc.o.d"
  "CMakeFiles/circus_core.dir/wire.cc.o"
  "CMakeFiles/circus_core.dir/wire.cc.o.d"
  "libcircus_core.a"
  "libcircus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
