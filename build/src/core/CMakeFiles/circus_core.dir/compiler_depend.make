# Empty compiler generated dependencies file for circus_core.
# This may be replaced when dependencies are built.
