file(REMOVE_RECURSE
  "CMakeFiles/circus_binding.dir/client.cc.o"
  "CMakeFiles/circus_binding.dir/client.cc.o.d"
  "CMakeFiles/circus_binding.dir/deploy.cc.o"
  "CMakeFiles/circus_binding.dir/deploy.cc.o.d"
  "CMakeFiles/circus_binding.dir/reconfigurer.cc.o"
  "CMakeFiles/circus_binding.dir/reconfigurer.cc.o.d"
  "CMakeFiles/circus_binding.dir/ringmaster.cc.o"
  "CMakeFiles/circus_binding.dir/ringmaster.cc.o.d"
  "libcircus_binding.a"
  "libcircus_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
