# Empty compiler generated dependencies file for circus_msg.
# This may be replaced when dependencies are built.
