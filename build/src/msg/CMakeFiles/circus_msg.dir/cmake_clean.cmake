file(REMOVE_RECURSE
  "CMakeFiles/circus_msg.dir/paired_endpoint.cc.o"
  "CMakeFiles/circus_msg.dir/paired_endpoint.cc.o.d"
  "CMakeFiles/circus_msg.dir/segment.cc.o"
  "CMakeFiles/circus_msg.dir/segment.cc.o.d"
  "libcircus_msg.a"
  "libcircus_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
