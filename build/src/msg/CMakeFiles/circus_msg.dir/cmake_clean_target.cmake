file(REMOVE_RECURSE
  "libcircus_msg.a"
)
