# Empty dependencies file for circus_txn.
# This may be replaced when dependencies are built.
