file(REMOVE_RECURSE
  "CMakeFiles/circus_txn.dir/commit.cc.o"
  "CMakeFiles/circus_txn.dir/commit.cc.o.d"
  "CMakeFiles/circus_txn.dir/ordered_broadcast.cc.o"
  "CMakeFiles/circus_txn.dir/ordered_broadcast.cc.o.d"
  "CMakeFiles/circus_txn.dir/store.cc.o"
  "CMakeFiles/circus_txn.dir/store.cc.o.d"
  "libcircus_txn.a"
  "libcircus_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
