file(REMOVE_RECURSE
  "libcircus_txn.a"
)
