file(REMOVE_RECURSE
  "libcircus_common.a"
)
