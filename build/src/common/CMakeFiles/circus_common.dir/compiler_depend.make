# Empty compiler generated dependencies file for circus_common.
# This may be replaced when dependencies are built.
