file(REMOVE_RECURSE
  "CMakeFiles/circus_common.dir/hexdump.cc.o"
  "CMakeFiles/circus_common.dir/hexdump.cc.o.d"
  "CMakeFiles/circus_common.dir/log.cc.o"
  "CMakeFiles/circus_common.dir/log.cc.o.d"
  "CMakeFiles/circus_common.dir/status.cc.o"
  "CMakeFiles/circus_common.dir/status.cc.o.d"
  "libcircus_common.a"
  "libcircus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
