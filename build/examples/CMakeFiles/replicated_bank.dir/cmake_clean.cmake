file(REMOVE_RECURSE
  "CMakeFiles/replicated_bank.dir/replicated_bank.cpp.o"
  "CMakeFiles/replicated_bank.dir/replicated_bank.cpp.o.d"
  "replicated_bank"
  "replicated_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
