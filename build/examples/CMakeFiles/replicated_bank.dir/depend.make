# Empty dependencies file for replicated_bank.
# This may be replaced when dependencies are built.
