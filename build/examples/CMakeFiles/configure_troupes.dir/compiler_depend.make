# Empty compiler generated dependencies file for configure_troupes.
# This may be replaced when dependencies are built.
