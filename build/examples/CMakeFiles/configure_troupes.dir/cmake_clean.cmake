file(REMOVE_RECURSE
  "CMakeFiles/configure_troupes.dir/configure_troupes.cpp.o"
  "CMakeFiles/configure_troupes.dir/configure_troupes.cpp.o.d"
  "configure_troupes"
  "configure_troupes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configure_troupes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
