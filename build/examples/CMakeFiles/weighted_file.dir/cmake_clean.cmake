file(REMOVE_RECURSE
  "CMakeFiles/weighted_file.dir/weighted_file.cpp.o"
  "CMakeFiles/weighted_file.dir/weighted_file.cpp.o.d"
  "weighted_file"
  "weighted_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
