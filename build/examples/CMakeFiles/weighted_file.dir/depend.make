# Empty dependencies file for weighted_file.
# This may be replaced when dependencies are built.
