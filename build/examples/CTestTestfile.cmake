# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replicated_bank "/root/repo/build/examples/replicated_bank")
set_tests_properties(example_replicated_bank PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_name_service "/root/repo/build/examples/name_service")
set_tests_properties(example_name_service PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_configure_troupes "/root/repo/build/examples/configure_troupes")
set_tests_properties(example_configure_troupes PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ordered_chat "/root/repo/build/examples/ordered_chat")
set_tests_properties(example_ordered_chat PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_weighted_file "/root/repo/build/examples/weighted_file")
set_tests_properties(example_weighted_file PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
