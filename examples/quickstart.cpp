// Quickstart: the one-page tour of Circus.
//
// Builds a simulated distributed system, deploys the Ringmaster binding
// agent, grows a 3-member "greeter" troupe one member at a time (each
// export is an add_troupe_member call), and makes replicated procedure
// calls against it. Then it crashes a member mid-service to show that
// calls keep succeeding, runs the garbage collector to retire the corpse,
// and brings up a replacement that joins with a get_state transfer.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/binding/client.h"
#include "src/binding/deploy.h"
#include "src/common/check.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"

using circus::Bytes;
using circus::BytesFromString;
using circus::Status;
using circus::StatusOr;
using circus::StringFromBytes;
using circus::binding::BindingCache;
using circus::binding::BindingClient;
using circus::binding::GcAgent;
using circus::core::ModuleNumber;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;

namespace {

// One greeter server process: exports a module whose procedure 0 greets
// the caller and counts how many greetings it has served (the module
// state).
struct Greeter {
  std::unique_ptr<RpcProcess> process;
  std::unique_ptr<BindingClient> binding;
  ModuleNumber module = 0;
  int greetings_served = 0;

  static std::unique_ptr<Greeter> Start(World& world, const Troupe& ring,
                                        const std::string& host_name) {
    auto g = std::make_unique<Greeter>();
    circus::sim::Host* host = world.AddHost(host_name);
    g->process = std::make_unique<RpcProcess>(&world.network(), host, 9000);
    g->binding = std::make_unique<BindingClient>(g->process.get(), ring);
    g->module = g->process->ExportModule("greeter");
    Greeter* raw = g.get();
    g->process->ExportProcedure(
        g->module, 0,
        [raw](ServerCallContext&,
              const Bytes& args) -> Task<StatusOr<Bytes>> {
          ++raw->greetings_served;
          co_return BytesFromString("Hello, " + StringFromBytes(args) +
                                    "!");
        });
    // get_state: the greeting count, so replacements start consistent.
    g->process->SetStateProvider(g->module, [raw] {
      circus::marshal::Writer w;
      w.WriteI32(raw->greetings_served);
      return w.Take();
    });
    return g;
  }

  Task<Status> Join() {
    Greeter* self = this;
    co_return co_await circus::binding::JoinTroupe(
        process.get(), module, binding.get(), "greeter",
        [self](const Bytes& state) {
          circus::marshal::Reader r(state);
          self->greetings_served = r.ReadI32();
        });
  }
};

Task<void> Main(World* world, std::vector<std::unique_ptr<Greeter>>* troupe,
                Troupe ring) {
  // A client process with a binding cache wired in.
  circus::sim::Host* client_host = world->AddHost("client");
  RpcProcess client(&world->network(), client_host, 8000);
  BindingClient client_binding(&client, ring);
  BindingCache cache(&client_binding);
  client.SetClientTroupeResolver(cache.MakeResolver());

  auto greet = [&](const std::string& who) -> Task<void> {
    StatusOr<Bytes> reply = co_await cache.CallByName(
        &client, client.NewRootThread(), "greeter", 0,
        BytesFromString(who));
    if (reply.ok()) {
      std::printf("[%7.3fs] call(\"%s\") -> \"%s\"\n",
                  world->now().ToSecondsF(), who.c_str(),
                  StringFromBytes(*reply).c_str());
    } else {
      std::printf("[%7.3fs] call(\"%s\") failed: %s\n",
                  world->now().ToSecondsF(), who.c_str(),
                  reply.status().ToString().c_str());
    }
  };

  std::printf("-- a replicated call reaches every troupe member and the\n"
              "-- unanimous collator folds the identical replies into one\n");
  co_await greet("Eric");
  co_await greet("Bob");
  for (size_t i = 0; i < troupe->size(); ++i) {
    std::printf("   member %zu served %d greetings\n", i,
                (*troupe)[i]->greetings_served);
  }

  std::printf("-- crash member 1; the troupe masks the partial failure\n");
  (*troupe)[1]->process->host()->Crash();
  co_await greet("Carol");

  std::printf("-- the garbage collector retires the crashed member\n");
  GcAgent gc(&client, &client_binding);
  StatusOr<int> collected = co_await gc.SweepOnce();
  std::printf("   collected %d dead member(s)\n",
              collected.ok() ? *collected : -1);

  std::printf("-- a replacement joins: get_state brings it up to date,\n"
              "-- add_troupe_member gives the troupe a fresh ID\n");
  std::unique_ptr<Greeter> replacement =
      Greeter::Start(*world, ring, "vax-new");
  Status joined = co_await replacement->Join();
  CIRCUS_CHECK(joined.ok());
  std::printf("   replacement starts with %d greetings of state\n",
              replacement->greetings_served);
  troupe->push_back(std::move(replacement));

  cache.Invalidate("greeter");  // pick up the new membership
  co_await greet("Dave");
  std::printf("   replacement now at %d greetings, consistent with the "
              "survivors\n",
              troupe->back()->greetings_served);
  std::printf("done.\n");
}

}  // namespace

int main() {
  World world(/*seed=*/2026);
  circus::binding::RingmasterDeployment ring = circus::binding::
      DeployRingmaster(world, world.AddHosts("ring", 2));

  // Grow the greeter troupe: each member exports itself by name; the
  // first export creates the troupe (Section 6.3).
  std::vector<std::unique_ptr<Greeter>> troupe;
  for (int i = 0; i < 3; ++i) {
    troupe.push_back(
        Greeter::Start(world, ring.troupe, "vax" + std::to_string(i)));
    Greeter* g = troupe.back().get();
    world.executor().Spawn([](Greeter* greeter) -> Task<void> {
      Status s = co_await greeter->Join();
      CIRCUS_CHECK(s.ok());
    }(g));
    // RunFor rather than RunUntilIdle: draining to idle would also run
    // minutes of retention/garbage timers and skew the demo clock.
    world.RunFor(Duration::Seconds(5));
  }
  std::printf("troupe 'greeter' has 3 members on independent machines\n");

  world.executor().Spawn(Main(&world, &troupe, ring.troupe));
  world.RunFor(Duration::Seconds(600));
  return 0;
}
