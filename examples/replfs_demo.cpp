// The replfs application subsystem (src/apps/replfs): a replicated
// file/KV store whose client and server speak only stub-generated
// marshaling, compiled from src/apps/replfs/replfs.idl at build time.
//
// A three-member server troupe backs the store; the demo commits a
// transaction writing two files, shows a failed transaction leaving no
// trace, and reads the committed blocks and the manifest catalogue back
// with unanimous collation -- every member must answer identically.
//
//   $ ./examples/replfs_demo
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gen/apps/replfs.h"  // generated at build time
#include "src/apps/replfs/client.h"
#include "src/apps/replfs/server.h"
#include "src/common/check.h"
#include "src/core/process.h"
#include "src/net/world.h"

namespace fs = circus::idl::ReplFs;

using circus::ErrorCode;
using circus::Status;
using circus::StatusOr;
using circus::apps::replfs::Client;
using circus::apps::replfs::Server;
using circus::apps::replfs::Session;
using circus::core::RpcProcess;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;

namespace {

fs::BlockData Pattern(uint16_t fill) { return fs::BlockData(8, fill); }

// Transaction bodies are free coroutines adapted by plain lambdas (the
// CLAUDE.md coroutine rules).
Task<Status> WriteTwoFilesBody(Session* session) {
  StatusOr<uint16_t> essay = co_await session->Open("essay");
  if (!essay.ok()) {
    co_return essay.status();
  }
  StatusOr<uint16_t> notes = co_await session->Open("notes");
  if (!notes.ok()) {
    co_return notes.status();
  }
  for (uint32_t block = 0; block < 2; ++block) {
    Status s = co_await session->Write(
        *essay, block, Pattern(static_cast<uint16_t>(0x1000 + block)));
    if (!s.ok()) {
      co_return s;
    }
  }
  Status s = co_await session->Write(*notes, 0, Pattern(0x2000));
  if (!s.ok()) {
    co_return s;
  }
  co_return Status::Ok();
}

Task<Status> ChangeOfHeartBody(Session* session) {
  StatusOr<uint16_t> fd = co_await session->Open("draft");
  if (!fd.ok()) {
    co_return fd.status();
  }
  Status s = co_await session->Write(*fd, 0, Pattern(0x3000));
  if (!s.ok()) {
    co_return s;
  }
  co_return Status(ErrorCode::kInvalidArgument, "never mind");
}

Task<void> Demo(Client* client, RpcProcess* process, bool* done) {
  const ThreadId thread = process->NewRootThread();

  const Client::Body write_two = [](Session& session) {
    return WriteTwoFilesBody(&session);
  };
  Status committed = co_await client->Run(thread, write_two);
  CIRCUS_CHECK_MSG(committed.ok(), committed.ToString().c_str());
  std::printf("committed: essay (2 blocks) + notes (1 block)\n");

  const Client::Body change_of_heart = [](Session& session) {
    return ChangeOfHeartBody(&session);
  };
  Status aborted = co_await client->Run(thread, change_of_heart);
  CIRCUS_CHECK(aborted.code() == ErrorCode::kInvalidArgument);
  std::printf("aborted:   draft (the body changed its mind)\n");

  StatusOr<fs::BlockData> block =
      co_await client->ReadBlock(thread, "essay", 1);
  CIRCUS_CHECK_MSG(block.ok(), block.status().ToString().c_str());
  CIRCUS_CHECK(*block == Pattern(0x1001));

  StatusOr<fs::BlockData> ghost =
      co_await client->ReadBlock(thread, "draft", 0);
  CIRCUS_CHECK(!ghost.ok());
  CIRCUS_CHECK(fs::GetReportedError(ghost.status()) ==
               fs::Error::NoSuchFile);

  StatusOr<fs::Manifest> manifest = co_await client->GetManifest(thread);
  CIRCUS_CHECK_MSG(manifest.ok(), manifest.status().ToString().c_str());
  CIRCUS_CHECK(manifest->index() == 1);
  std::printf("manifest (unanimous across 3 members):\n");
  for (const fs::FileInfo& file : std::get<1>(*manifest)) {
    std::printf("  %-8s %u block(s)\n", file.name.c_str(), file.blocks);
  }
  *done = true;
}

}  // namespace

int main() {
  World world(42);
  Troupe troupe;
  troupe.id = circus::core::TroupeId{800};
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<Server>> servers;
  for (int i = 0; i < 3; ++i) {
    circus::sim::Host* host = world.AddHost("fs" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto server = std::make_unique<Server>(process.get());
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(
        process->module_address(server->module_number()));
    world.executor().Spawn(server->DeliverLoop());
    processes.push_back(std::move(process));
    servers.push_back(std::move(server));
  }
  circus::sim::Host* client_host = world.AddHost("client");
  RpcProcess client_process(&world.network(), client_host, 8000);
  Client client(&client_process);
  client.Bind(troupe);

  bool done = false;
  world.executor().Spawn(Demo(&client, &client_process, &done));
  world.RunFor(Duration::Seconds(60));
  CIRCUS_CHECK_MSG(done, "demo did not finish");

  // The invariant behind it all: identical committed bytes everywhere.
  for (auto& server : servers) {
    CIRCUS_CHECK(server->committed_transactions() == 1);
    CIRCUS_CHECK(server->store()
                     .Peek(circus::apps::replfs::BlockKey("essay", 0))
                     .has_value());
  }
  std::printf("replfs demo ok\n");
  return 0;
}
