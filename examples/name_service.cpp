// Name service through the stub compiler (Chapter 7).
//
// This example uses the stubs that circus_stubgen generated at build time
// from tests/data/name_server.idl (the Figure 7.2 interface): a
// replicated name service of three members, called through the generated
// client class. It demonstrates implicit binding, typed REPORTS errors,
// a member crash being masked, and explicit replication with a custom
// first-come collator (Section 7.4).
//
//   $ ./examples/name_service
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gen/name_server.h"
#include "src/common/check.h"
#include "src/net/world.h"

namespace ns = circus::idl::NameServer;

using circus::Bytes;
using circus::Status;
using circus::StatusOr;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;

namespace {

class NameServerImpl : public ns::NameServerHandler {
 public:
  Task<StatusOr<ns::RegisterResults>> Register(
      ServerCallContext&, ns::RegisterArgs args) override {
    if (table_.contains(args.name)) {
      co_return ns::Report(ns::Error::AlreadyExists);
    }
    table_[args.name] = std::move(args.properties);
    co_return ns::RegisterResults{};
  }
  Task<StatusOr<ns::LookupResults>> Lookup(ServerCallContext&,
                                           ns::LookupArgs args) override {
    auto it = table_.find(args.name);
    if (it == table_.end()) {
      co_return ns::Report(ns::Error::NotFound);
    }
    co_return ns::LookupResults{it->second};
  }
  Task<StatusOr<ns::DeleteResults>> Delete(ServerCallContext&,
                                           ns::DeleteArgs args) override {
    if (table_.erase(args.name) == 0) {
      co_return ns::Report(ns::Error::NotFound);
    }
    co_return ns::DeleteResults{};
  }
  Task<StatusOr<ns::DescribeResults>> Describe(
      ServerCallContext&, ns::DescribeArgs args) override {
    auto it = table_.find(args.name);
    if (it == table_.end()) {
      co_return ns::Report(ns::Error::NotFound);
    }
    ns::Entry e;
    e.kind = ns::Kind::service;
    e.properties = it->second;
    e.fingerprint = {0xCAFE, 0xF00D, 7, 7};
    e.owner.emplace<0>(std::string("operations"));
    co_return ns::DescribeResults{std::move(e)};
  }

 private:
  std::map<ns::Name, ns::Properties> table_;
};

ns::Properties AddressProperty(std::initializer_list<uint16_t> addr) {
  ns::Property p;
  p.name = "address";
  p.value = addr;
  return {p};
}

Task<void> Main(World* world, Troupe troupe,
                std::vector<std::unique_ptr<RpcProcess>>* members) {
  circus::sim::Host* host = world->AddHost("workstation");
  RpcProcess process(&world->network(), host, 8000);
  ns::NameServerClient client(&process);
  client.Bind(troupe);

  std::printf("-- register a printer and a file server\n");
  // Built before the co_await statements: GCC 12 cannot capture an
  // initializer_list's backing array in a coroutine frame.
  const ns::Properties printer_props = AddressProperty({10, 0, 0, 9});
  const ns::Properties fileserver_props = AddressProperty({10, 0, 0, 12});
  StatusOr<ns::RegisterResults> r1 = co_await client.Register(
      process.NewRootThread(), "lw-office", printer_props);
  CIRCUS_CHECK(r1.ok());
  StatusOr<ns::RegisterResults> r2 = co_await client.Register(
      process.NewRootThread(), "fs-src", fileserver_props);
  CIRCUS_CHECK(r2.ok());

  std::printf("-- lookup through the generated stub\n");
  StatusOr<ns::LookupResults> found =
      co_await client.Lookup(process.NewRootThread(), "lw-office");
  CIRCUS_CHECK(found.ok());
  std::printf("   lw-office has %zu propert%s; address bytes:",
              found->properties.size(),
              found->properties.size() == 1 ? "y" : "ies");
  for (uint16_t b : found->properties[0].value) {
    std::printf(" %u", b);
  }
  std::printf("\n");

  std::printf("-- typed REPORTS errors\n");
  StatusOr<ns::LookupResults> missing =
      co_await client.Lookup(process.NewRootThread(), "nonesuch");
  CIRCUS_CHECK(!missing.ok());
  std::optional<ns::Error> err = ns::GetReportedError(missing.status());
  std::printf("   lookup(\"nonesuch\") reported %s\n",
              err.has_value() ? std::string(ns::ErrorName(*err)).c_str()
                              : "?");

  std::printf("-- crash a member; the lookup still succeeds\n");
  (*members)[0]->host()->Crash();
  StatusOr<ns::LookupResults> after_crash =
      co_await client.Lookup(process.NewRootThread(), "fs-src");
  std::printf("   lookup(\"fs-src\") after crash: %s\n",
              after_crash.ok() ? "ok" : after_crash.status().ToString().c_str());

  std::printf("-- explicit replication: first-come collator over the raw "
              "stub\n");
  circus::core::CallOptions options;
  options.collation = circus::core::Collation::kFirstCome;
  StatusOr<Bytes> raw = co_await client.LookupRaw(
      troupe, process.NewRootThread(), options, "fs-src");
  CIRCUS_CHECK(raw.ok());
  StatusOr<ns::LookupResults> decoded =
      ns::NameServerClient::DecodeLookupReply(*raw);
  CIRCUS_CHECK(decoded.ok());
  std::printf("   fastest surviving member answered with %zu "
              "propert%s\n",
              decoded->properties.size(),
              decoded->properties.size() == 1 ? "y" : "ies");

  std::printf("-- describe: records, arrays, enums and unions over the "
              "wire\n");
  // emplace-from-co_await rather than a direct frame-local initializer:
  // GCC 12 rejects initializing an array-containing aggregate local from
  // a co_await expression ("array used as initializer").
  std::optional<StatusOr<ns::DescribeResults>> d;
  d.emplace(co_await client.Describe(process.NewRootThread(), "fs-src"));
  CIRCUS_CHECK(d->ok());
  std::printf("   kind=%u fingerprint[0]=0x%X owner=%s\n",
              static_cast<unsigned>((**d).entry.kind),
              (**d).entry.fingerprint[0],
              std::get<0>((**d).entry.owner).c_str());
  std::printf("done.\n");
}

}  // namespace

int main() {
  World world(/*seed=*/1985);
  Troupe troupe;
  troupe.id = circus::core::TroupeId{26};
  std::vector<std::unique_ptr<RpcProcess>> members;
  std::vector<std::unique_ptr<NameServerImpl>> impls;
  for (int i = 0; i < 3; ++i) {
    circus::sim::Host* host = world.AddHost("ns" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto impl = std::make_unique<NameServerImpl>();
    const circus::core::ModuleNumber module =
        ns::ExportNameServer(process.get(), impl.get());
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    members.push_back(std::move(process));
    impls.push_back(std::move(impl));
  }
  world.executor().Spawn(Main(&world, troupe, &members));
  world.RunFor(Duration::Seconds(600));
  return 0;
}
