// Programming-in-the-large (Section 7.5): the troupe configuration
// language and configuration manager.
//
// A machine attribute database describes the department's machines; a
// troupe specification in the configuration language says what the
// troupe needs; the manager instantiates the troupe and later solves the
// troupe extension problem when a chosen machine fails — swapping in a
// replacement while disturbing the existing members as little as
// possible (minimal symmetric difference).
//
//   $ ./examples/configure_troupes
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/config/manager.h"
#include "src/config/parser.h"

using circus::config::ConfigurationManager;
using circus::config::MachineDatabase;
using circus::config::MachineId;
using circus::config::ParseTroupeSpec;
using circus::config::SolveResult;
using circus::config::TroupeSpec;
using circus::config::Value;

namespace {

void PrintSelection(const MachineDatabase& db, const SolveResult& r) {
  for (const auto& [var, machine] : r.assignment) {
    const auto name = db.Attribute(machine, "name");
    std::printf("   %s -> %s\n", var.c_str(),
                name.has_value()
                    ? std::get<std::string>(*name).c_str()
                    : "?");
  }
  std::printf("   (symmetric difference from previous set: %zu)\n",
              r.symmetric_difference);
}

}  // namespace

int main() {
  MachineDatabase db;
  auto add = [&db](const std::string& name, double memory, bool fpu,
                   const std::string& machine_room) {
    return db.AddMachine({{"name", Value(name)},
                          {"memory", Value(memory)},
                          {"has-floating-point", Value(fpu)},
                          {"machine-room", Value(machine_room)}});
  };
  // The universe: six VAX-11/750s, like the paper's testbed.
  add("UCB-Monet", 10, true, "evans");
  add("UCB-Degas", 4, true, "evans");
  const MachineId renoir = add("UCB-Renoir", 8, true, "cory");
  add("UCB-Matisse", 2, false, "cory");
  add("UCB-Seurat", 8, true, "cory");
  add("UCB-Arpa", 8, false, "evans");

  std::printf("-- the troupe specification, in the configuration "
              "language:\n");
  const std::string spec_text =
      "troupe (x, y, z) where\n"
      "  x.memory >= 8 and x.has-floating-point and\n"
      "  y.memory >= 8 and y.has-floating-point and\n"
      "  z.memory >= 4 and z.has-floating-point";
  std::printf("%s\n", spec_text.c_str());
  circus::StatusOr<TroupeSpec> spec = ParseTroupeSpec(spec_text);
  CIRCUS_CHECK(spec.ok());

  ConfigurationManager manager(&db);
  std::printf("-- instantiation (the troupe extension problem with an "
              "empty set):\n");
  circus::StatusOr<SolveResult> initial = manager.Instantiate(*spec);
  CIRCUS_CHECK(initial.ok());
  PrintSelection(db, *initial);

  std::printf("-- UCB-Renoir crashes and is withdrawn from service;\n"
              "-- re-solving keeps the surviving members:\n");
  db.RemoveMachine(renoir);
  circus::StatusOr<SolveResult> replaced =
      manager.ExtendTroupe(*spec, initial->machines);
  CIRCUS_CHECK(replaced.ok());
  PrintSelection(db, *replaced);

  std::printf("-- a stricter spec: every member in a different machine "
              "room\n   cannot be expressed per-machine; but pinning one "
              "works:\n");
  circus::StatusOr<TroupeSpec> pinned = ParseTroupeSpec(
      "troupe (x, y) where x.machine-room = \"evans\" and "
      "y.machine-room = \"cory\" and x.memory >= 4 and y.memory >= 4");
  CIRCUS_CHECK(pinned.ok());
  circus::StatusOr<SolveResult> split = manager.Instantiate(*pinned);
  CIRCUS_CHECK(split.ok());
  PrintSelection(db, *split);

  std::printf("done.\n");
  return 0;
}
