// Weighted voting over replicated procedure calls (Section 4.3.6 claims
// the collator framework "is sufficiently general to express weighted
// voting"; this example is the proof by construction, after Gifford
// 1979).
//
// A replicated file has representatives with voting weights; reads
// gather a read quorum r of weight and return the highest-versioned
// copy; writes push a new version until a write quorum w has applied it.
// With r + w greater than the total weight, every read quorum intersects
// every write quorum, so reads always see the latest durable write —
// even with stale or crashed representatives. The collators are plain
// application code over the ReplyStream generator (Section 7.4).
//
//   $ ./examples/weighted_file
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/collator.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"

using circus::Bytes;
using circus::Status;
using circus::StatusOr;
using circus::core::CallOptions;
using circus::core::ModuleAddress;
using circus::core::ModuleNumber;
using circus::core::Reply;
using circus::core::ReplyStream;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;

namespace {

constexpr circus::core::ProcedureNumber kRead = 0;
constexpr circus::core::ProcedureNumber kWrite = 1;

struct Copy {
  uint32_t version = 0;
  std::string content;
};

Bytes EncodeCopy(const Copy& c) {
  circus::marshal::Writer w;
  w.WriteU32(c.version);
  w.WriteString(c.content);
  return w.Take();
}

Copy DecodeCopy(const Bytes& raw) {
  circus::marshal::Reader r(raw);
  Copy c;
  c.version = r.ReadU32();
  c.content = r.ReadString();
  return c;
}


// Collator factories live OUTSIDE coroutines: GCC 12 miscompiles
// capturing-lambda -> std::function conversions performed inside a
// coroutine body (see README, compiler caveats).
circus::core::Collator MakeReadCollator(
    std::map<ModuleAddress, int> weights, int r) {
  return [weights, r](ReplyStream& stream) -> Task<StatusOr<Bytes>> {
    int heard = 0;
    std::optional<Copy> best;
    while (heard < r) {
      std::optional<Reply> reply = co_await stream.Next();
      if (!reply.has_value()) {
        break;
      }
      if (!reply->result.ok()) {
        continue;
      }
      Copy c = DecodeCopy(*reply->result);
      auto w = weights.find(reply->member);
      heard += (w == weights.end()) ? 0 : w->second;
      if (!best.has_value() || c.version > best->version) {
        best = std::move(c);
      }
    }
    if (heard < r) {
      co_return Status(circus::ErrorCode::kUnavailable,
                       "read quorum unreachable");
    }
    co_return EncodeCopy(*best);
  };
}

circus::core::Collator MakeWriteCollator(
    std::map<ModuleAddress, int> weights, int w) {
  return [weights, w](ReplyStream& stream) -> Task<StatusOr<Bytes>> {
    int applied = 0;
    while (true) {
      std::optional<Reply> reply = co_await stream.Next();
      if (!reply.has_value()) {
        break;
      }
      if (reply->result.ok()) {
        auto it = weights.find(reply->member);
        applied += (it == weights.end()) ? 0 : it->second;
        if (applied >= w) {
          co_return Bytes{};
        }
      }
    }
    co_return Status(circus::ErrorCode::kUnavailable,
                     "write quorum unreachable");
  };
}

struct Representative {
  std::unique_ptr<RpcProcess> process;
  ModuleNumber module = 0;
  int weight = 1;
  Copy copy;
};

class WeightedFile {
 public:
  WeightedFile(World& world, const std::vector<int>& weights) {
    troupe_.id = circus::core::TroupeId{4242};
    for (size_t i = 0; i < weights.size(); ++i) {
      auto rep = std::make_unique<Representative>();
      rep->weight = weights[i];
      circus::sim::Host* host =
          world.AddHost("rep" + std::to_string(i));
      rep->process =
          std::make_unique<RpcProcess>(&world.network(), host, 9000);
      rep->module = rep->process->ExportModule("file");
      Representative* raw = rep.get();
      rep->process->ExportProcedure(
          rep->module, kRead,
          [raw](ServerCallContext&, const Bytes&) -> Task<StatusOr<Bytes>> {
            co_return EncodeCopy(raw->copy);
          });
      rep->process->ExportProcedure(
          rep->module, kWrite,
          [raw](ServerCallContext&,
                const Bytes& args) -> Task<StatusOr<Bytes>> {
            Copy incoming = DecodeCopy(args);
            if (incoming.version > raw->copy.version) {
              raw->copy = std::move(incoming);
            }
            co_return Bytes{};
          });
      rep->process->SetTroupeId(troupe_.id);
      troupe_.members.push_back(rep->process->module_address(rep->module));
      weight_of_[troupe_.members.back()] = rep->weight;
      reps_.push_back(std::move(rep));
    }
  }

  const Troupe& troupe() const { return troupe_; }
  Representative& rep(size_t i) { return *reps_[i]; }

  // Read with quorum r: lazy collator, stops once r weight has answered.
  Task<StatusOr<Copy>> Read(RpcProcess* client, int r) {
    CallOptions opts;
    opts.custom_collator = MakeReadCollator(weight_of_, r);
    StatusOr<Bytes> raw = co_await client->Call(
        client->NewRootThread(), troupe_, 0, kRead, {}, opts);
    if (!raw.ok()) {
      co_return raw.status();
    }
    co_return DecodeCopy(*raw);
  }

  // Write with quorum w.
  Task<Status> Write(RpcProcess* client, Copy copy, int w) {
    CallOptions opts;
    opts.custom_collator = MakeWriteCollator(weight_of_, w);
    StatusOr<Bytes> r = co_await client->Call(
        client->NewRootThread(), troupe_, 0, kWrite, EncodeCopy(copy),
        opts);
    co_return r.status();
  }

 private:
  Troupe troupe_;
  std::vector<std::unique_ptr<Representative>> reps_;
  std::map<ModuleAddress, int> weight_of_;
};

Task<void> Main(World* world, WeightedFile* file) {
  circus::sim::Host* host = world->AddHost("client");
  RpcProcess client(&world->network(), host, 8000);
  // Weights 2,1,1 (total 4); r = 2, w = 3: r + w > 4.
  constexpr int kReadQuorum = 2;
  constexpr int kWriteQuorum = 3;

  std::printf("-- write v1 with a write quorum of %d/4 weight\n",
              kWriteQuorum);
  // Named values rather than braced temporaries in co_await statements:
  // GCC 12 miscompiles aggregate-prvalue coroutine arguments with
  // non-trivial members (the frame copy aliases the temporary).
  const Copy draft{1, "draft"};
  Status w1 = co_await file->Write(&client, draft, kWriteQuorum);
  CIRCUS_CHECK(w1.ok());

  std::printf("-- a light representative sleeps through the next write\n");
  file->rep(2).process->host()->Crash();
  const Copy final_version{2, "final"};
  Status w2 = co_await file->Write(&client, final_version, kWriteQuorum);
  CIRCUS_CHECK(w2.ok());
  file->rep(2).process->host()->Restart();
  std::printf("   rep2 rebooted, stale at version %u\n",
              file->rep(2).copy.version);

  std::printf("-- reads with r=%d always intersect the write quorum\n",
              kReadQuorum);
  StatusOr<Copy> read = co_await file->Read(&client, kReadQuorum);
  CIRCUS_CHECK(read.ok());
  std::printf("   read -> version %u, \"%s\"\n", read->version,
              read->content.c_str());
  CIRCUS_CHECK(read->version == 2);

  std::printf("-- crash both light representatives: the heavy one alone\n"
              "   (weight 2) satisfies r=2 but not w=3\n");
  file->rep(1).process->host()->Crash();
  StatusOr<Copy> still = co_await file->Read(&client, kReadQuorum);
  CIRCUS_CHECK(still.ok());
  std::printf("   read still ok: version %u\n", still->version);
  const Copy blocked_version{3, "blocked"};
  Status blocked =
      co_await file->Write(&client, blocked_version, kWriteQuorum);
  std::printf("   write with w=3: %s\n", blocked.ToString().c_str());
  CIRCUS_CHECK(!blocked.ok());
  std::printf("done.\n");
}

}  // namespace

int main() {
  World world(/*seed=*/1979);  // Gifford's year
  WeightedFile file(world, {2, 1, 1});
  world.executor().Spawn(Main(&world, &file));
  world.RunFor(Duration::Seconds(600));
  return 0;
}
