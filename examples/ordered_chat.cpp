// Ordered broadcast (Section 5.4, Figure 5.1): a replicated chat room.
//
// Three chat-room replicas; several clients post messages concurrently
// through the two-phase atomic broadcast (get_proposed_time /
// accept_time). Every replica ends up with exactly the same transcript —
// the total order the starvation-free concurrency control scheme builds
// on — even though the clients race and the network delays differ per
// path.
//
//   $ ./examples/ordered_chat
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/process.h"
#include "src/net/world.h"
#include "src/txn/ordered_broadcast.h"

using circus::Bytes;
using circus::BytesFromString;
using circus::Status;
using circus::StringFromBytes;
using circus::core::ModuleNumber;
using circus::core::RpcProcess;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;
using circus::txn::AtomicBroadcast;
using circus::txn::OrderedBroadcastServer;

namespace {

Task<void> Collect(OrderedBroadcastServer* server,
                   std::vector<std::string>* transcript) {
  while (true) {
    Bytes msg = co_await server->NextDelivered();
    transcript->push_back(StringFromBytes(msg));
  }
}

Task<void> Chatter(RpcProcess* process, Troupe troupe, ModuleNumber module,
                   int id, int messages) {
  const ThreadId thread = process->NewRootThread();
  for (int k = 0; k < messages; ++k) {
    const uint64_t msg_id =
        (static_cast<uint64_t>(id) << 32) | static_cast<uint64_t>(k);
    const std::string text =
        "user" + std::to_string(id) + ": message " + std::to_string(k);
    Status s = co_await AtomicBroadcast(process, thread, troupe, module,
                                        msg_id, BytesFromString(text));
    CIRCUS_CHECK(s.ok());
  }
}

}  // namespace

int main() {
  World world(/*seed=*/424242);

  Troupe troupe;
  troupe.id = circus::core::TroupeId{500};
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<OrderedBroadcastServer>> rooms;
  std::vector<std::vector<std::string>> transcripts(3);
  ModuleNumber module = 0;
  for (int i = 0; i < 3; ++i) {
    circus::sim::Host* host = world.AddHost("room" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto room =
        std::make_unique<OrderedBroadcastServer>(process.get(), "chat");
    module = room->module_number();
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    world.executor().Spawn(Collect(room.get(), &transcripts[i]));
    processes.push_back(std::move(process));
    rooms.push_back(std::move(room));
  }

  // Three clients with deliberately different latencies to each room, so
  // their proposals interleave differently everywhere.
  std::vector<std::unique_ptr<RpcProcess>> clients;
  for (int c = 0; c < 3; ++c) {
    circus::sim::Host* host = world.AddHost("user" + std::to_string(c));
    clients.push_back(
        std::make_unique<RpcProcess>(&world.network(), host, 8000));
    for (int m = 0; m < 3; ++m) {
      circus::net::FaultPlan plan;
      plan.base_delay = Duration::Micros(200 + 450 * ((c * 3 + m) % 4));
      world.network().SetPairFaultPlan(host->id(),
                                       processes[m]->host()->id(), plan);
    }
    world.executor().Spawn(
        Chatter(clients.back().get(), troupe, module, c, 4));
  }
  world.RunFor(Duration::Seconds(60));

  std::printf("transcript at room replica 0 (%zu messages):\n",
              transcripts[0].size());
  for (const std::string& line : transcripts[0]) {
    std::printf("  %s\n", line.c_str());
  }
  for (int i = 1; i < 3; ++i) {
    CIRCUS_CHECK(transcripts[i] == transcripts[0]);
  }
  std::printf("replicas 1 and 2 have the identical transcript. done.\n");
  return 0;
}
