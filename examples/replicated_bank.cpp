// Replicated bank: replicated transactions in anger (Chapter 5).
//
// A 3-member troupe of transactional account servers; several concurrent
// clients run transfer transactions between the same two accounts. Each
// transfer is a replicated atomic transaction driven by the troupe commit
// protocol: the servers call ready_to_commit back at the client, which
// answers only when every member is ready. Conflicting transfers that get
// serialized differently at different members become deadlocks, are
// aborted by the decision timeout, and retry with binary exponential
// back-off — the sum of money is conserved at every member.
//
//   $ ./examples/replicated_bank
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"
#include "src/txn/commit.h"

using circus::Bytes;
using circus::ErrorCode;
using circus::Status;
using circus::StatusOr;
using circus::core::ModuleNumber;
using circus::core::ProcedureNumber;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;
using circus::txn::CommitCoordinator;
using circus::txn::RunTransaction;
using circus::txn::RunTransactionOptions;
using circus::txn::TransactionalServer;
using circus::txn::TransactionBody;
using circus::txn::TxnId;

namespace {

constexpr ProcedureNumber kDeposit = 1;   // (txn, account, delta)
constexpr ProcedureNumber kBalance = 2;   // (txn, account) -> i64

int64_t DecodeI64(const Bytes& b) {
  circus::marshal::Reader r(b);
  return r.ReadI64();
}

Bytes EncodeI64(int64_t v) {
  circus::marshal::Writer w;
  w.WriteI64(v);
  return w.Take();
}

void InstallBankProcedures(TransactionalServer* server) {
  server->ExportProcedure(
      kDeposit,
      [server](ServerCallContext&,
               const Bytes& args) -> Task<StatusOr<Bytes>> {
        circus::marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        const std::string account = r.ReadString();
        const int64_t delta = r.ReadI64();
        server->store().Begin(txn);
        int64_t balance = 0;
        StatusOr<Bytes> v = co_await server->store().Get(txn, account);
        if (v.ok()) {
          balance = DecodeI64(*v);
        } else if (v.status().code() != ErrorCode::kNotFound) {
          co_return v.status();
        }
        Status s = co_await server->store().Put(txn, account,
                                                EncodeI64(balance + delta));
        if (!s.ok()) {
          co_return s;
        }
        co_return Bytes{};
      });
  server->ExportProcedure(
      kBalance,
      [server](ServerCallContext&,
               const Bytes& args) -> Task<StatusOr<Bytes>> {
        circus::marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        const std::string account = r.ReadString();
        server->store().Begin(txn);
        co_return co_await server->store().Get(txn, account);
      });
}

Bytes EncodeDeposit(const TxnId& txn, const std::string& account,
                    int64_t delta) {
  circus::marshal::Writer w;
  txn.Write(w);
  w.WriteString(account);
  w.WriteI64(delta);
  return w.Take();
}

// The body of one transfer transaction, as a free coroutine function
// (all state copied into the frame).
Task<Status> TransferBody(RpcProcess* process, ThreadId thread,
                          Troupe troupe, ModuleNumber module,
                          std::string from, std::string to, int64_t amount,
                          TxnId txn) {
  StatusOr<Bytes> a = co_await process->Call(
      thread, troupe, module, kDeposit, EncodeDeposit(txn, from, -amount));
  if (!a.ok()) {
    co_return a.status();
  }
  StatusOr<Bytes> b = co_await process->Call(
      thread, troupe, module, kDeposit, EncodeDeposit(txn, to, amount));
  co_return b.status();
}

TransactionBody MakeTransferBody(RpcProcess* process, ThreadId thread,
                                 Troupe troupe, ModuleNumber module,
                                 std::string from, std::string to,
                                 int64_t amount) {
  return [=](const TxnId& txn) {
    return TransferBody(process, thread, troupe, module, from, to, amount,
                        txn);
  };
}

struct Teller {
  std::unique_ptr<RpcProcess> process;
  std::unique_ptr<CommitCoordinator> coordinator;
  circus::sim::Rng rng{0};
  int committed = 0;
};

Task<void> RunTeller(Teller* teller, Troupe troupe, ModuleNumber module,
                     std::string from, std::string to, int transfers) {
  for (int i = 0; i < transfers; ++i) {
    const ThreadId thread = teller->process->NewRootThread();
    RunTransactionOptions opts;
    opts.rng = &teller->rng;
    opts.decision_timeout = Duration::Millis(800);
    const TransactionBody body = MakeTransferBody(
        teller->process.get(), thread, troupe, module, from, to, 10);
    Status s = co_await RunTransaction(teller->process.get(),
                                       teller->coordinator.get(), thread,
                                       troupe, module, body, opts);
    if (s.ok()) {
      ++teller->committed;
    } else {
      std::printf("transfer by %s permanently failed: %s\n",
                  teller->process->process_address().ToString().c_str(),
                  s.ToString().c_str());
    }
  }
}

}  // namespace

int main() {
  World world(/*seed=*/8086);

  // The bank troupe: three transactional servers.
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<TransactionalServer>> servers;
  Troupe troupe;
  troupe.id = circus::core::TroupeId{1001};
  ModuleNumber module = 0;
  for (int i = 0; i < 3; ++i) {
    circus::sim::Host* host = world.AddHost("bank" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto server = std::make_unique<TransactionalServer>(process.get(),
                                                        "account");
    InstallBankProcedures(server.get());
    server->store().set_lock_timeout(Duration::Millis(400));
    module = server->module_number();
    process->SetTroupeId(troupe.id);
    // Initial balances (consistent across members).
    server->store().Poke("alice", EncodeI64(1000));
    server->store().Poke("bob", EncodeI64(1000));
    troupe.members.push_back(process->module_address(module));
    processes.push_back(std::move(process));
    servers.push_back(std::move(server));
  }

  // Two tellers transfer in opposite directions: guaranteed conflicts.
  std::vector<std::unique_ptr<Teller>> tellers;
  for (int i = 0; i < 2; ++i) {
    auto t = std::make_unique<Teller>();
    circus::sim::Host* host = world.AddHost("teller" + std::to_string(i));
    t->process = std::make_unique<RpcProcess>(&world.network(), host, 8000);
    t->coordinator = std::make_unique<CommitCoordinator>(t->process.get());
    t->rng = circus::sim::Rng(100 + i);
    tellers.push_back(std::move(t));
  }
  const int kTransfersEach = 10;
  world.executor().Spawn(RunTeller(tellers[0].get(), troupe, module,
                                   "alice", "bob", kTransfersEach));
  world.executor().Spawn(RunTeller(tellers[1].get(), troupe, module, "bob",
                                   "alice", kTransfersEach));
  world.RunFor(Duration::Seconds(600));

  std::printf("committed transfers: teller0=%d teller1=%d\n",
              tellers[0]->committed, tellers[1]->committed);
  std::printf("coordinator deadlock timeouts: %llu + %llu\n",
              static_cast<unsigned long long>(
                  tellers[0]->coordinator->timeouts()),
              static_cast<unsigned long long>(
                  tellers[1]->coordinator->timeouts()));
  for (int i = 0; i < 3; ++i) {
    const int64_t alice = DecodeI64(*servers[i]->store().Peek("alice"));
    const int64_t bob = DecodeI64(*servers[i]->store().Peek("bob"));
    std::printf(
        "member %d: alice=%lld bob=%lld total=%lld "
        "(deadlock aborts: %llu, lock timeouts: %llu)\n",
        i, static_cast<long long>(alice), static_cast<long long>(bob),
        static_cast<long long>(alice + bob),
        static_cast<unsigned long long>(
            servers[i]->store().deadlock_aborts()),
        static_cast<unsigned long long>(servers[i]->store().lock_timeouts()));
    CIRCUS_CHECK(alice + bob == 2000);  // money is conserved
  }
  // All members must agree exactly (troupe consistency).
  for (int i = 1; i < 3; ++i) {
    CIRCUS_CHECK(*servers[i]->store().Peek("alice") ==
                 *servers[0]->store().Peek("alice"));
    CIRCUS_CHECK(*servers[i]->store().Peek("bob") ==
                 *servers[0]->store().Peek("bob"));
  }
  std::printf("all members consistent; money conserved. done.\n");
  return 0;
}
