#include <gtest/gtest.h>

#include <numeric>

#include "src/avail/analysis.h"
#include "src/sim/random.h"

namespace circus::avail {
namespace {

TEST(HarmonicTest, KnownValues) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(5), 2.2833333, 1e-6);
}

TEST(HarmonicTest, GrowsLogarithmically) {
  // H_n = ln n + gamma + O(1/n).
  constexpr double kEulerGamma = 0.5772156649;
  for (int n : {10, 100, 1000}) {
    EXPECT_NEAR(HarmonicNumber(n), std::log(n) + kEulerGamma, 0.06);
  }
}

TEST(Theorem43Test, ClosedFormMatchesMonteCarlo) {
  sim::Rng rng(17);
  for (int n : {1, 2, 5, 10}) {
    const double expected = ExpectedMaxOfExponentials(n, 10.0);
    const double simulated = SimulateMaxOfExponentials(rng, n, 10.0, 40000);
    EXPECT_NEAR(simulated / expected, 1.0, 0.03)
        << "n=" << n << " expected=" << expected << " sim=" << simulated;
  }
}

TEST(Theorem43Test, MulticastGrowsLogarithmicallyNotLinearly) {
  // The point of the Section 4.4.2 analysis: doubling the troupe adds a
  // roughly constant increment (log growth), not a doubling.
  const double t2 = ExpectedMaxOfExponentials(2, 1.0);
  const double t4 = ExpectedMaxOfExponentials(4, 1.0);
  const double t8 = ExpectedMaxOfExponentials(8, 1.0);
  EXPECT_LT(t8 - t4, t4);             // far from linear
  EXPECT_NEAR(t8 - t4, t4 - t2, 0.2); // roughly constant increments
}

TEST(Equation51Test, KnownValues) {
  // k=1: only one serialization order; never deadlocks.
  EXPECT_DOUBLE_EQ(CommitDeadlockProbability(1, 5), 0.0);
  // n=1: a single member cannot disagree with itself.
  EXPECT_DOUBLE_EQ(CommitDeadlockProbability(4, 1), 0.0);
  // k=2, n=2: 1 - 1/2 = 0.5.
  EXPECT_DOUBLE_EQ(CommitDeadlockProbability(2, 2), 0.5);
  // k=3, n=2: 1 - 1/6.
  EXPECT_NEAR(CommitDeadlockProbability(3, 2), 1.0 - 1.0 / 6, 1e-12);
  // k=2, n=3: 1 - 1/4.
  EXPECT_DOUBLE_EQ(CommitDeadlockProbability(2, 3), 0.75);
}

TEST(Equation51Test, ApproachesCertaintyQuickly) {
  EXPECT_GT(CommitDeadlockProbability(5, 3), 0.9999);
  EXPECT_GT(CommitDeadlockProbability(10, 2), 0.99999);
}

TEST(Equation51Test, MonteCarloMatchesClosedForm) {
  sim::Rng rng(23);
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{
           {2, 2}, {2, 3}, {3, 2}, {3, 3}}) {
    const double predicted = CommitDeadlockProbability(k, n);
    const double simulated =
        SimulateCommitDeadlockProbability(rng, k, n, 40000);
    EXPECT_NEAR(simulated, predicted, 0.01) << "k=" << k << " n=" << n;
  }
}

TEST(Equation61Test, AvailabilityRisesWithReplication) {
  const double lambda = 1.0;  // lifetime 1 hour
  const double mu = 9.0;      // repair in 1/9 hour
  double previous = 0;
  for (int n = 1; n <= 5; ++n) {
    const double a = TroupeAvailability(n, lambda, mu);
    EXPECT_GT(a, previous);
    previous = a;
  }
  // n=3 with repair 9x faster than failure: exactly 99.9% (the paper's
  // worked example).
  EXPECT_NEAR(TroupeAvailability(3, 1.0, 9.0), 0.999, 1e-12);
}

TEST(Equation62Test, PaperWorkedExamples) {
  // 3 members, 99.9%: replacement time at most 1/9 of the lifetime.
  EXPECT_NEAR(MaxReplacementTimeOverLifetime(3, 0.999), 1.0 / 9, 1e-9);
  // 5 members, 99.9%: about 1/3 of the lifetime (the paper's 20 minutes
  // against a one-hour lifetime).
  EXPECT_NEAR(MaxReplacementTimeOverLifetime(5, 0.999), 1.0 / 3, 0.02);
}

TEST(BirthDeathTest, DistributionSumsToOneAndMatchesAvailability) {
  const std::vector<double> p = BirthDeathDistribution(4, 0.5, 4.0);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
  EXPECT_NEAR(1.0 - p[4], TroupeAvailability(4, 0.5, 4.0), 1e-12);
}

TEST(BirthDeathTest, SimulationMatchesClosedForm) {
  sim::Rng rng(31);
  const int n = 3;
  const double lambda = 1.0;
  const double mu = 3.0;
  BirthDeathSample sample =
      SimulateBirthDeath(rng, n, lambda, mu, 200000.0);
  const std::vector<double> p = BirthDeathDistribution(n, lambda, mu);
  for (int k = 0; k <= n; ++k) {
    EXPECT_NEAR(sample.state_time[k], p[k], 0.01) << "k=" << k;
  }
  EXPECT_NEAR(sample.availability, TroupeAvailability(n, lambda, mu),
              0.005);
}

TEST(BirthDeathTest, FasterRepairImprovesAvailability) {
  sim::Rng rng(37);
  const BirthDeathSample slow = SimulateBirthDeath(rng, 2, 1.0, 2.0, 50000);
  const BirthDeathSample fast =
      SimulateBirthDeath(rng, 2, 1.0, 20.0, 50000);
  EXPECT_GT(fast.availability, slow.availability);
}

}  // namespace
}  // namespace circus::avail
