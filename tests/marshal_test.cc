#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/marshal/marshal.h"

namespace circus::marshal {
namespace {

enum class Color : uint16_t { kRed = 0, kGreen = 1, kBlue = 2 };

TEST(MarshalTest, ScalarRoundTrip) {
  Writer w;
  w.WriteBool(true);
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0102030405060708ULL);
  w.WriteI16(-5);
  w.WriteI32(-100000);
  w.WriteI64(-5000000000LL);
  w.WriteF64(3.14159);
  Reader r(w.bytes());
  EXPECT_TRUE(r.ReadBool());
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.ReadI16(), -5);
  EXPECT_EQ(r.ReadI32(), -100000);
  EXPECT_EQ(r.ReadI64(), -5000000000LL);
  EXPECT_DOUBLE_EQ(r.ReadF64(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(MarshalTest, BigEndianOnTheWire) {
  Writer w;
  w.WriteU16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
  Writer w2;
  w2.WriteU32(0x01020304);
  EXPECT_EQ(w2.bytes()[0], 0x01);
  EXPECT_EQ(w2.bytes()[3], 0x04);
}

TEST(MarshalTest, StringRoundTrip) {
  Writer w;
  w.WriteString("hello, troupe");
  w.WriteString("");
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadString(), "hello, troupe");
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(MarshalTest, BytesRoundTrip) {
  Writer w;
  w.WriteBytes(Bytes{1, 2, 3, 255});
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadBytes(), (Bytes{1, 2, 3, 255}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(MarshalTest, EnumAndUnionTag) {
  Writer w;
  w.WriteEnum(Color::kBlue);
  w.WriteUnionTag(1);
  w.WriteI32(42);  // arm 1 payload
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadEnum<Color>(), Color::kBlue);
  EXPECT_EQ(r.ReadUnionTag(), 1);
  EXPECT_EQ(r.ReadI32(), 42);
}

TEST(MarshalTest, SequenceRoundTrip) {
  Writer w;
  std::vector<std::string> names = {"ringmaster", "troupe", "collator"};
  w.WriteSequence(names, [](Writer& writer, const std::string& s) {
    writer.WriteString(s);
  });
  Reader r(w.bytes());
  std::vector<std::string> out = r.ReadSequence<std::string>(
      [](Reader& reader) { return reader.ReadString(); });
  EXPECT_EQ(out, names);
  EXPECT_TRUE(r.AtEnd());
}

TEST(MarshalTest, TruncatedInputPoisonsReader) {
  Writer w;
  w.WriteU32(7);
  Bytes data = w.bytes();
  data.pop_back();
  Reader r(data);
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_FALSE(r.ok());
  // Further reads stay poisoned and return defaults.
  EXPECT_EQ(r.ReadU16(), 0u);
  EXPECT_FALSE(r.AtEnd());
}

TEST(MarshalTest, TruncatedStringPoisons) {
  Writer w;
  w.WriteU32(100);  // claims 100 bytes, provides none
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(MarshalTest, HostileSequenceLengthDoesNotOverallocate) {
  Writer w;
  w.WriteU32(0xFFFFFFFF);  // absurd element count with no data
  Reader r(w.bytes());
  std::vector<int> out =
      r.ReadSequence<int>([](Reader& reader) { return reader.ReadI32(); });
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(r.ok());
}

TEST(MarshalTest, LeftoverBytesDetectedByAtEnd) {
  Writer w;
  w.WriteU16(1);
  w.WriteU16(2);
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadU16(), 1);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.AtEnd());  // one unread field remains
}

TEST(MarshalTest, NestedSequencesOfRecordsRoundTrip) {
  struct Point {
    int32_t x, y;
  };
  std::vector<std::vector<Point>> grid = {
      {{1, 2}, {3, 4}}, {}, {{5, 6}}};
  Writer w;
  w.WriteSequence(grid, [](Writer& writer, const std::vector<Point>& row) {
    writer.WriteSequence(row, [](Writer& ww, const Point& p) {
      ww.WriteI32(p.x);
      ww.WriteI32(p.y);
    });
  });
  Reader r(w.bytes());
  auto rows = r.ReadSequence<std::vector<Point>>([](Reader& reader) {
    return reader.ReadSequence<Point>([](Reader& rr) {
      Point p{};
      p.x = rr.ReadI32();
      p.y = rr.ReadI32();
      return p;
    });
  });
  ASSERT_TRUE(r.AtEnd());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[1].size(), 0u);
  EXPECT_EQ(rows[2][0].x, 5);
  EXPECT_EQ(rows[0][1].y, 4);
}

TEST(MarshalTest, WriterTakeResetsBuffer) {
  Writer w;
  w.WriteU16(1);
  Bytes first = w.Take();
  EXPECT_EQ(first.size(), 2u);
  w.WriteU16(2);
  Bytes second = w.Take();
  EXPECT_EQ(second.size(), 2u);
  EXPECT_NE(first, second);
}

TEST(MarshalTest, NegativeDoubleRoundTrip) {
  Writer w;
  w.WriteF64(-0.0);
  w.WriteF64(-1e300);
  Reader r(w.bytes());
  EXPECT_DOUBLE_EQ(r.ReadF64(), -0.0);
  EXPECT_DOUBLE_EQ(r.ReadF64(), -1e300);
}

}  // namespace
}  // namespace circus::marshal
