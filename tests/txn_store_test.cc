#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/world.h"
#include "src/txn/store.h"
#include "tests/test_util.h"

namespace circus::txn {
namespace {

using circus::testing::RunTask;
using sim::Duration;
using sim::SyscallCostModel;
using sim::Task;

class TxnStoreTest : public ::testing::Test {
 protected:
  TxnStoreTest()
      : world_(51, SyscallCostModel::Free()),
        host_(world_.AddHost("node")),
        store_(host_) {}

  TxnId Id(uint32_t n) { return TxnId{core::ThreadId{1, 1, 1}, n}; }
  TxnId OtherThreadId(uint32_t n) {
    return TxnId{core::ThreadId{2, 2, 2}, n};
  }

  Bytes Val(const std::string& s) { return BytesFromString(s); }

  net::World world_;
  sim::Host* host_;
  TxnStore store_;
};

TEST_F(TxnStoreTest, CommitMakesUpdatesPermanent) {
  const TxnId t = Id(1);
  store_.Begin(t);
  RunTask(world_.executor(), [](TxnStore* s, TxnId txn, Bytes v) -> Task<void> {
    Status st = co_await s->Put(txn, "a", std::move(v));
    CIRCUS_CHECK(st.ok());
  }(&store_, t, Val("1")));
  EXPECT_FALSE(store_.Peek("a").has_value());  // tentative, not visible
  ASSERT_TRUE(store_.Commit(t).ok());
  ASSERT_TRUE(store_.Peek("a").has_value());
  EXPECT_EQ(StringFromBytes(*store_.Peek("a")), "1");
}

TEST_F(TxnStoreTest, AbortLeavesNoTrace) {
  const TxnId t = Id(1);
  store_.Begin(t);
  RunTask(world_.executor(), [](TxnStore* s, TxnId txn, Bytes v) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(txn, "a", std::move(v))).ok());
  }(&store_, t, Val("tentative")));
  store_.Abort(t);
  EXPECT_FALSE(store_.Peek("a").has_value());
  EXPECT_EQ(store_.active_transactions(), 0u);
}

TEST_F(TxnStoreTest, TransactionReadsItsOwnWrites) {
  const TxnId t = Id(1);
  store_.Begin(t);
  std::string got = RunTask(world_.executor(),
                            [](TxnStore* s, TxnId txn) -> Task<std::string> {
    CIRCUS_CHECK((co_await s->Put(txn, "k", BytesFromString("mine"))).ok());
    StatusOr<Bytes> v = co_await s->Get(txn, "k");
    CIRCUS_CHECK(v.ok());
    co_return StringFromBytes(*v);
  }(&store_, t));
  EXPECT_EQ(got, "mine");
}

TEST_F(TxnStoreTest, GetMissingKeyIsNotFound) {
  const TxnId t = Id(1);
  store_.Begin(t);
  Status status = RunTask(world_.executor(),
                          [](TxnStore* s, TxnId txn) -> Task<Status> {
    StatusOr<Bytes> v = co_await s->Get(txn, "ghost");
    co_return v.status();
  }(&store_, t));
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST_F(TxnStoreTest, WriterBlocksReaderUntilCommit) {
  store_.Poke("x", Val("old"));
  const TxnId writer = Id(1);
  const TxnId reader = OtherThreadId(1);
  store_.Begin(writer);
  store_.Begin(reader);
  std::string seen;
  world_.executor().Spawn([](TxnStore* s, TxnId w) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(w, "x", BytesFromString("new"))).ok());
  }(&store_, writer));
  world_.executor().Spawn(
      [](TxnStore* s, TxnId r, std::string* out) -> Task<void> {
        StatusOr<Bytes> v = co_await s->Get(r, "x");
        CIRCUS_CHECK(v.ok());
        *out = StringFromBytes(*v);
      }(&store_, reader, &seen));
  world_.RunFor(Duration::Millis(100));
  EXPECT_EQ(seen, "");  // reader still blocked: no dirty reads
  ASSERT_TRUE(store_.Commit(writer).ok());
  world_.RunUntilIdle();
  EXPECT_EQ(seen, "new");  // strict 2PL: reader saw the committed value
  ASSERT_TRUE(store_.Commit(reader).ok());
}

TEST_F(TxnStoreTest, ConcurrentReadersShareTheLock) {
  store_.Poke("x", Val("shared"));
  const TxnId r1 = Id(1);
  const TxnId r2 = OtherThreadId(1);
  store_.Begin(r1);
  store_.Begin(r2);
  int done = 0;
  for (TxnId t : {r1, r2}) {
    world_.executor().Spawn([](TxnStore* s, TxnId txn, int* out) -> Task<void> {
      StatusOr<Bytes> v = co_await s->Get(txn, "x");
      CIRCUS_CHECK(v.ok());
      ++*out;
    }(&store_, t, &done));
  }
  world_.RunFor(Duration::Millis(10));
  EXPECT_EQ(done, 2);  // neither blocked
}

TEST_F(TxnStoreTest, LockUpgradeWhenSoleReader) {
  store_.Poke("x", Val("0"));
  const TxnId t = Id(1);
  store_.Begin(t);
  bool ok = RunTask(world_.executor(), [](TxnStore* s, TxnId txn) -> Task<bool> {
    StatusOr<Bytes> v = co_await s->Get(txn, "x");  // read lock
    CIRCUS_CHECK(v.ok());
    Status w = co_await s->Put(txn, "x", BytesFromString("1"));  // upgrade
    co_return w.ok();
  }(&store_, t));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(store_.Commit(t).ok());
  EXPECT_EQ(StringFromBytes(*store_.Peek("x")), "1");
}

TEST_F(TxnStoreTest, LocalDeadlockDetectedImmediately) {
  store_.Poke("a", Val("A"));
  store_.Poke("b", Val("B"));
  const TxnId t1 = Id(1);
  const TxnId t2 = OtherThreadId(1);
  store_.Begin(t1);
  store_.Begin(t2);
  Status s1, s2;
  world_.executor().Spawn([](TxnStore* s, TxnId t, Status* out) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(t, "a", BytesFromString("x"))).ok());
    // Give t2 time to grab "b".
    co_await s->host()->SleepFor(Duration::Millis(5));
    Status w = co_await s->Put(t, "b", BytesFromString("x"));
    *out = w;
  }(&store_, t1, &s1));
  world_.executor().Spawn([](TxnStore* s, TxnId t, Status* out) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(t, "b", BytesFromString("y"))).ok());
    co_await s->host()->SleepFor(Duration::Millis(5));
    Status w = co_await s->Put(t, "a", BytesFromString("y"));
    *out = w;
  }(&store_, t2, &s2));
  world_.RunFor(Duration::Millis(100));
  // One of the two must have been refused with kDeadlock, instantly (no
  // timeout needed for a local cycle).
  const bool one_deadlocked = (s1.code() == ErrorCode::kDeadlock) !=
                              (s2.code() == ErrorCode::kDeadlock);
  EXPECT_TRUE(one_deadlocked)
      << "s1=" << s1.ToString() << " s2=" << s2.ToString();
  EXPECT_EQ(store_.deadlock_aborts(), 1u);
}

TEST_F(TxnStoreTest, LockWaitTimesOutAsPresumedDeadlock) {
  store_.set_lock_timeout(Duration::Millis(50));
  store_.Poke("x", Val("held"));
  const TxnId holder = Id(1);
  const TxnId waiter = OtherThreadId(1);
  store_.Begin(holder);
  store_.Begin(waiter);
  Status status;
  world_.executor().Spawn([](TxnStore* s, TxnId t) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(t, "x", BytesFromString("w"))).ok());
    // ... and never commits within the waiter's patience.
  }(&store_, holder));
  world_.executor().Spawn([](TxnStore* s, TxnId t, Status* out) -> Task<void> {
    *out = co_await s->Put(t, "x", BytesFromString("v"));
  }(&store_, waiter, &status));
  world_.RunFor(Duration::Millis(200));
  EXPECT_EQ(status.code(), ErrorCode::kDeadlock);
  EXPECT_EQ(store_.lock_timeouts(), 1u);
  EXPECT_TRUE(store_.Poisoned(waiter));
}

TEST_F(TxnStoreTest, AbortWakesWaitersWithAborted) {
  store_.Poke("x", Val("held"));
  const TxnId holder = Id(1);
  const TxnId waiter = OtherThreadId(1);
  store_.Begin(holder);
  store_.Begin(waiter);
  Status status;
  world_.executor().Spawn([](TxnStore* s, TxnId t) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(t, "x", BytesFromString("w"))).ok());
  }(&store_, holder));
  world_.executor().Spawn([](TxnStore* s, TxnId t, Status* out) -> Task<void> {
    *out = co_await s->Put(t, "x", BytesFromString("v"));
  }(&store_, waiter, &status));
  world_.RunFor(Duration::Millis(10));
  store_.Abort(waiter);  // abort the waiting transaction
  world_.RunUntilIdle();
  EXPECT_EQ(status.code(), ErrorCode::kAborted);
}

TEST_F(TxnStoreTest, NestedChildVisibleToParentAfterCommit) {
  const TxnId parent = Id(1);
  const TxnId child = Id(2);
  store_.Begin(parent);
  store_.BeginNested(child, parent);
  RunTask(world_.executor(), [](TxnStore* s, TxnId c) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(c, "n", BytesFromString("child"))).ok());
  }(&store_, child));
  ASSERT_TRUE(store_.Commit(child).ok());
  // Visible to the parent, not yet to the world.
  EXPECT_FALSE(store_.Peek("n").has_value());
  std::string seen = RunTask(world_.executor(),
                             [](TxnStore* s, TxnId p) -> Task<std::string> {
    StatusOr<Bytes> v = co_await s->Get(p, "n");
    CIRCUS_CHECK(v.ok());
    co_return StringFromBytes(*v);
  }(&store_, parent));
  EXPECT_EQ(seen, "child");
  ASSERT_TRUE(store_.Commit(parent).ok());
  EXPECT_EQ(StringFromBytes(*store_.Peek("n")), "child");
}

TEST_F(TxnStoreTest, NestedChildAbortLeavesParentClean) {
  const TxnId parent = Id(1);
  const TxnId child = Id(2);
  store_.Begin(parent);
  RunTask(world_.executor(), [](TxnStore* s, TxnId p) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(p, "k", BytesFromString("parent"))).ok());
  }(&store_, parent));
  store_.BeginNested(child, parent);
  RunTask(world_.executor(), [](TxnStore* s, TxnId c) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(c, "k", BytesFromString("child"))).ok());
  }(&store_, child));
  store_.Abort(child);
  std::string seen = RunTask(world_.executor(),
                             [](TxnStore* s, TxnId p) -> Task<std::string> {
    StatusOr<Bytes> v = co_await s->Get(p, "k");
    CIRCUS_CHECK(v.ok());
    co_return StringFromBytes(*v);
  }(&store_, parent));
  EXPECT_EQ(seen, "parent");  // the child's update vanished
}

TEST_F(TxnStoreTest, ChildSeesParentTentativeState) {
  const TxnId parent = Id(1);
  const TxnId child = Id(2);
  store_.Begin(parent);
  RunTask(world_.executor(), [](TxnStore* s, TxnId p) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(p, "k", BytesFromString("tent"))).ok());
  }(&store_, parent));
  store_.BeginNested(child, parent);
  std::string seen = RunTask(world_.executor(),
                             [](TxnStore* s, TxnId c) -> Task<std::string> {
    StatusOr<Bytes> v = co_await s->Get(c, "k");  // parent's write lock OK
    CIRCUS_CHECK(v.ok());
    co_return StringFromBytes(*v);
  }(&store_, child));
  EXPECT_EQ(seen, "tent");
}

TEST_F(TxnStoreTest, ParentCommitAbortsUncommittedChildren) {
  const TxnId parent = Id(1);
  const TxnId child = Id(2);
  store_.Begin(parent);
  store_.BeginNested(child, parent);
  RunTask(world_.executor(), [](TxnStore* s, TxnId c) -> Task<void> {
    CIRCUS_CHECK((co_await s->Put(c, "c", BytesFromString("orphan"))).ok());
  }(&store_, child));
  ASSERT_TRUE(store_.Commit(parent).ok());
  EXPECT_FALSE(store_.Peek("c").has_value());
  EXPECT_EQ(store_.active_transactions(), 0u);
}

TEST_F(TxnStoreTest, StateExternalizationRoundTrip) {
  store_.Poke("alpha", Val("1"));
  store_.Poke("beta", Val("2"));
  Bytes state = store_.ExternalizeState();

  TxnStore other(host_);
  other.InternalizeState(state);
  EXPECT_EQ(other.size(), 2u);
  EXPECT_EQ(StringFromBytes(*other.Peek("alpha")), "1");
  EXPECT_EQ(StringFromBytes(*other.Peek("beta")), "2");
}

TEST_F(TxnStoreTest, SerializabilityUnderConcurrentIncrements) {
  // Ten transactions, each read-modify-write on the same counter; locks
  // serialize them, so no increment is lost.
  store_.set_lock_timeout(Duration::Seconds(30));
  store_.Poke("n", Val("0"));
  int committed = 0;
  for (uint32_t i = 1; i <= 10; ++i) {
    const TxnId t{core::ThreadId{i, 1, 1}, 1};
    store_.Begin(t);
    world_.executor().Spawn(
        [](TxnStore* s, TxnId txn, int* out) -> Task<void> {
          StatusOr<Bytes> v = co_await s->Get(txn, "n");
          CIRCUS_CHECK(v.ok());
          const int n = std::stoi(StringFromBytes(*v));
          // A little think time to interleave the transactions.
          co_await s->host()->SleepFor(Duration::Millis(1));
          Status w = co_await s->Put(
              txn, "n", BytesFromString(std::to_string(n + 1)));
          if (w.ok() && s->Commit(txn).ok()) {
            ++*out;
          } else {
            s->Abort(txn);
          }
        }(&store_, t, &committed));
  }
  world_.RunFor(Duration::Seconds(10));
  // Read-read then upgrade conflicts force some deadlock aborts; every
  // transaction that did commit must be fully counted.
  const int final_value =
      std::stoi(StringFromBytes(*store_.Peek("n")));
  EXPECT_EQ(final_value, committed);
  EXPECT_GT(committed, 0);
}

}  // namespace
}  // namespace circus::txn
