#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/process.h"
#include "src/model/history.h"
#include "src/model/recorder.h"
#include "src/net/world.h"
#include "tests/test_util.h"

namespace circus::model {
namespace {

using circus::Bytes;
using circus::BytesFromString;

// Builds the canonical example history:
//   call A.1           (root)
//     call B.1
//     ret  B.1
//     call B.2
//       call C.1
//       ret  C.1
//     ret  B.2
//   ret  A.1
EventSequence ExampleHistory() {
  EventSequence h;
  h.Append(MakeCall(0xA, 1));
  h.Append(MakeCall(0xB, 1));
  h.Append(MakeReturn(0xB, 1));
  h.Append(MakeCall(0xB, 2));
  h.Append(MakeCall(0xC, 1));
  h.Append(MakeReturn(0xC, 1));
  h.Append(MakeReturn(0xB, 2));
  h.Append(MakeReturn(0xA, 1));
  return h;
}

// ------------------------------------------------- Definition 3.1 ------

TEST(HistoryTest, WholeExampleIsBalanced) {
  EXPECT_TRUE(ExampleHistory().IsBalanced());
}

TEST(HistoryTest, SubIntervalsBalancedExactlyWhenDefinitionSays) {
  EventSequence h = ExampleHistory();
  EXPECT_TRUE(h.IsBalancedInterval(1, 2));   // <call B.1, ret B.1>
  EXPECT_TRUE(h.IsBalancedInterval(3, 6));   // B.2 with nested C.1
  EXPECT_TRUE(h.IsBalancedInterval(4, 5));   // the nested C.1
  EXPECT_FALSE(h.IsBalancedInterval(0, 6));  // missing the final return
  EXPECT_FALSE(h.IsBalancedInterval(2, 3));  // <ret, call>
  EXPECT_FALSE(h.IsBalancedInterval(1, 4));  // crosses interval borders
  // Two adjacent balanced intervals are NOT one balanced interval
  // (Definition 3.1 requires c...r to be one call/return pair).
  EXPECT_FALSE(h.IsBalancedInterval(1, 6));
}

TEST(HistoryTest, MismatchedProcedureIsNotBalanced) {
  EventSequence h;
  h.Append(MakeCall(0xA, 1));
  h.Append(MakeReturn(0xA, 2));  // returns from a different procedure
  EXPECT_FALSE(h.IsBalanced());
}

// ------------------------------------------------- Definition 3.2 ------

TEST(HistoryTest, ValidThreadHistory) {
  EXPECT_TRUE(ExampleHistory().IsValidThreadHistory());
}

TEST(HistoryTest, PrefixOfHistoryIsValid) {
  EventSequence h;
  h.Append(MakeCall(0xA, 1));
  h.Append(MakeCall(0xB, 1));  // still executing
  EXPECT_TRUE(h.IsValidThreadHistory());
  EXPECT_FALSE(h.IsBalanced());
}

TEST(HistoryTest, ReturnWithoutCallIsInvalid) {
  EventSequence h;
  h.Append(MakeReturn(0xA, 1));
  EXPECT_FALSE(h.IsValidThreadHistory());
  EventSequence h2;
  h2.Append(MakeCall(0xA, 1));
  h2.Append(MakeReturn(0xA, 1));
  h2.Append(MakeReturn(0xA, 1));  // second return has no call
  EXPECT_FALSE(h2.IsValidThreadHistory());
}

// ------------------------------------------------- Definition 3.3 ------

TEST(HistoryTest, CallStackAndDepth) {
  EventSequence h = ExampleHistory();
  // At the nested call C.1 (index 4): stack is A.1, B.2, C.1.
  EXPECT_EQ(h.CallStack(4), (std::vector<size_t>{0, 3, 4}));
  EXPECT_EQ(h.Depth(4), 3u);
  // At the first return (index 2): only the root remains open.
  EXPECT_EQ(h.CallStack(2), (std::vector<size_t>{0}));
  // After everything returns: empty.
  EXPECT_TRUE(h.CallStack(7).empty());
}

TEST(HistoryTest, ReturnOfFindsMatch) {
  EventSequence h = ExampleHistory();
  EXPECT_EQ(h.ReturnOf(0), 7u);
  EXPECT_EQ(h.ReturnOf(3), 6u);
  EXPECT_EQ(h.ReturnOf(4), 5u);
  EventSequence open;
  open.Append(MakeCall(1, 1));
  EXPECT_FALSE(open.ReturnOf(0).has_value());
}

// --------------------------------------------------- Theorem 3.4 -------

TEST(HistoryTest, DecompositionOfCallEvent) {
  EventSequence h = ExampleHistory();
  // H_{<= call B.2 (index 3)}: c = A.1 (index 0), B_1 = [1,2].
  StatusOr<EventSequence::Decomposition> d = h.Decompose(3);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->c, 0u);
  ASSERT_EQ(d->balanced.size(), 1u);
  EXPECT_EQ(d->balanced[0], (std::pair<size_t, size_t>{1, 2}));
}

TEST(HistoryTest, DecompositionOfReturnEvent) {
  EventSequence h = ExampleHistory();
  // H_{<= ret B.2 (index 6)}: c = call B.2 (index 3), B_1 = the nested
  // C.1 interval [4,5].
  StatusOr<EventSequence::Decomposition> d = h.Decompose(6);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->c, 3u);
  ASSERT_EQ(d->balanced.size(), 1u);
  EXPECT_EQ(d->balanced[0], (std::pair<size_t, size_t>{4, 5}));
  // The final return decomposes against the root with two balanced
  // intervals between them.
  StatusOr<EventSequence::Decomposition> root = h.Decompose(7);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->c, 0u);
  EXPECT_EQ(root->balanced.size(), 2u);
}

// ------------------------------------------------- restriction ---------

TEST(HistoryTest, RestrictionToModule) {
  EventSequence h = ExampleHistory();
  EventSequence b = h.RestrictToModule(0xB);
  ASSERT_EQ(b.size(), 4u);
  // The restriction of a balanced history to a module is a
  // concatenation of balanced intervals (one per execution in M), not
  // necessarily a single interval.
  EXPECT_FALSE(b.IsBalanced());
  EXPECT_TRUE(b.IsBalancedConcatenation());
  EventSequence c = h.RestrictToModule(0xC);
  EXPECT_EQ(c.size(), 2u);
}

// ------------------------------------------------- comparison ----------

TEST(HistoryTest, SameBehaviourIgnoresIds) {
  EventSequence a = ExampleHistory();
  EventSequence b = ExampleHistory();
  EXPECT_TRUE(a.SameBehaviour(b));
  EXPECT_FALSE(a.FirstDivergence(b).has_value());
}

TEST(HistoryTest, FirstDivergenceFindsTheSpot) {
  EventSequence a = ExampleHistory();
  EventSequence b;
  b.Append(MakeCall(0xA, 1));
  b.Append(MakeCall(0xB, 1));
  b.Append(MakeReturn(0xB, 1, BytesFromString("different")));
  std::optional<size_t> d = a.FirstDivergence(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 2u);
}

// ------------------------------------------------- recorders -----------

TEST(RecorderTest, IdenticalRecordersCompareEqual) {
  TraceRecorder a, b;
  for (TraceRecorder* r : {&a, &b}) {
    r->Record("t1", MakeCall(1, 0, BytesFromString("x")));
    r->Record("t1", MakeReturn(1, 0, BytesFromString("y")));
  }
  EXPECT_FALSE(CompareRecorders({&a, &b}).has_value());
}

TEST(RecorderTest, DivergentValuesDetected) {
  TraceRecorder a, b;
  a.Record("t1", MakeCall(1, 0, BytesFromString("x")));
  b.Record("t1", MakeCall(1, 0, BytesFromString("DIFFERENT")));
  std::optional<TraceDivergence> d = CompareRecorders({&a, &b});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->thread_key, "t1");
  EXPECT_EQ(d->index, 0u);
}

TEST(RecorderTest, PrefixToleratedByDefaultNotWhenStrict) {
  TraceRecorder a, b;
  a.Record("t1", MakeCall(1, 0));
  a.Record("t1", MakeReturn(1, 0));
  b.Record("t1", MakeCall(1, 0));  // crashed before returning
  EXPECT_FALSE(CompareRecorders({&a, &b}, /*allow_prefix=*/true)
                   .has_value());
  EXPECT_TRUE(CompareRecorders({&a, &b}, /*allow_prefix=*/false)
                  .has_value());
}

// -------------------------------------- end-to-end with RpcProcess -----

class TraceIntegrationTest : public ::testing::Test {
 protected:
  TraceIntegrationTest()
      : world_(81, sim::SyscallCostModel::Free()) {}
  net::World world_;
};

TEST_F(TraceIntegrationTest, DeterministicTroupeMembersRecordIdenticalHistories) {
  // A 3-member troupe whose procedure makes a nested call to a backend;
  // each member records its history; the traces must agree event for
  // event (the Section 3.5.2 invocation-tree argument).
  core::Troupe backend;
  backend.id = core::TroupeId{600};
  sim::Host* backend_host = world_.AddHost("backend");
  core::RpcProcess backend_process(&world_.network(), backend_host, 9100);
  const core::ModuleNumber backend_module =
      backend_process.ExportModule("store");
  backend_process.ExportProcedure(
      backend_module, 0,
      [](core::ServerCallContext&,
         const Bytes& args) -> sim::Task<StatusOr<Bytes>> {
        co_return args;
      });
  backend_process.SetTroupeId(backend.id);
  backend.members.push_back(
      backend_process.module_address(backend_module));

  core::Troupe front;
  front.id = core::TroupeId{601};
  std::vector<std::unique_ptr<core::RpcProcess>> members;
  std::vector<std::unique_ptr<TraceRecorder>> recorders;
  for (int i = 0; i < 3; ++i) {
    sim::Host* host = world_.AddHost("front" + std::to_string(i));
    auto process =
        std::make_unique<core::RpcProcess>(&world_.network(), host, 9000);
    auto recorder = std::make_unique<TraceRecorder>();
    process->SetTraceRecorder(recorder.get());
    const core::ModuleNumber module = process->ExportModule("front");
    const core::Troupe backend_copy = backend;
    process->ExportProcedure(
        module, 0,
        [backend_copy](core::ServerCallContext& ctx,
                       const Bytes& args) -> sim::Task<StatusOr<Bytes>> {
          // Nested call: recorded between this call's events.
          co_return co_await ctx.Call(backend_copy, 0, 0, args);
        });
    process->SetTroupeId(front.id);
    front.members.push_back(process->module_address(module));
    members.push_back(std::move(process));
    recorders.push_back(std::move(recorder));
  }

  sim::Host* client_host = world_.AddHost("client");
  core::RpcProcess client(&world_.network(), client_host, 8000);
  world_.executor().Spawn(
      [](core::RpcProcess* c, core::Troupe t) -> sim::Task<void> {
        const core::ThreadId thread = c->NewRootThread();
        for (int i = 0; i < 3; ++i) {
          StatusOr<Bytes> r =
              co_await c->Call(thread, t, 0, 0, BytesFromString("req"));
          CIRCUS_CHECK(r.ok());
        }
      }(&client, front));
  world_.RunFor(sim::Duration::Seconds(30));

  std::vector<const TraceRecorder*> views;
  for (auto& r : recorders) {
    views.push_back(r.get());
  }
  std::optional<TraceDivergence> divergence = CompareRecorders(views);
  EXPECT_FALSE(divergence.has_value())
      << (divergence.has_value() ? divergence->description : "");
  // Each member recorded 3 executions x (call + nested call + nested
  // return + return) = 12 events on the client's thread.
  EXPECT_EQ(recorders[0]->total_events(), 12u);
  // And the recorded sequence is a valid thread history per Def. 3.2.
  for (const std::string& thread : recorders[0]->Threads()) {
    EXPECT_TRUE(recorders[0]->TraceOf(thread)->IsValidThreadHistory());
    // Three separate executions: a concatenation of three balanced
    // intervals.
    EXPECT_TRUE(
        recorders[0]->TraceOf(thread)->IsBalancedConcatenation());
  }
}

TEST_F(TraceIntegrationTest, NondeterministicMemberIsCaught) {
  core::Troupe troupe;
  troupe.id = core::TroupeId{602};
  std::vector<std::unique_ptr<core::RpcProcess>> members;
  std::vector<std::unique_ptr<TraceRecorder>> recorders;
  for (int i = 0; i < 2; ++i) {
    sim::Host* host = world_.AddHost("m" + std::to_string(i));
    auto process =
        std::make_unique<core::RpcProcess>(&world_.network(), host, 9000);
    auto recorder = std::make_unique<TraceRecorder>();
    process->SetTraceRecorder(recorder.get());
    const core::ModuleNumber module = process->ExportModule("rngsvc");
    const int member = i;
    process->ExportProcedure(
        module, 0,
        [member](core::ServerCallContext&,
                 const Bytes&) -> sim::Task<StatusOr<Bytes>> {
          // A nondeterministic module: the reply depends on which
          // replica we are (e.g. reading a local clock).
          co_return BytesFromString("member" + std::to_string(member));
        });
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    members.push_back(std::move(process));
    recorders.push_back(std::move(recorder));
  }
  sim::Host* client_host = world_.AddHost("client");
  core::RpcProcess client(&world_.network(), client_host, 8000);
  world_.executor().Spawn(
      [](core::RpcProcess* c, core::Troupe t) -> sim::Task<void> {
        core::CallOptions opts;
        opts.collation = core::Collation::kFirstCome;  // masks the skew
        co_await c->Call(c->NewRootThread(), t, 0, 0, {}, opts);
      }(&client, troupe));
  world_.RunFor(sim::Duration::Seconds(30));

  std::optional<TraceDivergence> divergence =
      CompareRecorders({recorders[0].get(), recorders[1].get()});
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->index, 1u);  // same call, divergent return
}

}  // namespace
}  // namespace circus::model
