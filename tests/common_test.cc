#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/hexdump.h"
#include "src/common/log.h"
#include "src/common/status.h"

namespace circus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kTimeout, "no reply after 5 probes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_EQ(s.ToString(), "TIMEOUT: no reply after 5 probes");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kCancelled); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.code(), ErrorCode::kOk);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status(ErrorCode::kNotFound, "no such troupe"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(BytesTest, RoundTripString) {
  Bytes b = BytesFromString("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(StringFromBytes(b), "hello");
}

TEST(HexDumpTest, FormatsOffsetsHexAndAscii) {
  Bytes b = BytesFromString("ABC\x01");
  std::string dump = HexDump(b);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("41 42 43 01"), std::string::npos);
  EXPECT_NE(dump.find("|ABC.|"), std::string::npos);
}

TEST(HexDumpTest, EmptyBufferYieldsEmptyDump) {
  EXPECT_EQ(HexDump(Bytes{}), "");
}

class LogSinkTest : public ::testing::Test {
 protected:
  ~LogSinkTest() override {
    SetLogSink({});  // restore stderr for the rest of the binary
    SetLogLevel(LogLevel::kWarning);
  }
};

TEST_F(LogSinkTest, SinkReceivesRecordsAboveThreshold) {
  std::vector<std::pair<LogLevel, std::string>> seen;
  SetLogSink([&](LogLevel level, int64_t, const std::string& message) {
    seen.emplace_back(level, message);
  });
  SetLogLevel(LogLevel::kInfo);
  CIRCUS_LOG(LogLevel::kDebug) << "filtered";
  CIRCUS_LOG(LogLevel::kInfo) << "kept " << 42;
  CIRCUS_LOG_AT(LogLevel::kError, 1500000) << "timed";
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair{LogLevel::kInfo, std::string("kept 42")}));
  EXPECT_EQ(seen[1].second, "timed");
}

TEST_F(LogSinkTest, SinkSeesSimTimeAndFormatterRendersIt) {
  int64_t seen_ns = -2;
  SetLogSink([&](LogLevel, int64_t sim_time_ns, const std::string&) {
    seen_ns = sim_time_ns;
  });
  SetLogLevel(LogLevel::kInfo);
  CIRCUS_LOG_AT(LogLevel::kInfo, 2500000000) << "at 2.5s";
  EXPECT_EQ(seen_ns, 2500000000);
  EXPECT_EQ(FormatLogRecord(LogLevel::kInfo, 2500000000, "at 2.5s"),
            "[I   2.500000s] at 2.5s");
  EXPECT_EQ(FormatLogRecord(LogLevel::kWarning, -1, "no time"),
            "[W] no time");
}

TEST_F(LogSinkTest, ThresholdIsLatchedPerLine) {
  // A line below the threshold at construction stays suppressed even if
  // the level drops while it is being streamed.
  std::vector<std::string> seen;
  SetLogSink([&](LogLevel, int64_t, const std::string& message) {
    seen.push_back(message);
  });
  SetLogLevel(LogLevel::kError);
  {
    internal::LogLine line(LogLevel::kInfo, -1);
    SetLogLevel(LogLevel::kTrace);
    line << "started suppressed";
  }
  EXPECT_TRUE(seen.empty());
}

}  // namespace
}  // namespace circus
