#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/hexdump.h"
#include "src/common/status.h"

namespace circus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kTimeout, "no reply after 5 probes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_EQ(s.ToString(), "TIMEOUT: no reply after 5 probes");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kCancelled); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.code(), ErrorCode::kOk);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status(ErrorCode::kNotFound, "no such troupe"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(BytesTest, RoundTripString) {
  Bytes b = BytesFromString("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(StringFromBytes(b), "hello");
}

TEST(HexDumpTest, FormatsOffsetsHexAndAscii) {
  Bytes b = BytesFromString("ABC\x01");
  std::string dump = HexDump(b);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("41 42 43 01"), std::string::npos);
  EXPECT_NE(dump.find("|ABC.|"), std::string::npos);
}

TEST(HexDumpTest, EmptyBufferYieldsEmptyDump) {
  EXPECT_EQ(HexDump(Bytes{}), "");
}

}  // namespace
}  // namespace circus
