// Property-style parameterized sweeps (TEST_P) over the invariants the
// dissertation's correctness arguments rest on:
//
//  * exactly-once execution at all troupe members, for every combination
//    of troupe size and network fault plan (Section 4.1's semantics);
//  * troupe consistency — deterministic members end bit-identical
//    (Section 3.5.2) — under randomized loads and seeds;
//  * identical acceptance order of ordered broadcasts at every member,
//    across seeds and troupe sizes (Section 5.4);
//  * serializability of the lightweight transaction store under
//    randomized concurrent read-modify-write mixes (Section 5.2);
//  * message-layer exactly-once delivery under loss and duplication
//    (Section 4.2).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/msg/paired_endpoint.h"
#include "src/net/world.h"
#include "src/txn/ordered_broadcast.h"
#include "src/txn/store.h"
#include "tests/test_util.h"

namespace circus {
namespace {

using core::ModuleNumber;
using core::RpcProcess;
using core::ServerCallContext;
using core::Troupe;
using net::World;
using sim::Duration;
using sim::SyscallCostModel;
using sim::Task;

// ---------------------------------------------------------------------
// Exactly-once execution & troupe consistency under network faults.

struct FaultCase {
  int troupe_size;
  double loss;
  double duplication;
  uint64_t seed;
};

class ExactlyOnceProperty : public ::testing::TestWithParam<FaultCase> {};

TEST_P(ExactlyOnceProperty, EveryMemberExecutesEveryCallOnce) {
  const FaultCase param = GetParam();
  World world(param.seed, SyscallCostModel::Free());
  net::FaultPlan plan;
  plan.loss_probability = param.loss;
  plan.duplicate_probability = param.duplication;
  plan.base_delay = Duration::Micros(300);
  world.network().set_default_fault_plan(plan);

  Troupe troupe;
  troupe.id = core::TroupeId{700};
  std::vector<std::unique_ptr<RpcProcess>> members;
  std::vector<int> executions(param.troupe_size, 0);
  std::vector<int64_t> state(param.troupe_size, 0);
  ModuleNumber module = 0;
  for (int i = 0; i < param.troupe_size; ++i) {
    sim::Host* host = world.AddHost("m" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    module = process->ExportModule("acc");
    int* exec = &executions[i];
    int64_t* acc = &state[i];
    process->ExportProcedure(
        module, 0,
        [exec, acc](ServerCallContext&,
                    const Bytes& args) -> Task<StatusOr<Bytes>> {
          ++*exec;
          marshal::Reader r(args);
          *acc += r.ReadI64();  // order- and count-sensitive state
          marshal::Writer w;
          w.WriteI64(*acc);
          co_return w.Take();
        });
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    members.push_back(std::move(process));
  }

  sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8000);
  constexpr int kCalls = 8;
  int completed = 0;
  world.executor().Spawn(
      [](RpcProcess* c, Troupe t, ModuleNumber m, int calls,
         int* done) -> Task<void> {
        const core::ThreadId thread = c->NewRootThread();
        for (int i = 1; i <= calls; ++i) {
          marshal::Writer w;
          w.WriteI64(i);
          StatusOr<Bytes> r = co_await c->Call(thread, t, m, 0, w.Take());
          CIRCUS_CHECK(r.ok());
          ++*done;
        }
      }(&client, troupe, module, kCalls, &completed));
  world.RunFor(Duration::Seconds(300));

  ASSERT_EQ(completed, kCalls);
  const int64_t expected_sum = kCalls * (kCalls + 1) / 2;
  for (int i = 0; i < param.troupe_size; ++i) {
    EXPECT_EQ(executions[i], kCalls) << "member " << i;
    EXPECT_EQ(state[i], expected_sum) << "member " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, ExactlyOnceProperty,
    ::testing::Values(
        FaultCase{1, 0.0, 0.0, 11}, FaultCase{3, 0.0, 0.0, 12},
        FaultCase{5, 0.0, 0.0, 13}, FaultCase{3, 0.15, 0.0, 14},
        FaultCase{3, 0.0, 0.5, 15}, FaultCase{3, 0.15, 0.3, 16},
        FaultCase{5, 0.1, 0.1, 17}, FaultCase{2, 0.3, 0.0, 18}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      const FaultCase& c = info.param;
      return "n" + std::to_string(c.troupe_size) + "_loss" +
             std::to_string(static_cast<int>(c.loss * 100)) + "_dup" +
             std::to_string(static_cast<int>(c.duplication * 100)) +
             "_seed" + std::to_string(c.seed);
    });

// ---------------------------------------------------------------------
// Ordered broadcast: identical order at every member, across seeds.

struct BroadcastCase {
  int members;
  int senders;
  uint64_t seed;
};

class BroadcastOrderProperty
    : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastOrderProperty, AllMembersAcceptIdenticalOrder) {
  const BroadcastCase param = GetParam();
  World world(param.seed, SyscallCostModel::Free());
  sim::Rng delays(param.seed * 3 + 1);

  Troupe troupe;
  troupe.id = core::TroupeId{701};
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<txn::OrderedBroadcastServer>> servers;
  std::vector<std::vector<std::string>> orders(param.members);
  ModuleNumber module = 0;
  for (int i = 0; i < param.members; ++i) {
    sim::Host* host = world.AddHost("m" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto server = std::make_unique<txn::OrderedBroadcastServer>(
        process.get(), "ob");
    module = server->module_number();
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    world.executor().Spawn(
        [](txn::OrderedBroadcastServer* s,
           std::vector<std::string>* out) -> Task<void> {
          while (true) {
            Bytes m = co_await s->NextDelivered();
            out->push_back(StringFromBytes(m));
          }
        }(server.get(), &orders[i]));
    processes.push_back(std::move(process));
    servers.push_back(std::move(server));
  }

  std::vector<std::unique_ptr<RpcProcess>> clients;
  constexpr int kPerSender = 4;
  int completed = 0;
  for (int c = 0; c < param.senders; ++c) {
    sim::Host* host = world.AddHost("c" + std::to_string(c));
    clients.push_back(
        std::make_unique<RpcProcess>(&world.network(), host, 8000));
    for (int m = 0; m < param.members; ++m) {
      net::FaultPlan plan;
      plan.base_delay = Duration::Micros(delays.UniformInt(100, 5000));
      world.network().SetPairFaultPlan(host->id(),
                                       processes[m]->host()->id(), plan);
    }
    world.executor().Spawn(
        [](RpcProcess* client, Troupe t, ModuleNumber mod, int cid,
           int* done) -> Task<void> {
          const core::ThreadId thread = client->NewRootThread();
          for (int k = 0; k < kPerSender; ++k) {
            const uint64_t id = (static_cast<uint64_t>(cid) << 32) | k;
            Status s = co_await txn::AtomicBroadcast(
                client, thread, t, mod, id,
                BytesFromString(std::to_string(cid) + ":" +
                                std::to_string(k)));
            CIRCUS_CHECK(s.ok());
            ++*done;
          }
        }(clients.back().get(), troupe, module, c, &completed));
  }
  world.RunFor(Duration::Seconds(120));
  ASSERT_EQ(completed, param.senders * kPerSender);
  ASSERT_EQ(orders[0].size(),
            static_cast<size_t>(param.senders * kPerSender));
  for (int i = 1; i < param.members; ++i) {
    EXPECT_EQ(orders[i], orders[0]) << "member " << i << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrderSweep, BroadcastOrderProperty,
    ::testing::Values(BroadcastCase{2, 2, 21}, BroadcastCase{3, 3, 22},
                      BroadcastCase{3, 3, 23}, BroadcastCase{5, 2, 24},
                      BroadcastCase{4, 4, 25}, BroadcastCase{3, 5, 26}),
    [](const ::testing::TestParamInfo<BroadcastCase>& info) {
      return "m" + std::to_string(info.param.members) + "_s" +
             std::to_string(info.param.senders) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------
// Transaction store: no lost updates under concurrent conflicting
// increments, whatever the interleaving.

struct StoreCase {
  int writers;
  int increments_each;
  uint64_t seed;
};

class StoreSerializabilityProperty
    : public ::testing::TestWithParam<StoreCase> {};

TEST_P(StoreSerializabilityProperty, CommittedIncrementsAllCounted) {
  const StoreCase param = GetParam();
  World world(param.seed, SyscallCostModel::Free());
  sim::Host* host = world.AddHost("node");
  txn::TxnStore store(host);
  store.set_lock_timeout(Duration::Seconds(60));
  {
    marshal::Writer w;
    w.WriteI64(0);
    store.Poke("n", w.Take());
  }
  sim::Rng rng(param.seed * 7);
  int committed = 0;
  for (int writer = 0; writer < param.writers; ++writer) {
    const Duration stagger = Duration::Micros(rng.UniformInt(0, 2000));
    world.executor().Spawn(
        [](txn::TxnStore* s, int id, int count, Duration delay,
           int* out) -> Task<void> {
          co_await s->host()->SleepFor(delay);
          for (int k = 0; k < count; ++k) {
            const txn::TxnId txn{
                core::ThreadId{static_cast<uint32_t>(id), 1, 1},
                static_cast<uint32_t>(k + 1)};
            s->Begin(txn);
            StatusOr<Bytes> v = co_await s->Get(txn, "n");
            if (!v.ok()) {
              s->Abort(txn);
              continue;
            }
            marshal::Reader r(*v);
            const int64_t n = r.ReadI64();
            co_await s->host()->SleepFor(Duration::Micros(100));
            marshal::Writer w;
            w.WriteI64(n + 1);
            Status put = co_await s->Put(txn, "n", w.Take());
            if (put.ok() && s->Commit(txn).ok()) {
              ++*out;
            } else {
              s->Abort(txn);
            }
          }
        }(&store, writer + 1, param.increments_each, stagger, &committed));
  }
  world.RunFor(Duration::Seconds(600));
  const Bytes final_value = *store.Peek("n");
  marshal::Reader r(final_value);
  EXPECT_EQ(r.ReadI64(), committed);
  EXPECT_GT(committed, 0);
  EXPECT_EQ(store.active_transactions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    StoreSweep, StoreSerializabilityProperty,
    ::testing::Values(StoreCase{2, 10, 31}, StoreCase{4, 8, 32},
                      StoreCase{8, 5, 33}, StoreCase{3, 12, 34},
                      StoreCase{6, 6, 35}),
    [](const ::testing::TestParamInfo<StoreCase>& info) {
      return "w" + std::to_string(info.param.writers) + "_k" +
             std::to_string(info.param.increments_each) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------
// Paired message layer: every message delivered exactly once, in spite
// of the fault plan.

struct MsgCase {
  double loss;
  double duplication;
  size_t message_bytes;
  uint64_t seed;
};

class MessageDeliveryProperty : public ::testing::TestWithParam<MsgCase> {
};

TEST_P(MessageDeliveryProperty, ExactlyOnceDeliveryPerCallNumber) {
  const MsgCase param = GetParam();
  World world(param.seed, SyscallCostModel::Free());
  net::FaultPlan plan;
  plan.loss_probability = param.loss;
  plan.duplicate_probability = param.duplication;
  plan.base_delay = Duration::MillisF(0.5);
  world.network().set_default_fault_plan(plan);
  sim::Host* client_host = world.AddHost("c");
  sim::Host* server_host = world.AddHost("s");
  net::DatagramSocket cs(&world.network(), client_host, 0);
  net::DatagramSocket ss(&world.network(), server_host, 9000);
  msg::PairedEndpoint client(&cs, {});
  msg::PairedEndpoint server(&ss, {});

  int deliveries = 0;
  server_host->Spawn([](msg::PairedEndpoint* ep, int* out) -> Task<void> {
    while (true) {
      msg::Message m = co_await ep->NextIncomingCall();
      ++*out;
      co_await ep->SendMessage(m.peer, msg::MessageType::kReturn,
                               m.call_number, Bytes(4, 'k'));
    }
  }(&server, &deliveries));

  constexpr int kMessages = 6;
  int round_trips = 0;
  world.executor().Spawn(
      [](msg::PairedEndpoint* ep, net::NetAddress to, size_t bytes,
         int* out) -> Task<void> {
        for (uint32_t call = 1; call <= kMessages; ++call) {
          Status s = co_await ep->SendMessage(
              to, msg::MessageType::kCall, call, Bytes(bytes, 'p'));
          CIRCUS_CHECK(s.ok());
          auto reply = co_await ep->AwaitReturn(to, call);
          CIRCUS_CHECK(reply.ok());
          ++*out;
        }
      }(&client, server.local_address(), param.message_bytes,
        &round_trips));
  world.RunFor(Duration::Seconds(300));
  EXPECT_EQ(round_trips, kMessages);
  EXPECT_EQ(deliveries, kMessages);  // exactly once, never re-delivered
}

INSTANTIATE_TEST_SUITE_P(
    ChaosSweep, MessageDeliveryProperty,
    ::testing::Values(MsgCase{0.0, 0.0, 64, 41},
                      MsgCase{0.2, 0.0, 64, 42},
                      MsgCase{0.0, 0.7, 64, 43},
                      MsgCase{0.2, 0.3, 64, 44},
                      MsgCase{0.3, 0.0, 8000, 45},
                      MsgCase{0.15, 0.25, 8000, 46},
                      MsgCase{0.4, 0.4, 3000, 47}),
    [](const ::testing::TestParamInfo<MsgCase>& info) {
      const MsgCase& c = info.param;
      return "loss" + std::to_string(static_cast<int>(c.loss * 100)) +
             "_dup" + std::to_string(static_cast<int>(c.duplication * 100)) +
             "_bytes" + std::to_string(c.message_bytes) + "_seed" +
             std::to_string(c.seed);
    });

}  // namespace
}  // namespace circus
