// The packet tap at the Fabric seam and the Section 4.2 wire auditor:
// captures round-trip through JSONL byte-identically per seed, decode
// back into segments, and replay against the paired-message protocol
// rules — every auditor check has a synthetic violation case here, and
// real protocol traffic must audit clean.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/msg/paired_endpoint.h"
#include "src/msg/segment.h"
#include "src/net/socket.h"
#include "src/net/tap.h"
#include "src/net/world.h"
#include "src/obs/wire.h"
#include "tests/test_util.h"

namespace circus::obs::wire {
namespace {

using msg::EndpointOptions;
using msg::MessageType;
using msg::PairedEndpoint;
using msg::Segment;
using net::DatagramSocket;
using net::NetAddress;
using net::ReadWireCaptureFile;
using net::WireCaptureFile;
using net::WirePacket;
using net::World;
using sim::Duration;
using sim::SyscallCostModel;
using sim::Task;

const NetAddress kA{0x0A000001, 9000};
const NetAddress kB{0x0A000002, 9000};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------ synthetic records --

Segment Data(MessageType type, uint32_t call, uint8_t seg, uint8_t total,
             const std::string& payload, bool please_ack = false) {
  Segment s;
  s.type = type;
  s.please_ack = please_ack;
  s.total_segments = total;
  s.segment_number = seg;
  s.call_number = call;
  s.data = BytesFromString(payload);
  return s;
}

Segment Ack(MessageType type, uint32_t call, uint8_t k) {
  Segment s;
  s.type = type;
  s.ack = true;
  s.segment_number = k;
  s.call_number = call;
  return s;
}

Segment Probe(uint32_t call) {
  Segment s;
  s.type = MessageType::kCall;
  s.please_ack = true;
  s.segment_number = 0;
  s.call_number = call;
  return s;
}

WirePacket Pkt(int64_t ms, bool send, NetAddress src, NetAddress dst,
               const Segment& s) {
  WirePacket p;
  p.time_ns = ms * 1'000'000;
  p.send = send;
  p.source = src;
  p.destination = dst;
  p.payload = s.Encode();
  return p;
}

// Both sides of one transmission, as a whole-world capture sees it.
void Exchange(std::vector<WirePacket>* records, int64_t ms, NetAddress src,
              NetAddress dst, const Segment& s) {
  records->push_back(Pkt(ms, /*send=*/true, src, dst, s));
  records->push_back(Pkt(ms + 1, /*send=*/false, src, dst, s));
}

// One complete, legal call 7 from A to B: call data, return data (the
// implicit call ack), explicit return ack.
std::vector<WirePacket> CleanConversation() {
  std::vector<WirePacket> r;
  Exchange(&r, 0, kA, kB, Data(MessageType::kCall, 7, 1, 1, "args"));
  Exchange(&r, 10, kB, kA, Data(MessageType::kReturn, 7, 1, 1, "result"));
  Exchange(&r, 20, kA, kB, Ack(MessageType::kReturn, 7, 1));
  return r;
}

AuditOptions TestOptions() {
  AuditOptions o;
  o.retransmit_floor_ns = 100'000'000;  // 100ms
  o.probe_floor_ns = 500'000'000;       // 500ms
  o.max_silent_probes = 2;
  return o;
}

TEST(WireAudit, CleanConversationHasNoViolations) {
  AuditReport report = AuditRecords(CleanConversation(), TestOptions());
  EXPECT_TRUE(report.violations.empty())
      << report.Render(/*max_violations=*/10, /*include_conversations=*/false);
  EXPECT_EQ(report.CompletedCalls(), 1u);
  EXPECT_TRUE(report.complete);
  const WireCost totals = report.Totals();
  EXPECT_EQ(totals.data_segments, 2u);   // one call + one return segment
  EXPECT_EQ(totals.retransmits, 0u);
  EXPECT_EQ(totals.acks_sent, 1u);
  EXPECT_EQ(totals.acks_received, 1u);
  // The return doubled as the call's ack: one explicit ack saved.
  EXPECT_EQ(totals.implicit_acks, 1u);
  // Caller view on A and callee view on B, both done.
  ASSERT_EQ(report.conversations.size(), 2u);
  EXPECT_EQ(report.conversations[0].node, kA);
  EXPECT_TRUE(report.conversations[0].caller);
  EXPECT_EQ(report.conversations[0].phase, Conversation::Phase::kDone);
  EXPECT_EQ(report.conversations[1].node, kB);
  EXPECT_FALSE(report.conversations[1].caller);
  EXPECT_EQ(report.conversations[1].phase, Conversation::Phase::kDone);
}

TEST(WireAudit, LaterCallImplicitlyAcksTheReturn) {
  std::vector<WirePacket> r;
  Exchange(&r, 0, kA, kB, Data(MessageType::kCall, 7, 1, 1, "args"));
  Exchange(&r, 10, kB, kA, Data(MessageType::kReturn, 7, 1, 1, "result"));
  // No explicit ack: the next call (higher number) acknowledges it.
  Exchange(&r, 20, kA, kB, Data(MessageType::kCall, 8, 1, 1, "args2"));
  Exchange(&r, 30, kB, kA, Data(MessageType::kReturn, 8, 1, 1, "result2"));
  Exchange(&r, 40, kA, kB, Ack(MessageType::kReturn, 8, 1));
  AuditReport report = AuditRecords(r, TestOptions());
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.CompletedCalls(), 2u);
  // Saved acks: both calls (their returns) plus return 7 (call 8).
  EXPECT_EQ(report.Totals().implicit_acks, 3u);
}

TEST(WireAudit, FlagsAckForUnsentSegment) {
  std::vector<WirePacket> r = CleanConversation();
  // A claims to have received 3 segments of a 1-segment return.
  Exchange(&r, 30, kA, kB, Ack(MessageType::kReturn, 7, 3));
  AuditReport report = AuditRecords(r, TestOptions());
  ASSERT_EQ(report.violations.size(), 2u) << report.Render();
  // Send side: A acks data it never received that much of.
  EXPECT_NE(report.violations[0].find("ack for unreceived data"),
            std::string::npos);
  // Receive side: B is acked for segments it never sent.
  EXPECT_NE(report.violations[1].find("ack for unsent segment"),
            std::string::npos);
}

TEST(WireAudit, AckZeroIsAlwaysLegal) {
  // Probing an unknown call is answered with ack 0 (Section 4.2.3).
  std::vector<WirePacket> r;
  Exchange(&r, 0, kA, kB, Probe(99));
  Exchange(&r, 10, kB, kA, Ack(MessageType::kCall, 99, 0));
  AuditReport report = AuditRecords(r, TestOptions());
  EXPECT_TRUE(report.violations.empty()) << report.Render();
}

TEST(WireAudit, FlagsRetransmitBeforeTimeout) {
  std::vector<WirePacket> r;
  const Segment seg = Data(MessageType::kCall, 7, 1, 1, "args");
  Exchange(&r, 0, kA, kB, seg);
  Exchange(&r, 10, kA, kB, seg);  // 10ms < the 100ms floor
  AuditReport report = AuditRecords(r, TestOptions());
  ASSERT_EQ(report.violations.size(), 1u) << report.Render();
  EXPECT_NE(report.violations[0].find("retransmit before timeout"),
            std::string::npos);

  // The same retransmission past the floor is legal.
  std::vector<WirePacket> ok;
  Exchange(&ok, 0, kA, kB, seg);
  Exchange(&ok, 150, kA, kB, seg);
  AuditReport legal = AuditRecords(ok, TestOptions());
  EXPECT_TRUE(legal.violations.empty());
  EXPECT_EQ(legal.Totals().retransmits, 1u);
}

TEST(WireAudit, MulticastBlastThenUnicastFallbackIsNotReuse) {
  // The core resends the same call segments unicast after a multicast
  // blast (Section 4.3.7 fallback); same bytes to a different
  // destination must not count as retransmit-before-timeout or reuse.
  const NetAddress group{0xE0000001, 9000};
  std::vector<WirePacket> r;
  const Segment seg = Data(MessageType::kCall, 7, 1, 1, "args");
  r.push_back(Pkt(0, /*send=*/true, kA, group, seg));
  r.push_back(Pkt(1, /*send=*/false, kA, kB, seg));  // delivered to B
  Exchange(&r, 5, kA, kB, seg);  // unicast fallback, well inside 100ms
  AuditReport report = AuditRecords(r, TestOptions());
  // The fallback is a retransmission of the blast toward B only if keyed
  // per destination; spacing starts at the first unicast send.
  EXPECT_TRUE(report.violations.empty()) << report.Render();
}

TEST(WireAudit, FlagsReturnBeforeCallFullyArrived) {
  std::vector<WirePacket> r;
  // B only ever saw segment 1 of a 2-segment call, yet returns.
  Exchange(&r, 0, kA, kB, Data(MessageType::kCall, 7, 1, 2, "hal"));
  Exchange(&r, 10, kB, kA, Data(MessageType::kReturn, 7, 1, 1, "result"));
  AuditReport report = AuditRecords(r, TestOptions());
  ASSERT_EQ(report.violations.size(), 1u) << report.Render();
  EXPECT_NE(report.violations[0].find("sequence gap at delivery"),
            std::string::npos);
}

TEST(WireAudit, FlagsCallNumberReuseWithDifferentPayload) {
  std::vector<WirePacket> r;
  Exchange(&r, 0, kA, kB, Data(MessageType::kCall, 7, 1, 1, "first"));
  Exchange(&r, 200, kA, kB, Data(MessageType::kCall, 7, 1, 1, "other"));
  AuditReport report = AuditRecords(r, TestOptions());
  ASSERT_EQ(report.violations.size(), 1u) << report.Render();
  EXPECT_NE(report.violations[0].find("identifier reuse"),
            std::string::npos);
}

TEST(WireAudit, FlagsProbeFasterThanInterval) {
  std::vector<WirePacket> r;
  Exchange(&r, 0, kA, kB, Data(MessageType::kCall, 7, 1, 1, "args"));
  Exchange(&r, 100, kA, kB, Probe(7));
  Exchange(&r, 150, kA, kB, Probe(7));  // 50ms < the 500ms floor
  AuditReport report = AuditRecords(r, TestOptions());
  ASSERT_GE(report.violations.size(), 1u) << report.Render();
  EXPECT_NE(report.violations[0].find("probe storm"), std::string::npos);
}

TEST(WireAudit, FlagsMoreSilentProbesThanTheBudget) {
  // max_silent_probes = 2 (+1 audit tolerance): by the 4th unanswered
  // probe the sender should have declared B crashed and stopped.
  std::vector<WirePacket> r;
  Exchange(&r, 0, kA, kB, Data(MessageType::kCall, 7, 1, 1, "args"));
  for (int i = 0; i < 5; ++i) {
    r.push_back(Pkt(600 + i * 600, /*send=*/true, kA, kB, Probe(7)));
  }
  AuditReport report = AuditRecords(r, TestOptions());
  ASSERT_EQ(report.violations.size(), 1u) << report.Render();
  EXPECT_NE(report.violations[0].find("consecutive unanswered probes"),
            std::string::npos);

  // Answered probes never trip the budget.
  std::vector<WirePacket> ok;
  Exchange(&ok, 0, kA, kB, Data(MessageType::kCall, 7, 1, 1, "args"));
  for (int i = 0; i < 5; ++i) {
    ok.push_back(Pkt(600 + i * 600, /*send=*/true, kA, kB, Probe(7)));
    ok.push_back(Pkt(900 + i * 600, /*send=*/false, kB, kA,
                     Ack(MessageType::kCall, 7, 1)));
  }
  AuditReport legal = AuditRecords(ok, TestOptions());
  EXPECT_TRUE(legal.violations.empty()) << legal.Render();
}

TEST(WireAudit, FlagsMemberToMemberPackets) {
  AuditOptions options = TestOptions();
  options.member_addresses = {kA, kB};
  std::vector<WirePacket> r;
  Exchange(&r, 0, kA, kB, Data(MessageType::kCall, 7, 1, 1, "pssst"));
  Exchange(&r, 200, kA, kB, Data(MessageType::kCall, 8, 1, 1, "again"));
  WireAuditor auditor(options);
  auditor.AddRecords(r);
  AuditReport report = auditor.Finish();
  // Deduplicated per (src, dst) pair.
  ASSERT_EQ(report.violations.size(), 1u) << report.Render();
  EXPECT_NE(report.violations[0].find("member-to-member"),
            std::string::npos);
}

TEST(WireAudit, IncompleteCaptureSkipsCompletenessChecks) {
  // The same gap-at-delivery records as above, from a capture that
  // recorded drops: the call's missing segment may simply be missing
  // from the capture, so the auditor must stay quiet...
  std::vector<WirePacket> r;
  Exchange(&r, 0, kA, kB, Data(MessageType::kCall, 7, 1, 2, "hal"));
  Exchange(&r, 10, kB, kA, Data(MessageType::kReturn, 7, 1, 1, "result"));
  AuditReport gaps = AuditRecords(r, TestOptions(), /*complete=*/false);
  EXPECT_TRUE(gaps.violations.empty()) << gaps.Render();
  EXPECT_FALSE(gaps.complete);

  // ...while drop-tolerant checks (spacing, reuse) still fire: a
  // dropped record never makes two sends closer together.
  std::vector<WirePacket> fast;
  const Segment seg = Data(MessageType::kCall, 7, 1, 1, "args");
  Exchange(&fast, 0, kA, kB, seg);
  Exchange(&fast, 10, kA, kB, seg);
  AuditReport spacing = AuditRecords(fast, TestOptions(), /*complete=*/false);
  ASSERT_EQ(spacing.violations.size(), 1u);
}

TEST(WireAudit, RenderIsDeterministic) {
  std::vector<WirePacket> r = CleanConversation();
  Exchange(&r, 30, kA, kB, Ack(MessageType::kReturn, 7, 3));
  const std::string once = AuditRecords(r, TestOptions()).Render();
  const std::string twice = AuditRecords(r, TestOptions()).Render();
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("wire audit:"), std::string::npos);
}

TEST(WireDecode, AttributesNodeAndCountsUndecodable) {
  std::vector<WirePacket> r;
  r.push_back(Pkt(0, /*send=*/true, kA, kB,
                  Data(MessageType::kCall, 7, 1, 1, "x")));
  r.push_back(Pkt(1, /*send=*/false, kA, kB,
                  Data(MessageType::kCall, 7, 1, 1, "x")));
  WirePacket garbage;
  garbage.time_ns = 2;
  garbage.send = true;
  garbage.source = kA;
  garbage.destination = kB;
  garbage.payload = BytesFromString("metrics");  // stats-endpoint text
  r.push_back(garbage);
  uint64_t undecodable = 0;
  std::vector<WireSegment> decoded = DecodeRecords(r, &undecodable);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(undecodable, 1u);
  EXPECT_EQ(decoded[0].node, kA);     // sender's view
  EXPECT_EQ(decoded[0].remote, kB);
  EXPECT_EQ(decoded[1].node, kB);     // receiver's view
  EXPECT_EQ(decoded[1].remote, kA);
}

TEST(WireAudit, AuditOptionsForStaysBelowMinimumJitteredTimer) {
  EndpointOptions endpoint;  // jitter 0.1, retransmit 300ms, probe 1s
  AuditOptions o = AuditOptionsFor(endpoint);
  EXPECT_LT(o.retransmit_floor_ns,
            static_cast<int64_t>(endpoint.retransmit_interval.nanos() * 0.9));
  EXPECT_GT(o.retransmit_floor_ns,
            static_cast<int64_t>(endpoint.retransmit_interval.nanos() * 0.8));
  EXPECT_LT(o.probe_floor_ns,
            static_cast<int64_t>(endpoint.probe_interval.nanos() * 0.9));
  EXPECT_EQ(o.max_silent_probes, endpoint.max_silent_probes);
}

// ---------------------------------------------------- tap round-trip --

// Runs one seeded sim exchange (three calls, one multi-segment) with a
// file capture; returns the capture path.
std::string RunTappedExchange(uint64_t seed, const std::string& name) {
  const std::string path = TempPath(name);
  World world(seed, SyscallCostModel::Free());
  sim::Host* client_host = world.AddHost("client");
  sim::Host* server_host = world.AddHost("server");
  world.CapturePackets(path);
  DatagramSocket client_socket(&world.network(), client_host, 9000);
  DatagramSocket server_socket(&world.network(), server_host, 9000);
  PairedEndpoint client(&client_socket, {});
  PairedEndpoint server(&server_socket, {});
  server_host->Spawn([](PairedEndpoint* ep) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      msg::Message m = co_await ep->NextIncomingCall();
      co_await ep->SendMessage(m.peer, MessageType::kReturn, m.call_number,
                               m.data);
    }
  }(&server));
  world.executor().Spawn([](PairedEndpoint* ep, NetAddress to) -> Task<void> {
    for (uint32_t call = 1; call <= 3; ++call) {
      Bytes payload = call == 2 ? Bytes(3000, 'q')
                                : BytesFromString("ping");
      Status s = co_await ep->SendMessage(to, MessageType::kCall, call,
                                          std::move(payload));
      CIRCUS_CHECK(s.ok());
      auto m = co_await ep->AwaitReturn(to, call);
      CIRCUS_CHECK(m.ok());
    }
  }(&client, server_socket.local_address()));
  // Long enough for the final return's explicit ack round.
  world.RunFor(Duration::Seconds(3));
  CIRCUS_CHECK(world.packet_capture()->Flush().ok());
  return path;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(WireTap, SimCaptureRoundTripsAuditsCleanAndIsDeterministic) {
  const std::string path_a = RunTappedExchange(1234, "cap_a.tap.jsonl");
  const std::string path_b = RunTappedExchange(1234, "cap_b.tap.jsonl");
  // Acceptance: the same seed captures byte-identically.
  EXPECT_EQ(Slurp(path_a), Slurp(path_b));

  circus::StatusOr<WireCaptureFile> capture = ReadWireCaptureFile(path_a);
  ASSERT_TRUE(capture.ok()) << capture.status().ToString();
  EXPECT_EQ(capture->info.node, "world");
  EXPECT_EQ(capture->info.clock, "sim");
  EXPECT_EQ(capture->dropped, 0u);
  EXPECT_FALSE(capture->truncated_tail);
  // Every datagram appears in both directions (nothing dropped in sim
  // with the default fault-free plan).
  EXPECT_GT(capture->records.size(), 10u);

  WireAuditor auditor(AuditOptionsFor(EndpointOptions{}));
  auditor.AddCapture(*capture);
  AuditReport report = auditor.Finish();
  EXPECT_TRUE(report.violations.empty())
      << report.Render(/*max_violations=*/10, /*include_conversations=*/false);
  EXPECT_EQ(report.CompletedCalls(), 3u);
  EXPECT_EQ(report.undecodable, 0u);
  // The 3000-byte call needed three data segments.
  EXPECT_GE(report.Totals().data_segments, 8u);

  // The same records audited twice render byte-identically.
  WireAuditor again(AuditOptionsFor(EndpointOptions{}));
  again.AddCapture(*capture);
  EXPECT_EQ(report.Render(), again.Finish().Render());
}

TEST(WireTap, DeliveryRecordsNameTheReceivingSocket) {
  World world(9, SyscallCostModel::Free());
  sim::Host* a = world.AddHost("a");
  sim::Host* b = world.AddHost("b");
  world.CapturePackets();  // ring-only
  DatagramSocket sa(&world.network(), a, 9000);
  DatagramSocket sb(&world.network(), b, 9000);
  b->Spawn([](DatagramSocket* s) -> Task<void> {
    (void)co_await s->Receive();
  }(&sb));
  a->Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("hello"));
  }(&sa, sb.local_address()));
  world.RunFor(Duration::Millis(100));
  std::vector<WirePacket> records = world.packet_capture()->Recent();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].send);
  EXPECT_FALSE(records[1].send);
  EXPECT_EQ(records[1].destination, sb.local_address());
  EXPECT_EQ(records[1].source, sa.local_address());
  EXPECT_EQ(StringFromBytes(records[1].payload), "hello");
}

TEST(WireTap, RingOverflowCountsDropsAndMarksCaptureIncomplete) {
  const std::string path = TempPath("overflow.tap.jsonl");
  World world(5, SyscallCostModel::Free());
  sim::Host* a = world.AddHost("a");
  sim::Host* b = world.AddHost("b");
  world.CapturePackets(path, /*capacity=*/4);
  DatagramSocket sa(&world.network(), a, 9000);
  DatagramSocket sb(&world.network(), b, 9000);
  a->Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await s->Send(to, BytesFromString("spam"));
    }
  }(&sa, sb.local_address()));
  world.RunFor(Duration::Millis(200));
  net::WireTapWriter* tap = world.packet_capture();
  EXPECT_GT(tap->dropped(), 0u);
  EXPECT_EQ(tap->recorded(), 40u);  // 20 sends + 20 deliveries
  ASSERT_TRUE(tap->Flush().ok());

  circus::StatusOr<WireCaptureFile> capture = ReadWireCaptureFile(path);
  ASSERT_TRUE(capture.ok());
  EXPECT_EQ(capture->records.size() + capture->dropped, tap->recorded());
  EXPECT_EQ(capture->dropped, tap->dropped());

  WireAuditor auditor(TestOptions());
  auditor.AddCapture(*capture);
  EXPECT_FALSE(auditor.Finish().complete);
}

TEST(WireTap, ReaderToleratesTruncatedTail) {
  const std::string path = RunTappedExchange(42, "truncated.tap.jsonl");
  std::string text = Slurp(path);
  ASSERT_GT(text.size(), 40u);
  text.resize(text.size() - 25);  // crash mid-line
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  circus::StatusOr<WireCaptureFile> capture = ReadWireCaptureFile(path);
  ASSERT_TRUE(capture.ok()) << capture.status().ToString();
  EXPECT_TRUE(capture->truncated_tail);
  EXPECT_GT(capture->records.size(), 0u);
}

TEST(WireTap, ReaderRejectsForeignFiles) {
  const std::string path = TempPath("foreign.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"not\":\"a capture\"}\n";
  }
  EXPECT_FALSE(ReadWireCaptureFile(path).ok());
  EXPECT_FALSE(ReadWireCaptureFile(TempPath("missing.jsonl")).ok());
}

TEST(WireTap, JsonLineRoundTripsOneRecord) {
  WirePacket p;
  p.time_ns = 123456789;
  p.send = true;
  p.host = 3;
  p.source = kA;
  p.destination = kB;
  p.payload = {0x00, 0xFF, 0x10, 0x7A};
  const std::string line = net::WirePacketToJsonLine(p);
  EXPECT_NE(line.find("\"send\""), std::string::npos);
  EXPECT_NE(line.find("10.0.0.1:9000"), std::string::npos);
  EXPECT_NE(line.find("00ff107a"), std::string::npos);
}

}  // namespace
}  // namespace circus::obs::wire
