#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/process.h"
#include "src/net/world.h"
#include "src/txn/commit.h"
#include "src/txn/ordered_broadcast.h"
#include "src/txn/store.h"
#include "tests/test_util.h"

namespace circus::txn {
namespace {

using core::ModuleNumber;
using core::ProcedureNumber;
using core::RpcProcess;
using core::ServerCallContext;
using core::ThreadId;
using core::Troupe;
using net::World;
using sim::Duration;
using sim::SyscallCostModel;
using sim::Task;

// User procedure numbers on the transactional "account" module.
constexpr ProcedureNumber kPutProc = 1;
constexpr ProcedureNumber kGetProc = 2;
constexpr ProcedureNumber kAddProc = 3;  // read-modify-write (conflicts)

// Registers the account procedures on a TransactionalServer.
void InstallAccountProcedures(TransactionalServer* server) {
  server->ExportProcedure(
      kPutProc,
      [server](ServerCallContext&,
               const Bytes& args) -> Task<StatusOr<Bytes>> {
        marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        const std::string key = r.ReadString();
        const int64_t value = r.ReadI64();
        if (!r.AtEnd()) {
          co_return Status(ErrorCode::kProtocolError, "bad put");
        }
        server->store().Begin(txn);
        marshal::Writer w;
        w.WriteI64(value);
        Status s = co_await server->store().Put(txn, key, w.Take());
        if (!s.ok()) {
          co_return s;
        }
        co_return Bytes{};
      });
  server->ExportProcedure(
      kGetProc,
      [server](ServerCallContext&,
               const Bytes& args) -> Task<StatusOr<Bytes>> {
        marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        const std::string key = r.ReadString();
        if (!r.AtEnd()) {
          co_return Status(ErrorCode::kProtocolError, "bad get");
        }
        server->store().Begin(txn);
        co_return co_await server->store().Get(txn, key);
      });
  server->ExportProcedure(
      kAddProc,
      [server](ServerCallContext&,
               const Bytes& args) -> Task<StatusOr<Bytes>> {
        marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        const std::string key = r.ReadString();
        const int64_t delta = r.ReadI64();
        if (!r.AtEnd()) {
          co_return Status(ErrorCode::kProtocolError, "bad add");
        }
        server->store().Begin(txn);
        int64_t current = 0;
        StatusOr<Bytes> v = co_await server->store().Get(txn, key);
        if (v.ok()) {
          marshal::Reader vr(*v);
          current = vr.ReadI64();
        } else if (v.status().code() != ErrorCode::kNotFound) {
          co_return v.status();
        }
        marshal::Writer w;
        w.WriteI64(current + delta);
        Status s = co_await server->store().Put(txn, key, w.Take());
        if (!s.ok()) {
          co_return s;
        }
        marshal::Writer out;
        out.WriteI64(current + delta);
        co_return out.Take();
      });
}

Bytes EncodePut(const TxnId& txn, const std::string& key, int64_t value) {
  marshal::Writer w;
  txn.Write(w);
  w.WriteString(key);
  w.WriteI64(value);
  return w.Take();
}

Bytes EncodeAdd(const TxnId& txn, const std::string& key, int64_t delta) {
  marshal::Writer w;
  txn.Write(w);
  w.WriteString(key);
  w.WriteI64(delta);
  return w.Take();
}


// Transaction bodies are written as free coroutine functions taking all
// their state as parameters (copied into the coroutine frame), with a
// plain non-coroutine lambda adapting them to TransactionBody. A
// *capturing lambda that is itself a coroutine* would reference its
// closure from the frame, which is a lifetime trap once the closure's
// std::function is destroyed or moved.
Task<Status> CallOnceBody(RpcProcess* process, ThreadId thread,
                          Troupe troupe, ModuleNumber module,
                          ProcedureNumber proc, std::string key,
                          int64_t value, TxnId txn) {
  const Bytes args = (proc == kAddProc) ? EncodeAdd(txn, key, value)
                                        : EncodePut(txn, key, value);
  StatusOr<Bytes> r =
      co_await process->Call(thread, troupe, module, proc, args);
  co_return r.status();
}

Task<Status> PutThenFailBody(RpcProcess* process, ThreadId thread,
                             Troupe troupe, ModuleNumber module,
                             std::string key, TxnId txn) {
  StatusOr<Bytes> r = co_await process->Call(
      thread, troupe, module, kPutProc, EncodePut(txn, key, 1));
  if (!r.ok()) {
    co_return r.status();
  }
  co_return Status(ErrorCode::kInvalidArgument,
                   "application changed its mind");
}

TransactionBody MakeCallOnceBody(RpcProcess* process, ThreadId thread,
                                 Troupe troupe, ModuleNumber module,
                                 ProcedureNumber proc, std::string key,
                                 int64_t value) {
  return [=](const TxnId& txn) {
    return CallOnceBody(process, thread, troupe, module, proc, key, value,
                        txn);
  };
}

class TxnCommitTest : public ::testing::Test {
 protected:
  TxnCommitTest() : world_(61, SyscallCostModel::Free()) {}

  struct ServerTroupe {
    std::vector<std::unique_ptr<RpcProcess>> processes;
    std::vector<std::unique_ptr<TransactionalServer>> servers;
    Troupe troupe;
    ModuleNumber module = 0;
  };

  ServerTroupe MakeServerTroupe(int n, uint64_t id) {
    ServerTroupe s;
    s.troupe.id = core::TroupeId{id};
    for (int i = 0; i < n; ++i) {
      sim::Host* host = world_.AddHost("srv" + std::to_string(i));
      auto process =
          std::make_unique<RpcProcess>(&world_.network(), host, 9000);
      auto server =
          std::make_unique<TransactionalServer>(process.get(), "account");
      InstallAccountProcedures(server.get());
      s.module = server->module_number();
      process->SetTroupeId(s.troupe.id);
      s.troupe.members.push_back(process->module_address(s.module));
      s.processes.push_back(std::move(process));
      s.servers.push_back(std::move(server));
    }
    return s;
  }

  struct Client {
    std::unique_ptr<RpcProcess> process;
    std::unique_ptr<CommitCoordinator> coordinator;
  };

  Client MakeClient(const std::string& name) {
    Client c;
    sim::Host* host = world_.AddHost(name);
    c.process = std::make_unique<RpcProcess>(&world_.network(), host, 8000);
    c.coordinator = std::make_unique<CommitCoordinator>(c.process.get());
    return c;
  }

  int64_t PeekCounter(TransactionalServer& server, const std::string& key) {
    std::optional<Bytes> v = server.store().Peek(key);
    if (!v.has_value()) {
      return -1;
    }
    marshal::Reader r(*v);
    return r.ReadI64();
  }

  World world_;
};

TEST_F(TxnCommitTest, TransactionCommitsAtAllMembers) {
  ServerTroupe s = MakeServerTroupe(3, 200);
  Client c = MakeClient("client");
  Status result(ErrorCode::kAborted, "not run");
  world_.executor().Spawn(
      [](Client* client, ServerTroupe* troupe, Status* out) -> Task<void> {
        const ThreadId thread = client->process->NewRootThread();
        *out = co_await RunTransaction(
            client->process.get(), client->coordinator.get(), thread,
            troupe->troupe, troupe->module,
            MakeCallOnceBody(client->process.get(), thread, troupe->troupe,
                             troupe->module, kPutProc, "balance", 100));
      }(&c, &s, &result));
  world_.RunFor(Duration::Seconds(30));
  ASSERT_TRUE(result.ok()) << result.ToString();
  for (auto& server : s.servers) {
    EXPECT_EQ(PeekCounter(*server, "balance"), 100);
    EXPECT_EQ(server->store().active_transactions(), 0u);
  }
}

TEST_F(TxnCommitTest, AnyAbortVoteAbortsEverywhere) {
  ServerTroupe s = MakeServerTroupe(2, 201);
  // Member 1 refuses to commit anything.
  s.servers[1]->SetVoteHook([](const TxnId&) { return false; });
  Client c = MakeClient("client");
  Status result;
  world_.executor().Spawn(
      [](Client* client, ServerTroupe* troupe, Status* out) -> Task<void> {
        const ThreadId thread = client->process->NewRootThread();
        RunTransactionOptions opts;
        opts.max_attempts = 2;
        *out = co_await RunTransaction(
            client->process.get(), client->coordinator.get(), thread,
            troupe->troupe, troupe->module,
            MakeCallOnceBody(client->process.get(), thread, troupe->troupe,
                             troupe->module, kPutProc, "doomed", 1),
            opts);
      }(&c, &s, &result));
  world_.RunFor(Duration::Seconds(60));
  EXPECT_FALSE(result.ok());
  for (auto& server : s.servers) {
    EXPECT_FALSE(server->store().Peek("doomed").has_value());
    EXPECT_EQ(server->store().active_transactions(), 0u);
  }
}

TEST_F(TxnCommitTest, BodyFailureAbortsCleanly) {
  ServerTroupe s = MakeServerTroupe(2, 202);
  Client c = MakeClient("client");
  Status result;
  world_.executor().Spawn(
      [](Client* client, ServerTroupe* troupe, Status* out) -> Task<void> {
        const ThreadId thread = client->process->NewRootThread();
        RunTransactionOptions opts;
        opts.max_attempts = 1;
        RpcProcess* proc = client->process.get();
        Troupe troupe_copy = troupe->troupe;
        ModuleNumber mod = troupe->module;
        // The body is hoisted into a named local: GCC 12 miscompiles a
        // std::function temporary built from a capturing lambda inside a
        // statement containing co_await (double-free of the captures).
        const TransactionBody body = [=](const TxnId& txn) {
          return PutThenFailBody(proc, thread, troupe_copy, mod, "half",
                                 txn);
        };
        *out = co_await RunTransaction(proc, client->coordinator.get(),
                                       thread, troupe->troupe,
                                       troupe->module, body, opts);
      }(&c, &s, &result));
  world_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(result.code(), ErrorCode::kInvalidArgument);
  for (auto& server : s.servers) {
    EXPECT_FALSE(server->store().Peek("half").has_value());
    EXPECT_EQ(server->store().active_transactions(), 0u);
  }
}

TEST_F(TxnCommitTest, NonConflictingTransactionsCommitInParallel) {
  ServerTroupe s = MakeServerTroupe(2, 203);
  Client c1 = MakeClient("c1");
  Client c2 = MakeClient("c2");
  Status r1, r2;
  auto run = [&](Client* client, const std::string& key,
                 Status* out) {
    world_.executor().Spawn(
        [](Client* cl, ServerTroupe* troupe, std::string k,
           Status* result) -> Task<void> {
          const ThreadId thread = cl->process->NewRootThread();
          *result = co_await RunTransaction(
              cl->process.get(), cl->coordinator.get(), thread,
              troupe->troupe, troupe->module,
              MakeCallOnceBody(cl->process.get(), thread, troupe->troupe,
                               troupe->module, kPutProc, k, 7));
        }(client, &s, key, out));
  };
  run(&c1, "k1", &r1);
  run(&c2, "k2", &r2);
  world_.RunFor(Duration::Seconds(30));
  ASSERT_TRUE(r1.ok()) << r1.ToString();
  ASSERT_TRUE(r2.ok()) << r2.ToString();
  for (auto& server : s.servers) {
    EXPECT_TRUE(server->store().Peek("k1").has_value());
    EXPECT_TRUE(server->store().Peek("k2").has_value());
  }
  // No deadlock machinery fired.
  EXPECT_EQ(c1.coordinator->timeouts(), 0u);
  EXPECT_EQ(c2.coordinator->timeouts(), 0u);
}

TEST_F(TxnCommitTest, DivergentOrdersDeadlockAndRetrySucceeds) {
  // Theorem 5.1 in action. Two clients run conflicting read-modify-write
  // transactions on the same key. Asymmetric network delays push member
  // 0 to serialize client 1 first and member 1 to serialize client 2
  // first; the divergence becomes a (distributed) deadlock, both
  // transactions abort, and the binary exponential back-off retries
  // eventually serialize them identically.
  ServerTroupe s = MakeServerTroupe(2, 204);
  for (auto& server : s.servers) {
    server->store().set_lock_timeout(Duration::Millis(400));
  }
  Client c1 = MakeClient("c1");
  Client c2 = MakeClient("c2");
  // c1 -> member0 fast, -> member1 slow; c2 mirrored.
  net::FaultPlan fast;
  fast.base_delay = Duration::Micros(100);
  net::FaultPlan slow;
  slow.base_delay = Duration::Millis(120);
  auto host_id = [&](const RpcProcess& p) { return p.host()->id(); };
  world_.network().SetPairFaultPlan(host_id(*c1.process),
                                    host_id(*s.processes[0]), fast);
  world_.network().SetPairFaultPlan(host_id(*c1.process),
                                    host_id(*s.processes[1]), slow);
  world_.network().SetPairFaultPlan(host_id(*c2.process),
                                    host_id(*s.processes[0]), slow);
  world_.network().SetPairFaultPlan(host_id(*c2.process),
                                    host_id(*s.processes[1]), fast);

  sim::Rng rng1(7), rng2(8);
  Status r1, r2;
  auto run = [&](Client* client, sim::Rng* rng, Status* out) {
    world_.executor().Spawn(
        [](Client* cl, ServerTroupe* troupe, sim::Rng* jitter,
           Status* result) -> Task<void> {
          const ThreadId thread = cl->process->NewRootThread();
          RunTransactionOptions opts;
          opts.rng = jitter;
          opts.decision_timeout = Duration::Millis(800);
          opts.max_attempts = 10;
          *result = co_await RunTransaction(
              cl->process.get(), cl->coordinator.get(), thread,
              troupe->troupe, troupe->module,
              MakeCallOnceBody(cl->process.get(), thread, troupe->troupe,
                               troupe->module, kAddProc, "hot", 1),
              opts);
        }(client, &s, rng, out));
  };
  run(&c1, &rng1, &r1);
  run(&c2, &rng2, &r2);
  world_.RunFor(Duration::Seconds(120));
  ASSERT_TRUE(r1.ok()) << r1.ToString();
  ASSERT_TRUE(r2.ok()) << r2.ToString();
  // Both increments took effect at both members: serialization orders
  // converged.
  for (auto& server : s.servers) {
    EXPECT_EQ(PeekCounter(*server, "hot"), 2);
    EXPECT_EQ(server->store().active_transactions(), 0u);
  }
  // The deadlock machinery genuinely fired at least once.
  const uint64_t total_lock_timeouts =
      s.servers[0]->store().lock_timeouts() +
      s.servers[1]->store().lock_timeouts() +
      s.servers[0]->store().deadlock_aborts() +
      s.servers[1]->store().deadlock_aborts();
  EXPECT_GT(total_lock_timeouts, 0u);
}

TEST_F(TxnCommitTest, SameOrderCommitsWithoutDeadlock) {
  // The complementary half of Theorem 5.1: when both members serialize
  // the two transactions in the same order, both commit without any
  // deadlock-breaking.
  ServerTroupe s = MakeServerTroupe(2, 205);
  Client c1 = MakeClient("c1");
  Client c2 = MakeClient("c2");
  Status r1, r2;
  auto run = [&](Client* client, Duration start_delay, Status* out) {
    world_.executor().Spawn(
        [](Client* cl, ServerTroupe* troupe, Duration delay,
           Status* result) -> Task<void> {
          co_await cl->process->host()->SleepFor(delay);
          const ThreadId thread = cl->process->NewRootThread();
          *result = co_await RunTransaction(
              cl->process.get(), cl->coordinator.get(), thread,
              troupe->troupe, troupe->module,
              MakeCallOnceBody(cl->process.get(), thread, troupe->troupe,
                               troupe->module, kAddProc, "cold", 1));
        }(client, &s, start_delay, out));
  };
  // Stagger the clients so the serialization order is the same at both
  // members.
  run(&c1, Duration::Zero(), &r1);
  run(&c2, Duration::Seconds(5), &r2);
  world_.RunFor(Duration::Seconds(60));
  ASSERT_TRUE(r1.ok()) << r1.ToString();
  ASSERT_TRUE(r2.ok()) << r2.ToString();
  for (auto& server : s.servers) {
    EXPECT_EQ(PeekCounter(*server, "cold"), 2);
    EXPECT_EQ(server->store().lock_timeouts(), 0u);
    EXPECT_EQ(server->store().deadlock_aborts(), 0u);
  }
  EXPECT_EQ(c1.coordinator->timeouts(), 0u);
  EXPECT_EQ(c2.coordinator->timeouts(), 0u);
}

TEST_F(TxnCommitTest, NestedSubtransactionAbortAcrossTroupe) {
  // Nested transactions over the troupe (Sections 2.3.2, 5.2): the
  // client runs a subtransaction inside the main transaction at every
  // member, aborts it, and commits the parent; the subtransaction's
  // tentative updates vanish everywhere while the parent's survive.
  ServerTroupe s = MakeServerTroupe(2, 206);
  // Procedures to begin/commit/abort a nested transaction remotely.
  constexpr ProcedureNumber kBeginNested = 10;
  constexpr ProcedureNumber kAbortNested = 11;
  for (auto& server : s.servers) {
    TransactionalServer* raw = server.get();
    server->ExportProcedure(
        kBeginNested,
        [raw](ServerCallContext&,
              const Bytes& args) -> Task<StatusOr<Bytes>> {
          marshal::Reader r(args);
          const TxnId parent = TxnId::Read(r);
          const TxnId child = TxnId::Read(r);
          raw->store().Begin(parent);
          raw->store().BeginNested(child, parent);
          co_return Bytes{};
        });
    server->ExportProcedure(
        kAbortNested,
        [raw](ServerCallContext&,
              const Bytes& args) -> Task<StatusOr<Bytes>> {
          marshal::Reader r(args);
          const TxnId child = TxnId::Read(r);
          raw->store().Abort(child);
          co_return Bytes{};
        });
  }
  Client c = MakeClient("client");
  Status result;
  world_.executor().Spawn(
      [](Client* client, ServerTroupe* troupe, Status* out) -> Task<void> {
        const ThreadId thread = client->process->NewRootThread();
        RpcProcess* proc = client->process.get();
        const Troupe t = troupe->troupe;
        const ModuleNumber mod = troupe->module;
        const TransactionBody body =
            [proc, thread, t, mod](const TxnId& txn) -> Task<Status> {
          return [](RpcProcess* p, ThreadId th, Troupe tr, ModuleNumber m,
                    TxnId parent) -> Task<Status> {
            // Parent write.
            StatusOr<Bytes> a = co_await p->Call(
                th, tr, m, kPutProc, EncodePut(parent, "keep", 1));
            if (!a.ok()) {
              co_return a.status();
            }
            // Begin a subtransaction (same thread, derived number).
            const TxnId child{parent.thread, parent.num + 1000};
            marshal::Writer begin_args;
            parent.Write(begin_args);
            child.Write(begin_args);
            StatusOr<Bytes> b = co_await p->Call(th, tr, m, kBeginNested,
                                                 begin_args.Take());
            if (!b.ok()) {
              co_return b.status();
            }
            // Tentative child write...
            StatusOr<Bytes> cw = co_await p->Call(
                th, tr, m, kPutProc, EncodePut(child, "discard", 99));
            if (!cw.ok()) {
              co_return cw.status();
            }
            // ...and abort the child everywhere.
            marshal::Writer abort_args;
            child.Write(abort_args);
            StatusOr<Bytes> ab = co_await p->Call(th, tr, m, kAbortNested,
                                                  abort_args.Take());
            co_return ab.status();
          }(proc, thread, t, mod, txn);
        };
        *out = co_await RunTransaction(proc, client->coordinator.get(),
                                       thread, t, mod, body);
      }(&c, &s, &result));
  world_.RunFor(Duration::Seconds(60));
  ASSERT_TRUE(result.ok()) << result.ToString();
  for (auto& server : s.servers) {
    EXPECT_TRUE(server->store().Peek("keep").has_value());
    // The aborted subtransaction left no trace at any member.
    EXPECT_FALSE(server->store().Peek("discard").has_value());
    EXPECT_EQ(server->store().active_transactions(), 0u);
  }
}

// ---------------------------------------------------------------------
// Ordered broadcast (Figure 5.1)

class OrderedBroadcastTest : public ::testing::Test {
 protected:
  OrderedBroadcastTest() : world_(71, SyscallCostModel::Free()) {}

  struct BroadcastTroupe {
    std::vector<std::unique_ptr<RpcProcess>> processes;
    std::vector<std::unique_ptr<OrderedBroadcastServer>> servers;
    Troupe troupe;
    ModuleNumber module = 0;
  };

  BroadcastTroupe MakeTroupe(int n, uint64_t id) {
    BroadcastTroupe t;
    t.troupe.id = core::TroupeId{id};
    for (int i = 0; i < n; ++i) {
      sim::Host* host = world_.AddHost("bs" + std::to_string(i));
      auto process =
          std::make_unique<RpcProcess>(&world_.network(), host, 9000);
      auto server = std::make_unique<OrderedBroadcastServer>(process.get(),
                                                             "broadcast");
      t.module = server->module_number();
      process->SetTroupeId(t.troupe.id);
      t.troupe.members.push_back(process->module_address(t.module));
      t.processes.push_back(std::move(process));
      t.servers.push_back(std::move(server));
    }
    return t;
  }

  World world_;
};

TEST_F(OrderedBroadcastTest, SingleBroadcastDeliversEverywhereOnce) {
  BroadcastTroupe t = MakeTroupe(3, 300);
  sim::Host* client_host = world_.AddHost("client");
  RpcProcess client(&world_.network(), client_host, 8000);
  Status status;
  world_.executor().Spawn(
      [](RpcProcess* c, BroadcastTroupe* troupe, Status* out) -> Task<void> {
        *out = co_await AtomicBroadcast(
            c, c->NewRootThread(), troupe->troupe, troupe->module, 1,
            BytesFromString("event-1"));
      }(&client, &t, &status));
  world_.RunFor(Duration::Seconds(10));
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (auto& server : t.servers) {
    EXPECT_EQ(server->delivered_count(), 1u);
  }
}

TEST_F(OrderedBroadcastTest, ConcurrentBroadcastsDeliverInSameOrderEverywhere) {
  BroadcastTroupe t = MakeTroupe(3, 301);
  // Collect delivery order per member.
  std::vector<std::vector<std::string>> orders(3);
  for (int i = 0; i < 3; ++i) {
    world_.executor().Spawn(
        [](OrderedBroadcastServer* server,
           std::vector<std::string>* out) -> Task<void> {
          while (true) {
            Bytes msg = co_await server->NextDelivered();
            out->push_back(StringFromBytes(msg));
          }
        }(t.servers[i].get(), &orders[i]));
  }
  // Several clients broadcast concurrently with different network
  // latencies, so proposals interleave at the members.
  const int kClients = 4;
  const int kPerClient = 5;
  std::vector<std::unique_ptr<RpcProcess>> clients;
  int completed = 0;
  for (int c = 0; c < kClients; ++c) {
    sim::Host* host = world_.AddHost("cl" + std::to_string(c));
    clients.push_back(
        std::make_unique<RpcProcess>(&world_.network(), host, 8000));
    // Give each client a different latency to each member.
    for (int m = 0; m < 3; ++m) {
      net::FaultPlan plan;
      plan.base_delay = Duration::Micros(100 + 137 * ((c + m) % 5));
      world_.network().SetPairFaultPlan(host->id(),
                                        t.processes[m]->host()->id(), plan);
    }
    world_.executor().Spawn(
        [](RpcProcess* client, BroadcastTroupe* troupe, int cid,
           int per_client, int* done) -> Task<void> {
          const ThreadId thread = client->NewRootThread();
          for (int k = 0; k < per_client; ++k) {
            const uint64_t msg_id =
                static_cast<uint64_t>(cid) << 32 | static_cast<uint64_t>(k);
            Status s = co_await AtomicBroadcast(
                client, thread, troupe->troupe, troupe->module, msg_id,
                BytesFromString("c" + std::to_string(cid) + "-m" +
                                std::to_string(k)));
            CIRCUS_CHECK(s.ok());
          }
          ++*done;
        }(clients.back().get(), &t, c, kPerClient, &completed));
  }
  world_.RunFor(Duration::Seconds(60));
  EXPECT_EQ(completed, kClients);
  // Every member delivered all messages, in the identical order.
  ASSERT_EQ(orders[0].size(), static_cast<size_t>(kClients * kPerClient));
  EXPECT_EQ(orders[0], orders[1]);
  EXPECT_EQ(orders[0], orders[2]);
}

TEST_F(OrderedBroadcastTest, IdenticalOrderDespiteClockSkew) {
  // The protocol assumes "synchronized" clocks, but consistency of the
  // acceptance order only needs the accepted timestamps to be totally
  // ordered the same way everywhere -- which they are, being data.
  // Skewed member clocks must not break agreement.
  BroadcastTroupe t = MakeTroupe(3, 303);
  t.processes[0]->host()->set_clock_skew(Duration::Millis(5));
  t.processes[1]->host()->set_clock_skew(Duration::Millis(-3));
  std::vector<std::vector<std::string>> orders(3);
  for (int i = 0; i < 3; ++i) {
    world_.executor().Spawn(
        [](OrderedBroadcastServer* server,
           std::vector<std::string>* out) -> Task<void> {
          while (true) {
            Bytes msg = co_await server->NextDelivered();
            out->push_back(StringFromBytes(msg));
          }
        }(t.servers[i].get(), &orders[i]));
  }
  std::vector<std::unique_ptr<RpcProcess>> clients;
  int completed = 0;
  for (int c = 0; c < 3; ++c) {
    sim::Host* host = world_.AddHost("cl" + std::to_string(c));
    clients.push_back(
        std::make_unique<RpcProcess>(&world_.network(), host, 8000));
    world_.executor().Spawn(
        [](RpcProcess* client, BroadcastTroupe* troupe, int cid,
           int* done) -> Task<void> {
          const ThreadId thread = client->NewRootThread();
          for (int k = 0; k < 4; ++k) {
            const uint64_t id =
                (static_cast<uint64_t>(cid) << 32) | static_cast<uint64_t>(k);
            Status s = co_await AtomicBroadcast(
                client, thread, troupe->troupe, troupe->module, id,
                BytesFromString("s" + std::to_string(cid) + "-" +
                                std::to_string(k)));
            CIRCUS_CHECK(s.ok());
          }
          ++*done;
        }(clients.back().get(), &t, c, &completed));
  }
  world_.RunFor(Duration::Seconds(60));
  EXPECT_EQ(completed, 3);
  ASSERT_EQ(orders[0].size(), 12u);
  EXPECT_EQ(orders[0], orders[1]);
  EXPECT_EQ(orders[0], orders[2]);
}

TEST_F(OrderedBroadcastTest, SurvivesMemberCrashDuringBroadcasts) {
  BroadcastTroupe t = MakeTroupe(3, 302);
  sim::Host* client_host = world_.AddHost("client");
  RpcProcess client(&world_.network(), client_host, 8000);
  int ok_count = 0;
  world_.executor().Spawn(
      [](RpcProcess* c, BroadcastTroupe* troupe, int* out) -> Task<void> {
        const ThreadId thread = c->NewRootThread();
        for (uint64_t k = 0; k < 5; ++k) {
          Status s = co_await AtomicBroadcast(c, thread, troupe->troupe,
                                              troupe->module, k,
                                              BytesFromString("m"));
          if (s.ok()) {
            ++*out;
          }
        }
      }(&client, &t, &ok_count));
  // Crash one member mid-way.
  world_.executor().ScheduleAfter(Duration::Millis(50),
                                  [&] { t.processes[2]->host()->Crash(); });
  world_.RunFor(Duration::Seconds(120));
  EXPECT_EQ(ok_count, 5);
  // The survivors delivered everything in the same order (trivially the
  // same multiset here; order equality checked by count).
  EXPECT_EQ(t.servers[0]->delivered_count(), 5u);
  EXPECT_EQ(t.servers[1]->delivered_count(), 5u);
}

}  // namespace
}  // namespace circus::txn
