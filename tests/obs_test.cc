// Tests for src/obs: the event bus, metrics registry, JSON value,
// exporters, and the TraceAssembler — plus the end-to-end property the
// subsystem exists for: a replicated call that fans out across two
// troupes (with a transaction beside it) reconstructs into one connected
// span tree per root thread, with byte-identical output for equal seeds
// and structurally identical output across seeds and replicas.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"
#include "src/obs/bus.h"
#include "src/obs/event.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/merge.h"
#include "src/obs/metrics.h"
#include "src/obs/shard.h"
#include "src/obs/trace.h"
#include "src/txn/commit.h"

namespace circus::obs {
namespace {

using circus::core::ModuleNumber;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;
using circus::txn::CommitCoordinator;
using circus::txn::TransactionalServer;
using circus::txn::TxnId;

// ------------------------------------------------------------- bus ----

TEST(EventBusTest, InactiveUntilSubscribedAndFansOutInOrder) {
  EventBus bus;
  EXPECT_FALSE(bus.active());
  std::vector<std::pair<int, EventKind>> seen;
  const EventBus::SubscriberId first =
      bus.Subscribe([&](const Event& e) { seen.emplace_back(1, e.kind); });
  bus.Subscribe([&](const Event& e) { seen.emplace_back(2, e.kind); });
  EXPECT_TRUE(bus.active());

  Event e;
  e.kind = EventKind::kCallIssue;
  bus.Publish(e);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 1);  // subscription order
  EXPECT_EQ(seen[1].first, 2);

  bus.Unsubscribe(first);
  e.kind = EventKind::kCallCollate;
  bus.Publish(e);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[2].first, 2);
  EXPECT_EQ(bus.published(), 2u);
}

TEST(EventBusTest, ClockStampsOnlyUnsetTimes) {
  EventBus bus;
  bus.SetClock([] { return int64_t{12345}; });
  std::vector<int64_t> stamps;
  bus.Subscribe([&](const Event& e) { stamps.push_back(e.time_ns); });

  bus.Publish(Event{});  // time_ns defaults to -1: stamped
  Event preset;
  preset.time_ns = 777;
  bus.Publish(preset);  // publisher-chosen time survives
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], 12345);
  EXPECT_EQ(stamps[1], 777);
}

TEST(EventLogTest, BuffersWhileAliveAndDetachesOnDestruction) {
  EventBus bus;
  {
    EventLog log(&bus);
    bus.Publish(Event{});
    bus.Publish(Event{});
    EXPECT_EQ(log.events().size(), 2u);
    std::vector<Event> taken = log.Take();
    EXPECT_EQ(taken.size(), 2u);
    EXPECT_TRUE(log.events().empty());
  }
  EXPECT_FALSE(bus.active());
}

// --------------------------------------------------------- metrics ----

TEST(MetricsTest, CountersAndHistogramsSnapshotConsistently) {
  MetricsRegistry registry;
  Counter* calls = registry.GetCounter("rpc.calls");
  calls->Increment();
  calls->Add(4);
  EXPECT_EQ(registry.GetCounter("rpc.calls"), calls);  // stable pointer

  Histogram* wait = registry.GetHistogram("rpc.wait_ms");
  for (int i = 1; i <= 100; ++i) {
    wait->Observe(i);
  }
  EXPECT_EQ(wait->count(), 100u);
  EXPECT_DOUBLE_EQ(wait->min(), 1.0);
  EXPECT_DOUBLE_EQ(wait->max(), 100.0);
  EXPECT_DOUBLE_EQ(wait->mean(), 50.5);
  // Power-of-two buckets: a percentile lands within 2x of the truth.
  EXPECT_GE(wait->Percentile(0.5), 50.0);
  EXPECT_LE(wait->Percentile(0.5), 100.0);

  MetricsRegistry::Snapshot snap = registry.Snap(42);
  EXPECT_EQ(snap.time_ns, 42);
  EXPECT_EQ(snap.counters.at("rpc.calls"), 5u);
  EXPECT_EQ(snap.histograms.at("rpc.wait_ms").count, 100u);
  EXPECT_FALSE(snap.ToString().empty());
  EXPECT_EQ(snap.ToString(), registry.Snap(42).ToString());
  // Snapshot is a copy: later bumps do not leak in.
  calls->Increment();
  EXPECT_EQ(snap.counters.at("rpc.calls"), 5u);
  EXPECT_EQ(registry.Snap(42).counters.at("rpc.calls"), 6u);
}

// ------------------------------------------------------------ json ----

TEST(JsonTest, DumpsNestedValuesDeterministically) {
  json::Value root = json::Value::Object();
  root.Set("name", "tab\"le");
  root.Set("n", 3);
  root.Set("ratio", 0.5);
  root.Set("ok", true);
  json::Value rows = json::Value::Array();
  rows.Append(json::Value::Object().Set("x", 1));
  rows.Append(json::Value::Object().Set("x", 2));
  root.Set("rows", std::move(rows));
  EXPECT_EQ(root.Dump(),
            "{\"name\":\"tab\\\"le\",\"n\":3,\"ratio\":0.5,\"ok\":true,"
            "\"rows\":[{\"x\":1},{\"x\":2}]}");
}

// ----------------------------------------------------------- event ----

TEST(EventTest, PackAddressRoundTripsAndThreadRefMatchesThreadId) {
  const uint64_t packed = PackAddress(0x0A000003, 9000);
  EXPECT_EQ(PackedAddressHost(packed), 0x0A000003u);
  EXPECT_EQ(PackedAddressPort(packed), 9000);

  const ThreadRef ref{0x0A000003, 8000, 7};
  const ThreadId id{0x0A000003, 8000, 7};
  EXPECT_EQ(ref.ToString(), id.ToString());  // keys line up across layers
  EXPECT_FALSE(ref.zero());
  EXPECT_TRUE(ThreadRef{}.zero());
}

// ------------------------------------------------- trace assembler ----

TEST(TraceAssemblerTest, NestsExecuteAndNestedCallsUnderTheRootCall) {
  const ThreadRef t{1, 8000, 1};
  std::vector<Event> events;
  auto push = [&](EventKind kind, uint32_t host, uint32_t seq, int64_t ns) {
    Event e;
    e.kind = kind;
    e.host = host;
    e.thread = t;
    e.thread_seq = seq;
    e.time_ns = ns;
    e.c = 1;
    events.push_back(e);
  };
  push(EventKind::kCallIssue, 1, 1, 10);     // client call
  push(EventKind::kExecuteBegin, 2, 1, 20);  // member 2 executes it
  push(EventKind::kCallIssue, 2, 2, 30);     // nested call from member 2
  push(EventKind::kExecuteBegin, 3, 2, 40);  // backend executes the nested
  push(EventKind::kExecuteEnd, 3, 2, 50);
  push(EventKind::kCallCollate, 2, 2, 60);
  push(EventKind::kExecuteEnd, 2, 1, 70);
  push(EventKind::kCallCollate, 1, 1, 80);

  std::vector<Span> roots = AssembleSpans(events);
  ASSERT_EQ(roots.size(), 1u);
  const Span& root = roots[0];
  EXPECT_EQ(root.kind, Span::Kind::kCall);
  EXPECT_EQ(root.TotalSpans(), 4u);
  ASSERT_EQ(root.children.size(), 1u);
  const Span& execute = root.children[0];
  EXPECT_EQ(execute.kind, Span::Kind::kExecute);
  ASSERT_EQ(execute.children.size(), 1u);
  const Span& nested = execute.children[0];
  EXPECT_EQ(nested.kind, Span::Kind::kCall);
  ASSERT_EQ(nested.children.size(), 1u);
  EXPECT_EQ(nested.children[0].kind, Span::Kind::kExecute);
  EXPECT_EQ(nested.children[0].end_ns, 50);
}

// ------------------------------------- end-to-end span-tree checks ----

constexpr core::ProcedureNumber kTxnAdd = 1;

Bytes EncodeAdd(const TxnId& txn, int64_t delta) {
  marshal::Writer w;
  txn.Write(w);
  w.WriteI64(delta);
  return w.Take();
}

Task<Status> AddBody(RpcProcess* process, ThreadId thread, Troupe troupe,
                     ModuleNumber module, TxnId txn) {
  StatusOr<Bytes> r = co_await process->Call(thread, troupe, module,
                                             kTxnAdd, EncodeAdd(txn, 1));
  co_return r.status();
}

struct WorkloadResult {
  std::vector<Event> events;
  std::vector<Span> spans;
  std::string call_thread;  // root thread of the nested replicated call
  std::string txn_thread;   // root thread of the transaction
};

// One full workload under an EventLog: a client calls a 2-member front
// troupe whose handler makes a nested call into a 2-member backend
// troupe; a second root thread runs a committed transaction against a
// 2-member transactional troupe.
WorkloadResult RunWorkload(uint64_t seed) {
  World world(seed, sim::SyscallCostModel::Free());
  EventLog log(&world.bus());

  Troupe backend;
  backend.id = core::TroupeId{600};
  std::vector<std::unique_ptr<RpcProcess>> backend_members;
  for (int i = 0; i < 2; ++i) {
    sim::Host* host = world.AddHost("backend" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9100);
    const ModuleNumber module = process->ExportModule("store");
    process->ExportProcedure(
        module, 0,
        [](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
          co_return args;
        });
    process->SetTroupeId(backend.id);
    backend.members.push_back(process->module_address(module));
    backend_members.push_back(std::move(process));
  }

  Troupe front;
  front.id = core::TroupeId{601};
  std::vector<std::unique_ptr<RpcProcess>> front_members;
  for (int i = 0; i < 2; ++i) {
    sim::Host* host = world.AddHost("front" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    const ModuleNumber module = process->ExportModule("front");
    const Troupe backend_copy = backend;
    process->ExportProcedure(
        module, 0,
        [backend_copy](ServerCallContext& ctx,
                       const Bytes& args) -> Task<StatusOr<Bytes>> {
          co_return co_await ctx.Call(backend_copy, 0, 0, args);
        });
    process->SetTroupeId(front.id);
    front.members.push_back(process->module_address(module));
    front_members.push_back(std::move(process));
  }

  Troupe txn_troupe;
  txn_troupe.id = core::TroupeId{602};
  ModuleNumber txn_module = 0;
  std::vector<std::unique_ptr<RpcProcess>> txn_procs;
  std::vector<std::unique_ptr<TransactionalServer>> txn_servers;
  for (int i = 0; i < 2; ++i) {
    sim::Host* host = world.AddHost("txn" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9200);
    auto server =
        std::make_unique<TransactionalServer>(process.get(), "counter");
    txn_module = server->module_number();
    TransactionalServer* raw = server.get();
    server->ExportProcedure(
        kTxnAdd,
        [raw](ServerCallContext&,
              const Bytes& args) -> Task<StatusOr<Bytes>> {
          marshal::Reader r(args);
          const TxnId txn = TxnId::Read(r);
          const int64_t delta = r.ReadI64();
          raw->store().Begin(txn);
          marshal::Writer w;
          w.WriteI64(delta);
          Status s = co_await raw->store().Put(txn, "x", w.Take());
          if (!s.ok()) {
            co_return s;
          }
          co_return Bytes{};
        });
    process->SetTroupeId(txn_troupe.id);
    txn_troupe.members.push_back(process->module_address(txn_module));
    txn_procs.push_back(std::move(process));
    txn_servers.push_back(std::move(server));
  }

  sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8000);
  CommitCoordinator coordinator(&client);

  WorkloadResult result;
  world.executor().Spawn(
      [](RpcProcess* c, Troupe t, std::string* thread_out) -> Task<void> {
        const ThreadId thread = c->NewRootThread();
        *thread_out = thread.ToString();
        StatusOr<Bytes> r =
            co_await c->Call(thread, t, 0, 0, BytesFromString("req"));
        CIRCUS_CHECK(r.ok());
      }(&client, front, &result.call_thread));
  world.executor().Spawn(
      [](RpcProcess* c, CommitCoordinator* coord, Troupe t,
         ModuleNumber mod, std::string* thread_out) -> Task<void> {
        const ThreadId thread = c->NewRootThread();
        *thread_out = thread.ToString();
        const circus::txn::TransactionBody body =
            [c, thread, t, mod](const TxnId& txn) {
              return AddBody(c, thread, t, mod, txn);
            };
        Status s = co_await circus::txn::RunTransaction(
            c, coord, thread, t, mod, body);
        CIRCUS_CHECK(s.ok());
      }(&client, &coordinator, txn_troupe, txn_module,
        &result.txn_thread));
  world.RunFor(Duration::Seconds(30));

  result.events = log.Take();
  result.spans = AssembleSpans(result.events);
  return result;
}

// Concatenated Structure()/Render of the roots belonging to one thread
// (a thread's calls are sequential, so this order is deterministic even
// when two threads' trees interleave in the global forest).
std::string StructureOfThread(const WorkloadResult& r,
                              const std::string& thread) {
  std::string out;
  for (const Span& root : r.spans) {
    if (root.thread.ToString() == thread) {
      out += root.Structure() + "\n";
    }
  }
  return out;
}

TEST(ObsEndToEndTest, NestedCallFormsOneConnectedTreePerRootThread) {
  WorkloadResult r = RunWorkload(2024);
  ASSERT_FALSE(r.events.empty());
  ASSERT_FALSE(r.spans.empty());
  ASSERT_NE(r.call_thread, r.txn_thread);

  // Both workload threads appear as root threads. Executing a call never
  // invents a thread: any other root thread was created by a server
  // process for its own machinery (the commit protocol's internal
  // exchanges), so it is rooted at a server port, not at the client.
  std::set<std::string> root_threads;
  for (const Span& root : r.spans) {
    root_threads.insert(root.thread.ToString());
  }
  EXPECT_EQ(root_threads.count(r.call_thread), 1u);
  EXPECT_EQ(root_threads.count(r.txn_thread), 1u);
  for (const Span& root : r.spans) {
    if (root.thread.ToString() != r.call_thread &&
        root.thread.ToString() != r.txn_thread) {
      EXPECT_NE(root.thread.port, 8000) << root.thread.ToString();
    }
  }

  // The nested replicated call is ONE connected tree: the root call span
  // holds both front members' executions, and each execution holds its
  // nested call into the backend troupe.
  std::vector<const Span*> call_roots;
  for (const Span& root : r.spans) {
    if (root.thread.ToString() == r.call_thread) {
      call_roots.push_back(&root);
    }
  }
  ASSERT_EQ(call_roots.size(), 1u);
  const Span& call = *call_roots[0];
  EXPECT_EQ(call.kind, Span::Kind::kCall);
  ASSERT_EQ(call.children.size(), 2u);  // both front members executed
  EXPECT_NE(call.children[0].host, call.children[1].host);
  size_t backend_executes = 0;
  for (const Span& execute : call.children) {
    EXPECT_EQ(execute.kind, Span::Kind::kExecute);
    ASSERT_EQ(execute.children.size(), 1u);  // the nested backend call
    const Span& nested = execute.children[0];
    EXPECT_EQ(nested.kind, Span::Kind::kCall);
    // Deterministic replicas: both members issued the same nested call.
    EXPECT_EQ(nested.seq, call.children[0].children[0].seq);
    EXPECT_GT(nested.seq, call.seq);  // continues the thread's numbering
    backend_executes += nested.children.size();
  }
  // Many-to-one collation: the backend saw ONE replicated call from the
  // front troupe and each backend member executed it once, attached
  // under the earliest member's nested call span.
  EXPECT_EQ(backend_executes, 2u);
  // 1 call + 2 executes + 2 nested calls + 2 backend executes.
  EXPECT_EQ(call.TotalSpans(), 7u);

  // The transaction's thread has at least the body call plus the commit
  // exchange, all as spans of that single thread.
  size_t txn_spans = 0;
  for (const Span& root : r.spans) {
    if (root.thread.ToString() == r.txn_thread) {
      txn_spans += root.TotalSpans();
    }
  }
  EXPECT_GE(txn_spans, 2u);

  // The commit protocol's events carry the transaction's thread too.
  bool saw_txn_resolved = false;
  for (const Event& e : r.events) {
    if (e.kind == EventKind::kTxnResolved) {
      saw_txn_resolved = true;
      EXPECT_EQ(e.thread.ToString(), r.txn_thread);
      EXPECT_EQ(e.a, 1u);  // committed
    }
  }
  EXPECT_TRUE(saw_txn_resolved);
}

TEST(ObsEndToEndTest, SameSeedRunsAreByteIdentical) {
  WorkloadResult r1 = RunWorkload(77);
  WorkloadResult r2 = RunWorkload(77);
  EXPECT_EQ(ToJsonLines(r1.events), ToJsonLines(r2.events));
  EXPECT_EQ(Render(r1.spans), Render(r2.spans));
  EXPECT_EQ(ToChromeTrace(r1.events), ToChromeTrace(r2.events));
}

TEST(ObsEndToEndTest, SpanStructureIsIdenticalAcrossSeeds) {
  WorkloadResult r1 = RunWorkload(77);
  WorkloadResult r2 = RunWorkload(78);
  // Thread ids are clock-seeded and differ per seed, so the full
  // renderings differ — but the shape of each thread's forest does not.
  EXPECT_EQ(StructureOfThread(r1, r1.call_thread),
            StructureOfThread(r2, r2.call_thread));
  EXPECT_EQ(StructureOfThread(r1, r1.txn_thread),
            StructureOfThread(r2, r2.txn_thread));
}

// ------------------------------------------------------- exporters ----

TEST(ExportTest, JsonLinesOnePerEventAndChromeTraceEnvelope) {
  WorkloadResult r = RunWorkload(99);
  const std::string jsonl = ToJsonLines(r.events);
  EXPECT_EQ(static_cast<size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            r.events.size());
  EXPECT_EQ(jsonl.find("\"kind\":\"call_issue\"") != std::string::npos,
            true);

  const std::string chrome = ToChromeTrace(r.events, {{1, "backend0"}});
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(chrome.find("backend0"), std::string::npos);  // host names
}

// ------------------------------------------------- json round-trip ----

TEST(JsonTest, EscapeParseRoundTripsEveryControlAndMultibyteChar) {
  // Every control character (the writer side of RFC 8259), the two
  // mandatory escapes, and multibyte UTF-8 must survive
  // Escape -> Parse unchanged: the shard writer and every exporter
  // share this path.
  std::string nasty;
  for (int c = 0; c < 0x20; ++c) {
    nasty.push_back(static_cast<char>(c));
  }
  nasty += "\"\\ plain /text √ε\xF0\x9D\x84\x9E";  // U+1D11E at the end
  StatusOr<json::Value> parsed =
      json::Parse("\"" + json::Escape(nasty) + "\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->as_string(), nasty);

  // The parser side: \uXXXX escapes including a surrogate pair decode
  // to the same UTF-8 the escaper would have passed through.
  StatusOr<json::Value> surrogate =
      json::Parse("\"\\u0041\\u00e9\\ud834\\udd1e\"");
  ASSERT_TRUE(surrogate.ok()) << surrogate.status().ToString();
  EXPECT_EQ(surrogate->as_string(), "A\xC3\xA9\xF0\x9D\x84\x9E");

  // Bytes that are not valid UTF-8 cannot round-trip as themselves;
  // they come back as U+FFFD so the escaped output is still a valid
  // RFC 8259 string (instead of propagating mojibake into the shard).
  StatusOr<json::Value> repaired =
      json::Parse("\"" + json::Escape("a\xFF\xC0z") + "\"");
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  const std::string& out = repaired->as_string();
  EXPECT_EQ(out.front(), 'a');
  EXPECT_EQ(out.back(), 'z');
  EXPECT_NE(out.find("\xEF\xBF\xBD"), std::string::npos);
}

// ----------------------------------------------------- trace shards ----

ShardInfo TestShardInfo(const std::string& node) {
  ShardInfo info;
  info.node = node;
  info.role = "test";
  return info;
}

Event PairedEvent(int64_t t_ns, EventKind kind, uint32_t host,
                  uint64_t origin, uint64_t peer, uint64_t call) {
  Event e;
  e.time_ns = t_ns;
  e.kind = kind;
  e.host = host;
  e.origin = origin;
  e.a = peer;
  e.b = call;
  return e;
}

TEST(ShardTest, WriterRoundTripsThroughReadShardFile) {
  const std::string path = testing::TempDir() + "/round.trace.jsonl";
  ShardInfo info;
  info.node = "alpha";
  info.role = "member";
  info.address = "127.0.0.1:9001";
  info.incarnation = 42;
  ShardWriter writer(path, info);
  ASSERT_TRUE(writer.ok());

  Event e;
  e.time_ns = 12345;
  e.kind = EventKind::kCallIssue;
  e.host = 3;
  e.incarnation = 42;
  e.origin = PackAddress((127u << 24) | 1, 9001);
  e.thread = ThreadRef{0x7f000001, 9001, 7};
  e.thread_seq = 9;
  e.a = 1;
  e.b = 2;
  e.c = 3;
  e.detail = "quote\" backslash\\ newline\n tab\t done";
  writer.Observe(e);
  ASSERT_TRUE(writer.Flush().ok());

  StatusOr<ShardFile> shard = ReadShardFile(path);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  EXPECT_EQ(shard->info.node, "alpha");
  EXPECT_EQ(shard->info.role, "member");
  EXPECT_EQ(shard->info.address, "127.0.0.1:9001");
  EXPECT_EQ(shard->info.incarnation, 42u);
  EXPECT_EQ(shard->skipped_lines, 0u);
  EXPECT_FALSE(shard->truncated_tail);
  ASSERT_EQ(shard->events.size(), 1u);
  const Event& back = shard->events[0];
  EXPECT_EQ(back.time_ns, e.time_ns);
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.host, e.host);
  EXPECT_EQ(back.incarnation, e.incarnation);
  EXPECT_EQ(back.origin, e.origin);
  EXPECT_EQ(back.thread, e.thread);
  EXPECT_EQ(back.thread_seq, e.thread_seq);
  EXPECT_EQ(back.a, e.a);
  EXPECT_EQ(back.b, e.b);
  EXPECT_EQ(back.c, e.c);
  EXPECT_EQ(back.detail, e.detail);
}

TEST(ShardTest, ToleratesPartialFinalLineFromCrashMidFlush) {
  const std::string path = testing::TempDir() + "/crash.trace.jsonl";
  {
    ShardWriter writer(path, TestShardInfo("crashy"));
    for (int i = 0; i < 3; ++i) {
      writer.Observe(PairedEvent(1000 + i, EventKind::kSegmentSend, 1,
                                 PackAddress(1, 10), PackAddress(2, 20),
                                 static_cast<uint64_t>(i)));
    }
  }  // dtor flushes all three lines

  // Simulate a crash mid-flush: the final line stops partway through.
  std::string content;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    content.assign(buf, n);
  }
  ASSERT_GT(content.size(), 12u);
  content.resize(content.size() - 12);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
              content.size());
    std::fclose(f);
  }

  StatusOr<ShardFile> shard = ReadShardFile(path);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  EXPECT_TRUE(shard->truncated_tail);
  EXPECT_EQ(shard->skipped_lines, 0u);  // only the tail was damaged
  ASSERT_EQ(shard->events.size(), 2u);  // the complete lines survive
  EXPECT_EQ(shard->events[0].b, 0u);
  EXPECT_EQ(shard->events[1].b, 1u);
}

TEST(ShardTest, OverflowDropsOldestAndWritesDropMarker) {
  const std::string path = testing::TempDir() + "/overflow.trace.jsonl";
  ShardWriter writer(path, TestShardInfo("tiny"), /*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    writer.Observe(PairedEvent(1000 + i, EventKind::kSegmentSend, 1,
                               PackAddress(1, 10), PackAddress(2, 20),
                               static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(writer.observed(), 6u);
  EXPECT_EQ(writer.dropped(), 2u);
  EXPECT_EQ(writer.Recent().size(), 4u);
  ASSERT_TRUE(writer.Flush().ok());

  StatusOr<ShardFile> shard = ReadShardFile(path);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  // The four newest events survive; the drop marker is metadata, not a
  // skipped line.
  ASSERT_EQ(shard->events.size(), 4u);
  EXPECT_EQ(shard->events.front().b, 2u);
  EXPECT_EQ(shard->events.back().b, 5u);
  EXPECT_EQ(shard->skipped_lines, 0u);
}

// ------------------------------------------------------ shard merge ----

TEST(MergeTest, AlignsClocksFromPairedExchangesAndFlagsOrphans) {
  constexpr uint64_t kAddrA = PackAddress(1, 10);
  constexpr uint64_t kAddrB = PackAddress(2, 20);
  constexpr int64_t kSkew = 5'000'000;  // B's clock runs 5 ms ahead of A

  // One complete exchange for call 7, true one-way delay 100 ns each
  // leg: A sends at 1000, B receives/returns, A sees the return at 1300.
  ShardFile a;
  a.info.node = "alpha";
  a.events.push_back(PairedEvent(1000, EventKind::kSegmentSend, 9, kAddrA,
                                 kAddrB, 7));
  a.events.push_back(PairedEvent(1300, EventKind::kMessageDelivered, 9,
                                 kAddrA, kAddrB, 7));
  ShardFile b;
  b.info.node = "beta";
  b.events.push_back(PairedEvent(1100 + kSkew, EventKind::kMessageDelivered,
                                 9, kAddrB, kAddrA, 7));
  b.events.push_back(PairedEvent(1200 + kSkew, EventKind::kSegmentSend, 9,
                                 kAddrB, kAddrA, 7));
  // A third shard with traffic to nobody: it cannot be clock-aligned.
  ShardFile orphan;
  orphan.info.node = "orphan";
  Event lone;
  lone.time_ns = 500;
  lone.kind = EventKind::kLoopWakeup;
  lone.host = 9;
  orphan.events.push_back(lone);

  StatusOr<MergeResult> merged = MergeShards({a, b, orphan});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  ASSERT_EQ(merged->pairs.size(), 1u);
  EXPECT_EQ(merged->pairs[0].samples, 1u);
  EXPECT_EQ(merged->pairs[0].offset_ns, kSkew);
  EXPECT_EQ(merged->pairs[0].residual_ns, 0);
  ASSERT_EQ(merged->shift_ns.size(), 3u);
  EXPECT_EQ(merged->shift_ns[0], 0);        // reference
  EXPECT_EQ(merged->shift_ns[1], -kSkew);   // pulled back onto A's clock
  EXPECT_TRUE(merged->aligned[0]);
  EXPECT_TRUE(merged->aligned[1]);
  EXPECT_FALSE(merged->aligned[2]);

  // Aligned and sorted: the exchange reads in causal order on one
  // timeline, and each event's host is its shard's process lane.
  ASSERT_EQ(merged->events.size(), 5u);
  EXPECT_EQ(merged->events[0].time_ns, 500);   // orphan, unshifted
  EXPECT_EQ(merged->events[1].time_ns, 1000);
  EXPECT_EQ(merged->events[2].time_ns, 1100);
  EXPECT_EQ(merged->events[3].time_ns, 1200);
  EXPECT_EQ(merged->events[4].time_ns, 1300);
  EXPECT_EQ(merged->events[1].host, 1u);
  EXPECT_EQ(merged->events[2].host, 2u);
  EXPECT_EQ(merged->host_names.at(1).rfind("alpha", 0), 0u);

  const std::string report = MergeReport({a, b, orphan}, *merged);
  EXPECT_NE(report.find("reference"), std::string::npos);
  EXPECT_NE(report.find("UNALIGNED"), std::string::npos);
}

}  // namespace
}  // namespace circus::obs
