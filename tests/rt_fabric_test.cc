// rt::UdpFabric over real loopback sockets: datagram delivery, emulated
// multicast fanout, socket error paths (identical Status semantics on
// the simulated and real fabrics), and the wire-parity golden test — the
// same paired-message exchange produces byte-identical segments whether
// it crosses the simulated Network or real UDP.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/msg/paired_endpoint.h"
#include "src/net/address.h"
#include "src/net/socket.h"
#include "src/net/world.h"
#include "src/rt/runtime.h"
#include "src/sim/task.h"
#include "tests/test_util.h"

namespace circus::rt {
namespace {

using circus::Bytes;
using circus::BytesFromString;
using circus::ErrorCode;
using circus::StringFromBytes;
using net::DatagramSocket;
using net::NetAddress;
using sim::Duration;
using sim::Task;

// ------------------------------------------------------ basic delivery --

TEST(RtFabricTest, SendAndReceiveOverLoopback) {
  Runtime runtime;
  sim::Host* client_host = runtime.AddHost("client");
  sim::Host* server_host = runtime.AddHost("server");
  DatagramSocket client(&runtime.fabric(), client_host, 0);
  DatagramSocket server(&runtime.fabric(), server_host, 0);

  bool done = false;
  server_host->Spawn([](DatagramSocket* s) -> Task<void> {
    net::Datagram d = co_await s->Receive();
    CIRCUS_CHECK(StringFromBytes(d.payload) == "ping");
    s->SendRaw(d.source, BytesFromString("pong"));
  }(&server));
  client_host->Spawn([](DatagramSocket* c, NetAddress to,
                        bool* out) -> Task<void> {
    circus::Status sent = co_await c->Send(to, BytesFromString("ping"));
    CIRCUS_CHECK(sent.ok());
    net::Datagram d = co_await c->Receive();
    *out = StringFromBytes(d.payload) == "pong";
  }(&client, server.local_address(), &done));

  EXPECT_TRUE(runtime.RunUntil([&done] { return done; },
                               Duration::Seconds(10)));
  EXPECT_GE(runtime.fabric().stats().packets_sent, 2u);
  EXPECT_GE(runtime.fabric().stats().packets_delivered, 2u);
}

TEST(RtFabricTest, ReceivedDatagramCarriesRealSourceAddress) {
  Runtime runtime;
  sim::Host* a_host = runtime.AddHost("a");
  sim::Host* b_host = runtime.AddHost("b");
  DatagramSocket a(&runtime.fabric(), a_host, 0);
  DatagramSocket b(&runtime.fabric(), b_host, 0);
  EXPECT_EQ(a.local_address().host, kLoopbackAddress);

  NetAddress seen_source;
  bool done = false;
  b_host->Spawn([](DatagramSocket* s, NetAddress* src,
                   bool* out) -> Task<void> {
    net::Datagram d = co_await s->Receive();
    *src = d.source;
    *out = true;
  }(&b, &seen_source, &done));
  ASSERT_TRUE(a.SendRaw(b.local_address(), BytesFromString("hi")).ok());
  ASSERT_TRUE(runtime.RunUntil([&done] { return done; },
                               Duration::Seconds(10)));
  // Replies to d.source must work: this is how every protocol layer
  // finds its peer, so the kernel-reported source must equal the
  // sender's bound address.
  EXPECT_EQ(seen_source, a.local_address());
}

// --------------------------------------------- emulated multicast fanout --

TEST(RtFabricTest, MulticastFansOutToJoinedSocketsOnly) {
  Runtime runtime;
  sim::Host* h1 = runtime.AddHost("m1");
  sim::Host* h2 = runtime.AddHost("m2");
  sim::Host* h3 = runtime.AddHost("outsider");
  sim::Host* sender_host = runtime.AddHost("sender");
  DatagramSocket s1(&runtime.fabric(), h1, 0);
  DatagramSocket s2(&runtime.fabric(), h2, 0);
  DatagramSocket outsider(&runtime.fabric(), h3, 0);
  DatagramSocket sender(&runtime.fabric(), sender_host, 0);

  const net::HostAddress group = net::MakeMulticastAddress(0);
  s1.JoinGroup(group);
  s2.JoinGroup(group);

  int received = 0;
  auto spawn_receiver = [&received](DatagramSocket* s) {
    s->host()->Spawn([](DatagramSocket* sock, int* out) -> Task<void> {
      net::Datagram d = co_await sock->Receive();
      CIRCUS_CHECK(StringFromBytes(d.payload) == "to-the-troupe");
      ++*out;
    }(s, &received));
  };
  spawn_receiver(&s1);
  spawn_receiver(&s2);

  ASSERT_TRUE(sender
                  .SendRaw(NetAddress{group, 9999},
                           BytesFromString("to-the-troupe"))
                  .ok());
  EXPECT_TRUE(runtime.RunUntil([&received] { return received == 2; },
                               Duration::Seconds(10)));
  // The non-member saw nothing.
  runtime.RunFor(Duration::Millis(50));
  EXPECT_EQ(outsider.queued(), 0u);
}

// --------------------------------------------------- wire parity golden --

// Deterministic endpoint configuration: no timer jitter, fixed seed, so
// the retransmission schedule is identical under virtual and wall time.
msg::EndpointOptions ParityOptions() {
  msg::EndpointOptions options;
  options.timer_jitter = 0;
  options.jitter_seed = 7;
  return options;
}

Task<void> ParityServerSide(msg::PairedEndpoint* server) {
  msg::Message call = co_await server->NextIncomingCall();
  Bytes reply = call.data;
  std::reverse(reply.begin(), reply.end());
  co_await server->SendMessage(call.peer, msg::MessageType::kReturn,
                               call.call_number, std::move(reply));
}

Task<void> ParityClientSide(msg::PairedEndpoint* client, NetAddress server,
                            bool* done) {
  circus::Status sent = co_await client->SendMessage(
      server, msg::MessageType::kCall, /*call_number=*/1,
      BytesFromString("parity golden payload"));
  CIRCUS_CHECK(sent.ok());
  circus::StatusOr<msg::Message> ret = co_await client->AwaitReturn(
      server, /*call_number=*/1);
  CIRCUS_CHECK(ret.ok());
  CIRCUS_CHECK(StringFromBytes(ret->data) == "daolyap nedlog ytirap");
  *done = true;
}

// The expected exchange (Section 4.2's ack strategy, jitter disabled):
// call data segment; return data segment (implicitly acks the call); one
// return retransmission with please_ack after the 300 ms timeout; the
// client's explicit ack. Four segments, in that order, on either fabric.
constexpr size_t kParitySegments = 4;

std::vector<Bytes> CollectSimulatedWire() {
  std::vector<Bytes> wire;
  net::World world(1, sim::SyscallCostModel::Free());
  world.network().SetPacketObserver(
      [&wire](const net::Datagram& d) { wire.push_back(d.payload); });
  sim::Host* client_host = world.AddHost("client");
  sim::Host* server_host = world.AddHost("server");
  DatagramSocket client_socket(&world.network(), client_host, 0);
  DatagramSocket server_socket(&world.network(), server_host, 9000);
  msg::PairedEndpoint client(&client_socket, ParityOptions());
  msg::PairedEndpoint server(&server_socket, ParityOptions());

  bool done = false;
  server_host->Spawn(ParityServerSide(&server));
  client_host->Spawn(
      ParityClientSide(&client, server.local_address(), &done));
  world.RunFor(Duration::Seconds(5));
  CIRCUS_CHECK(done);
  return wire;
}

std::vector<Bytes> CollectRealWire() {
  std::vector<Bytes> wire;
  Runtime runtime;
  runtime.fabric().SetPacketObserver(
      [&wire](const net::Datagram& d) { wire.push_back(d.payload); });
  sim::Host* client_host = runtime.AddHost("client");
  sim::Host* server_host = runtime.AddHost("server");
  DatagramSocket client_socket(&runtime.fabric(), client_host, 0);
  DatagramSocket server_socket(&runtime.fabric(), server_host, 0);
  msg::PairedEndpoint client(&client_socket, ParityOptions());
  msg::PairedEndpoint server(&server_socket, ParityOptions());

  bool done = false;
  server_host->Spawn(ParityServerSide(&server));
  client_host->Spawn(
      ParityClientSide(&client, server.local_address(), &done));
  const bool finished = runtime.RunUntil(
      [&done, &wire] { return done && wire.size() >= kParitySegments; },
      Duration::Seconds(10));
  CIRCUS_CHECK(finished);
  // Let any unexpected extra traffic surface before comparing.
  runtime.RunFor(Duration::Millis(100));
  return wire;
}

TEST(RtFabricTest, WireBytesMatchSimulatedNetwork) {
  const std::vector<Bytes> simulated = CollectSimulatedWire();
  const std::vector<Bytes> real = CollectRealWire();
  ASSERT_EQ(simulated.size(), kParitySegments);
  ASSERT_EQ(real.size(), kParitySegments);
  for (size_t i = 0; i < kParitySegments; ++i) {
    EXPECT_EQ(simulated[i], real[i]) << "segment " << i
                                     << " differs between fabrics";
  }
}

// ----------------------------------------- error paths, on both fabrics --

TEST(RtFabricTest, DoubleBindFailsOnBothFabrics) {
  {
    net::World world;
    sim::Host* host = world.AddHost("h");
    DatagramSocket first(&world.network(), host, 9000);
    auto second = DatagramSocket::Open(&world.network(), host, 9000);
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), ErrorCode::kAlreadyExists);
  }
  {
    Runtime runtime;
    sim::Host* host = runtime.AddHost("h");
    auto first = DatagramSocket::Open(&runtime.fabric(), host, 0);
    ASSERT_TRUE(first.ok());
    auto second = DatagramSocket::Open(&runtime.fabric(), host,
                                       (*first)->local_address().port);
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), ErrorCode::kAlreadyExists);
  }
}

TEST(RtFabricTest, SendOnClosedSocketFailsOnBothFabrics) {
  const Bytes payload = BytesFromString("late");
  {
    net::World world;
    sim::Host* host = world.AddHost("h");
    DatagramSocket socket(&world.network(), host, 9000);
    const NetAddress to{net::MakeHostAddress(0), 9001};
    socket.Close();
    EXPECT_EQ(socket.SendRaw(to, payload).code(),
              ErrorCode::kFailedPrecondition);
    circus::Status sent = circus::testing::RunTask(
        world.executor(), socket.Send(to, payload));
    EXPECT_EQ(sent.code(), ErrorCode::kFailedPrecondition);
  }
  {
    Runtime runtime;
    sim::Host* host = runtime.AddHost("h");
    DatagramSocket socket(&runtime.fabric(), host, 0);
    const NetAddress to{kLoopbackAddress, 9001};
    socket.Close();
    EXPECT_EQ(socket.SendRaw(to, payload).code(),
              ErrorCode::kFailedPrecondition);
    circus::Status sent = circus::testing::RunTask(
        runtime.executor(), socket.Send(to, payload));
    EXPECT_EQ(sent.code(), ErrorCode::kFailedPrecondition);
  }
}

TEST(RtFabricTest, EphemeralPortExhaustionFailsOnBothFabrics) {
  {
    net::World world;
    world.network().set_ephemeral_port_range(50000, 50002);
    sim::Host* host = world.AddHost("h");
    std::vector<std::unique_ptr<DatagramSocket>> sockets;
    for (int i = 0; i < 3; ++i) {
      auto socket = DatagramSocket::Open(&world.network(), host, 0);
      ASSERT_TRUE(socket.ok());
      sockets.push_back(std::move(*socket));
    }
    auto extra = DatagramSocket::Open(&world.network(), host, 0);
    ASSERT_FALSE(extra.ok());
    EXPECT_EQ(extra.status().code(), ErrorCode::kUnavailable);
  }
  {
    Runtime runtime;
    runtime.fabric().set_ephemeral_port_range(47211, 47213);
    sim::Host* host = runtime.AddHost("h");
    std::vector<std::unique_ptr<DatagramSocket>> sockets;
    for (int i = 0; i < 3; ++i) {
      auto socket = DatagramSocket::Open(&runtime.fabric(), host, 0);
      ASSERT_TRUE(socket.ok());
      sockets.push_back(std::move(*socket));
    }
    auto extra = DatagramSocket::Open(&runtime.fabric(), host, 0);
    ASSERT_FALSE(extra.ok());
    EXPECT_EQ(extra.status().code(), ErrorCode::kUnavailable);
  }
}

}  // namespace
}  // namespace circus::rt
