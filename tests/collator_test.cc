// Unit tests of the collators (Sections 4.3.6, 7.4) against synthetic
// reply streams, without any network: each collator's decision rule and
// its laziness (how many replies it consumes before deciding) are
// checked directly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/collator.h"
#include "src/net/world.h"
#include "tests/test_util.h"

namespace circus::core {
namespace {

using circus::testing::RunTask;
using sim::Duration;
using sim::SyscallCostModel;
using sim::Task;

class CollatorTest : public ::testing::Test {
 protected:
  CollatorTest()
      : world_(161, SyscallCostModel::Free()),
        host_(world_.AddHost("node")) {}

  ModuleAddress Member(int i) {
    return ModuleAddress{net::NetAddress{net::MakeHostAddress(i), 9000}, 0};
  }

  Reply Ok(int member, const std::string& value) {
    return Reply{Member(member), BytesFromString(value)};
  }
  Reply Err(int member, ErrorCode code) {
    return Reply{Member(member), Status(code, "synthetic failure")};
  }

  // Runs `collator` over a stream expecting `expected` replies; pushes
  // `replies` (staggered 1 ms apart) and returns the result plus how
  // many replies the collator consumed before finishing.
  struct Outcome {
    StatusOr<Bytes> result{Status(ErrorCode::kCancelled, "unset")};
    int consumed = 0;
  };
  Outcome Collate(const Collator& collator, int expected,
                  std::vector<Reply> replies) {
    ReplyStream stream(host_, expected);
    auto state = stream.shared_state();
    for (size_t i = 0; i < replies.size(); ++i) {
      world_.executor().ScheduleAfter(
          Duration::Millis(static_cast<int64_t>(i + 1)),
          [state, r = std::move(replies[i])]() mutable {
            state->channel.Send(std::move(r));
          });
    }
    Outcome out;
    world_.executor().Spawn(
        [](const Collator* c, ReplyStream* s, Outcome* o) -> Task<void> {
          o->result = co_await (*c)(*s);
          o->consumed = s->consumed();
        }(&collator, &stream, &out));
    world_.RunFor(Duration::Seconds(10));
    return out;
  }

  net::World world_;
  sim::Host* host_;
};

TEST_F(CollatorTest, UnanimousAcceptsIdenticalReplies) {
  Outcome o = Collate(BuiltinCollator(Collation::kUnanimous), 3,
                      {Ok(0, "v"), Ok(1, "v"), Ok(2, "v")});
  ASSERT_TRUE(o.result.ok());
  EXPECT_EQ(StringFromBytes(*o.result), "v");
  EXPECT_EQ(o.consumed, 3);  // wait-all: every reply inspected
}

TEST_F(CollatorTest, UnanimousFlagsDisagreementEagerly) {
  Outcome o = Collate(BuiltinCollator(Collation::kUnanimous), 3,
                      {Ok(0, "v"), Ok(1, "DIFFERENT"), Ok(2, "v")});
  ASSERT_FALSE(o.result.ok());
  EXPECT_EQ(o.result.status().code(), ErrorCode::kDisagreement);
  EXPECT_EQ(o.consumed, 2);  // decided at the first mismatch
}

TEST_F(CollatorTest, UnanimousToleratesCrashedMinority) {
  Outcome o = Collate(BuiltinCollator(Collation::kUnanimous), 3,
                      {Err(0, ErrorCode::kCrashDetected), Ok(1, "v"),
                       Ok(2, "v")});
  ASSERT_TRUE(o.result.ok());
  EXPECT_EQ(StringFromBytes(*o.result), "v");
}

TEST_F(CollatorTest, UnanimousAllFailedSummarizes) {
  Outcome o = Collate(BuiltinCollator(Collation::kUnanimous), 2,
                      {Err(0, ErrorCode::kCrashDetected),
                       Err(1, ErrorCode::kTimeout)});
  ASSERT_FALSE(o.result.ok());
  EXPECT_EQ(o.result.status().code(), ErrorCode::kUnavailable);
}

TEST_F(CollatorTest, UnanimousSurfacesStaleBindingFirst) {
  Outcome o = Collate(BuiltinCollator(Collation::kUnanimous), 2,
                      {Err(0, ErrorCode::kCrashDetected),
                       Err(1, ErrorCode::kStaleBinding)});
  ASSERT_FALSE(o.result.ok());
  EXPECT_EQ(o.result.status().code(), ErrorCode::kStaleBinding);
}

TEST_F(CollatorTest, FirstComeTakesTheFirstSuccess) {
  Outcome o = Collate(BuiltinCollator(Collation::kFirstCome), 3,
                      {Err(0, ErrorCode::kCrashDetected), Ok(1, "fast"),
                       Ok(2, "slow")});
  ASSERT_TRUE(o.result.ok());
  EXPECT_EQ(StringFromBytes(*o.result), "fast");
  EXPECT_EQ(o.consumed, 2);  // did not wait for the third
}

TEST_F(CollatorTest, MajorityDecidesAsSoonAsQuorumReached) {
  Outcome o = Collate(BuiltinCollator(Collation::kMajority), 5,
                      {Ok(0, "a"), Ok(1, "b"), Ok(2, "a"), Ok(3, "a"),
                       Ok(4, "b")});
  ASSERT_TRUE(o.result.ok());
  EXPECT_EQ(StringFromBytes(*o.result), "a");
  EXPECT_EQ(o.consumed, 4);  // a's third vote is the 3-of-5 majority
}

TEST_F(CollatorTest, MajorityGivesUpWhenNoValueCanWin) {
  // With 2 of 3 replies split and one crashed, no value can reach 2
  // votes once the split is visible and the remaining member failed.
  Outcome o = Collate(BuiltinCollator(Collation::kMajority), 3,
                      {Ok(0, "a"), Ok(1, "b"),
                       Err(2, ErrorCode::kCrashDetected)});
  ASSERT_FALSE(o.result.ok());
  EXPECT_EQ(o.result.status().code(), ErrorCode::kNoMajority);
}

TEST_F(CollatorTest, QuorumUnanimousRequiresMinimumSuccesses) {
  Collator quorum = MakeQuorumUnanimousCollator(2);
  Outcome enough = Collate(quorum, 3,
                           {Ok(0, "v"), Ok(1, "v"),
                            Err(2, ErrorCode::kCrashDetected)});
  ASSERT_TRUE(enough.result.ok());
  Outcome short_of = Collate(quorum, 3,
                             {Ok(0, "v"),
                              Err(1, ErrorCode::kCrashDetected),
                              Err(2, ErrorCode::kCrashDetected)});
  ASSERT_FALSE(short_of.result.ok());
  EXPECT_EQ(short_of.result.status().code(), ErrorCode::kUnavailable);
}

TEST_F(CollatorTest, StreamNextReturnsNulloptAfterAllExpected) {
  ReplyStream stream(host_, 1);
  stream.shared_state()->channel.Send(Ok(0, "only"));
  bool saw_end = RunTask(world_.executor(),
                         [](ReplyStream* s) -> Task<bool> {
                           std::optional<Reply> first = co_await s->Next();
                           CIRCUS_CHECK(first.has_value());
                           std::optional<Reply> second = co_await s->Next();
                           co_return !second.has_value();
                         }(&stream));
  EXPECT_TRUE(saw_end);
}

}  // namespace
}  // namespace circus::core
