// Shared helpers for driving coroutines to completion inside tests.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <memory>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/sim/executor.h"
#include "src/sim/task.h"

namespace circus::testing {

// Spawns `task`, runs the executor until idle, and returns the task's
// result. CHECK-fails if the task did not complete (e.g. it deadlocked).
template <typename T>
T RunTask(sim::Executor& executor, sim::Task<T> task) {
  auto result = std::make_shared<std::optional<T>>();
  auto wrapper = [](sim::Task<T> inner,
                    std::shared_ptr<std::optional<T>> out)
      -> sim::Task<void> {
    out->emplace(co_await std::move(inner));
  };
  executor.Spawn(wrapper(std::move(task), result));
  executor.RunUntilIdle();
  CIRCUS_CHECK_MSG(result->has_value(), "task did not run to completion");
  return std::move(**result);
}

inline void RunTask(sim::Executor& executor, sim::Task<void> task) {
  auto done = std::make_shared<bool>(false);
  auto wrapper = [](sim::Task<void> inner,
                    std::shared_ptr<bool> out) -> sim::Task<void> {
    co_await std::move(inner);
    *out = true;
  };
  executor.Spawn(wrapper(std::move(task), done));
  executor.RunUntilIdle();
  CIRCUS_CHECK_MSG(*done, "task did not run to completion");
}

}  // namespace circus::testing

#endif  // TESTS_TEST_UTIL_H_
