// The chaos harness at work (Experiment E13): seeded fault schedules
// against the full stack, with the paper's invariants checked throughout
// — plus the negative tests proving the monitor actually catches planted
// bugs and shrinks their schedules to minimal reproducers.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "src/chaos/harness.h"
#include "src/chaos/schedule.h"
#include "src/chaos/sweep.h"
#include "src/obs/event.h"

namespace circus::chaos {
namespace {

using sim::Duration;

// Short-run settings so a many-seed sweep fits in CI; the longer default
// durations are exercised by bench_chaos.
ScheduleOptions CiSchedule() {
  ScheduleOptions s;
  s.horizon = Duration::Seconds(60);
  s.min_start = Duration::Seconds(2);
  s.actions = 5;
  return s;
}

HarnessOptions CiHarness() {
  HarnessOptions h;
  h.warmup = Duration::Seconds(30);
  h.run_length = Duration::Seconds(60);
  h.settle_length = Duration::Seconds(60);
  h.call_period = Duration::Seconds(2);
  h.sweep_period = Duration::Seconds(10);
  return h;
}

TEST(ChaosSchedule, GenerationIsDeterministic) {
  const ScheduleOptions opts;
  Schedule a = GenerateSchedule(42, opts);
  Schedule b = GenerateSchedule(42, opts);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.Digest(), b.Digest());
  Schedule c = GenerateSchedule(43, opts);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(ChaosSchedule, RespectsOptionsAndOrdering) {
  ScheduleOptions opts;
  opts.actions = 12;
  Schedule s = GenerateSchedule(7, opts);
  ASSERT_EQ(s.actions.size(), 12u);
  for (size_t i = 1; i < s.actions.size(); ++i) {
    EXPECT_LE(s.actions[i - 1].at.nanos(), s.actions[i].at.nanos());
  }
  for (const FaultAction& a : s.actions) {
    EXPECT_GE(a.at.nanos(), opts.min_start.nanos());
    EXPECT_LT(a.at.nanos(), opts.horizon.nanos());
  }

  // Zeroed weights disable kinds entirely (the bench's crash-only mix).
  ScheduleOptions crash_only;
  crash_only.actions = 20;
  crash_only.partition_weight = 0;
  crash_only.loss_weight = 0;
  crash_only.latency_weight = 0;
  crash_only.skew_weight = 0;
  Schedule co = GenerateSchedule(7, crash_only);
  for (const FaultAction& a : co.actions) {
    EXPECT_EQ(a.kind, FaultKind::kCrashMember);
  }
}

TEST(ChaosHarness, SameSeedReproducesByteIdenticalRun) {
  Schedule schedule = GenerateSchedule(11, CiSchedule());
  HarnessOptions harness = CiHarness();
  harness.seed = 11;
  ChaosReport first = RunChaos(schedule, harness);
  ChaosReport second = RunChaos(schedule, harness);
  EXPECT_EQ(first.schedule_digest, second.schedule_digest);
  EXPECT_EQ(first.trace_digest, second.trace_digest);
  EXPECT_EQ(first.calls_issued, second.calls_issued);
  EXPECT_EQ(first.calls_accepted, second.calls_accepted);
  EXPECT_EQ(first.calls_failed, second.calls_failed);
  EXPECT_EQ(first.suspects_killed, second.suspects_killed);
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_TRUE(first.ok()) << first.Summary();
  // The run did real work and real damage.
  EXPECT_GT(first.calls_issued, 0);
  EXPECT_GT(first.faults_applied, 0);
}

TEST(ChaosHarness, TracedRunExportsCorrelatedEventStream) {
  Schedule schedule = GenerateSchedule(31, CiSchedule());
  HarnessOptions harness = CiHarness();
  harness.seed = 31;
  harness.collect_events = true;
  const std::string prefix = ::testing::TempDir() + "chaos_trace_31";
  harness.trace_json_path = prefix + ".json";
  harness.trace_jsonl_path = prefix + ".jsonl";
  ChaosReport report = RunChaos(schedule, harness);
  EXPECT_TRUE(report.ok()) << report.Summary();
  ASSERT_FALSE(report.events.empty());

  // Correlation: every server-side execution carries a thread that some
  // client-side call issue also carries — one root ThreadId ties a
  // replicated call's events together across all troupe members.
  std::set<std::string> issue_threads;
  std::set<uint32_t> execute_hosts;
  for (const obs::Event& e : report.events) {
    if (e.kind == obs::EventKind::kCallIssue) {
      issue_threads.insert(e.thread.ToString());
    }
  }
  ASSERT_FALSE(issue_threads.empty());
  for (const obs::Event& e : report.events) {
    if (e.kind == obs::EventKind::kExecuteBegin) {
      EXPECT_TRUE(issue_threads.count(e.thread.ToString()) == 1)
          << "execution on host " << e.host << " has unknown thread "
          << e.thread.ToString();
      execute_hosts.insert(e.host);
    }
  }
  EXPECT_GE(execute_hosts.size(), 2u);  // the call fanned out

  // The metrics snapshot rode along and saw protocol activity.
  EXPECT_GT(report.metrics.counters.at("msg.retransmits") +
                report.metrics.counters.at("msg.probe_rounds"),
            0u);
  EXPECT_GT(report.metrics.histograms.at("rpc.collator_wait_ms").count, 0u);

  // Both export files landed: the Chrome envelope and one JSONL line per
  // collected event.
  std::ifstream json_in(harness.trace_json_path);
  ASSERT_TRUE(json_in.good());
  std::stringstream json_buf;
  json_buf << json_in.rdbuf();
  const std::string chrome = json_buf.str();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  ASSERT_FALSE(chrome.empty());
  EXPECT_EQ(chrome.back(), '}');
  EXPECT_NE(chrome.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  std::ifstream jsonl_in(harness.trace_jsonl_path);
  ASSERT_TRUE(jsonl_in.good());
  std::stringstream jsonl_buf;
  jsonl_buf << jsonl_in.rdbuf();
  const std::string jsonl = jsonl_buf.str();
  EXPECT_EQ(static_cast<size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            report.events.size());
  EXPECT_NE(jsonl.find("\"kind\":\"call_issue\""), std::string::npos);
}

TEST(ChaosSweep, HundredSeedsHoldTheInvariants) {
  SweepOptions opts;
  opts.first_seed = 1;
  opts.seeds = 100;
  opts.schedule = CiSchedule();
  opts.harness = CiHarness();
  opts.max_failures = 1;  // fail fast: one reproducer is plenty
  SweepResult result = RunSweep(opts);
  EXPECT_EQ(result.seeds_run, 100);
  ASSERT_TRUE(result.ok())
      << "seed " << result.failures[0].seed << " failed\n"
      << result.failures[0].minimal.ToString() << "\n"
      << result.failures[0].minimal_report.Summary();
}

TEST(ChaosSweep, TransactionalWorkloadSurvivesChaos) {
  SweepOptions opts;
  opts.first_seed = 201;
  opts.seeds = 10;
  opts.schedule = CiSchedule();
  opts.harness = CiHarness();
  opts.harness.with_transactions = true;
  opts.max_failures = 1;
  SweepResult result = RunSweep(opts);
  ASSERT_TRUE(result.ok())
      << "seed " << result.failures[0].seed << " failed\n"
      << result.failures[0].minimal.ToString() << "\n"
      << result.failures[0].minimal_report.Summary();
}

// Negative test: a collator that accepts a value no member computed is
// caught by the monitor, and because the bug does not depend on any
// fault at all, the shrinker reduces its schedule to zero actions.
TEST(ChaosSweep, BrokenCollatorIsCaughtAndShrunkToNothing) {
  SweepOptions opts;
  opts.first_seed = 301;
  opts.seeds = 1;
  opts.schedule = CiSchedule();
  opts.harness = CiHarness();
  opts.harness.broken_collator = true;
  opts.max_failures = 1;
  opts.log = [](const std::string&) {};  // keep CI output quiet
  SweepResult result = RunSweep(opts);
  ASSERT_EQ(result.seeds_failed, 1);
  const SweepFailure& failure = result.failures[0];
  bool mentions_collator = false;
  for (const std::string& v : failure.minimal_report.violations) {
    if (v.find("collator unsound") != std::string::npos) {
      mentions_collator = true;
    }
  }
  EXPECT_TRUE(mentions_collator) << failure.minimal_report.Summary();
  EXPECT_TRUE(failure.minimal.actions.empty())
      << "expected an empty minimal schedule, got\n"
      << failure.minimal.ToString();
}

// Negative test: one member computing different results from its peers
// (planted nondeterminism) must surface as a trace divergence.
TEST(ChaosSweep, NondeterministicMemberIsCaught) {
  SweepOptions opts;
  opts.first_seed = 401;
  opts.seeds = 1;
  opts.schedule = CiSchedule();
  opts.harness = CiHarness();
  opts.harness.nondeterministic_member = true;
  opts.shrink_failures = false;
  opts.max_failures = 1;
  opts.log = [](const std::string&) {};
  SweepResult result = RunSweep(opts);
  ASSERT_EQ(result.seeds_failed, 1);
  bool mentions_divergence = false;
  for (const std::string& v : result.failures[0].report.violations) {
    if (v.find("diverge") != std::string::npos) {
      mentions_divergence = true;
    }
  }
  EXPECT_TRUE(mentions_divergence) << result.failures[0].report.Summary();
}

// Negative test for the wire oracle: members that forgot how to
// suppress duplicates re-answer a redelivered call with a mangled
// return — call-number reuse on the wire, which only the Section 4.2
// auditor can see (state digests stay clean because the client's own
// duplicate suppression eats the mangled copy).
TEST(ChaosSweep, WireAuditorFlagsDuplicateDeliveryBug) {
  // Hand-built schedule: one long burst duplicating every datagram.
  Schedule schedule;
  FaultAction burst;
  burst.at = Duration::Seconds(2);
  burst.kind = FaultKind::kLossBurst;
  burst.duration = Duration::Seconds(50);
  burst.loss = 0.0;
  burst.duplicate = 1.0;
  schedule.actions.push_back(burst);

  HarnessOptions buggy = CiHarness();
  buggy.seed = 501;
  buggy.duplicate_delivery_bug = true;
  ChaosReport report = RunChaos(schedule, buggy);
  bool mentions_reuse = false;
  for (const std::string& v : report.violations) {
    if (v.rfind("wire: ", 0) == 0 &&
        v.find("identifier reuse") != std::string::npos) {
      mentions_reuse = true;
    }
  }
  EXPECT_TRUE(mentions_reuse) << report.Summary();

  // The same duplicate storm against the correct stack audits clean:
  // the violations come from the planted bug, not the fault.
  HarnessOptions correct = CiHarness();
  correct.seed = 501;
  ChaosReport clean = RunChaos(schedule, correct);
  for (const std::string& v : clean.violations) {
    EXPECT_EQ(v.rfind("wire: ", 0), std::string::npos) << v;
  }
  EXPECT_TRUE(clean.ok()) << clean.Summary();
}

}  // namespace
}  // namespace circus::chaos
