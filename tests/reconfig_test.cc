// End-to-end reconfiguration: the Reconfigurer keeps a troupe at the
// strength its configuration-language specification demands, replacing
// crashed members with freshly launched, state-consistent ones
// (Sections 6.4 and 7.5.3 working together).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/binding/client.h"
#include "src/binding/deploy.h"
#include "src/binding/reconfigurer.h"
#include "src/config/parser.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"
#include "tests/test_util.h"

namespace circus::binding {
namespace {

using circus::Bytes;
using circus::Status;
using circus::StatusOr;
using core::ModuleNumber;
using core::RpcProcess;
using core::ServerCallContext;
using core::Troupe;
using net::World;
using sim::Duration;
using sim::Task;

// A counter-service member; launched on demand by the test's launcher.
struct Member {
  std::unique_ptr<RpcProcess> process;
  ModuleNumber module = 0;
  int64_t counter = 0;

  static std::unique_ptr<Member> Launch(World& world, sim::Host* host) {
    auto m = std::make_unique<Member>();
    m->process = std::make_unique<RpcProcess>(&world.network(), host, 9000);
    m->module = m->process->ExportModule("counter");
    Member* raw = m.get();
    m->process->ExportProcedure(
        m->module, 0,
        [raw](ServerCallContext&, const Bytes&) -> Task<StatusOr<Bytes>> {
          marshal::Writer w;
          w.WriteI64(++raw->counter);
          co_return w.Take();
        });
    m->process->SetStateProvider(m->module, [raw] {
      marshal::Writer w;
      w.WriteI64(raw->counter);
      return w.Take();
    });
    return m;
  }
};

class ReconfigTest : public ::testing::Test {
 protected:
  ReconfigTest() : world_(121, sim::SyscallCostModel::Free()) {
    ring_ = DeployRingmaster(world_, world_.AddHosts("ring", 1));
    // Five candidate machines; the spec asks for three.
    for (int i = 0; i < 5; ++i) {
      sim::Host* host = world_.AddHost("machine" + std::to_string(i));
      const config::MachineId id = database_.AddMachine(
          {{"name", config::Value(std::string("machine") +
                                  std::to_string(i))},
           {"memory", config::Value(8.0)}});
      machine_host_[id] = host;
    }
    agent_host_ = world_.AddHost("agent");
    agent_process_ =
        std::make_unique<RpcProcess>(&world_.network(), agent_host_, 8000);
    agent_binding_ =
        std::make_unique<BindingClient>(agent_process_.get(), ring_.troupe);
    reconfigurer_ = std::make_unique<Reconfigurer>(
        agent_process_.get(), agent_binding_.get(), &database_);

    StatusOr<config::TroupeSpec> spec = config::ParseTroupeSpec(
        "troupe (x, y, z) where x.memory >= 4 and y.memory >= 4 and "
        "z.memory >= 4");
    CIRCUS_CHECK(spec.ok());
    reconfigurer_->Manage(
        "counter", std::move(*spec),
        [this](config::MachineId machine)
            -> StatusOr<Reconfigurer::LaunchedMember> {
          auto it = machine_host_.find(machine);
          if (it == machine_host_.end() || !it->second->up()) {
            return Status(ErrorCode::kUnavailable, "machine gone");
          }
          members_.push_back(Member::Launch(world_, it->second));
          Member* m = members_.back().get();
          Reconfigurer::LaunchedMember launched;
          launched.process = m->process.get();
          launched.module = m->module;
          launched.accept_state = [m](const Bytes& state) {
            marshal::Reader r(state);
            m->counter = r.ReadI64();
          };
          return launched;
        });
  }

  StatusOr<ReconfigReport> Sweep() {
    auto result = std::make_shared<std::optional<StatusOr<ReconfigReport>>>();
    world_.executor().Spawn(
        [](Reconfigurer* r,
           std::shared_ptr<std::optional<StatusOr<ReconfigReport>>> out)
            -> Task<void> {
          out->emplace(co_await r->SweepOnce());
        }(reconfigurer_.get(), result));
    world_.RunFor(Duration::Seconds(120));
    CIRCUS_CHECK(result->has_value());
    return std::move(**result);
  }

  // Drives one replicated counter call through a fresh binding cache.
  int64_t CallCounter() {
    sim::Host* host = world_.AddHost("caller" + std::to_string(callers_++));
    auto process =
        std::make_unique<RpcProcess>(&world_.network(), host, 8000);
    BindingClient binding(process.get(), ring_.troupe);
    BindingCache cache(&binding);
    process->SetClientTroupeResolver(cache.MakeResolver());
    auto result = std::make_shared<std::optional<int64_t>>();
    world_.executor().Spawn(
        [](RpcProcess* p, BindingCache* c,
           std::shared_ptr<std::optional<int64_t>> out) -> Task<void> {
          StatusOr<Bytes> r = co_await c->CallByName(
              p, p->NewRootThread(), "counter", 0, {});
          CIRCUS_CHECK(r.ok());
          marshal::Reader reader(*r);
          out->emplace(reader.ReadI64());
        }(process.get(), &cache, result));
    world_.RunFor(Duration::Seconds(60));
    CIRCUS_CHECK(result->has_value());
    callers_alive_.push_back(std::move(process));
    return **result;
  }

  World world_;
  RingmasterDeployment ring_;
  config::MachineDatabase database_;
  std::map<config::MachineId, sim::Host*> machine_host_;
  sim::Host* agent_host_ = nullptr;
  std::unique_ptr<RpcProcess> agent_process_;
  std::unique_ptr<BindingClient> agent_binding_;
  std::unique_ptr<Reconfigurer> reconfigurer_;
  std::vector<std::unique_ptr<Member>> members_;
  std::vector<std::unique_ptr<RpcProcess>> callers_alive_;
  int callers_ = 0;
};

TEST_F(ReconfigTest, InitialInstantiationLaunchesSpecifiedStrength) {
  StatusOr<ReconfigReport> report = Sweep();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->members_added, 3);
  EXPECT_EQ(report->members_removed, 0);
  EXPECT_EQ(report->final_size, 3u);
  EXPECT_EQ(CallCounter(), 1);
  // All three members executed the call and agree.
  int live = 0;
  for (auto& m : members_) {
    if (m->process->host()->up()) {
      EXPECT_EQ(m->counter, 1);
      ++live;
    }
  }
  EXPECT_EQ(live, 3);
}

TEST_F(ReconfigTest, SweepIsIdempotentWhenHealthy) {
  ASSERT_TRUE(Sweep().ok());
  StatusOr<ReconfigReport> second = Sweep();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->members_added, 0);
  EXPECT_EQ(second->members_removed, 0);
  EXPECT_EQ(second->final_size, 3u);
}

TEST_F(ReconfigTest, CrashedMemberIsReplacedWithConsistentState) {
  ASSERT_TRUE(Sweep().ok());
  // Advance the state so the replacement has something to inherit.
  EXPECT_EQ(CallCounter(), 1);
  EXPECT_EQ(CallCounter(), 2);

  // Kill one member's machine.
  members_[1]->process->host()->Crash();
  StatusOr<ReconfigReport> report = Sweep();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->members_removed, 1);
  EXPECT_EQ(report->members_added, 1);
  EXPECT_EQ(report->final_size, 3u);

  // The replacement inherited counter == 2 through get_state and the
  // next call lands on a consistent 3-member troupe.
  EXPECT_EQ(CallCounter(), 3);
  int live = 0;
  for (auto& m : members_) {
    if (m->process->host()->up()) {
      EXPECT_EQ(m->counter, 3);
      ++live;
    }
  }
  EXPECT_EQ(live, 3);
  // The dead machine was withdrawn from the database.
  EXPECT_EQ(database_.size(), 4u);
}

TEST_F(ReconfigTest, FailsWhenTooFewMachinesRemain) {
  ASSERT_TRUE(Sweep().ok());
  // Destroy three of the five machines (two troupe members among them).
  int crashed = 0;
  for (auto& [machine, host] : machine_host_) {
    if (crashed < 3) {
      host->Crash();
      ++crashed;
    }
  }
  // First sweep withdraws the dead machines; with only 2 machines left a
  // 3-member spec is unsatisfiable.
  StatusOr<ReconfigReport> report = Sweep();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace circus::binding
