// Loopback integration: the full Circus stack — paired messages,
// replicated calls with unanimous collation, Ringmaster binding,
// reconfiguration with state transfer, and the troupe commit protocol —
// over real 127.0.0.1 UDP sockets, with zero changes to any protocol
// layer. The topology mirrors the binding/txn simulator tests; only the
// Runtime (and thus the clock and the wire) is different.
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/binding/client.h"
#include "src/binding/ringmaster.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/rt/runtime.h"
#include "src/txn/commit.h"
#include "src/txn/store.h"

namespace circus::rt {
namespace {

using binding::BindingCache;
using binding::BindingClient;
using binding::RingmasterServer;
using core::ModuleAddress;
using core::ModuleNumber;
using core::ProcedureNumber;
using core::RpcProcess;
using core::ServerCallContext;
using core::ThreadId;
using core::Troupe;
using core::TroupeId;
using sim::Duration;
using sim::Task;
using txn::CommitCoordinator;
using txn::RunTransaction;
using txn::TransactionalServer;
using txn::TxnId;

// The Ringmaster's well-known port 17 is privileged on a real kernel, so
// the loopback testbed uses high ports; the bootstrap Troupe carries the
// address either way (Section 6.3's "configured set of machines").
struct RingmasterNode {
  std::unique_ptr<RpcProcess> process;
  std::unique_ptr<RingmasterServer> server;
  Troupe bootstrap;
};

RingmasterNode MakeRingmaster(Runtime* runtime, net::Port port) {
  RingmasterNode node;
  sim::Host* host = runtime->AddHost("ringmaster");
  node.process =
      std::make_unique<RpcProcess>(&runtime->fabric(), host, port);
  node.server = std::make_unique<RingmasterServer>(node.process.get());
  node.bootstrap.id = binding::kRingmasterTroupeId;
  node.bootstrap.members.push_back(
      ModuleAddress{net::NetAddress{kLoopbackAddress, port},
                    node.server->module_number()});
  node.server->BootstrapSelf(node.bootstrap);
  return node;
}

// A troupe member exporting the counter interface: procedure 0 returns
// ++counter, and the counter is the module state for get_state, so a
// joiner starts exactly where the incumbents are.
struct Member {
  std::unique_ptr<RpcProcess> process;
  std::unique_ptr<BindingClient> binding;
  std::unique_ptr<BindingCache> cache;
  ModuleNumber module = 0;
  int32_t counter = 0;
};

std::unique_ptr<Member> MakeMember(Runtime* runtime,
                                   const std::string& name,
                                   const Troupe& ringmaster) {
  auto member = std::make_unique<Member>();
  sim::Host* host = runtime->AddHost(name);
  member->process =
      std::make_unique<RpcProcess>(&runtime->fabric(), host, 0);
  member->binding =
      std::make_unique<BindingClient>(member->process.get(), ringmaster);
  member->cache = std::make_unique<BindingCache>(member->binding.get());
  member->process->SetClientTroupeResolver(member->cache->MakeResolver());
  member->module = member->process->ExportModule("counter");
  Member* raw = member.get();
  member->process->ExportProcedure(
      member->module, 0,
      [raw](ServerCallContext&, const Bytes&) -> Task<StatusOr<Bytes>> {
        marshal::Writer w;
        w.WriteI32(++raw->counter);
        co_return w.Take();
      });
  member->process->SetStateProvider(member->module, [raw] {
    marshal::Writer w;
    w.WriteI32(raw->counter);
    return w.Take();
  });
  return member;
}

TEST(RtLoopbackTest, ReplicatedCallAndReconfiguration) {
  Runtime runtime;
  RingmasterNode ring = MakeRingmaster(&runtime, 38017);

  std::vector<std::unique_ptr<Member>> members;
  Troupe troupe;
  for (int i = 0; i < 3; ++i) {
    members.push_back(
        MakeMember(&runtime, "member" + std::to_string(i), ring.bootstrap));
    troupe.members.push_back(
        members[i]->process->module_address(members[i]->module));
  }

  // Register the three-member troupe; registration does not propagate
  // the fresh ID (only membership changes do), so adopt it by hand as
  // the simulator tests do.
  bool registered = false;
  std::vector<RpcProcess*> troupe_procs = {members[0]->process.get(),
                                           members[1]->process.get(),
                                           members[2]->process.get()};
  members[0]->process->host()->Spawn(
      [](BindingClient* b, Troupe t, std::vector<RpcProcess*> procs,
         bool* done) -> Task<void> {
        StatusOr<TroupeId> id = co_await b->RegisterTroupe("counter", t);
        CIRCUS_CHECK_MSG(id.ok(), id.status().ToString().c_str());
        for (RpcProcess* p : procs) {
          p->SetTroupeId(*id);
        }
        *done = true;
      }(members[0]->binding.get(), troupe, troupe_procs, &registered));
  ASSERT_TRUE(runtime.RunUntil([&registered] { return registered; },
                               Duration::Seconds(30)));

  // A singleton client imports by name and makes replicated calls; the
  // unanimous collation means every member executed and agreed.
  sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);
  BindingClient client_binding(&client, ring.bootstrap);
  BindingCache client_cache(&client_binding);
  client.SetClientTroupeResolver(client_cache.MakeResolver());

  std::vector<int32_t> results;
  bool calls_done = false;
  client_host->Spawn(
      [](RpcProcess* p, BindingCache* cache, int calls,
         std::vector<int32_t>* out, bool* done) -> Task<void> {
        const ThreadId thread = p->NewRootThread();
        const Bytes no_args;
        for (int i = 0; i < calls; ++i) {
          StatusOr<Bytes> r = co_await cache->CallByName(
              p, thread, "counter", /*procedure=*/0, no_args);
          CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
          marshal::Reader reader(*r);
          out->push_back(reader.ReadI32());
        }
        *done = true;
      }(&client, &client_cache, 2, &results, &calls_done));
  ASSERT_TRUE(runtime.RunUntil([&calls_done] { return calls_done; },
                               Duration::Seconds(30)));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], 2);
  for (const auto& m : members) {
    EXPECT_EQ(m->counter, 2);  // every member executed every call
  }

  // Reconfiguration: a fourth member joins via the Section 6.4.1 recipe
  // (get_state from the incumbents, then add_troupe_member).
  members.push_back(MakeMember(&runtime, "member3", ring.bootstrap));
  Member* joiner = members.back().get();
  bool joined = false;
  joiner->process->host()->Spawn(
      [](Member* m, bool* done) -> Task<void> {
        Member* state_sink = m;
        // Hoisted: a capturing lambda must not become a std::function
        // inside the co_await statement (CLAUDE.md rule 1).
        std::function<void(const Bytes&)> accept_state =
            [state_sink](const Bytes& bytes) {
              marshal::Reader r(bytes);
              state_sink->counter = r.ReadI32();
            };
        Status s = co_await binding::JoinTroupe(
            m->process.get(), m->module, m->binding.get(), "counter",
            accept_state);
        CIRCUS_CHECK_MSG(s.ok(), s.ToString().c_str());
        *done = true;
      }(joiner, &joined));
  ASSERT_TRUE(runtime.RunUntil([&joined] { return joined; },
                               Duration::Seconds(30)));
  EXPECT_EQ(joiner->counter, 2);  // state transferred, not reset

  // The client's cached binding is now stale; CallByName hits
  // kStaleBinding, rebinds transparently, and the call reaches all four
  // members — including the joiner, which continues from the
  // transferred state.
  results.clear();
  calls_done = false;
  client_host->Spawn(
      [](RpcProcess* p, BindingCache* cache, int calls,
         std::vector<int32_t>* out, bool* done) -> Task<void> {
        const ThreadId thread = p->NewRootThread();
        const Bytes no_args;
        for (int i = 0; i < calls; ++i) {
          StatusOr<Bytes> r = co_await cache->CallByName(
              p, thread, "counter", /*procedure=*/0, no_args);
          CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
          marshal::Reader reader(*r);
          out->push_back(reader.ReadI32());
        }
        *done = true;
      }(&client, &client_cache, 1, &results, &calls_done));
  ASSERT_TRUE(runtime.RunUntil([&calls_done] { return calls_done; },
                               Duration::Seconds(30)));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 3);
  for (const auto& m : members) {
    EXPECT_EQ(m->counter, 3);
  }
}

// ------------------------------------------------------- troupe commit --

constexpr ProcedureNumber kPutProc = 1;
constexpr ProcedureNumber kAddProc = 2;

Bytes EncodeKeyValue(const TxnId& txn, const std::string& key,
                     int64_t value) {
  marshal::Writer w;
  txn.Write(w);
  w.WriteString(key);
  w.WriteI64(value);
  return w.Take();
}

void InstallAccountProcedures(TransactionalServer* server) {
  server->ExportProcedure(
      kPutProc,
      [server](ServerCallContext&,
               const Bytes& args) -> Task<StatusOr<Bytes>> {
        marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        const std::string key = r.ReadString();
        const int64_t value = r.ReadI64();
        server->store().Begin(txn);
        marshal::Writer w;
        w.WriteI64(value);
        Status s = co_await server->store().Put(txn, key, w.Take());
        if (!s.ok()) {
          co_return s;
        }
        co_return Bytes{};
      });
  server->ExportProcedure(
      kAddProc,
      [server](ServerCallContext&,
               const Bytes& args) -> Task<StatusOr<Bytes>> {
        marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        const std::string key = r.ReadString();
        const int64_t delta = r.ReadI64();
        server->store().Begin(txn);
        int64_t current = 0;
        StatusOr<Bytes> v = co_await server->store().Get(txn, key);
        if (v.ok()) {
          marshal::Reader vr(*v);
          current = vr.ReadI64();
        } else if (v.status().code() != ErrorCode::kNotFound) {
          co_return v.status();
        }
        marshal::Writer w;
        w.WriteI64(current + delta);
        Status s = co_await server->store().Put(txn, key, w.Take());
        if (!s.ok()) {
          co_return s;
        }
        marshal::Writer out;
        out.WriteI64(current + delta);
        co_return out.Take();
      });
}

// Transaction bodies are free coroutine functions taking state by value
// (the CLAUDE.md capturing-lambda-coroutine rule), adapted to
// TransactionBody by a plain lambda.
Task<Status> CallOnceBody(RpcProcess* process, ThreadId thread,
                          Troupe troupe, ModuleNumber module,
                          ProcedureNumber proc, std::string key,
                          int64_t value, TxnId txn) {
  StatusOr<Bytes> r = co_await process->Call(
      thread, troupe, module, proc, EncodeKeyValue(txn, key, value));
  co_return r.status();
}

txn::TransactionBody MakeCallOnceBody(RpcProcess* process, ThreadId thread,
                                      Troupe troupe, ModuleNumber module,
                                      ProcedureNumber proc, std::string key,
                                      int64_t value) {
  return [=](const TxnId& txn) {
    return CallOnceBody(process, thread, troupe, module, proc, key, value,
                        txn);
  };
}

Task<void> RunCommitDriver(RpcProcess* process,
                           CommitCoordinator* coordinator, Troupe troupe,
                           ModuleNumber module, Status* out, bool* done) {
  const ThreadId thread = process->NewRootThread();
  Status put = co_await RunTransaction(
      process, coordinator, thread, troupe, module,
      MakeCallOnceBody(process, thread, troupe, module, kPutProc,
                       "balance", 100));
  if (put.ok()) {
    *out = co_await RunTransaction(
        process, coordinator, thread, troupe, module,
        MakeCallOnceBody(process, thread, troupe, module, kAddProc,
                         "balance", 25));
  } else {
    *out = put;
  }
  *done = true;
}

TEST(RtLoopbackTest, TroupeCommitOverRealUdp) {
  Runtime runtime;
  RingmasterNode ring = MakeRingmaster(&runtime, 38018);

  // Three transactional members, registered as one troupe.
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<TransactionalServer>> servers;
  Troupe troupe;
  ModuleNumber module = 0;
  for (int i = 0; i < 3; ++i) {
    sim::Host* host = runtime.AddHost("account" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&runtime.fabric(), host, 0);
    auto server =
        std::make_unique<TransactionalServer>(process.get(), "account");
    InstallAccountProcedures(server.get());
    module = server->module_number();
    troupe.members.push_back(process->module_address(module));
    processes.push_back(std::move(process));
    servers.push_back(std::move(server));
  }

  BindingClient registrar(processes[0].get(), ring.bootstrap);
  bool registered = false;
  TroupeId troupe_id;
  std::vector<RpcProcess*> troupe_procs = {
      processes[0].get(), processes[1].get(), processes[2].get()};
  processes[0]->host()->Spawn(
      [](BindingClient* b, Troupe t, std::vector<RpcProcess*> procs,
         TroupeId* out, bool* done) -> Task<void> {
        StatusOr<TroupeId> id = co_await b->RegisterTroupe("account", t);
        CIRCUS_CHECK_MSG(id.ok(), id.status().ToString().c_str());
        for (RpcProcess* p : procs) {
          p->SetTroupeId(*id);
        }
        *out = *id;
        *done = true;
      }(&registrar, troupe, troupe_procs, &troupe_id, &registered));
  ASSERT_TRUE(runtime.RunUntil([&registered] { return registered; },
                               Duration::Seconds(30)));
  troupe.id = troupe_id;

  sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);
  CommitCoordinator coordinator(&client);

  Status result(ErrorCode::kAborted, "not run");
  bool done = false;
  client_host->Spawn(
      RunCommitDriver(&client, &coordinator, troupe, module, &result,
                      &done));
  ASSERT_TRUE(
      runtime.RunUntil([&done] { return done; }, Duration::Seconds(60)));
  ASSERT_TRUE(result.ok()) << result.ToString();
  for (auto& server : servers) {
    std::optional<Bytes> v = server->store().Peek("balance");
    ASSERT_TRUE(v.has_value());
    marshal::Reader r(*v);
    EXPECT_EQ(r.ReadI64(), 125);
    EXPECT_EQ(server->store().active_transactions(), 0u);
  }
}

}  // namespace
}  // namespace circus::rt
