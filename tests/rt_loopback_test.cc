// Loopback integration: the full Circus stack — paired messages,
// replicated calls with unanimous collation, Ringmaster binding,
// reconfiguration with state transfer, and the troupe commit protocol —
// over real 127.0.0.1 UDP sockets, with zero changes to any protocol
// layer. The topology mirrors the binding/txn simulator tests; only the
// Runtime (and thus the clock and the wire) is different.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/binding/client.h"
#include "src/binding/ringmaster.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/fault_fabric.h"
#include "src/net/socket.h"
#include "src/obs/merge.h"
#include "src/obs/shard.h"
#include "src/obs/trace.h"
#include "src/rt/fault_control.h"
#include "src/rt/introspect.h"
#include "src/rt/node_config.h"
#include "src/rt/runtime.h"
#include "src/txn/commit.h"
#include "src/txn/store.h"

namespace circus::rt {
namespace {

using binding::BindingCache;
using binding::BindingClient;
using binding::RingmasterServer;
using core::ModuleAddress;
using core::ModuleNumber;
using core::ProcedureNumber;
using core::RpcProcess;
using core::ServerCallContext;
using core::ThreadId;
using core::Troupe;
using core::TroupeId;
using sim::Duration;
using sim::Task;
using txn::CommitCoordinator;
using txn::RunTransaction;
using txn::TransactionalServer;
using txn::TxnId;

// The Ringmaster's well-known port 17 is privileged on a real kernel, so
// the loopback testbed uses high ports; the bootstrap Troupe carries the
// address either way (Section 6.3's "configured set of machines").
struct RingmasterNode {
  std::unique_ptr<RpcProcess> process;
  std::unique_ptr<RingmasterServer> server;
  Troupe bootstrap;
};

RingmasterNode MakeRingmaster(Runtime* runtime, net::Port port) {
  RingmasterNode node;
  sim::Host* host = runtime->AddHost("ringmaster");
  node.process =
      std::make_unique<RpcProcess>(&runtime->fabric(), host, port);
  node.server = std::make_unique<RingmasterServer>(node.process.get());
  node.bootstrap.id = binding::kRingmasterTroupeId;
  node.bootstrap.members.push_back(
      ModuleAddress{net::NetAddress{kLoopbackAddress, port},
                    node.server->module_number()});
  node.server->BootstrapSelf(node.bootstrap);
  return node;
}

// A troupe member exporting the counter interface: procedure 0 returns
// ++counter, and the counter is the module state for get_state, so a
// joiner starts exactly where the incumbents are.
struct Member {
  std::unique_ptr<RpcProcess> process;
  std::unique_ptr<BindingClient> binding;
  std::unique_ptr<BindingCache> cache;
  ModuleNumber module = 0;
  int32_t counter = 0;
};

std::unique_ptr<Member> MakeMember(Runtime* runtime,
                                   const std::string& name,
                                   const Troupe& ringmaster,
                                   net::Port port = 0) {
  auto member = std::make_unique<Member>();
  sim::Host* host = runtime->AddHost(name);
  member->process =
      std::make_unique<RpcProcess>(&runtime->fabric(), host, port);
  member->binding =
      std::make_unique<BindingClient>(member->process.get(), ringmaster);
  member->cache = std::make_unique<BindingCache>(member->binding.get());
  member->process->SetClientTroupeResolver(member->cache->MakeResolver());
  member->module = member->process->ExportModule("counter");
  Member* raw = member.get();
  member->process->ExportProcedure(
      member->module, 0,
      [raw](ServerCallContext&, const Bytes&) -> Task<StatusOr<Bytes>> {
        marshal::Writer w;
        w.WriteI32(++raw->counter);
        co_return w.Take();
      });
  member->process->SetStateProvider(member->module, [raw] {
    marshal::Writer w;
    w.WriteI32(raw->counter);
    return w.Take();
  });
  return member;
}

TEST(RtLoopbackTest, ReplicatedCallAndReconfiguration) {
  Runtime runtime;
  RingmasterNode ring = MakeRingmaster(&runtime, 38017);

  std::vector<std::unique_ptr<Member>> members;
  Troupe troupe;
  for (int i = 0; i < 3; ++i) {
    members.push_back(
        MakeMember(&runtime, "member" + std::to_string(i), ring.bootstrap));
    troupe.members.push_back(
        members[i]->process->module_address(members[i]->module));
  }

  // Register the three-member troupe; registration does not propagate
  // the fresh ID (only membership changes do), so adopt it by hand as
  // the simulator tests do.
  bool registered = false;
  std::vector<RpcProcess*> troupe_procs = {members[0]->process.get(),
                                           members[1]->process.get(),
                                           members[2]->process.get()};
  members[0]->process->host()->Spawn(
      [](BindingClient* b, Troupe t, std::vector<RpcProcess*> procs,
         bool* done) -> Task<void> {
        StatusOr<TroupeId> id = co_await b->RegisterTroupe("counter", t);
        CIRCUS_CHECK_MSG(id.ok(), id.status().ToString().c_str());
        for (RpcProcess* p : procs) {
          p->SetTroupeId(*id);
        }
        *done = true;
      }(members[0]->binding.get(), troupe, troupe_procs, &registered));
  ASSERT_TRUE(runtime.RunUntil([&registered] { return registered; },
                               Duration::Seconds(30)));

  // A singleton client imports by name and makes replicated calls; the
  // unanimous collation means every member executed and agreed.
  sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);
  BindingClient client_binding(&client, ring.bootstrap);
  BindingCache client_cache(&client_binding);
  client.SetClientTroupeResolver(client_cache.MakeResolver());

  std::vector<int32_t> results;
  bool calls_done = false;
  client_host->Spawn(
      [](RpcProcess* p, BindingCache* cache, int calls,
         std::vector<int32_t>* out, bool* done) -> Task<void> {
        const ThreadId thread = p->NewRootThread();
        const Bytes no_args;
        for (int i = 0; i < calls; ++i) {
          StatusOr<Bytes> r = co_await cache->CallByName(
              p, thread, "counter", /*procedure=*/0, no_args);
          CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
          marshal::Reader reader(*r);
          out->push_back(reader.ReadI32());
        }
        *done = true;
      }(&client, &client_cache, 2, &results, &calls_done));
  ASSERT_TRUE(runtime.RunUntil([&calls_done] { return calls_done; },
                               Duration::Seconds(30)));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], 2);
  for (const auto& m : members) {
    EXPECT_EQ(m->counter, 2);  // every member executed every call
  }

  // Reconfiguration: a fourth member joins via the Section 6.4.1 recipe
  // (get_state from the incumbents, then add_troupe_member).
  members.push_back(MakeMember(&runtime, "member3", ring.bootstrap));
  Member* joiner = members.back().get();
  bool joined = false;
  joiner->process->host()->Spawn(
      [](Member* m, bool* done) -> Task<void> {
        Member* state_sink = m;
        // Hoisted: a capturing lambda must not become a std::function
        // inside the co_await statement (CLAUDE.md rule 1).
        std::function<void(const Bytes&)> accept_state =
            [state_sink](const Bytes& bytes) {
              marshal::Reader r(bytes);
              state_sink->counter = r.ReadI32();
            };
        Status s = co_await binding::JoinTroupe(
            m->process.get(), m->module, m->binding.get(), "counter",
            accept_state);
        CIRCUS_CHECK_MSG(s.ok(), s.ToString().c_str());
        *done = true;
      }(joiner, &joined));
  ASSERT_TRUE(runtime.RunUntil([&joined] { return joined; },
                               Duration::Seconds(30)));
  EXPECT_EQ(joiner->counter, 2);  // state transferred, not reset

  // The client's cached binding is now stale; CallByName hits
  // kStaleBinding, rebinds transparently, and the call reaches all four
  // members — including the joiner, which continues from the
  // transferred state.
  results.clear();
  calls_done = false;
  client_host->Spawn(
      [](RpcProcess* p, BindingCache* cache, int calls,
         std::vector<int32_t>* out, bool* done) -> Task<void> {
        const ThreadId thread = p->NewRootThread();
        const Bytes no_args;
        for (int i = 0; i < calls; ++i) {
          StatusOr<Bytes> r = co_await cache->CallByName(
              p, thread, "counter", /*procedure=*/0, no_args);
          CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
          marshal::Reader reader(*r);
          out->push_back(reader.ReadI32());
        }
        *done = true;
      }(&client, &client_cache, 1, &results, &calls_done));
  ASSERT_TRUE(runtime.RunUntil([&calls_done] { return calls_done; },
                               Duration::Seconds(30)));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], 3);
  for (const auto& m : members) {
    EXPECT_EQ(m->counter, 3);
  }
}

// ------------------------------------------------------- troupe commit --

constexpr ProcedureNumber kPutProc = 1;
constexpr ProcedureNumber kAddProc = 2;

Bytes EncodeKeyValue(const TxnId& txn, const std::string& key,
                     int64_t value) {
  marshal::Writer w;
  txn.Write(w);
  w.WriteString(key);
  w.WriteI64(value);
  return w.Take();
}

void InstallAccountProcedures(TransactionalServer* server) {
  server->ExportProcedure(
      kPutProc,
      [server](ServerCallContext&,
               const Bytes& args) -> Task<StatusOr<Bytes>> {
        marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        const std::string key = r.ReadString();
        const int64_t value = r.ReadI64();
        server->store().Begin(txn);
        marshal::Writer w;
        w.WriteI64(value);
        Status s = co_await server->store().Put(txn, key, w.Take());
        if (!s.ok()) {
          co_return s;
        }
        co_return Bytes{};
      });
  server->ExportProcedure(
      kAddProc,
      [server](ServerCallContext&,
               const Bytes& args) -> Task<StatusOr<Bytes>> {
        marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        const std::string key = r.ReadString();
        const int64_t delta = r.ReadI64();
        server->store().Begin(txn);
        int64_t current = 0;
        StatusOr<Bytes> v = co_await server->store().Get(txn, key);
        if (v.ok()) {
          marshal::Reader vr(*v);
          current = vr.ReadI64();
        } else if (v.status().code() != ErrorCode::kNotFound) {
          co_return v.status();
        }
        marshal::Writer w;
        w.WriteI64(current + delta);
        Status s = co_await server->store().Put(txn, key, w.Take());
        if (!s.ok()) {
          co_return s;
        }
        marshal::Writer out;
        out.WriteI64(current + delta);
        co_return out.Take();
      });
}

// Transaction bodies are free coroutine functions taking state by value
// (the CLAUDE.md capturing-lambda-coroutine rule), adapted to
// TransactionBody by a plain lambda.
Task<Status> CallOnceBody(RpcProcess* process, ThreadId thread,
                          Troupe troupe, ModuleNumber module,
                          ProcedureNumber proc, std::string key,
                          int64_t value, TxnId txn) {
  StatusOr<Bytes> r = co_await process->Call(
      thread, troupe, module, proc, EncodeKeyValue(txn, key, value));
  co_return r.status();
}

txn::TransactionBody MakeCallOnceBody(RpcProcess* process, ThreadId thread,
                                      Troupe troupe, ModuleNumber module,
                                      ProcedureNumber proc, std::string key,
                                      int64_t value) {
  return [=](const TxnId& txn) {
    return CallOnceBody(process, thread, troupe, module, proc, key, value,
                        txn);
  };
}

Task<void> RunCommitDriver(RpcProcess* process,
                           CommitCoordinator* coordinator, Troupe troupe,
                           ModuleNumber module, Status* out, bool* done) {
  const ThreadId thread = process->NewRootThread();
  Status put = co_await RunTransaction(
      process, coordinator, thread, troupe, module,
      MakeCallOnceBody(process, thread, troupe, module, kPutProc,
                       "balance", 100));
  if (put.ok()) {
    *out = co_await RunTransaction(
        process, coordinator, thread, troupe, module,
        MakeCallOnceBody(process, thread, troupe, module, kAddProc,
                         "balance", 25));
  } else {
    *out = put;
  }
  *done = true;
}

TEST(RtLoopbackTest, TroupeCommitOverRealUdp) {
  Runtime runtime;
  RingmasterNode ring = MakeRingmaster(&runtime, 38018);

  // Three transactional members, registered as one troupe.
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<TransactionalServer>> servers;
  Troupe troupe;
  ModuleNumber module = 0;
  for (int i = 0; i < 3; ++i) {
    sim::Host* host = runtime.AddHost("account" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&runtime.fabric(), host, 0);
    auto server =
        std::make_unique<TransactionalServer>(process.get(), "account");
    InstallAccountProcedures(server.get());
    module = server->module_number();
    troupe.members.push_back(process->module_address(module));
    processes.push_back(std::move(process));
    servers.push_back(std::move(server));
  }

  BindingClient registrar(processes[0].get(), ring.bootstrap);
  bool registered = false;
  TroupeId troupe_id;
  std::vector<RpcProcess*> troupe_procs = {
      processes[0].get(), processes[1].get(), processes[2].get()};
  processes[0]->host()->Spawn(
      [](BindingClient* b, Troupe t, std::vector<RpcProcess*> procs,
         TroupeId* out, bool* done) -> Task<void> {
        StatusOr<TroupeId> id = co_await b->RegisterTroupe("account", t);
        CIRCUS_CHECK_MSG(id.ok(), id.status().ToString().c_str());
        for (RpcProcess* p : procs) {
          p->SetTroupeId(*id);
        }
        *out = *id;
        *done = true;
      }(&registrar, troupe, troupe_procs, &troupe_id, &registered));
  ASSERT_TRUE(runtime.RunUntil([&registered] { return registered; },
                               Duration::Seconds(30)));
  troupe.id = troupe_id;

  sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);
  CommitCoordinator coordinator(&client);

  Status result(ErrorCode::kAborted, "not run");
  bool done = false;
  client_host->Spawn(
      RunCommitDriver(&client, &coordinator, troupe, module, &result,
                      &done));
  ASSERT_TRUE(
      runtime.RunUntil([&done] { return done; }, Duration::Seconds(60)));
  ASSERT_TRUE(result.ok()) << result.ToString();
  for (auto& server : servers) {
    std::optional<Bytes> v = server->store().Peek("balance");
    ASSERT_TRUE(v.has_value());
    marshal::Reader r(*v);
    EXPECT_EQ(r.ReadI64(), 125);
    EXPECT_EQ(server->store().active_transactions(), 0u);
  }
}

// --------------------------------------------------- live observing ----

// A minimal direct-troupe node (no ringmaster): an echo member, or a
// client that calls it. Shared by the tracing and introspection tests.
std::unique_ptr<RpcProcess> MakeEchoProcess(Runtime* runtime,
                                            sim::Host* host,
                                            ModuleNumber* module) {
  auto process = std::make_unique<RpcProcess>(&runtime->fabric(), host, 0);
  *module = process->ExportModule("echo");
  process->ExportProcedure(
      *module, 0,
      [](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
        co_return Bytes(args);
      });
  return process;
}

Task<void> CallEchoOnce(RpcProcess* client, Troupe troupe,
                        ModuleNumber module, bool* done) {
  const ThreadId thread = client->NewRootThread();
  const Bytes args(16, 0x5A);
  StatusOr<Bytes> r =
      co_await client->Call(thread, troupe, module, 0, args);
  CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  *done = true;
}

// The acceptance scenario of the live-observability work: four nodes
// (client + three troupe members) each record their own trace shard —
// per-host filter and a distinct incarnation, exactly as four separate
// circus_node processes would — one replicated call runs over real
// loopback UDP, and circus_trace_merge's library joins the shards into
// a single timeline where the call is one root span whose execute
// children span every member.
TEST(RtLoopbackTest, TracedReplicatedCallMergesIntoOneSpanTree) {
  Runtime runtime;
  const std::string dir = testing::TempDir();

  Troupe troupe;
  troupe.id = TroupeId{7001};
  ModuleNumber module = 0;
  std::vector<std::unique_ptr<RpcProcess>> members;
  std::vector<sim::Host*> hosts;

  sim::Host* client_host = runtime.AddHost("client");
  hosts.push_back(client_host);
  RpcProcess client(&runtime.fabric(), client_host, 0);
  for (int i = 0; i < 3; ++i) {
    sim::Host* host = runtime.AddHost("member" + std::to_string(i));
    hosts.push_back(host);
    members.push_back(MakeEchoProcess(&runtime, host, &module));
    members.back()->SetTroupeId(troupe.id);
    troupe.members.push_back(
        members.back()->module_address(module));
  }

  // One shard writer per node, as if each were its own process. Shard 0
  // (the client) is the merge's reference clock.
  const char* names[] = {"client", "member0", "member1", "member2"};
  std::vector<std::string> paths;
  std::vector<std::unique_ptr<obs::ShardWriter>> writers;
  for (size_t k = 0; k < 4; ++k) {
    obs::ShardInfo info;
    info.node = names[k];
    info.role = k == 0 ? "client" : "member";
    info.address = (k == 0 ? client.process_address()
                           : members[k - 1]->process_address())
                       .ToString();
    info.incarnation = 1000 + k;  // distinct, as across real processes
    paths.push_back(dir + "/" + names[k] + ".trace.jsonl");
    writers.push_back(std::make_unique<obs::ShardWriter>(
        paths.back(), std::move(info)));
    ASSERT_TRUE(writers.back()->ok());
    writers.back()->Attach(&runtime.bus(), hosts[k]->id());
  }

  bool done = false;
  client_host->Spawn(CallEchoOnce(&client, troupe, module, &done));
  ASSERT_TRUE(
      runtime.RunUntil([&done] { return done; }, Duration::Seconds(30)));
  for (auto& writer : writers) {
    ASSERT_TRUE(writer->Flush().ok());
  }

  std::vector<obs::ShardFile> shards;
  for (const std::string& path : paths) {
    StatusOr<obs::ShardFile> shard = obs::ReadShardFile(path);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    EXPECT_FALSE(shard->events.empty()) << path;
    shards.push_back(*std::move(shard));
  }

  StatusOr<obs::MergeResult> merged = obs::MergeShards(shards);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(merged->aligned[k]) << "shard " << k << " unaligned";
    // All four nodes share one physical clock here, so the paired
    // exchange estimate must come out near zero — its error is bounded
    // by loopback scheduling jitter, far below a second.
    EXPECT_LT(std::llabs(merged->shift_ns[k]), 1'000'000'000ll);
  }

  // The replicated call reconstructs as ONE tree: a root call span on
  // the client's lane whose children are execute spans on three
  // *distinct* member lanes.
  const std::vector<obs::Span> roots = obs::AssembleSpans(merged->events);
  ASSERT_EQ(roots.size(), 1u) << obs::Render(roots);
  const obs::Span& call = roots[0];
  EXPECT_EQ(call.kind, obs::Span::Kind::kCall);
  EXPECT_EQ(call.host, 1u);  // shard 0 lane
  EXPECT_TRUE(call.ok);
  ASSERT_EQ(call.children.size(), 3u) << obs::Render(roots);
  std::set<uint32_t> member_lanes;
  for (const obs::Span& child : call.children) {
    EXPECT_EQ(child.kind, obs::Span::Kind::kExecute);
    EXPECT_GE(child.begin_ns, call.begin_ns);
    member_lanes.insert(child.host);
  }
  EXPECT_EQ(member_lanes, (std::set<uint32_t>{2, 3, 4}));
}

// NodeObservability without the datagram socket: HandleQuery is the
// exact reply a stats datagram gets (the socket path itself is driven
// end-to-end by scripts/check_realnet.sh against live circus_nodes).
TEST(RtLoopbackTest, IntrospectionQueriesReportMetricsHealthAndSpans) {
  Runtime runtime;
  sim::Host* member_host = runtime.AddHost("member");
  NodeConfig cfg;
  cfg.role = NodeConfig::Role::kMember;
  cfg.listen = net::NetAddress{kLoopbackAddress, 39001};
  cfg.node_name = "observe-me";
  cfg.trace_dir = testing::TempDir();
  NodeObservability node_obs(&runtime, member_host, cfg);
  ASSERT_TRUE(node_obs.status().ok()) << node_obs.status().ToString();

  ModuleNumber module = 0;
  std::unique_ptr<RpcProcess> member =
      MakeEchoProcess(&runtime, member_host, &module);
  member->SetTroupeId(TroupeId{99});
  node_obs.SetProcess(member.get());

  Troupe troupe;
  troupe.id = TroupeId{99};
  troupe.members.push_back(member->module_address(module));
  sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);
  bool done = false;
  client_host->Spawn(CallEchoOnce(&client, troupe, module, &done));
  ASSERT_TRUE(
      runtime.RunUntil([&done] { return done; }, Duration::Seconds(30)));

  const std::string metrics = node_obs.HandleQuery("metrics");
  EXPECT_NE(metrics.find("circus_rt_loop_wakeups_total"),
            std::string::npos)
      << metrics;
  // Shard health leads the reply so drop counts survive truncation.
  EXPECT_EQ(metrics.rfind("# TYPE circus_shard_observed_total counter", 0),
            0u)
      << metrics;
  EXPECT_NE(metrics.find("circus_shard_dropped_total 0"), std::string::npos);
  EXPECT_NE(metrics.find("circus_shard_flushes_total"), std::string::npos);
  EXPECT_LE(metrics.size(), net::Fabric::kMaxDatagramBytes);

  const std::string health = node_obs.HandleQuery(" health\n");
  EXPECT_EQ(health.rfind("ok observe-me\n", 0), 0u) << health;
  EXPECT_NE(health.find("role member\n"), std::string::npos);
  EXPECT_NE(health.find("troupe 99\n"), std::string::npos);
  // Graded load rides the health reply. The exact grade depends on how
  // busy this machine is, so only the line's presence is asserted.
  EXPECT_NE(health.find("\nload "), std::string::npos) << health;
  EXPECT_NE(health.find(" ok\n"), std::string::npos);  // the client peer,
                                                       // heard from just now

  // The util query serves the USE monitor's exposition; the node's own
  // probes are registered from construction.
  node_obs.SampleUtilization();
  const std::string util = node_obs.HandleQuery("util");
  EXPECT_EQ(util.rfind("# TYPE circus_util_busy_pct gauge", 0), 0u) << util;
  for (const char* resource :
       {"rt.loop", "cpu.process", "net.udp", "alloc.marshal", "msg.segment",
        "obs.shard"}) {
    EXPECT_NE(util.find("{resource=\"" + std::string(resource) + "\"}"),
              std::string::npos)
        << resource;
  }

  // The shard records every host in this single-process runtime, so the
  // member's spans view shows the whole call tree.
  const std::string spans = node_obs.HandleQuery("spans");
  EXPECT_NE(spans.find("call("), std::string::npos) << spans;
  EXPECT_NE(spans.find("exec("), std::string::npos) << spans;

  const std::string err = node_obs.HandleQuery("bogus");
  EXPECT_EQ(err.rfind("err unknown query", 0), 0u) << err;

  // FinalFlush leaves both on-disk artifacts a dead node is judged by:
  // the trace shard and the last metrics snapshot.
  node_obs.FinalFlush();
  ASSERT_TRUE(node_obs.status().ok()) << node_obs.status().ToString();
  StatusOr<obs::ShardFile> shard =
      obs::ReadShardFile(ShardPathFor(cfg));
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  EXPECT_EQ(shard->info.node, "observe-me");
  EXPECT_EQ(shard->info.incarnation, runtime.incarnation());
  EXPECT_FALSE(shard->events.empty());
  std::ifstream prom(MetricsPathFor(cfg));
  ASSERT_TRUE(prom.good());
  std::string first_line;
  std::getline(prom, first_line);
  EXPECT_EQ(first_line.rfind("# TYPE circus_", 0), 0u) << first_line;
}

// The paged query forms: a spans text too big for one datagram comes
// back in "chunk <offset> <next>" pieces that reassemble byte-exactly,
// while the bare forms stay as they were (truncated with a marker).
TEST(RtLoopbackTest, PagedIntrospectionReassemblesOversizeSpansReply) {
  Runtime runtime;
  sim::Host* member_host = runtime.AddHost("member");
  NodeConfig cfg;
  cfg.role = NodeConfig::Role::kMember;
  cfg.listen = net::NetAddress{kLoopbackAddress, 39002};
  cfg.node_name = "pager";
  NodeObservability node_obs(&runtime, member_host, cfg);
  ASSERT_TRUE(node_obs.status().ok()) << node_obs.status().ToString();

  ModuleNumber module = 0;
  std::unique_ptr<RpcProcess> member =
      MakeEchoProcess(&runtime, member_host, &module);
  member->SetTroupeId(TroupeId{99});
  node_obs.SetProcess(member.get());
  Troupe troupe;
  troupe.id = TroupeId{99};
  troupe.members.push_back(member->module_address(module));
  sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);
  // Enough call trees that the rendered span forest needs several
  // datagrams.
  for (int i = 0; i < 40; ++i) {
    bool done = false;
    client_host->Spawn(CallEchoOnce(&client, troupe, module, &done));
    ASSERT_TRUE(
        runtime.RunUntil([&done] { return done; }, Duration::Seconds(30)));
  }

  // The bare form still fits one datagram, by truncation.
  const std::string bare = node_obs.HandleQuery("spans");
  ASSERT_LE(bare.size(), net::Fabric::kMaxDatagramBytes);
  constexpr std::string_view kMark = "...\n";
  ASSERT_TRUE(bare.ends_with(kMark)) << "spans text unexpectedly small";

  // Page through the full text, reply by reply.
  std::string assembled;
  size_t offset = 0;
  bool saw_end = false;
  for (int guard = 0; guard < 100 && !saw_end; ++guard) {
    const std::string reply =
        node_obs.HandleQuery("spans " + std::to_string(offset));
    ASSERT_LE(reply.size(), net::Fabric::kMaxDatagramBytes);
    ASSERT_EQ(reply.rfind("chunk ", 0), 0u) << reply;
    const size_t eol = reply.find('\n');
    ASSERT_NE(eol, std::string::npos);
    std::istringstream header(reply.substr(6, eol - 6));
    size_t echoed_offset = 0;
    std::string next;
    header >> echoed_offset >> next;
    ASSERT_EQ(echoed_offset, offset);
    assembled += reply.substr(eol + 1);
    if (next == "end") {
      saw_end = true;
    } else {
      offset = std::stoul(next);
      ASSERT_EQ(offset, assembled.size());
    }
  }
  ASSERT_TRUE(saw_end);
  // Genuinely multi-datagram, and the truncated bare reply is a byte
  // prefix of the reassembled whole.
  EXPECT_GT(assembled.size(), net::Fabric::kMaxDatagramBytes);
  const std::string prefix = bare.substr(0, bare.size() - kMark.size());
  ASSERT_EQ(assembled.compare(0, prefix.size(), prefix), 0);
  EXPECT_NE(assembled.find("call("), std::string::npos);

  // Metrics also outgrow one datagram now that histograms carry
  // cumulative bucket series; page them back together and check the
  // reassembly is the full exposition, buckets included.
  std::string metrics_assembled;
  offset = 0;
  saw_end = false;
  for (int guard = 0; guard < 100 && !saw_end; ++guard) {
    const std::string reply =
        node_obs.HandleQuery("metrics " + std::to_string(offset));
    ASSERT_LE(reply.size(), net::Fabric::kMaxDatagramBytes);
    ASSERT_EQ(reply.rfind("chunk ", 0), 0u) << reply;
    const size_t eol = reply.find('\n');
    ASSERT_NE(eol, std::string::npos);
    std::istringstream header(reply.substr(6, eol - 6));
    size_t echoed_offset = 0;
    std::string next;
    header >> echoed_offset >> next;
    ASSERT_EQ(echoed_offset, offset);
    metrics_assembled += reply.substr(eol + 1);
    if (next == "end") {
      saw_end = true;
    } else {
      offset = std::stoul(next);
    }
  }
  ASSERT_TRUE(saw_end);
  EXPECT_NE(metrics_assembled.find("_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(metrics_assembled.find("quantile=\"0.99\""), std::string::npos);
  // The truncated bare form is a byte prefix of the reassembled whole.
  const std::string bare_metrics = node_obs.HandleQuery("metrics");
  ASSERT_LE(bare_metrics.size(), net::Fabric::kMaxDatagramBytes);
  const std::string metrics_prefix =
      bare_metrics.ends_with(kMark)
          ? bare_metrics.substr(0, bare_metrics.size() - kMark.size())
          : bare_metrics;
  ASSERT_EQ(
      metrics_assembled.compare(0, metrics_prefix.size(), metrics_prefix),
      0);

  // The latency query serves the attributor's exposition through the
  // same bare/paged machinery.
  const std::string latency = node_obs.HandleQuery("latency");
  ASSERT_LE(latency.size(), net::Fabric::kMaxDatagramBytes);
  EXPECT_EQ(latency.rfind("# TYPE circus_latency_stage_us summary", 0), 0u)
      << latency;
  EXPECT_EQ(node_obs.HandleQuery("latency 0").rfind("chunk 0 ", 0), 0u);

  // Offsets past the end terminate; garbage offsets are an error.
  const std::string past =
      node_obs.HandleQuery("spans " + std::to_string(assembled.size() + 999));
  EXPECT_EQ(past, "chunk " + std::to_string(assembled.size()) + " end\n");
  EXPECT_EQ(node_obs.HandleQuery("spans x").rfind("err bad offset", 0), 0u);
  EXPECT_EQ(node_obs.HandleQuery("util x").rfind("err bad offset", 0), 0u);
}

// ---------------------------------------- paged offsets past the end ----

// One stats query over a real datagram: send, wait, copy the reply out.
Task<void> QueryStatsOnce(net::DatagramSocket* socket, net::NetAddress to,
                          std::string query, std::string* reply,
                          bool* done) {
  Bytes payload(query.begin(), query.end());
  Status sent = co_await socket->Send(to, std::move(payload));
  CIRCUS_CHECK_MSG(sent.ok(), sent.ToString().c_str());
  net::Datagram response = co_await socket->Receive();
  reply->assign(response.payload.begin(), response.payload.end());
  *done = true;
}

// Every paged query form must terminate cleanly when the client asks
// for an offset past the end of the text: a bare "chunk <size> end"
// header with an empty body, never an error and never a stall. Driven
// over real datagrams, with the querying socket on either fabric a
// deployment can interpose: the raw UDP fabric or the fault-injection
// wrapper around it.
class PagedPastEndTest : public testing::TestWithParam<bool> {};

TEST_P(PagedPastEndTest, OffsetsPastEndOfDataTerminateWithEmptyChunk) {
  const bool through_fault_fabric = GetParam();
  Runtime runtime;
  sim::Host* node_host = runtime.AddHost("node");
  NodeConfig cfg;
  cfg.role = NodeConfig::Role::kMember;
  cfg.listen = net::NetAddress{kLoopbackAddress, 39050};
  cfg.node_name = "pastend";
  cfg.stats_port = through_fault_fabric ? 39052 : 39051;
  NodeObservability node_obs(&runtime, node_host, cfg);
  ASSERT_TRUE(node_obs.status().ok()) << node_obs.status().ToString();

  ModuleNumber module = 0;
  std::unique_ptr<RpcProcess> member =
      MakeEchoProcess(&runtime, node_host, &module);
  member->SetTroupeId(TroupeId{99});
  node_obs.SetProcess(member.get());
  Troupe troupe;
  troupe.id = TroupeId{99};
  troupe.members.push_back(member->module_address(module));
  sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);
  bool called = false;
  client_host->Spawn(CallEchoOnce(&client, troupe, module, &called));
  ASSERT_TRUE(
      runtime.RunUntil([&called] { return called; }, Duration::Seconds(30)));

  net::FaultFabric fault_fabric(&runtime.fabric(), &runtime.executor(), 7);
  net::Fabric* query_fabric =
      through_fault_fabric ? static_cast<net::Fabric*>(&fault_fabric)
                           : &runtime.fabric();
  StatusOr<std::unique_ptr<net::DatagramSocket>> socket =
      net::DatagramSocket::Open(query_fabric, client_host, 0);
  ASSERT_TRUE(socket.ok()) << socket.status().ToString();
  const net::NetAddress stats_addr{kLoopbackAddress, cfg.stats_port};

  const auto ask = [&](const std::string& query, std::string* reply) {
    bool done = false;
    client_host->Spawn(
        QueryStatsOnce(socket->get(), stats_addr, query, reply, &done));
    return runtime.RunUntil([&done] { return done; },
                            Duration::Seconds(10));
  };

  for (const std::string query : {"metrics", "spans", "util"}) {
    SCOPED_TRACE(query);
    // Anything at or past the text size clamps to "empty final chunk".
    std::string reply;
    ASSERT_TRUE(ask(query + " 99999999", &reply));
    ASSERT_EQ(reply.rfind("chunk ", 0), 0u) << reply;
    const size_t eol = reply.find('\n');
    ASSERT_NE(eol, std::string::npos) << reply;
    EXPECT_EQ(eol + 1, reply.size()) << "past-end chunk has a body: "
                                     << reply;
    size_t clamped = 0;
    char next[16] = {0};
    ASSERT_EQ(std::sscanf(reply.c_str(), "chunk %zu %15s", &clamped, next),
              2)
        << reply;
    EXPECT_STREQ(next, "end") << reply;
    EXPECT_GT(clamped, 0u) << query << " text is empty";

    // Re-asking at the clamped offset is well-framed too. (The reply
    // may carry a body now: serving the first query itself advanced
    // live counters, so the text can have grown past the old end.)
    std::string again;
    ASSERT_TRUE(ask(query + " " + std::to_string(clamped), &again));
    EXPECT_EQ(again.rfind("chunk " + std::to_string(clamped) + " ", 0), 0u)
        << again;
  }

  // The util text itself is live on the datagram path too.
  std::string util;
  ASSERT_TRUE(ask("util", &util));
  EXPECT_EQ(util.rfind("# TYPE circus_util_busy_pct gauge", 0), 0u) << util;
  EXPECT_NE(util.find("{resource=\"rt.loop\"}"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Fabrics, PagedPastEndTest, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& param) {
                           return param.param ? "FaultFabric" : "UdpFabric";
                         });

// -------------------------------------------------- crash and reboot ----

// The circus_node crash-recovery path, in-process: a member is killed
// without a goodbye (host crash + socket teardown, which is all SIGKILL
// leaves behind) and a new process reboots on the SAME port. Its peers
// — ringmaster and the surviving member — still hold duplicate-
// suppression state keyed by that address, so the reboot only works
// because call numbers are clock-seeded per process: the reborn
// process's registry calls and get_state must not be swallowed as
// retransmissions of its predecessor's.
TEST(RtLoopbackTest, RebootedMemberRejoinsDespitePeerDuplicateSuppression) {
  Runtime runtime;
  RingmasterNode ring = MakeRingmaster(&runtime, 38021);

  std::vector<std::unique_ptr<Member>> members;
  Troupe troupe;
  for (int i = 0; i < 2; ++i) {
    members.push_back(
        MakeMember(&runtime, "member" + std::to_string(i), ring.bootstrap));
    troupe.members.push_back(
        members[i]->process->module_address(members[i]->module));
  }
  bool registered = false;
  std::vector<RpcProcess*> troupe_procs = {members[0]->process.get(),
                                           members[1]->process.get()};
  members[0]->process->host()->Spawn(
      [](BindingClient* b, Troupe t, std::vector<RpcProcess*> procs,
         bool* done) -> Task<void> {
        StatusOr<TroupeId> id = co_await b->RegisterTroupe("counter", t);
        CIRCUS_CHECK_MSG(id.ok(), id.status().ToString().c_str());
        for (RpcProcess* p : procs) {
          p->SetTroupeId(*id);
        }
        *done = true;
      }(members[0]->binding.get(), troupe, troupe_procs, &registered));
  ASSERT_TRUE(runtime.RunUntil([&registered] { return registered; },
                               Duration::Seconds(30)));

  sim::Host* client_host = runtime.AddHost("client");
  RpcProcess client(&runtime.fabric(), client_host, 0);
  BindingClient client_binding(&client, ring.bootstrap);
  BindingCache client_cache(&client_binding);
  client.SetClientTroupeResolver(client_cache.MakeResolver());
  const auto call_counter = [&](int32_t* out) {
    bool done = false;
    client_host->Spawn(
        [](RpcProcess* p, BindingCache* cache, int32_t* value,
           bool* flag) -> Task<void> {
          StatusOr<Bytes> r = co_await cache->CallByName(
              p, p->NewRootThread(), "counter", /*procedure=*/0, {});
          CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
          marshal::Reader reader(*r);
          *value = reader.ReadI32();
          *flag = true;
        }(&client, &client_cache, out, &done));
    return runtime.RunUntil([&done] { return done; },
                            Duration::Seconds(30));
  };

  int32_t value = 0;
  ASSERT_TRUE(call_counter(&value));
  EXPECT_EQ(value, 1);  // both members executed

  // Mid-commit SIGKILL equivalent: crash member1's host so every
  // protocol coroutine on it dies with HostCrashedError, drain the
  // loop, then drop the process — its sockets close with no wire
  // goodbye, exactly like a killed OS process.
  const core::ModuleAddress stale_address =
      members[1]->process->module_address(members[1]->module);
  members[1]->process->host()->Crash();
  runtime.RunUntil([] { return false; }, Duration::Millis(200));
  members[1].reset();

  // Reboot on the same port under a fresh host (a fresh incarnation).
  members[1] = MakeMember(&runtime, "member1b", ring.bootstrap,
                          stale_address.process.port);
  Member* reborn = members[1].get();
  bool rejoined = false;
  reborn->process->host()->Spawn(
      [](Member* m, core::ModuleAddress stale, bool* done) -> Task<void> {
        // The circus_node member recipe: evict the dead predecessor's
        // registration (same address, so peers would otherwise copy
        // state from a registered-but-reborn-empty replica), then join.
        StatusOr<TroupeId> evicted =
            co_await m->binding->RemoveTroupeMember("counter", stale);
        CIRCUS_CHECK_MSG(evicted.ok(), evicted.status().ToString().c_str());
        Member* state_sink = m;
        std::function<void(const Bytes&)> accept_state =
            [state_sink](const Bytes& bytes) {
              marshal::Reader r(bytes);
              state_sink->counter = r.ReadI32();
            };
        Status s = co_await binding::JoinTroupe(
            m->process.get(), m->module, m->binding.get(), "counter",
            accept_state);
        CIRCUS_CHECK_MSG(s.ok(), s.ToString().c_str());
        *done = true;
      }(reborn, stale_address, &rejoined));
  ASSERT_TRUE(runtime.RunUntil([&rejoined] { return rejoined; },
                               Duration::Seconds(30)));
  EXPECT_EQ(reborn->counter, 1);  // state transferred from the survivor

  // The next replicated call transparently rebinds (membership changed
  // twice) and reaches BOTH members — the reborn one included, whose
  // fresh clock-seeded call numbers nobody mistook for duplicates.
  ASSERT_TRUE(call_counter(&value));
  EXPECT_EQ(value, 2);
  EXPECT_EQ(members[0]->counter, 2);
  EXPECT_EQ(reborn->counter, 2);
}

// ------------------------------------------------------ bind conflicts --

// A stats_port collision must surface as a sticky, inspectable error —
// circus_node turns it into a one-line fatal (fail fast beats a silent
// unobservable node).
TEST(RtLoopbackTest, StatsPortBindConflictSurfacesFatalStatus) {
  Runtime runtime;
  sim::Host* host = runtime.AddHost("node");
  net::DatagramSocket squatter(&runtime.fabric(), host, 0);
  NodeConfig cfg;
  cfg.role = NodeConfig::Role::kMember;
  cfg.listen = net::NetAddress{kLoopbackAddress, 39010};
  cfg.node_name = "conflict";
  cfg.stats_port = squatter.local_address().port;
  NodeObservability node_obs(&runtime, host, cfg);
  EXPECT_FALSE(node_obs.stats_status().ok());
  EXPECT_EQ(node_obs.stats_status().code(), ErrorCode::kAlreadyExists);
  EXPECT_FALSE(node_obs.status().ok());

  // No conflict: stats_status is kOk even with the endpoint disabled.
  NodeConfig quiet = cfg;
  quiet.stats_port = 0;
  quiet.node_name = "quiet";
  NodeObservability quiet_obs(&runtime, host, quiet);
  EXPECT_TRUE(quiet_obs.stats_status().ok());
}

TEST(RtLoopbackTest, FaultControlCommandsAndBindConflict) {
  Runtime runtime;
  sim::Host* host = runtime.AddHost("node");
  net::FaultFabric fabric(&runtime.fabric(), &runtime.executor(), 7);

  StatusOr<std::unique_ptr<FaultControl>> control =
      FaultControl::Open(&runtime, host, &fabric, 0);
  ASSERT_TRUE(control.ok()) << control.status().ToString();
  const net::Port control_port = (*control)->local_address().port;
  EXPECT_NE(control_port, 0);

  // Command dispatch is the exact reply a control datagram gets.
  EXPECT_EQ((*control)->HandleCommand("loss 0.5"), "ok\n");
  EXPECT_DOUBLE_EQ(fabric.plan().drop, 0.5);
  const std::string status_line = (*control)->HandleCommand("status");
  EXPECT_NE(status_line.find("loss"), std::string::npos) << status_line;
  EXPECT_EQ(status_line.back(), '\n');
  EXPECT_EQ((*control)->HandleCommand("bogus").rfind("err ", 0), 0u);
  EXPECT_EQ((*control)->HandleCommand("loss 7").rfind("err ", 0), 0u);

  // One control endpoint per port: the second Open is the faults_port
  // bind conflict circus_node fails fast on.
  StatusOr<std::unique_ptr<FaultControl>> conflict =
      FaultControl::Open(&runtime, host, &fabric, control_port);
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), ErrorCode::kAlreadyExists);
}

}  // namespace
}  // namespace circus::rt
