// End-to-end tests of the replfs application subsystem (src/apps/
// replfs): a replicated file/KV store whose client and server speak
// only stub-generated marshaling (gen/apps/replfs.h, generated from
// replfs.idl at build time). The deterministic World harness covers the
// full write path -- transactional open, ordered-broadcast write
// staging, troupe commit -- plus aborts, the manifest catalogue,
// unanimous reads, concurrent-client serialization, and a member
// rebuilt from another member's externalized state.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gen/apps/replfs.h"  // generated at build time
#include "src/apps/replfs/client.h"
#include "src/apps/replfs/server.h"
#include "src/common/check.h"
#include "src/net/world.h"

namespace fs = circus::idl::ReplFs;

namespace {

using circus::Bytes;
using circus::ErrorCode;
using circus::Status;
using circus::StatusOr;
using circus::apps::replfs::BlockKey;
using circus::apps::replfs::Client;
using circus::apps::replfs::ClientOptions;
using circus::apps::replfs::Server;
using circus::apps::replfs::Session;
using circus::core::RpcProcess;
using circus::core::ThreadId;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::SyscallCostModel;
using circus::sim::Task;

fs::BlockData MakeBlock(uint16_t fill, size_t words = 4) {
  fs::BlockData data(words);
  for (size_t i = 0; i < words; ++i) {
    data[i] = static_cast<uint16_t>(fill + i);
  }
  return data;
}

// Transaction bodies are free coroutine functions taking their state as
// parameters, adapted by plain non-coroutine lambdas (the same pattern
// as txn_commit_test.cc -- a capturing coroutine lambda is a lifetime
// trap).
Task<Status> WriteBlocksBody(std::string name, uint16_t fill,
                             uint32_t nblocks, Session* session) {
  StatusOr<uint16_t> fd = co_await session->Open(name);
  if (!fd.ok()) {
    co_return fd.status();
  }
  for (uint32_t b = 0; b < nblocks; ++b) {
    Status s = co_await session->Write(
        *fd, b, MakeBlock(static_cast<uint16_t>(fill + b)));
    if (!s.ok()) {
      co_return s;
    }
  }
  co_return co_await session->Close(*fd);
}

Client::Body MakeWriteBlocksBody(std::string name, uint16_t fill,
                                 uint32_t nblocks) {
  return [=](Session& session) {
    return WriteBlocksBody(name, fill, nblocks, &session);
  };
}

Task<Status> WriteThenFailBody(std::string name, Session* session) {
  StatusOr<uint16_t> fd = co_await session->Open(name);
  if (!fd.ok()) {
    co_return fd.status();
  }
  Status s = co_await session->Write(*fd, 0, MakeBlock(7));
  if (!s.ok()) {
    co_return s;
  }
  co_return Status(ErrorCode::kInvalidArgument,
                   "application changed its mind");
}

Task<Status> TwoFilesBody(Session* session) {
  StatusOr<uint16_t> alpha = co_await session->Open("alpha");
  if (!alpha.ok()) {
    co_return alpha.status();
  }
  StatusOr<uint16_t> beta = co_await session->Open("beta");
  if (!beta.ok()) {
    co_return beta.status();
  }
  Status s = co_await session->Write(*alpha, 0, MakeBlock(10));
  if (!s.ok()) {
    co_return s;
  }
  s = co_await session->Write(*beta, 0, MakeBlock(20));
  if (!s.ok()) {
    co_return s;
  }
  s = co_await session->Write(*beta, 1, MakeBlock(30));
  if (!s.ok()) {
    co_return s;
  }
  co_return Status::Ok();
}

Task<void> RunToStatus(Client* client, ThreadId thread, Client::Body body,
                       ClientOptions options, Status* out) {
  *out = co_await client->Run(thread, body, options);
}

class ReplFsTest : public ::testing::Test {
 protected:
  ReplFsTest() : world_(173, SyscallCostModel::Free()) {
    troupe_.id = circus::core::TroupeId{700};
    for (int i = 0; i < 3; ++i) {
      AddMember("fs" + std::to_string(i));
    }
    client_process_ = AddClientProcess("client");
    client_ = std::make_unique<Client>(client_process_.get());
    client_->Bind(troupe_);
  }

  void AddMember(const std::string& name) {
    circus::sim::Host* host = world_.AddHost(name);
    auto process =
        std::make_unique<RpcProcess>(&world_.network(), host, 9000);
    auto server = std::make_unique<Server>(process.get());
    process->SetTroupeId(troupe_.id);
    troupe_.members.push_back(
        process->module_address(server->module_number()));
    world_.executor().Spawn(server->DeliverLoop());
    processes_.push_back(std::move(process));
    servers_.push_back(std::move(server));
  }

  std::unique_ptr<RpcProcess> AddClientProcess(const std::string& name) {
    circus::sim::Host* host = world_.AddHost(name);
    return std::make_unique<RpcProcess>(&world_.network(), host, 8000);
  }

  template <typename T>
  T Run(Task<T> task) {
    auto result = std::make_shared<std::optional<T>>();
    world_.executor().Spawn(
        [](Task<T> inner,
           std::shared_ptr<std::optional<T>> out) -> Task<void> {
          out->emplace(co_await std::move(inner));
        }(std::move(task), result));
    world_.RunFor(Duration::Seconds(60));
    CIRCUS_CHECK_MSG(result->has_value(), "replfs call did not finish");
    return std::move(**result);
  }

  World world_;
  Troupe troupe_;
  std::vector<std::unique_ptr<RpcProcess>> processes_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::unique_ptr<RpcProcess> client_process_;
  std::unique_ptr<Client> client_;
};

TEST_F(ReplFsTest, CommitReplicatesWritesToEveryMember) {
  const Client::Body body = MakeWriteBlocksBody("alpha", 100, 3);
  Status s = Run(client_->Run(client_process_->NewRootThread(), body));
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (auto& server : servers_) {
    EXPECT_EQ(server->committed_transactions(), 1u);
    for (uint32_t b = 0; b < 3; ++b) {
      EXPECT_TRUE(server->store().Peek(BlockKey("alpha", b)).has_value());
    }
    EXPECT_EQ(server->staged_transactions(), 0u);
  }
  // Read-your-writes through the generated stubs, collated unanimously.
  StatusOr<fs::BlockData> data =
      Run(client_->ReadBlock(client_process_->NewRootThread(), "alpha", 2));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, MakeBlock(102));
}

TEST_F(ReplFsTest, AbortDiscardsStagedWrites) {
  const Client::Body body = [](Session& session) {
    return WriteThenFailBody("ghost", &session);
  };
  Status s = Run(client_->Run(client_process_->NewRootThread(), body));
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  for (auto& server : servers_) {
    EXPECT_FALSE(server->store().Peek(BlockKey("ghost", 0)).has_value());
    EXPECT_EQ(server->committed_transactions(), 0u);
    EXPECT_EQ(server->staged_transactions(), 0u);
  }
}

TEST_F(ReplFsTest, ManifestCataloguesCommittedFiles) {
  const Client::Body body = [](Session& session) {
    return TwoFilesBody(&session);
  };
  Status s = Run(client_->Run(client_process_->NewRootThread(), body));
  ASSERT_TRUE(s.ok()) << s.ToString();
  StatusOr<fs::Manifest> manifest =
      Run(client_->GetManifest(client_process_->NewRootThread()));
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->index(), 1u);
  const std::vector<fs::FileInfo>& files = std::get<1>(*manifest);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].name, "alpha");
  EXPECT_EQ(files[0].blocks, 1u);
  ASSERT_EQ(files[0].extents.size(), 1u);
  EXPECT_EQ(files[0].extents[0].words, 4u);
  EXPECT_EQ(files[1].name, "beta");
  EXPECT_EQ(files[1].blocks, 2u);
  EXPECT_EQ(files[1].extents.size(), 2u);
}

TEST_F(ReplFsTest, FreshStoreServesEmptyManifestAndNoSuchFile) {
  StatusOr<fs::Manifest> manifest =
      Run(client_->GetManifest(client_process_->NewRootThread()));
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->index(), 0u);
  StatusOr<fs::BlockData> data =
      Run(client_->ReadBlock(client_process_->NewRootThread(), "ghost", 0));
  ASSERT_FALSE(data.ok());
  std::optional<fs::Error> err = fs::GetReportedError(data.status());
  ASSERT_TRUE(err.has_value()) << data.status().ToString();
  EXPECT_EQ(*err, fs::Error::NoSuchFile);
}

TEST_F(ReplFsTest, ConcurrentClientsSerializeOnTheSameFile) {
  auto other_process = AddClientProcess("client2");
  auto other_client = std::make_unique<Client>(other_process.get());
  other_client->Bind(troupe_);
  circus::sim::Rng rng_a(11);
  circus::sim::Rng rng_b(22);
  ClientOptions opts_a;
  opts_a.rng = &rng_a;
  ClientOptions opts_b;
  opts_b.rng = &rng_b;
  Status sa(ErrorCode::kAborted, "unset");
  Status sb(ErrorCode::kAborted, "unset");
  world_.executor().Spawn(RunToStatus(
      client_.get(), client_process_->NewRootThread(),
      MakeWriteBlocksBody("shared", 40, 2), opts_a, &sa));
  world_.executor().Spawn(RunToStatus(
      other_client.get(), other_process->NewRootThread(),
      MakeWriteBlocksBody("shared", 50, 2), opts_b, &sb));
  world_.RunFor(Duration::Seconds(120));
  ASSERT_TRUE(sa.ok()) << sa.ToString();
  ASSERT_TRUE(sb.ok()) << sb.ToString();
  // 2PL on the manifest serialized the two transactions; every member
  // holds the same winner.
  const std::optional<Bytes> reference =
      servers_[0]->store().Peek(BlockKey("shared", 0));
  ASSERT_TRUE(reference.has_value());
  for (auto& server : servers_) {
    EXPECT_EQ(server->committed_transactions(), 2u);
    const std::optional<Bytes> block =
        server->store().Peek(BlockKey("shared", 0));
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(*block, *reference);
  }
}

TEST_F(ReplFsTest, MemberRebuiltFromStateTransferServesReads) {
  const Client::Body body = MakeWriteBlocksBody("alpha", 100, 3);
  Status s = Run(client_->Run(client_process_->NewRootThread(), body));
  ASSERT_TRUE(s.ok()) << s.ToString();
  // Replace member 2 with a process rebuilt from member 0's
  // externalized state -- the Section 6.4.1 get_state path a rejoining
  // SIGKILLed member takes through the Reconfigurer.
  const Bytes snapshot = servers_[0]->store().ExternalizeState();
  AddMember("fs3");
  servers_.back()->store().InternalizeState(snapshot);
  troupe_.members.erase(troupe_.members.begin() + 2);
  Troupe healed = troupe_;
  client_->Bind(healed);
  // Unanimous collation across the two survivors and the rebuilt
  // member: the snapshot really carried the committed state.
  StatusOr<fs::BlockData> data =
      Run(client_->ReadBlock(client_process_->NewRootThread(), "alpha", 1));
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, MakeBlock(101));
  // And the healed troupe commits new transactions.
  const Client::Body more = MakeWriteBlocksBody("beta", 200, 1);
  Status s2 = Run(client_->Run(client_process_->NewRootThread(), more));
  ASSERT_TRUE(s2.ok()) << s2.ToString();
  EXPECT_TRUE(
      servers_.back()->store().Peek(BlockKey("beta", 0)).has_value());
}

}  // namespace
