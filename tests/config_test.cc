#include <gtest/gtest.h>

#include <string>

#include "src/common/check.h"
#include "src/config/ast.h"
#include "src/config/manager.h"
#include "src/config/parser.h"

namespace circus::config {
namespace {

// ---------------------------------------------------------------- Parse --

TEST(ConfigParserTest, ParsesTheDissertationExample) {
  StatusOr<ExprPtr> f = ParseFormula(
      "x.name = \"UCB-Monet\" and x.memory = 10 and x.has-floating-point");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(ExprToString(**f),
            "((x.name = \"UCB-Monet\" and x.memory = 10) and "
            "x.has-floating-point)");
}

TEST(ConfigParserTest, ParsesTroupeSpec) {
  StatusOr<TroupeSpec> spec = ParseTroupeSpec(
      "troupe (x, y, z) where x.memory >= 4 and y.memory >= 4 and "
      "z.memory >= 4");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->variables,
            (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_NE(spec->ToString().find("troupe (x, y, z) where"),
            std::string::npos);
}

TEST(ConfigParserTest, PrecedenceNotBindsTighterThanAndThanOr) {
  StatusOr<ExprPtr> f =
      ParseFormula("not x.a and x.b or x.c");
  ASSERT_TRUE(f.ok());
  // ((not x.a and x.b) or x.c)
  EXPECT_EQ(ExprToString(**f), "((not x.a and x.b) or x.c)");
}

TEST(ConfigParserTest, ParenthesesOverridePrecedence) {
  StatusOr<ExprPtr> f = ParseFormula("x.a and (x.b or x.c)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(ExprToString(**f), "(x.a and (x.b or x.c))");
}

TEST(ConfigParserTest, AllComparisonOperators) {
  for (const char* op : {"=", "!=", "<>", "<", "<=", ">", ">="}) {
    StatusOr<ExprPtr> f =
        ParseFormula("x.memory " + std::string(op) + " 8");
    EXPECT_TRUE(f.ok()) << op << ": " << f.status().ToString();
  }
}

TEST(ConfigParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFormula("x.").ok());
  EXPECT_FALSE(ParseFormula("x.a =").ok());
  EXPECT_FALSE(ParseFormula("and x.a").ok());
  EXPECT_FALSE(ParseFormula("x.a and").ok());
  EXPECT_FALSE(ParseFormula("(x.a").ok());
  EXPECT_FALSE(ParseFormula("x.a x.b").ok());
  EXPECT_FALSE(ParseTroupeSpec("troupe () where x.a").ok());
  EXPECT_FALSE(ParseTroupeSpec("troupe (x) x.a").ok());
  EXPECT_FALSE(ParseFormula("x.name = \"unterminated").ok());
}

TEST(ConfigParserTest, BooleanLiteralsAndNegativeNumbers) {
  EXPECT_TRUE(ParseFormula("x.diskless = false").ok());
  EXPECT_TRUE(ParseFormula("x.offset = -5").ok());
  EXPECT_TRUE(ParseFormula("x.load < 2.5").ok());
}

// ----------------------------------------------------------------- Eval --

class ConfigSolveTest : public ::testing::Test {
 protected:
  ConfigSolveTest() {
    monet_ = db_.AddMachine({{"name", std::string("UCB-Monet")},
                             {"memory", 10.0},
                             {"has-floating-point", true}});
    degas_ = db_.AddMachine({{"name", std::string("UCB-Degas")},
                             {"memory", 4.0},
                             {"has-floating-point", true}});
    renoir_ = db_.AddMachine({{"name", std::string("UCB-Renoir")},
                              {"memory", 2.0},
                              {"has-floating-point", false}});
    arpa_ = db_.AddMachine({{"name", std::string("UCB-Arpa")},
                            {"memory", 8.0},
                            {"has-floating-point", true}});
  }

  ExprPtr Parse(const std::string& text) {
    StatusOr<ExprPtr> f = ParseFormula(text);
    CIRCUS_CHECK(f.ok());
    return std::move(*f);
  }

  MachineDatabase db_;
  MachineId monet_ = 0, degas_ = 0, renoir_ = 0, arpa_ = 0;
};

TEST_F(ConfigSolveTest, EvalFormulaOnAssignment) {
  ExprPtr f = Parse(
      "x.name = \"UCB-Monet\" and x.memory = 10 and x.has-floating-point");
  EXPECT_TRUE(EvalFormula(*f, {{"x", monet_}}, db_));
  EXPECT_FALSE(EvalFormula(*f, {{"x", degas_}}, db_));
}

TEST_F(ConfigSolveTest, MissingAttributeIsFalse) {
  ExprPtr f = Parse("x.gpu-count > 0");
  EXPECT_FALSE(EvalFormula(*f, {{"x", monet_}}, db_));
  ExprPtr g = Parse("not x.gpu-count > 0");
  EXPECT_TRUE(EvalFormula(*g, {{"x", monet_}}, db_));
}

TEST_F(ConfigSolveTest, InstantiateSelectsSatisfyingMachines) {
  StatusOr<TroupeSpec> spec = ParseTroupeSpec(
      "troupe (x, y) where x.memory >= 8 and y.memory >= 8");
  ASSERT_TRUE(spec.ok());
  ConfigurationManager manager(&db_);
  StatusOr<SolveResult> r = manager.Instantiate(*spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The only machines with >= 8 MB are Monet (10) and Arpa (8).
  std::set<MachineId> chosen(r->machines.begin(), r->machines.end());
  EXPECT_EQ(chosen, (std::set<MachineId>{monet_, arpa_}));
}

TEST_F(ConfigSolveTest, MembersMustBeDistinctMachines) {
  StatusOr<TroupeSpec> spec = ParseTroupeSpec(
      "troupe (x, y) where x.memory = 10 and y.memory = 10");
  ASSERT_TRUE(spec.ok());
  ConfigurationManager manager(&db_);
  // Only Monet has 10 MB; two distinct machines cannot both satisfy it.
  StatusOr<SolveResult> r = manager.Instantiate(*spec);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST_F(ConfigSolveTest, ExtendKeepsExistingMembersWherePossible) {
  StatusOr<TroupeSpec> spec = ParseTroupeSpec(
      "troupe (x, y) where x.has-floating-point and "
      "y.has-floating-point");
  ASSERT_TRUE(spec.ok());
  ConfigurationManager manager(&db_);
  // Current troupe = {Degas}; extension should add one machine and keep
  // Degas, not replace it.
  StatusOr<SolveResult> r = manager.ExtendTroupe(*spec, {degas_});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<MachineId> chosen(r->machines.begin(), r->machines.end());
  EXPECT_TRUE(chosen.contains(degas_));
  EXPECT_EQ(r->symmetric_difference, 1u);  // exactly one machine added
}

TEST_F(ConfigSolveTest, ExtendReplacesFailedMember) {
  StatusOr<TroupeSpec> spec = ParseTroupeSpec(
      "troupe (x, y) where x.memory >= 4 and y.memory >= 4");
  ASSERT_TRUE(spec.ok());
  ConfigurationManager manager(&db_);
  // Renoir (2 MB) no longer satisfies the spec, e.g. after its memory
  // attribute was downgraded; the solver must swap it out while keeping
  // Monet.
  StatusOr<SolveResult> r = manager.ExtendTroupe(*spec, {monet_, renoir_});
  ASSERT_TRUE(r.ok());
  std::set<MachineId> chosen(r->machines.begin(), r->machines.end());
  EXPECT_TRUE(chosen.contains(monet_));
  EXPECT_FALSE(chosen.contains(renoir_));
  EXPECT_EQ(r->symmetric_difference, 2u);  // renoir out, one machine in
}

TEST_F(ConfigSolveTest, DisjunctionAcrossVariables) {
  StatusOr<TroupeSpec> spec = ParseTroupeSpec(
      "troupe (x, y) where (x.memory >= 10 or x.name = \"UCB-Arpa\") and "
      "y.memory >= 2 and not y.has-floating-point");
  ASSERT_TRUE(spec.ok());
  ConfigurationManager manager(&db_);
  StatusOr<SolveResult> r = manager.Instantiate(*spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // y must be Renoir (the only machine without floating point).
  EXPECT_EQ(r->assignment.at("y"), renoir_);
}

TEST_F(ConfigSolveTest, FindByName) {
  std::optional<MachineId> m = db_.FindByName("UCB-Degas");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, degas_);
  EXPECT_FALSE(db_.FindByName("UCB-Nonesuch").has_value());
}

TEST_F(ConfigSolveTest, AttributeUpdateChangesSolutions) {
  StatusOr<TroupeSpec> spec =
      ParseTroupeSpec("troupe (x) where x.memory >= 16");
  ASSERT_TRUE(spec.ok());
  ConfigurationManager manager(&db_);
  EXPECT_FALSE(manager.Instantiate(*spec).ok());
  db_.SetAttribute(monet_, "memory", 16.0);  // hardware upgrade
  StatusOr<SolveResult> r = manager.Instantiate(*spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->machines[0], monet_);
}

TEST_F(ConfigSolveTest, DeterministicTieBreak) {
  StatusOr<TroupeSpec> spec =
      ParseTroupeSpec("troupe (x) where x.has-floating-point");
  ASSERT_TRUE(spec.ok());
  ConfigurationManager manager(&db_);
  StatusOr<SolveResult> a = manager.Instantiate(*spec);
  StatusOr<SolveResult> b = manager.Instantiate(*spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->machines, b->machines);
}

}  // namespace
}  // namespace circus::config
