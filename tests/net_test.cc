#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/net/address.h"
#include "src/net/network.h"
#include "src/net/socket.h"
#include "src/net/stream.h"
#include "src/net/world.h"
#include "tests/test_util.h"

namespace circus::net {
namespace {

using circus::testing::RunTask;
using sim::Duration;
using sim::Syscall;
using sim::SyscallCostModel;
using sim::Task;

// -------------------------------------------------------------- Address --

TEST(AddressTest, ToStringDottedQuad) {
  NetAddress a{MakeHostAddress(2), 9000};
  EXPECT_EQ(a.ToString(), "10.0.0.3:9000");
}

TEST(AddressTest, MulticastDetection) {
  EXPECT_TRUE(IsMulticastHost(MakeMulticastAddress(0)));
  EXPECT_FALSE(IsMulticastHost(MakeHostAddress(0)));
  NetAddress group{MakeMulticastAddress(1), 7};
  EXPECT_TRUE(group.is_multicast());
}

TEST(AddressTest, Ordering) {
  NetAddress a{1, 2};
  NetAddress b{1, 3};
  NetAddress c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (NetAddress{1, 2}));
}

// ------------------------------------------------------------- Datagram --

class NetTest : public ::testing::Test {
 protected:
  NetTest() : world_(7, SyscallCostModel::Free()) {
    hosts_ = world_.AddHosts("vax", 3);
  }
  World world_;
  std::vector<sim::Host*> hosts_;
};

TEST_F(NetTest, UnicastDelivery) {
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  DatagramSocket b(&world_.network(), hosts_[1], 2000);
  std::string got;
  world_.executor().Spawn([](DatagramSocket* s, std::string* out) -> Task<void> {
    Datagram d = co_await s->Receive();
    *out = StringFromBytes(d.payload);
  }(&b, &got));
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("hello"));
  }(&a, b.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(world_.network().stats().packets_delivered, 1u);
}

TEST_F(NetTest, SourceAddressIsSender) {
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  DatagramSocket b(&world_.network(), hosts_[1], 2000);
  NetAddress src;
  world_.executor().Spawn([](DatagramSocket* s, NetAddress* out) -> Task<void> {
    Datagram d = co_await s->Receive();
    *out = d.source;
  }(&b, &src));
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("x"));
  }(&a, b.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(src, a.local_address());
}

TEST_F(NetTest, SendToUnboundPortIsDropped) {
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  world_.executor().Spawn([](DatagramSocket* s) -> Task<void> {
    co_await s->Send(NetAddress{MakeHostAddress(1), 4242},
                     BytesFromString("void"));
  }(&a));
  world_.RunUntilIdle();
  EXPECT_EQ(world_.network().stats().packets_lost, 1u);
  EXPECT_EQ(world_.network().stats().packets_delivered, 0u);
}

TEST_F(NetTest, LossPlanDropsEverything) {
  world_.network().set_default_fault_plan(FaultPlan::Lossy(1.0));
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  DatagramSocket b(&world_.network(), hosts_[1], 2000);
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await s->Send(to, BytesFromString("gone"));
    }
  }(&a, b.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(world_.network().stats().packets_lost, 5u);
  EXPECT_EQ(b.queued(), 0u);
}

TEST_F(NetTest, DuplicationDeliversTwice) {
  FaultPlan plan;
  plan.duplicate_probability = 1.0;
  world_.network().set_default_fault_plan(plan);
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  DatagramSocket b(&world_.network(), hosts_[1], 2000);
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("twin"));
  }(&a, b.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(b.queued(), 2u);
}

TEST_F(NetTest, PartitionBlocksTrafficAndHealRestores) {
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  DatagramSocket b(&world_.network(), hosts_[1], 2000);
  world_.network().Partition({hosts_[0]->id()});
  EXPECT_FALSE(world_.network().Connected(hosts_[0]->id(), hosts_[1]->id()));
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("blocked"));
  }(&a, b.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(b.queued(), 0u);
  EXPECT_EQ(world_.network().stats().packets_blocked_by_partition, 1u);

  world_.network().HealPartitions();
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("through"));
  }(&a, b.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(b.queued(), 1u);
}

TEST_F(NetTest, LayeredPartitionsRefineIntoMutualIsolation) {
  // Two layered calls carve three islands: {h0}, {h1}, and the rest.
  world_.network().Partition({hosts_[0]->id()});
  world_.network().Partition({hosts_[1]->id()});
  EXPECT_FALSE(world_.network().Connected(hosts_[0]->id(), hosts_[1]->id()));
  EXPECT_FALSE(world_.network().Connected(hosts_[0]->id(), hosts_[2]->id()));
  EXPECT_FALSE(world_.network().Connected(hosts_[1]->id(), hosts_[2]->id()));
  // Connected is reflexive even inside a one-host island.
  EXPECT_TRUE(world_.network().Connected(hosts_[0]->id(), hosts_[0]->id()));

  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  DatagramSocket b(&world_.network(), hosts_[1], 2000);
  DatagramSocket c(&world_.network(), hosts_[2], 3000);
  world_.executor().Spawn(
      [](DatagramSocket* s, NetAddress t1, NetAddress t2) -> Task<void> {
        co_await s->Send(t1, BytesFromString("x"));
        co_await s->Send(t2, BytesFromString("y"));
      }(&a, b.local_address(), c.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(b.queued(), 0u);
  EXPECT_EQ(c.queued(), 0u);
  EXPECT_EQ(world_.network().stats().packets_blocked_by_partition, 2u);

  // One heal removes every layer, not just the most recent.
  world_.network().HealPartitions();
  EXPECT_TRUE(world_.network().Connected(hosts_[0]->id(), hosts_[1]->id()));
  EXPECT_TRUE(world_.network().Connected(hosts_[1]->id(), hosts_[2]->id()));
  world_.executor().Spawn(
      [](DatagramSocket* s, NetAddress t1, NetAddress t2) -> Task<void> {
        co_await s->Send(t1, BytesFromString("x"));
        co_await s->Send(t2, BytesFromString("y"));
      }(&a, b.local_address(), c.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(b.queued(), 1u);
  EXPECT_EQ(c.queued(), 1u);
}

TEST_F(NetTest, MulticastPartitionBlocksPerRecipient) {
  DatagramSocket sender(&world_.network(), hosts_[0], 1000);
  DatagramSocket m1(&world_.network(), hosts_[1], 2000);
  DatagramSocket m2(&world_.network(), hosts_[2], 2000);
  const HostAddress group = MakeMulticastAddress(0);
  m1.JoinGroup(group);
  m2.JoinGroup(group);
  world_.network().Partition({hosts_[0]->id()});
  world_.executor().Spawn([](DatagramSocket* s, HostAddress g) -> Task<void> {
    co_await s->Send(NetAddress{g, 2000}, BytesFromString("sealed"));
  }(&sender, group));
  world_.RunUntilIdle();
  EXPECT_EQ(m1.queued(), 0u);
  EXPECT_EQ(m2.queued(), 0u);
  // One send operation, but the block is accounted per unreachable member.
  EXPECT_EQ(world_.network().stats().packets_sent, 1u);
  EXPECT_EQ(world_.network().stats().packets_blocked_by_partition, 2u);

  world_.network().HealPartitions();
  world_.executor().Spawn([](DatagramSocket* s, HostAddress g) -> Task<void> {
    co_await s->Send(NetAddress{g, 2000}, BytesFromString("open"));
  }(&sender, group));
  world_.RunUntilIdle();
  EXPECT_EQ(m1.queued(), 1u);
  EXPECT_EQ(m2.queued(), 1u);
}

TEST_F(NetTest, PairFaultPlanIsDirectionalAndClearable) {
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  DatagramSocket b(&world_.network(), hosts_[1], 2000);
  world_.network().SetPairFaultPlan(hosts_[0]->id(), hosts_[1]->id(),
                                    FaultPlan::Lossy(1.0));
  world_.executor().Spawn(
      [](DatagramSocket* s1, DatagramSocket* s2) -> Task<void> {
        co_await s1->Send(s2->local_address(), BytesFromString("eaten"));
        co_await s2->Send(s1->local_address(), BytesFromString("back"));
      }(&a, &b));
  world_.RunUntilIdle();
  // The override only covers h0 -> h1; the reverse path keeps the default.
  EXPECT_EQ(b.queued(), 0u);
  EXPECT_EQ(a.queued(), 1u);
  EXPECT_EQ(world_.network().stats().packets_lost, 1u);

  world_.network().ClearPairFaultPlans();
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("healed"));
  }(&a, b.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(b.queued(), 1u);
}

TEST_F(NetTest, DuplicationIsCountedInStats) {
  FaultPlan plan;
  plan.duplicate_probability = 1.0;
  world_.network().set_default_fault_plan(plan);
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  DatagramSocket b(&world_.network(), hosts_[1], 2000);
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("twin"));
  }(&a, b.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(world_.network().stats().packets_sent, 1u);
  EXPECT_EQ(world_.network().stats().packets_duplicated, 1u);
  EXPECT_EQ(world_.network().stats().packets_delivered, 2u);
}

TEST_F(NetTest, CrashDropsInFlightPackets) {
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  auto b = std::make_unique<DatagramSocket>(&world_.network(), hosts_[1],
                                            2000);
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("doomed"));
  }(&a, b->local_address()));
  // Crash the destination before the packet (500us flight) lands.
  world_.executor().ScheduleAfter(Duration::Micros(100),
                                  [&] { hosts_[1]->Crash(); });
  world_.RunUntilIdle();
  EXPECT_EQ(world_.network().stats().packets_delivered, 0u);
}

TEST_F(NetTest, RestartedHostDoesNotReceiveOldIncarnationTraffic) {
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  auto b = std::make_unique<DatagramSocket>(&world_.network(), hosts_[1],
                                            2000);
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("stale"));
  }(&a, b->local_address()));
  world_.executor().ScheduleAfter(Duration::Micros(100), [&] {
    hosts_[1]->Crash();
    hosts_[1]->Restart();
    // Rebind the same port in the new incarnation.
    b = std::make_unique<DatagramSocket>(&world_.network(), hosts_[1], 2000);
  });
  world_.RunUntilIdle();
  EXPECT_EQ(b->queued(), 0u);
}

TEST_F(NetTest, MulticastReachesAllGroupMembersWithOneSend) {
  DatagramSocket sender(&world_.network(), hosts_[0], 1000);
  DatagramSocket m1(&world_.network(), hosts_[1], 2000);
  DatagramSocket m2(&world_.network(), hosts_[2], 2000);
  const HostAddress group = MakeMulticastAddress(0);
  m1.JoinGroup(group);
  m2.JoinGroup(group);
  world_.executor().Spawn([](DatagramSocket* s, HostAddress g) -> Task<void> {
    co_await s->Send(NetAddress{g, 2000}, BytesFromString("all"));
  }(&sender, group));
  world_.RunUntilIdle();
  EXPECT_EQ(m1.queued(), 1u);
  EXPECT_EQ(m2.queued(), 1u);
  // One send operation, two deliveries.
  EXPECT_EQ(world_.network().stats().packets_sent, 1u);
  EXPECT_EQ(world_.network().stats().packets_delivered, 2u);
  // The cost model is Free, but the syscall is still counted.
  EXPECT_EQ(hosts_[0]->cpu().count(Syscall::kSendMsg), 1u);
}

TEST_F(NetTest, LeaveGroupStopsDelivery) {
  DatagramSocket sender(&world_.network(), hosts_[0], 1000);
  DatagramSocket m1(&world_.network(), hosts_[1], 2000);
  const HostAddress group = MakeMulticastAddress(0);
  m1.JoinGroup(group);
  m1.LeaveGroup(group);
  world_.executor().Spawn([](DatagramSocket* s, HostAddress g) -> Task<void> {
    co_await s->Send(NetAddress{g, 2000}, BytesFromString("none"));
  }(&sender, group));
  world_.RunUntilIdle();
  EXPECT_EQ(m1.queued(), 0u);
}

TEST_F(NetTest, PacketObserverSeesEverySend) {
  DatagramSocket a(&world_.network(), hosts_[0], 1000);
  DatagramSocket b(&world_.network(), hosts_[1], 2000);
  int observed = 0;
  world_.network().SetPacketObserver([&](const Datagram&) { ++observed; });
  world_.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s->Send(to, BytesFromString("obs"));
    }
  }(&a, b.local_address()));
  world_.RunUntilIdle();
  EXPECT_EQ(observed, 3);
}

TEST_F(NetTest, SendChargesSendmsgUnderBerkeleyModel) {
  World world(3, SyscallCostModel::Berkeley42Bsd());
  sim::Host* h0 = world.AddHost("a");
  sim::Host* h1 = world.AddHost("b");
  DatagramSocket a(&world.network(), h0, 1000);
  DatagramSocket b(&world.network(), h1, 2000);
  world.executor().Spawn([](DatagramSocket* s, NetAddress to) -> Task<void> {
    co_await s->Send(to, BytesFromString("x"));
  }(&a, b.local_address()));
  world.RunUntilIdle();
  EXPECT_EQ(h0->cpu().count(Syscall::kSendMsg), 1u);
  EXPECT_EQ(h0->cpu().kernel_time().nanos(),
            Duration::MillisF(8.1).nanos());
}

TEST_F(NetTest, EphemeralPortsAreUnique) {
  DatagramSocket a(&world_.network(), hosts_[0], 0);
  DatagramSocket b(&world_.network(), hosts_[0], 0);
  EXPECT_NE(a.local_address().port, b.local_address().port);
  EXPECT_GE(a.local_address().port, 49152);
}

// --------------------------------------------------------------- Stream --

TEST_F(NetTest, StreamEchoRoundTrip) {
  StreamListener listener(&world_.network(), hosts_[1], 7);
  std::string echoed;
  // Server: accept, echo one message.
  world_.executor().Spawn([](StreamListener* l) -> Task<void> {
    std::unique_ptr<StreamConnection> conn = co_await l->Accept();
    Bytes data = co_await conn->Read();
    co_await conn->Write(std::move(data));
    // Keep the connection alive until the world tears down.
    co_await conn->Read();
  }(&listener));
  // Client: connect, send, read echo.
  world_.executor().Spawn([](World* w, sim::Host* h, NetAddress server,
                             std::string* out) -> Task<void> {
    auto conn_or = co_await StreamConnect(&w->network(), h, server);
    CIRCUS_CHECK(conn_or.ok());
    std::unique_ptr<StreamConnection> conn = std::move(conn_or).value();
    co_await conn->Write(BytesFromString("ping"));
    Bytes reply = co_await conn->Read();
    *out = StringFromBytes(reply);
    co_await conn->Read();  // park until teardown
  }(&world_, hosts_[0], listener.local_address(), &echoed));
  world_.RunFor(Duration::Seconds(5));
  EXPECT_EQ(echoed, "ping");
}

TEST_F(NetTest, StreamSurvivesPacketLoss) {
  FaultPlan plan;
  plan.loss_probability = 0.3;
  world_.network().set_default_fault_plan(plan);
  StreamListener listener(&world_.network(), hosts_[1], 7);
  std::string received;
  world_.executor().Spawn([](StreamListener* l, std::string* out) -> Task<void> {
    std::unique_ptr<StreamConnection> conn = co_await l->Accept();
    Bytes data = co_await conn->ReadExactly(4000);
    *out = StringFromBytes(data);
    co_await conn->Read();
  }(&listener, &received));
  world_.executor().Spawn([](World* w, sim::Host* h,
                             NetAddress server) -> Task<void> {
    auto conn_or = co_await StreamConnect(&w->network(), h, server, 50);
    CIRCUS_CHECK(conn_or.ok());
    std::unique_ptr<StreamConnection> conn = std::move(conn_or).value();
    co_await conn->Write(Bytes(4000, 'z'));
    co_await conn->Read();  // park
  }(&world_, hosts_[0], listener.local_address()));
  world_.RunFor(Duration::Seconds(60));
  EXPECT_EQ(received, std::string(4000, 'z'));
}

TEST_F(NetTest, StreamConnectTimesOutWithNoServer) {
  Status status = Status::Ok();
  world_.executor().Spawn([](World* w, sim::Host* h, Status* out) -> Task<void> {
    auto conn_or = co_await StreamConnect(
        &w->network(), h, NetAddress{MakeHostAddress(1), 9999}, 3,
        Duration::Millis(100));
    *out = conn_or.status();
  }(&world_, hosts_[0], &status));
  world_.RunUntilIdle();
  EXPECT_EQ(status.code(), ErrorCode::kTimeout);
}

TEST_F(NetTest, StreamListenerAcceptsSequentialConnections) {
  StreamListener listener(&world_.network(), hosts_[1], 7);
  std::vector<std::string> served;
  world_.executor().Spawn([](StreamListener* l,
                             std::vector<std::string>* out) -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      std::unique_ptr<StreamConnection> conn = co_await l->Accept();
      Bytes data = co_await conn->Read();
      out->push_back(StringFromBytes(data));
      co_await conn->Write(std::move(data));
      // Let the connection object die: the client already has its echo.
    }
  }(&listener, &served));
  int echoes = 0;
  for (int c = 0; c < 2; ++c) {
    sim::Host* host = c == 0 ? hosts_[0] : hosts_[2];
    world_.executor().Spawn([](World* w, sim::Host* h, NetAddress server,
                               int id, int* out) -> Task<void> {
      auto conn_or = co_await StreamConnect(&w->network(), h, server);
      CIRCUS_CHECK(conn_or.ok());
      std::unique_ptr<StreamConnection> conn = std::move(conn_or).value();
      co_await conn->Write(
          BytesFromString("client" + std::to_string(id)));
      Bytes echo = co_await conn->Read();
      CIRCUS_CHECK(!echo.empty());
      ++*out;
      co_await conn->Read();  // park
    }(&world_, host, listener.local_address(), c, &echoes));
    world_.RunFor(Duration::Seconds(5));
  }
  EXPECT_EQ(echoes, 2);
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[0], "client0");
  EXPECT_EQ(served[1], "client1");
}

TEST_F(NetTest, StreamBidirectionalBulkTransfer) {
  StreamListener listener(&world_.network(), hosts_[1], 7);
  std::string uploaded;
  world_.executor().Spawn([](StreamListener* l, std::string* out) -> Task<void> {
    std::unique_ptr<StreamConnection> conn = co_await l->Accept();
    Bytes up = co_await conn->ReadExactly(6000);
    *out = StringFromBytes(up);
    co_await conn->Write(Bytes(3000, 'D'));  // download
    co_await conn->Read();                   // park
  }(&listener, &uploaded));
  std::string downloaded;
  world_.executor().Spawn([](World* w, sim::Host* h, NetAddress server,
                             std::string* out) -> Task<void> {
    auto conn_or = co_await StreamConnect(&w->network(), h, server);
    CIRCUS_CHECK(conn_or.ok());
    std::unique_ptr<StreamConnection> conn = std::move(conn_or).value();
    co_await conn->Write(Bytes(6000, 'U'));
    Bytes down = co_await conn->ReadExactly(3000);
    *out = StringFromBytes(down);
    co_await conn->Read();  // park
  }(&world_, hosts_[0], listener.local_address(), &downloaded));
  world_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(uploaded, std::string(6000, 'U'));
  EXPECT_EQ(downloaded, std::string(3000, 'D'));
}

TEST_F(NetTest, StreamChargesReadWriteNotSendmsg) {
  World world(3, SyscallCostModel::Berkeley42Bsd());
  sim::Host* server_host = world.AddHost("server");
  sim::Host* client_host = world.AddHost("client");
  StreamListener listener(&world.network(), server_host, 7);
  world.executor().Spawn([](StreamListener* l) -> Task<void> {
    std::unique_ptr<StreamConnection> conn = co_await l->Accept();
    Bytes data = co_await conn->Read();
    co_await conn->Write(std::move(data));
    co_await conn->Read();
  }(&listener));
  world.executor().Spawn([](World* w, sim::Host* h,
                            NetAddress server) -> Task<void> {
    auto conn_or = co_await StreamConnect(&w->network(), h, server);
    CIRCUS_CHECK(conn_or.ok());
    std::unique_ptr<StreamConnection> conn = std::move(conn_or).value();
    co_await conn->Write(BytesFromString("m"));
    co_await conn->Read();
    co_await conn->Read();  // park
  }(&world, client_host, listener.local_address()));
  world.RunFor(Duration::Seconds(5));
  EXPECT_EQ(client_host->cpu().count(Syscall::kWrite), 1u);
  // One read for the echo plus the parked read blocked in the "kernel".
  EXPECT_EQ(client_host->cpu().count(Syscall::kRead), 2u);
  EXPECT_EQ(client_host->cpu().count(Syscall::kSendMsg), 0u);
  EXPECT_EQ(client_host->cpu().count(Syscall::kSetITimer), 0u);
}

}  // namespace
}  // namespace circus::net
