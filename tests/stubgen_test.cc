#include <gtest/gtest.h>

#include <string>

#include "src/stubgen/codegen.h"
#include "src/stubgen/docgen.h"
#include "src/stubgen/idl_parser.h"
#include "src/stubgen/printer.h"

namespace circus::stubgen {
namespace {

constexpr const char* kFigure72 = R"(
NameServer: PROGRAM 26 VERSION 1 =
BEGIN
  -- Types.
  Name: TYPE = STRING;
  Property: TYPE = RECORD [name: Name, value: SEQUENCE OF UNSPECIFIED];
  Properties: TYPE = SEQUENCE OF Property;
  -- Errors.
  AlreadyExists: ERROR = 0;
  NotFound: ERROR = 1;
  -- Procedures.
  Register: PROCEDURE [name: Name, properties: Properties]
    REPORTS [AlreadyExists] = 0;
  Lookup: PROCEDURE [name: Name]
    RETURNS [properties: Properties]
    REPORTS [NotFound] = 1;
  Delete: PROCEDURE [name: Name]
    REPORTS [NotFound] = 2;
END.
)";

TEST(IdlParserTest, ParsesFigure72) {
  StatusOr<Program> p = ParseProgram(kFigure72);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->name, "NameServer");
  EXPECT_EQ(p->number, 26);
  EXPECT_EQ(p->version, 1);
  ASSERT_EQ(p->types.size(), 3u);
  EXPECT_EQ(p->types[0].name, "Name");
  ASSERT_EQ(p->errors.size(), 2u);
  EXPECT_EQ(p->errors[1].name, "NotFound");
  EXPECT_EQ(p->errors[1].code, 1);
  ASSERT_EQ(p->procedures.size(), 3u);
  EXPECT_EQ(p->procedures[1].name, "Lookup");
  EXPECT_EQ(p->procedures[1].number, 1);
  ASSERT_EQ(p->procedures[1].arguments.size(), 1u);
  ASSERT_EQ(p->procedures[1].results.size(), 1u);
  ASSERT_EQ(p->procedures[1].reports.size(), 1u);
  EXPECT_EQ(p->procedures[1].reports[0], "NotFound");
}

TEST(IdlParserTest, RecordFieldsParsed) {
  StatusOr<Program> p = ParseProgram(kFigure72);
  ASSERT_TRUE(p.ok());
  const TypeDecl* property = p->FindType("Property");
  ASSERT_NE(property, nullptr);
  const RecordType* rec = std::get_if<RecordType>(&property->type->node);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->fields.size(), 2u);
  EXPECT_EQ(rec->fields[0].name, "name");
  EXPECT_EQ(rec->fields[1].name, "value");
  const SequenceType* seq =
      std::get_if<SequenceType>(&rec->fields[1].type->node);
  ASSERT_NE(seq, nullptr);
  EXPECT_EQ(std::get<Predefined>(seq->element->node),
            Predefined::kUnspecified);
}

TEST(IdlParserTest, AllPredefinedTypes) {
  StatusOr<Program> p = ParseProgram(R"(
T: PROGRAM 1 VERSION 1 =
BEGIN
  A: TYPE = BOOLEAN;
  B: TYPE = CARDINAL;
  C: TYPE = LONG CARDINAL;
  D: TYPE = INTEGER;
  E: TYPE = LONG INTEGER;
  F: TYPE = STRING;
  G: TYPE = UNSPECIFIED;
END.
)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->types.size(), 7u);
}

TEST(IdlParserTest, EnumArrayChoice) {
  StatusOr<Program> p = ParseProgram(R"(
T: PROGRAM 1 VERSION 1 =
BEGIN
  Color: TYPE = ENUMERATION {red(0), green(1), blue(2)};
  Quad: TYPE = ARRAY 4 OF CARDINAL;
  Id: TYPE = CHOICE OF {byName(0) => STRING, byNumber(1) => LONG CARDINAL};
END.
)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const EnumerationType* e =
      std::get_if<EnumerationType>(&p->FindType("Color")->type->node);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->values.size(), 3u);
  const ArrayType* a =
      std::get_if<ArrayType>(&p->FindType("Quad")->type->node);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size, 4u);
  const ChoiceType* c =
      std::get_if<ChoiceType>(&p->FindType("Id")->type->node);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->arms.size(), 2u);
}

TEST(IdlParserTest, SemanticChecks) {
  // Reference to an undeclared type.
  EXPECT_FALSE(ParseProgram(R"(
T: PROGRAM 1 VERSION 1 =
BEGIN
  P: PROCEDURE [x: Mystery] = 0;
END.
)")
                   .ok());
  // Duplicate procedure number.
  EXPECT_FALSE(ParseProgram(R"(
T: PROGRAM 1 VERSION 1 =
BEGIN
  A: PROCEDURE = 0;
  B: PROCEDURE = 0;
END.
)")
                   .ok());
  // REPORTS of an undeclared error.
  EXPECT_FALSE(ParseProgram(R"(
T: PROGRAM 1 VERSION 1 =
BEGIN
  A: PROCEDURE REPORTS [Nope] = 0;
END.
)")
                   .ok());
  // Duplicate declaration names.
  EXPECT_FALSE(ParseProgram(R"(
T: PROGRAM 1 VERSION 1 =
BEGIN
  A: TYPE = STRING;
  A: TYPE = CARDINAL;
END.
)")
                   .ok());
}

TEST(IdlParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseProgram("").ok());
  EXPECT_FALSE(ParseProgram("NameServer PROGRAM").ok());
  EXPECT_FALSE(ParseProgram("X: PROGRAM 1 VERSION 1 = BEGIN").ok());
  EXPECT_FALSE(ParseProgram("X: PROGRAM 1 VERSION 1 = BEGIN @ END.").ok());
}

// Every diagnostic names the offending construct and carries a source
// position (line and column), so a build failure in a large .idl points
// straight at the bad declaration.
std::string ErrorMessage(std::string_view source) {
  StatusOr<Program> p = ParseProgram(source);
  EXPECT_FALSE(p.ok()) << "expected a parse failure";
  return p.ok() ? std::string() : p.status().ToString();
}

TEST(IdlParserTest, DiagnosticsCarryLineColumnAndToken) {
  // Lexer: unexpected character, with its exact position.
  EXPECT_NE(ErrorMessage("X: PROGRAM 1 VERSION 1 = BEGIN\n  @ END.\n")
                .find("unexpected character '@' at line 2, column 3"),
            std::string::npos);

  // Syntax: the diagnostic shows what was found instead.
  const std::string missing_semi = ErrorMessage(R"(T: PROGRAM 1 VERSION 1 =
BEGIN
  A: TYPE = STRING
  B: TYPE = CARDINAL;
END.
)");
  EXPECT_NE(missing_semi.find("expected ';' after TYPE declaration"),
            std::string::npos)
      << missing_semi;
  EXPECT_NE(missing_semi.find("at line 4, column 3"), std::string::npos)
      << missing_semi;
  EXPECT_NE(missing_semi.find("found 'B'"), std::string::npos)
      << missing_semi;
}

TEST(IdlParserTest, SemanticDiagnosticsNameTheOffender) {
  // Reference to an undeclared type: position of the reference itself.
  const std::string undeclared = ErrorMessage(R"(T: PROGRAM 1 VERSION 1 =
BEGIN
  P: PROCEDURE [x: Mystery] = 0;
END.
)");
  EXPECT_NE(
      undeclared.find(
          "reference to undeclared type 'Mystery' at line 3, column 20"),
      std::string::npos)
      << undeclared;

  // Duplicate procedure number: names the second procedure and where it
  // was declared.
  const std::string dup_number = ErrorMessage(R"(T: PROGRAM 1 VERSION 1 =
BEGIN
  A: PROCEDURE = 0;
  B: PROCEDURE = 0;
END.
)");
  EXPECT_NE(dup_number.find(
                "duplicate procedure number 0 ('B') at line 4, column 3"),
            std::string::npos)
      << dup_number;

  const std::string dup_decl = ErrorMessage(R"(T: PROGRAM 1 VERSION 1 =
BEGIN
  A: TYPE = STRING;
  A: TYPE = CARDINAL;
END.
)");
  EXPECT_NE(dup_decl.find("duplicate declaration 'A' at line 4, column 3"),
            std::string::npos)
      << dup_decl;

  const std::string dup_code = ErrorMessage(R"(T: PROGRAM 1 VERSION 1 =
BEGIN
  A: ERROR = 7;
  B: ERROR = 7;
END.
)");
  EXPECT_NE(
      dup_code.find("duplicate error code 7 ('B') at line 4, column 3"),
      std::string::npos)
      << dup_code;

  const std::string bad_report = ErrorMessage(R"(T: PROGRAM 1 VERSION 1 =
BEGIN
  A: PROCEDURE REPORTS [Nope] = 0;
END.
)");
  EXPECT_NE(bad_report.find(
                "'A' REPORTS undeclared error 'Nope' at line 3, column 3"),
            std::string::npos)
      << bad_report;
}

TEST(CodegenTest, HeaderContainsExpectedDeclarations) {
  StatusOr<Program> p = ParseProgram(kFigure72);
  ASSERT_TRUE(p.ok());
  const std::string header = GenerateHeader(*p);
  // Types.
  EXPECT_NE(header.find("using Name = std::string;"), std::string::npos);
  EXPECT_NE(header.find("struct Property {"), std::string::npos);
  EXPECT_NE(header.find("std::vector<uint16_t> value{};"),
            std::string::npos);
  EXPECT_NE(header.find("using Properties = std::vector<Property>;"),
            std::string::npos);
  // Errors.
  EXPECT_NE(header.find("enum class Error"), std::string::npos);
  EXPECT_NE(header.find("AlreadyExists = 0"), std::string::npos);
  // Marshal functions.
  EXPECT_NE(header.find("inline void Write_Property"), std::string::npos);
  EXPECT_NE(header.find("inline Property Read_Property"),
            std::string::npos);
  // Client stubs: implicit, explicit binding, explicit replication.
  EXPECT_NE(header.find("class NameServerClient"), std::string::npos);
  EXPECT_NE(header.find("LookupAt(const ::circus::core::Troupe&"),
            std::string::npos);
  EXPECT_NE(header.find("LookupRaw(const ::circus::core::Troupe&"),
            std::string::npos);
  EXPECT_NE(header.find("DecodeLookupReply"), std::string::npos);
  // Server skeleton.
  EXPECT_NE(header.find("class NameServerHandler"), std::string::npos);
  EXPECT_NE(header.find("ExportNameServer"), std::string::npos);
  // Program metadata.
  EXPECT_NE(header.find("kProgramNumber = 26"), std::string::npos);
}

// ------------------------------------------------------- pretty-printer

TEST(PrinterTest, PrintsCanonicalForm) {
  StatusOr<Program> p = ParseProgram(kFigure72);
  ASSERT_TRUE(p.ok());
  const std::string text = PrintProgram(*p);
  EXPECT_NE(text.find("NameServer: PROGRAM 26 VERSION 1 ="),
            std::string::npos);
  EXPECT_NE(text.find("Name: TYPE = STRING;"), std::string::npos);
  EXPECT_NE(text.find("Property: TYPE = RECORD [name: Name, value: "
                      "SEQUENCE OF UNSPECIFIED];"),
            std::string::npos);
  EXPECT_NE(text.find("REPORTS [NotFound] = 1;"), std::string::npos);
  EXPECT_NE(text.find("END."), std::string::npos);
}

// The round-trip property: parse(print(parse(s))) == parse(s), for every
// construct the language supports.
class RoundTripProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripProperty, ParsePrintParsePreservesTheProgram) {
  StatusOr<Program> first = ParseProgram(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string printed = PrintProgram(*first);
  StatusOr<Program> second = ParseProgram(printed);
  ASSERT_TRUE(second.ok())
      << second.status().ToString() << "\nprinted was:\n" << printed;
  EXPECT_TRUE(ProgramsEqual(*first, *second)) << printed;
  // Printing is a fixed point after one round.
  EXPECT_EQ(printed, PrintProgram(*second));
}

INSTANTIATE_TEST_SUITE_P(
    Constructs, RoundTripProperty,
    ::testing::Values(
        // The Figure 7.2 interface.
        R"(NameServer: PROGRAM 26 VERSION 1 =
BEGIN
  Name: TYPE = STRING;
  Property: TYPE = RECORD [name: Name, value: SEQUENCE OF UNSPECIFIED];
  Properties: TYPE = SEQUENCE OF Property;
  AlreadyExists: ERROR = 0;
  NotFound: ERROR = 1;
  Register: PROCEDURE [name: Name, properties: Properties]
    REPORTS [AlreadyExists] = 0;
  Lookup: PROCEDURE [name: Name] RETURNS [properties: Properties]
    REPORTS [NotFound] = 1;
  Delete: PROCEDURE [name: Name] REPORTS [NotFound] = 2;
END.)",
        // Every predefined type.
        R"(Predef: PROGRAM 1 VERSION 1 =
BEGIN
  A: TYPE = BOOLEAN;
  B: TYPE = CARDINAL;
  C: TYPE = LONG CARDINAL;
  D: TYPE = INTEGER;
  E: TYPE = LONG INTEGER;
  F: TYPE = STRING;
  G: TYPE = UNSPECIFIED;
END.)",
        // Constructed types, nested.
        R"(Constructed: PROGRAM 2 VERSION 3 =
BEGIN
  Color: TYPE = ENUMERATION {red(0), green(1), blue(2)};
  Quad: TYPE = ARRAY 4 OF LONG CARDINAL;
  Deep: TYPE = SEQUENCE OF ARRAY 2 OF SEQUENCE OF STRING;
  Id: TYPE = CHOICE OF {byName(0) => STRING, byNumber(1) => LONG CARDINAL};
  Rec: TYPE = RECORD [c: Color, q: Quad, who: Id];
END.)",
        // Procedures with all clause combinations.
        R"(Procs: PROGRAM 9 VERSION 2 =
BEGIN
  Oops: ERROR = 7;
  NoArgs: PROCEDURE = 0;
  ArgsOnly: PROCEDURE [x: CARDINAL] = 1;
  Returns: PROCEDURE RETURNS [y: STRING] = 2;
  Full: PROCEDURE [a: BOOLEAN, b: LONG INTEGER]
    RETURNS [c: STRING] REPORTS [Oops] = 3;
END.)"));

TEST(DocgenTest, MarkdownContainsAllDeclarations) {
  StatusOr<Program> p = ParseProgram(kFigure72);
  ASSERT_TRUE(p.ok());
  const std::string docs = GenerateMarkdownDocs(*p);
  EXPECT_NE(docs.find("# NameServer"), std::string::npos);
  EXPECT_NE(docs.find("PROGRAM 26, VERSION 1."), std::string::npos);
  EXPECT_NE(docs.find("| `Name` | `STRING` |"), std::string::npos);
  EXPECT_NE(docs.find("| `NotFound` | 1 |"), std::string::npos);
  EXPECT_NE(
      docs.find("### `Lookup(name: Name) -> (properties: Properties)`"),
      std::string::npos);
  EXPECT_NE(docs.find("Reports: `NotFound`."), std::string::npos);
}

TEST(CodegenTest, HeaderGuardDerivedFromProgramName) {
  StatusOr<Program> p = ParseProgram(kFigure72);
  ASSERT_TRUE(p.ok());
  const std::string header = GenerateHeader(*p);
  EXPECT_NE(header.find("#ifndef CIRCUS_GEN_NAMESERVER_H_"),
            std::string::npos);
}

}  // namespace
}  // namespace circus::stubgen
