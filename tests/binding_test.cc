#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/binding/client.h"
#include "src/binding/codec.h"
#include "src/binding/deploy.h"
#include "src/binding/ringmaster.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"
#include "tests/test_util.h"

namespace circus::binding {
namespace {

using core::ModuleAddress;
using core::ModuleNumber;
using core::RpcProcess;
using core::ServerCallContext;
using core::Troupe;
using core::TroupeId;
using net::World;
using sim::Duration;
using sim::SyscallCostModel;
using sim::Task;

class BindingTest : public ::testing::Test {
 protected:
  BindingTest() : world_(33, SyscallCostModel::Free()) {}

  void DeployRing(int replicas) {
    ring_ = DeployRingmaster(world_, world_.AddHosts("ring", replicas));
  }

  // An application server process exporting a counter interface.
  struct AppServer {
    std::unique_ptr<RpcProcess> process;
    std::unique_ptr<BindingClient> binding;
    std::unique_ptr<BindingCache> cache;
    ModuleNumber module = 0;
    int counter = 0;  // the module state
  };

  std::unique_ptr<AppServer> MakeAppServer(const std::string& host_name) {
    return MakeAppServerOnHost(host_name, world_.AddHost(host_name));
  }

  std::unique_ptr<AppServer> MakeAppServerOnHost(const std::string& name,
                                                 sim::Host* host) {
    (void)name;
    auto app = std::make_unique<AppServer>();
    app->process =
        std::make_unique<RpcProcess>(&world_.network(), host, 9000);
    app->binding =
        std::make_unique<BindingClient>(app->process.get(), ring_.troupe);
    app->cache = std::make_unique<BindingCache>(app->binding.get());
    app->process->SetClientTroupeResolver(app->cache->MakeResolver());
    app->module = app->process->ExportModule("counter");
    AppServer* raw = app.get();
    app->process->ExportProcedure(
        app->module, 0,
        [raw](ServerCallContext&,
              const Bytes&) -> Task<StatusOr<Bytes>> {
          marshal::Writer w;
          w.WriteI32(++raw->counter);
          co_return w.Take();
        });
    app->process->SetStateProvider(app->module, [raw] {
      marshal::Writer w;
      w.WriteI32(raw->counter);
      return w.Take();
    });
    return app;
  }

  std::unique_ptr<RpcProcess> MakeClientProcess(const std::string& name) {
    sim::Host* host = world_.AddHost(name);
    return std::make_unique<RpcProcess>(&world_.network(), host, 8000);
  }

  // Drives a coroutine to completion within `budget` simulated seconds.
  template <typename T>
  T Run(Task<T> task, int budget_seconds = 60) {
    auto result = std::make_shared<std::optional<T>>();
    world_.executor().Spawn(
        [](Task<T> inner,
           std::shared_ptr<std::optional<T>> out) -> Task<void> {
          out->emplace(co_await std::move(inner));
        }(std::move(task), result));
    world_.RunFor(Duration::Seconds(budget_seconds));
    CIRCUS_CHECK_MSG(result->has_value(), "binding op did not complete");
    return std::move(**result);
  }

  World world_;
  RingmasterDeployment ring_;
};

TEST_F(BindingTest, RegisterAndLookupByName) {
  DeployRing(1);
  auto app = MakeAppServer("app0");
  Troupe t;
  t.members.push_back(app->process->module_address(app->module));
  StatusOr<TroupeId> id =
      Run(app->binding->RegisterTroupe("counter", t));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(id->bound());

  StatusOr<Troupe> found = Run(app->binding->LookupByName("counter"));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id, *id);
  ASSERT_EQ(found->members.size(), 1u);
  EXPECT_EQ(found->members[0],
            app->process->module_address(app->module));
}

TEST_F(BindingTest, LookupUnknownNameFails) {
  DeployRing(1);
  auto client = MakeClientProcess("client");
  BindingClient binding(client.get(), ring_.troupe);
  StatusOr<Troupe> r = Run(binding.LookupByName("nonesuch"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST_F(BindingTest, DuplicateRegistrationRejected) {
  DeployRing(1);
  auto app = MakeAppServer("app0");
  Troupe t;
  t.members.push_back(app->process->module_address(app->module));
  ASSERT_TRUE(Run(app->binding->RegisterTroupe("counter", t)).ok());
  StatusOr<TroupeId> again =
      Run(app->binding->RegisterTroupe("counter", t));
  ASSERT_FALSE(again.ok());
}

TEST_F(BindingTest, AddMemberAssignsFreshIdAndInformsMembers) {
  DeployRing(1);
  auto app0 = MakeAppServer("app0");
  auto app1 = MakeAppServer("app1");
  StatusOr<TroupeId> id0 = Run(app0->binding->AddTroupeMember(
      "counter", app0->process->module_address(app0->module)));
  ASSERT_TRUE(id0.ok()) << id0.status().ToString();
  EXPECT_EQ(app0->process->troupe_id(), *id0);  // set_troupe_id ran

  StatusOr<TroupeId> id1 = Run(app1->binding->AddTroupeMember(
      "counter", app1->process->module_address(app1->module)));
  ASSERT_TRUE(id1.ok());
  EXPECT_NE(*id0, *id1);  // the ID changed with the membership
  EXPECT_EQ(app0->process->troupe_id(), *id1);
  EXPECT_EQ(app1->process->troupe_id(), *id1);

  // The old ID no longer resolves: stale caches cannot half-reach the
  // troupe (Section 6.2).
  StatusOr<Troupe> stale = Run(app0->binding->LookupById(*id0));
  EXPECT_FALSE(stale.ok());
  StatusOr<Troupe> fresh = Run(app0->binding->LookupById(*id1));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->members.size(), 2u);
}

TEST_F(BindingTest, CacheRebindsTransparentlyAfterReconfiguration) {
  DeployRing(1);
  auto app0 = MakeAppServer("app0");
  ASSERT_TRUE(Run(app0->binding->AddTroupeMember(
                      "counter",
                      app0->process->module_address(app0->module)))
                  .ok());

  auto client = MakeClientProcess("client");
  BindingClient binding(client.get(), ring_.troupe);
  BindingCache cache(&binding);

  // Prime the cache.
  StatusOr<Bytes> r1 = Run(cache.CallByName(
      client.get(), client->NewRootThread(), "counter", 0, {}));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  // Reconfigure: add a second member; the cached binding goes stale.
  // The new member must first be brought into a consistent state
  // (Section 6.4.1) or the unanimous collator would flag the divergence.
  auto app1 = MakeAppServer("app1");
  app1->counter = app0->counter;
  ASSERT_TRUE(Run(app1->binding->AddTroupeMember(
                      "counter",
                      app1->process->module_address(app1->module)))
                  .ok());

  // The next call hits the stale ID, gets rejected, rebinds, retries.
  StatusOr<Bytes> r2 = Run(cache.CallByName(
      client.get(), client->NewRootThread(), "counter", 0, {}));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_GT(app0->process->stats().stale_bindings_rejected, 0u);
  // After the rebind both members executed the retried call and remain
  // consistent.
  EXPECT_EQ(app0->counter, 2);
  EXPECT_EQ(app1->counter, 2);
}

TEST_F(BindingTest, ReplicatedRingmasterSurvivesMemberCrash) {
  DeployRing(3);
  auto app = MakeAppServer("app0");
  Troupe t;
  t.members.push_back(app->process->module_address(app->module));
  ASSERT_TRUE(Run(app->binding->RegisterTroupe("counter", t)).ok());

  // All three Ringmaster replicas hold the registration.
  for (auto& server : ring_.servers) {
    EXPECT_TRUE(server->FindByName("counter").has_value());
  }

  // Crash one replica: binding service remains available.
  ring_.processes[1]->host()->Crash();
  StatusOr<Troupe> found = Run(app->binding->LookupByName("counter"), 120);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found->members.size(), 1u);
}

TEST_F(BindingTest, JoinTroupeTransfersState) {
  DeployRing(1);
  auto app0 = MakeAppServer("app0");
  ASSERT_TRUE(Run(app0->binding->AddTroupeMember(
                      "counter",
                      app0->process->module_address(app0->module)))
                  .ok());
  // Advance the state: three increments.
  auto client = MakeClientProcess("client");
  BindingClient binding(client.get(), ring_.troupe);
  BindingCache cache(&binding);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(Run(cache.CallByName(client.get(),
                                     client->NewRootThread(), "counter", 0,
                                     {}))
                    .ok());
  }
  ASSERT_EQ(app0->counter, 3);

  // A replacement member joins: it must arrive with counter == 3.
  auto app1 = MakeAppServer("app1");
  AppServer* raw1 = app1.get();
  Status joined = Run(JoinTroupe(
      app1->process.get(), app1->module, app1->binding.get(), "counter",
      [raw1](const Bytes& state) {
        marshal::Reader r(state);
        raw1->counter = r.ReadI32();
      }));
  ASSERT_TRUE(joined.ok()) << joined.ToString();
  EXPECT_EQ(app1->counter, 3);

  // Subsequent calls reach both members and keep them consistent.
  cache.Invalidate("counter");
  StatusOr<Bytes> r = Run(cache.CallByName(
      client.get(), client->NewRootThread(), "counter", 0, {}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(app0->counter, 4);
  EXPECT_EQ(app1->counter, 4);
}

TEST_F(BindingTest, StaleCacheTaxonomyOfSection62) {
  // Section 6.2 enumerates the ways a cached member set C can relate to
  // the true set T. The dangerous cases (T ⊃ C and partial overlap,
  // where a call would reach some but not all members) must be blocked
  // by the troupe-ID incarnation check; the harmless ones (C with dead
  // members) merely trigger rebinding.
  DeployRing(1);
  auto app0 = MakeAppServer("app0");
  auto app1 = MakeAppServer("app1");
  ASSERT_TRUE(Run(app0->binding->AddTroupeMember(
                      "counter",
                      app0->process->module_address(app0->module)))
                  .ok());
  Troupe cached = *Run(app0->binding->LookupByName("counter"));  // C = {app0}

  // Grow the troupe: T = {app0, app1}, C = {app0}: T ⊃ C.
  app1->counter = app0->counter;
  ASSERT_TRUE(Run(app1->binding->AddTroupeMember(
                      "counter",
                      app1->process->module_address(app1->module)))
                  .ok());

  // A call with the stale C must NOT silently execute at only app0.
  auto client = MakeClientProcess("client");
  auto result = std::make_shared<std::optional<StatusOr<Bytes>>>();
  world_.executor().Spawn(
      [](RpcProcess* p, Troupe t,
         std::shared_ptr<std::optional<StatusOr<Bytes>>> out) -> Task<void> {
        out->emplace(co_await p->Call(p->NewRootThread(), t,
                                      t.members.front().module, 0, {}));
      }(client.get(), cached, result));
  world_.RunFor(Duration::Seconds(30));
  ASSERT_TRUE(result->has_value());
  ASSERT_FALSE((*result)->ok());
  EXPECT_EQ((*result)->status().code(), ErrorCode::kStaleBinding);
  EXPECT_EQ(app0->counter, 0);  // nothing executed: no divergence
  EXPECT_EQ(app1->counter, 0);

  // T ∩ C = ∅ (the whole cached set is gone): detected as crashes and
  // recoverable by rebinding. Simulate by caching, then replacing the
  // entire membership.
  Troupe full = *Run(app0->binding->LookupByName("counter"));
  auto app2 = MakeAppServer("app2");
  app2->counter = app0->counter;
  ASSERT_TRUE(Run(app2->binding->AddTroupeMember(
                      "counter",
                      app2->process->module_address(app2->module)))
                  .ok());
  ASSERT_TRUE(Run(app0->binding->RemoveTroupeMember(
                      "counter",
                      app0->process->module_address(app0->module)))
                  .ok());
  ASSERT_TRUE(Run(app1->binding->RemoveTroupeMember(
                      "counter",
                      app1->process->module_address(app1->module)))
                  .ok());
  // `full` (= {app0, app1}) is now entirely stale; both members reject
  // by troupe ID.
  auto r2 = std::make_shared<std::optional<StatusOr<Bytes>>>();
  world_.executor().Spawn(
      [](RpcProcess* p, Troupe t,
         std::shared_ptr<std::optional<StatusOr<Bytes>>> out) -> Task<void> {
        out->emplace(co_await p->Call(p->NewRootThread(), t,
                                      t.members.front().module, 0, {}));
      }(client.get(), full, r2));
  world_.RunFor(Duration::Seconds(30));
  ASSERT_TRUE(r2->has_value());
  EXPECT_EQ((*r2)->status().code(), ErrorCode::kStaleBinding);

  // The cache recovers through the rebind procedure (Section 6.1).
  BindingClient binding(client.get(), ring_.troupe);
  BindingCache cache(&binding);
  client->SetClientTroupeResolver(cache.MakeResolver());
  StatusOr<Bytes> recovered = Run(cache.CallByName(
      client.get(), client->NewRootThread(), "counter", 0, {}));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(app2->counter, 1);
}

TEST_F(BindingTest, RestartedMemberRejoinsWithFreshState) {
  // Full lifecycle: a member crashes, its machine reboots (new
  // incarnation), and the member rejoins through get_state +
  // add_troupe_member; the troupe ends consistent.
  DeployRing(1);
  auto app0 = MakeAppServer("app0");
  auto app1 = MakeAppServer("app1");
  for (AppServer* app : {app0.get(), app1.get()}) {
    ASSERT_TRUE(Run(app->binding->AddTroupeMember(
                        "counter",
                        app->process->module_address(app->module)))
                    .ok());
  }
  auto client = MakeClientProcess("client");
  BindingClient binding(client.get(), ring_.troupe);
  BindingCache cache(&binding);
  client->SetClientTroupeResolver(cache.MakeResolver());
  ASSERT_TRUE(Run(cache.CallByName(client.get(), client->NewRootThread(),
                                   "counter", 0, {}))
                  .ok());

  // Crash and garbage-collect app1.
  sim::Host* host1 = app1->process->host();
  host1->Crash();
  GcAgent gc(client.get(), &binding);
  ASSERT_TRUE(Run(gc.SweepOnce(), 300).ok());
  


  // More work happens while app1 is down.
  cache.Invalidate("counter");
  ASSERT_TRUE(Run(cache.CallByName(client.get(), client->NewRootThread(),
                                   "counter", 0, {}))
                  .ok());
  ASSERT_EQ(app0->counter, 2);

  // Reboot: fresh process on the same machine, new incarnation; all
  // volatile state is gone until get_state restores it.
  host1->Restart();
  auto reborn = MakeAppServerOnHost("app1-reborn", host1);
  AppServer* raw = reborn.get();
  Status joined = Run(JoinTroupe(
      reborn->process.get(), reborn->module, reborn->binding.get(),
      "counter", [raw](const Bytes& state) {
        marshal::Reader r(state);
        raw->counter = r.ReadI32();
      }));
  ASSERT_TRUE(joined.ok()) << joined.ToString();
  EXPECT_EQ(reborn->counter, 2);

  cache.Invalidate("counter");
  ASSERT_TRUE(Run(cache.CallByName(client.get(), client->NewRootThread(),
                                   "counter", 0, {}))
                  .ok());
  EXPECT_EQ(app0->counter, 3);
  EXPECT_EQ(reborn->counter, 3);
}

TEST_F(BindingTest, GcAgentRemovesCrashedMembers) {
  DeployRing(1);
  auto app0 = MakeAppServer("app0");
  auto app1 = MakeAppServer("app1");
  ASSERT_TRUE(Run(app0->binding->AddTroupeMember(
                      "counter",
                      app0->process->module_address(app0->module)))
                  .ok());
  ASSERT_TRUE(Run(app1->binding->AddTroupeMember(
                      "counter",
                      app1->process->module_address(app1->module)))
                  .ok());
  const TroupeId before = app1->process->troupe_id();

  app0->process->host()->Crash();

  auto gc_process = MakeClientProcess("gc");
  BindingClient gc_binding(gc_process.get(), ring_.troupe);
  GcAgent gc(gc_process.get(), &gc_binding);
  StatusOr<int> collected = Run(gc.SweepOnce(), 300);
  ASSERT_TRUE(collected.ok()) << collected.status().ToString();
  EXPECT_EQ(*collected, 1);

  StatusOr<Troupe> remaining = Run(gc_binding.LookupByName("counter"), 120);
  ASSERT_TRUE(remaining.ok());
  ASSERT_EQ(remaining->members.size(), 1u);
  EXPECT_EQ(remaining->members[0],
            app1->process->module_address(app1->module));
  EXPECT_NE(remaining->id, before);  // membership change, fresh ID
}

TEST_F(BindingTest, RingmasterExportsItsRegistryState) {
  // The Ringmaster module has a state provider, so a fresh binding-agent
  // replica could be brought up to date with get_state like any other
  // troupe member (Section 6.4.1 applied to the binding agent itself).
  DeployRing(1);
  auto app = MakeAppServer("app0");
  Troupe t;
  t.members.push_back(app->process->module_address(app->module));
  ASSERT_TRUE(Run(app->binding->RegisterTroupe("counter", t)).ok());

  auto client = MakeClientProcess("client");
  marshal::Writer w;
  w.WriteU16(ring_.servers[0]->module_number());
  auto result = std::make_shared<std::optional<StatusOr<Bytes>>>();
  world_.executor().Spawn(
      [](RpcProcess* p, Troupe ring, Bytes args,
         std::shared_ptr<std::optional<StatusOr<Bytes>>> out) -> Task<void> {
        core::CallOptions opts;
        opts.as_unreplicated_client = true;
        out->emplace(co_await p->Call(p->NewRootThread(), ring,
                                      core::kRuntimeModule,
                                      core::kGetState, std::move(args),
                                      opts));
      }(client.get(), ring_.troupe, w.Take(), result));
  world_.RunFor(Duration::Seconds(30));
  ASSERT_TRUE(result->has_value());
  ASSERT_TRUE((*result)->ok()) << (*result)->status().ToString();
  // The externalized registry names both the Ringmaster's own troupe
  // ("binding") and the registered "counter".
  const Bytes state = ***result;
  marshal::Reader r(state);
  const uint32_t count = r.ReadU32();
  EXPECT_EQ(count, 2u);
  std::vector<std::string> names;
  for (uint32_t i = 0; i < count; ++i) {
    names.push_back(r.ReadString());
    r.ReadU16();  // version
    ReadTroupe(r);
  }
  EXPECT_TRUE(r.AtEnd());
  EXPECT_NE(std::find(names.begin(), names.end(), "binding"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "counter"), names.end());
}

TEST_F(BindingTest, ResolveIdIsCachedForever) {
  // Troupe IDs are incarnation numbers: a given ID's membership never
  // changes, so the ID cache needs no invalidation (Section 6.2's
  // design payoff). After the first resolution, no further lookups hit
  // the Ringmaster.
  DeployRing(1);
  auto app = MakeAppServer("app0");
  ASSERT_TRUE(Run(app->binding->AddTroupeMember(
                      "counter",
                      app->process->module_address(app->module)))
                  .ok());
  auto client = MakeClientProcess("client");
  BindingClient binding(client.get(), ring_.troupe);
  BindingCache cache(&binding);
  const TroupeId id = app->process->troupe_id();
  StatusOr<Troupe> first = Run(cache.ResolveId(id));
  ASSERT_TRUE(first.ok());
  const uint64_t ringmaster_executions_after_first =
      ring_.processes[0]->stats().calls_executed;
  for (int i = 0; i < 5; ++i) {
    StatusOr<Troupe> again = Run(cache.ResolveId(id));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *first);
  }
  EXPECT_EQ(ring_.processes[0]->stats().calls_executed,
            ringmaster_executions_after_first);
}

TEST_F(BindingTest, EnumerateListsRegisteredTroupes) {
  DeployRing(1);
  auto app = MakeAppServer("app0");
  Troupe t;
  t.members.push_back(app->process->module_address(app->module));
  ASSERT_TRUE(Run(app->binding->RegisterTroupe("alpha", t)).ok());
  auto client = MakeClientProcess("client");
  BindingClient binding(client.get(), ring_.troupe);
  StatusOr<std::vector<std::string>> names = Run(binding.Enumerate());
  ASSERT_TRUE(names.ok());
  // "binding" (the Ringmaster itself) and "alpha".
  EXPECT_EQ(names->size(), 2u);
}

TEST_F(BindingTest, ManyToOneUsesRingmasterResolution) {
  // A replicated client troupe registered through the Ringmaster; the
  // server resolves the client troupe ID via lookup_troupe_by_id
  // (Section 4.3.2) and executes once.
  DeployRing(1);
  auto server = MakeAppServer("server");
  Troupe server_troupe;
  server_troupe.members.push_back(
      server->process->module_address(server->module));
  StatusOr<TroupeId> sid =
      Run(server->binding->RegisterTroupe("counter", server_troupe));
  ASSERT_TRUE(sid.ok());
  server->process->SetTroupeId(*sid);
  server_troupe.id = *sid;

  // Two-member replicated client.
  std::vector<std::unique_ptr<RpcProcess>> client_procs;
  Troupe client_troupe;
  for (int i = 0; i < 2; ++i) {
    auto p = MakeClientProcess("cli" + std::to_string(i));
    const ModuleNumber m = p->ExportModule("client-app");
    client_troupe.members.push_back(p->module_address(m));
    client_procs.push_back(std::move(p));
  }
  auto reg_client = MakeClientProcess("registrar");
  BindingClient reg_binding(reg_client.get(), ring_.troupe);
  StatusOr<TroupeId> cid =
      Run(reg_binding.RegisterTroupe("client-app", client_troupe));
  ASSERT_TRUE(cid.ok());
  for (auto& p : client_procs) {
    p->SetTroupeId(*cid);
  }

  const core::ThreadId thread{42, 42, 1};
  int completions = 0;
  for (auto& p : client_procs) {
    world_.executor().Spawn(
        [](RpcProcess* proc, core::ThreadId t, Troupe srv,
           ModuleNumber m, int* done) -> Task<void> {
          StatusOr<Bytes> r = co_await proc->Call(t, srv, m, 0, {});
          CIRCUS_CHECK(r.ok());
          ++*done;
        }(p.get(), thread, server_troupe, server->module, &completions));
  }
  world_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(server->counter, 1);  // executed exactly once
}

// Full jitter on the rebind-retry loop: two clients whose binding keeps
// going stale must not march back to the Ringmaster in lockstep. Each
// cache draws its retry sleeps from an rng seeded by its own address and
// clock (the call-number idiom), so the two observed delay sequences are
// bounded by the exponential ceiling but not equal to each other.
TEST_F(BindingTest, StaleBindingRetryBackoffDesynchronizesClients) {
  DeployRing(1);
  auto app = MakeAppServer("app");
  Troupe t;
  t.members.push_back(app->process->module_address(app->module));
  StatusOr<TroupeId> id = Run(app->binding->RegisterTroupe("counter", t));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Permanently stale: the member rejects every call with a troupe-ID
  // mismatch, and rebinding fetches the same registration back, so each
  // CallByName attempt ends in kStaleBinding and a backoff sleep.
  app->process->SetTroupeId(TroupeId{id->value + 9999});

  struct RetryingClient {
    std::unique_ptr<RpcProcess> process;
    std::unique_ptr<BindingClient> binding;
    std::unique_ptr<BindingCache> cache;
    std::vector<Duration> delays;
    Status final = Status(ErrorCode::kUnavailable, "not run");
    bool done = false;
  };
  constexpr int kRebinds = 5;
  RetryingClient clients[2];
  for (int i = 0; i < 2; ++i) {
    RetryingClient& c = clients[i];
    c.process = MakeClientProcess("stale-client" + std::to_string(i));
    c.binding = std::make_unique<BindingClient>(c.process.get(),
                                                ring_.troupe);
    c.cache = std::make_unique<BindingCache>(c.binding.get());
    c.process->SetClientTroupeResolver(c.cache->MakeResolver());
    std::vector<Duration>* delays = &c.delays;
    c.cache->set_retry_sleep_observer(
        [delays](int, Duration delay) { delays->push_back(delay); });
    world_.executor().Spawn(
        [](RetryingClient* rc) -> Task<void> {
          StatusOr<Bytes> r = co_await rc->cache->CallByName(
              rc->process.get(), rc->process->NewRootThread(), "counter", 0,
              {}, {}, kRebinds);
          rc->final = r.status();
          rc->done = true;
        }(&c));
  }
  world_.RunFor(Duration::Seconds(60));

  const BackoffPolicy policy;  // the cache default the sleeps came from
  for (RetryingClient& c : clients) {
    ASSERT_TRUE(c.done);
    EXPECT_EQ(c.final.code(), ErrorCode::kStaleBinding) << c.final.ToString();
    ASSERT_EQ(c.delays.size(), static_cast<size_t>(kRebinds));
    int64_t ceiling = policy.base.nanos();
    for (const Duration& delay : c.delays) {
      EXPECT_GE(delay.nanos(), 0);
      EXPECT_LE(delay.nanos(), std::min(ceiling, policy.cap.nanos()));
      ceiling *= 2;
    }
  }
  // The point of the jitter: distinct streams. Five independent uniform
  // draws agreeing across both clients would mean the rng seeding
  // collapsed to a shared constant.
  EXPECT_NE(clients[0].delays, clients[1].delays);
}

}  // namespace
}  // namespace circus::binding
