// End-to-end proof of the stub compiler: this test compiles the header
// the build generated from tests/data/name_server.idl with
// circus_stubgen, implements the generated NameServerHandler, exports it
// from a troupe of three, and calls it through the generated client
// stubs — implicit binding, explicit binding, typed errors, and explicit
// replication with a custom collator.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/apps/replfs.h"  // generated at build time
#include "gen/name_server.h"  // generated at build time
#include "src/common/check.h"
#include "src/net/world.h"
#include "tests/test_util.h"

namespace ns = circus::idl::NameServer;
namespace rfs = circus::idl::ReplFs;

namespace {

using circus::Bytes;
using circus::ErrorCode;
using circus::Status;
using circus::StatusOr;
using circus::core::RpcProcess;
using circus::core::ServerCallContext;
using circus::core::Troupe;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::SyscallCostModel;
using circus::sim::Task;

// A deterministic in-memory name server implementing the generated
// handler interface.
class NameServerImpl : public ns::NameServerHandler {
 public:
  Task<StatusOr<ns::RegisterResults>> Register(
      ServerCallContext&, ns::RegisterArgs args) override {
    if (table_.contains(args.name)) {
      co_return ns::Report(ns::Error::AlreadyExists);
    }
    table_[args.name] = std::move(args.properties);
    co_return ns::RegisterResults{};
  }

  Task<StatusOr<ns::LookupResults>> Lookup(ServerCallContext&,
                                           ns::LookupArgs args) override {
    auto it = table_.find(args.name);
    if (it == table_.end()) {
      co_return ns::Report(ns::Error::NotFound);
    }
    co_return ns::LookupResults{it->second};
  }

  Task<StatusOr<ns::DeleteResults>> Delete(ServerCallContext&,
                                           ns::DeleteArgs args) override {
    if (table_.erase(args.name) == 0) {
      co_return ns::Report(ns::Error::NotFound);
    }
    co_return ns::DeleteResults{};
  }

  Task<StatusOr<ns::DescribeResults>> Describe(
      ServerCallContext&, ns::DescribeArgs args) override {
    auto it = table_.find(args.name);
    if (it == table_.end()) {
      co_return ns::Report(ns::Error::NotFound);
    }
    ns::Entry entry;
    entry.kind = ns::Kind::service;
    entry.properties = it->second;
    entry.fingerprint = {1, 2, 3, 4};
    entry.owner.emplace<0>(std::string("csrg"));
    co_return ns::DescribeResults{std::move(entry)};
  }

  size_t size() const { return table_.size(); }

 private:
  std::map<ns::Name, ns::Properties> table_;
};

class GeneratedStubTest : public ::testing::Test {
 protected:
  GeneratedStubTest() : world_(91, SyscallCostModel::Free()) {
    troupe_.id = circus::core::TroupeId{400};
    for (int i = 0; i < 3; ++i) {
      circus::sim::Host* host = world_.AddHost("ns" + std::to_string(i));
      auto process = std::make_unique<RpcProcess>(&world_.network(), host,
                                                  9000);
      auto impl = std::make_unique<NameServerImpl>();
      const circus::core::ModuleNumber module =
          ns::ExportNameServer(process.get(), impl.get());
      process->SetTroupeId(troupe_.id);
      troupe_.members.push_back(process->module_address(module));
      processes_.push_back(std::move(process));
      impls_.push_back(std::move(impl));
    }
    circus::sim::Host* client_host = world_.AddHost("client");
    client_process_ = std::make_unique<RpcProcess>(&world_.network(),
                                                   client_host, 8000);
    client_ = std::make_unique<ns::NameServerClient>(client_process_.get());
    client_->Bind(troupe_);
  }

  template <typename T>
  T Run(Task<T> task) {
    auto result = std::make_shared<std::optional<T>>();
    world_.executor().Spawn(
        [](Task<T> inner,
           std::shared_ptr<std::optional<T>> out) -> Task<void> {
          out->emplace(co_await std::move(inner));
        }(std::move(task), result));
    world_.RunFor(Duration::Seconds(60));
    CIRCUS_CHECK_MSG(result->has_value(), "stub call did not finish");
    return std::move(**result);
  }

  ns::Properties MakeProperties() {
    ns::Property p;
    p.name = "address";
    p.value = {10, 0, 0, 3};
    return {p};
  }

  World world_;
  Troupe troupe_;
  std::vector<std::unique_ptr<RpcProcess>> processes_;
  std::vector<std::unique_ptr<NameServerImpl>> impls_;
  std::unique_ptr<RpcProcess> client_process_;
  std::unique_ptr<ns::NameServerClient> client_;
};

TEST_F(GeneratedStubTest, RegisterAndLookupThroughGeneratedStubs) {
  StatusOr<ns::RegisterResults> reg =
      Run(client_->Register(client_process_->NewRootThread(), "printer",
                            MakeProperties()));
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  // The whole troupe executed the registration.
  for (auto& impl : impls_) {
    EXPECT_EQ(impl->size(), 1u);
  }
  StatusOr<ns::LookupResults> lookup =
      Run(client_->Lookup(client_process_->NewRootThread(), "printer"));
  ASSERT_TRUE(lookup.ok()) << lookup.status().ToString();
  ASSERT_EQ(lookup->properties.size(), 1u);
  EXPECT_EQ(lookup->properties[0].name, "address");
  EXPECT_EQ(lookup->properties[0].value,
            (std::vector<uint16_t>{10, 0, 0, 3}));
}

TEST_F(GeneratedStubTest, TypedErrorReporting) {
  StatusOr<ns::LookupResults> lookup =
      Run(client_->Lookup(client_process_->NewRootThread(), "ghost"));
  ASSERT_FALSE(lookup.ok());
  std::optional<ns::Error> err = ns::GetReportedError(lookup.status());
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, ns::Error::NotFound);

  ASSERT_TRUE(Run(client_->Register(client_process_->NewRootThread(),
                                    "dup", MakeProperties()))
                  .ok());
  StatusOr<ns::RegisterResults> again =
      Run(client_->Register(client_process_->NewRootThread(), "dup",
                            MakeProperties()));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(ns::GetReportedError(again.status()),
            ns::Error::AlreadyExists);
}

TEST_F(GeneratedStubTest, ExplicitBindingStub) {
  // The ...At flavour takes the binding handle explicitly (Section 7.3),
  // so a client can talk to several instances of the interface.
  StatusOr<ns::RegisterResults> reg = Run(client_->RegisterAt(
      troupe_, client_process_->NewRootThread(), "disk", {}));
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
}

TEST_F(GeneratedStubTest, ComplexTypesRoundTrip) {
  ASSERT_TRUE(Run(client_->Register(client_process_->NewRootThread(),
                                    "svc", MakeProperties()))
                  .ok());
  StatusOr<ns::DescribeResults> d =
      Run(client_->Describe(client_process_->NewRootThread(), "svc"));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->entry.kind, ns::Kind::service);
  EXPECT_EQ(d->entry.fingerprint, (std::array<uint32_t, 4>{1, 2, 3, 4}));
  ASSERT_EQ(d->entry.owner.index(), 0u);
  EXPECT_EQ(std::get<0>(d->entry.owner), "csrg");
  EXPECT_EQ(d->entry.properties.size(), 1u);
}

TEST_F(GeneratedStubTest, DeleteThenLookupFails) {
  ASSERT_TRUE(Run(client_->Register(client_process_->NewRootThread(),
                                    "temp", {}))
                  .ok());
  ASSERT_TRUE(
      Run(client_->Delete(client_process_->NewRootThread(), "temp")).ok());
  StatusOr<ns::LookupResults> lookup =
      Run(client_->Lookup(client_process_->NewRootThread(), "temp"));
  EXPECT_FALSE(lookup.ok());
  for (auto& impl : impls_) {
    EXPECT_EQ(impl->size(), 0u);
  }
}

TEST_F(GeneratedStubTest, ExplicitReplicationWithCustomCollator) {
  ASSERT_TRUE(Run(client_->Register(client_process_->NewRootThread(),
                                    "quorum", MakeProperties()))
                  .ok());
  // A first-come custom collator over the raw stub (Section 7.4): accept
  // the first syntactically valid reply.
  circus::core::CallOptions options;
  options.custom_collator =
      [](circus::core::ReplyStream& stream)
      -> Task<StatusOr<Bytes>> {
    while (true) {
      std::optional<circus::core::Reply> r = co_await stream.Next();
      if (!r.has_value()) {
        break;
      }
      if (!r->result.ok()) {
        continue;
      }
      StatusOr<ns::LookupResults> decoded =
          ns::NameServerClient::DecodeLookupReply(*r->result);
      if (decoded.ok()) {
        co_return *r->result;  // first acceptable reply wins
      }
    }
    co_return Status(ErrorCode::kUnavailable, "no valid reply");
  };
  StatusOr<Bytes> raw = Run(client_->LookupRaw(
      troupe_, client_process_->NewRootThread(), options, "quorum"));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  StatusOr<ns::LookupResults> decoded =
      ns::NameServerClient::DecodeLookupReply(*raw);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->properties[0].name, "address");
}

TEST_F(GeneratedStubTest, SurvivesMemberCrash) {
  processes_[1]->host()->Crash();
  StatusOr<ns::RegisterResults> reg =
      Run(client_->Register(client_process_->NewRootThread(), "resilient",
                            MakeProperties()));
  ASSERT_TRUE(reg.ok()) << reg.status().ToString();
  EXPECT_EQ(impls_[0]->size(), 1u);
  EXPECT_EQ(impls_[2]->size(), 1u);
}

// --- generated marshaling of CHOICE over nested SEQUENCE OF RECORD ---
// The replfs Manifest is a CHOICE whose `files` arm is a SEQUENCE OF
// FileInfo, and each FileInfo carries a SEQUENCE OF Extent: the deepest
// constructed-type nesting any in-tree interface produces.

rfs::Manifest MakeFilesManifest() {
  std::vector<rfs::FileInfo> files;
  rfs::FileInfo a;
  a.name = "alpha";
  a.blocks = 3;
  a.extents = {rfs::Extent{0, 16}, rfs::Extent{2, 8}};
  rfs::FileInfo b;
  b.name = "beta";
  b.blocks = 1;
  b.extents = {rfs::Extent{0, 4}};
  files.push_back(std::move(a));
  files.push_back(std::move(b));
  return rfs::Manifest{std::in_place_index<1>, std::move(files)};
}

TEST(GeneratedChoiceMarshalingTest, NestedSequenceOfRecordRoundTrips) {
  const rfs::Manifest manifest = MakeFilesManifest();
  circus::marshal::Writer w;
  rfs::Write_Manifest(w, manifest);
  const Bytes bytes = w.Take();
  circus::marshal::Reader r(bytes);
  const rfs::Manifest back = rfs::Read_Manifest(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back, manifest);
}

TEST(GeneratedChoiceMarshalingTest, EmptyArmRoundTrips) {
  const rfs::Manifest manifest{std::in_place_index<0>, uint16_t{0}};
  circus::marshal::Writer w;
  rfs::Write_Manifest(w, manifest);
  const Bytes bytes = w.Take();
  circus::marshal::Reader r(bytes);
  const rfs::Manifest back = rfs::Read_Manifest(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back, manifest);
}

TEST(GeneratedChoiceMarshalingTest, EveryTruncationIsRejected) {
  circus::marshal::Writer w;
  rfs::Write_Manifest(w, MakeFilesManifest());
  const Bytes bytes = w.Take();
  ASSERT_GT(bytes.size(), 8u);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const Bytes prefix(bytes.begin(), bytes.begin() + cut);
    circus::marshal::Reader r(prefix);
    (void)rfs::Read_Manifest(r);
    // A strict prefix must never decode as a complete, valid Manifest:
    // the reader either poisons or stops short of a clean AtEnd.
    EXPECT_FALSE(r.ok() && r.AtEnd()) << "prefix length " << cut;
  }
}

TEST(GeneratedChoiceMarshalingTest, UnknownTagPoisonsTheReader) {
  circus::marshal::Writer w;
  w.WriteUnionTag(7);  // no such arm
  const Bytes bytes = w.Take();
  circus::marshal::Reader r(bytes);
  (void)rfs::Read_Manifest(r);
  EXPECT_FALSE(r.ok());
}

}  // namespace
