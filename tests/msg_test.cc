#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/msg/paired_endpoint.h"
#include "src/msg/segment.h"
#include "src/net/socket.h"
#include "src/net/world.h"
#include "tests/test_util.h"

namespace circus::msg {
namespace {

using net::DatagramSocket;
using net::FaultPlan;
using net::NetAddress;
using net::World;
using sim::Duration;
using sim::Syscall;
using sim::SyscallCostModel;
using sim::Task;

// -------------------------------------------------------------- Segment --

TEST(SegmentTest, EncodeDecodeRoundTrip) {
  Segment s;
  s.type = MessageType::kReturn;
  s.please_ack = true;
  s.ack = false;
  s.total_segments = 7;
  s.segment_number = 3;
  s.call_number = 0xDEADBEEF;
  s.data = BytesFromString("payload");
  Bytes wire = s.Encode();
  EXPECT_EQ(wire.size(), kSegmentHeaderBytes + 7);
  std::optional<Segment> d = Segment::Decode(wire);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MessageType::kReturn);
  EXPECT_TRUE(d->please_ack);
  EXPECT_FALSE(d->ack);
  EXPECT_EQ(d->total_segments, 7);
  EXPECT_EQ(d->segment_number, 3);
  EXPECT_EQ(d->call_number, 0xDEADBEEFu);
  EXPECT_EQ(StringFromBytes(d->data), "payload");
}

TEST(SegmentTest, CallNumberIsBigEndianOnTheWire) {
  Segment s;
  s.call_number = 0x01020304;
  Bytes wire = s.Encode();
  EXPECT_EQ(wire[4], 0x01);
  EXPECT_EQ(wire[5], 0x02);
  EXPECT_EQ(wire[6], 0x03);
  EXPECT_EQ(wire[7], 0x04);
}

TEST(SegmentTest, DecodeRejectsShortOrMalformed) {
  EXPECT_FALSE(Segment::Decode(Bytes{1, 2, 3}).has_value());
  Bytes bad(kSegmentHeaderBytes, 0);
  bad[0] = 9;  // unknown message type
  EXPECT_FALSE(Segment::Decode(bad).has_value());
  Bytes zero_total(kSegmentHeaderBytes, 0);
  zero_total[2] = 0;  // total segments must be >= 1
  EXPECT_FALSE(Segment::Decode(zero_total).has_value());
}

TEST(SegmentTest, SegmentizeSplitsAndNumbersFromOne) {
  Bytes data(2500, 'x');
  std::vector<Segment> segs =
      Segmentize(MessageType::kCall, 5, data, 1024);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].segment_number, 1);
  EXPECT_EQ(segs[2].segment_number, 3);
  EXPECT_EQ(segs[0].total_segments, 3);
  EXPECT_EQ(segs[0].data.size(), 1024u);
  EXPECT_EQ(segs[2].data.size(), 452u);
  for (const Segment& s : segs) {
    EXPECT_EQ(s.call_number, 5u);
    EXPECT_TRUE(s.is_data());
  }
}

TEST(SegmentTest, SegmentizeEmptyMessageYieldsOneSegment) {
  std::vector<Segment> segs = Segmentize(MessageType::kCall, 1, {}, 1024);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].segment_number, 1);
  EXPECT_TRUE(segs[0].is_data());  // numbered, so not a probe
}

TEST(SegmentTest, MaximumMessageIsExactly255Segments) {
  // The total-segments field is one byte; 255 segments is the protocol's
  // hard limit (Section 4.2.1).
  Bytes max_data(255 * 1024, 'm');
  std::vector<Segment> segs =
      Segmentize(MessageType::kCall, 1, max_data, 1024);
  EXPECT_EQ(segs.size(), 255u);
  EXPECT_EQ(segs.back().segment_number, 255);
}

TEST(SegmentTest, OversizeMessageIsRejected) {
  Bytes too_big(255 * 1024 + 1, 'x');
  EXPECT_DEATH(Segmentize(MessageType::kCall, 1, too_big, 1024),
               "message too large");
}

TEST(SegmentTest, ProbeVersusDataDistinction) {
  Segment probe;
  probe.segment_number = 0;
  probe.please_ack = true;
  EXPECT_TRUE(probe.is_probe());
  EXPECT_FALSE(probe.is_data());
}

// ----------------------------------------------------- PairedEndpoint ----

class MsgTest : public ::testing::Test {
 protected:
  MsgTest() : world_(11, SyscallCostModel::Free()) {
    client_host_ = world_.AddHost("client");
    server_host_ = world_.AddHost("server");
    client_socket_ = std::make_unique<DatagramSocket>(&world_.network(),
                                                      client_host_, 0);
    server_socket_ = std::make_unique<DatagramSocket>(&world_.network(),
                                                      server_host_, 9000);
  }

  std::unique_ptr<PairedEndpoint> MakeClient(EndpointOptions opts = {}) {
    return std::make_unique<PairedEndpoint>(client_socket_.get(), opts);
  }
  std::unique_ptr<PairedEndpoint> MakeServer(EndpointOptions opts = {}) {
    return std::make_unique<PairedEndpoint>(server_socket_.get(), opts);
  }

  World world_;
  sim::Host* client_host_;
  sim::Host* server_host_;
  std::unique_ptr<DatagramSocket> client_socket_;
  std::unique_ptr<DatagramSocket> server_socket_;
};

// Spawns an echo server: receives call messages and sends the same bytes
// back as the return message.
void SpawnEchoServer(PairedEndpoint* server, int count = INT32_MAX) {
  server->host()->Spawn([](PairedEndpoint* ep, int n) -> Task<void> {
    for (int i = 0; i < n; ++i) {
      Message m = co_await ep->NextIncomingCall();
      co_await ep->SendMessage(m.peer, MessageType::kReturn, m.call_number,
                               m.data);
    }
  }(server, count));
}

TEST_F(MsgTest, SingleSegmentExchange) {
  auto client = MakeClient();
  auto server = MakeServer();
  SpawnEchoServer(server.get());
  std::string reply;
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to,
                             std::string* out) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        BytesFromString("ping"));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    CIRCUS_CHECK(m.ok());
    *out = StringFromBytes(m->data);
  }(client.get(), server->local_address(), &reply));
  world_.RunFor(Duration::Seconds(2));
  EXPECT_EQ(reply, "ping");
}

TEST_F(MsgTest, FastExchangeUsesNoExplicitAcks) {
  // The call is acked implicitly by the return; the return is acked
  // implicitly by the next call. Only the final return needs one
  // retransmission round before its explicit ack.
  auto client = MakeClient();
  auto server = MakeServer();
  SpawnEchoServer(server.get());
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to) -> Task<void> {
    for (uint32_t call = 1; call <= 5; ++call) {
      Status s = co_await ep->SendMessage(to, MessageType::kCall, call,
                                          BytesFromString("x"));
      CIRCUS_CHECK(s.ok());
      auto m = co_await ep->AwaitReturn(to, call);
      CIRCUS_CHECK(m.ok());
    }
  }(client.get(), server->local_address()));
  world_.RunFor(Duration::Millis(200));
  // While the exchange is running briskly, neither side sends explicit
  // acks (calls 1..5 all complete within 200ms < retransmit interval).
  EXPECT_EQ(client->counters().ack_segments_sent, 0u);
  EXPECT_EQ(server->counters().ack_segments_sent, 0u);
  EXPECT_EQ(client->counters().messages_delivered, 5u);
}

TEST_F(MsgTest, MultiSegmentMessageReassembles) {
  auto client = MakeClient();
  auto server = MakeServer();
  Bytes big(5000, 'q');
  big[0] = 'A';
  big[4999] = 'Z';
  std::string got;
  server_host_->Spawn([](PairedEndpoint* ep, std::string* out) -> Task<void> {
    Message m = co_await ep->NextIncomingCall();
    *out = StringFromBytes(m.data);
    co_await ep->SendMessage(m.peer, MessageType::kReturn, m.call_number,
                             BytesFromString("ok"));
  }(server.get(), &got));
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to,
                             Bytes data) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        std::move(data));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    CIRCUS_CHECK(m.ok());
  }(client.get(), server->local_address(), big));
  world_.RunFor(Duration::Seconds(2));
  ASSERT_EQ(got.size(), 5000u);
  EXPECT_EQ(got[0], 'A');
  EXPECT_EQ(got[4999], 'Z');
  EXPECT_EQ(got.substr(1, 10), std::string(10, 'q'));
}

TEST_F(MsgTest, SurvivesHeavyLossOnMultiSegmentMessages) {
  world_.network().set_default_fault_plan(FaultPlan::Lossy(0.3));
  auto client = MakeClient();
  auto server = MakeServer();
  SpawnEchoServer(server.get());
  Bytes big(8000, 'r');
  bool done = false;
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to, Bytes data,
                             bool* out) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        std::move(data));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    CIRCUS_CHECK(m.ok());
    *out = (m->data.size() == 8000);
  }(client.get(), server->local_address(), big, &done));
  world_.RunFor(Duration::Seconds(30));
  EXPECT_TRUE(done);
  EXPECT_GT(client->counters().retransmitted_segments, 0u);
}

TEST_F(MsgTest, DuplicateCallIsSuppressedAndReacked) {
  FaultPlan plan;
  plan.duplicate_probability = 1.0;  // every packet delivered twice
  world_.network().set_default_fault_plan(plan);
  auto client = MakeClient();
  auto server = MakeServer();
  int deliveries = 0;
  server_host_->Spawn([](PairedEndpoint* ep, int* out) -> Task<void> {
    while (true) {
      Message m = co_await ep->NextIncomingCall();
      ++*out;
      co_await ep->SendMessage(m.peer, MessageType::kReturn, m.call_number,
                               m.data);
    }
  }(server.get(), &deliveries));
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        BytesFromString("once"));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    CIRCUS_CHECK(m.ok());
  }(client.get(), server->local_address()));
  world_.RunFor(Duration::Seconds(5));
  EXPECT_EQ(deliveries, 1);
  EXPECT_GT(server->counters().duplicate_messages_suppressed, 0u);
}

TEST_F(MsgTest, CrashDetectedWhileSending) {
  auto client = MakeClient();
  // No server endpoint at all: segments vanish into a closed port.
  Status status;
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to,
                             Status* out) -> Task<void> {
    *out = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                    BytesFromString("anyone?"));
  }(client.get(), NetAddress{net::MakeHostAddress(1), 9000}, &status));
  world_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(status.code(), ErrorCode::kCrashDetected);
  EXPECT_GT(client->counters().retransmitted_segments, 0u);
}

TEST_F(MsgTest, CrashDetectedByProbesWhileAwaitingReturn) {
  auto client = MakeClient();
  auto server = MakeServer();
  // Server accepts the call, stays alive long enough to acknowledge it
  // (so the send phase succeeds), then crashes mid-"computation". Only
  // the probe machinery can detect this (Section 4.2.3).
  server_host_->Spawn([](PairedEndpoint* ep) -> Task<void> {
    co_await ep->NextIncomingCall();
    co_await ep->host()->SleepFor(Duration::Seconds(2));
    ep->host()->Crash();
  }(server.get()));
  Status status;
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to,
                             Status* out) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        BytesFromString("work"));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    *out = m.status();
  }(client.get(), server->local_address(), &status));
  world_.RunFor(Duration::Seconds(60));
  EXPECT_EQ(status.code(), ErrorCode::kCrashDetected);
  EXPECT_GT(client->counters().probe_segments_sent, 0u);
}

TEST_F(MsgTest, SlowServerIsNotDeclaredCrashed) {
  auto client = MakeClient();
  auto server = MakeServer();
  // Server replies after 30 seconds -- much longer than the probe
  // timeout budget, but it answers probes, so the client keeps waiting
  // (Section 4.2.3: probing distinguishes slow from dead).
  server_host_->Spawn([](PairedEndpoint* ep) -> Task<void> {
    Message m = co_await ep->NextIncomingCall();
    co_await ep->host()->SleepFor(Duration::Seconds(30));
    co_await ep->SendMessage(m.peer, MessageType::kReturn, m.call_number,
                             BytesFromString("finally"));
  }(server.get()));
  std::string reply;
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to,
                             std::string* out) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        BytesFromString("slow job"));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    CIRCUS_CHECK(m.ok());
    *out = StringFromBytes(m->data);
  }(client.get(), server->local_address(), &reply));
  world_.RunFor(Duration::Seconds(120));
  EXPECT_EQ(reply, "finally");
}

TEST_F(MsgTest, StopAndWaitSendsMoreAcksThanSlidingWindow) {
  Bytes big(8000, 's');
  uint64_t acks_sliding = 0;
  uint64_t acks_stopwait = 0;
  for (int variant = 0; variant < 2; ++variant) {
    World world(5, SyscallCostModel::Free());
    sim::Host* ch = world.AddHost("c");
    sim::Host* sh = world.AddHost("s");
    DatagramSocket cs(&world.network(), ch, 0);
    DatagramSocket ss(&world.network(), sh, 9000);
    EndpointOptions opts;
    opts.mode = variant == 0 ? EndpointOptions::Mode::kSlidingWindow
                             : EndpointOptions::Mode::kStopAndWait;
    PairedEndpoint client(&cs, opts);
    PairedEndpoint server(&ss, opts);
    SpawnEchoServer(&server);
    world.executor().Spawn([](PairedEndpoint* ep, NetAddress to,
                              Bytes data) -> Task<void> {
      Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                          std::move(data));
      CIRCUS_CHECK(s.ok());
      auto m = co_await ep->AwaitReturn(to, 1);
      CIRCUS_CHECK(m.ok());
    }(&client, server.local_address(), big));
    world.RunFor(Duration::Seconds(10));
    if (variant == 0) {
      acks_sliding = server.counters().ack_segments_sent;
    } else {
      acks_stopwait = server.counters().ack_segments_sent;
    }
  }
  // PARC-style explicit per-segment acks roughly double the packet count
  // on multi-segment messages (Section 4.2.5).
  EXPECT_GT(acks_stopwait, acks_sliding + 4);
}

TEST_F(MsgTest, OutOfOrderArrivalTriggersImmediateAck) {
  // Drop exactly the first data segment of a 3-segment message once; the
  // arrival of segment 2 must trigger an immediate ack (ack number 0).
  auto client = MakeClient();
  auto server = MakeServer();
  // Build a lossy plan that drops only the first packet sent.
  int packet_index = 0;
  world_.network().SetPacketObserver([&](const net::Datagram&) {
    ++packet_index;
  });
  // Use per-pair plan: drop the first client->server packet by brute
  // force: set loss 1.0 then heal after one send.
  FaultPlan lossy;
  lossy.loss_probability = 1.0;
  world_.network().SetPairFaultPlan(client_host_->id(), server_host_->id(),
                                    lossy);
  world_.executor().ScheduleAfter(Duration::Micros(100), [&] {
    world_.network().ClearPairFaultPlans();
  });
  Bytes big(3000, 'o');
  bool ok = false;
  SpawnEchoServer(server.get());
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to, Bytes data,
                             bool* out) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        std::move(data));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    *out = m.ok();
  }(client.get(), server->local_address(), big, &ok));
  world_.RunFor(Duration::Seconds(10));
  EXPECT_TRUE(ok);
  // The server saw a gap and acked immediately at least once.
  EXPECT_GT(server->counters().ack_segments_sent, 0u);
}

TEST_F(MsgTest, BlastMulticastDeliversToGroup) {
  auto client = MakeClient();
  auto server = MakeServer();
  sim::Host* second_host = world_.AddHost("server2");
  DatagramSocket second_socket(&world_.network(), second_host, 9000);
  PairedEndpoint server2(&second_socket, {});
  const net::HostAddress group = net::MakeMulticastAddress(0);
  server_socket_->JoinGroup(group);
  second_socket.JoinGroup(group);
  int received = 0;
  for (PairedEndpoint* ep : {server.get(), &server2}) {
    ep->host()->Spawn([](PairedEndpoint* e, int* out) -> Task<void> {
      co_await e->NextIncomingCall();
      ++*out;
    }(ep, &received));
  }
  world_.executor().Spawn([](PairedEndpoint* ep,
                             net::HostAddress g) -> Task<void> {
    co_await ep->BlastMulticast(NetAddress{g, 9000}, MessageType::kCall, 1,
                                BytesFromString("to all"));
  }(client.get(), group));
  world_.RunFor(Duration::Seconds(1));
  EXPECT_EQ(received, 2);
  EXPECT_EQ(client->counters().data_segments_sent, 1u);
}

TEST_F(MsgTest, TryAwaitReturnTimesOutWithoutProbing) {
  auto client = MakeClient();
  auto server = MakeServer();
  // Server sits on the call for 2 seconds.
  server_host_->Spawn([](PairedEndpoint* ep) -> Task<void> {
    Message m = co_await ep->NextIncomingCall();
    co_await ep->host()->SleepFor(Duration::Seconds(2));
    co_await ep->SendMessage(m.peer, MessageType::kReturn, m.call_number,
                             BytesFromString("slow"));
  }(server.get()));
  std::string outcome;
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to,
                             std::string* out) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        BytesFromString("q"));
    CIRCUS_CHECK(s.ok());
    // Optimistic bounded wait: no reply within 100 ms.
    std::optional<Message> quick =
        co_await ep->TryAwaitReturn(to, 1, Duration::Millis(100));
    if (quick.has_value()) {
      *out = "unexpected";
      co_return;
    }
    // The slot survives the timeout: the full AwaitReturn still gets it.
    auto m = co_await ep->AwaitReturn(to, 1);
    CIRCUS_CHECK(m.ok());
    *out = StringFromBytes(m->data);
  }(client.get(), server->local_address(), &outcome));
  world_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(outcome, "slow");
  // The bounded wait itself sent no probes.
  EXPECT_GE(client->counters().probe_segments_sent, 0u);
}

TEST_F(MsgTest, DiscardedReturnIsDropped) {
  auto client = MakeClient();
  auto server = MakeServer();
  SpawnEchoServer(server.get());
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        BytesFromString("fire"));
    CIRCUS_CHECK(s.ok());
    // The caller loses interest (first-come collation moved on).
    ep->DiscardReturn(to, 1);
  }(client.get(), server->local_address()));
  world_.RunFor(Duration::Seconds(5));
  // The echo was still produced and delivered to the slot machinery;
  // nothing crashed, nothing leaked into the incoming-call queue.
  EXPECT_EQ(server->counters().messages_delivered, 1u);
}

TEST_F(MsgTest, ProbeOfUnknownCallAnswersAckZero) {
  // A probe about a call the receiver never saw is answered with
  // acknowledgment number 0, which tells the sender to retransmit from
  // the beginning rather than declare a crash.
  auto client = MakeClient();
  auto server = MakeServer();
  int acks_before = static_cast<int>(server->counters().ack_segments_sent);
  world_.executor().Spawn([](net::DatagramSocket* raw,
                             NetAddress to) -> Task<void> {
    Segment probe;
    probe.type = MessageType::kCall;
    probe.call_number = 999;  // never sent
    probe.please_ack = true;
    probe.segment_number = 0;
    probe.total_segments = 3;
    co_await raw->Send(to, probe.Encode());
  }(client_socket_.get(), server->local_address()));
  world_.RunFor(Duration::Seconds(1));
  EXPECT_EQ(server->counters().ack_segments_sent,
            static_cast<uint64_t>(acks_before) + 1);
}

TEST_F(MsgTest, CompletedHistoryEvictionStillSafeForNewCalls) {
  // Exceed the per-peer completed-exchange history: old entries are
  // evicted, but new calls (fresh numbers) keep working.
  EndpointOptions small;
  small.completed_history_per_peer = 4;
  auto client = MakeClient(small);
  auto server = MakeServer(small);
  SpawnEchoServer(server.get());
  int ok = 0;
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to,
                             int* out) -> Task<void> {
    for (uint32_t call = 1; call <= 12; ++call) {
      Status s = co_await ep->SendMessage(to, MessageType::kCall, call,
                                          BytesFromString("h"));
      CIRCUS_CHECK(s.ok());
      auto m = co_await ep->AwaitReturn(to, call);
      CIRCUS_CHECK(m.ok());
      ++*out;
    }
  }(client.get(), server->local_address(), &ok));
  world_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(ok, 12);
}

TEST_F(MsgTest, SyscallProfileOfOneExchange) {
  // Under the 4.2BSD cost model, a single-segment exchange charges the
  // client exactly one sendmsg and one recvmsg plus timer traffic --
  // the structure behind Table 4.3.
  World world(5, SyscallCostModel::Berkeley42Bsd());
  sim::Host* ch = world.AddHost("c");
  sim::Host* sh = world.AddHost("s");
  DatagramSocket cs(&world.network(), ch, 0);
  DatagramSocket ss(&world.network(), sh, 9000);
  PairedEndpoint client(&cs, {});
  PairedEndpoint server(&ss, {});
  SpawnEchoServer(&server, 1);
  world.executor().Spawn([](PairedEndpoint* ep, NetAddress to) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        BytesFromString("m"));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    CIRCUS_CHECK(m.ok());
  }(&client, server.local_address()));
  world.RunFor(Duration::Millis(100));
  EXPECT_EQ(ch->cpu().count(Syscall::kSendMsg), 1u);
  EXPECT_EQ(ch->cpu().count(Syscall::kRecvMsg), 1u);
  EXPECT_GE(ch->cpu().count(Syscall::kSetITimer), 1u);
  EXPECT_GE(ch->cpu().count(Syscall::kSigBlock), 2u);
}

// Sends into a closed port and reports how long the endpoint took to
// declare the peer crashed: (max_retransmits + 1) retransmit waits, so
// the duration is a direct observation of the (jittered) timers.
Task<void> TimeSendToVoid(PairedEndpoint* ep, NetAddress to,
                          int64_t* out_ns) {
  const int64_t start = ep->host()->executor().now().nanos();
  Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                      BytesFromString("anyone?"));
  CIRCUS_CHECK(s.code() == ErrorCode::kCrashDetected);
  *out_ns = ep->host()->executor().now().nanos() - start;
}

TEST_F(MsgTest, RetransmitTimerJitterBoundedAndDistinctPerEndpoint) {
  DatagramSocket exact_socket(&world_.network(), client_host_, 0);
  DatagramSocket a_socket(&world_.network(), client_host_, 0);
  DatagramSocket b_socket(&world_.network(), client_host_, 0);
  EndpointOptions exact_opts;
  exact_opts.timer_jitter = 0.0;
  EndpointOptions a_opts;
  a_opts.jitter_seed = 101;
  EndpointOptions b_opts;
  b_opts.jitter_seed = 202;
  PairedEndpoint exact(&exact_socket, exact_opts);
  PairedEndpoint a(&a_socket, a_opts);
  PairedEndpoint b(&b_socket, b_opts);

  const NetAddress closed{net::MakeHostAddress(1), 9000};
  int64_t exact_ns = 0;
  int64_t a_ns = 0;
  int64_t b_ns = 0;
  world_.executor().Spawn(TimeSendToVoid(&exact, closed, &exact_ns));
  world_.executor().Spawn(TimeSendToVoid(&a, closed, &a_ns));
  world_.executor().Spawn(TimeSendToVoid(&b, closed, &b_ns));
  world_.RunFor(Duration::Seconds(30));

  // Jitter off: every wait is the configured interval, to the nanosecond.
  const int64_t nominal = (exact_opts.max_retransmits + 1) *
                          exact_opts.retransmit_interval.nanos();
  EXPECT_EQ(exact_ns, nominal);
  // Jitter on (default 10%): inside the +/-10% envelope, not exact, and
  // two endpoints with different seeds draw different schedules.
  for (const int64_t jittered_ns : {a_ns, b_ns}) {
    EXPECT_GE(jittered_ns, static_cast<int64_t>(nominal * 0.9));
    EXPECT_LE(jittered_ns, static_cast<int64_t>(nominal * 1.1));
    EXPECT_NE(jittered_ns, nominal);
  }
  EXPECT_NE(a_ns, b_ns);
}

// ------------------------------------- segmentation edge cases ----

TEST(SegmentTest, PayloadExactlyOneDatagramUsesOneSegment) {
  // A payload of exactly segment_data_bytes must not spill a zero-byte
  // second segment.
  Bytes payload(1024, 'x');
  std::vector<Segment> segments =
      Segmentize(MessageType::kCall, 5, payload, 1024);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].total_segments, 1);
  EXPECT_EQ(segments[0].segment_number, 1);
  EXPECT_EQ(segments[0].data.size(), 1024u);

  // One byte more takes two, the second carrying exactly that byte.
  payload.push_back('y');
  segments = Segmentize(MessageType::kCall, 5, payload, 1024);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[1].data.size(), 1u);
}

TEST_F(MsgTest, MaximumSizeMessageExchanges) {
  // The largest legal message: 255 segments, the 8-bit segment-number
  // ceiling of the Figure 4.2 header. Small segments keep the sim fast.
  EndpointOptions tiny;
  tiny.segment_data_bytes = 16;
  auto client = MakeClient(tiny);
  auto server = MakeServer(tiny);
  SpawnEchoServer(server.get());
  const size_t max_bytes = 255 * tiny.segment_data_bytes;
  size_t echoed = 0;
  world_.executor().Spawn([](PairedEndpoint* ep, NetAddress to, size_t n,
                             size_t* out) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        Bytes(n, 'm'));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    CIRCUS_CHECK(m.ok());
    *out = m->data.size();
  }(client.get(), server->local_address(), max_bytes, &echoed));
  world_.RunFor(Duration::Seconds(60));
  EXPECT_EQ(echoed, max_bytes);
  EXPECT_GE(client->counters().data_segments_sent, 255u);
}

TEST_F(MsgTest, DuplicateFinalSegmentDeliversOnce) {
  // The final segment of a call is re-sent raw after the exchange
  // completed — a delayed duplicate off the wire. The server must
  // re-acknowledge it (the sender could be retransmitting into a lost
  // ack) without delivering the message a second time.
  auto client = MakeClient();
  auto server = MakeServer();
  SpawnEchoServer(server.get());
  world_.executor().Spawn([](PairedEndpoint* ep, net::DatagramSocket* raw,
                             NetAddress to) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, 1,
                                        BytesFromString("once"));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, 1);
    CIRCUS_CHECK(m.ok());
    // Replay the call's only (hence final) segment verbatim.
    std::vector<Segment> segments = Segmentize(
        MessageType::kCall, 1, BytesFromString("once"), 1024);
    CIRCUS_CHECK(segments.size() == 1);
    segments[0].please_ack = true;
    co_await raw->Send(to, segments[0].Encode());
  }(client.get(), client_socket_.get(), server->local_address()));
  world_.RunFor(Duration::Seconds(5));
  EXPECT_EQ(server->counters().messages_delivered, 1u);
  EXPECT_GE(server->counters().duplicate_messages_suppressed, 1u);
}

TEST_F(MsgTest, InterleavedCallsOnOnePairBothComplete) {
  // Two concurrent calls between the same pair of endpoints, both
  // multi-segment, their segments interleaving on the wire: reassembly
  // is keyed by call number, so each must come back intact.
  EndpointOptions tiny;
  tiny.segment_data_bytes = 8;
  auto client = MakeClient(tiny);
  auto server = MakeServer(tiny);
  SpawnEchoServer(server.get(), /*count=*/2);
  std::string first;
  std::string second;
  auto caller = [](PairedEndpoint* ep, NetAddress to, uint32_t call,
                   std::string payload, std::string* out) -> Task<void> {
    Status s = co_await ep->SendMessage(to, MessageType::kCall, call,
                                        BytesFromString(payload));
    CIRCUS_CHECK(s.ok());
    auto m = co_await ep->AwaitReturn(to, call);
    CIRCUS_CHECK(m.ok());
    *out = StringFromBytes(m->data);
  };
  const std::string payload_one(100, 'a');
  const std::string payload_two(100, 'b');
  world_.executor().Spawn(
      caller(client.get(), server->local_address(), 1, payload_one, &first));
  world_.executor().Spawn(
      caller(client.get(), server->local_address(), 2, payload_two, &second));
  world_.RunFor(Duration::Seconds(10));
  EXPECT_EQ(first, payload_one);
  EXPECT_EQ(second, payload_two);
}

}  // namespace
}  // namespace circus::msg
