// Stage-level latency attribution (src/obs/latency.h) against real
// protocol runs in the deterministic simulator. The load-bearing
// property is conservation: for every finalized call, the per-stage
// durations sum exactly to the end-to-end latency — checked here for
// plain unanimous calls, for the troupe commit protocol, and for
// ordered broadcast. Same-seed runs must render byte-identical reports,
// and a planted slow handler must cross the slow-call threshold (the
// negative test behind circus_node's slow_call_us= dump).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"
#include "src/obs/latency.h"
#include "src/txn/commit.h"
#include "src/txn/ordered_broadcast.h"
#include "src/txn/store.h"

namespace circus::obs {
namespace {

using core::ModuleNumber;
using core::ProcedureNumber;
using core::RpcProcess;
using core::ServerCallContext;
using core::ThreadId;
using core::Troupe;
using net::World;
using sim::Duration;
using sim::SyscallCostModel;
using sim::Task;

// Sum of every stage that applies to the call (StageNs is -1 for the
// stages of the other decomposition).
int64_t StageSumNs(const CallTimeline& t) {
  int64_t sum = 0;
  for (int s = 0; s < kStageCount; ++s) {
    const int64_t v = t.StageNs(static_cast<Stage>(s));
    if (v >= 0) {
      sum += v;
    }
  }
  return sum;
}

void ExpectConservation(const LatencyAttributor& attributor) {
  ASSERT_FALSE(attributor.slowest().empty());
  for (const CallExemplar& ex : attributor.slowest()) {
    EXPECT_EQ(StageSumNs(ex.timeline), ex.timeline.end_to_end_ns())
        << ex.timeline.ToString();
  }
  // The same identity aggregated: stage histogram mass sums to the
  // end-to-end mass (all in microseconds, so tolerate float rounding).
  double stage_mass = 0;
  for (int s = 0; s < kStageCount; ++s) {
    stage_mass += attributor.StageHistogramUs(static_cast<Stage>(s)).sum();
  }
  const double e2e_mass = attributor.end_to_end_us().sum();
  EXPECT_NEAR(stage_mass, e2e_mass, 1e-6 * (1 + e2e_mass));
}

// ------------------------------------------------------ echo troupe --

struct EchoTroupe {
  std::vector<std::unique_ptr<RpcProcess>> members;
  Troupe troupe;
  ModuleNumber module = 0;
};

// `handler_sleep` plants extra in-handler time (the slow-call test).
EchoTroupe MakeEchoTroupe(World* world, int n, Duration handler_sleep) {
  EchoTroupe t;
  t.troupe.id = core::TroupeId{500};
  for (int i = 0; i < n; ++i) {
    sim::Host* host = world->AddHost("srv" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world->network(), host, 9000);
    t.module = process->ExportModule("echo");
    process->ExportProcedure(
        t.module, 0,
        [host, handler_sleep](ServerCallContext&,
                              const Bytes& args) -> Task<StatusOr<Bytes>> {
          if (handler_sleep > Duration::Zero()) {
            co_await host->SleepFor(handler_sleep);
          }
          co_return Bytes(args);
        });
    process->SetTroupeId(t.troupe.id);
    t.troupe.members.push_back(process->module_address(t.module));
    t.members.push_back(std::move(process));
  }
  return t;
}

Task<void> EchoLoop(RpcProcess* client, Troupe troupe, ModuleNumber module,
                    int calls, bool* done) {
  const ThreadId thread = client->NewRootThread();
  const Bytes args(16, 'e');
  for (int i = 0; i < calls; ++i) {
    StatusOr<Bytes> r =
        co_await client->Call(thread, troupe, module, 0, args);
    CIRCUS_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  }
  *done = true;
}

// Runs `calls` unanimous echo calls at troupe degree `n` under the
// Berkeley cost model and returns the attributor's report strings.
struct EchoRun {
  std::string table;
  std::string prometheus;
};

EchoRun RunEcho(uint64_t seed, int n, int calls,
                LatencyAttributor* attributor) {
  World world(seed, SyscallCostModel::Berkeley42Bsd());
  attributor->Attach(&world.bus());
  EchoTroupe t = MakeEchoTroupe(&world, n, Duration::Zero());
  sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8000);
  bool done = false;
  world.executor().Spawn(
      EchoLoop(&client, t.troupe, t.module, calls, &done));
  world.RunFor(Duration::Seconds(60));
  EXPECT_TRUE(done);
  EchoRun run;
  run.table = attributor->ToString();
  run.prometheus = attributor->ToPrometheus();
  attributor->Detach();
  return run;
}

TEST(ObsLatencyTest, UnanimousCallStagesSumToEndToEnd) {
  for (int n = 1; n <= 3; ++n) {
    LatencyAttributor::Options options;
    options.max_exemplars = 64;  // keep every call for the check
    LatencyAttributor attributor(options);
    RunEcho(7000 + n, n, 10, &attributor);
    EXPECT_EQ(attributor.calls(), 10u);
    EXPECT_EQ(attributor.dropped_pending(), 0u);
    ASSERT_EQ(attributor.slowest().size(), 10u);
    // The sim bus sees both sides, so the decomposed stages (not the
    // server_roundtrip fallback) must carry the attribution.
    for (const CallExemplar& ex : attributor.slowest()) {
      EXPECT_TRUE(ex.timeline.has_server_leg()) << ex.timeline.ToString();
      EXPECT_EQ(ex.timeline.StageNs(Stage::kServerRoundtrip), -1);
    }
    EXPECT_EQ(attributor.StageHistogramUs(Stage::kServerRoundtrip).count(),
              0u);
    ExpectConservation(attributor);
  }
}

TEST(ObsLatencyTest, SameSeedRunsRenderByteIdenticalReports) {
  LatencyAttributor::Options options;
  options.max_exemplars = 16;
  LatencyAttributor first(options);
  LatencyAttributor second(options);
  const EchoRun a = RunEcho(7100, 3, 8, &first);
  const EchoRun b = RunEcho(7100, 3, 8, &second);
  EXPECT_FALSE(a.table.empty());
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.prometheus, b.prometheus);
}

TEST(ObsLatencyTest, PlantedSlowHandlerCrossesThresholdFastCallsDoNot) {
  // Calibrate the threshold from an unplanted run: anything between the
  // fast calls' max and max + the 50 ms planted delay separates the two
  // (under Berkeley costs a degree-2 call is itself tens of ms).
  LatencyAttributor baseline;
  RunEcho(7201, 2, 3, &baseline);
  ASSERT_GT(baseline.end_to_end_us().count(), 0u);
  const int64_t fast_max_ns =
      static_cast<int64_t>(baseline.end_to_end_us().max() * 1000.0);
  LatencyAttributor::Options options;
  options.slow_call_threshold_ns =
      fast_max_ns + Duration::Millis(25).nanos();
  LatencyAttributor attributor(options);
  World world(7200, SyscallCostModel::Berkeley42Bsd());
  attributor.Attach(&world.bus());
  EchoTroupe t = MakeEchoTroupe(&world, 2, Duration::Millis(50));
  sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8000);
  bool done = false;
  world.executor().Spawn(EchoLoop(&client, t.troupe, t.module, 3, &done));
  world.RunFor(Duration::Seconds(60));
  ASSERT_TRUE(done);

  std::vector<CallExemplar> slow = attributor.TakeSlowCalls();
  ASSERT_EQ(slow.size(), 3u);
  for (const CallExemplar& ex : slow) {
    EXPECT_GE(ex.timeline.end_to_end_ns(), options.slow_call_threshold_ns);
    // The planted delay must land in the handler-execution stage.
    EXPECT_GE(ex.timeline.StageNs(Stage::kServerExecute),
              Duration::Millis(50).nanos());
    EXPECT_FALSE(ex.events.empty());
  }
  // The queue drains: a second take is empty.
  EXPECT_TRUE(attributor.TakeSlowCalls().empty());
  EXPECT_NE(attributor.SlowCallReport().find("slowest "),
            std::string::npos);
  attributor.Detach();

  // Control: the same fast workload stays under the same threshold.
  LatencyAttributor fast(options);
  RunEcho(7201, 2, 3, &fast);
  EXPECT_EQ(fast.calls(), 3u);
  EXPECT_TRUE(fast.TakeSlowCalls().empty());
}

// ---------------------------------------------------- commit workload --

constexpr ProcedureNumber kNoopProc = 1;

Task<Status> NoopTxnBody(RpcProcess* process, ThreadId thread,
                         Troupe troupe, ModuleNumber module,
                         txn::TxnId txn) {
  marshal::Writer w;
  txn.Write(w);
  StatusOr<Bytes> r =
      co_await process->Call(thread, troupe, module, kNoopProc, w.Take());
  co_return r.status();
}

Task<void> RunOneTransaction(RpcProcess* process,
                             txn::CommitCoordinator* coordinator,
                             Troupe troupe, ModuleNumber module,
                             Status* out) {
  const ThreadId thread = process->NewRootThread();
  txn::TransactionBody body = [process, thread, troupe,
                               module](const txn::TxnId& txn) {
    return NoopTxnBody(process, thread, troupe, module, txn);
  };
  *out = co_await txn::RunTransaction(process, coordinator, thread, troupe,
                                      module, body);
}

TEST(ObsLatencyTest, CommitWorkloadConservesAndRecordsCommitWait) {
  LatencyAttributor::Options options;
  options.max_exemplars = 64;
  LatencyAttributor attributor(options);
  World world(7300, SyscallCostModel::Berkeley42Bsd());
  attributor.Attach(&world.bus());

  Troupe troupe;
  troupe.id = core::TroupeId{510};
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<txn::TransactionalServer>> servers;
  ModuleNumber module = 0;
  for (int i = 0; i < 2; ++i) {
    sim::Host* host = world.AddHost("srv" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto server =
        std::make_unique<txn::TransactionalServer>(process.get(), "noop");
    server->ExportProcedure(
        kNoopProc,
        [srv = server.get()](ServerCallContext&,
                             const Bytes& args) -> Task<StatusOr<Bytes>> {
          marshal::Reader r(args);
          const txn::TxnId txn = txn::TxnId::Read(r);
          srv->store().Begin(txn);
          co_return Bytes{};
        });
    module = server->module_number();
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    processes.push_back(std::move(process));
    servers.push_back(std::move(server));
  }
  sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8000);
  txn::CommitCoordinator coordinator(&client);

  Status result(ErrorCode::kAborted, "not run");
  world.executor().Spawn(
      RunOneTransaction(&client, &coordinator, troupe, module, &result));
  world.RunFor(Duration::Seconds(60));
  ASSERT_TRUE(result.ok()) << result.ToString();

  EXPECT_GT(attributor.calls(), 0u);
  ExpectConservation(attributor);
  // The two-phase commit's vote -> decision wait was measured.
  EXPECT_GT(attributor.commit_wait_us().count(), 0u);
  attributor.Detach();
}

// -------------------------------------------------- broadcast workload --

Task<void> RunOneBroadcast(RpcProcess* client, Troupe troupe,
                           ModuleNumber module, Status* out) {
  *out = co_await txn::AtomicBroadcast(client, client->NewRootThread(),
                                       troupe, module, 1,
                                       BytesFromString("event-1"));
}

TEST(ObsLatencyTest, BroadcastWorkloadConservesAndRecordsBroadcastWait) {
  LatencyAttributor::Options options;
  options.max_exemplars = 64;
  LatencyAttributor attributor(options);
  World world(7400, SyscallCostModel::Berkeley42Bsd());
  attributor.Attach(&world.bus());

  Troupe troupe;
  troupe.id = core::TroupeId{520};
  std::vector<std::unique_ptr<RpcProcess>> processes;
  std::vector<std::unique_ptr<txn::OrderedBroadcastServer>> servers;
  ModuleNumber module = 0;
  for (int i = 0; i < 3; ++i) {
    sim::Host* host = world.AddHost("srv" + std::to_string(i));
    auto process =
        std::make_unique<RpcProcess>(&world.network(), host, 9000);
    auto server = std::make_unique<txn::OrderedBroadcastServer>(
        process.get(), "broadcast");
    module = server->module_number();
    process->SetTroupeId(troupe.id);
    troupe.members.push_back(process->module_address(module));
    processes.push_back(std::move(process));
    servers.push_back(std::move(server));
  }
  sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&world.network(), client_host, 8000);

  Status result(ErrorCode::kAborted, "not run");
  world.executor().Spawn(RunOneBroadcast(&client, troupe, module, &result));
  world.RunFor(Duration::Seconds(60));
  ASSERT_TRUE(result.ok()) << result.ToString();
  for (auto& server : servers) {
    EXPECT_EQ(server->delivered_count(), 1u);
  }

  // Both phases (get_proposed_time, accept_time) are replicated calls.
  EXPECT_GE(attributor.calls(), 2u);
  ExpectConservation(attributor);
  // The propose -> first-delivery wait was measured.
  EXPECT_GT(attributor.broadcast_wait_us().count(), 0u);
  attributor.Detach();
}

}  // namespace
}  // namespace circus::obs
