// USE-method telemetry tests: the time-weighted Gauge, the
// UtilizationMonitor's grading and kSaturation transition events, and
// the property the whole layer is built on — same-seed simulated runs
// render byte-identical utilization snapshots.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/socket.h"
#include "src/net/world.h"
#include "src/obs/bus.h"
#include "src/obs/event.h"
#include "src/obs/metrics.h"
#include "src/obs/util.h"

namespace circus::obs {
namespace {

using circus::Bytes;
using circus::net::DatagramSocket;
using circus::net::NetAddress;
using circus::net::World;
using circus::sim::Duration;
using circus::sim::Task;

// ----------------------------------------------------------- gauge ----

TEST(GaugeTest, TimeWeightedMeanFollowsTheRegistryClock) {
  MetricsRegistry registry;
  int64_t now_ns = 0;
  registry.SetClock([&now_ns] { return now_ns; });

  Gauge* gauge = registry.GetGauge("queue.depth");
  gauge->Set(2.0);  // t = 0
  now_ns = 10;
  gauge->Set(4.0);  // value 2 held for 10 ns
  now_ns = 20;      // value 4 held for another 10 ns

  EXPECT_DOUBLE_EQ(gauge->value(), 4.0);
  EXPECT_DOUBLE_EQ(gauge->min(), 2.0);
  EXPECT_DOUBLE_EQ(gauge->max(), 4.0);
  EXPECT_DOUBLE_EQ(gauge->MeanUntil(20), 3.0);

  const MetricsRegistry::Snapshot snap = registry.Snap(20);
  ASSERT_EQ(snap.gauges.count("queue.depth"), 1u);
  const GaugeStats& stats = snap.gauges.at("queue.depth");
  EXPECT_DOUBLE_EQ(stats.value, 4.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);

  // The exposition renders the gauge plus its companions.
  const std::string prom = snap.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE circus_queue_depth gauge"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("circus_queue_depth_avg"), std::string::npos);
  EXPECT_NE(prom.find("circus_queue_depth_min"), std::string::npos);
  EXPECT_NE(prom.find("circus_queue_depth_max"), std::string::npos);
}

TEST(GaugeTest, MeanDegradesToValueWhileClockStandsStill) {
  MetricsRegistry registry;  // no clock installed: NowNs() == 0 always
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(7.0);
  gauge->Set(9.0);
  EXPECT_DOUBLE_EQ(gauge->MeanUntil(0), 9.0);
  EXPECT_DOUBLE_EQ(gauge->min(), 7.0);
  EXPECT_DOUBLE_EQ(gauge->max(), 9.0);
}

// --------------------------------------------- grading & transitions ----

TEST(UtilizationMonitorTest, GradesUtilizationAndPublishesTransitions) {
  EventBus bus;
  EventLog log(&bus);
  UtilizationMonitor monitor;
  monitor.SetBus(&bus);

  double utilization = 0.10;
  double queue = 3;
  monitor.AddResource("fake.cpu", [&](int64_t) {
    ResourceSample sample;
    sample.utilization = utilization;
    sample.queue = queue;
    sample.ops = 5;
    return sample;
  });

  monitor.Sample(0);  // baseline: zero-length window, level stays ok
  EXPECT_EQ(monitor.WorstLevel(), SaturationLevel::kOk);
  EXPECT_TRUE(log.events().empty());

  monitor.Sample(1'000'000'000);  // still ok: no transition, no event
  EXPECT_TRUE(log.events().empty());

  utilization = 0.75;
  monitor.Sample(2'000'000'000);  // ok -> high
  utilization = 0.95;
  queue = 17;
  monitor.Sample(3'000'000'000);  // high -> saturated
  utilization = 0.10;
  monitor.Sample(4'000'000'000);  // saturated -> ok

  ASSERT_EQ(log.events().size(), 3u);
  for (const Event& e : log.events()) {
    EXPECT_EQ(e.kind, EventKind::kSaturation);
    EXPECT_EQ(e.detail, "fake.cpu");
  }
  EXPECT_EQ(log.events()[0].a, 7500u);  // utilization in basis points
  EXPECT_EQ(log.events()[0].b, 1u);     // new level: high
  EXPECT_EQ(log.events()[1].a, 9500u);
  EXPECT_EQ(log.events()[1].b, 2u);
  EXPECT_EQ(log.events()[1].c, 17u);  // queue depth rides along
  EXPECT_EQ(log.events()[2].b, 0u);

  const ResourceStats* stats = monitor.Find("fake.cpu");
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->utilization_peak, 0.95);
  EXPECT_DOUBLE_EQ(stats->queue_peak, 17.0);
  EXPECT_EQ(stats->ops_total, 5u * 5u);  // every sample, baseline included
  // Mean weighs each 1 s window: (0.10 + 0.75 + 0.95 + 0.10) / 4.
  EXPECT_NEAR(stats->utilization_mean(), 0.475, 1e-9);
  EXPECT_EQ(monitor.samples(), 5u);

  // The kind has a stable wire name for shard JSONL round-trips.
  EXPECT_STREQ(EventKindName(EventKind::kSaturation), "saturation");
  EventKind parsed = EventKind::kCallIssue;
  EXPECT_TRUE(EventKindFromName("saturation", &parsed));
  EXPECT_EQ(parsed, EventKind::kSaturation);
}

TEST(UtilizationMonitorTest, QueueThresholdsGradeBacklogResources) {
  UtilizationMonitor monitor;
  double queue = 0;
  ResourceGrading grading;
  grading.high_queue = 64;
  grading.saturated_queue = 256;
  monitor.AddResource(
      "fake.queue",
      [&](int64_t) {
        ResourceSample sample;  // utilization stays -1: n/a
        sample.queue = queue;
        return sample;
      },
      grading);

  monitor.Sample(0);
  EXPECT_EQ(monitor.Find("fake.queue")->level, SaturationLevel::kOk);
  queue = 100;
  monitor.Sample(1'000'000'000);
  EXPECT_EQ(monitor.Find("fake.queue")->level, SaturationLevel::kHigh);
  queue = 300;
  monitor.Sample(2'000'000'000);
  EXPECT_EQ(monitor.Find("fake.queue")->level, SaturationLevel::kSaturated);
  EXPECT_EQ(monitor.WorstLevel(), SaturationLevel::kSaturated);

  // A utilization-free resource reports busy% as n/a everywhere.
  const std::string table = monitor.ToString();
  EXPECT_NE(table.find("fake.queue"), std::string::npos);
  EXPECT_NE(table.find("saturated"), std::string::npos);
  const std::string prom = monitor.ToPrometheus();
  EXPECT_NE(
      prom.find("circus_util_busy_pct{resource=\"fake.queue\"} -1.0"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("circus_util_level{resource=\"fake.queue\"} 2.0"),
            std::string::npos);
}

TEST(UtilizationMonitorTest, MirrorsReadingsIntoRegistryGauges) {
  MetricsRegistry metrics;
  int64_t now_ns = 0;
  metrics.SetClock([&now_ns] { return now_ns; });
  UtilizationMonitor monitor;
  monitor.SetMetrics(&metrics);
  monitor.AddResource("fake", [](int64_t) {
    ResourceSample sample;
    sample.utilization = 0.5;
    sample.queue = 7;
    sample.ops = 2;
    sample.bytes = 100;
    return sample;
  });
  monitor.Sample(0);
  now_ns = 1'000'000'000;
  monitor.Sample(now_ns);

  const MetricsRegistry::Snapshot snap = metrics.Snap(now_ns);
  EXPECT_DOUBLE_EQ(snap.gauges.at("util.fake.busy_pct").value, 50.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("util.fake.queue").value, 7.0);
  EXPECT_EQ(snap.counters.at("util.fake.ops"), 4u);
  EXPECT_EQ(snap.counters.at("util.fake.bytes"), 200u);
}

// ------------------------------------------------------ determinism ----

Task<void> EchoN(DatagramSocket* socket, int n) {
  for (int i = 0; i < n; ++i) {
    net::Datagram d = co_await socket->Receive();
    co_await socket->Send(d.source, d.payload);
  }
}

Task<void> PingN(DatagramSocket* socket, sim::Host* host, NetAddress to,
                 int n) {
  const Bytes payload(32, 0x5a);
  for (int i = 0; i < n; ++i) {
    co_await host->SleepFor(Duration::Millis(40));
    co_await socket->Send(to, payload);
    co_await socket->Receive();
  }
}

// One simulated ping/echo run with the full utilization pipeline wired;
// returns every rendered view concatenated, for byte comparison.
std::string UtilizationSnapshotForSeed(uint64_t seed) {
  World world(seed);
  sim::Host* a = world.AddHost("a");
  sim::Host* b = world.AddHost("b");
  UtilizationMonitor monitor;
  monitor.SetBus(&world.bus());
  monitor.SetMetrics(&world.metrics());
  world.WireUtilization(&monitor);
  monitor.Sample(world.now().nanos());

  DatagramSocket ping(&world.network(), a, 1000);
  DatagramSocket echo(&world.network(), b, 2000);
  constexpr int kPings = 20;
  world.executor().Spawn(EchoN(&echo, kPings));
  world.executor().Spawn(
      PingN(&ping, a, NetAddress{world.AddressOf(b), 2000}, kPings));
  for (int step = 0; step < 10; ++step) {
    world.RunFor(Duration::Millis(100));
    monitor.Sample(world.now().nanos());
  }
  return monitor.ToPrometheus() + "\n" + monitor.ToString() + "\n" +
         world.metrics().Snap(world.now().nanos()).ToPrometheus();
}

TEST(UtilizationMonitorTest, SameSeedWorldsRenderByteIdenticalSnapshots) {
  const std::string first = UtilizationSnapshotForSeed(7);
  const std::string second = UtilizationSnapshotForSeed(7);
  EXPECT_EQ(first, second);

  // The run actually exercised the probes: both host CPUs burned
  // simulated syscall time and the network moved packets.
  EXPECT_NE(first.find("circus_util_busy_pct{resource=\"cpu.a\"}"),
            std::string::npos)
      << first;
  EXPECT_NE(first.find("circus_util_busy_pct{resource=\"cpu.b\"}"),
            std::string::npos);
  EXPECT_NE(first.find("circus_util_ops_total{resource=\"net.sim\"}"),
            std::string::npos);
  EXPECT_EQ(first.find("circus_util_ops_total{resource=\"net.sim\"} 0\n"),
            std::string::npos)
      << "network probe saw no traffic";
  // Mirrored registry gauges ride the same exposition.
  EXPECT_NE(first.find("circus_util_cpu_a_busy_pct"), std::string::npos);
}

}  // namespace
}  // namespace circus::obs
