// Section 4.3.6 claims the framework of replicated calls and collators
// "is sufficiently general to express weighted voting" (Gifford 1979).
// This test proves the claim by building a weighted-voting replicated
// file on top of explicit replication: each member stores a
// (version, content) pair and a weight; reads use a custom collator that
// stops as soon as a read quorum of weight has answered and returns the
// highest-versioned copy; writes collect a write quorum before counting
// the update as durable. Quorum intersection then guarantees reads see
// the latest durable write even when some members are stale or down.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/collator.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"
#include "tests/test_util.h"

namespace circus {
namespace {

using core::CallOptions;
using core::ModuleAddress;
using core::ModuleNumber;
using core::Reply;
using core::ReplyStream;
using core::RpcProcess;
using core::ServerCallContext;
using core::Troupe;
using net::World;
using sim::Duration;
using sim::SyscallCostModel;
using sim::Task;

constexpr core::ProcedureNumber kRead = 0;   // () -> (version, content)
constexpr core::ProcedureNumber kWrite = 1;  // (version, content) -> ()

struct Copy {
  uint32_t version = 0;
  std::string content;
};

Bytes EncodeCopy(const Copy& c) {
  marshal::Writer w;
  w.WriteU32(c.version);
  w.WriteString(c.content);
  return w.Take();
}

StatusOr<Copy> DecodeCopy(const Bytes& raw) {
  marshal::Reader r(raw);
  Copy c;
  c.version = r.ReadU32();
  c.content = r.ReadString();
  if (!r.AtEnd()) {
    return Status(ErrorCode::kProtocolError, "bad copy encoding");
  }
  return c;
}

// One representative (replica) of the weighted file.
struct Representative {
  std::unique_ptr<RpcProcess> process;
  ModuleNumber module = 0;
  int weight = 1;
  Copy copy;
};

class WeightedVotingTest : public ::testing::Test {
 protected:
  WeightedVotingTest() : world_(141, SyscallCostModel::Free()) {}

  // Builds representatives with the given weights; total weight defines
  // the quorums.
  void Build(const std::vector<int>& weights) {
    troupe_.id = core::TroupeId{800};
    for (size_t i = 0; i < weights.size(); ++i) {
      auto rep = std::make_unique<Representative>();
      rep->weight = weights[i];
      sim::Host* host = world_.AddHost("rep" + std::to_string(i));
      rep->process =
          std::make_unique<RpcProcess>(&world_.network(), host, 9000);
      rep->module = rep->process->ExportModule("weighted-file");
      Representative* raw = rep.get();
      rep->process->ExportProcedure(
          rep->module, kRead,
          [raw](ServerCallContext&, const Bytes&) -> Task<StatusOr<Bytes>> {
            co_return EncodeCopy(raw->copy);
          });
      rep->process->ExportProcedure(
          rep->module, kWrite,
          [raw](ServerCallContext&,
                const Bytes& args) -> Task<StatusOr<Bytes>> {
            StatusOr<Copy> incoming = DecodeCopy(args);
            if (!incoming.ok()) {
              co_return incoming.status();
            }
            if (incoming->version > raw->copy.version) {
              raw->copy = *incoming;
            }
            co_return Bytes{};
          });
      rep->process->SetTroupeId(troupe_.id);
      troupe_.members.push_back(rep->process->module_address(rep->module));
      weight_of_[rep->process->module_address(rep->module)] = rep->weight;
      reps_.push_back(std::move(rep));
    }
    sim::Host* client_host = world_.AddHost("client");
    client_ = std::make_unique<RpcProcess>(&world_.network(), client_host,
                                           8000);
  }

  int TotalWeight() const {
    int total = 0;
    for (const auto& rep : reps_) {
      total += rep->weight;
    }
    return total;
  }

  // The read collator: stop as soon as `quorum` weight has answered;
  // return the highest-versioned copy among the answers (lazy
  // evaluation, exactly the Section 4.3.6/7.4 pattern).
  core::Collator MakeReadCollator(int quorum) {
    std::map<ModuleAddress, int> weights = weight_of_;
    return [weights, quorum](ReplyStream& stream) -> Task<StatusOr<Bytes>> {
      int weight_heard = 0;
      std::optional<Copy> best;
      while (weight_heard < quorum) {
        std::optional<Reply> r = co_await stream.Next();
        if (!r.has_value()) {
          break;
        }
        if (!r->result.ok()) {
          continue;  // unavailable representative contributes no votes
        }
        StatusOr<Copy> copy = DecodeCopy(*r->result);
        if (!copy.ok()) {
          continue;
        }
        auto w = weights.find(r->member);
        weight_heard += (w == weights.end()) ? 0 : w->second;
        if (!best.has_value() || copy->version > best->version) {
          best = *copy;
        }
      }
      if (weight_heard < quorum) {
        co_return Status(ErrorCode::kUnavailable,
                         "read quorum not reachable");
      }
      co_return EncodeCopy(*best);
    };
  }

  // The write collator: count the weight of members that applied the
  // write; succeed only with a write quorum.
  core::Collator MakeWriteCollator(int quorum) {
    std::map<ModuleAddress, int> weights = weight_of_;
    return [weights, quorum](ReplyStream& stream) -> Task<StatusOr<Bytes>> {
      int weight_applied = 0;
      while (true) {
        std::optional<Reply> r = co_await stream.Next();
        if (!r.has_value()) {
          break;
        }
        if (r->result.ok()) {
          auto w = weights.find(r->member);
          weight_applied += (w == weights.end()) ? 0 : w->second;
          if (weight_applied >= quorum) {
            co_return Bytes{};  // durable; stop waiting (lazy)
          }
        }
      }
      co_return Status(ErrorCode::kUnavailable,
                       "write quorum not reachable");
    };
  }

  StatusOr<Copy> QuorumRead(int quorum) {
    CallOptions opts;
    opts.custom_collator = MakeReadCollator(quorum);
    auto out = std::make_shared<std::optional<StatusOr<Bytes>>>();
    world_.executor().Spawn(
        [](RpcProcess* c, Troupe t, CallOptions o,
           std::shared_ptr<std::optional<StatusOr<Bytes>>> result)
            -> Task<void> {
          result->emplace(
              co_await c->Call(c->NewRootThread(), t, 0, kRead, {}, o));
        }(client_.get(), troupe_, opts, out));
    world_.RunFor(Duration::Seconds(120));
    CIRCUS_CHECK(out->has_value());
    if (!(*out)->ok()) {
      return (*out)->status();
    }
    return DecodeCopy(***out);
  }

  Status QuorumWrite(const Copy& copy, int quorum) {
    CallOptions opts;
    opts.custom_collator = MakeWriteCollator(quorum);
    auto out = std::make_shared<std::optional<StatusOr<Bytes>>>();
    world_.executor().Spawn(
        [](RpcProcess* c, Troupe t, Bytes args, CallOptions o,
           std::shared_ptr<std::optional<StatusOr<Bytes>>> result)
            -> Task<void> {
          result->emplace(co_await c->Call(c->NewRootThread(), t, 0,
                                           kWrite, std::move(args), o));
        }(client_.get(), troupe_, EncodeCopy(copy), opts, out));
    world_.RunFor(Duration::Seconds(120));
    CIRCUS_CHECK(out->has_value());
    return (*out)->status();
  }

  World world_;
  Troupe troupe_;
  std::vector<std::unique_ptr<Representative>> reps_;
  std::map<ModuleAddress, int> weight_of_;
  std::unique_ptr<RpcProcess> client_;
};

TEST_F(WeightedVotingTest, ReadSeesLatestDurableWrite) {
  Build({1, 1, 1});  // total 3; r = w = 2 intersect
  ASSERT_TRUE(QuorumWrite(Copy{1, "v1"}, 2).ok());
  StatusOr<Copy> read = QuorumRead(2);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->version, 1u);
  EXPECT_EQ(read->content, "v1");
}

TEST_F(WeightedVotingTest, StaleMinorityIsOutvoted) {
  Build({1, 1, 1});
  ASSERT_TRUE(QuorumWrite(Copy{1, "old"}, 2).ok());
  // Member 2 sleeps through the second write: make it unreachable by
  // crashing, writing, and restarting it stale.
  reps_[2]->process->host()->Crash();
  ASSERT_TRUE(QuorumWrite(Copy{2, "new"}, 2).ok());
  reps_[2]->process->host()->Restart();
  // Its copy is stale (version 1 at best); any read quorum of 2 must
  // include a version-2 copy, so the read returns "new".
  StatusOr<Copy> read = QuorumRead(2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->version, 2u);
  EXPECT_EQ(read->content, "new");
}

TEST_F(WeightedVotingTest, WeightsConcentrateAuthority) {
  // Gifford's example shape: one heavy representative (weight 2) and two
  // light ones; r = 3 of 4 means every read must touch the heavy copy
  // or both light ones.
  Build({2, 1, 1});
  ASSERT_TRUE(QuorumWrite(Copy{1, "heavy"}, 3).ok());
  // Crash both light members: the heavy one alone (weight 2) cannot
  // satisfy r = 3.
  reps_[1]->process->host()->Crash();
  reps_[2]->process->host()->Crash();
  StatusOr<Copy> read = QuorumRead(3);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kUnavailable);
  // With r = 2 the heavy member suffices.
  StatusOr<Copy> relaxed = QuorumRead(2);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->content, "heavy");
}

TEST_F(WeightedVotingTest, WriteQuorumUnreachableFailsCleanly) {
  Build({1, 1, 1});
  reps_[0]->process->host()->Crash();
  reps_[1]->process->host()->Crash();
  Status write = QuorumWrite(Copy{1, "x"}, 2);
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace circus
