#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/crash.h"
#include "src/sim/executor.h"
#include "src/sim/host.h"
#include "src/sim/notification.h"
#include "src/sim/random.h"
#include "src/sim/syscall.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "tests/test_util.h"

namespace circus::sim {
namespace {

using circus::testing::RunTask;

// ---------------------------------------------------------------- Time --

TEST(TimeTest, DurationArithmetic) {
  Duration a = Duration::Millis(5);
  Duration b = Duration::Micros(500);
  EXPECT_EQ((a + b).nanos(), 5500000);
  EXPECT_EQ((a - b).nanos(), 4500000);
  EXPECT_EQ((a * 3).nanos(), 15000000);
  EXPECT_EQ((a / 5).nanos(), 1000000);
  EXPECT_LT(b, a);
  EXPECT_DOUBLE_EQ(a.ToMillisF(), 5.0);
}

TEST(TimeTest, FractionalMillis) {
  EXPECT_EQ(Duration::MillisF(8.1).nanos(), 8100000);
  EXPECT_EQ(Duration::MillisF(0.4).nanos(), 400000);
}

TEST(TimeTest, TimePointArithmetic) {
  TimePoint t0;
  TimePoint t1 = t0 + Duration::Seconds(2);
  EXPECT_EQ((t1 - t0).nanos(), 2000000000);
  EXPECT_GT(t1, t0);
  EXPECT_EQ((t1 - Duration::Seconds(2)), t0);
}

TEST(TimeTest, ToString) {
  EXPECT_EQ(Duration::Millis(12).ToString(), "12ms");
  EXPECT_EQ(Duration::MillisF(8.1).ToString(), "8.100ms");
}

// ------------------------------------------------------------ Executor --

TEST(ExecutorTest, RunsEventsInTimeOrder) {
  Executor ex;
  std::vector<int> order;
  ex.ScheduleAfter(Duration::Millis(20), [&] { order.push_back(2); });
  ex.ScheduleAfter(Duration::Millis(10), [&] { order.push_back(1); });
  ex.ScheduleAfter(Duration::Millis(30), [&] { order.push_back(3); });
  ex.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ex.now().nanos(), Duration::Millis(30).nanos());
}

TEST(ExecutorTest, EqualTimesRunInSchedulingOrder) {
  Executor ex;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    ex.ScheduleAfter(Duration::Millis(1), [&order, i] {
      order.push_back(i);
    });
  }
  ex.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ExecutorTest, CancelPreventsExecution) {
  Executor ex;
  bool ran = false;
  const uint64_t id =
      ex.ScheduleAfter(Duration::Millis(1), [&] { ran = true; });
  ex.Cancel(id);
  ex.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(ExecutorTest, RunUntilAdvancesClockToDeadline) {
  Executor ex;
  bool ran = false;
  ex.ScheduleAfter(Duration::Millis(100), [&] { ran = true; });
  ex.RunUntil(TimePoint() + Duration::Millis(50));
  EXPECT_FALSE(ran);
  EXPECT_EQ(ex.now().nanos(), Duration::Millis(50).nanos());
  ex.RunUntil(TimePoint() + Duration::Millis(200));
  EXPECT_TRUE(ran);
  EXPECT_EQ(ex.now().nanos(), Duration::Millis(200).nanos());
}

TEST(ExecutorTest, NestedSchedulingFromCallback) {
  Executor ex;
  int hits = 0;
  ex.ScheduleAfter(Duration::Millis(1), [&] {
    ++hits;
    ex.ScheduleAfter(Duration::Millis(1), [&] { ++hits; });
  });
  ex.RunUntilIdle();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(ex.now().nanos(), Duration::Millis(2).nanos());
}

// ---------------------------------------------------------------- Task --

Task<int> Return42() { co_return 42; }

Task<int> AddNested() {
  const int a = co_await Return42();
  const int b = co_await Return42();
  co_return a + b;
}

TEST(TaskTest, ReturnsValue) {
  Executor ex;
  EXPECT_EQ(RunTask(ex, Return42()), 42);
}

TEST(TaskTest, NestedAwaits) {
  Executor ex;
  EXPECT_EQ(RunTask(ex, AddNested()), 84);
}

Task<int> Throws() {
  throw std::runtime_error("boom");
  co_return 0;  // unreachable
}

Task<int> CatchesNested() {
  try {
    co_await Throws();
  } catch (const std::runtime_error& e) {
    co_return 7;
  }
  co_return 0;
}

TEST(TaskTest, ExceptionsPropagateToAwaiter) {
  Executor ex;
  EXPECT_EQ(RunTask(ex, CatchesNested()), 7);
}

Task<int> SleepsViaExecutor(Executor* ex) {
  co_await ex->SleepFor(Duration::Millis(5));
  co_await ex->SleepFor(Duration::Millis(5));
  co_return static_cast<int>(ex->now().nanos() / 1000000);
}

TEST(TaskTest, ExecutorSleepAdvancesVirtualTime) {
  Executor ex;
  EXPECT_EQ(RunTask(ex, SleepsViaExecutor(&ex)), 10);
}

TEST(TaskTest, SpawnCountsLiveTasks) {
  Executor ex;
  ex.Spawn([](Executor* e) -> Task<void> {
    co_await e->SleepFor(Duration::Millis(1));
  }(&ex));
  EXPECT_EQ(ex.live_detached_tasks(), 1);
  ex.RunUntilIdle();
  EXPECT_EQ(ex.live_detached_tasks(), 0);
}

// ---------------------------------------------------------------- Host --

TEST(HostTest, SyscallChargesCpuAndAdvancesTime) {
  Executor ex;
  Host host(&ex, 1, "vax1", SyscallCostModel::Berkeley42Bsd());
  RunTask(ex, [](Host* h) -> Task<void> {
    co_await h->DoSyscall(Syscall::kSendMsg);
    co_await h->DoSyscall(Syscall::kRecvMsg);
    co_await h->Compute(Duration::MillisF(1.5));
  }(&host));
  EXPECT_EQ(host.cpu().count(Syscall::kSendMsg), 1u);
  EXPECT_EQ(host.cpu().count(Syscall::kRecvMsg), 1u);
  EXPECT_EQ(host.cpu().kernel_time().nanos(),
            Duration::MillisF(8.1 + 2.8).nanos());
  EXPECT_EQ(host.cpu().user_time.nanos(), Duration::MillisF(1.5).nanos());
  // Real time advanced by the CPU consumed.
  EXPECT_EQ(ex.now().nanos(), Duration::MillisF(12.4).nanos());
}

TEST(HostTest, CrashWakesSleeperWithHostCrashedError) {
  Executor ex;
  Host host(&ex, 1, "vax1", SyscallCostModel::Free());
  bool crashed_seen = false;
  bool completed = false;
  ex.Spawn([](Host* h, bool* crashed, bool* done) -> Task<void> {
    try {
      co_await h->SleepFor(Duration::Seconds(10));
      *done = true;
    } catch (const HostCrashedError&) {
      *crashed = true;
    }
  }(&host, &crashed_seen, &completed));
  ex.ScheduleAfter(Duration::Millis(5), [&] { host.Crash(); });
  ex.RunUntilIdle();
  EXPECT_TRUE(crashed_seen);
  EXPECT_FALSE(completed);
  EXPECT_FALSE(host.up());
}

TEST(HostTest, CrashReapsDetachedTaskSilently) {
  Executor ex;
  Host host(&ex, 1, "vax1", SyscallCostModel::Free());
  ex.Spawn([](Host* h) -> Task<void> {
    co_await h->SleepFor(Duration::Seconds(100));
  }(&host));
  ex.ScheduleAfter(Duration::Millis(1), [&] { host.Crash(); });
  ex.RunUntilIdle();
  EXPECT_EQ(ex.live_detached_tasks(), 0);
}

TEST(HostTest, WaitingOnDownHostThrowsImmediately) {
  Executor ex;
  Host host(&ex, 1, "vax1", SyscallCostModel::Free());
  host.Crash();
  bool threw = false;
  ex.Spawn([](Host* h, bool* out) -> Task<void> {
    try {
      co_await h->SleepFor(Duration::Millis(1));
    } catch (const HostCrashedError&) {
      *out = true;
    }
  }(&host, &threw));
  ex.RunUntilIdle();
  EXPECT_TRUE(threw);
}

TEST(HostTest, RestartBumpsIncarnation) {
  Executor ex;
  Host host(&ex, 1, "vax1", SyscallCostModel::Free());
  EXPECT_EQ(host.incarnation(), 1u);
  host.Crash();
  host.Restart();
  EXPECT_TRUE(host.up());
  EXPECT_EQ(host.incarnation(), 2u);
}

TEST(HostTest, CrashListenersFireOnce) {
  Executor ex;
  Host host(&ex, 1, "vax1", SyscallCostModel::Free());
  int fires = 0;
  host.AddCrashListener([&] { ++fires; });
  host.Crash();
  host.Crash();  // idempotent
  EXPECT_EQ(fires, 1);
  host.Restart();
  host.Crash();  // listener was consumed
  EXPECT_EQ(fires, 1);
}

TEST(HostTest, ClockSkewShiftsLocalClock) {
  Executor ex;
  Host host(&ex, 1, "vax1", SyscallCostModel::Free());
  host.set_clock_skew(Duration::Millis(7));
  ex.ScheduleAfter(Duration::Millis(10), [] {});
  ex.RunUntilIdle();
  EXPECT_EQ(host.LocalClockNanos(), Duration::Millis(17).nanos());
  // Round trip: the sim time at which the local clock reads a value.
  EXPECT_EQ(host.SimTimeForLocal(Duration::Millis(17).nanos()).nanos(),
            Duration::Millis(10).nanos());
}

TEST(HostTest, ConcurrentCpuChargesSerialize) {
  // Two tasks each burning 5 ms of CPU on one host take 10 ms of real
  // time: a machine has one processor (Section 4.4.1's linearity).
  Executor ex;
  Host host(&ex, 1, "vax1", SyscallCostModel::Free());
  int finished = 0;
  for (int i = 0; i < 2; ++i) {
    ex.Spawn([](Host* h, int* done) -> Task<void> {
      co_await h->Compute(Duration::Millis(5));
      ++*done;
    }(&host, &finished));
  }
  ex.RunUntilIdle();
  EXPECT_EQ(finished, 2);
  EXPECT_EQ(ex.now().nanos(), Duration::Millis(10).nanos());
}

TEST(HostTest, SleepCompletesNormallyWhenNoCrash) {
  Executor ex;
  Host host(&ex, 1, "vax1", SyscallCostModel::Free());
  RunTask(ex, [](Host* h) -> Task<void> {
    co_await h->SleepFor(Duration::Millis(7));
  }(&host));
  EXPECT_EQ(ex.now().nanos(), Duration::Millis(7).nanos());
}

// ------------------------------------------------------------- Channel --

TEST(ChannelTest, SendThenReceive) {
  Executor ex;
  Host host(&ex, 1, "h", SyscallCostModel::Free());
  Channel<int> ch(&host);
  ch.Send(1);
  ch.Send(2);
  const int a = RunTask(ex, ReceiveValue(ch));
  const int b = RunTask(ex, ReceiveValue(ch));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(ChannelTest, ReceiveBlocksUntilSend) {
  Executor ex;
  Host host(&ex, 1, "h", SyscallCostModel::Free());
  Channel<int> ch(&host);
  int got = 0;
  ex.Spawn([](Channel<int>* c, int* out) -> Task<void> {
    *out = co_await ReceiveValue(*c);
  }(&ch, &got));
  ex.RunUntilIdle();
  EXPECT_EQ(got, 0);
  ex.ScheduleAfter(Duration::Millis(3), [&] { ch.Send(99); });
  ex.RunUntilIdle();
  EXPECT_EQ(got, 99);
}

TEST(ChannelTest, MultipleWaitersWakeFifo) {
  Executor ex;
  Host host(&ex, 1, "h", SyscallCostModel::Free());
  Channel<int> ch(&host);
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) {
    ex.Spawn([](Channel<int>* c, std::vector<int>* out) -> Task<void> {
      out->push_back(co_await ReceiveValue(*c));
    }(&ch, &got));
  }
  ex.RunUntilIdle();
  ch.Send(10);
  ch.Send(20);
  ch.Send(30);
  ex.RunUntilIdle();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(ChannelTest, TimeoutReturnsNullopt) {
  Executor ex;
  Host host(&ex, 1, "h", SyscallCostModel::Free());
  Channel<int> ch(&host);
  bool timed_out = false;
  ex.Spawn([](Channel<int>* c, bool* out) -> Task<void> {
    std::optional<int> v =
        co_await c->ReceiveWithTimeout(Duration::Millis(5));
    *out = !v.has_value();
  }(&ch, &timed_out));
  ex.RunUntilIdle();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(ex.now().nanos(), Duration::Millis(5).nanos());
}

TEST(ChannelTest, ValueBeatsTimeout) {
  Executor ex;
  Host host(&ex, 1, "h", SyscallCostModel::Free());
  Channel<int> ch(&host);
  std::optional<int> got;
  ex.Spawn([](Channel<int>* c, std::optional<int>* out) -> Task<void> {
    *out = co_await c->ReceiveWithTimeout(Duration::Millis(50));
  }(&ch, &got));
  ex.ScheduleAfter(Duration::Millis(1), [&] { ch.Send(5); });
  ex.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 5);
}

TEST(ChannelTest, CrashWakesReceiver) {
  Executor ex;
  Host host(&ex, 1, "h", SyscallCostModel::Free());
  Channel<int> ch(&host);
  bool crashed = false;
  ex.Spawn([](Channel<int>* c, bool* out) -> Task<void> {
    try {
      co_await c->Receive();
    } catch (const HostCrashedError&) {
      *out = true;
    }
  }(&ch, &crashed));
  ex.ScheduleAfter(Duration::Millis(1), [&] { host.Crash(); });
  ex.RunUntilIdle();
  EXPECT_TRUE(crashed);
}

TEST(ChannelTest, TryReceiveDoesNotBlock) {
  Executor ex;
  Host host(&ex, 1, "h", SyscallCostModel::Free());
  Channel<int> ch(&host);
  EXPECT_FALSE(ch.TryReceive().has_value());
  ch.Send(1);
  std::optional<int> v = ch.TryReceive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
}

// -------------------------------------------------------- Notification --

TEST(NotificationTest, NotifyWakesAllWaiters) {
  Executor ex;
  Host host(&ex, 1, "h", SyscallCostModel::Free());
  Notification n(&host);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    ex.Spawn([](Notification* note, int* out) -> Task<void> {
      co_await note->Wait();
      ++*out;
    }(&n, &woken));
  }
  ex.RunUntilIdle();
  EXPECT_EQ(woken, 0);
  n.Notify();
  ex.RunUntilIdle();
  EXPECT_EQ(woken, 3);
}

TEST(NotificationTest, WaitAfterNotifyReturnsImmediately) {
  Executor ex;
  Host host(&ex, 1, "h", SyscallCostModel::Free());
  Notification n(&host);
  n.Notify();
  RunTask(ex, [](Notification* note) -> Task<void> {
    co_await note->Wait();
  }(&n));
}

// ------------------------------------------------------------- Random --

TEST(RandomTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, ForkedStreamsDiffer) {
  Rng root(7);
  Rng a = root.Fork();
  Rng b = root.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, ExponentialHasApproximatelyRightMean) {
  Rng rng(42);
  const Duration mean = Duration::Millis(10);
  double sum_ms = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    sum_ms += rng.Exponential(mean).ToMillisF();
  }
  EXPECT_NEAR(sum_ms / kDraws, 10.0, 0.3);
}

TEST(RandomTest, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RandomTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

}  // namespace
}  // namespace circus::sim
