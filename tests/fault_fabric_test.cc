// net::FaultFabric: the fault-injecting decorator at the Fabric seam.
// Covers the property the decorator is built around — seed parity: the
// same seed and the same send sequence produce byte-identical injection
// decisions whether the inner fabric is the simulated Network or the
// real-time UdpFabric — plus the control-command grammar and its error
// paths, and partitions cutting a multi-segment replicated call mid-
// flight (the retransmit machinery must fail the call cleanly, and a
// fresh client must get through once the partition heals).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/core/process.h"
#include "src/net/address.h"
#include "src/net/fault_fabric.h"
#include "src/net/socket.h"
#include "src/net/world.h"
#include "src/rt/runtime.h"
#include "src/sim/task.h"

namespace circus::net {
namespace {

using circus::Bytes;
using circus::ErrorCode;
using core::ModuleNumber;
using core::RpcProcess;
using core::ServerCallContext;
using core::Troupe;
using core::TroupeId;
using sim::Duration;
using sim::Task;

// The plan used by both halves of the parity test: every decision kind
// (drop, duplicate, reorder, jitter) draws from the rng, so a stream
// mismatch anywhere desynchronizes everything after it.
FaultInjectionPlan BusyPlan() {
  FaultInjectionPlan plan;
  plan.drop = 0.25;
  plan.duplicate = 0.2;
  plan.reorder = 0.15;
  plan.jitter = Duration::Millis(2);
  return plan;
}

constexpr int kParitySends = 300;

// Sends `count` datagrams from `a` to `b` through the fault fabric and
// returns the decision log. SendRaw is synchronous, so decisions happen
// in transmit order without running the executor.
std::vector<std::string> DriveSends(FaultFabric* fabric, DatagramSocket* a,
                                    DatagramSocket* b, int count) {
  std::vector<std::string> log;
  fabric->set_decision_log(&log);
  const Bytes payload(64, 0x5A);
  for (int i = 0; i < count; ++i) {
    EXPECT_TRUE(a->SendRaw(b->local_address(), payload).ok());
  }
  fabric->set_decision_log(nullptr);
  return log;
}

TEST(FaultFabricTest, SeedParityAcrossSimAndRtFabrics) {
  constexpr uint64_t kSeed = 99;

  // Simulated inner fabric.
  World world(7, sim::SyscallCostModel::Free());
  FaultFabric sim_fabric(&world.network(), &world.executor(), kSeed);
  sim_fabric.set_plan(BusyPlan());
  sim::Host* sim_a = world.AddHost("a");
  sim::Host* sim_b = world.AddHost("b");
  DatagramSocket sim_sock_a(&sim_fabric, sim_a, 0);
  DatagramSocket sim_sock_b(&sim_fabric, sim_b, 0);
  const std::vector<std::string> sim_log =
      DriveSends(&sim_fabric, &sim_sock_a, &sim_sock_b, kParitySends);

  // Real-time inner fabric, over real loopback sockets.
  rt::Runtime runtime;
  FaultFabric rt_fabric(&runtime.fabric(), &runtime.executor(), kSeed);
  rt_fabric.set_plan(BusyPlan());
  sim::Host* rt_a = runtime.AddHost("a");
  sim::Host* rt_b = runtime.AddHost("b");
  DatagramSocket rt_sock_a(&rt_fabric, rt_a, 0);
  DatagramSocket rt_sock_b(&rt_fabric, rt_b, 0);
  const std::vector<std::string> rt_log =
      DriveSends(&rt_fabric, &rt_sock_a, &rt_sock_b, kParitySends);

  // Same seed, same sends: byte-identical decisions, including the
  // delay draws ("dup delay=1372us" etc.), on both inner fabrics.
  ASSERT_EQ(sim_log.size(), static_cast<size_t>(kParitySends));
  EXPECT_EQ(sim_log, rt_log);
  EXPECT_EQ(sim_fabric.stats().dropped, rt_fabric.stats().dropped);
  EXPECT_EQ(sim_fabric.stats().duplicated, rt_fabric.stats().duplicated);
  EXPECT_EQ(sim_fabric.stats().reordered, rt_fabric.stats().reordered);
  EXPECT_EQ(sim_fabric.stats().transmitted,
            static_cast<uint64_t>(kParitySends));
  // The plan is busy enough that a silent all-forward run would be a
  // bug, not luck.
  EXPECT_GT(sim_fabric.stats().dropped, 0u);
  EXPECT_GT(sim_fabric.stats().duplicated, 0u);
}

TEST(FaultFabricTest, ReseedRestartsTheDecisionStream) {
  World world(7, sim::SyscallCostModel::Free());
  FaultFabric fabric(&world.network(), &world.executor(), 5);
  fabric.set_plan(BusyPlan());
  sim::Host* a = world.AddHost("a");
  sim::Host* b = world.AddHost("b");
  DatagramSocket sock_a(&fabric, a, 0);
  DatagramSocket sock_b(&fabric, b, 0);

  const std::vector<std::string> first =
      DriveSends(&fabric, &sock_a, &sock_b, 100);
  fabric.Reseed(5);
  const std::vector<std::string> second =
      DriveSends(&fabric, &sock_a, &sock_b, 100);
  EXPECT_EQ(first, second);

  fabric.Reseed(6);
  const std::vector<std::string> other =
      DriveSends(&fabric, &sock_a, &sock_b, 100);
  EXPECT_NE(first, other);
}

// ------------------------------------------------- control commands ----

TEST(FaultFabricTest, ApplyCommandRoundTripsEverySetting) {
  World world(1, sim::SyscallCostModel::Free());
  FaultFabric fabric(&world.network(), &world.executor(), 1);

  EXPECT_EQ(*fabric.ApplyCommand("loss 0.5"), "ok");
  EXPECT_DOUBLE_EQ(fabric.plan().drop, 0.5);
  EXPECT_EQ(*fabric.ApplyCommand("dup 0.25"), "ok");
  EXPECT_DOUBLE_EQ(fabric.plan().duplicate, 0.25);
  EXPECT_EQ(*fabric.ApplyCommand("reorder 0.1"), "ok");
  EXPECT_DOUBLE_EQ(fabric.plan().reorder, 0.1);
  EXPECT_EQ(*fabric.ApplyCommand("delay_ms 3"), "ok");
  EXPECT_EQ(fabric.plan().delay, Duration::Millis(3));
  EXPECT_EQ(*fabric.ApplyCommand("jitter_ms 1.5"), "ok");
  EXPECT_EQ(fabric.plan().jitter.nanos(), 1'500'000);
  EXPECT_EQ(*fabric.ApplyCommand("seed 42"), "ok");
  EXPECT_EQ(fabric.seed(), 42u);

  EXPECT_EQ(*fabric.ApplyCommand("partition 127.0.0.1:9001 9002"), "ok");
  EXPECT_TRUE(fabric.partitioned());
  const NetAddress in_island{0x7F000001u, 9001};
  const NetAddress bare_port{0x7F000001u, 9002};
  const NetAddress outside{0x7F000001u, 9003};
  EXPECT_TRUE(fabric.PathBlocked(in_island, outside));
  EXPECT_TRUE(fabric.PathBlocked(outside, bare_port));  // bidirectional
  EXPECT_FALSE(fabric.PathBlocked(in_island, bare_port));  // same island

  const std::string status = *fabric.ApplyCommand("status");
  EXPECT_NE(status.find("partition=["), std::string::npos) << status;

  EXPECT_EQ(*fabric.ApplyCommand("heal"), "ok");
  EXPECT_FALSE(fabric.partitioned());
  EXPECT_DOUBLE_EQ(fabric.plan().drop, 0.5);  // heal keeps the plan

  EXPECT_EQ(*fabric.ApplyCommand("clear"), "ok");
  EXPECT_FALSE(fabric.plan().active());
  EXPECT_FALSE(fabric.partitioned());
}

TEST(FaultFabricTest, ApplyCommandRejectsMalformedInput) {
  World world(1, sim::SyscallCostModel::Free());
  FaultFabric fabric(&world.network(), &world.executor(), 1);

  for (const char* bad :
       {"", "frobnicate", "loss", "loss 1.5", "loss -0.1", "loss abc",
        "dup 2", "reorder x", "delay_ms", "delay_ms -3", "jitter_ms nope",
        "seed", "seed 12junk", "partition", "partition nonsense",
        "partition 127.0.0.1:"}) {
    StatusOr<std::string> reply = fabric.ApplyCommand(bad);
    EXPECT_FALSE(reply.ok()) << "'" << bad << "' was accepted";
    if (!reply.ok()) {
      EXPECT_EQ(reply.status().code(), ErrorCode::kInvalidArgument) << bad;
    }
  }
  // A rejected command must not half-apply.
  EXPECT_FALSE(fabric.plan().active());
  EXPECT_FALSE(fabric.partitioned());
}

TEST(FaultFabricTest, ParseEndpointForms) {
  const std::optional<NetAddress> full =
      FaultFabric::ParseEndpoint("10.1.2.3:9000");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->host, 0x0A010203u);
  EXPECT_EQ(full->port, 9000);
  const std::optional<NetAddress> bare = FaultFabric::ParseEndpoint("8123");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->host, 0x7F000001u);
  EXPECT_EQ(bare->port, 8123);
  EXPECT_FALSE(FaultFabric::ParseEndpoint("").has_value());
  EXPECT_FALSE(FaultFabric::ParseEndpoint("10.1.2:9").has_value());
  EXPECT_FALSE(FaultFabric::ParseEndpoint("1.2.3.4:").has_value());
  EXPECT_FALSE(FaultFabric::ParseEndpoint("1.2.3.4:70000").has_value());
  EXPECT_FALSE(FaultFabric::ParseEndpoint("words").has_value());
}

// ------------------------------------------ faults under the protocol --

std::unique_ptr<RpcProcess> MakeEchoProcess(Fabric* fabric, sim::Host* host,
                                            Port port,
                                            ModuleNumber* module) {
  auto process = std::make_unique<RpcProcess>(fabric, host, port);
  *module = process->ExportModule("echo");
  process->ExportProcedure(
      *module, 0,
      [](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
        co_return Bytes(args);
      });
  return process;
}

Task<void> CallOnce(RpcProcess* client, Troupe troupe, ModuleNumber module,
                    size_t payload_bytes, StatusOr<Bytes>* out, bool* done) {
  const Bytes args(payload_bytes, 0x5A);
  *out = co_await client->Call(client->NewRootThread(), troupe, module, 0,
                               args);
  *done = true;
}

// A partition installed while a multi-segment call message is still in
// flight: the remaining segments and every retransmission are blocked,
// the call fails cleanly, and after heal a fresh client's call (same
// multi-segment size) goes through.
TEST(FaultFabricTest, PartitionDuringInFlightMultiSegmentMessage) {
  World world(5, sim::SyscallCostModel::Free());
  FaultFabric fabric(&world.network(), &world.executor(), 3);

  sim::Host* member_host = world.AddHost("member");
  ModuleNumber module = 0;
  std::unique_ptr<RpcProcess> member =
      MakeEchoProcess(&fabric, member_host, 9100, &module);
  member->SetTroupeId(TroupeId{5001});
  Troupe troupe;
  troupe.id = TroupeId{5001};
  troupe.members.push_back(member->module_address(module));

  sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&fabric, client_host, 9200);

  // 4 KB of arguments: several segments at the ~1.4 KB segment payload
  // ceiling, so the call message genuinely spans datagrams.
  constexpr size_t kBigPayload = 4096;

  // Cut the client off 200 us in — after the first segments left (they
  // transmit immediately) but before anything crosses the 500 us path,
  // so the rest of the exchange hits the partition.
  world.executor().ScheduleAfter(Duration::Micros(200), [&fabric, &client] {
    fabric.PartitionEndpoints({client.process_address()});
  });

  StatusOr<Bytes> result = Status(ErrorCode::kUnavailable, "not run");
  bool done = false;
  client_host->Spawn(
      CallOnce(&client, troupe, module, kBigPayload, &result, &done));
  world.RunFor(Duration::Seconds(30));
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok());
  EXPECT_GT(fabric.stats().blocked_by_partition, 0u);

  // Heal; a fresh client (clean endpoint state, as a new process would
  // have) completes the same multi-segment call.
  fabric.Heal();
  sim::Host* client2_host = world.AddHost("client2");
  RpcProcess client2(&fabric, client2_host, 9201);
  StatusOr<Bytes> healed = Status(ErrorCode::kUnavailable, "not run");
  done = false;
  client2_host->Spawn(
      CallOnce(&client2, troupe, module, kBigPayload, &healed, &done));
  world.RunFor(Duration::Seconds(30));
  ASSERT_TRUE(done);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->size(), kBigPayload);
}

// Injected loss must only slow calls down, never break them: the paired
// message layer's retransmissions absorb a 30% loss plan.
TEST(FaultFabricTest, LossyPlanStillCompletesCallsViaRetransmission) {
  World world(11, sim::SyscallCostModel::Free());
  FaultFabric fabric(&world.network(), &world.executor(), 17);
  FaultInjectionPlan plan;
  plan.drop = 0.3;
  fabric.set_plan(plan);

  sim::Host* member_host = world.AddHost("member");
  ModuleNumber module = 0;
  std::unique_ptr<RpcProcess> member =
      MakeEchoProcess(&fabric, member_host, 9100, &module);
  member->SetTroupeId(TroupeId{5002});
  Troupe troupe;
  troupe.id = TroupeId{5002};
  troupe.members.push_back(member->module_address(module));

  sim::Host* client_host = world.AddHost("client");
  RpcProcess client(&fabric, client_host, 9200);
  for (int i = 0; i < 5; ++i) {
    StatusOr<Bytes> result = Status(ErrorCode::kUnavailable, "not run");
    bool done = false;
    client_host->Spawn(CallOnce(&client, troupe, module, 64, &result, &done));
    world.RunFor(Duration::Seconds(30));
    ASSERT_TRUE(done) << "call " << i;
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_GT(fabric.stats().dropped, 0u);
}

}  // namespace
}  // namespace circus::net
