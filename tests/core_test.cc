#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/collator.h"
#include "src/core/process.h"
#include "src/core/types.h"
#include "src/marshal/marshal.h"
#include "src/net/world.h"
#include "tests/test_util.h"

namespace circus::core {
namespace {

using net::World;
using sim::Duration;
using sim::SyscallCostModel;
using sim::Task;

class CoreTest : public ::testing::Test {
 protected:
  CoreTest() : world_(21, SyscallCostModel::Free()) {}

  struct TroupeSetup {
    Troupe troupe;
    std::vector<std::unique_ptr<RpcProcess>> processes;
    ModuleNumber module = 0;
    std::vector<int> executions;  // per member
  };

  // Builds a troupe of `n` echo servers on fresh hosts. Each member
  // counts its executions. `reply_suffix_per_member` makes members
  // deliberately nondeterministic (for collator tests); `delay_ms` gives
  // each member i a reply delay of delay_ms[i].
  std::unique_ptr<TroupeSetup> MakeEchoTroupe(
      int n, uint64_t troupe_id, RpcOptions opts = {},
      bool reply_suffix_per_member = false,
      std::vector<int> delay_ms = {}) {
    auto setup = std::make_unique<TroupeSetup>();
    setup->executions.resize(n, 0);
    setup->troupe.id = TroupeId{troupe_id};
    for (int i = 0; i < n; ++i) {
      sim::Host* host = world_.AddHost("srv" + std::to_string(i));
      auto process = std::make_unique<RpcProcess>(&world_.network(), host,
                                                  9000, opts);
      const ModuleNumber m = process->ExportModule("echo");
      setup->module = m;
      const int member_index = i;
      const Duration delay =
          delay_ms.empty() ? Duration::Zero()
                           : Duration::Millis(delay_ms[i]);
      int* exec_counter = &setup->executions[i];
      process->ExportProcedure(
          m, 0,
          [member_index, delay, exec_counter, reply_suffix_per_member](
              ServerCallContext& ctx,
              const Bytes& args) -> Task<StatusOr<Bytes>> {
            ++*exec_counter;
            if (delay > Duration::Zero()) {
              co_await ctx.process->host()->SleepFor(delay);
            }
            Bytes out = args;
            if (reply_suffix_per_member) {
              out.push_back(static_cast<uint8_t>('0' + member_index));
            }
            co_return out;
          });
      process->SetTroupeId(setup->troupe.id);
      process->SetClientTroupeResolver(MakeResolver());
      setup->troupe.members.push_back(process->module_address(m));
      setup->processes.push_back(std::move(process));
    }
    directory_[setup->troupe.id] = setup->troupe;
    return setup;
  }

  RpcProcess::TroupeResolver MakeResolver() {
    return [this](TroupeId id) -> Task<StatusOr<Troupe>> {
      auto it = directory_.find(id);
      if (it == directory_.end()) {
        co_return Status(ErrorCode::kNotFound, "unknown troupe");
      }
      co_return it->second;
    };
  }

  std::unique_ptr<RpcProcess> MakeClient(const std::string& name,
                                         RpcOptions opts = {}) {
    sim::Host* host = world_.AddHost(name);
    auto p = std::make_unique<RpcProcess>(&world_.network(), host, 8000,
                                          opts);
    p->SetClientTroupeResolver(MakeResolver());
    return p;
  }

  // Runs a single replicated call to completion and returns the result.
  StatusOr<Bytes> DoCall(RpcProcess* client, const Troupe& troupe,
                         ModuleNumber module, ProcedureNumber proc,
                         Bytes args, CallOptions opts = {},
                         Duration budget = Duration::Seconds(30)) {
    auto result = std::make_shared<std::optional<StatusOr<Bytes>>>();
    world_.executor().Spawn(
        [](RpcProcess* c, Troupe t, ModuleNumber m, ProcedureNumber p,
           Bytes a, CallOptions o,
           std::shared_ptr<std::optional<StatusOr<Bytes>>> out)
            -> Task<void> {
          ThreadId thread = c->NewRootThread();
          out->emplace(co_await c->Call(thread, t, m, p, std::move(a), o));
        }(client, troupe, module, proc, std::move(args), opts, result));
    world_.RunFor(budget);
    if (!result->has_value()) {
      return Status(ErrorCode::kTimeout, "call did not finish in budget");
    }
    return std::move(**result);
  }

  World world_;
  std::map<TroupeId, Troupe> directory_;
};

TEST_F(CoreTest, UnreplicatedCallRoundTrip) {
  auto setup = MakeEchoTroupe(1, 0);
  setup->troupe.id = TroupeId{};  // direct, binding-free call
  auto client = MakeClient("client");
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("hello"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(StringFromBytes(*r), "hello");
  EXPECT_EQ(setup->executions[0], 1);
}

TEST_F(CoreTest, OneToManyExecutesExactlyOnceAtEachMember) {
  auto setup = MakeEchoTroupe(3, 100);
  auto client = MakeClient("client");
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("replicate me"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(StringFromBytes(*r), "replicate me");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(setup->executions[i], 1) << "member " << i;
  }
}

TEST_F(CoreTest, ExactlyOnceSurvivesDuplicatedNetwork) {
  net::FaultPlan plan;
  plan.duplicate_probability = 0.5;
  world_.network().set_default_fault_plan(plan);
  auto setup = MakeEchoTroupe(3, 101);
  auto client = MakeClient("client");
  for (int call = 0; call < 5; ++call) {
    StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module,
                               0, BytesFromString("dup"));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(setup->executions[i], 5) << "member " << i;
  }
}

TEST_F(CoreTest, ExactlyOnceSurvivesLossyNetwork) {
  world_.network().set_default_fault_plan(net::FaultPlan::Lossy(0.2));
  auto setup = MakeEchoTroupe(3, 102);
  auto client = MakeClient("client");
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("lossy"), {},
                             Duration::Seconds(120));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(setup->executions[i], 1) << "member " << i;
  }
}

TEST_F(CoreTest, UnanimousCollatorDetectsDisagreement) {
  auto setup = MakeEchoTroupe(3, 103, {}, /*reply_suffix_per_member=*/true);
  auto client = MakeClient("client");
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDisagreement);
}

TEST_F(CoreTest, FirstComeCollatorTakesFastestMember) {
  auto setup = MakeEchoTroupe(3, 104, {}, /*reply_suffix_per_member=*/true,
                              /*delay_ms=*/{300, 5, 100});
  auto client = MakeClient("client");
  CallOptions opts;
  opts.collation = Collation::kFirstCome;
  const sim::TimePoint start = world_.now();
  std::string value;
  double elapsed_ms = -1;
  world_.executor().Spawn(
      [](RpcProcess* c, Troupe t, ModuleNumber m, CallOptions o,
         sim::TimePoint t0, std::string* out,
         double* out_elapsed) -> Task<void> {
        ThreadId thread = c->NewRootThread();
        StatusOr<Bytes> r =
            co_await c->Call(thread, t, m, 0, BytesFromString("x"), o);
        CIRCUS_CHECK(r.ok());
        *out = StringFromBytes(*r);
        *out_elapsed = (c->host()->executor().now() - t0).ToMillisF();
      }(client.get(), setup->troupe, setup->module, opts, start, &value,
        &elapsed_ms));
  world_.RunFor(Duration::Seconds(30));
  // Member 1 (5ms) wins; the call does not wait for the 300ms member.
  EXPECT_EQ(value, "x1");
  EXPECT_GE(elapsed_ms, 0.0);
  EXPECT_LT(elapsed_ms, 290.0);
}

TEST_F(CoreTest, MajorityCollatorOutvotesOneBadMember) {
  // Members 0 and 2 reply identically; member 1 appends its index.
  auto setup = MakeEchoTroupe(3, 105);
  auto client = MakeClient("client");
  setup->processes[1]->ExportProcedure(
      setup->module, 0,
      [](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
        Bytes out = args;
        out.push_back('!');
        co_return out;  // the dissenting replica
      });
  CallOptions opts;
  opts.collation = Collation::kMajority;
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("vote"), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(StringFromBytes(*r), "vote");
}

TEST_F(CoreTest, MajorityCollatorFailsWhenAllDisagree) {
  auto setup = MakeEchoTroupe(3, 106, {}, /*reply_suffix_per_member=*/true);
  auto client = MakeClient("client");
  CallOptions opts;
  opts.collation = Collation::kMajority;
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("v"), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNoMajority);
}

TEST_F(CoreTest, CustomCollatorAveragesReplies) {
  // Explicit replication (Section 7.4): an application-specific collator
  // averaging a value each member reports, e.g. for clock
  // synchronization algorithms.
  auto setup = MakeEchoTroupe(3, 107);
  for (int i = 0; i < 3; ++i) {
    const int32_t reading = 100 + 10 * i;  // 100, 110, 120
    setup->processes[i]->ExportProcedure(
        setup->module, 1,
        [reading](ServerCallContext&,
                  const Bytes&) -> Task<StatusOr<Bytes>> {
          marshal::Writer w;
          w.WriteI32(reading);
          co_return w.Take();
        });
  }
  auto client = MakeClient("client");
  CallOptions opts;
  opts.custom_collator =
      [](ReplyStream& stream) -> Task<StatusOr<Bytes>> {
    int64_t sum = 0;
    int count = 0;
    while (true) {
      std::optional<Reply> r = co_await stream.Next();
      if (!r.has_value()) {
        break;
      }
      if (!r->result.ok()) {
        continue;
      }
      marshal::Reader reader(*r->result);
      sum += reader.ReadI32();
      ++count;
    }
    if (count == 0) {
      co_return Status(ErrorCode::kUnavailable, "no readings");
    }
    marshal::Writer w;
    w.WriteI32(static_cast<int32_t>(sum / count));
    co_return w.Take();
  };
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 1,
                             {}, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  marshal::Reader reader(*r);
  EXPECT_EQ(reader.ReadI32(), 110);
}

TEST_F(CoreTest, CallSucceedsWhenOneMemberCrashes) {
  auto setup = MakeEchoTroupe(3, 108);
  auto client = MakeClient("client");
  setup->processes[2]->host()->Crash();
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("resilient"), {},
                             Duration::Seconds(120));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(StringFromBytes(*r), "resilient");
  EXPECT_EQ(setup->executions[0], 1);
  EXPECT_EQ(setup->executions[1], 1);
  EXPECT_EQ(setup->executions[2], 0);
}

TEST_F(CoreTest, CallFailsWhenAllMembersCrash) {
  auto setup = MakeEchoTroupe(2, 109);
  auto client = MakeClient("client");
  setup->processes[0]->host()->Crash();
  setup->processes[1]->host()->Crash();
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("doomed"), {},
                             Duration::Seconds(120));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
}

TEST_F(CoreTest, StaleBindingRejected) {
  auto setup = MakeEchoTroupe(2, 110);
  auto client = MakeClient("client");
  Troupe stale = setup->troupe;
  stale.id = TroupeId{9999};  // wrong incarnation
  StatusOr<Bytes> r = DoCall(client.get(), stale, setup->module, 0,
                             BytesFromString("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kStaleBinding);
  EXPECT_EQ(setup->executions[0], 0);
  EXPECT_EQ(setup->executions[1], 0);
}

TEST_F(CoreTest, UnknownProcedureReturnsNotFound) {
  auto setup = MakeEchoTroupe(1, 111);
  auto client = MakeClient("client");
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 42,
                             BytesFromString("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST_F(CoreTest, RemoteHandlerErrorPropagates) {
  auto setup = MakeEchoTroupe(1, 112);
  setup->processes[0]->ExportProcedure(
      setup->module, 2,
      [](ServerCallContext&, const Bytes&) -> Task<StatusOr<Bytes>> {
        co_return Status(ErrorCode::kInvalidArgument, "bad temperature");
      });
  auto client = MakeClient("client");
  StatusOr<Bytes> r =
      DoCall(client.get(), setup->troupe, setup->module, 2, {});
  ASSERT_FALSE(r.ok());
  // The handler's error code and message travel through the return
  // message unchanged.
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("bad temperature"),
            std::string::npos);
}

// ----------------------------------------------------- many-to-one -------

// Builds a replicated client troupe: n processes sharing a troupe ID.
struct ClientTroupe {
  std::vector<std::unique_ptr<RpcProcess>> processes;
  Troupe troupe;
};

TEST_F(CoreTest, ManyToOneExecutesOnceAndAnswersAllMembers) {
  auto server = MakeEchoTroupe(1, 120);
  // Three-member client troupe.
  ClientTroupe clients;
  clients.troupe.id = TroupeId{121};
  for (int i = 0; i < 3; ++i) {
    sim::Host* host = world_.AddHost("cli" + std::to_string(i));
    auto p = std::make_unique<RpcProcess>(&world_.network(), host, 8000);
    p->SetTroupeId(clients.troupe.id);
    p->SetClientTroupeResolver(MakeResolver());
    const ModuleNumber m = p->ExportModule("client-module");
    clients.troupe.members.push_back(p->module_address(m));
    clients.processes.push_back(std::move(p));
  }
  directory_[clients.troupe.id] = clients.troupe;

  // All members of the client troupe act for the same logical thread and
  // make the same call (deterministic replicas).
  const ThreadId thread{7, 7, 7};
  std::vector<std::string> replies(3);
  for (int i = 0; i < 3; ++i) {
    world_.executor().Spawn(
        [](RpcProcess* p, ThreadId t, Troupe srv, ModuleNumber m,
           std::string* out) -> Task<void> {
          StatusOr<Bytes> r =
              co_await p->Call(t, srv, m, 0, BytesFromString("shared"));
          CIRCUS_CHECK(r.ok());
          *out = StringFromBytes(*r);
        }(clients.processes[i].get(), thread, server->troupe,
          server->module, &replies[i]));
  }
  world_.RunFor(Duration::Seconds(10));
  // The server performed the procedure exactly once even though three
  // call messages arrived (Section 4.3.2).
  EXPECT_EQ(server->executions[0], 1);
  EXPECT_EQ(server->processes[0]->stats().call_messages_received, 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(replies[i], "shared") << "client member " << i;
  }
}

TEST_F(CoreTest, ManyToOneDetectsArgumentDisagreement) {
  auto server = MakeEchoTroupe(1, 122);
  ClientTroupe clients;
  clients.troupe.id = TroupeId{123};
  for (int i = 0; i < 2; ++i) {
    sim::Host* host = world_.AddHost("cli" + std::to_string(i));
    auto p = std::make_unique<RpcProcess>(&world_.network(), host, 8000);
    p->SetTroupeId(clients.troupe.id);
    p->SetClientTroupeResolver(MakeResolver());
    const ModuleNumber m = p->ExportModule("client-module");
    clients.troupe.members.push_back(p->module_address(m));
    clients.processes.push_back(std::move(p));
  }
  directory_[clients.troupe.id] = clients.troupe;
  const ThreadId thread{7, 7, 9};
  std::vector<Status> statuses(2);
  for (int i = 0; i < 2; ++i) {
    // The "replicas" disagree: member 0 sends "A", member 1 sends "B" --
    // a determinism violation the unanimous argument collation catches.
    const std::string arg = (i == 0) ? "A" : "B";
    world_.executor().Spawn(
        [](RpcProcess* p, ThreadId t, Troupe srv, ModuleNumber m,
           std::string a, Status* out) -> Task<void> {
          StatusOr<Bytes> r =
              co_await p->Call(t, srv, m, 0, BytesFromString(a));
          *out = r.status();
        }(clients.processes[i].get(), thread, server->troupe,
          server->module, arg, &statuses[i]));
  }
  world_.RunFor(Duration::Seconds(10));
  EXPECT_EQ(server->executions[0], 0);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(statuses[i].code(), ErrorCode::kDisagreement)
        << statuses[i].ToString();
  }
  EXPECT_EQ(server->processes[0]->stats().argument_disagreements, 1u);
}

TEST_F(CoreTest, ManyToManyNoIntraTroupeCommunication) {
  // 2-member client troupe calls 2-member server troupe; assert that no
  // packet ever flows between members of the same troupe
  // (Section 4.3.3's distinguishing property).
  auto server = MakeEchoTroupe(2, 130);
  ClientTroupe clients;
  clients.troupe.id = TroupeId{131};
  for (int i = 0; i < 2; ++i) {
    sim::Host* host = world_.AddHost("cli" + std::to_string(i));
    auto p = std::make_unique<RpcProcess>(&world_.network(), host, 8000);
    p->SetTroupeId(clients.troupe.id);
    p->SetClientTroupeResolver(MakeResolver());
    const ModuleNumber m = p->ExportModule("client-module");
    clients.troupe.members.push_back(p->module_address(m));
    clients.processes.push_back(std::move(p));
  }
  directory_[clients.troupe.id] = clients.troupe;

  std::set<net::HostAddress> client_hosts;
  std::set<net::HostAddress> server_hosts;
  for (const auto& m : clients.troupe.members) {
    client_hosts.insert(m.process.host);
  }
  for (const auto& m : server->troupe.members) {
    server_hosts.insert(m.process.host);
  }
  int intra_troupe_packets = 0;
  world_.network().SetPacketObserver([&](const net::Datagram& d) {
    const bool both_client = client_hosts.contains(d.source.host) &&
                             client_hosts.contains(d.destination.host);
    const bool both_server = server_hosts.contains(d.source.host) &&
                             server_hosts.contains(d.destination.host);
    if (both_client || both_server) {
      ++intra_troupe_packets;
    }
  });

  const ThreadId thread{7, 7, 11};
  int completions = 0;
  for (int i = 0; i < 2; ++i) {
    world_.executor().Spawn(
        [](RpcProcess* p, ThreadId t, Troupe srv, ModuleNumber m,
           int* done) -> Task<void> {
          StatusOr<Bytes> r =
              co_await p->Call(t, srv, m, 0, BytesFromString("mm"));
          CIRCUS_CHECK(r.ok());
          ++*done;
        }(clients.processes[i].get(), thread, server->troupe,
          server->module, &completions));
  }
  world_.RunFor(Duration::Seconds(10));
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(server->executions[0], 1);
  EXPECT_EQ(server->executions[1], 1);
  EXPECT_EQ(intra_troupe_packets, 0);
}

TEST_F(CoreTest, LateClientMemberServedFromBufferedResult) {
  // First-come argument collation (Section 4.3.4): the server executes
  // on the first member's call message; a slow member's call arriving
  // after execution is answered from the buffered return message, so the
  // execution appears instantaneous to it.
  RpcOptions server_opts;
  server_opts.argument_collation = Collation::kFirstCome;
  sim::Host* server_host = world_.AddHost("server");
  RpcProcess server(&world_.network(), server_host, 9000, server_opts);
  server.SetClientTroupeResolver(MakeResolver());
  const ModuleNumber module = server.ExportModule("svc");
  int executions = 0;
  server.ExportProcedure(
      module, 0,
      [&executions](ServerCallContext&,
                    const Bytes& args) -> Task<StatusOr<Bytes>> {
        ++executions;
        co_return args;
      });
  Troupe server_troupe;
  server_troupe.id = TroupeId{195};
  server.SetTroupeId(server_troupe.id);
  server_troupe.members.push_back(server.module_address(module));
  directory_[server_troupe.id] = server_troupe;

  Troupe client_troupe;
  client_troupe.id = TroupeId{196};
  std::vector<std::unique_ptr<RpcProcess>> clients;
  for (int i = 0; i < 2; ++i) {
    sim::Host* host = world_.AddHost("cli" + std::to_string(i));
    auto p = std::make_unique<RpcProcess>(&world_.network(), host, 8000);
    p->SetTroupeId(client_troupe.id);
    p->SetClientTroupeResolver(MakeResolver());
    const ModuleNumber m = p->ExportModule("cli");
    client_troupe.members.push_back(p->module_address(m));
    clients.push_back(std::move(p));
  }
  directory_[client_troupe.id] = client_troupe;

  const ThreadId thread{8, 8, 8};
  std::vector<double> completion_ms(2, -1);
  for (int i = 0; i < 2; ++i) {
    const Duration start_delay =
        i == 0 ? Duration::Zero() : Duration::Seconds(1);  // the laggard
    world_.executor().Spawn(
        [](RpcProcess* p, ThreadId t, Troupe srv, ModuleNumber m,
           Duration delay, double* out) -> Task<void> {
          co_await p->host()->SleepFor(delay);
          const sim::TimePoint t0 = p->host()->executor().now();
          StatusOr<Bytes> r =
              co_await p->Call(t, srv, m, 0, BytesFromString("fc"));
          CIRCUS_CHECK(r.ok());
          *out = (p->host()->executor().now() - t0).ToMillisF();
        }(clients[i].get(), thread, server_troupe, module, start_delay,
          &completion_ms[i]));
  }
  world_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(executions, 1);  // exactly-once despite two call messages
  EXPECT_EQ(server.stats().late_members_served, 1u);
  // The laggard's call completed immediately (buffered result), without
  // waiting for a fresh execution.
  EXPECT_GE(completion_ms[1], 0.0);
  EXPECT_LT(completion_ms[1], 100.0);
}

TEST_F(CoreTest, MulticastFallbackRecoversLostBlast) {
  // Section 4.3.7: the one multicast transmission is unreliable; a
  // member that missed it is reached by the reliable point-to-point
  // fallback, and the duplicate-suppression machinery keeps execution
  // exactly-once if both copies arrive.
  RpcOptions opts_with_fast_fallback;
  opts_with_fast_fallback.multicast_fallback = Duration::Millis(300);
  auto setup = MakeEchoTroupe(3, 197, opts_with_fast_fallback);
  const net::HostAddress group = net::MakeMulticastAddress(6);
  for (auto& p : setup->processes) {
    p->JoinMulticastGroup(group);
  }
  auto client = MakeClient("client", opts_with_fast_fallback);
  // Member 1 loses every multicast delivery but keeps unicast: model by
  // dropping packets from the client to member 1 briefly (the blast),
  // then healing before the fallback fires.
  net::FaultPlan lossy;
  lossy.loss_probability = 1.0;
  world_.network().SetPairFaultPlan(client->host()->id(),
                                    setup->processes[1]->host()->id(),
                                    lossy);
  world_.executor().ScheduleAfter(Duration::Millis(100), [&] {
    world_.network().ClearPairFaultPlans();
  });
  CallOptions opts;
  opts.multicast_group = group;
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("mf"), opts,
                             Duration::Seconds(60));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(setup->executions[i], 1) << "member " << i;
  }
  // The fallback actually sent something beyond the single blast.
  EXPECT_GT(client->endpoint().counters().data_segments_sent, 1u);
}

TEST_F(CoreTest, ThreadIdPropagatesThroughNestedCalls) {
  // client -> A -> B: B's handler must see the root thread ID
  // (Section 3.4.1).
  auto backend = MakeEchoTroupe(1, 140);
  ThreadId seen_at_backend{};
  backend->processes[0]->ExportProcedure(
      backend->module, 3,
      [&seen_at_backend](ServerCallContext& ctx,
                         const Bytes& args) -> Task<StatusOr<Bytes>> {
        seen_at_backend = ctx.thread;
        co_return args;
      });
  auto middle = MakeEchoTroupe(1, 141);
  const Troupe backend_troupe = backend->troupe;
  const ModuleNumber backend_module = backend->module;
  middle->processes[0]->ExportProcedure(
      middle->module, 3,
      [backend_troupe, backend_module](
          ServerCallContext& ctx,
          const Bytes& args) -> Task<StatusOr<Bytes>> {
        co_return co_await ctx.Call(backend_troupe, backend_module, 3,
                                    args);
      });
  auto client = MakeClient("client");
  ThreadId root{};
  bool done = false;
  world_.executor().Spawn(
      [](RpcProcess* c, Troupe mid, ModuleNumber m, ThreadId* out_thread,
         bool* out_done) -> Task<void> {
        ThreadId t = c->NewRootThread();
        *out_thread = t;
        StatusOr<Bytes> r =
            co_await c->Call(t, mid, m, 3, BytesFromString("nested"));
        CIRCUS_CHECK(r.ok());
        *out_done = true;
      }(client.get(), middle->troupe, middle->module, &root, &done));
  world_.RunFor(Duration::Seconds(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(seen_at_backend, root);
}

TEST_F(CoreTest, RuntimeModulePingAndSetTroupeId) {
  auto setup = MakeEchoTroupe(1, 150);
  auto client = MakeClient("client");
  // Ping.
  StatusOr<Bytes> ping = DoCall(client.get(), setup->troupe,
                                kRuntimeModule, kPing, {});
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  // set_troupe_id changes the member's notion of its troupe.
  marshal::Writer w;
  w.WriteU64(777);
  StatusOr<Bytes> set = DoCall(client.get(), setup->troupe, kRuntimeModule,
                               kSetTroupeId, w.Take());
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(setup->processes[0]->troupe_id().value, 777u);
}

TEST_F(CoreTest, GetStateTransfersModuleState) {
  auto setup = MakeEchoTroupe(1, 151);
  setup->processes[0]->SetStateProvider(setup->module, [] {
    marshal::Writer w;
    w.WriteString("the module state");
    return w.Take();
  });
  auto client = MakeClient("client");
  marshal::Writer w;
  w.WriteU16(setup->module);
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, kRuntimeModule,
                             kGetState, w.Take());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  marshal::Reader reader(*r);
  EXPECT_EQ(reader.ReadString(), "the module state");
}

TEST_F(CoreTest, MulticastCallReachesWholeTroupe) {
  auto setup = MakeEchoTroupe(3, 160);
  const net::HostAddress group = net::MakeMulticastAddress(5);
  for (auto& p : setup->processes) {
    p->JoinMulticastGroup(group);
  }
  auto client = MakeClient("client");
  CallOptions opts;
  opts.multicast_group = group;
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("mc"), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(setup->executions[i], 1);
  }
  // The client transmitted exactly one data segment for the whole
  // one-to-many call (1 + n messages rather than n + n,
  // Section 4.3.3/4.3.7); everything else is returns and ack traffic.
  EXPECT_EQ(client->endpoint().counters().data_segments_sent, 1u);
}

TEST_F(CoreTest, ServerSideArgumentGeneratorAveragesClientInputs) {
  // Figure 7.7: a temperature controller whose set_temperature procedure
  // averages the (deliberately different) readings supplied by the
  // members of the client troupe, via the server-side argument
  // generator (ctx.collected_arguments) with the unanimity check off.
  RpcOptions server_opts;
  server_opts.argument_unanimity_check = false;
  sim::Host* server_host = world_.AddHost("controller");
  RpcProcess controller(&world_.network(), server_host, 9000, server_opts);
  controller.SetClientTroupeResolver(MakeResolver());
  const ModuleNumber module = controller.ExportModule("controller");
  double average_set = 0;
  controller.ExportProcedure(
      module, 0,
      [&average_set](ServerCallContext& ctx,
                     const Bytes&) -> Task<StatusOr<Bytes>> {
        double sum = 0;
        int n = 0;
        // for temperature in arguments() do ... (Figure 7.7)
        for (const auto& [peer, arg] : ctx.collected_arguments) {
          marshal::Reader r(arg);
          sum += r.ReadF64();
          ++n;
        }
        average_set = sum / n;
        co_return Bytes{};
      });
  Troupe controller_troupe;
  controller_troupe.id = TroupeId{190};
  controller.SetTroupeId(controller_troupe.id);
  controller_troupe.members.push_back(controller.module_address(module));
  directory_[controller_troupe.id] = controller_troupe;

  // A 3-member client troupe whose members each read a slightly
  // different local sensor.
  Troupe client_troupe;
  client_troupe.id = TroupeId{191};
  std::vector<std::unique_ptr<RpcProcess>> clients;
  for (int i = 0; i < 3; ++i) {
    sim::Host* host = world_.AddHost("sensor" + std::to_string(i));
    auto p = std::make_unique<RpcProcess>(&world_.network(), host, 8000);
    p->SetTroupeId(client_troupe.id);
    p->SetClientTroupeResolver(MakeResolver());
    const ModuleNumber m = p->ExportModule("sensor");
    client_troupe.members.push_back(p->module_address(m));
    clients.push_back(std::move(p));
  }
  directory_[client_troupe.id] = client_troupe;

  const ThreadId thread{9, 9, 9};
  const double readings[] = {19.0, 21.0, 23.0};
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    world_.executor().Spawn(
        [](RpcProcess* p, ThreadId t, Troupe srv, ModuleNumber m,
           double reading, int* out) -> Task<void> {
          marshal::Writer w;
          w.WriteF64(reading);
          StatusOr<Bytes> r = co_await p->Call(t, srv, m, 0, w.Take());
          CIRCUS_CHECK(r.ok());
          ++*out;
        }(clients[i].get(), thread, controller_troupe, module, readings[i],
          &done));
  }
  world_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(average_set, 21.0);  // (19 + 21 + 23) / 3
}

TEST_F(CoreTest, TypedCollatorGivesTypeSafeExplicitReplication) {
  // Section 7.4's type-safe generator, through TypedReplyStream: a
  // collator written against decoded int32 values, returning their
  // minimum.
  auto setup = MakeEchoTroupe(3, 192);
  for (int i = 0; i < 3; ++i) {
    const int32_t load = 10 * (i + 1);  // member i reports load 10(i+1)
    setup->processes[i]->ExportProcedure(
        setup->module, 5,
        [load](ServerCallContext&, const Bytes&) -> Task<StatusOr<Bytes>> {
          marshal::Writer w;
          w.WriteI32(load);
          co_return w.Take();
        });
  }
  auto client = MakeClient("client");
  CallOptions opts;
  opts.custom_collator = MakeTypedCollator<int32_t>(
      [](const Bytes& raw) -> StatusOr<int32_t> {
        marshal::Reader r(raw);
        const int32_t v = r.ReadI32();
        if (!r.AtEnd()) {
          return Status(ErrorCode::kProtocolError, "bad i32");
        }
        return v;
      },
      [](const int32_t& v) {
        marshal::Writer w;
        w.WriteI32(v);
        return w.Take();
      },
      [](TypedReplyStream<int32_t>& stream)
          -> Task<StatusOr<int32_t>> {
        std::optional<int32_t> minimum;
        while (true) {
          std::optional<TypedReply<int32_t>> r = co_await stream.Next();
          if (!r.has_value()) {
            break;
          }
          if (!r->result.ok()) {
            continue;
          }
          if (!minimum.has_value() || *r->result < *minimum) {
            minimum = *r->result;
          }
        }
        if (!minimum.has_value()) {
          co_return Status(ErrorCode::kUnavailable, "no loads");
        }
        co_return *minimum;
      });
  StatusOr<Bytes> r =
      DoCall(client.get(), setup->troupe, setup->module, 5, {}, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  marshal::Reader reader(*r);
  EXPECT_EQ(reader.ReadI32(), 10);  // the least-loaded member
}

TEST_F(CoreTest, WatchdogConfirmsAgreement) {
  // The watchdog scheme (Section 4.3.4): the call returns with the first
  // reply; the watchdog later confirms the stragglers matched.
  auto setup = MakeEchoTroupe(3, 180, {}, /*reply_suffix_per_member=*/false,
                              /*delay_ms=*/{200, 5, 100});
  auto client = MakeClient("client");
  auto verdict = std::make_shared<std::optional<Status>>();
  CallOptions opts;
  opts.watchdog = [verdict](const Status& s) { verdict->emplace(s); };
  std::string value;
  double elapsed_ms = -1;
  const sim::TimePoint start = world_.now();
  world_.executor().Spawn(
      [](RpcProcess* c, Troupe t, ModuleNumber m, CallOptions o,
         sim::TimePoint t0, std::string* out, double* out_ms) -> Task<void> {
        StatusOr<Bytes> r = co_await c->Call(c->NewRootThread(), t, m, 0,
                                             BytesFromString("w"), o);
        CIRCUS_CHECK(r.ok());
        *out = StringFromBytes(*r);
        *out_ms = (c->host()->executor().now() - t0).ToMillisF();
      }(client.get(), setup->troupe, setup->module, opts, start, &value,
        &elapsed_ms));
  world_.RunFor(Duration::Seconds(10));
  EXPECT_EQ(value, "w");
  // Returned at the fastest member's pace...
  EXPECT_LT(elapsed_ms, 190.0);
  // ...and the watchdog eventually confirmed agreement.
  ASSERT_TRUE(verdict->has_value());
  EXPECT_TRUE((*verdict)->ok()) << (*verdict)->ToString();
}

TEST_F(CoreTest, WatchdogDetectsLateDisagreement) {
  // The slowest member returns a different value: the main computation
  // already proceeded, but the watchdog reports the inconsistency so
  // the application can abort (Section 4.3.4).
  auto setup = MakeEchoTroupe(3, 181, {}, /*reply_suffix_per_member=*/false,
                              /*delay_ms=*/{300, 5, 50});
  setup->processes[0]->ExportProcedure(
      setup->module, 0,
      [](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
        Bytes out = args;
        out.push_back('?');  // the divergent (slow) replica
        co_return out;
      });
  auto client = MakeClient("client");
  auto verdict = std::make_shared<std::optional<Status>>();
  CallOptions opts;
  opts.watchdog = [verdict](const Status& s) { verdict->emplace(s); };
  world_.executor().Spawn(
      [](RpcProcess* c, Troupe t, ModuleNumber m, CallOptions o) -> Task<void> {
        StatusOr<Bytes> r = co_await c->Call(c->NewRootThread(), t, m, 0,
                                             BytesFromString("x"), o);
        CIRCUS_CHECK(r.ok());
      }(client.get(), setup->troupe, setup->module, opts));
  world_.RunFor(Duration::Seconds(10));
  ASSERT_TRUE(verdict->has_value());
  EXPECT_EQ((*verdict)->code(), ErrorCode::kDisagreement);
}

TEST_F(CoreTest, WatchdogIgnoresCrashedMembers) {
  auto setup = MakeEchoTroupe(3, 182);
  setup->processes[2]->host()->Crash();
  auto client = MakeClient("client");
  auto verdict = std::make_shared<std::optional<Status>>();
  CallOptions opts;
  opts.watchdog = [verdict](const Status& s) { verdict->emplace(s); };
  world_.executor().Spawn(
      [](RpcProcess* c, Troupe t, ModuleNumber m, CallOptions o) -> Task<void> {
        StatusOr<Bytes> r = co_await c->Call(c->NewRootThread(), t, m, 0,
                                             BytesFromString("x"), o);
        CIRCUS_CHECK(r.ok());
      }(client.get(), setup->troupe, setup->module, opts));
  world_.RunFor(Duration::Seconds(60));
  ASSERT_TRUE(verdict->has_value());
  EXPECT_TRUE((*verdict)->ok());  // a crash is masked, not a disagreement
}

TEST_F(CoreTest, QuorumPreventsMinorityPartitionDivergence) {
  // Section 4.3.5: requiring a majority of the expected replies keeps a
  // client that is partitioned off with a minority of the troupe from
  // proceeding.
  auto setup = MakeEchoTroupe(3, 183);
  auto client = MakeClient("client");
  // Partition: the client and member 0 on one side; members 1, 2 on the
  // other.
  world_.network().Partition(
      {client->host()->id(), setup->processes[0]->host()->id()});
  CallOptions opts;
  opts.minimum_successes = 2;  // majority of 3
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("split"), opts,
                             Duration::Seconds(120));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
  // Only the same-side member executed; after the partition heals the
  // quorum call succeeds.
  world_.network().HealPartitions();
  StatusOr<Bytes> r2 = DoCall(client.get(), setup->troupe, setup->module,
                              0, BytesFromString("joined"), opts,
                              Duration::Seconds(120));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
}

TEST_F(CoreTest, CallStatisticsAreTracked) {
  auto setup = MakeEchoTroupe(2, 170);
  auto client = MakeClient("client");
  StatusOr<Bytes> r = DoCall(client.get(), setup->troupe, setup->module, 0,
                             BytesFromString("s"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(client->stats().calls_made, 1u);
  EXPECT_EQ(setup->processes[0]->stats().calls_executed, 1u);
}

}  // namespace
}  // namespace circus::core
