#!/bin/sh
# Runs every table/figure bench in --quick mode with --json export and
# validates the emitted BENCH_<name>.json files against the shared
# report schema: a top-level object with "bench" (string), "quick"
# (bool), "notes" (object) and "tables" (object of arrays of row
# objects), every table non-empty and every row a flat object of
# scalars. Catches a bench that stops exporting, emits malformed JSON,
# or silently drops a table.
#
# Usage: scripts/check_bench.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench_dir="$build_dir/bench"

if [ ! -d "$bench_dir" ]; then
  echo "check_bench: no bench dir at $bench_dir (build first)" >&2
  exit 1
fi

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT
cd "$out_dir"

failures=0
for b in "$bench_dir"/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  if ! "$b" --quick --json >"$name.out" 2>&1; then
    echo "FAIL: $name exited nonzero"
    sed 's/^/  /' "$name.out"
    failures=$((failures + 1))
  fi
done

for f in BENCH_*.json; do
  if [ ! -e "$f" ]; then
    echo "check_bench: no BENCH_*.json files were produced" >&2
    exit 1
  fi
  break
done

python3 - "$out_dir" <<'EOF' || failures=$((failures + 1))
import glob, json, os, sys

ok = True
files = sorted(glob.glob(os.path.join(sys.argv[1], "BENCH_*.json")))
if not files:
    print("no BENCH_*.json produced")
    sys.exit(1)
for path in files:
    name = os.path.basename(path)
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as err:
        print(f"FAIL: {name}: malformed JSON: {err}")
        ok = False
        continue
    errs = []
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        errs.append('"bench" missing or not a string')
    if not isinstance(doc.get("quick"), bool):
        errs.append('"quick" missing or not a bool')
    if not isinstance(doc.get("notes"), dict):
        errs.append('"notes" missing or not an object')
    tables = doc.get("tables")
    if not isinstance(tables, dict) or not tables:
        errs.append('"tables" missing, not an object, or empty')
    else:
        for tname, rows in tables.items():
            if not isinstance(rows, list) or not rows:
                errs.append(f'table "{tname}" is not a non-empty array')
                continue
            for i, row in enumerate(rows):
                if not isinstance(row, dict) or not row:
                    errs.append(f'table "{tname}" row {i} is not an object')
                    break
                bad = [
                    k for k, v in row.items()
                    if not isinstance(v, (bool, int, float, str))
                ]
                if bad:
                    errs.append(
                        f'table "{tname}" row {i} has non-scalar '
                        f'column(s): {bad}')
                    break
    # bench_realnet must embed the runtime's metrics snapshot alongside
    # each latency row: one realnet_metrics row per Circus degree with
    # the protocol counters and the collator wait histogram.
    if name == "BENCH_realnet.json" and isinstance(tables, dict):
        rows = tables.get("realnet_metrics")
        if not isinstance(rows, list) or not rows:
            errs.append('"realnet_metrics" table missing or empty')
        else:
            required = [
                "degree", "retransmits", "probe_rounds",
                "duplicates_suppressed", "loop_wakeups",
                "socket_backpressure", "collator_wait_count",
                "collator_wait_mean_ms", "collator_wait_p50_ms",
                "collator_wait_p90_ms", "collator_wait_p99_ms",
            ]
            for i, row in enumerate(rows):
                missing = [k for k in required if k not in row]
                if missing:
                    errs.append(
                        f'realnet_metrics row {i} missing: {missing}')
                elif row["collator_wait_count"] <= 0:
                    errs.append(
                        f'realnet_metrics row {i}: collator_wait_count '
                        f'is 0 (the histogram was not recorded)')
    # bench_throughput must report all three load tables — the
    # trend-gated sim sweep, its stage attribution, and the wall-clock
    # rt run — with the load columns the trend gate compares.
    if name == "BENCH_throughput.json" and isinstance(tables, dict):
        load_cols = [
            "members", "offered_per_sec", "achieved_per_sec",
            "completed", "shed", "p50_ms", "p99_ms", "max_ms",
            "retransmits",
        ]
        for tname, required in [
            ("sim_load", load_cols),
            ("rt_wallclock", load_cols),
            ("sim_stages", ["members", "offered_per_sec", "stage",
                            "count", "p50_us", "p99_us", "share_pct"]),
            ("sim_util", ["members", "offered_per_sec", "resource",
                          "busy_mean_pct", "busy_peak_pct", "queue_peak",
                          "ops_total", "bytes_total", "errors_total",
                          "level"]),
            ("sim_knee", ["members", "knee_offered_per_sec",
                          "capacity_per_sec", "binding_resource",
                          "binding_busy_pct", "runner_up_resource",
                          "runner_up_busy_pct"]),
        ]:
            rows = tables.get(tname)
            if not isinstance(rows, list) or not rows:
                errs.append(f'"{tname}" table missing or empty')
                continue
            for i, row in enumerate(rows):
                missing = [k for k in required if k not in row]
                if missing:
                    errs.append(f'{tname} row {i} missing: {missing}')
        if isinstance(tables.get("sim_load"), list):
            if not any(row.get("completed", 0) > 0
                       for row in tables["sim_load"]):
                errs.append("sim_load completed no calls at any rate")
        # E21's acceptance bar: every knee is pinned on a resource that
        # is actually saturated (>= 90% time-weighted busy share).
        if isinstance(tables.get("sim_knee"), list):
            for row in tables["sim_knee"]:
                if row.get("binding_busy_pct", 0) < 90:
                    errs.append(
                        f"sim_knee n={row.get('members')}: binding "
                        f"resource {row.get('binding_resource')} only "
                        f"{row.get('binding_busy_pct'):.1f}% busy")
    if errs:
        ok = False
        for e in errs:
            print(f"FAIL: {name}: {e}")
    else:
        nrows = sum(len(r) for r in tables.values())
        print(f"PASS: {name} ({len(tables)} table(s), {nrows} row(s))")
sys.exit(0 if ok else 1)
EOF

if [ "$failures" -ne 0 ]; then
  echo "check_bench: $failures failure(s)" >&2
  exit 1
fi
echo "check_bench: all bench reports valid"
