#!/bin/sh
# Chaos on the real runtime: drives circus_nemesis against a live
# loopback testbed for several seeded schedules. Every run must come
# back with a clean Section 4.2 wire audit, post-heal convergence of
# the replicated counter, and no unexpected process deaths — the same
# acceptance bar the simulated chaos sweep holds, now against real
# kernels, real SIGKILLs, and real UDP.
#
# The per-seed results are folded into BENCH_chaos_rt.json (written to
# the current directory, like the bench binaries do) so the availability
# table lands next to the other reproduced figures. The file is listed
# in check_bench_trend.sh's wall-clock skip set: the numbers depend on
# whatever machine runs this, so only presence/shape is baselined.
#
# Usage: scripts/check_chaos_rt.sh [build-dir] [seeds]
#        (default: build "1 2 3 4 5")
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
seeds=${2:-"1 2 3 4 5"}

nemesis_bin="$build_dir/src/rt/circus_nemesis"
node_bin="$build_dir/src/rt/circus_node"
for bin in "$nemesis_bin" "$node_bin"; do
  if [ ! -x "$bin" ]; then
    echo "check_chaos_rt: missing $bin (build first)" >&2
    exit 1
  fi
done

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

failures=0
base_port=38500
for s in $seeds; do
  run_dir="$out_dir/seed$s"
  mkdir -p "$run_dir"
  if "$nemesis_bin" seed="$s" members=3 horizon_s=20 actions=5 \
      base_port="$base_port" bin="$node_bin" dir="$run_dir" \
      json="$out_dir/nem_$s.json" >"$run_dir/nemesis.log" 2>&1; then
    grep '^nemesis: PASS' "$run_dir/nemesis.log" | sed "s/^nemesis:/PASS: seed=$s/"
  else
    echo "FAIL: nemesis seed=$s (violations, non-convergence, or crash)"
    tail -15 "$run_dir/nemesis.log" | sed 's/^/  /'
    failures=$((failures + 1))
  fi
  base_port=$((base_port + 100))
done

if [ "$failures" -ne 0 ]; then
  echo "check_chaos_rt: $failures failing nemesis run(s)" >&2
  exit 1
fi

python3 - "$out_dir" <<'EOF' || exit 1
import glob, json, sys

AVAILABILITY_FLOOR = 0.5   # chaos slows calls; it must not kill availability

rows = []
for path in sorted(glob.glob(sys.argv[1] + "/nem_*.json")):
    with open(path) as fh:
        r = json.load(fh)
    rows.append({
        "seed": r["seed"],
        "actions": r["actions"],
        "kills": r["kills"],
        "partitions": r["partitions"],
        "loss_bursts": r["loss_bursts"],
        "latency_spikes": r["latency_spikes"],
        "restarts": r["restarts"],
        "calls": r["calls"],
        "failed": r["failed"],
        "availability": r["availability"],
        "convergence_attempts": r["convergence_attempts"],
        "violations": r["violations"],
        "audit_records": r["audit_records"],
    })
rows.sort(key=lambda r: r["seed"])
ok = True
for r in rows:
    if r["availability"] < AVAILABILITY_FLOOR:
        print(f"FAIL: seed={r['seed']} availability {r['availability']} "
              f"below floor {AVAILABILITY_FLOOR}")
        ok = False
bench = {
    "bench": "chaos_rt",
    "quick": True,
    "notes": {"members": 3, "horizon_s": 20, "actions_per_seed": 5,
              "transport": "real loopback UDP (rt::Runtime)"},
    "tables": {"chaos_rt": rows},
}
with open("BENCH_chaos_rt.json", "w") as fh:
    json.dump(bench, fh)
    fh.write("\n")
print(f"wrote BENCH_chaos_rt.json ({len(rows)} seed(s))")
sys.exit(0 if ok else 1)
EOF

echo "check_chaos_rt: all seeds clean (wire audit + convergence on live testbed)"
