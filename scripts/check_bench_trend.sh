#!/bin/sh
# Guards the bench tables against regressions, direction-aware: re-runs
# every bench in --quick --json mode and compares row-by-row against the
# committed bench/baselines/ snapshot. Latency-like columns (*_ms, *_us,
# *latency*) regress when they RISE more than 25%; throughput-like
# columns (*_per_sec, *throughput*) regress when they DROP more than
# 25%. Only simulated-time numbers are compared — bench_realnet and
# bench_micro measure wall clock on whatever machine runs this, and so
# do tables whose name marks them wall-clock (e.g. bench_throughput's
# "rt_wallclock"), so those are noise here (the benches are still run,
# so a crash is caught).
#
# When a protocol change legitimately moves a number, regenerate the
# baseline: run the bench with --quick --json and copy the BENCH_*.json
# into bench/baselines/.
#
# Usage: scripts/check_bench_trend.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench_dir="$build_dir/bench"
baseline_dir="$repo_root/bench/baselines"

if [ ! -d "$bench_dir" ]; then
  echo "check_bench_trend: no bench dir at $bench_dir (build first)" >&2
  exit 1
fi
if [ ! -d "$baseline_dir" ]; then
  echo "check_bench_trend: no baselines at $baseline_dir" >&2
  exit 1
fi

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT
cd "$out_dir"

failures=0
for b in "$bench_dir"/*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  if ! "$b" --quick --json >"$name.out" 2>&1; then
    echo "FAIL: $name exited nonzero"
    sed 's/^/  /' "$name.out"
    failures=$((failures + 1))
  fi
done

python3 - "$baseline_dir" "$out_dir" <<'EOF' || failures=$((failures + 1))
import glob, json, os, sys

THRESHOLD = 1.25       # latency fails when fresh > baseline * THRESHOLD
DROP_THRESHOLD = 0.75  # throughput fails when fresh < baseline * DROP_THRESHOLD
ABS_FLOOR_MS = 0.5     # ignore sub-floor baselines: all jitter, no signal
ABS_FLOOR_RATE = 1.0   # likewise for sub-1/s throughput baselines
WALL_CLOCK = {"BENCH_realnet.json", "BENCH_micro.json",
              "BENCH_chaos_rt.json"}

def latency_key(key):
    k = key.lower()
    return k.endswith("_ms") or k.endswith("_us") or "latency" in k

def throughput_key(key):
    k = key.lower()
    return (k.endswith("_per_sec") or k.endswith("_per_second")
            or "throughput" in k)

def wall_clock_table(tname):
    return "wallclock" in tname.lower()

baseline_dir, fresh_dir = sys.argv[1], sys.argv[2]
ok = True
compared = 0
for base_path in sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json"))):
    name = os.path.basename(base_path)
    if name in WALL_CLOCK:
        continue
    fresh_path = os.path.join(fresh_dir, name)
    if not os.path.exists(fresh_path):
        print(f"FAIL: {name}: baseline exists but the bench produced no file")
        ok = False
        continue
    with open(base_path) as fh:
        base = json.load(fh)
    with open(fresh_path) as fh:
        fresh = json.load(fh)
    file_failures = []
    checked = 0
    for tname, base_rows in base.get("tables", {}).items():
        fresh_rows = fresh.get("tables", {}).get(tname)
        if not isinstance(fresh_rows, list):
            file_failures.append(f'table "{tname}" disappeared')
            continue
        if len(fresh_rows) != len(base_rows):
            file_failures.append(
                f'table "{tname}" changed shape: '
                f'{len(base_rows)} -> {len(fresh_rows)} row(s)')
            continue
        if wall_clock_table(tname):
            continue
        for i, (brow, frow) in enumerate(zip(base_rows, fresh_rows)):
            for key, bval in brow.items():
                is_latency = latency_key(key)
                is_throughput = not is_latency and throughput_key(key)
                if not (is_latency or is_throughput):
                    continue
                if not isinstance(bval, (int, float)) or isinstance(bval, bool):
                    continue
                fval = frow.get(key)
                if not isinstance(fval, (int, float)) or isinstance(fval, bool):
                    file_failures.append(
                        f'{tname}[{i}].{key}: no longer numeric')
                    continue
                checked += 1
                if is_latency:
                    floor = (ABS_FLOOR_MS if key.lower().endswith("_ms")
                             else 0.0)
                    if bval > floor and fval > bval * THRESHOLD:
                        file_failures.append(
                            f'{tname}[{i}].{key}: {bval:g} -> {fval:g} '
                            f'(+{(fval / bval - 1) * 100:.0f}%, limit +25%)')
                else:
                    if bval > ABS_FLOOR_RATE and fval < bval * DROP_THRESHOLD:
                        file_failures.append(
                            f'{tname}[{i}].{key}: {bval:g} -> {fval:g} '
                            f'({(fval / bval - 1) * 100:.0f}%, limit -25%)')
    if file_failures:
        ok = False
        for f in file_failures:
            print(f"FAIL: {name}: {f}")
    else:
        print(f"PASS: {name} ({checked} trend value(s) within bounds)")
        compared += 1
if compared == 0 and ok:
    print("no baselines compared")
    ok = False
sys.exit(0 if ok else 1)
EOF

if [ "$failures" -ne 0 ]; then
  echo "check_bench_trend: $failures failure(s)" >&2
  exit 1
fi
echo "check_bench_trend: no latency or throughput regressions against bench/baselines"
