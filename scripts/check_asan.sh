#!/bin/sh
# Builds the whole tree under AddressSanitizer and runs every test
# binary, as CLAUDE.md prescribes whenever coroutine call paths change
# (GCC 12 coroutine miscompiles surface as double-frees that only ASan
# sees). Exits nonzero if anything fails to build or any test fails.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

cmake -B build-asan -G Ninja -DCMAKE_CXX_FLAGS="-fsanitize=address -g"
cmake --build build-asan

failures=0
for t in build-asan/tests/*_test; do
  if "$t" >/dev/null 2>&1; then
    echo "PASS: $t"
  else
    echo "FAIL: $t"
    failures=$((failures + 1))
  fi
done

# The wire-labeled slice (packet tap + Section 4.2 auditor) again via
# ctest, case by case: a capture decode that trips ASan only in one
# parameterized case is pinpointed here instead of vanishing into a
# whole-binary FAIL above.
if ! ctest --test-dir build-asan -L wire --output-on-failure >/dev/null; then
  echo "FAIL: ctest -L wire under ASan"
  failures=$((failures + 1))
fi

# Likewise the chaos_rt slice: the FaultFabric's delayed-copy and
# reorder-hold callbacks run through coroutine frames on both the
# simulated and real executors — exactly the call-path shape the
# CLAUDE.md coroutine rules exist for.
if ! ctest --test-dir build-asan -L chaos_rt --output-on-failure >/dev/null; then
  echo "FAIL: ctest -L chaos_rt under ASan"
  failures=$((failures + 1))
fi

# And the apps slice (replfs end-to-end tests + demo): the replfs
# client/server are coroutine-heavy application code layered over
# generated stubs, ordered broadcast, and the commit protocol — a prime
# habitat for the GCC 12 coroutine hazards.
if ! ctest --test-dir build-asan -L apps --output-on-failure >/dev/null; then
  echo "FAIL: ctest -L apps under ASan"
  failures=$((failures + 1))
fi

# And the obs slice: the latency attributor buffers whole event streams
# per pending call while coroutine protocol code publishes into it — a
# use-after-free anywhere in that handoff shows up here case by case.
if ! ctest --test-dir build-asan -L obs --output-on-failure >/dev/null; then
  echo "FAIL: ctest -L obs under ASan"
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "check_asan: $failures test binary(ies) failed" >&2
  exit 1
fi
echo "check_asan: all test binaries clean under ASan (incl. ctest -L wire/chaos_rt/apps/obs)"
