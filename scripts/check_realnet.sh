#!/bin/sh
# Runs the real-network (loopback UDP) test binaries repeatedly. Unlike
# the simulator tests these race against a real kernel scheduler and
# real timers, so a single green run proves little; 20 consecutive runs
# catch the flaky timing assumptions (epoll wakeup ordering, ephemeral
# port reuse, retransmit-timer skew) that one run would miss.
#
# Usage: scripts/check_realnet.sh [build-dir] [runs]   (default: build 20)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
runs=${2:-20}

failures=0
for t in "$build_dir"/tests/rt_fabric_test "$build_dir"/tests/rt_loopback_test; do
  if [ ! -x "$t" ]; then
    echo "check_realnet: missing $t (build first)" >&2
    exit 1
  fi
  i=1
  while [ "$i" -le "$runs" ]; do
    if ! "$t" >/dev/null 2>&1; then
      echo "FAIL: $t (run $i/$runs)"
      failures=$((failures + 1))
    fi
    i=$((i + 1))
  done
  echo "PASS: $t ($runs runs)"
done

if [ "$failures" -ne 0 ]; then
  echo "check_realnet: $failures failing run(s)" >&2
  exit 1
fi
echo "check_realnet: rt suite stable over $runs runs"
