#!/bin/sh
# Runs the real-network (loopback UDP) test binaries repeatedly. Unlike
# the simulator tests these race against a real kernel scheduler and
# real timers, so a single green run proves little; 20 consecutive runs
# catch the flaky timing assumptions (epoll wakeup ordering, ephemeral
# port reuse, retransmit-timer skew) that one run would miss.
#
# Usage: scripts/check_realnet.sh [build-dir] [runs]   (default: build 20)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
runs=${2:-20}

failures=0
for t in "$build_dir"/tests/rt_fabric_test "$build_dir"/tests/rt_loopback_test; do
  if [ ! -x "$t" ]; then
    echo "check_realnet: missing $t (build first)" >&2
    exit 1
  fi
  i=1
  while [ "$i" -le "$runs" ]; do
    if ! "$t" >/dev/null 2>&1; then
      echo "FAIL: $t (run $i/$runs)"
      failures=$((failures + 1))
    fi
    i=$((i + 1))
  done
  echo "PASS: $t ($runs runs)"
done

if [ "$failures" -ne 0 ]; then
  echo "check_realnet: $failures failing run(s)" >&2
  exit 1
fi
echo "check_realnet: rt suite stable over $runs runs"

# --- live observability round ------------------------------------------
# The acceptance scenario for live node observability, as a real
# multi-process run: a 4-process loopback testbed (ringmaster, two
# members, client), every node serving a stats endpoint (stats_port=)
# and streaming a trace shard (trace_dir=). While the testbed runs,
# every node must answer `metrics` and `health` datagrams with
# well-formed replies; after a SIGTERM-driven graceful shutdown, the
# four shards must merge (circus_trace_merge) into one clock-aligned
# Chrome trace in which a replicated call is one root-thread span tree
# spanning both members.

node_bin="$build_dir/src/rt/circus_node"
merge_bin="$build_dir/src/rt/circus_trace_merge"
wire_bin="$build_dir/src/rt/circus_wire"
lat_bin="$build_dir/src/rt/circus_lat"
top_bin="$build_dir/src/rt/circus_top"
for bin in "$node_bin" "$merge_bin" "$wire_bin" "$lat_bin" "$top_bin"; do
  if [ ! -x "$bin" ]; then
    echo "check_realnet: missing $bin (build first)" >&2
    exit 1
  fi
done

obs_dir=$(mktemp -d)
obs_pids=""
cleanup() {
  # shellcheck disable=SC2086
  [ -n "$obs_pids" ] && kill $obs_pids 2>/dev/null
  rm -rf "$obs_dir"
}
trap cleanup EXIT

cat >"$obs_dir/ringmaster.conf" <<EOF
role = ringmaster
listen = 127.0.0.1:38301
stats_port = 38311
trace_dir = $obs_dir
tap_dir = $obs_dir
EOF
for m in 2 3; do
  cat >"$obs_dir/member$m.conf" <<EOF
role = member
listen = 127.0.0.1:3830$m
ringmaster = 127.0.0.1:38301
troupe = echo
interface = echo
stats_port = 3831$m
trace_dir = $obs_dir
tap_dir = $obs_dir
EOF
done
cat >"$obs_dir/client.conf" <<EOF
role = client
listen = 127.0.0.1:38304
ringmaster = 127.0.0.1:38301
troupe = echo
calls = 1000000
payload = 64
stats_port = 38314
trace_dir = $obs_dir
tap_dir = $obs_dir
EOF

# Members join sequentially (the first AddTroupeMember bootstraps the
# registration); the client then hammers the troupe until stopped.
"$node_bin" "$obs_dir/ringmaster.conf" >"$obs_dir/ringmaster.log" 2>&1 &
obs_pids="$!"
sleep 0.3
"$node_bin" "$obs_dir/member2.conf" >"$obs_dir/member2.log" 2>&1 &
obs_pids="$obs_pids $!"
sleep 0.3
"$node_bin" "$obs_dir/member3.conf" >"$obs_dir/member3.log" 2>&1 &
obs_pids="$obs_pids $!"
sleep 0.5
"$node_bin" "$obs_dir/client.conf" >"$obs_dir/client.log" 2>&1 &
obs_pids="$obs_pids $!"
sleep 0.5

obs_failures=0
python3 - <<'EOF' || obs_failures=$((obs_failures + 1))
import socket, sys, time

def ask(port, query, tries=20):
    s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    s.settimeout(0.5)
    for _ in range(tries):
        try:
            s.sendto(query.encode(), ("127.0.0.1", port))
            data, _ = s.recvfrom(65536)
            return data.decode("utf-8")
        except socket.timeout:
            time.sleep(0.1)
    print(f"FAIL: no reply from 127.0.0.1:{port} to {query!r}")
    sys.exit(1)

def ask_paged(port, what, pages=100):
    # Reassemble a `chunk <offset> <next|end>` paged reply stream.
    text, off = "", 0
    for _ in range(pages):
        reply = ask(port, f"{what} {off}")
        header, _, body = reply.partition("\n")
        parts = header.split()
        if len(parts) != 3 or parts[0] != "chunk" or parts[1] != str(off):
            print(f"FAIL: {port} bad page header for {what!r}: {header!r}")
            sys.exit(1)
        text += body
        if parts[2] == "end":
            return text
        off = int(parts[2])
    print(f"FAIL: {port} {what!r} did not finish in {pages} pages")
    sys.exit(1)

ok = True
for port, role in [(38311, "ringmaster"), (38312, "member"),
                   (38313, "member"), (38314, "client")]:
    metrics = ask(port, "metrics")
    if len(metrics.encode()) > 1500:
        print(f"FAIL: {port} metrics reply exceeds one datagram")
        ok = False
    saw_type = False
    for line in metrics.splitlines():
        if line.startswith("# TYPE circus_"):
            saw_type = True
        elif line.startswith("#") or not line or line == "...":
            continue  # "..." marks a truncated reply, itself legal
        else:
            parts = line.split()
            if len(parts) != 2 or not parts[0].startswith("circus_"):
                print(f"FAIL: {port} malformed metrics line: {line!r}")
                ok = False
    if not saw_type:
        print(f"FAIL: {port} metrics reply has no circus_ TYPE line")
        ok = False
    health = ask(port, "health")
    lines = health.splitlines()
    if not lines or not lines[0].startswith("ok "):
        print(f"FAIL: {port} health does not lead with ok: {health!r}")
        ok = False
    for needle in (f"role {role}", "incarnation ", "addr 127.0.0.1:",
                   "load "):
        if needle not in health:
            print(f"FAIL: {port} health missing {needle!r}: {health!r}")
            ok = False
    # Every node answers the stage-latency query, bare (one datagram,
    # possibly truncated at a line boundary) and paged (complete).
    latency = ask(port, "latency")
    if not latency.startswith("# TYPE circus_latency_stage_us summary"):
        print(f"FAIL: {port} latency reply malformed: {latency[:80]!r}")
        ok = False
    full = ask_paged(port, "latency")
    for needle in ("circus_latency_end_to_end_us_count",
                   "circus_latency_calls_total"):
        if needle not in full:
            print(f"FAIL: {port} paged latency missing {needle!r}")
            ok = False
    if port == 38314:
        # The client node attributes its own calls: after half a second
        # of hammering the troupe, some must have been finalized.
        calls = [int(line.split()[1]) for line in full.splitlines()
                 if line.startswith("circus_latency_calls_total ")]
        if not calls or calls[0] <= 0:
            print(f"FAIL: client latency attribution saw no calls")
            ok = False
    # Every node serves the USE-method utilization exposition, bare
    # (one datagram) and paged (the full per-resource series).
    util = ask(port, "util")
    if not util.startswith("# TYPE circus_util_busy_pct gauge"):
        print(f"FAIL: {port} util reply malformed: {util[:80]!r}")
        ok = False
    full_util = ask_paged(port, "util")
    for needle in ('circus_util_busy_pct{resource="rt.loop"}',
                   'circus_util_busy_pct{resource="cpu.process"}',
                   'circus_util_queue{resource="net.udp"}',
                   'circus_util_level{resource="obs.shard"}',
                   "circus_util_samples_total"):
        if needle not in full_util:
            print(f"FAIL: {port} paged util missing {needle!r}")
            ok = False
    samples = [int(line.split()[1]) for line in full_util.splitlines()
               if line.startswith("circus_util_samples_total ")]
    if not samples or samples[0] <= 0:
        print(f"FAIL: {port} utilization monitor never sampled")
        ok = False
sys.exit(0 if ok else 1)
EOF

# circus_top: one snapshot of the whole live testbed must render a
# per-resource row block for every node and exit 0.
top_rc=0
"$top_bin" --once 127.0.0.1:38311 127.0.0.1:38312 127.0.0.1:38313 \
  127.0.0.1:38314 >"$obs_dir/top.log" 2>&1 || top_rc=$?
if [ "$top_rc" -ne 0 ]; then
  echo "FAIL: circus_top --once exited $top_rc"
  sed 's/^/  /' "$obs_dir/top.log"
  obs_failures=$((obs_failures + 1))
elif [ "$(grep -c "cpu.process" "$obs_dir/top.log")" -ne 4 ] \
   || ! grep -q "rt.loop" "$obs_dir/top.log"; then
  echo "FAIL: circus_top table missing per-node resource rows"
  sed 's/^/  /' "$obs_dir/top.log"
  obs_failures=$((obs_failures + 1))
else
  echo "PASS: circus_top --once rendered all 4 nodes"
fi

# Strict CLI flags: every tool must reject an unknown flag with usage
# and a nonzero exit instead of silently treating it as an input path.
for tool in "$merge_bin" "$lat_bin" "$wire_bin" "$top_bin"; do
  if "$tool" --definitely-not-a-flag x >/dev/null 2>&1; then
    echo "FAIL: $(basename "$tool") accepted an unknown flag"
    obs_failures=$((obs_failures + 1))
  fi
done

# Graceful shutdown: every node (including the mid-run client) must
# exit 0 after flushing its final metrics snapshot and trace shard.
# shellcheck disable=SC2086
kill -TERM $obs_pids 2>/dev/null
for pid in $obs_pids; do
  rc=0
  wait "$pid" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "FAIL: testbed node (pid $pid) exited $rc on SIGTERM"
    obs_failures=$((obs_failures + 1))
  fi
done
obs_pids=""

for node in ringmaster-38301 member-38302 member-38303 client-38304; do
  for suffix in trace.jsonl metrics.prom; do
    if [ ! -s "$obs_dir/$node.$suffix" ]; then
      echo "FAIL: $node did not flush $node.$suffix"
      obs_failures=$((obs_failures + 1))
    fi
  done
done

merge_rc=0
"$merge_bin" -o "$obs_dir/merged.trace.json" \
  "$obs_dir/client-38304.trace.jsonl" \
  "$obs_dir/ringmaster-38301.trace.jsonl" \
  "$obs_dir/member-38302.trace.jsonl" \
  "$obs_dir/member-38303.trace.jsonl" \
  >"$obs_dir/merge.log" 2>&1 || merge_rc=$?
if [ "$merge_rc" -ne 0 ]; then
  echo "FAIL: circus_trace_merge exited $merge_rc"
  sed 's/^/  /' "$obs_dir/merge.log"
  obs_failures=$((obs_failures + 1))
else
  python3 - "$obs_dir/merged.trace.json" <<'EOF' || obs_failures=$((obs_failures + 1))
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
events = doc.get("traceEvents")
if not isinstance(events, list) or not events:
    print("FAIL: merged trace has no traceEvents")
    sys.exit(1)

# pid -> node name from the process_name metadata the merge wrote.
names = {e["pid"]: e["args"]["name"] for e in events
         if e.get("ph") == "M" and e.get("name") == "process_name"}
def pids_for(prefix):
    return {pid for pid, name in names.items() if name.startswith(prefix)}
client_pids = pids_for("client-")
member_pids = pids_for("member-")
if len(client_pids) != 1 or len(member_pids) != 2:
    print(f"FAIL: unexpected process lanes: {sorted(names.values())}")
    sys.exit(1)

# The acceptance property: some replicated call forms one tree — a
# call span on the client lane whose logical thread also ran execute
# spans on BOTH member lanes.
call_threads = {e["args"]["thread"] for e in events
                if e.get("ph") == "X" and e["name"].startswith("call ")
                and e["pid"] in client_pids}
spanning = [t for t in call_threads
            if all(any(e.get("ph") == "X"
                       and e["name"].startswith("exec ")
                       and e["pid"] == m and e["args"]["thread"] == t
                       for e in events) for m in member_pids)]
if not spanning:
    print("FAIL: no client call span spans both troupe members")
    sys.exit(1)
print(f"PASS: merged trace ({len(events)} records, "
      f"{len(spanning)} thread(s) spanning every member)")
EOF
fi

# --- wire audit round --------------------------------------------------
# Every node also mirrored its datagrams into a tap capture (tap_dir=).
# Decoding and auditing all four captures together must report zero
# Section 4.2 violations — the live runtime's wire behaviour is held to
# the same oracle the chaos sweep uses. (No --member flags here: members
# legitimately exchange get_state during sequential joins.) The audit
# also annotates the merged timeline with per-span wire cost.
wire_rc=0
"$wire_bin" --annotate "$obs_dir/merged.trace.json" \
  -o "$obs_dir/wire.trace.json" --no-conversations \
  "$obs_dir"/*.tap.jsonl >"$obs_dir/wire.log" 2>&1 || wire_rc=$?
if [ "$wire_rc" -ne 0 ]; then
  echo "FAIL: circus_wire exited $wire_rc (violations or bad captures)"
  sed 's/^/  /' "$obs_dir/wire.log"
  obs_failures=$((obs_failures + 1))
elif ! grep -q "wire audit: 0 violation" "$obs_dir/wire.log"; then
  echo "FAIL: circus_wire did not report a clean audit"
  sed 's/^/  /' "$obs_dir/wire.log"
  obs_failures=$((obs_failures + 1))
elif [ ! -s "$obs_dir/wire.trace.json" ]; then
  echo "FAIL: circus_wire produced no annotated timeline"
  obs_failures=$((obs_failures + 1))
else
  echo "PASS: wire audit clean over $(ls "$obs_dir"/*.tap.jsonl | wc -l) captures"
fi

if [ "$obs_failures" -ne 0 ]; then
  echo "check_realnet: observability round: $obs_failures failure(s)" >&2
  for log in "$obs_dir"/*.log; do
    echo "--- $log"
    tail -5 "$log"
  done
  exit 1
fi
echo "check_realnet: observability round ok (metrics/health/latency/util on 4 nodes, circus_top snapshot, shards merged, wire audit clean)"

# --- latency-bench round -----------------------------------------------
# The open-loop load harness against the real runtime: bench_throughput
# --quick runs the loopback rt variant at a modest fixed rate alongside
# the deterministic sim sweep. The exported BENCH_throughput.json must
# carry completed calls and the full load-column schema in both the
# rt_wallclock and sim_load tables (same columns check_bench.sh gates).
lat_bench="$build_dir/bench/bench_throughput"
if [ ! -x "$lat_bench" ]; then
  echo "check_realnet: missing $lat_bench (build first)" >&2
  exit 1
fi
# Absolute path: the bench runs from a temp cwd so its JSON lands there.
lat_bench=$(CDPATH= cd -- "$(dirname -- "$lat_bench")" && pwd)/bench_throughput
lat_dir=$(mktemp -d)
lat_rc=0
(cd "$lat_dir" && "$lat_bench" --quick --json) \
  >"$lat_dir/bench.log" 2>&1 || lat_rc=$?
if [ "$lat_rc" -ne 0 ]; then
  echo "FAIL: bench_throughput exited $lat_rc"
  tail -15 "$lat_dir/bench.log" | sed 's/^/  /'
  rm -rf "$lat_dir"
  exit 1
fi
lat_json_rc=0
python3 - "$lat_dir/BENCH_throughput.json" <<'EOF' || lat_json_rc=$?
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
tables = doc.get("tables", {})
load_cols = ["members", "offered_per_sec", "achieved_per_sec",
             "completed", "shed", "p50_ms", "p99_ms", "max_ms",
             "retransmits"]
ok = True
for tname in ("sim_load", "rt_wallclock"):
    rows = tables.get(tname)
    if not isinstance(rows, list) or not rows:
        print(f"FAIL: BENCH_throughput {tname} table missing or empty")
        ok = False
        continue
    for i, row in enumerate(rows):
        missing = [k for k in load_cols if k not in row]
        if missing:
            print(f"FAIL: {tname} row {i} missing: {missing}")
            ok = False
    if not any(row.get("completed", 0) > 0 for row in rows):
        print(f"FAIL: {tname} completed no calls at any rate")
        ok = False
rt = tables.get("rt_wallclock") or []
done = sum(row.get("completed", 0) for row in rt)
if ok:
    print(f"PASS: bench_throughput ({done} rt calls completed, "
          f"{len(tables.get('sim_load', []))} sim_load row(s))")
sys.exit(0 if ok else 1)
EOF
rm -rf "$lat_dir"
if [ "$lat_json_rc" -ne 0 ]; then
  echo "check_realnet: latency-bench round failed" >&2
  exit 1
fi

# --- bind-conflict round -----------------------------------------------
# An auxiliary-port collision (stats_port / faults_port already taken)
# must be a one-line fatal error with a nonzero exit, not a node that
# limps along unobservable: operators point dashboards and the nemesis
# at these ports, so a silently unbound endpoint would fail them late
# and mysteriously.
conflict_dir=$(mktemp -d)
cat >"$conflict_dir/conflicted.conf" <<EOF
role = ringmaster
listen = 127.0.0.1:38390
stats_port = 38391
EOF
# Hold the port from a helper that lives until we kill it.
python3 -c '
import socket, sys, time
s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
s.bind(("127.0.0.1", 38391))
time.sleep(30)
' &
squatter_pid=$!
sleep 0.3
conflict_rc=0
"$node_bin" "$conflict_dir/conflicted.conf" \
  >"$conflict_dir/node.log" 2>&1 || conflict_rc=$?
kill "$squatter_pid" 2>/dev/null || true
wait "$squatter_pid" 2>/dev/null || true
if [ "$conflict_rc" -eq 0 ]; then
  echo "FAIL: circus_node exited 0 despite a stats_port bind conflict"
  rm -rf "$conflict_dir"
  exit 1
fi
if [ "$(wc -l <"$conflict_dir/node.log")" -gt 2 ] \
   || ! grep -qi "stats" "$conflict_dir/node.log"; then
  echo "FAIL: bind conflict did not produce a one-line stats error:"
  sed 's/^/  /' "$conflict_dir/node.log"
  rm -rf "$conflict_dir"
  exit 1
fi
echo "PASS: stats_port bind conflict fails fast ($(head -1 "$conflict_dir/node.log"))"
rm -rf "$conflict_dir"

# --- chaos round -------------------------------------------------------
# Seeded fault schedules against the live testbed: SIGKILL/restart,
# partitions, loss bursts, latency spikes — every run wire-audited and
# checked for post-heal convergence. Produces BENCH_chaos_rt.json.
"$repo_root/scripts/check_chaos_rt.sh" "$build_dir"

# --- replfs round ------------------------------------------------------
# The same nemesis, but the troupe runs the replfs application (stub-
# generated marshaling, ordered-broadcast write staging, troupe commit)
# and the oracle is read-your-writes: after healing, a fresh client
# commits a known block and reads it back with unanimous collation.
# seed=1's schedule orders 1 SIGKILL/restart and 1 partition, so the
# run covers a member rebuilt from state transfer mid-traffic. The run
# is wire-audited like every other.
replfs_dir=$(mktemp -d)
replfs_rc=0
"$build_dir/src/rt/circus_nemesis" seed=1 members=3 horizon_s=20 \
  actions=5 base_port=39200 workload=replfs \
  bin="$build_dir/src/rt/circus_node" dir="$replfs_dir" \
  json="$replfs_dir/nem.json" >"$replfs_dir/nemesis.log" 2>&1 || replfs_rc=$?
if [ "$replfs_rc" -ne 0 ]; then
  echo "FAIL: replfs nemesis round (seed=1)"
  tail -15 "$replfs_dir/nemesis.log" | sed 's/^/  /'
  rm -rf "$replfs_dir"
  exit 1
fi
if ! grep -q '"kills": [1-9]' "$replfs_dir/nem.json" \
   || ! grep -q '"partitions": [1-9]' "$replfs_dir/nem.json"; then
  echo "FAIL: replfs nemesis schedule lost its SIGKILL or partition"
  sed 's/^/  /' "$replfs_dir/nem.json"
  rm -rf "$replfs_dir"
  exit 1
fi
grep '^nemesis: PASS' "$replfs_dir/nemesis.log" | sed 's/^nemesis:/PASS: replfs/'
rm -rf "$replfs_dir"

echo "check_realnet: all rounds ok (stability, observability, latency bench, bind conflicts, chaos, replfs)"
