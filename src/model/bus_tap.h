// BusRecorderTap: rebuilds TraceRecorder histories from the obs event
// bus instead of the RPC layer's wired-in recorder hook. The call-level
// events (kCallIssue/kCallCollate/kExecuteBegin/kExecuteEnd) carry the
// same (module, procedure, payload) triples the RPC layer hands to
// RpcProcess::SetTraceRecorder, keyed by the same thread string, so a
// tap attached for a process's origin address reproduces that process's
// recorder byte-for-byte — which lets the chaos harness run its
// Section 3.5.2 determinism checks off the bus like every other
// observer, with no second instrumentation path to keep in sync.
#ifndef SRC_MODEL_BUS_TAP_H_
#define SRC_MODEL_BUS_TAP_H_

#include <cstdint>
#include <map>

#include "src/model/recorder.h"
#include "src/obs/bus.h"

namespace circus::model {

class BusRecorderTap {
 public:
  // Subscribes to `bus` (which must outlive the tap).
  explicit BusRecorderTap(obs::EventBus* bus);
  BusRecorderTap(const BusRecorderTap&) = delete;
  BusRecorderTap& operator=(const BusRecorderTap&) = delete;
  ~BusRecorderTap();

  // Routes call events whose origin equals `origin` (the process's
  // packed address, obs::PackAddress) into `recorder`. The recorder
  // must outlive the tap or be detached first. Re-attaching an origin
  // replaces the previous recorder.
  void Attach(uint64_t origin, TraceRecorder* recorder);
  void Detach(uint64_t origin);

 private:
  void OnEvent(const obs::Event& e);

  obs::EventBus* bus_;
  obs::EventBus::SubscriberId id_ = 0;
  std::map<uint64_t, TraceRecorder*> recorders_;
};

}  // namespace circus::model

#endif  // SRC_MODEL_BUS_TAP_H_
