#include "src/model/bus_tap.h"

#include <utility>

namespace circus::model {

BusRecorderTap::BusRecorderTap(obs::EventBus* bus) : bus_(bus) {
  id_ = bus_->Subscribe([this](const obs::Event& e) { OnEvent(e); });
}

BusRecorderTap::~BusRecorderTap() { bus_->Unsubscribe(id_); }

void BusRecorderTap::Attach(uint64_t origin, TraceRecorder* recorder) {
  recorders_[origin] = recorder;
}

void BusRecorderTap::Detach(uint64_t origin) { recorders_.erase(origin); }

void BusRecorderTap::OnEvent(const obs::Event& e) {
  Op op;
  switch (e.kind) {
    case obs::EventKind::kCallIssue:
    case obs::EventKind::kExecuteBegin:
      op = Op::kCall;
      break;
    case obs::EventKind::kCallCollate:
    case obs::EventKind::kExecuteEnd:
      op = Op::kReturn;
      break;
    default:
      return;
  }
  auto it = recorders_.find(e.origin);
  if (it == recorders_.end()) {
    return;
  }
  Event recorded;
  recorded.op = op;
  recorded.proc.module = static_cast<uint32_t>(e.a);
  recorded.proc.procedure = static_cast<uint32_t>(e.b);
  recorded.val = e.payload;
  it->second->Record(e.thread.ToString(), std::move(recorded));
}

}  // namespace circus::model
