// TraceRecorder: records per-thread execution histories (Section 3.3) as
// a program runs, so that the global-determinism property underpinning
// replication transparency (Section 3.5.2) can be *checked* rather than
// assumed: deterministic troupe members produce behaviourally identical
// histories for every logical thread. CompareRecorders pinpoints the
// first divergence — the runtime analogue of the watchdog's error
// detection (Section 4.3.4).
//
// Keys are opaque strings (the RPC layer uses ThreadId::ToString()), so
// the model layer stays independent of the RPC layer.
#ifndef SRC_MODEL_RECORDER_H_
#define SRC_MODEL_RECORDER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/model/history.h"

namespace circus::model {

class TraceRecorder {
 public:
  void Record(const std::string& thread_key, Event e) {
    traces_[thread_key].Append(std::move(e));
  }

  const EventSequence* TraceOf(const std::string& thread_key) const {
    auto it = traces_.find(thread_key);
    return it == traces_.end() ? nullptr : &it->second;
  }

  std::vector<std::string> Threads() const {
    std::vector<std::string> out;
    out.reserve(traces_.size());
    for (const auto& [key, seq] : traces_) {
      out.push_back(key);
    }
    return out;
  }

  size_t total_events() const {
    size_t n = 0;
    for (const auto& [key, seq] : traces_) {
      n += seq.size();
    }
    return n;
  }

 private:
  std::map<std::string, EventSequence> traces_;
};

// A determinism violation between two replicas' recorded histories.
struct TraceDivergence {
  std::string thread_key;
  int recorder_a = 0;
  int recorder_b = 0;
  // Index of the first differing event, or the length of the shorter
  // trace if one is a proper prefix of the other.
  size_t index = 0;
  std::string description;
};

// Checks that every recorder saw behaviourally identical per-thread
// histories (replicas of a deterministic troupe must). Prefixes are
// tolerated when `allow_prefix` is set — a member that crashed or
// lagged mid-run has recorded a prefix of the others' histories, which
// is not a determinism violation.
std::optional<TraceDivergence> CompareRecorders(
    const std::vector<const TraceRecorder*>& recorders,
    bool allow_prefix = true);

}  // namespace circus::model

#endif  // SRC_MODEL_RECORDER_H_
