// The Chapter 3 formal model of modules and threads, executable: events,
// event sequences, balanced intervals (Definition 3.1), thread execution
// histories (Definition 3.2), call stacks and depth (Definition 3.3),
// and the unique decomposition of Theorem 3.4.
//
// The model is used two ways in this repository:
//  * directly, as a verified implementation of the dissertation's
//    definitions (tests/model_test.cc exercises the theorems);
//  * operationally, through TraceRecorder: troupe members record their
//    observable histories and CompareTraces checks the global-
//    determinism property of Section 3.5.2 — replicas of a deterministic
//    module make the same calls and returns, with the same arguments and
//    results, in the same order. A mismatch is exactly the kind of
//    nondeterminism that breaks replication transparency.
#ifndef SRC_MODEL_HISTORY_H_
#define SRC_MODEL_HISTORY_H_

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace circus::model {

enum class Op : uint8_t {
  kCall = 0,
  kReturn = 1,
};

// A procedure identity in the model: module and procedure. (The formal
// model's Procs(M); module(P) is the module field.)
struct ProcedureRef {
  uint32_t module = 0;
  uint32_t procedure = 0;
  constexpr auto operator<=>(const ProcedureRef&) const = default;
  std::string ToString() const;
};

// An event (op, proc, val, id) per Section 3.3.1. `id` uniquely
// identifies the event within its sequence; it does not participate in
// behavioural equality.
struct Event {
  Op op = Op::kCall;
  ProcedureRef proc;
  circus::Bytes val;
  uint64_t id = 0;

  // Behavioural equality: everything but the id.
  bool SameBehaviour(const Event& other) const {
    return op == other.op && proc == other.proc && val == other.val;
  }
  std::string ToString() const;
};

// An event sequence E = <e_0, e_1, ...> with the operations the model
// defines on it. Indices play the role of the ordering.
class EventSequence {
 public:
  EventSequence() = default;
  explicit EventSequence(std::vector<Event> events)
      : events_(std::move(events)) {}

  void Append(Event e) {
    e.id = next_id_++;
    events_.push_back(std::move(e));
  }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const Event& at(size_t i) const { return events_[i]; }
  const std::vector<Event>& events() const { return events_; }

  // E^M: the subsequence of M-events (restriction to a module).
  EventSequence RestrictToModule(uint32_t module) const;

  // Definition 3.1: is [begin, end] (inclusive) a balanced interval?
  bool IsBalancedInterval(size_t begin, size_t end) const;
  // Is the whole sequence a single balanced interval? (A complete
  // thread execution history H = Exec(c_0) is, per Definition 3.2.)
  bool IsBalanced() const {
    return empty() || IsBalancedInterval(0, size() - 1);
  }

  // Is the sequence a concatenation B_1 B_2 ... B_n of balanced
  // intervals? This is the shape of a module restriction E^M of a
  // balanced history, and of a server member's recorded trace (one
  // balanced interval per call it executed).
  bool IsBalancedConcatenation() const;

  // Definition 3.2: is this a valid thread execution history? (Every
  // return matches a unique call; if finite, the whole is balanced.)
  bool IsValidThreadHistory() const;

  // The index of the return matching the call at `call_index`
  // ("c returns at r"), or nullopt if the call never returns.
  std::optional<size_t> ReturnOf(size_t call_index) const;

  // Definition 3.3: the call stack after the event at `index` — the
  // calls at or before `index` that have not returned by `index`.
  // Returned as indices, outermost first.
  std::vector<size_t> CallStack(size_t index) const;
  // depth(c) = |Callstack(c)|.
  size_t Depth(size_t index) const { return CallStack(index).size(); }

  // Theorem 3.4 decomposition of H_{<=e}: the unique form
  // <c_0, ..., c> B_1 ... B_n <e>. Returns the index of c (the deepest
  // unreturned call before e) and the [begin, end] index pairs of the
  // balanced intervals B_1..B_n between c and e.
  struct Decomposition {
    size_t c = 0;  // the enclosing call (c_0 <= c < e), or == e if e==c_0
    std::vector<std::pair<size_t, size_t>> balanced;
  };
  circus::StatusOr<Decomposition> Decompose(size_t index) const;

  // Behavioural equality of two sequences (ids ignored).
  bool SameBehaviour(const EventSequence& other) const;

  // The first position where the behaviours diverge, or nullopt if one
  // is a prefix of the other (or they are equal).
  std::optional<size_t> FirstDivergence(const EventSequence& other) const;

  std::string ToString() const;

 private:
  std::vector<Event> events_;
  uint64_t next_id_ = 1;
};

// Convenience constructors for tests and recorders.
Event MakeCall(uint32_t module, uint32_t procedure, circus::Bytes val = {});
Event MakeReturn(uint32_t module, uint32_t procedure,
                 circus::Bytes val = {});

}  // namespace circus::model

#endif  // SRC_MODEL_HISTORY_H_
