#include "src/model/recorder.h"

#include <set>

namespace circus::model {

std::optional<TraceDivergence> CompareRecorders(
    const std::vector<const TraceRecorder*>& recorders, bool allow_prefix) {
  if (recorders.size() < 2) {
    return std::nullopt;
  }
  std::set<std::string> all_threads;
  for (const TraceRecorder* r : recorders) {
    for (const std::string& t : r->Threads()) {
      all_threads.insert(t);
    }
  }
  static const EventSequence kEmpty;
  for (const std::string& thread : all_threads) {
    const EventSequence* reference = recorders[0]->TraceOf(thread);
    if (reference == nullptr) {
      reference = &kEmpty;
    }
    for (size_t i = 1; i < recorders.size(); ++i) {
      const EventSequence* other = recorders[i]->TraceOf(thread);
      if (other == nullptr) {
        other = &kEmpty;
      }
      std::optional<size_t> divergence =
          reference->FirstDivergence(*other);
      if (!divergence.has_value()) {
        if (reference->size() == other->size()) {
          continue;  // identical
        }
        if (allow_prefix) {
          continue;  // one is a prefix: a lagging or crashed member
        }
        divergence = std::min(reference->size(), other->size());
      }
      TraceDivergence d;
      d.thread_key = thread;
      d.recorder_a = 0;
      d.recorder_b = static_cast<int>(i);
      d.index = *divergence;
      const auto describe = [&](const EventSequence& seq) {
        return d.index < seq.size() ? seq.at(d.index).ToString()
                                    : std::string("<missing>");
      };
      d.description = "thread " + thread + " event " +
                      std::to_string(d.index) + ": replica 0 saw " +
                      describe(*reference) + ", replica " +
                      std::to_string(i) + " saw " + describe(*other);
      return d;
    }
  }
  return std::nullopt;
}

}  // namespace circus::model
