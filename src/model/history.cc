#include "src/model/history.h"

#include <algorithm>

#include "src/common/check.h"

namespace circus::model {

std::string ProcedureRef::ToString() const {
  return std::to_string(module) + "." + std::to_string(procedure);
}

std::string Event::ToString() const {
  return std::string(op == Op::kCall ? "call " : "ret  ") +
         proc.ToString() + "(" + std::to_string(val.size()) + "b)";
}

Event MakeCall(uint32_t module, uint32_t procedure, circus::Bytes val) {
  Event e;
  e.op = Op::kCall;
  e.proc = ProcedureRef{module, procedure};
  e.val = std::move(val);
  return e;
}

Event MakeReturn(uint32_t module, uint32_t procedure, circus::Bytes val) {
  Event e;
  e.op = Op::kReturn;
  e.proc = ProcedureRef{module, procedure};
  e.val = std::move(val);
  return e;
}

EventSequence EventSequence::RestrictToModule(uint32_t module) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.proc.module == module) {
      out.push_back(e);
    }
  }
  return EventSequence(std::move(out));
}

bool EventSequence::IsBalancedInterval(size_t begin, size_t end) const {
  // Definition 3.1 unfolds to the usual parenthesis condition with
  // matching procedures: scanning left to right, returns must match the
  // innermost open call, the interval must open with a call, close with
  // its matching return, and never dip to depth zero in between.
  if (end >= events_.size() || begin > end || end - begin < 1) {
    return false;
  }
  std::vector<const Event*> stack;
  for (size_t i = begin; i <= end; ++i) {
    const Event& e = events_[i];
    if (e.op == Op::kCall) {
      stack.push_back(&e);
    } else {
      if (stack.empty() || stack.back()->proc != e.proc) {
        return false;
      }
      stack.pop_back();
      if (stack.empty() && i != end) {
        return false;  // balanced prefix ended early: not one interval
      }
    }
  }
  return stack.empty();
}

bool EventSequence::IsBalancedConcatenation() const {
  if (empty()) {
    return true;
  }
  if (events_.front().op != Op::kCall) {
    return false;
  }
  std::vector<const Event*> stack;
  for (const Event& e : events_) {
    if (e.op == Op::kCall) {
      stack.push_back(&e);
    } else {
      if (stack.empty() || stack.back()->proc != e.proc) {
        return false;
      }
      stack.pop_back();
    }
  }
  return stack.empty();
}

bool EventSequence::IsValidThreadHistory() const {
  if (empty()) {
    return true;
  }
  // Condition 1: every return determines a unique call that returns at
  // it (scan with a stack; any mismatch violates it). Additionally the
  // initial event of a history must be a call (a consequence the model
  // derives, but structurally required for the stack scan too).
  if (events_.front().op != Op::kCall) {
    return false;
  }
  std::vector<const Event*> stack;
  for (const Event& e : events_) {
    if (e.op == Op::kCall) {
      stack.push_back(&e);
    } else {
      if (stack.empty() || stack.back()->proc != e.proc) {
        return false;
      }
      stack.pop_back();
    }
  }
  // Condition 2 applies to finite histories: H must be balanced. A
  // recorded sequence represents a finite history only if the stack
  // drained; we treat a non-empty final stack as a (valid) prefix of an
  // ongoing history — callers that require completion check IsBalanced.
  return true;
}

std::optional<size_t> EventSequence::ReturnOf(size_t call_index) const {
  CIRCUS_CHECK(call_index < events_.size());
  CIRCUS_CHECK(events_[call_index].op == Op::kCall);
  size_t depth = 0;
  for (size_t i = call_index; i < events_.size(); ++i) {
    if (events_[i].op == Op::kCall) {
      ++depth;
    } else {
      --depth;
      if (depth == 0) {
        return i;
      }
    }
  }
  return std::nullopt;
}

std::vector<size_t> EventSequence::CallStack(size_t index) const {
  CIRCUS_CHECK(index < events_.size());
  // Callstack(c): calls c' <= c whose execution contains c, i.e. calls
  // not yet returned at `index`.
  std::vector<size_t> stack;
  for (size_t i = 0; i <= index; ++i) {
    if (events_[i].op == Op::kCall) {
      stack.push_back(i);
    } else if (!stack.empty()) {
      stack.pop_back();
    }
  }
  return stack;
}

circus::StatusOr<EventSequence::Decomposition> EventSequence::Decompose(
    size_t index) const {
  if (index >= events_.size()) {
    return circus::Status(ErrorCode::kInvalidArgument,
                          "index out of range");
  }
  Decomposition d;
  if (index == 0) {
    d.c = 0;
    return d;
  }
  // Theorem 3.4: e's predecessor in Callstack(e) (or the matching call
  // if e is a return), followed by the maximal balanced intervals
  // between c and e.
  size_t c;
  if (events_[index].op == Op::kReturn) {
    // Find the call that returns at `index`.
    std::vector<size_t> stack;
    std::optional<size_t> match;
    for (size_t i = 0; i < index; ++i) {
      if (events_[i].op == Op::kCall) {
        stack.push_back(i);
      } else if (!stack.empty()) {
        stack.pop_back();
      }
    }
    if (stack.empty()) {
      return circus::Status(ErrorCode::kInvalidArgument,
                            "return without matching call");
    }
    match = stack.back();
    c = *match;
  } else {
    std::vector<size_t> stack = CallStack(index);
    // The call stack ends with `index` itself; c is its predecessor.
    CIRCUS_CHECK(!stack.empty() && stack.back() == index);
    if (stack.size() < 2) {
      return circus::Status(ErrorCode::kInvalidArgument,
                            "event is the initial call");
    }
    c = stack[stack.size() - 2];
  }
  d.c = c;
  // The events strictly between c and `index` form B_1..B_n; each
  // balanced interval starts at depth(c)+1 relative to c.
  size_t i = c + 1;
  while (i < index) {
    CIRCUS_CHECK(events_[i].op == Op::kCall);
    std::optional<size_t> r = ReturnOf(i);
    CIRCUS_CHECK(r.has_value() && *r < index);
    d.balanced.emplace_back(i, *r);
    i = *r + 1;
  }
  return d;
}

bool EventSequence::SameBehaviour(const EventSequence& other) const {
  if (size() != other.size()) {
    return false;
  }
  for (size_t i = 0; i < size(); ++i) {
    if (!events_[i].SameBehaviour(other.events_[i])) {
      return false;
    }
  }
  return true;
}

std::optional<size_t> EventSequence::FirstDivergence(
    const EventSequence& other) const {
  const size_t common = std::min(size(), other.size());
  for (size_t i = 0; i < common; ++i) {
    if (!events_[i].SameBehaviour(other.events_[i])) {
      return i;
    }
  }
  return std::nullopt;
}

std::string EventSequence::ToString() const {
  std::string out;
  size_t depth = 0;
  for (const Event& e : events_) {
    if (e.op == Op::kReturn && depth > 0) {
      --depth;
    }
    out.append(2 * depth, ' ');
    out += e.ToString();
    out += '\n';
    if (e.op == Op::kCall) {
      ++depth;
    }
  }
  return out;
}

}  // namespace circus::model
