// Call and return message contents (Section 4.3). The paired message
// layer treats these as uninterpreted bytes.
//
// A call message carries the caller's thread ID (for the propagation
// algorithm of Section 3.4.1), the client troupe ID (so the server can
// collect the full many-to-one call, Section 4.3.2), the destination
// troupe ID (the incarnation-number check of Section 6.2), the module and
// procedure numbers, and the externalized parameters.
//
// A return message carries a 16-bit header distinguishing normal from
// error results (Section 4.3), an error code/description when
// applicable, and the externalized results.
#ifndef SRC_CORE_WIRE_H_
#define SRC_CORE_WIRE_H_

#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/core/types.h"

namespace circus::core {

struct CallBody {
  ThreadId thread;
  // Per-thread call sequence number. Deterministic troupe members issue
  // identical sequences for the same logical thread, so the triple
  // (client troupe ID, thread ID, thread_seq) identifies one replicated
  // call at the server (Section 4.3.2). The dissertation derives this
  // from the paired-message call number; carrying it explicitly keeps
  // the grouping correct even when one process multiplexes several
  // threads over one socket (see DESIGN.md).
  uint32_t thread_seq = 0;
  TroupeId client_troupe;
  TroupeId server_troupe;
  ModuleNumber module = 0;
  ProcedureNumber procedure = 0;
  circus::Bytes arguments;

  circus::Bytes Encode() const;
  static std::optional<CallBody> Decode(const circus::Bytes& raw);
};

struct ReturnBody {
  // Header value 0 = normal result; 1 = error result.
  bool is_error = false;
  ErrorCode error_code = ErrorCode::kOk;
  std::string error_message;
  circus::Bytes results;

  circus::Bytes Encode() const;
  static std::optional<ReturnBody> Decode(const circus::Bytes& raw);

  static ReturnBody Success(circus::Bytes results) {
    return ReturnBody{false, ErrorCode::kOk, "", std::move(results)};
  }
  static ReturnBody Error(ErrorCode code, std::string message) {
    return ReturnBody{true, code, std::move(message), {}};
  }
  circus::StatusOr<circus::Bytes> ToStatusOr() && {
    if (is_error) {
      return circus::Status(error_code, std::move(error_message));
    }
    return std::move(results);
  }
};

}  // namespace circus::core

#endif  // SRC_CORE_WIRE_H_
