#include "src/core/collator.h"

#include <map>
#include <utility>
#include <vector>

namespace circus::core {

namespace {

// When no member produced a usable result, pick the most informative
// failure: a stale-binding rejection means the client must rebind, which
// outranks generic crash/timeout noise.
circus::Status SummarizeFailures(const std::vector<circus::Status>& errors) {
  if (errors.empty()) {
    return circus::Status(ErrorCode::kUnavailable, "empty troupe");
  }
  for (const circus::Status& s : errors) {
    if (s.code() == ErrorCode::kStaleBinding) {
      return s;
    }
  }
  // A deliberate server-side rejection (unknown procedure, handler
  // error, argument disagreement...) is more informative than the
  // crash/timeout noise of unreachable members.
  for (const circus::Status& s : errors) {
    if (s.code() != ErrorCode::kCrashDetected &&
        s.code() != ErrorCode::kTimeout &&
        s.code() != ErrorCode::kUnavailable) {
      return s;
    }
  }
  return circus::Status(ErrorCode::kUnavailable,
                        "no member of the troupe responded: " +
                            errors.front().ToString());
}

}  // namespace

sim::Task<circus::StatusOr<circus::Bytes>> UnanimousCollate(
    ReplyStream& stream) {
  bool seen = false;
  circus::Bytes representative;
  std::vector<circus::Status> errors;
  while (true) {
    std::optional<Reply> r = co_await stream.Next();
    if (!r.has_value()) {
      break;
    }
    if (!r->result.ok()) {
      errors.push_back(r->result.status());
      continue;
    }
    if (!seen) {
      representative = std::move(*r->result);
      seen = true;
    } else if (*r->result != representative) {
      co_return circus::Status(
          ErrorCode::kDisagreement,
          "unanimous collator: troupe members returned different results");
    }
  }
  if (!seen) {
    co_return SummarizeFailures(errors);
  }
  co_return representative;
}

sim::Task<circus::StatusOr<circus::Bytes>> FirstComeCollate(
    ReplyStream& stream) {
  std::vector<circus::Status> errors;
  while (true) {
    std::optional<Reply> r = co_await stream.Next();
    if (!r.has_value()) {
      break;
    }
    if (r->result.ok()) {
      // Return early, terminating the generator; late replies are
      // discarded by call number (Section 4.3.4).
      co_return std::move(*r->result);
    }
    errors.push_back(r->result.status());
  }
  co_return SummarizeFailures(errors);
}

sim::Task<circus::StatusOr<circus::Bytes>> MajorityCollate(
    ReplyStream& stream) {
  const int needed = stream.expected() / 2 + 1;
  std::map<circus::Bytes, int> votes;
  std::vector<circus::Status> errors;
  int remaining = stream.expected();
  while (remaining > 0) {
    std::optional<Reply> r = co_await stream.Next();
    if (!r.has_value()) {
      break;
    }
    --remaining;
    if (!r->result.ok()) {
      errors.push_back(r->result.status());
      continue;
    }
    const int count = ++votes[*r->result];
    if (count >= needed) {
      co_return std::move(*r->result);  // early exit: majority reached
    }
    // If no value can still reach a majority, stop waiting.
    int best = 0;
    for (const auto& [value, n] : votes) {
      best = std::max(best, n);
    }
    if (best + remaining < needed) {
      break;
    }
  }
  if (votes.empty() && !errors.empty()) {
    co_return SummarizeFailures(errors);
  }
  co_return circus::Status(ErrorCode::kNoMajority,
                           "majority collator: no value achieved a "
                           "majority of the expected troupe");
}

namespace {

sim::Task<circus::StatusOr<circus::Bytes>> QuorumUnanimousCollate(
    ReplyStream& stream, int minimum_successes) {
  bool seen = false;
  int successes = 0;
  circus::Bytes representative;
  std::vector<circus::Status> errors;
  while (true) {
    std::optional<Reply> r = co_await stream.Next();
    if (!r.has_value()) {
      break;
    }
    if (!r->result.ok()) {
      errors.push_back(r->result.status());
      continue;
    }
    ++successes;
    if (!seen) {
      representative = std::move(*r->result);
      seen = true;
    } else if (*r->result != representative) {
      co_return circus::Status(
          ErrorCode::kDisagreement,
          "quorum collator: troupe members returned different results");
    }
  }
  if (successes < minimum_successes) {
    co_return circus::Status(
        ErrorCode::kUnavailable,
        "quorum collator: only " + std::to_string(successes) + " of " +
            std::to_string(minimum_successes) +
            " required members reachable (partition suspected)");
  }
  co_return representative;
}

}  // namespace

Collator MakeQuorumUnanimousCollator(int minimum_successes) {
  return [minimum_successes](ReplyStream& s) {
    return QuorumUnanimousCollate(s, minimum_successes);
  };
}

Collator BuiltinCollator(Collation c) {
  switch (c) {
    case Collation::kUnanimous:
      return [](ReplyStream& s) { return UnanimousCollate(s); };
    case Collation::kFirstCome:
      return [](ReplyStream& s) { return FirstComeCollate(s); };
    case Collation::kMajority:
      return [](ReplyStream& s) { return MajorityCollate(s); };
  }
  return [](ReplyStream& s) { return UnanimousCollate(s); };
}

}  // namespace circus::core
