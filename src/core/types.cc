#include "src/core/types.h"

#include <cstdio>

namespace circus::core {

std::string ModuleAddress::ToString() const {
  return process.ToString() + "#" + std::to_string(module);
}

std::string TroupeId::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "troupe:%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string ThreadId::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "thread:%08x:%u:%u", machine, port, local);
  return buf;
}

}  // namespace circus::core
