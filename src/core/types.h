// Identifiers for troupes, modules, and distributed threads.
//
//  * A module address (Section 4.3) is a process address plus a 16-bit
//    module number indexing the process's table of exported interfaces.
//  * A troupe (Section 3.5.1) is a set of module addresses plus the
//    troupe ID assigned by the binding agent; the ID doubles as an
//    incarnation number for stale-binding detection (Section 6.2).
//  * A thread ID (Section 3.4.1) names one logical distributed thread of
//    control: the base process's machine and port plus a local counter.
//    Every call message bears the caller's thread ID, and a server
//    process adopts it while performing the call.
#ifndef SRC_CORE_TYPES_H_
#define SRC_CORE_TYPES_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "src/net/address.h"

namespace circus::core {

using ModuleNumber = uint16_t;
using ProcedureNumber = uint16_t;

// Module number of the runtime-internal module every process exports
// (set_troupe_id, ping, get_state plumbing).
inline constexpr ModuleNumber kRuntimeModule = 0xFFFF;

struct ModuleAddress {
  net::NetAddress process;
  ModuleNumber module = 0;

  constexpr auto operator<=>(const ModuleAddress&) const = default;
  std::string ToString() const;
};

// Permanently unique troupe ID (Section 6.3). Zero means "unbound": a
// direct, binding-agent-free call (used for the Ringmaster's own
// degenerate bootstrap binding and for plain unreplicated RPC).
struct TroupeId {
  uint64_t value = 0;

  constexpr auto operator<=>(const TroupeId&) const = default;
  bool bound() const { return value != 0; }
  std::string ToString() const;
};

struct ThreadId {
  uint32_t machine = 0;  // base process's host address
  uint16_t port = 0;     // base process's port
  uint16_t local = 0;    // distinguishes threads within the base process

  constexpr auto operator<=>(const ThreadId&) const = default;
  std::string ToString() const;
};

// A troupe as known to clients: the ID plus the member module addresses.
// Individual members do not know this set (they are unaware of one
// another); only clients and the binding agent hold it.
struct Troupe {
  TroupeId id;
  std::vector<ModuleAddress> members;

  size_t size() const { return members.size(); }
  bool operator==(const Troupe&) const = default;

  // A degenerate single-member "troupe" for direct unreplicated calls.
  static Troupe Direct(ModuleAddress member) {
    return Troupe{TroupeId{}, {member}};
  }
};

}  // namespace circus::core

#endif  // SRC_CORE_TYPES_H_
