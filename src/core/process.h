// RpcProcess: one Circus process — the unit that exports modules, makes
// and handles replicated procedure calls, and carries distributed threads
// across machines. The replicated call algorithms of Section 4.3 live
// here:
//
//  * one-to-many (client half): the same call message goes to every
//    server troupe member; a collator reduces the replies;
//  * many-to-one (server half): call messages from all members of the
//    client troupe are collected, the procedure is executed exactly once,
//    and the return message goes to every member heard from (late members
//    get the buffered result immediately, Section 4.3.4);
//  * many-to-many is the composition of the two — no further algorithm is
//    needed (Section 4.3.3), and troupe members never communicate among
//    themselves.
//
// Thread IDs propagate per Section 3.4.1: every call message carries the
// caller's thread ID and the server process adopts it for the duration of
// the execution, so nested calls carry it onward.
#ifndef SRC_CORE_PROCESS_H_
#define SRC_CORE_PROCESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/core/collator.h"
#include "src/core/types.h"
#include "src/core/wire.h"
#include "src/model/recorder.h"
#include "src/msg/paired_endpoint.h"
#include "src/net/socket.h"
#include "src/obs/bus.h"
#include "src/obs/metrics.h"
#include "src/sim/channel.h"
#include "src/sim/task.h"

namespace circus::core {

class RpcProcess;

// Context passed to every server-side procedure handler.
struct ServerCallContext {
  RpcProcess* process = nullptr;
  // The caller's thread, adopted for the execution (Section 3.4.1).
  ThreadId thread;
  uint32_t thread_seq = 0;
  TroupeId client_troupe;
  // The call messages collected for this many-to-one call: one argument
  // buffer per client troupe member heard from. Handlers that use
  // explicit replication (Section 7.4) may iterate these; transparent
  // handlers just take `arguments` below.
  std::vector<std::pair<net::NetAddress, circus::Bytes>> collected_arguments;
  // The collated arguments the handler should use.
  circus::Bytes arguments;

  // Makes a nested replicated call on the same logical thread.
  sim::Task<circus::StatusOr<circus::Bytes>> Call(const Troupe& server,
                                                  ModuleNumber module,
                                                  ProcedureNumber procedure,
                                                  circus::Bytes args);
};

using ProcedureHandler = std::function<sim::Task<circus::StatusOr<circus::Bytes>>(
    ServerCallContext&, const circus::Bytes&)>;

// Reserved procedures of the runtime module (kRuntimeModule), present in
// every process; produced "automatically" the way the stub compiler
// emits set_troupe_id and get_state (Sections 6.2, 6.4.1).
enum RuntimeProcedure : ProcedureNumber {
  kSetTroupeId = 0,  // args: u64 troupe id; empty result
  kPing = 1,         // the null "are you there?" call (Section 6.1)
  kGetState = 2,     // args: u16 module number; result: externalized state
};

struct CallOptions {
  // Collation of server replies; unset means the process default.
  std::optional<Collation> collation;
  // Custom collator (explicit replication, Section 7.4); overrides
  // `collation` when set.
  Collator custom_collator;
  // When set, the call message is multicast once to this group instead
  // of sent point-to-point to each member (Section 4.3.7); silent
  // members fall back to reliable unicast.
  std::optional<net::HostAddress> multicast_group;
  // Marks the call as coming from an unreplicated client even if this
  // process belongs to a troupe. Used for runtime-internal traffic (e.g.
  // a server resolving a client troupe ID through the binding agent)
  // that is made independently by each member rather than replicated
  // deterministically, so the server must not wait for the rest of the
  // troupe's copies.
  bool as_unreplicated_client = false;
  // The watchdog scheme (Section 4.3.4): computation proceeds with the
  // first successful reply, but a background watchdog keeps collecting
  // the remaining replies and compares them with the first; when the
  // set is complete it reports Ok (all agreed) or kDisagreement through
  // this callback, so the application can abort the surrounding
  // transaction. Crashed members do not count as disagreement. When set,
  // `collation`/`custom_collator` are ignored.
  std::function<void(const circus::Status&)> watchdog;
  // When > 0, requires at least this many identical successful replies
  // (unanimous-with-quorum); a majority of the expected set prevents
  // divergence across network partitions (Section 4.3.5). Ignored when
  // a custom collator or watchdog is given.
  int minimum_successes = 0;
};

struct RpcOptions {
  msg::EndpointOptions endpoint;
  Collation default_collation = Collation::kUnanimous;
  // How arguments of a many-to-one call are collated (Section 4.3.4):
  // kUnanimous waits for all available client members and demands
  // identical arguments; kFirstCome proceeds with the first message.
  Collation argument_collation = Collation::kUnanimous;
  // When false with kUnanimous collation, the server still waits for all
  // available client members' call messages but skips the equality
  // check: the handler collates ctx.collected_arguments itself — the
  // server-side argument generator of Section 7.4 (Figure 7.7's
  // temperature averaging).
  bool argument_unanimity_check = true;
  // How long the server waits for the remaining client members' call
  // messages before presuming the stragglers crashed.
  sim::Duration straggler_timeout = sim::Duration::Seconds(3);
  // Optimistic wait before the multicast fallback resends unicast.
  sim::Duration multicast_fallback = sim::Duration::Seconds(1);
  // User-mode CPU model for stubs and protocol bookkeeping (drives the
  // user-time column of Table 4.1). Zero by default; the perf benches
  // set Berkeley-flavoured values.
  sim::Duration client_user_cost_base;
  sim::Duration client_user_cost_per_member;
  sim::Duration server_user_cost;
  // How long a finished many-to-one call is retained so that late client
  // members still receive the buffered result.
  sim::Duration inbound_retention = sim::Duration::Seconds(60);
  // Planted bug for the wire auditor's negative self-test (chaos
  // duplicate_delivery_bug): when a duplicate call message reaches a
  // peer we already replied to, re-send the buffered return mangled —
  // reusing the message's call number with different payload bytes,
  // which a correct Section 4.2 implementation never does.
  bool redeliver_duplicates_bug = false;
};

class RpcProcess {
 public:
  // Resolves a client troupe ID to its membership; wired up by the
  // binding layer (a local cache backed by the Ringmaster,
  // Section 4.3.2).
  using TroupeResolver =
      std::function<sim::Task<circus::StatusOr<Troupe>>(TroupeId)>;

  RpcProcess(net::Fabric* fabric, sim::Host* host, net::Port port,
             RpcOptions options = {});
  RpcProcess(const RpcProcess&) = delete;
  RpcProcess& operator=(const RpcProcess&) = delete;
  ~RpcProcess();

  sim::Host* host() const { return host_; }
  net::NetAddress process_address() const { return socket_->local_address(); }
  ModuleAddress module_address(ModuleNumber m) const {
    return ModuleAddress{process_address(), m};
  }
  const RpcOptions& options() const { return options_; }
  msg::PairedEndpoint& endpoint() { return *endpoint_; }

  // ------------------------------------------------------ server role --
  // Registers an interface and returns its module number (the index into
  // the table of exported interfaces, Section 4.3).
  ModuleNumber ExportModule(const std::string& interface_name);
  void ExportProcedure(ModuleNumber module, ProcedureNumber procedure,
                       ProcedureHandler handler);
  // get_state support (Section 6.4.1): provider externalizes the module
  // state; acceptor internalizes it on a fresh member.
  void SetStateProvider(ModuleNumber module,
                        std::function<circus::Bytes()> provider);
  std::optional<ModuleNumber> FindModule(const std::string& name) const;

  void SetTroupeId(TroupeId id) { troupe_id_ = id; }
  TroupeId troupe_id() const { return troupe_id_; }

  void SetClientTroupeResolver(TroupeResolver resolver) {
    troupe_resolver_ = std::move(resolver);
  }

  // Joins the hardware multicast group a troupe uses (Section 4.3.7).
  void JoinMulticastGroup(net::HostAddress group) {
    socket_->JoinGroup(group);
  }

  // Attaches a trace recorder: the process records its per-thread
  // execution history (outgoing calls/returns at the client side,
  // executions at the server side), so that troupe members' behaviour
  // can be compared for determinism (Sections 3.3 and 3.5.2).
  void SetTraceRecorder(model::TraceRecorder* recorder) {
    recorder_ = recorder;
  }

  // The World's observability hub, reached through the network (null
  // outside a World). Layers built on top of RpcProcess (binding, txn)
  // publish their protocol events here.
  obs::EventBus* event_bus() const { return fabric_->event_bus(); }
  obs::MetricsRegistry* metrics() const { return fabric_->metrics(); }

  // ------------------------------------------------------ client role --
  // Creates a fresh logical thread rooted at this (base) process.
  ThreadId NewRootThread();

  // The replicated procedure call: exactly-once execution at every
  // member of `server`, one collated result back.
  sim::Task<circus::StatusOr<circus::Bytes>> Call(ThreadId thread,
                                                  const Troupe& server,
                                                  ModuleNumber module,
                                                  ProcedureNumber procedure,
                                                  circus::Bytes args,
                                                  CallOptions opts = {});

  // ------------------------------------------------------ diagnostics --
  struct Stats {
    uint64_t calls_made = 0;
    uint64_t calls_executed = 0;           // procedures actually run
    uint64_t call_messages_received = 0;   // incl. extra replicas' copies
    uint64_t stale_bindings_rejected = 0;
    uint64_t argument_disagreements = 0;
    uint64_t late_members_served = 0;      // buffered result re-sent
  };
  const Stats& stats() const { return stats_; }

 private:
  struct InboundKey {
    TroupeId client_troupe;
    ThreadId thread;
    uint32_t thread_seq;
    auto operator<=>(const InboundKey&) const = default;
  };
  struct InboundCall {
    explicit InboundCall(sim::Host* host) : arrivals(host) {}
    // peer process -> (paired-message call number, arguments).
    std::map<net::NetAddress, std::pair<uint32_t, circus::Bytes>> received;
    std::set<net::NetAddress> replied_to;
    std::optional<circus::Bytes> return_payload;  // encoded ReturnBody
    sim::Channel<int> arrivals;
  };

  uint32_t NextThreadSeq(const ThreadId& thread);
  uint32_t NextMessageCallNumber() { return next_msg_call_++; }

  sim::Task<void> DispatchLoop();
  sim::Task<void> HandleInbound(InboundKey key,
                                std::shared_ptr<InboundCall> call,
                                CallBody first_body);
  sim::Task<void> SendReturnTo(net::NetAddress peer, uint32_t msg_call_number,
                               circus::Bytes payload);
  sim::Task<void> CallOneMember(ModuleAddress member, uint32_t msg_call,
                                circus::Bytes encoded,
                                std::shared_ptr<internal::ReplyStreamState>
                                    stream_state);
  sim::Task<void> AwaitMulticastReply(
      ModuleAddress member, uint32_t msg_call, circus::Bytes encoded,
      std::shared_ptr<internal::ReplyStreamState> stream_state);
  // Consumes the replies a first-come collation left behind and reports
  // agreement or disagreement through `report` (Section 4.3.4).
  sim::Task<void> WatchdogTask(
      ReplyStream stream, circus::Bytes first_value, bool have_first,
      std::function<void(const circus::Status&)> report);
  void InstallRuntimeModule();

  void RecordEvent(const ThreadId& thread, model::Event event) {
    if (recorder_ != nullptr) {
      recorder_->Record(thread.ToString(), std::move(event));
    }
  }

  // Publishes a call-level event (issue/collate/execute) to the World's
  // bus; no-op when nobody subscribed. `payload` carries the marshalled
  // arguments or result so bus subscribers see exactly what a directly
  // attached TraceRecorder would.
  void PublishCallEvent(obs::EventKind kind, const ThreadId& thread,
                        uint32_t thread_seq, uint64_t module,
                        uint64_t procedure, const circus::Bytes* payload,
                        uint64_t c);

  net::Fabric* fabric_;
  sim::Host* host_;
  model::TraceRecorder* recorder_ = nullptr;
  obs::EventBus* bus_ = nullptr;  // cached from the network at construction
  obs::Histogram* collator_wait_metric_ = nullptr;
  RpcOptions options_;
  std::unique_ptr<net::DatagramSocket> socket_;
  std::unique_ptr<msg::PairedEndpoint> endpoint_;
  TroupeId troupe_id_;
  TroupeResolver troupe_resolver_;

  struct Module {
    std::string name;
    std::map<ProcedureNumber, ProcedureHandler> procedures;
    std::function<circus::Bytes()> state_provider;
  };
  std::vector<Module> modules_;
  std::map<ProcedureNumber, ProcedureHandler> runtime_procedures_;

  // Held via shared_ptr so the retention-expiry callbacks scheduled on
  // the executor can outlive this process safely (they capture a weak
  // pointer).
  std::shared_ptr<std::map<InboundKey, std::shared_ptr<InboundCall>>>
      inbound_ = std::make_shared<
          std::map<InboundKey, std::shared_ptr<InboundCall>>>();
  std::map<ThreadId, uint32_t> thread_seq_;
  uint32_t next_msg_call_ = 1;
  uint16_t next_local_thread_ = 1;
  Stats stats_;
};

}  // namespace circus::core

#endif  // SRC_CORE_PROCESS_H_
