// Collators (Sections 4.3.6 and 7.4): functions that reduce the set of
// reply messages from a server troupe to a single result. A ReplyStream
// is the C++ rendering of the dissertation's "generator of messages from
// a troupe" (Figure 7.11): awaiting Next() yields each member's reply as
// it arrives, so a collator can finish as soon as it has seen enough —
// the lazy evaluation the paper calls for.
//
// Three collators are supported at the protocol level, exactly as in the
// paper: unanimous (Figure 7.8), first-come (Figure 7.9), and majority
// (Figure 7.10). Programmers supply their own by passing any callable of
// the Collator signature (explicit replication, Section 7.4).
#ifndef SRC_CORE_COLLATOR_H_
#define SRC_CORE_COLLATOR_H_

#include <functional>
#include <memory>
#include <optional>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/core/types.h"
#include "src/sim/channel.h"
#include "src/sim/task.h"

namespace circus::core {

// One server troupe member's contribution to a replicated call: either
// its result bytes or the member-level failure (crash detected, stale
// binding rejection, remote error...).
struct Reply {
  ModuleAddress member;
  circus::StatusOr<circus::Bytes> result;
};

namespace internal {
struct ReplyStreamState {
  explicit ReplyStreamState(sim::Host* host, int expected_count)
      : channel(host), expected(expected_count) {}
  sim::Channel<Reply> channel;
  int expected;
};
}  // namespace internal

class ReplyStream {
 public:
  ReplyStream(sim::Host* host, int expected)
      : state_(std::make_shared<internal::ReplyStreamState>(host, expected)) {
  }

  // The number of server troupe members a reply is expected from.
  int expected() const { return state_->expected; }
  int consumed() const { return consumed_; }

  // Yields the next reply, or nullopt once every member has been
  // accounted for. May suspend; wakes with HostCrashedError if the local
  // host crashes.
  sim::Task<std::optional<Reply>> Next() {
    if (consumed_ >= state_->expected) {
      co_return std::nullopt;
    }
    std::optional<Reply> r = co_await state_->channel.Receive();
    ++consumed_;
    co_return std::move(r);
  }

  // Producer side (held by the per-member await tasks, which may outlive
  // an early-finishing collator; the shared state keeps late pushes
  // safe).
  std::shared_ptr<internal::ReplyStreamState> shared_state() {
    return state_;
  }

 private:
  std::shared_ptr<internal::ReplyStreamState> state_;
  int consumed_ = 0;
};

// A collator maps the stream of replies to one result.
using Collator =
    std::function<sim::Task<circus::StatusOr<circus::Bytes>>(ReplyStream&)>;

// Requires every reply that arrives to be identical; raises
// kDisagreement otherwise (error detection as well as correction,
// Section 4.3.4). Waits for all members, so execution time is governed
// by the slowest member. This is the Circus default.
sim::Task<circus::StatusOr<circus::Bytes>> UnanimousCollate(
    ReplyStream& stream);

// Accepts the first successful reply (execution time governed by the
// fastest member; forfeits error detection).
sim::Task<circus::StatusOr<circus::Bytes>> FirstComeCollate(
    ReplyStream& stream);

// Majority voting over the expected member set; returns as soon as some
// value has more than half the expected votes, raises kNoMajority if
// none can.
sim::Task<circus::StatusOr<circus::Bytes>> MajorityCollate(
    ReplyStream& stream);

// A typed view over a ReplyStream: decodes each member's reply with a
// caller-supplied decoder, giving application collators the type-safe
// generator interface of Section 7.4 (a "generator () yields (T)").
template <typename T>
struct TypedReply {
  ModuleAddress member;
  circus::StatusOr<T> result;
};

template <typename T>
class TypedReplyStream {
 public:
  using Decoder = std::function<circus::StatusOr<T>(const circus::Bytes&)>;

  TypedReplyStream(ReplyStream& raw, Decoder decoder)
      : raw_(raw), decoder_(std::move(decoder)) {}

  int expected() const { return raw_.expected(); }

  sim::Task<std::optional<TypedReply<T>>> Next() {
    std::optional<Reply> r = co_await raw_.Next();
    if (!r.has_value()) {
      co_return std::nullopt;
    }
    if (!r->result.ok()) {
      co_return TypedReply<T>{r->member, r->result.status()};
    }
    co_return TypedReply<T>{r->member, decoder_(*r->result)};
  }

 private:
  ReplyStream& raw_;
  Decoder decoder_;
};

// Adapts a typed collator (over decoded T replies) plus an encoder back
// to the byte-level Collator the call machinery runs. Stub compilers use
// this to give programmers type-safe explicit replication (Section 7.4).
template <typename T>
Collator MakeTypedCollator(
    typename TypedReplyStream<T>::Decoder decoder,
    std::function<circus::Bytes(const T&)> encoder,
    std::function<sim::Task<circus::StatusOr<T>>(TypedReplyStream<T>&)>
        collate) {
  return [decoder, encoder,
          collate](ReplyStream& raw) -> sim::Task<circus::StatusOr<circus::Bytes>> {
    TypedReplyStream<T> typed(raw, decoder);
    circus::StatusOr<T> result = co_await collate(typed);
    if (!result.ok()) {
      co_return result.status();
    }
    co_return encoder(*result);
  };
}

// Unanimous with a quorum requirement: at least `minimum_successes`
// members must reply (successfully and identically). Requiring a
// majority of the expected set prevents troupe members in different
// network partitions from diverging (Section 4.3.5): a client cut off
// with a minority of the troupe cannot complete calls.
Collator MakeQuorumUnanimousCollator(int minimum_successes);

enum class Collation {
  kUnanimous,
  kFirstCome,
  kMajority,
};

Collator BuiltinCollator(Collation c);

}  // namespace circus::core

#endif  // SRC_CORE_COLLATOR_H_
