#include "src/core/process.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/marshal/marshal.h"

namespace circus::core {

using circus::Status;
using sim::Duration;
using sim::Syscall;
using sim::Task;

RpcProcess::RpcProcess(net::Fabric* fabric, sim::Host* host,
                       net::Port port, RpcOptions options)
    : fabric_(fabric),
      host_(host),
      options_(options),
      socket_(std::make_unique<net::DatagramSocket>(fabric, host, port)),
      endpoint_(std::make_unique<msg::PairedEndpoint>(socket_.get(),
                                                      options.endpoint)) {
  // Seed message call numbers and local thread numbers from the clock,
  // Birrell & Nelson-style: a process rebooted at the same address must
  // not reuse identifiers its predecessor used, or peers' duplicate-
  // suppression tables would swallow its first calls and stale buffered
  // results would shadow new ones.
  const uint64_t boot_us =
      static_cast<uint64_t>(host->executor().now().nanos() / 1000);
  next_msg_call_ = static_cast<uint32_t>(boot_us % 0x3FFFFFFF) + 1;
  next_local_thread_ = static_cast<uint16_t>(boot_us % 0x7FFF) + 1;
  bus_ = fabric->event_bus();
  if (obs::MetricsRegistry* metrics = fabric->metrics();
      metrics != nullptr) {
    collator_wait_metric_ = metrics->GetHistogram("rpc.collator_wait_ms");
  }
  InstallRuntimeModule();
  host_->Spawn(DispatchLoop());
}

void RpcProcess::PublishCallEvent(obs::EventKind kind, const ThreadId& thread,
                                  uint32_t thread_seq, uint64_t module,
                                  uint64_t procedure,
                                  const circus::Bytes* payload, uint64_t c) {
  if (bus_ == nullptr || !bus_->active()) {
    return;
  }
  obs::Event e;
  e.kind = kind;
  e.host = static_cast<uint32_t>(host_->id());
  const net::NetAddress self = process_address();
  e.origin = obs::PackAddress(self.host, self.port);
  e.thread = obs::ThreadRef{thread.machine, thread.port, thread.local};
  e.thread_seq = thread_seq;
  e.a = module;
  e.b = procedure;
  e.c = c;
  if (payload != nullptr) {
    e.payload = *payload;
  }
  bus_->Publish(std::move(e));
}

RpcProcess::~RpcProcess() = default;

// ------------------------------------------------------------- exports --

ModuleNumber RpcProcess::ExportModule(const std::string& interface_name) {
  modules_.push_back(Module{interface_name, {}, nullptr});
  return static_cast<ModuleNumber>(modules_.size() - 1);
}

void RpcProcess::ExportProcedure(ModuleNumber module,
                                 ProcedureNumber procedure,
                                 ProcedureHandler handler) {
  CIRCUS_CHECK(module < modules_.size());
  modules_[module].procedures[procedure] = std::move(handler);
}

void RpcProcess::SetStateProvider(ModuleNumber module,
                                  std::function<circus::Bytes()> provider) {
  CIRCUS_CHECK(module < modules_.size());
  modules_[module].state_provider = std::move(provider);
}

std::optional<ModuleNumber> RpcProcess::FindModule(
    const std::string& name) const {
  for (size_t i = 0; i < modules_.size(); ++i) {
    if (modules_[i].name == name) {
      return static_cast<ModuleNumber>(i);
    }
  }
  return std::nullopt;
}

void RpcProcess::InstallRuntimeModule() {
  // The runtime module is what the stub compiler would generate for
  // every server: set_troupe_id (Section 6.2), the null call used for
  // garbage-collection probing (Section 6.1), and get_state for bringing
  // new troupe members up to date (Section 6.4.1). It lives at a
  // reserved module number and is dispatched like any other module.
  runtime_procedures_[kSetTroupeId] =
      [this](ServerCallContext&,
             const circus::Bytes& args) -> Task<circus::StatusOr<circus::Bytes>> {
    marshal::Reader r(args);
    const uint64_t id = r.ReadU64();
    if (!r.AtEnd()) {
      co_return Status(ErrorCode::kProtocolError, "bad set_troupe_id args");
    }
    SetTroupeId(TroupeId{id});
    co_return circus::Bytes{};
  };
  runtime_procedures_[kPing] =
      [](ServerCallContext&,
         const circus::Bytes&) -> Task<circus::StatusOr<circus::Bytes>> {
    co_return circus::Bytes{};
  };
  runtime_procedures_[kGetState] =
      [this](ServerCallContext&,
             const circus::Bytes& args) -> Task<circus::StatusOr<circus::Bytes>> {
    marshal::Reader r(args);
    const ModuleNumber module = r.ReadU16();
    if (!r.AtEnd() || module >= modules_.size()) {
      co_return Status(ErrorCode::kInvalidArgument, "bad get_state module");
    }
    if (!modules_[module].state_provider) {
      co_return Status(ErrorCode::kFailedPrecondition,
                       "module has no state provider");
    }
    co_return modules_[module].state_provider();
  };
}

// -------------------------------------------------------------- client --

ThreadId RpcProcess::NewRootThread() {
  const net::NetAddress self = process_address();
  return ThreadId{self.host, self.port, next_local_thread_++};
}

uint32_t RpcProcess::NextThreadSeq(const ThreadId& thread) {
  return ++thread_seq_[thread];
}

Task<circus::StatusOr<circus::Bytes>> RpcProcess::Call(
    ThreadId thread, const Troupe& server, ModuleNumber module,
    ProcedureNumber procedure, circus::Bytes args, CallOptions opts) {
  if (server.members.empty()) {
    co_return Status(ErrorCode::kUnavailable, "troupe has no members");
  }
  // Troupe members must be distinct processes: replicas sharing one
  // process would not have independent failure modes.
  for (size_t i = 0; i < server.members.size(); ++i) {
    for (size_t j = i + 1; j < server.members.size(); ++j) {
      CIRCUS_CHECK_MSG(
          server.members[i].process != server.members[j].process,
          "troupe members must live in distinct processes");
    }
  }
  ++stats_.calls_made;
  // The measurement bracketing of Section 4.4.1 (gettimeofday before and
  // after each call) is part of the runtime cost.
  host_->ChargeSyscallInstant(Syscall::kGetTimeOfDay);

  CallBody body;
  body.thread = thread;
  body.thread_seq = NextThreadSeq(thread);
  body.client_troupe = opts.as_unreplicated_client ? TroupeId{} : troupe_id_;
  body.server_troupe = server.id;
  body.module = module;
  body.procedure = procedure;
  body.arguments = std::move(args);
  // Client-side history: the call event (Section 3.3.1).
  RecordEvent(thread, model::MakeCall(module, procedure, body.arguments));
  PublishCallEvent(obs::EventKind::kCallIssue, thread, body.thread_seq,
                   module, procedure, &body.arguments,
                   server.members.size());
  circus::Bytes encoded = body.Encode();

  // Stub/user-mode bookkeeping cost (the user-time column of Table 4.1
  // grows with the troupe size).
  const Duration user_cost =
      options_.client_user_cost_base +
      options_.client_user_cost_per_member *
          static_cast<int64_t>(server.members.size());
  if (user_cost > Duration::Zero()) {
    co_await host_->Compute(user_cost);
  }

  const uint32_t msg_call = NextMessageCallNumber();
  // Marshal + stub bookkeeping is done; the fan-out starts here. The
  // paired-message call number in `c` is the join key that lets the
  // LatencyAttributor charge segment retransmits to this call.
  PublishCallEvent(obs::EventKind::kCallFanout, thread, body.thread_seq,
                   module, procedure, nullptr, msg_call);
  const sim::TimePoint fanout_start = host_->executor().now();
  ReplyStream stream(host_, static_cast<int>(server.members.size()));
  if (opts.multicast_group.has_value()) {
    co_await endpoint_->BlastMulticast(
        net::NetAddress{*opts.multicast_group, 0}, msg::MessageType::kCall,
        msg_call, encoded);
    for (const ModuleAddress& member : server.members) {
      host_->Spawn(AwaitMulticastReply(member, msg_call, encoded,
                                       stream.shared_state()));
    }
  } else {
    for (const ModuleAddress& member : server.members) {
      host_->Spawn(
          CallOneMember(member, msg_call, encoded, stream.shared_state()));
    }
  }

  circus::StatusOr<circus::Bytes> result =
      Status(ErrorCode::kUnavailable, "no collation ran");
  if (opts.watchdog) {
    // First-come with background verification (Section 4.3.4).
    result = co_await FirstComeCollate(stream);
    host_->Spawn(WatchdogTask(stream,
                              result.ok() ? *result : circus::Bytes{},
                              result.ok(), opts.watchdog));
  } else {
    Collator collator =
        opts.custom_collator ? opts.custom_collator
        : opts.minimum_successes > 0
            ? MakeQuorumUnanimousCollator(opts.minimum_successes)
            : BuiltinCollator(
                  opts.collation.value_or(options_.default_collation));
    result = co_await collator(stream);
  }
  // Time from fan-out to collated outcome: the collator-wait latency.
  if (collator_wait_metric_ != nullptr) {
    collator_wait_metric_->Observe(
        static_cast<double>(
            (host_->executor().now() - fanout_start).nanos()) /
        1e6);
  }
  host_->ChargeSyscallInstant(Syscall::kGetTimeOfDay);
  // Client-side history: the matching return event (error returns are
  // recorded with the status text so divergent failures are visible).
  circus::Bytes outcome =
      result.ok() ? *result
                  : circus::BytesFromString("!" + result.status().ToString());
  RecordEvent(thread, model::MakeReturn(module, procedure, outcome));
  PublishCallEvent(obs::EventKind::kCallCollate, thread, body.thread_seq,
                   module, procedure, &outcome, result.ok() ? 1 : 0);
  co_return result;
}

Task<void> RpcProcess::CallOneMember(
    ModuleAddress member, uint32_t msg_call, circus::Bytes encoded,
    std::shared_ptr<internal::ReplyStreamState> stream_state) {
  Status sent = co_await endpoint_->SendMessage(
      member.process, msg::MessageType::kCall, msg_call, std::move(encoded));
  if (!sent.ok()) {
    stream_state->channel.Send(Reply{member, sent});
    co_return;
  }
  circus::StatusOr<msg::Message> m =
      co_await endpoint_->AwaitReturn(member.process, msg_call);
  if (!m.ok()) {
    stream_state->channel.Send(Reply{member, m.status()});
    co_return;
  }
  std::optional<ReturnBody> ret = ReturnBody::Decode(m->data);
  if (!ret.has_value()) {
    stream_state->channel.Send(Reply{
        member, Status(ErrorCode::kProtocolError, "bad return message")});
    co_return;
  }
  stream_state->channel.Send(Reply{member, std::move(*ret).ToStatusOr()});
}

Task<void> RpcProcess::AwaitMulticastReply(
    ModuleAddress member, uint32_t msg_call, circus::Bytes encoded,
    std::shared_ptr<internal::ReplyStreamState> stream_state) {
  // Optimistic phase: the single multicast transmission usually reaches
  // the member and its return message doubles as the acknowledgment.
  std::optional<msg::Message> quick = co_await endpoint_->TryAwaitReturn(
      member.process, msg_call, options_.multicast_fallback);
  if (!quick.has_value()) {
    // Fall back to the reliable point-to-point path; the server
    // suppresses the duplicate if the multicast did arrive.
    Status sent = co_await endpoint_->SendMessage(member.process,
                                                  msg::MessageType::kCall,
                                                  msg_call, std::move(encoded));
    if (!sent.ok()) {
      stream_state->channel.Send(Reply{member, sent});
      co_return;
    }
    circus::StatusOr<msg::Message> m =
        co_await endpoint_->AwaitReturn(member.process, msg_call);
    if (!m.ok()) {
      stream_state->channel.Send(Reply{member, m.status()});
      co_return;
    }
    quick = std::move(*m);
  }
  std::optional<ReturnBody> ret = ReturnBody::Decode(quick->data);
  if (!ret.has_value()) {
    stream_state->channel.Send(Reply{
        member, Status(ErrorCode::kProtocolError, "bad return message")});
    co_return;
  }
  stream_state->channel.Send(Reply{member, std::move(*ret).ToStatusOr()});
}

Task<void> RpcProcess::WatchdogTask(
    ReplyStream stream, circus::Bytes first_value, bool have_first,
    std::function<void(const circus::Status&)> report) {
  // The stream's consumed-count carries over: this continues where the
  // first-come collation stopped.
  bool mismatch = false;
  while (true) {
    std::optional<Reply> r = co_await stream.Next();
    if (!r.has_value()) {
      break;
    }
    if (!r->result.ok()) {
      continue;  // a crashed member is a masked failure, not divergence
    }
    if (!have_first) {
      first_value = std::move(*r->result);
      have_first = true;
      continue;
    }
    if (*r->result != first_value) {
      mismatch = true;
    }
  }
  report(mismatch
             ? Status(ErrorCode::kDisagreement,
                      "watchdog: a slower troupe member returned a "
                      "different result")
             : Status::Ok());
}

// -------------------------------------------------------------- server --

Task<void> RpcProcess::DispatchLoop() {
  while (true) {
    msg::Message m = co_await endpoint_->NextIncomingCall();
    ++stats_.call_messages_received;
    std::optional<CallBody> body = CallBody::Decode(m.data);
    if (!body.has_value()) {
      CIRCUS_LOG_AT(LogLevel::kDebug, host_->executor().now().nanos())
          << "undecodable call message from " << m.peer.ToString();
      continue;
    }
    // Incarnation check (Section 6.2): a call addressed to a troupe ID we
    // no longer carry means the client's binding cache is stale. An
    // unbound (zero) destination is the binding-agent-free path.
    if (body->server_troupe.bound() && body->server_troupe != troupe_id_) {
      ++stats_.stale_bindings_rejected;
      PublishCallEvent(obs::EventKind::kStaleBindingReject, body->thread,
                       body->thread_seq, body->module, body->procedure,
                       nullptr, 0);
      host_->Spawn(SendReturnTo(
          m.peer, m.call_number,
          ReturnBody::Error(ErrorCode::kStaleBinding,
                            "troupe ID mismatch: rebind required")
              .Encode()));
      continue;
    }
    const InboundKey key{body->client_troupe, body->thread,
                         body->thread_seq};
    auto it = inbound_->find(key);
    if (it == inbound_->end()) {
      // First call message of a new inbound call: admitted to dispatch.
      // Time from here to kExecuteBegin is the server-queue stage
      // (argument collation wait + handler scheduling).
      PublishCallEvent(obs::EventKind::kCallAdmit, body->thread,
                       body->thread_seq, body->module, body->procedure,
                       nullptr, m.call_number);
      auto call = std::make_shared<InboundCall>(host_);
      call->received[m.peer] = {m.call_number, body->arguments};
      (*inbound_)[key] = call;
      host_->Spawn(HandleInbound(key, call, std::move(*body)));
      continue;
    }
    std::shared_ptr<InboundCall> call = it->second;
    if (call->return_payload.has_value()) {
      // A slow client troupe member's call arrived after execution: the
      // buffered return message makes execution appear instantaneous to
      // it (Section 4.3.4).
      if (!call->replied_to.contains(m.peer)) {
        call->replied_to.insert(m.peer);
        ++stats_.late_members_served;
        PublishCallEvent(obs::EventKind::kLateReplyServed, body->thread,
                         body->thread_seq, body->module, body->procedure,
                         nullptr, 0);
        host_->Spawn(
            SendReturnTo(m.peer, m.call_number, *call->return_payload));
      } else if (options_.redeliver_duplicates_bug) {
        // Planted bug: answer the duplicate again, with the buffered
        // return mangled — call-number reuse the wire auditor must flag.
        circus::Bytes mangled = *call->return_payload;
        mangled.push_back(0x5A);
        host_->Spawn(SendReturnTo(m.peer, m.call_number, std::move(mangled)));
      }
      continue;
    }
    call->received[m.peer] = {m.call_number, body->arguments};
    call->arrivals.Send(1);
  }
}

Task<void> RpcProcess::SendReturnTo(net::NetAddress peer,
                                    uint32_t msg_call_number,
                                    circus::Bytes payload) {
  Status s = co_await endpoint_->SendMessage(
      peer, msg::MessageType::kReturn, msg_call_number, std::move(payload));
  if (!s.ok()) {
    CIRCUS_LOG_AT(LogLevel::kDebug, host_->executor().now().nanos())
        << "return to " << peer.ToString() << " undeliverable: "
        << s.ToString();
  }
}

Task<void> RpcProcess::HandleInbound(InboundKey key,
                                     std::shared_ptr<InboundCall> call,
                                     CallBody first_body) {
  // 1. Learn the client troupe membership so we know how many call
  //    messages to expect (Section 4.3.2).
  size_t expected_count = 1;
  if (key.client_troupe.bound() && troupe_resolver_) {
    circus::StatusOr<Troupe> troupe =
        co_await troupe_resolver_(key.client_troupe);
    if (troupe.ok()) {
      expected_count = troupe->members.size();
    }
  }

  // 2. Wait for the call messages per the argument collation policy.
  if (options_.argument_collation != Collation::kFirstCome &&
      expected_count > 1) {
    while (call->received.size() < expected_count) {
      std::optional<int> more = co_await call->arrivals.ReceiveWithTimeout(
          options_.straggler_timeout);
      if (!more.has_value()) {
        // Stragglers presumed crashed; proceed with the available
        // members, as the client half does with crashed servers
        // (Section 4.3.1).
        break;
      }
    }
  }

  // 3. Collate the argument messages.
  ServerCallContext ctx;
  ctx.process = this;
  ctx.thread = key.thread;
  ctx.thread_seq = key.thread_seq;
  ctx.client_troupe = key.client_troupe;
  for (const auto& [peer, entry] : call->received) {
    ctx.collected_arguments.emplace_back(peer, entry.second);
  }
  circus::Bytes return_payload;
  bool argument_failure = false;
  if (options_.argument_collation == Collation::kUnanimous &&
      options_.argument_unanimity_check) {
    for (const auto& [peer, argbytes] : ctx.collected_arguments) {
      if (argbytes != ctx.collected_arguments.front().second) {
        ++stats_.argument_disagreements;
        return_payload =
            ReturnBody::Error(ErrorCode::kDisagreement,
                              "client troupe members sent different "
                              "arguments")
                .Encode();
        argument_failure = true;
        break;
      }
    }
    ctx.arguments = ctx.collected_arguments.front().second;
  } else if (options_.argument_collation == Collation::kMajority) {
    std::map<circus::Bytes, int> votes;
    const int needed = static_cast<int>(expected_count) / 2 + 1;
    bool found = false;
    for (const auto& [peer, argbytes] : ctx.collected_arguments) {
      if (++votes[argbytes] >= needed) {
        ctx.arguments = argbytes;
        found = true;
        break;
      }
    }
    if (!found) {
      ++stats_.argument_disagreements;
      return_payload = ReturnBody::Error(ErrorCode::kNoMajority,
                                         "no argument majority")
                           .Encode();
      argument_failure = true;
    }
  } else {
    ctx.arguments = ctx.collected_arguments.front().second;
  }

  // 4. Execute the procedure exactly once.
  if (!argument_failure) {
    ProcedureHandler* handler = nullptr;
    if (first_body.module == kRuntimeModule) {
      auto pit = runtime_procedures_.find(first_body.procedure);
      if (pit != runtime_procedures_.end()) {
        handler = &pit->second;
      }
    } else if (first_body.module < modules_.size()) {
      auto pit =
          modules_[first_body.module].procedures.find(first_body.procedure);
      if (pit != modules_[first_body.module].procedures.end()) {
        handler = &pit->second;
      }
    } else {
      return_payload =
          ReturnBody::Error(ErrorCode::kStaleBinding,
                            "no such module exported here")
              .Encode();
    }
    if (handler != nullptr) {
      if (options_.server_user_cost > Duration::Zero()) {
        co_await host_->Compute(options_.server_user_cost);
      }
      ++stats_.calls_executed;
      // Adopt the caller's position in the thread's call sequence, so the
      // handler's nested calls continue the thread's numbering instead of
      // restarting from this process's own counter (which would reuse the
      // enclosing call's seq and break cross-host trace correlation).
      // Every replica sees the same inbound seq, so replicas still issue
      // identical nested (thread, seq) pairs for many-to-one collation.
      uint32_t& adopted_seq = thread_seq_[key.thread];
      if (adopted_seq < key.thread_seq) {
        adopted_seq = key.thread_seq;
      }
      // Server-side history: the execution of the call on the adopted
      // thread. Nested calls made by the handler are recorded between
      // this call event and its return event, giving exactly the
      // invocation-tree structure of Section 3.3.1.
      RecordEvent(key.thread, model::MakeCall(first_body.module,
                                              first_body.procedure,
                                              ctx.arguments));
      PublishCallEvent(obs::EventKind::kExecuteBegin, key.thread,
                       key.thread_seq, first_body.module,
                       first_body.procedure, &ctx.arguments,
                       call->received.size());
      circus::StatusOr<circus::Bytes> result =
          co_await (*handler)(ctx, ctx.arguments);
      circus::Bytes outcome =
          result.ok()
              ? *result
              : circus::BytesFromString("!" + result.status().ToString());
      RecordEvent(key.thread, model::MakeReturn(first_body.module,
                                                first_body.procedure,
                                                outcome));
      PublishCallEvent(obs::EventKind::kExecuteEnd, key.thread,
                       key.thread_seq, first_body.module,
                       first_body.procedure, &outcome,
                       result.ok() ? 1 : 0);
      if (result.ok()) {
        return_payload =
            ReturnBody::Success(std::move(result).value()).Encode();
      } else {
        // The handler's error code travels verbatim in the error result
        // (exception passing through the return message, Section 4.3).
        return_payload = ReturnBody::Error(result.status().code(),
                                           result.status().message())
                             .Encode();
      }
    } else if (return_payload.empty()) {
      return_payload = ReturnBody::Error(ErrorCode::kNotFound,
                                         "no such procedure")
                           .Encode();
    }
  }

  // 5. Send the return message to every client troupe member heard from.
  call->return_payload = return_payload;
  for (const auto& [peer, entry] : call->received) {
    if (call->replied_to.insert(peer).second) {
      host_->Spawn(SendReturnTo(peer, entry.first, return_payload));
    }
  }

  // 6. Retire the call record after the retention window (late members
  //    arriving within it are served from the buffer by the dispatcher).
  host_->executor().ScheduleAfter(
      options_.inbound_retention,
      [weak = std::weak_ptr(inbound_), key] {
        if (std::shared_ptr<std::map<InboundKey,
                                     std::shared_ptr<InboundCall>>>
                map = weak.lock()) {
          map->erase(key);
        }
      });
}

// ------------------------------------------------- nested calls (ctx) --

Task<circus::StatusOr<circus::Bytes>> ServerCallContext::Call(
    const Troupe& server, ModuleNumber module, ProcedureNumber procedure,
    circus::Bytes args) {
  // The server process adopts the caller's thread ID for the duration of
  // the execution, so nested calls propagate it (Section 3.4.1).
  return process->Call(thread, server, module, procedure, std::move(args));
}

}  // namespace circus::core
