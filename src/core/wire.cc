#include "src/core/wire.h"

#include "src/marshal/marshal.h"

namespace circus::core {

circus::Bytes CallBody::Encode() const {
  marshal::Writer w;
  w.WriteU32(thread.machine);
  w.WriteU16(thread.port);
  w.WriteU16(thread.local);
  w.WriteU32(thread_seq);
  w.WriteU64(client_troupe.value);
  w.WriteU64(server_troupe.value);
  w.WriteU16(module);
  w.WriteU16(procedure);
  w.WriteBytes(arguments);
  return w.Take();
}

std::optional<CallBody> CallBody::Decode(const circus::Bytes& raw) {
  marshal::Reader r(raw);
  CallBody b;
  b.thread.machine = r.ReadU32();
  b.thread.port = r.ReadU16();
  b.thread.local = r.ReadU16();
  b.thread_seq = r.ReadU32();
  b.client_troupe.value = r.ReadU64();
  b.server_troupe.value = r.ReadU64();
  b.module = r.ReadU16();
  b.procedure = r.ReadU16();
  b.arguments = r.ReadBytes();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return b;
}

circus::Bytes ReturnBody::Encode() const {
  marshal::Writer w;
  w.WriteU16(is_error ? 1 : 0);
  if (is_error) {
    w.WriteU16(static_cast<uint16_t>(error_code));
    w.WriteString(error_message);
  } else {
    w.WriteBytes(results);
  }
  return w.Take();
}

std::optional<ReturnBody> ReturnBody::Decode(const circus::Bytes& raw) {
  marshal::Reader r(raw);
  ReturnBody b;
  b.is_error = (r.ReadU16() == 1);
  if (b.is_error) {
    b.error_code = static_cast<ErrorCode>(r.ReadU16());
    b.error_message = r.ReadString();
  } else {
    b.results = r.ReadBytes();
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return b;
}

}  // namespace circus::core
