// Simulated time. The discrete-event executor advances a virtual clock;
// nothing in Circus reads the real clock, which keeps every run
// reproducible from a seed. Durations and time points are nanosecond
// integers wrapped in strong types.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <compare>
#include <cstdint>
#include <string>

namespace circus::sim {

// A signed span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(int64_t n) { return Duration(n); }
  static constexpr Duration Micros(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration Millis(int64_t ms) {
    return Duration(ms * 1000000);
  }
  static constexpr Duration Seconds(int64_t s) {
    return Duration(s * 1000000000);
  }
  // Fractional construction, e.g. Duration::MillisF(8.1).
  static constexpr Duration MillisF(double ms) {
    return Duration(RoundToInt64(ms * 1e6));
  }
  static constexpr Duration SecondsF(double s) {
    return Duration(RoundToInt64(s * 1e9));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double ToSecondsF() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr Duration operator+(Duration d) const {
    return Duration(ns_ + d.ns_);
  }
  constexpr Duration operator-(Duration d) const {
    return Duration(ns_ - d.ns_);
  }
  constexpr Duration operator*(int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  Duration& operator+=(Duration d) {
    ns_ += d.ns_;
    return *this;
  }
  Duration& operator-=(Duration d) {
    ns_ -= d.ns_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;  // e.g. "8.100ms"

 private:
  static constexpr int64_t RoundToInt64(double x) {
    return static_cast<int64_t>(x >= 0 ? x + 0.5 : x - 0.5);
  }
  constexpr explicit Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// An instant of simulated time, measured from the start of the simulation.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint FromNanos(int64_t n) { return TimePoint(n); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSecondsF() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(ns_ + d.nanos());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(ns_ - d.nanos());
  }
  constexpr Duration operator-(TimePoint t) const {
    return Duration::Nanos(ns_ - t.ns_);
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  constexpr explicit TimePoint(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

}  // namespace circus::sim

#endif  // SRC_SIM_TIME_H_
