// Task<T>: a lazily started coroutine used for all protocol code in the
// simulator. Awaiting a Task starts it and transfers control with symmetric
// transfer; when the child finishes, the parent resumes. Exceptions thrown
// inside a Task (notably HostCrashedError, the fail-stop crash signal)
// propagate to the awaiter, so a machine crash unwinds an entire
// distributed call stack exactly as a real crash would tear down the
// processes representing it (Section 3.4.1 of the dissertation).
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "src/common/check.h"

namespace circus::sim {

template <typename T>
class Task;

namespace internal {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      std::coroutine_handle<> c = h.promise().continuation;
      return c ? c : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace internal

// Owning handle to a coroutine frame. Move-only; destroying a Task that
// has not run to completion destroys the frame (and, transitively, any
// child Task objects held in its locals).
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::Promise<T>;

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting starts the task (it is lazy) and resumes the awaiter when it
  // completes, rethrowing any stored exception.
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // Symmetric transfer into the child.
      }
      T await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
        if constexpr (!std::is_void_v<T>) {
          return std::move(*h.promise().value);
        }
      }
    };
    CIRCUS_CHECK(handle_ != nullptr);
    return Awaiter{handle_};
  }

  // Release ownership (used by the executor's detached-task machinery).
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, nullptr);
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_ = nullptr;
};

namespace internal {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace internal
}  // namespace circus::sim

#endif  // SRC_SIM_TASK_H_
