#include "src/sim/syscall.h"

namespace circus::sim {

std::string_view SyscallName(Syscall s) {
  switch (s) {
    case Syscall::kSendMsg:
      return "sendmsg";
    case Syscall::kRecvMsg:
      return "recvmsg";
    case Syscall::kSelect:
      return "select";
    case Syscall::kSetITimer:
      return "setitimer";
    case Syscall::kGetTimeOfDay:
      return "gettimeofday";
    case Syscall::kSigBlock:
      return "sigblock";
    case Syscall::kRead:
      return "read";
    case Syscall::kWrite:
      return "write";
    case Syscall::kNumSyscalls:
      break;
  }
  return "?";
}

SyscallCostModel SyscallCostModel::Berkeley42Bsd() {
  SyscallCostModel m;
  auto set = [&m](Syscall s, double ms) {
    m.kernel_cost[static_cast<int>(s)] = Duration::MillisF(ms);
  };
  set(Syscall::kSendMsg, 8.1);
  set(Syscall::kRecvMsg, 2.8);
  set(Syscall::kSelect, 1.8);
  set(Syscall::kSetITimer, 1.2);
  set(Syscall::kGetTimeOfDay, 0.7);
  set(Syscall::kSigBlock, 0.4);
  // The TCP echo test in Table 4.1 used 8.3 ms of CPU per write+read
  // exchange; the paper attributes the advantage over sendmsg/recvmsg to
  // the absence of scatter/gather copying.
  set(Syscall::kRead, 2.8);
  set(Syscall::kWrite, 5.5);
  return m;
}

SyscallCostModel SyscallCostModel::Free() { return SyscallCostModel{}; }

CpuStats CpuStats::operator-(const CpuStats& other) const {
  CpuStats out;
  for (int i = 0; i < kNumSyscalls; ++i) {
    out.syscall_count[i] = syscall_count[i] - other.syscall_count[i];
    out.syscall_time[i] = syscall_time[i] - other.syscall_time[i];
  }
  out.user_time = user_time - other.user_time;
  return out;
}

}  // namespace circus::sim
