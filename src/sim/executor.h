// The discrete-event executor: a virtual clock plus a time-ordered queue
// of callbacks. All coroutine resumptions are scheduled through it, so the
// entire simulation executes as a flat, deterministic event loop.
#ifndef SRC_SIM_EXECUTOR_H_
#define SRC_SIM_EXECUTOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/task.h"
#include "src/sim/time.h"

namespace circus::sim {

class Executor {
 public:
  Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  TimePoint now() const { return now_; }

  // Schedules `fn` to run at simulated time `when` (clamped to now()).
  // Events at equal times run in scheduling order. Returns an id usable
  // with Cancel().
  uint64_t ScheduleAt(TimePoint when, std::function<void()> fn);
  uint64_t ScheduleAfter(Duration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Lazily cancels a scheduled event; a no-op if it already ran.
  void Cancel(uint64_t id);

  // Runs the earliest pending event; returns false if none remain.
  bool RunOne();
  // Runs until the queue is empty.
  void RunUntilIdle();
  // Runs events with time <= deadline; the clock finishes at `deadline`
  // even if the queue drains earlier.
  void RunUntil(TimePoint deadline);
  void RunFor(Duration d) { RunUntil(now_ + d); }

  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  // Total events dispatched by RunOne — with pending_events(), the
  // run-queue side of the utilization telemetry (src/obs/util.h).
  uint64_t events_run() const { return events_run_; }

  // Time of the earliest pending (non-cancelled) event, or nullopt when
  // the queue is empty. Used by the real-time runtime to arm its timer:
  // the wall-clock IoLoop sleeps exactly until the next virtual deadline.
  std::optional<TimePoint> NextEventTime();

  // Starts a detached coroutine. The coroutine begins running immediately
  // (until its first suspension). A HostCrashedError escaping the task is
  // swallowed: it means the host running the task failed, which is an
  // expected event in a fault-tolerance simulator. Any other exception
  // escaping a detached task aborts the process (programmer error).
  void Spawn(Task<void> task);

  // Number of detached tasks spawned and still running; useful for
  // detecting tests that leave orphaned protocol loops behind.
  int64_t live_detached_tasks() const { return live_detached_; }

  // Awaitable god-level sleep (not tied to any host; never "crashes").
  // Protocol code must use Host::SleepFor instead so that crashes wake it.
  auto SleepFor(Duration d) {
    struct Awaiter {
      Executor* executor;
      Duration delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        executor->ScheduleAfter(delay, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

 private:
  friend struct DetachedRunner;

  struct Event {
    TimePoint when;
    uint64_t seq;
    uint64_t id;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  TimePoint now_;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_map<uint64_t, std::function<void()>> callbacks_;
  std::unordered_set<uint64_t> cancelled_;
  int64_t live_detached_ = 0;
  uint64_t events_run_ = 0;
};

}  // namespace circus::sim

#endif  // SRC_SIM_EXECUTOR_H_
