// A one-shot broadcast event: many coroutines wait, one Notify wakes all.
// Used for synchronization points such as "every expected call message of
// a many-to-one call has arrived" (Section 4.3.2).
#ifndef SRC_SIM_NOTIFICATION_H_
#define SRC_SIM_NOTIFICATION_H_

#include <coroutine>
#include <memory>
#include <vector>

#include "src/sim/crash.h"
#include "src/sim/host.h"

namespace circus::sim {

class Notification {
 public:
  explicit Notification(Host* host) : host_(host) {}
  Notification(const Notification&) = delete;
  Notification& operator=(const Notification&) = delete;

  bool notified() const { return notified_; }

  void Notify() {
    if (notified_) {
      return;
    }
    notified_ = true;
    std::vector<std::weak_ptr<WaitState>> waiters = std::move(waiters_);
    for (auto& weak : waiters) {
      std::shared_ptr<WaitState> state = weak.lock();
      if (!state || state->settled) {
        continue;
      }
      state->settled = true;
      host_->executor().ScheduleAfter(Duration::Zero(), [state] {
        state->handle.resume();
      });
    }
  }

  auto Wait() {
    struct Awaiter {
      Notification* n;
      std::shared_ptr<WaitState> state;
      bool host_down = false;
      bool await_ready() {
        if (n->host_ != nullptr && !n->host_->up()) {
          host_down = true;
          return true;
        }
        return n->notified_;
      }
      void await_suspend(std::coroutine_handle<> h) {
        state = std::make_shared<WaitState>();
        state->handle = h;
        if (n->host_ != nullptr) {
          n->host_->RegisterWaiter(state);
          if (state->settled) {
            return;
          }
        }
        n->waiters_.push_back(state);
      }
      void await_resume() {
        if (host_down || (state && state->crashed)) {
          throw HostCrashedError();
        }
      }
    };
    return Awaiter{this, nullptr, false};
  }

 private:
  Host* host_;
  bool notified_ = false;
  std::vector<std::weak_ptr<WaitState>> waiters_;
};

}  // namespace circus::sim

#endif  // SRC_SIM_NOTIFICATION_H_
