#include "src/sim/executor.h"

#include <utility>

#include "src/common/check.h"
#include "src/sim/crash.h"

namespace circus::sim {

uint64_t Executor::ScheduleAt(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  const uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void Executor::Cancel(uint64_t id) {
  auto it = callbacks_.find(id);
  if (it != callbacks_.end()) {
    callbacks_.erase(it);
    cancelled_.insert(id);
  }
}

bool Executor::RunOne() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto cancelled_it = cancelled_.find(ev.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto it = callbacks_.find(ev.id);
    CIRCUS_CHECK(it != callbacks_.end());
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    CIRCUS_CHECK(ev.when >= now_);
    now_ = ev.when;
    ++events_run_;
    fn();
    return true;
  }
  return false;
}

std::optional<TimePoint> Executor::NextEventTime() {
  while (!queue_.empty()) {
    const Event& ev = queue_.top();
    auto cancelled_it = cancelled_.find(ev.id);
    if (cancelled_it == cancelled_.end()) {
      return ev.when;
    }
    // Lazily discard cancelled tombstones so they do not pin the timer.
    cancelled_.erase(cancelled_it);
    queue_.pop();
  }
  return std::nullopt;
}

void Executor::RunUntilIdle() {
  while (RunOne()) {
  }
}

void Executor::RunUntil(TimePoint deadline) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (ev.when > deadline) {
      break;
    }
    if (!RunOne()) {
      break;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

namespace {

// Fire-and-forget wrapper coroutine: owns the Task frame for the duration
// of the run and self-destroys at completion.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

DetachedTask RunDetached(Task<void> task, int64_t* live_counter) {
  ++*live_counter;
  try {
    co_await std::move(task);
  } catch (const HostCrashedError&) {
    // The host running this task failed; the task simply ceases to exist,
    // like a process on a crashed machine.
  }
  --*live_counter;
}

}  // namespace

void Executor::Spawn(Task<void> task) {
  RunDetached(std::move(task), &live_detached_);
}

}  // namespace circus::sim
