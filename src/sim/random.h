// Deterministic random number generation for the simulator. Every source
// of randomness (network delays, losses, failure injection, workload
// arrival times) draws from an Rng forked from the World's root generator,
// so a run is a pure function of the root seed.
#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>
#include <random>

#include "src/sim/time.h"

namespace circus::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // A new generator whose stream is independent of (but determined by)
  // this one. Use one fork per logical randomness consumer so that adding
  // draws in one component does not perturb another.
  Rng Fork() { return Rng(engine_()); }

  uint64_t NextUint64() { return engine_(); }

  // Uniform in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Uniform integer in [lo, hi], inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return UniformDouble() < p;
  }

  // Exponentially distributed duration with the given mean. Used for
  // network latency tails, member lifetimes, and repair times, matching
  // the analytical assumptions of Sections 4.4.2 and 6.4.2.
  Duration Exponential(Duration mean) {
    if (mean <= Duration::Zero()) {
      return Duration::Zero();
    }
    const double lambda = 1.0 / static_cast<double>(mean.nanos());
    const double x = std::exponential_distribution<double>(lambda)(engine_);
    return Duration::Nanos(static_cast<int64_t>(x));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace circus::sim

#endif  // SRC_SIM_RANDOM_H_
