// An unbounded, crash-aware FIFO channel. Channels model the message
// queues of simulated processes: socket receive queues, server work
// queues, and the per-call reply streams that collators consume
// (Section 7.4's generator of messages from a troupe is a thin layer over
// one of these). A Receive suspends the calling coroutine; it wakes on the
// next Send, on an optional timeout, or — like everything on a fail-stop
// machine — with HostCrashedError when the owning host crashes.
#ifndef SRC_SIM_CHANNEL_H_
#define SRC_SIM_CHANNEL_H_

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/sim/crash.h"
#include "src/sim/host.h"

namespace circus::sim {

template <typename T>
class Channel {
 public:
  // `host` may be null for god-level channels used by test drivers; those
  // never crash-wake.
  explicit Channel(Host* host) : host_(host) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  Host* host() const { return host_; }
  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  // Enqueues a value, waking one waiting receiver (FIFO). Never blocks.
  void Send(T value) {
    // Hand the value directly to the oldest live waiter, if any.
    while (!receivers_.empty()) {
      Receiver r = std::move(receivers_.front());
      receivers_.pop_front();
      std::shared_ptr<WaitState> state = r.state.lock();
      if (!state || state->settled) {
        continue;
      }
      state->settled = true;
      *r.slot = std::move(value);
      Executor* ex = executor();
      ex->ScheduleAfter(Duration::Zero(), [state] { state->handle.resume(); });
      return;
    }
    queue_.push_back(std::move(value));
  }

  // Awaitable receive; throws HostCrashedError if the owning host crashes
  // while waiting.
  auto Receive() { return ReceiveAwaiter(this, std::nullopt); }

  // Awaitable receive with timeout; resumes with std::nullopt if `timeout`
  // elapses first.
  auto ReceiveWithTimeout(Duration timeout) {
    return ReceiveAwaiter(this, timeout);
  }

  // Non-blocking receive.
  std::optional<T> TryReceive() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  void Clear() { queue_.clear(); }

 private:
  struct Receiver {
    std::weak_ptr<WaitState> state;
    std::shared_ptr<std::optional<T>> slot;
  };

  Executor* executor() const {
    CIRCUS_CHECK(host_ != nullptr);
    return &host_->executor();
  }

  class ReceiveAwaiter {
   public:
    ReceiveAwaiter(Channel* channel, std::optional<Duration> timeout)
        : channel_(channel), timeout_(timeout) {}

    bool await_ready() {
      if (channel_->host_ != nullptr && !channel_->host_->up()) {
        host_down_ = true;
        return true;
      }
      if (!channel_->queue_.empty()) {
        immediate_ = std::move(channel_->queue_.front());
        channel_->queue_.pop_front();
        return true;
      }
      return false;
    }

    void await_suspend(std::coroutine_handle<> h) {
      state_ = std::make_shared<WaitState>();
      state_->handle = h;
      slot_ = std::make_shared<std::optional<T>>();
      if (channel_->host_ != nullptr) {
        channel_->host_->RegisterWaiter(state_);
        if (state_->settled) {
          return;  // host went down between ready and suspend (defensive)
        }
      }
      channel_->receivers_.push_back(Receiver{state_, slot_});
      if (timeout_.has_value()) {
        std::shared_ptr<WaitState> s = state_;
        channel_->executor()->ScheduleAfter(*timeout_, [s] {
          if (s->settled) {
            return;
          }
          s->settled = true;
          s->timed_out = true;
          s->handle.resume();
        });
      }
    }

    // Returns the received value, or nullopt on timeout. (For the no-
    // timeout Receive(), callers use ReceiveValue via Channel::Receive
    // wrappers below; nullopt cannot occur there but the type is shared.)
    std::optional<T> await_resume() {
      if (host_down_) {
        throw HostCrashedError();
      }
      if (immediate_.has_value()) {
        return std::move(immediate_);
      }
      if (state_->crashed) {
        throw HostCrashedError();
      }
      if (state_->timed_out) {
        return std::nullopt;
      }
      return std::move(*slot_);
    }

   private:
    Channel* channel_;
    std::optional<Duration> timeout_;
    bool host_down_ = false;
    std::optional<T> immediate_;
    std::shared_ptr<WaitState> state_;
    std::shared_ptr<std::optional<T>> slot_;
  };

  Host* host_;
  std::deque<T> queue_;
  std::deque<Receiver> receivers_;
};

// Convenience coroutine: receive and unwrap (no timeout, so the optional
// is always engaged).
template <typename T>
Task<T> ReceiveValue(Channel<T>& channel) {
  std::optional<T> v = co_await channel.Receive();
  CIRCUS_CHECK(v.has_value());
  co_return std::move(*v);
}

}  // namespace circus::sim

#endif  // SRC_SIM_CHANNEL_H_
