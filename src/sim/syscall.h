// The simulated system-call cost model. The dissertation's performance
// evaluation (Section 4.4.1) shows that six Berkeley 4.2BSD system calls
// account for more than half of the CPU time of a Circus replicated
// procedure call; Table 4.2 gives their measured per-call costs. The
// protocol layers in this reproduction charge the same system calls at the
// same points a user-mode 4.2BSD implementation would issue them, so the
// Table 4.1/4.3 measurements emerge from the implementation rather than
// being hard-coded.
#ifndef SRC_SIM_SYSCALL_H_
#define SRC_SIM_SYSCALL_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/sim/time.h"

namespace circus::sim {

enum class Syscall : int {
  kSendMsg = 0,     // send datagram (scatter/gather interface)
  kRecvMsg,         // receive datagram
  kSelect,          // inquire if datagram has arrived
  kSetITimer,       // start interval timer for clock interrupt
  kGetTimeOfDay,    // get time of day
  kSigBlock,        // mask software interrupts (critical region)
  kRead,            // byte-stream read (TCP test)
  kWrite,           // byte-stream write (TCP test)
  kNumSyscalls,
};

inline constexpr int kNumSyscalls =
    static_cast<int>(Syscall::kNumSyscalls);

std::string_view SyscallName(Syscall s);

// Per-syscall kernel CPU cost.
struct SyscallCostModel {
  std::array<Duration, kNumSyscalls> kernel_cost{};

  Duration cost(Syscall s) const {
    return kernel_cost[static_cast<int>(s)];
  }

  // Table 4.2 of the dissertation (VAX-11/750, Berkeley 4.2BSD), plus
  // read/write costs inferred from the Table 4.1 TCP echo measurement
  // (8.3 ms total CPU per exchange = write + read).
  static SyscallCostModel Berkeley42Bsd();

  // All-zero model, for logical tests that should not be slowed by CPU
  // accounting.
  static SyscallCostModel Free();

  // All-zero model for the real-time runtime: real system calls cost
  // real (wall-clock) time, so the simulator must not charge them again.
  // An alias of Free() kept distinct so call sites state their intent.
  static SyscallCostModel WallClock() { return Free(); }
};

// Per-host CPU accounting, split user/kernel exactly as the paper's
// getrusage-based measurements were (Section 4.4.1).
struct CpuStats {
  std::array<uint64_t, kNumSyscalls> syscall_count{};
  std::array<Duration, kNumSyscalls> syscall_time{};
  Duration user_time;

  Duration kernel_time() const {
    Duration total;
    for (const Duration& d : syscall_time) {
      total += d;
    }
    return total;
  }
  Duration total_time() const { return user_time + kernel_time(); }

  uint64_t count(Syscall s) const {
    return syscall_count[static_cast<int>(s)];
  }
  Duration time(Syscall s) const {
    return syscall_time[static_cast<int>(s)];
  }

  CpuStats operator-(const CpuStats& other) const;
};

}  // namespace circus::sim

#endif  // SRC_SIM_SYSCALL_H_
