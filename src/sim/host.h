// A simulated fail-stop machine (Section 3.5.1). A host runs coroutine
// "processes", owns CPU accounting, and can crash and restart. Crashing a
// host wakes every coroutine suspended on one of the host's wait
// primitives with HostCrashedError, destroying the computation exactly as
// a machine crash destroys its processes. Troupe members placed on
// distinct hosts therefore have independent failure modes, which is the
// premise of the troupe availability analysis (Section 6.4.2).
#ifndef SRC_SIM_HOST_H_
#define SRC_SIM_HOST_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/sim/crash.h"
#include "src/sim/executor.h"
#include "src/sim/syscall.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace circus::sim {

// Shared state between a suspended coroutine and whatever will wake it
// (a timer, a message arrival, or a host crash). Exactly one waker wins:
// the first to flip `settled`.
struct WaitState {
  std::coroutine_handle<> handle;
  bool settled = false;
  bool crashed = false;
  bool timed_out = false;
};

class Host {
 public:
  using HostId = uint32_t;

  Host(Executor* executor, HostId id, std::string name,
       SyscallCostModel cost_model);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;
  ~Host();

  Executor& executor() { return *executor_; }
  HostId id() const { return id_; }
  const std::string& name() const { return name_; }

  bool up() const { return up_; }
  // Incarnation increments on every Restart; a (host id, incarnation)
  // pair distinguishes the "same machine rebooted" case for binding
  // staleness (Section 6.1, case 3).
  uint32_t incarnation() const { return incarnation_; }

  // Fail-stop crash: all waiters wake with HostCrashedError, all crash
  // listeners (sockets, network attachments) fire, volatile state is gone.
  void Crash();
  // Brings the machine back up with a new incarnation. Nothing from the
  // previous incarnation survives; a replacement troupe member must fetch
  // state via get_state (Section 6.4.1).
  void Restart();

  // --- Wait primitives (all wake with HostCrashedError on crash) ---

  // Sleeps for `d` of simulated time.
  auto SleepFor(Duration d) {
    struct Awaiter {
      Host* host;
      Duration delay;
      std::shared_ptr<WaitState> state;
      bool await_ready() {
        return !host->up();  // resume immediately; await_resume throws
      }
      void await_suspend(std::coroutine_handle<> h) {
        state = std::make_shared<WaitState>();
        state->handle = h;
        host->RegisterWaiter(state);
        std::shared_ptr<WaitState> s = state;
        host->executor_->ScheduleAfter(delay, [s] {
          if (s->settled) {
            return;
          }
          s->settled = true;
          s->handle.resume();
        });
      }
      void await_resume() {
        if (!state) {
          throw HostCrashedError();  // host was already down
        }
        if (state->crashed) {
          throw HostCrashedError();
        }
      }
    };
    return Awaiter{this, d, nullptr};
  }

  // Issues a simulated system call: charges its kernel CPU cost to this
  // host and occupies the (single) CPU for that long — concurrent
  // processes on one host serialize their CPU consumption, which is what
  // makes the per-member sendmsg cost of a simulated multicast add up
  // linearly in real time (Section 4.4.1).
  Task<void> DoSyscall(Syscall s);

  // Charges user-mode CPU (stub code, marshaling); also occupies the CPU.
  Task<void> Compute(Duration d);

  // Charges a syscall's cost to the accounting tables without advancing
  // time. Used for calls whose latency is overlapped with a wait the
  // caller is already modelling (e.g. select before a blocking receive).
  void ChargeSyscallInstant(Syscall s);

  // --- Local clock (skew model) ---
  // The paper's ordered broadcast protocol assumes synchronized clocks;
  // the skew knob lets tests and benches quantify how much actual
  // synchronization matters (perfectly synchronized by default).
  void set_clock_skew(Duration d) { clock_skew_ = d; }
  Duration clock_skew() const { return clock_skew_; }
  // What this machine's clock reads now.
  int64_t LocalClockNanos() const {
    return (executor_->now() + clock_skew_).nanos();
  }
  // The simulated instant at which this machine's clock reads
  // `local_ns`.
  TimePoint SimTimeForLocal(int64_t local_ns) const {
    return TimePoint::FromNanos(local_ns) - clock_skew_;
  }

  const CpuStats& cpu() const { return cpu_; }
  void ResetCpuStats() { cpu_ = CpuStats{}; }
  const SyscallCostModel& cost_model() const { return cost_model_; }
  void set_cost_model(SyscallCostModel m) { cost_model_ = m; }

  // --- Crash listeners (for sockets and other attachments) ---
  using ListenerId = uint64_t;
  ListenerId AddCrashListener(std::function<void()> fn);
  void RemoveCrashListener(ListenerId id);

  // --- Waiter registry (used by Channel and other sync primitives) ---
  void RegisterWaiter(std::shared_ptr<WaitState> state);

  // Spawns a detached coroutine logically running on this host. (The
  // coroutine must only block on this host's primitives; crash then
  // reaps it.)
  void Spawn(Task<void> task) { executor_->Spawn(std::move(task)); }

 private:
  void WakeAllWithCrash();
  // Occupies the host CPU for `d`: the work starts when the CPU frees up
  // and pushes cpu_busy_until_ forward, serializing all charges.
  Task<void> OccupyCpu(Duration d);

  TimePoint cpu_busy_until_;
  Duration clock_skew_;
  Executor* executor_;
  HostId id_;
  std::string name_;
  bool up_ = true;
  uint32_t incarnation_ = 1;
  SyscallCostModel cost_model_;
  CpuStats cpu_;
  std::vector<std::weak_ptr<WaitState>> waiters_;
  std::map<ListenerId, std::function<void()>> crash_listeners_;
  ListenerId next_listener_id_ = 1;
};

}  // namespace circus::sim

#endif  // SRC_SIM_HOST_H_
