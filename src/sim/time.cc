#include "src/sim/time.h"

#include <cstdio>

namespace circus::sim {

std::string Duration::ToString() const {
  char buf[64];
  if (ns_ % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms",
                  static_cast<long long>(ns_ / 1000000));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms",
                  static_cast<double>(ns_) / 1e6);
  }
  return buf;
}

std::string TimePoint::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6fs", static_cast<double>(ns_) / 1e9);
  return buf;
}

}  // namespace circus::sim
