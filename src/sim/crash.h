// The fail-stop crash signal. When a simulated host crashes, every
// coroutine suspended on one of that host's wait primitives is resumed
// with this exception, which unwinds the coroutine stack the way a real
// crash destroys the processes on a machine (fail-stop processors,
// Section 3.5.1). Protocol code never catches it below the top-level
// process loop; peers learn of the crash only through timeouts and probes
// (Section 4.2.3).
#ifndef SRC_SIM_CRASH_H_
#define SRC_SIM_CRASH_H_

#include <exception>

namespace circus::sim {

class HostCrashedError : public std::exception {
 public:
  const char* what() const noexcept override {
    return "simulated host crashed";
  }
};

}  // namespace circus::sim

#endif  // SRC_SIM_CRASH_H_
