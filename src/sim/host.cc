#include "src/sim/host.h"

#include <utility>

#include "src/common/log.h"

namespace circus::sim {

Host::Host(Executor* executor, HostId id, std::string name,
           SyscallCostModel cost_model)
    : executor_(executor),
      id_(id),
      name_(std::move(name)),
      cost_model_(cost_model) {}

Host::~Host() = default;

void Host::Crash() {
  if (!up_) {
    return;
  }
  up_ = false;
  CIRCUS_LOG_AT(LogLevel::kInfo, executor_->now().nanos())
      << "host " << name_ << " crashed";
  // Listeners first (sockets detach from the network), then waiters.
  std::vector<std::function<void()>> listeners;
  listeners.reserve(crash_listeners_.size());
  for (auto& [lid, fn] : crash_listeners_) {
    listeners.push_back(fn);
  }
  crash_listeners_.clear();
  for (auto& fn : listeners) {
    fn();
  }
  WakeAllWithCrash();
}

void Host::Restart() {
  if (up_) {
    return;
  }
  up_ = true;
  ++incarnation_;
  cpu_ = CpuStats{};
  cpu_busy_until_ = executor_->now();
  CIRCUS_LOG_AT(LogLevel::kInfo, executor_->now().nanos())
      << "host " << name_ << " restarted (incarnation " << incarnation_
      << ")";
}

void Host::WakeAllWithCrash() {
  std::vector<std::weak_ptr<WaitState>> waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& weak : waiters) {
    std::shared_ptr<WaitState> state = weak.lock();
    if (!state || state->settled) {
      continue;
    }
    state->settled = true;
    state->crashed = true;
    executor_->ScheduleAfter(Duration::Zero(), [state] {
      state->handle.resume();
    });
  }
}

Task<void> Host::OccupyCpu(Duration d) {
  const TimePoint now = executor_->now();
  const TimePoint start = cpu_busy_until_ > now ? cpu_busy_until_ : now;
  cpu_busy_until_ = start + d;
  co_await SleepFor(cpu_busy_until_ - now);
}

Task<void> Host::DoSyscall(Syscall s) {
  const Duration cost = cost_model_.cost(s);
  cpu_.syscall_count[static_cast<int>(s)]++;
  cpu_.syscall_time[static_cast<int>(s)] += cost;
  if (cost > Duration::Zero()) {
    co_await OccupyCpu(cost);
  } else if (!up_) {
    throw HostCrashedError();
  }
}

Task<void> Host::Compute(Duration d) {
  cpu_.user_time += d;
  if (d > Duration::Zero()) {
    co_await OccupyCpu(d);
  } else if (!up_) {
    throw HostCrashedError();
  }
}

void Host::ChargeSyscallInstant(Syscall s) {
  const Duration cost = cost_model_.cost(s);
  cpu_.syscall_count[static_cast<int>(s)]++;
  cpu_.syscall_time[static_cast<int>(s)] += cost;
}

Host::ListenerId Host::AddCrashListener(std::function<void()> fn) {
  const ListenerId id = next_listener_id_++;
  crash_listeners_.emplace(id, std::move(fn));
  return id;
}

void Host::RemoveCrashListener(ListenerId id) { crash_listeners_.erase(id); }

void Host::RegisterWaiter(std::shared_ptr<WaitState> state) {
  if (!up_) {
    // Host already down: settle immediately as crashed.
    state->settled = true;
    state->crashed = true;
    executor_->ScheduleAfter(Duration::Zero(), [state] {
      state->handle.resume();
    });
    return;
  }
  // Opportunistically compact the registry.
  if (waiters_.size() > 64 && waiters_.size() % 64 == 0) {
    std::erase_if(waiters_, [](const std::weak_ptr<WaitState>& w) {
      std::shared_ptr<WaitState> s = w.lock();
      return !s || s->settled;
    });
  }
  waiters_.push_back(state);
}

}  // namespace circus::sim
