// Externalization and internalization (Figure 7.1): translation between
// internal representations and a standard external byte-sequence form.
// The external representation follows the Courier conventions the Circus
// stub compiler used (Section 7.1.1): big-endian integers, 16-bit
// cardinals/integers as the base numeric types, length-prefixed strings
// and sequences, enumerations as 16-bit values, and discriminated unions
// as a 16-bit tag followed by the chosen arm.
//
// Writer appends; Reader consumes with an error flag (a failed read
// poisons the reader and subsequent reads return defaults), so generated
// stub code can decode a whole message and check ok() once at the end.
#ifndef SRC_MARSHAL_MARSHAL_H_
#define SRC_MARSHAL_MARSHAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"

namespace circus::marshal {

// Process-global marshal buffer accounting, one of the allocation hot
// spots the utilization telemetry watches (src/obs/util.h). Charged
// when a Writer's buffer is taken — one completed marshalled message.
// Monotonic; probes baseline at registration and report deltas, so sim
// runs stay deterministic even when several Worlds share a process.
struct BufferStats {
  uint64_t buffers = 0;
  uint64_t bytes = 0;
};
inline BufferStats& GlobalBufferStats() {
  static BufferStats stats;
  return stats;
}

class Writer {
 public:
  Writer() = default;

  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteU8(uint8_t v) { out_.push_back(v); }
  void WriteU16(uint16_t v);   // Courier CARDINAL
  void WriteU32(uint32_t v);   // Courier LONG CARDINAL
  void WriteU64(uint64_t v);
  void WriteI16(int16_t v) { WriteU16(static_cast<uint16_t>(v)); }
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteF64(double v);
  // STRING: 32-bit length + bytes.
  void WriteString(const std::string& v);
  // SEQUENCE OF UNSPECIFIED (raw bytes): 32-bit length + bytes.
  void WriteBytes(const circus::Bytes& v);
  // Enumeration value (16-bit on the wire).
  template <typename E>
  void WriteEnum(E v) {
    WriteU16(static_cast<uint16_t>(v));
  }
  // Union tag (16-bit), followed by the arm written by the caller.
  void WriteUnionTag(uint16_t tag) { WriteU16(tag); }
  // SEQUENCE OF T via a per-element writer callable.
  template <typename T, typename Fn>
  void WriteSequence(const std::vector<T>& items, Fn&& write_element) {
    WriteU32(static_cast<uint32_t>(items.size()));
    for (const T& item : items) {
      write_element(*this, item);
    }
  }

  const circus::Bytes& bytes() const { return out_; }
  circus::Bytes Take() {
    BufferStats& stats = GlobalBufferStats();
    ++stats.buffers;
    stats.bytes += out_.size();
    return std::move(out_);
  }
  size_t size() const { return out_.size(); }

 private:
  circus::Bytes out_;
};

class Reader {
 public:
  explicit Reader(const circus::Bytes& data) : data_(data) {}
  // A Reader only references the buffer; binding it to a temporary
  // (e.g. Reader(*store.Peek(key))) would dangle immediately.
  explicit Reader(circus::Bytes&&) = delete;

  bool ReadBool() { return ReadU8() != 0; }
  uint8_t ReadU8();
  uint16_t ReadU16();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int16_t ReadI16() { return static_cast<int16_t>(ReadU16()); }
  int32_t ReadI32() { return static_cast<int32_t>(ReadU32()); }
  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }
  double ReadF64();
  std::string ReadString();
  circus::Bytes ReadBytes();
  template <typename E>
  E ReadEnum() {
    return static_cast<E>(ReadU16());
  }
  uint16_t ReadUnionTag() { return ReadU16(); }
  template <typename T, typename Fn>
  std::vector<T> ReadSequence(Fn&& read_element) {
    const uint32_t count = ReadU32();
    std::vector<T> out;
    // Guard against hostile lengths: never reserve more than remaining
    // bytes could possibly encode.
    if (count > remaining()) {
      Poison();
      return out;
    }
    out.reserve(count);
    for (uint32_t i = 0; i < count && ok_; ++i) {
      out.push_back(read_element(*this));
    }
    return out;
  }

  // True iff every read so far was in bounds.
  bool ok() const { return ok_; }
  // True iff ok and all input was consumed.
  bool AtEnd() const { return ok_ && offset_ == data_.size(); }
  size_t remaining() const { return data_.size() - offset_; }
  void Poison() { ok_ = false; }

 private:
  bool Need(size_t n);
  const circus::Bytes& data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

}  // namespace circus::marshal

#endif  // SRC_MARSHAL_MARSHAL_H_
