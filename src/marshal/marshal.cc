#include "src/marshal/marshal.h"

#include <cstring>

namespace circus::marshal {

void Writer::WriteU16(uint16_t v) {
  out_.push_back(static_cast<uint8_t>(v >> 8));
  out_.push_back(static_cast<uint8_t>(v));
}

void Writer::WriteU32(uint32_t v) {
  out_.push_back(static_cast<uint8_t>(v >> 24));
  out_.push_back(static_cast<uint8_t>(v >> 16));
  out_.push_back(static_cast<uint8_t>(v >> 8));
  out_.push_back(static_cast<uint8_t>(v));
}

void Writer::WriteU64(uint64_t v) {
  WriteU32(static_cast<uint32_t>(v >> 32));
  WriteU32(static_cast<uint32_t>(v));
}

void Writer::WriteF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void Writer::WriteString(const std::string& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  out_.insert(out_.end(), v.begin(), v.end());
}

void Writer::WriteBytes(const circus::Bytes& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  out_.insert(out_.end(), v.begin(), v.end());
}

bool Reader::Need(size_t n) {
  if (!ok_ || data_.size() - offset_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Reader::ReadU8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[offset_++];
}

uint16_t Reader::ReadU16() {
  if (!Need(2)) {
    return 0;
  }
  uint16_t v = (static_cast<uint16_t>(data_[offset_]) << 8) |
               data_[offset_ + 1];
  offset_ += 2;
  return v;
}

uint32_t Reader::ReadU32() {
  if (!Need(4)) {
    return 0;
  }
  uint32_t v = (static_cast<uint32_t>(data_[offset_]) << 24) |
               (static_cast<uint32_t>(data_[offset_ + 1]) << 16) |
               (static_cast<uint32_t>(data_[offset_ + 2]) << 8) |
               data_[offset_ + 3];
  offset_ += 4;
  return v;
}

uint64_t Reader::ReadU64() {
  const uint64_t hi = ReadU32();
  const uint64_t lo = ReadU32();
  return (hi << 32) | lo;
}

double Reader::ReadF64() {
  const uint64_t bits = ReadU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string Reader::ReadString() {
  const uint32_t len = ReadU32();
  if (!Need(len)) {
    return {};
  }
  std::string v(data_.begin() + offset_, data_.begin() + offset_ + len);
  offset_ += len;
  return v;
}

circus::Bytes Reader::ReadBytes() {
  const uint32_t len = ReadU32();
  if (!Need(len)) {
    return {};
  }
  circus::Bytes v(data_.begin() + offset_, data_.begin() + offset_ + len);
  offset_ += len;
  return v;
}

}  // namespace circus::marshal
