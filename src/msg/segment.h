// Segment wire format of the Circus paired message protocol, following
// Figure 4.2 of the dissertation byte for byte:
//
//   byte 0      message type (0 = call, 1 = return)
//   byte 1      control bits (bit 0 = please ack, bit 1 = ack)
//   byte 2      total segments in the message (1..255)
//   byte 3      segment number (data: 1..total; ack: acknowledgment number)
//   bytes 4..7  call number, unsigned 32-bit, most significant byte first
//   bytes 8..   message data (data segments only)
//
// A data segment carries a slice of the message; a control segment is a
// bare header used to send or request acknowledgment information.
#ifndef SRC_MSG_SEGMENT_H_
#define SRC_MSG_SEGMENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bytes.h"

namespace circus::msg {

// Process-global segment encode accounting, one of the allocation hot
// spots the utilization telemetry watches (src/obs/util.h): every
// Encode allocates one wire buffer. Monotonic; probes baseline at
// registration and report deltas.
struct SegmentStats {
  uint64_t segments = 0;
  uint64_t bytes = 0;
};
inline SegmentStats& GlobalSegmentStats() {
  static SegmentStats stats;
  return stats;
}

enum class MessageType : uint8_t {
  kCall = 0,
  kReturn = 1,
};

inline constexpr size_t kSegmentHeaderBytes = 8;
// Paper: total segments must be in 1..255.
inline constexpr int kMaxSegmentsPerMessage = 255;

struct Segment {
  MessageType type = MessageType::kCall;
  bool please_ack = false;
  bool ack = false;
  uint8_t total_segments = 1;
  // Data segment: 1..total_segments. Ack segment: all segments with
  // numbers <= this value have been received. Probe (control, non-ack):
  // 0.
  uint8_t segment_number = 0;
  uint32_t call_number = 0;
  circus::Bytes data;

  // Data segments carry segment_number >= 1; probes (ack requests) are
  // non-ack control segments with segment_number == 0, so zero-length
  // messages remain representable.
  bool is_data() const { return !ack && segment_number >= 1; }
  bool is_probe() const { return !ack && segment_number == 0; }

  circus::Bytes Encode() const;
  static std::optional<Segment> Decode(const circus::Bytes& raw);
};

// Splits message data into data segments of at most `segment_data_bytes`
// each. CHECK-fails if the message would need more than 255 segments.
std::vector<Segment> Segmentize(MessageType type, uint32_t call_number,
                                const circus::Bytes& data,
                                size_t segment_data_bytes);

// Reassembles message data; `parts[i]` is the data of segment i+1.
circus::Bytes JoinSegments(const std::vector<circus::Bytes>& parts);

}  // namespace circus::msg

#endif  // SRC_MSG_SEGMENT_H_
