#include "src/msg/segment.h"

#include "src/common/check.h"

namespace circus::msg {

namespace {
constexpr uint8_t kPleaseAckBit = 0x01;
constexpr uint8_t kAckBit = 0x02;
}  // namespace

circus::Bytes Segment::Encode() const {
  circus::Bytes out;
  out.reserve(kSegmentHeaderBytes + data.size());
  out.push_back(static_cast<uint8_t>(type));
  uint8_t control = 0;
  if (please_ack) {
    control |= kPleaseAckBit;
  }
  if (ack) {
    control |= kAckBit;
  }
  out.push_back(control);
  out.push_back(total_segments);
  out.push_back(segment_number);
  out.push_back(static_cast<uint8_t>(call_number >> 24));
  out.push_back(static_cast<uint8_t>(call_number >> 16));
  out.push_back(static_cast<uint8_t>(call_number >> 8));
  out.push_back(static_cast<uint8_t>(call_number));
  out.insert(out.end(), data.begin(), data.end());
  SegmentStats& stats = GlobalSegmentStats();
  ++stats.segments;
  stats.bytes += out.size();
  return out;
}

std::optional<Segment> Segment::Decode(const circus::Bytes& raw) {
  if (raw.size() < kSegmentHeaderBytes) {
    return std::nullopt;
  }
  if (raw[0] > 1) {
    return std::nullopt;  // unknown message type
  }
  Segment s;
  s.type = static_cast<MessageType>(raw[0]);
  s.please_ack = (raw[1] & kPleaseAckBit) != 0;
  s.ack = (raw[1] & kAckBit) != 0;
  s.total_segments = raw[2];
  s.segment_number = raw[3];
  s.call_number = (static_cast<uint32_t>(raw[4]) << 24) |
                  (static_cast<uint32_t>(raw[5]) << 16) |
                  (static_cast<uint32_t>(raw[6]) << 8) | raw[7];
  if (s.total_segments == 0) {
    return std::nullopt;
  }
  s.data.assign(raw.begin() + kSegmentHeaderBytes, raw.end());
  return s;
}

std::vector<Segment> Segmentize(MessageType type, uint32_t call_number,
                                const circus::Bytes& data,
                                size_t segment_data_bytes) {
  CIRCUS_CHECK(segment_data_bytes > 0);
  const size_t count =
      data.empty() ? 1 : (data.size() + segment_data_bytes - 1) /
                             segment_data_bytes;
  CIRCUS_CHECK_MSG(count <= kMaxSegmentsPerMessage,
                   "message too large for 255 segments");
  std::vector<Segment> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Segment s;
    s.type = type;
    s.call_number = call_number;
    s.total_segments = static_cast<uint8_t>(count);
    s.segment_number = static_cast<uint8_t>(i + 1);
    const size_t begin = i * segment_data_bytes;
    const size_t end = std::min(begin + segment_data_bytes, data.size());
    s.data.assign(data.begin() + begin, data.begin() + end);
    out.push_back(std::move(s));
  }
  return out;
}

circus::Bytes JoinSegments(const std::vector<circus::Bytes>& parts) {
  circus::Bytes out;
  size_t total = 0;
  for (const circus::Bytes& p : parts) {
    total += p.size();
  }
  out.reserve(total);
  for (const circus::Bytes& p : parts) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace circus::msg
