#include "src/msg/paired_endpoint.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace circus::msg {

using circus::Status;
using sim::Duration;
using sim::Syscall;

namespace {

// Jitter seed for an endpoint whose options left it at 0: the local
// clock (so two incarnations at one address differ) mixed with the
// socket address (so co-booted endpoints differ).
uint64_t DeriveJitterSeed(net::DatagramSocket* socket) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : socket->local_address().ToString()) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h ^ static_cast<uint64_t>(socket->host()->LocalClockNanos());
}

}  // namespace

PairedEndpoint::PairedEndpoint(net::DatagramSocket* socket,
                               EndpointOptions options)
    : socket_(socket),
      options_(options),
      jitter_rng_(options.jitter_seed != 0 ? options.jitter_seed
                                           : DeriveJitterSeed(socket)),
      incoming_calls_(
          std::make_unique<sim::Channel<Message>>(socket->host())) {
  if (net::Fabric* fabric = socket->fabric(); fabric != nullptr) {
    bus_ = fabric->event_bus();
    if (obs::MetricsRegistry* metrics = fabric->metrics();
        metrics != nullptr) {
      retransmits_metric_ = metrics->GetCounter("msg.retransmits");
      probe_rounds_metric_ = metrics->GetCounter("msg.probe_rounds");
      duplicates_metric_ = metrics->GetCounter("msg.duplicates_suppressed");
      crash_detections_metric_ = metrics->GetCounter("msg.crash_detections");
    }
  }
  host()->Spawn(ReceiverLoop());
}

void PairedEndpoint::PublishSegmentEvent(obs::EventKind kind,
                                         const net::NetAddress& peer,
                                         uint32_t call_number, uint64_t c) {
  if (bus_ == nullptr || !bus_->active()) {
    return;
  }
  obs::Event e;
  e.kind = kind;
  e.host = static_cast<uint32_t>(host()->id());
  e.origin = obs::PackAddress(local_address().host, local_address().port);
  e.a = obs::PackAddress(peer.host, peer.port);
  e.b = call_number;
  e.c = c;
  bus_->Publish(std::move(e));
}

Duration PairedEndpoint::Jittered(Duration base) {
  if (options_.timer_jitter <= 0.0) {
    return base;
  }
  const double factor =
      1.0 + options_.timer_jitter * (2.0 * jitter_rng_.UniformDouble() - 1.0);
  return Duration::Nanos(
      static_cast<int64_t>(static_cast<double>(base.nanos()) * factor));
}

PairedEndpoint::~PairedEndpoint() = default;

// --------------------------------------------------------------- Sending

sim::Task<void> PairedEndpoint::TransmitSegment(const net::NetAddress& to,
                                                const Segment& seg,
                                                bool retransmission) {
  // Critical region around protocol state (the paper's user-mode
  // implementation masks software interrupts with sigblock).
  host()->ChargeSyscallInstant(Syscall::kSigBlock);
  obs::EventKind kind = obs::EventKind::kSegmentSend;
  if (seg.ack) {
    ++counters_.ack_segments_sent;
    kind = obs::EventKind::kAckSend;
  } else if (seg.is_probe()) {
    ++counters_.probe_segments_sent;
    kind = obs::EventKind::kProbeSend;
  } else {
    ++counters_.data_segments_sent;
  }
  if (retransmission) {
    ++counters_.retransmitted_segments;
    if (retransmits_metric_ != nullptr) {
      retransmits_metric_->Increment();
    }
    kind = obs::EventKind::kSegmentRetransmit;
  }
  PublishSegmentEvent(kind, to, seg.call_number, seg.segment_number);
  co_await socket_->Send(to, seg.Encode());
}

sim::Task<circus::Status> PairedEndpoint::SendMessage(net::NetAddress to,
                                                      MessageType type,
                                                      uint32_t call_number,
                                                      circus::Bytes data) {
  std::vector<Segment> segments =
      Segmentize(type, call_number, data, options_.segment_data_bytes);
  const ExchangeKey key{to, type, call_number};
  auto state = std::make_shared<SenderState>();
  state->progress = std::make_unique<sim::Channel<uint32_t>>(host());
  for (const Segment& s : segments) {
    state->unacked.push_back(s);
  }
  senders_[key] = state;

  Status result;
  if (options_.mode == EndpointOptions::Mode::kSlidingWindow) {
    // Circus: transmit every segment up front, then retransmit the first
    // unacknowledged one periodically with please-ack set.
    for (const Segment& s : segments) {
      co_await TransmitSegment(to, s, false);
    }
    int retries = 0;
    while (!state->unacked.empty()) {
      host()->ChargeSyscallInstant(Syscall::kSetITimer);
      host()->ChargeSyscallInstant(Syscall::kGetTimeOfDay);
      std::optional<uint32_t> progress =
          co_await state->progress->ReceiveWithTimeout(
              Jittered(options_.retransmit_interval));
      if (progress.has_value()) {
        retries = 0;
        continue;
      }
      if (++retries > options_.max_retransmits) {
        result = Status(ErrorCode::kCrashDetected,
                        "no acknowledgment from " + to.ToString());
        if (crash_detections_metric_ != nullptr) {
          crash_detections_metric_->Increment();
        }
        PublishSegmentEvent(obs::EventKind::kPeerCrashDetected, to,
                            call_number, 0);
        break;
      }
      Segment again = state->unacked.front();
      again.please_ack = true;
      co_await TransmitSegment(to, again, true);
    }
  } else {
    // Xerox PARC RPC: explicit acknowledgment of every segment but the
    // last, so at most one segment's worth of buffering per connection.
    for (size_t i = 0; i < segments.size() && result.ok(); ++i) {
      const bool last = (i + 1 == segments.size());
      Segment s = segments[i];
      if (!last) {
        s.please_ack = true;
      }
      co_await TransmitSegment(to, s, false);
      int attempts = 0;
      while (!state->unacked.empty() &&
             state->unacked.front().segment_number <= s.segment_number) {
        host()->ChargeSyscallInstant(Syscall::kSetITimer);
        host()->ChargeSyscallInstant(Syscall::kGetTimeOfDay);
        std::optional<uint32_t> progress =
            co_await state->progress->ReceiveWithTimeout(
                Jittered(options_.retransmit_interval));
        if (progress.has_value()) {
          attempts = 0;
          continue;
        }
        if (++attempts > options_.max_retransmits) {
          result = Status(ErrorCode::kCrashDetected,
                          "no acknowledgment from " + to.ToString());
          if (crash_detections_metric_ != nullptr) {
            crash_detections_metric_->Increment();
          }
          PublishSegmentEvent(obs::EventKind::kPeerCrashDetected, to,
                              call_number, 0);
          break;
        }
        Segment again = state->unacked.front();
        again.please_ack = true;
        co_await TransmitSegment(to, again, true);
      }
    }
  }
  senders_.erase(key);
  co_return result;
}

sim::Task<void> PairedEndpoint::BlastMulticast(net::NetAddress group,
                                               MessageType type,
                                               uint32_t call_number,
                                               circus::Bytes data) {
  std::vector<Segment> segments =
      Segmentize(type, call_number, data, options_.segment_data_bytes);
  for (const Segment& s : segments) {
    co_await TransmitSegment(group, s, false);
  }
}

// ------------------------------------------------------------- Receiving

sim::Task<Message> PairedEndpoint::NextIncomingCall() {
  co_return co_await ReceiveValue(*incoming_calls_);
}

sim::Channel<Message>& PairedEndpoint::ReturnSlot(const ExchangeKey& key) {
  auto it = return_slots_.find(key);
  if (it == return_slots_.end()) {
    it = return_slots_
             .emplace(key, std::make_unique<sim::Channel<Message>>(host()))
             .first;
  }
  return *it->second;
}

sim::Task<circus::StatusOr<Message>> PairedEndpoint::AwaitReturn(
    net::NetAddress peer, uint32_t call_number) {
  const ExchangeKey key{peer, MessageType::kReturn, call_number};
  int silent_probes = 0;
  while (true) {
    host()->ChargeSyscallInstant(Syscall::kSetITimer);
    host()->ChargeSyscallInstant(Syscall::kGetTimeOfDay);
    std::optional<Message> m =
        co_await ReturnSlot(key).ReceiveWithTimeout(
            Jittered(options_.probe_interval));
    if (m.has_value()) {
      return_slots_.erase(key);
      co_return std::move(*m);
    }
    // No reply yet. If we heard anything at all from the peer recently,
    // it is alive but slow; only silence counts against it.
    auto activity = last_activity_.find(peer);
    if (activity != last_activity_.end() &&
        host()->executor().now() - activity->second <
            options_.probe_interval) {
      silent_probes = 0;
    } else if (++silent_probes > options_.max_silent_probes) {
      return_slots_.erase(key);
      if (crash_detections_metric_ != nullptr) {
        crash_detections_metric_->Increment();
      }
      PublishSegmentEvent(obs::EventKind::kPeerCrashDetected, peer,
                          call_number, static_cast<uint64_t>(silent_probes));
      co_return Status(ErrorCode::kCrashDetected,
                       "no response to probes from " + peer.ToString());
    }
    if (probe_rounds_metric_ != nullptr) {
      probe_rounds_metric_->Increment();
    }
    // Probe: a control segment asking for the ack state of our call.
    Segment probe;
    probe.type = MessageType::kCall;
    probe.call_number = call_number;
    probe.please_ack = true;
    probe.segment_number = 0;
    probe.total_segments = 1;
    co_await TransmitSegment(peer, probe, false);
  }
}

sim::Task<std::optional<Message>> PairedEndpoint::TryAwaitReturn(
    net::NetAddress peer, uint32_t call_number, sim::Duration timeout) {
  const ExchangeKey key{peer, MessageType::kReturn, call_number};
  host()->ChargeSyscallInstant(Syscall::kSetITimer);
  std::optional<Message> m =
      co_await ReturnSlot(key).ReceiveWithTimeout(timeout);
  if (m.has_value()) {
    return_slots_.erase(key);
  }
  co_return std::move(m);
}

void PairedEndpoint::DiscardReturn(net::NetAddress peer,
                                   uint32_t call_number) {
  return_slots_.erase(
      ExchangeKey{peer, MessageType::kReturn, call_number});
}

sim::Task<void> PairedEndpoint::ReceiverLoop() {
  while (true) {
    net::Datagram d = co_await socket_->ReceiveRaw();
    // The user-mode implementation learns of the datagram via a software
    // interrupt, polls with select, reads it with recvmsg, and brackets
    // its protocol bookkeeping in a sigblock critical region.
    host()->ChargeSyscallInstant(Syscall::kSelect);
    host()->ChargeSyscallInstant(Syscall::kSigBlock);
    co_await host()->DoSyscall(Syscall::kRecvMsg);
    std::optional<Segment> seg = Segment::Decode(d.payload);
    if (!seg.has_value()) {
      CIRCUS_LOG_AT(LogLevel::kDebug, host()->executor().now().nanos())
          << "malformed segment from " << d.source.ToString();
      continue;
    }
    HandleSegment(d.source, *seg);
  }
}

void PairedEndpoint::HandleSegment(const net::NetAddress& from,
                                   const Segment& seg) {
  last_activity_[from] = host()->executor().now();
  if (seg.ack) {
    HandleAck(from, seg);
  } else if (seg.is_probe()) {
    HandleProbe(from, seg);
  } else {
    HandleData(from, seg);
  }
}

void PairedEndpoint::HandleAck(const net::NetAddress& from,
                               const Segment& seg) {
  const ExchangeKey key{from, seg.type, seg.call_number};
  auto it = senders_.find(key);
  if (it == senders_.end()) {
    return;  // stale ack for a finished exchange
  }
  SenderState& state = *it->second;
  const uint8_t ack_number = seg.segment_number;
  while (!state.unacked.empty() &&
         state.unacked.front().segment_number <= ack_number) {
    state.unacked.pop_front();
  }
  state.progress->Send(ack_number);
}

void PairedEndpoint::HandleProbe(const net::NetAddress& from,
                                 const Segment& seg) {
  if (!seg.please_ack) {
    return;
  }
  const ExchangeKey key{from, seg.type, seg.call_number};
  // Subsequent please-ack segments (after completion) must be answered
  // promptly (Section 4.2.4).
  auto done = completed_.find(key);
  if (done != completed_.end()) {
    SendAck(from, seg.type, seg.call_number, done->second, done->second);
    return;
  }
  auto partial = reassembly_.find(key);
  if (partial != reassembly_.end()) {
    SendAck(from, seg.type, seg.call_number, partial->second.total_segments,
            partial->second.ack_number);
    return;
  }
  SendAck(from, seg.type, seg.call_number, seg.total_segments, 0);
}

void PairedEndpoint::ApplyImplicitAcks(const net::NetAddress& from,
                                       const Segment& seg) {
  auto full_ack = [this](std::map<ExchangeKey,
                                  std::shared_ptr<SenderState>>::iterator
                             it) {
    it->second->unacked.clear();
    it->second->progress->Send(UINT32_MAX);
  };
  if (seg.type == MessageType::kReturn) {
    // A return segment implicitly acknowledges the call with the same
    // call number.
    auto it = senders_.find(
        ExchangeKey{from, MessageType::kCall, seg.call_number});
    if (it != senders_.end()) {
      full_ack(it);
    }
  } else {
    // A call segment implicitly acknowledges returns with earlier call
    // numbers sent to that peer.
    auto it = senders_.lower_bound(
        ExchangeKey{from, MessageType::kReturn, 0});
    while (it != senders_.end() && it->first.peer == from &&
           it->first.type == MessageType::kReturn &&
           it->first.call_number < seg.call_number) {
      auto next = std::next(it);
      full_ack(it);
      it = next;
    }
  }
}

void PairedEndpoint::HandleData(const net::NetAddress& from,
                                const Segment& seg) {
  ApplyImplicitAcks(from, seg);
  const ExchangeKey key{from, seg.type, seg.call_number};
  auto done = completed_.find(key);
  if (done != completed_.end()) {
    // Duplicate of a completed exchange: re-acknowledge, never redeliver
    // (this is what makes execution exactly-once at the message level).
    ++counters_.duplicate_messages_suppressed;
    if (duplicates_metric_ != nullptr) {
      duplicates_metric_->Increment();
    }
    PublishSegmentEvent(obs::EventKind::kDuplicateSuppressed, from,
                        seg.call_number, seg.segment_number);
    if (seg.please_ack) {
      SendAck(from, seg.type, seg.call_number, done->second, done->second);
    }
    return;
  }
  Reassembly& r = reassembly_[key];
  if (r.total_segments == 0) {
    r.total_segments = seg.total_segments;
    r.parts.resize(seg.total_segments);
  }
  if (seg.total_segments != r.total_segments ||
      seg.segment_number > r.total_segments) {
    return;  // inconsistent header; drop like a garbled packet
  }
  const size_t index = seg.segment_number - 1;
  r.parts[index] = seg.data;
  while (r.ack_number < r.total_segments &&
         r.parts[r.ack_number].has_value()) {
    ++r.ack_number;
  }
  const bool complete = (r.ack_number == r.total_segments);
  if (complete) {
    std::vector<circus::Bytes> parts;
    parts.reserve(r.parts.size());
    for (std::optional<circus::Bytes>& p : r.parts) {
      parts.push_back(std::move(*p));
    }
    const uint8_t total = r.total_segments;
    reassembly_.erase(key);
    RememberCompleted(key, total);
    // Acknowledgment policy on completion (Section 4.2.4): for a call
    // message, postpone in the hope that the return will serve as the
    // implicit ack; for a return message, answer an explicit request.
    if (seg.type == MessageType::kReturn && seg.please_ack) {
      SendAck(from, seg.type, seg.call_number, total, total);
    }
    DeliverMessage(from, seg.type, seg.call_number, JoinSegments(parts));
    return;
  }
  if (seg.please_ack) {
    SendAck(from, seg.type, seg.call_number, r.total_segments,
            r.ack_number);
    return;
  }
  if (seg.segment_number > r.ack_number + 1) {
    // Out-of-order arrival: a segment below this one was lost. Ack
    // immediately so the sender retransmits the missing segment rather
    // than an earlier one (Section 4.2.4).
    SendAck(from, seg.type, seg.call_number, r.total_segments,
            r.ack_number);
  }
}

void PairedEndpoint::SendAck(const net::NetAddress& to, MessageType type,
                             uint32_t call_number, uint8_t total_segments,
                             uint8_t ack_number) {
  Segment ack;
  ack.type = type;
  ack.ack = true;
  ack.total_segments = total_segments == 0 ? 1 : total_segments;
  ack.segment_number = ack_number;
  ack.call_number = call_number;
  // Acks are sent from within the receiver's critical region; fire and
  // forget (they are themselves unreliable).
  ++counters_.ack_segments_sent;
  PublishSegmentEvent(obs::EventKind::kAckSend, to, call_number, ack_number);
  host()->ChargeSyscallInstant(Syscall::kSigBlock);
  host()->ChargeSyscallInstant(Syscall::kSendMsg);
  socket_->SendRaw(to, ack.Encode());
}

void PairedEndpoint::DeliverMessage(const net::NetAddress& from,
                                    MessageType type, uint32_t call_number,
                                    circus::Bytes data) {
  ++counters_.messages_delivered;
  PublishSegmentEvent(obs::EventKind::kMessageDelivered, from, call_number,
                      data.size());
  Message m{from, type, call_number, std::move(data)};
  if (type == MessageType::kCall) {
    incoming_calls_->Send(std::move(m));
  } else {
    ReturnSlot(ExchangeKey{from, type, call_number}).Send(std::move(m));
  }
}

void PairedEndpoint::RememberCompleted(const ExchangeKey& key,
                                       uint8_t total_segments) {
  completed_[key] = total_segments;
  std::deque<ExchangeKey>& order = completed_order_[key.peer];
  order.push_back(key);
  while (order.size() > options_.completed_history_per_peer) {
    completed_.erase(order.front());
    order.pop_front();
  }
}

}  // namespace circus::msg
