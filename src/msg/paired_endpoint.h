// The Circus paired message layer (Section 4.2): reliably delivered,
// variable-length, paired (call/return) messages over unreliable
// datagrams, with call numbers identifying each exchange. Connectionless:
// a client just sends a call message. Features reproduced from the
// dissertation:
//
//  * segmentation/reassembly with a sliding window (all segments sent
//    before any is acknowledged), or the Xerox PARC-style stop-and-wait
//    alternative for comparison (Section 4.2.5);
//  * explicit acks (ack bit + acknowledgment number) and implicit acks
//    (a return segment acks the call of the same call number; a call
//    segment acks returns with earlier call numbers);
//  * postponed acknowledgment of a just-completed call message, in the
//    hope the return will arrive soon enough to serve as the ack;
//  * immediate ack on out-of-order arrival, to trigger fast retransmit;
//  * probing and retransmission timeouts for crash detection
//    (Section 4.2.3);
//  * duplicate suppression: completed exchanges are remembered so a
//    retransmitted call is re-acknowledged, never re-delivered.
//
// The message contents are uninterpreted here; the replicated procedure
// call layer (src/core) defines what goes inside.
#ifndef SRC_MSG_PAIRED_ENDPOINT_H_
#define SRC_MSG_PAIRED_ENDPOINT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/msg/segment.h"
#include "src/net/socket.h"
#include "src/obs/bus.h"
#include "src/obs/metrics.h"
#include "src/sim/channel.h"
#include "src/sim/random.h"
#include "src/sim/task.h"

namespace circus::msg {

// A fully reassembled incoming message.
struct Message {
  net::NetAddress peer;
  MessageType type = MessageType::kCall;
  uint32_t call_number = 0;
  circus::Bytes data;
};

struct EndpointOptions {
  // kSlidingWindow is the Circus protocol; kStopAndWait is the Xerox PARC
  // RPC behaviour (explicit ack of every segment but the last), kept for
  // the Section 4.2.5 ablation.
  enum class Mode { kSlidingWindow, kStopAndWait };
  Mode mode = Mode::kSlidingWindow;

  // Maximum data bytes per segment (MTU minus the 8-byte header,
  // Section 4.2.4).
  size_t segment_data_bytes = 1024;

  // Retransmission of the first unacknowledged segment.
  sim::Duration retransmit_interval = sim::Duration::Millis(300);
  int max_retransmits = 8;  // then the peer is presumed crashed

  // Probing while awaiting a response (Section 4.2.3).
  sim::Duration probe_interval = sim::Duration::Seconds(1);
  int max_silent_probes = 5;

  // Multiplicative jitter on the retransmit and probe timers: each wait
  // is scaled by a factor uniform in [1-jitter, 1+jitter], so endpoints
  // that fired in lockstep (a troupe answering one multicast, members
  // rebooted together) spread their retransmission storms instead of
  // hammering a recovering peer in phase. 0 disables (every wait exact,
  // for tests that count timeouts). The liveness bookkeeping (how long a
  // peer may stay silent before probes count against it) is never
  // jittered.
  double timer_jitter = 0.1;
  // Seed for the jitter stream; 0 derives one from the local clock and
  // socket address at construction (deterministic inside the simulation,
  // distinct across endpoints).
  uint64_t jitter_seed = 0;

  // How many completed exchanges to remember per peer for duplicate
  // suppression ("kept until no delayed segments can arrive").
  size_t completed_history_per_peer = 64;
};

class PairedEndpoint {
 public:
  // Takes ownership of nothing; `socket` must outlive the endpoint. The
  // receiver loop starts immediately.
  PairedEndpoint(net::DatagramSocket* socket, EndpointOptions options);
  PairedEndpoint(const PairedEndpoint&) = delete;
  PairedEndpoint& operator=(const PairedEndpoint&) = delete;
  ~PairedEndpoint();

  net::NetAddress local_address() const { return socket_->local_address(); }
  sim::Host* host() const { return socket_->host(); }
  const EndpointOptions& options() const { return options_; }

  // Sends one message reliably to `to`. Returns kCrashDetected if the
  // receiver never acknowledges despite repeated retransmission.
  sim::Task<circus::Status> SendMessage(net::NetAddress to, MessageType type,
                                        uint32_t call_number,
                                        circus::Bytes data);

  // Transmits the segments of a message once to a multicast group, with
  // no per-member reliability: the caller (the replicated call layer)
  // treats each member's return message as the acknowledgment and falls
  // back to reliable unicast for silent members (Section 4.3.7).
  sim::Task<void> BlastMulticast(net::NetAddress group, MessageType type,
                                 uint32_t call_number, circus::Bytes data);

  // Next fully assembled incoming call message (servers consume these).
  sim::Task<Message> NextIncomingCall();

  // Waits for the return message of call `call_number` from `peer`,
  // probing periodically; returns kCrashDetected if the peer stays silent
  // through `max_silent_probes` probes.
  sim::Task<circus::StatusOr<Message>> AwaitReturn(net::NetAddress peer,
                                                   uint32_t call_number);

  // Waits up to `timeout` for the return of `call_number` from `peer`
  // without probing; nullopt on timeout (the slot is kept, so a later
  // AwaitReturn picks up where this left off). Used for the optimistic
  // phase of multicast calls (Section 4.3.7).
  sim::Task<std::optional<Message>> TryAwaitReturn(net::NetAddress peer,
                                                   uint32_t call_number,
                                                   sim::Duration timeout);

  // Forgets a pending return slot (used when a collator finishes early
  // and the remaining replies are to be discarded by call number,
  // Section 4.3.4).
  void DiscardReturn(net::NetAddress peer, uint32_t call_number);

  // --- introspection for tests/benches ---
  struct Counters {
    uint64_t data_segments_sent = 0;
    uint64_t ack_segments_sent = 0;
    uint64_t probe_segments_sent = 0;
    uint64_t retransmitted_segments = 0;
    uint64_t duplicate_messages_suppressed = 0;
    uint64_t messages_delivered = 0;
  };
  const Counters& counters() const { return counters_; }

  // Last time any segment arrived from each peer (the probe machinery's
  // own liveness bookkeeping). A peer silent for longer than
  // probe_interval * max_silent_probes is the one the endpoint would
  // declare crashed; the node health endpoint renders exactly that
  // judgement.
  const std::map<net::NetAddress, sim::TimePoint>& PeerActivity() const {
    return last_activity_;
  }

 private:
  struct ExchangeKey {
    net::NetAddress peer;
    MessageType type;
    uint32_t call_number;
    auto operator<=>(const ExchangeKey&) const = default;
  };

  struct SenderState {
    // Segments not yet acknowledged, in order.
    std::deque<Segment> unacked;
    // Signals ack progress; value is the new acknowledgment number
    // (UINT32_MAX for an implicit full ack).
    std::unique_ptr<sim::Channel<uint32_t>> progress;
  };

  struct Reassembly {
    uint8_t total_segments = 0;
    uint8_t ack_number = 0;  // highest consecutive segment received
    std::vector<std::optional<circus::Bytes>> parts;
    bool complete = false;
  };

  sim::Task<void> ReceiverLoop();
  void HandleSegment(const net::NetAddress& from, const Segment& seg);
  void HandleAck(const net::NetAddress& from, const Segment& seg);
  void HandleProbe(const net::NetAddress& from, const Segment& seg);
  void HandleData(const net::NetAddress& from, const Segment& seg);
  void ApplyImplicitAcks(const net::NetAddress& from, const Segment& seg);
  void SendAck(const net::NetAddress& to, MessageType type,
               uint32_t call_number, uint8_t total_segments,
               uint8_t ack_number);
  void DeliverMessage(const net::NetAddress& from, MessageType type,
                      uint32_t call_number, circus::Bytes data);
  void RememberCompleted(const ExchangeKey& key, uint8_t total_segments);
  sim::Channel<Message>& ReturnSlot(const ExchangeKey& key);
  sim::Task<void> TransmitSegment(const net::NetAddress& to,
                                  const Segment& seg, bool retransmission);
  // A timer interval with this endpoint's jitter applied.
  sim::Duration Jittered(sim::Duration base);
  // Publishes a segment-level event to the World's bus (no-op when
  // nobody subscribed). `c` is the kind-specific third field.
  void PublishSegmentEvent(obs::EventKind kind, const net::NetAddress& peer,
                           uint32_t call_number, uint64_t c);

  net::DatagramSocket* socket_;
  EndpointOptions options_;
  Counters counters_;
  sim::Rng jitter_rng_;
  // Observability hub (null outside a World); instrument pointers are
  // resolved once at construction.
  obs::EventBus* bus_ = nullptr;
  obs::Counter* retransmits_metric_ = nullptr;
  obs::Counter* probe_rounds_metric_ = nullptr;
  obs::Counter* duplicates_metric_ = nullptr;
  obs::Counter* crash_detections_metric_ = nullptr;

  std::map<ExchangeKey, std::shared_ptr<SenderState>> senders_;
  std::map<ExchangeKey, Reassembly> reassembly_;
  // Completed exchange -> total segments (for re-acking duplicates).
  std::map<ExchangeKey, uint8_t> completed_;
  std::map<net::NetAddress, std::deque<ExchangeKey>> completed_order_;
  std::unique_ptr<sim::Channel<Message>> incoming_calls_;
  std::map<ExchangeKey, std::unique_ptr<sim::Channel<Message>>>
      return_slots_;
  // Last time any segment arrived from a peer (probe bookkeeping).
  std::map<net::NetAddress, sim::TimePoint> last_activity_;
};

}  // namespace circus::msg

#endif  // SRC_MSG_PAIRED_ENDPOINT_H_
