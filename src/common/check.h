// Assertion macros for invariants that must hold if the implementation is
// correct. A failed check aborts the process: these are programmer errors,
// never expected protocol conditions (those use circus::Status).
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define CIRCUS_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "CIRCUS_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define CIRCUS_CHECK_MSG(cond, msg)                                           \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "CIRCUS_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#endif  // SRC_COMMON_CHECK_H_
