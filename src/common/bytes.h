// Byte-buffer aliases shared by the network, paired-message, and marshal
// layers. Message contents are uninterpreted byte sequences below the stub
// layer (Section 4.2.1 of the dissertation).
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace circus {

using Bytes = std::vector<uint8_t>;

inline Bytes BytesFromString(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string StringFromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace circus

#endif  // SRC_COMMON_BYTES_H_
