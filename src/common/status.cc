#include "src/common/status.h"

namespace circus {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kCrashDetected:
      return "CRASH_DETECTED";
    case ErrorCode::kStaleBinding:
      return "STALE_BINDING";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kProtocolError:
      return "PROTOCOL_ERROR";
    case ErrorCode::kDisagreement:
      return "DISAGREEMENT";
    case ErrorCode::kNoMajority:
      return "NO_MAJORITY";
    case ErrorCode::kAborted:
      return "ABORTED";
    case ErrorCode::kDeadlock:
      return "DEADLOCK";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kRemoteError:
      return "REMOTE_ERROR";
    case ErrorCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace circus
