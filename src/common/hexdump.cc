#include "src/common/hexdump.h"

#include <cctype>
#include <cstdio>

namespace circus {

std::string HexDump(const Bytes& data) {
  std::string out;
  char line[32];
  for (size_t offset = 0; offset < data.size(); offset += 16) {
    std::snprintf(line, sizeof(line), "%08zx  ", offset);
    out += line;
    for (size_t i = 0; i < 16; ++i) {
      if (offset + i < data.size()) {
        std::snprintf(line, sizeof(line), "%02x ", data[offset + i]);
        out += line;
      } else {
        out += "   ";
      }
      if (i == 7) {
        out += ' ';
      }
    }
    out += " |";
    for (size_t i = 0; i < 16 && offset + i < data.size(); ++i) {
      const int c = data[offset + i];
      out += std::isprint(c) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  return out;
}

}  // namespace circus
