// Lightweight status / status-or-value types used throughout Circus for
// recoverable protocol-level errors. Irrecoverable conditions (programmer
// errors) use CIRCUS_CHECK; host crashes during simulation unwind with
// circus::sim::HostCrashedError instead, so that fail-stop failures
// propagate through coroutine stacks the way a machine crash tears down a
// real process.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace circus {

// Error taxonomy for the Circus runtime. The codes mirror the failure
// classes the dissertation distinguishes: timeouts (crash suspicion),
// stale bindings (Ch. 6), protocol violations, collator disagreement
// (unanimous collator, Section 4.3.6), and transaction aborts (Ch. 5).
enum class ErrorCode {
  kOk = 0,
  kTimeout,            // no response after repeated retransmissions
  kCrashDetected,      // probe/timeout machinery declared the peer dead
  kStaleBinding,       // troupe ID mismatch; client must rebind (Section 6.2)
  kNotFound,           // name or ID unknown to the binding agent
  kAlreadyExists,      // duplicate registration
  kProtocolError,      // malformed segment or message
  kDisagreement,       // unanimous collator saw differing replies
  kNoMajority,         // majority collator found no majority value
  kAborted,            // transaction aborted
  kDeadlock,           // transaction aborted to break a deadlock
  kUnavailable,        // no live troupe member reachable
  kInvalidArgument,
  kFailedPrecondition,
  kRemoteError,        // server-side exception propagated through RPC
  kCancelled,
};

// Human-readable name of an error code ("kTimeout" -> "TIMEOUT").
std::string_view ErrorCodeName(ErrorCode code);

// A success-or-error result with an optional diagnostic message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  explicit Status(ErrorCode code) : code_(code) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "TIMEOUT: no reply from 10.0.0.3:9000".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// A value of type T or an error Status. Minimal analogue of
// absl::StatusOr, sufficient for the Circus runtime.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT
  StatusOr(ErrorCode code, std::string message)
      : status_(code, std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  ErrorCode code() const { return ok() ? ErrorCode::kOk : status_.code(); }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace circus

#endif  // SRC_COMMON_STATUS_H_
