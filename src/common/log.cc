#include "src/common/log.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>

namespace circus {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
LogSink g_sink;  // empty => stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSink(LogSink sink) { g_sink = std::move(sink); }

std::string FormatLogRecord(LogLevel level, int64_t sim_time_ns,
                            const std::string& message) {
  char prefix[64];
  if (sim_time_ns >= 0) {
    std::snprintf(prefix, sizeof(prefix), "[%s %10.6fs] ", LevelName(level),
                  static_cast<double>(sim_time_ns) / 1e9);
  } else {
    std::snprintf(prefix, sizeof(prefix), "[%s] ", LevelName(level));
  }
  return std::string(prefix) + message;
}

namespace internal {

void EmitLog(LogLevel level, int64_t sim_time_ns, const std::string& message) {
  if (g_sink) {
    g_sink(level, sim_time_ns, message);
    return;
  }
  std::fprintf(stderr, "%s\n",
               FormatLogRecord(level, sim_time_ns, message).c_str());
}

}  // namespace internal
}  // namespace circus
