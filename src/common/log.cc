#include "src/common/log.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>

namespace circus {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

void EmitLog(LogLevel level, int64_t sim_time_ns, const std::string& message) {
  if (sim_time_ns >= 0) {
    std::fprintf(stderr, "[%s %10.6fs] %s\n", LevelName(level),
                 static_cast<double>(sim_time_ns) / 1e9, message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace internal
}  // namespace circus
