// Debug helper: renders a byte buffer as a classic offset/hex/ASCII dump.
#ifndef SRC_COMMON_HEXDUMP_H_
#define SRC_COMMON_HEXDUMP_H_

#include <string>

#include "src/common/bytes.h"

namespace circus {

// Formats `data` 16 bytes per line, e.g.
// 00000000  00 01 00 03 00 00 00 2a  |.......*|
std::string HexDump(const Bytes& data);

}  // namespace circus

#endif  // SRC_COMMON_HEXDUMP_H_
