// Minimal leveled logger. Protocol layers log with the simulated timestamp
// so traces read like the event log of a real distributed run. Logging is
// off by default (kWarning threshold) to keep tests and benches quiet.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace circus {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
};

// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Pluggable destination for formatted log records; `sim_time_ns` < 0 means
// "no sim time". Installing an empty sink restores the default (stderr).
// The sink sees every record that passes the threshold, including records
// logged from coroutine frames mid-simulation, so it must not re-enter the
// logger or touch sim state.
using LogSink =
    std::function<void(LogLevel, int64_t sim_time_ns, const std::string&)>;
void SetLogSink(LogSink sink);

// Formats one record as the default stderr emitter would, without the
// trailing newline ("[I   0.001000s] message"). For sinks that want the
// canonical rendering.
std::string FormatLogRecord(LogLevel level, int64_t sim_time_ns,
                            const std::string& message);

namespace internal {

// Routes one record to the installed sink (stderr by default).
void EmitLog(LogLevel level, int64_t sim_time_ns, const std::string& message);

class LogLine {
 public:
  // The threshold is latched once at construction so a line is all-or-
  // nothing: a concurrent SetLogLevel cannot produce a half-formatted
  // record (operator<< and the destructor agreeing is what EmitLog needs).
  LogLine(LogLevel level, int64_t sim_time_ns)
      : level_(level),
        sim_time_ns_(sim_time_ns),
        enabled_(level >= GetLogLevel()) {}
  ~LogLine() {
    if (enabled_) {
      EmitLog(level_, sim_time_ns_, stream_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) {
      stream_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  int64_t sim_time_ns_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace circus

#define CIRCUS_LOG(level) ::circus::internal::LogLine(level, -1)
#define CIRCUS_LOG_AT(level, ns) ::circus::internal::LogLine(level, ns)

#endif  // SRC_COMMON_LOG_H_
