// Minimal leveled logger. Protocol layers log with the simulated timestamp
// so traces read like the event log of a real distributed run. Logging is
// off by default (kWarning threshold) to keep tests and benches quiet.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace circus {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
};

// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Emits one formatted line to stderr; `sim_time_ns` < 0 means "no sim time".
void EmitLog(LogLevel level, int64_t sim_time_ns, const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, int64_t sim_time_ns)
      : level_(level), sim_time_ns_(sim_time_ns) {}
  ~LogLine() {
    if (level_ >= GetLogLevel()) {
      EmitLog(level_, sim_time_ns_, stream_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) {
      stream_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  int64_t sim_time_ns_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace circus

#define CIRCUS_LOG(level) ::circus::internal::LogLine(level, -1)
#define CIRCUS_LOG_AT(level, ns) ::circus::internal::LogLine(level, ns)

#endif  // SRC_COMMON_LOG_H_
