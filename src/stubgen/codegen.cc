#include "src/stubgen/codegen.h"

#include <cctype>
#include <sstream>

#include "src/common/check.h"

namespace circus::stubgen {

namespace {

std::string UpperSnake(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::toupper(c));
    } else {
      out += '_';
    }
  }
  return out;
}

// The C++ spelling of an IDL type.
std::string CppType(const TypePtr& type) {
  struct Visitor {
    std::string operator()(Predefined p) const {
      switch (p) {
        case Predefined::kBoolean:
          return "bool";
        case Predefined::kCardinal:
          return "uint16_t";
        case Predefined::kLongCardinal:
          return "uint32_t";
        case Predefined::kInteger:
          return "int16_t";
        case Predefined::kLongInteger:
          return "int32_t";
        case Predefined::kString:
          return "std::string";
        case Predefined::kUnspecified:
          return "uint16_t";
      }
      return "void";
    }
    std::string operator()(const NamedType& n) const { return n.name; }
    std::string operator()(const SequenceType& s) const {
      return "std::vector<" + CppType(s.element) + ">";
    }
    std::string operator()(const ArrayType& a) const {
      return "std::array<" + CppType(a.element) + ", " +
             std::to_string(a.size) + ">";
    }
    std::string operator()(const RecordType&) const {
      CIRCUS_CHECK_MSG(false, "anonymous records must be declared types");
      return "";
    }
    std::string operator()(const EnumerationType&) const {
      CIRCUS_CHECK_MSG(false,
                       "anonymous enumerations must be declared types");
      return "";
    }
    std::string operator()(const ChoiceType&) const {
      CIRCUS_CHECK_MSG(false, "anonymous choices must be declared types");
      return "";
    }
  };
  return std::visit(Visitor{}, type->node);
}

// Emits statements externalizing `expr` of `type` into writer `w`.
void EmitWrite(std::ostringstream& out, const TypePtr& type,
               const std::string& expr, const std::string& indent,
               int depth);
// Emits statements internalizing a value of `type` from reader `r` into
// the already-declared lvalue `target`.
void EmitRead(std::ostringstream& out, const TypePtr& type,
              const std::string& target, const std::string& indent,
              int depth);

void EmitWrite(std::ostringstream& out, const TypePtr& type,
               const std::string& expr, const std::string& indent,
               int depth) {
  struct Visitor {
    std::ostringstream& out;
    const std::string& expr;
    const std::string& indent;
    int depth;
    void operator()(Predefined p) const {
      switch (p) {
        case Predefined::kBoolean:
          out << indent << "w.WriteBool(" << expr << ");\n";
          return;
        case Predefined::kCardinal:
        case Predefined::kUnspecified:
          out << indent << "w.WriteU16(" << expr << ");\n";
          return;
        case Predefined::kLongCardinal:
          out << indent << "w.WriteU32(" << expr << ");\n";
          return;
        case Predefined::kInteger:
          out << indent << "w.WriteI16(" << expr << ");\n";
          return;
        case Predefined::kLongInteger:
          out << indent << "w.WriteI32(" << expr << ");\n";
          return;
        case Predefined::kString:
          out << indent << "w.WriteString(" << expr << ");\n";
          return;
      }
    }
    void operator()(const NamedType& n) const {
      out << indent << "Write_" << n.name << "(w, " << expr << ");\n";
    }
    void operator()(const SequenceType& s) const {
      const std::string elem = "e" + std::to_string(depth);
      out << indent << "w.WriteU32(static_cast<uint32_t>(" << expr
          << ".size()));\n";
      out << indent << "for (const auto& " << elem << " : " << expr
          << ") {\n";
      EmitWrite(out, s.element, elem, indent + "  ", depth + 1);
      out << indent << "}\n";
    }
    void operator()(const ArrayType& a) const {
      const std::string elem = "e" + std::to_string(depth);
      out << indent << "for (const auto& " << elem << " : " << expr
          << ") {\n";
      EmitWrite(out, a.element, elem, indent + "  ", depth + 1);
      out << indent << "}\n";
    }
    void operator()(const RecordType& r) const {
      for (const Field& f : r.fields) {
        EmitWrite(out, f.type, expr + "." + f.name, indent, depth);
      }
    }
    void operator()(const EnumerationType&) const {
      out << indent << "w.WriteU16(static_cast<uint16_t>(" << expr
          << "));\n";
    }
    void operator()(const ChoiceType& c) const {
      out << indent << "switch (" << expr << ".index()) {\n";
      for (size_t i = 0; i < c.arms.size(); ++i) {
        out << indent << "  case " << i << ":\n";
        out << indent << "    w.WriteUnionTag(" << c.arms[i].tag << ");\n";
        EmitWrite(out, c.arms[i].type,
                  "std::get<" + std::to_string(i) + ">(" + expr + ")",
                  indent + "    ", depth + 1);
        out << indent << "    break;\n";
      }
      out << indent << "  default: break;\n";
      out << indent << "}\n";
    }
  };
  std::visit(Visitor{out, expr, indent, depth}, type->node);
}

void EmitRead(std::ostringstream& out, const TypePtr& type,
              const std::string& target, const std::string& indent,
              int depth) {
  struct Visitor {
    std::ostringstream& out;
    const std::string& target;
    const std::string& indent;
    int depth;
    void operator()(Predefined p) const {
      switch (p) {
        case Predefined::kBoolean:
          out << indent << target << " = r.ReadBool();\n";
          return;
        case Predefined::kCardinal:
        case Predefined::kUnspecified:
          out << indent << target << " = r.ReadU16();\n";
          return;
        case Predefined::kLongCardinal:
          out << indent << target << " = r.ReadU32();\n";
          return;
        case Predefined::kInteger:
          out << indent << target << " = r.ReadI16();\n";
          return;
        case Predefined::kLongInteger:
          out << indent << target << " = r.ReadI32();\n";
          return;
        case Predefined::kString:
          out << indent << target << " = r.ReadString();\n";
          return;
      }
    }
    void operator()(const NamedType& n) const {
      out << indent << target << " = Read_" << n.name << "(r);\n";
    }
    void operator()(const SequenceType& s) const {
      const std::string count = "n" + std::to_string(depth);
      const std::string index = "i" + std::to_string(depth);
      const std::string elem = "v" + std::to_string(depth);
      out << indent << "{\n";
      out << indent << "  const uint32_t " << count << " = r.ReadU32();\n";
      out << indent << "  if (" << count << " > r.remaining()) {\n";
      out << indent << "    r.Poison();\n";
      out << indent << "  } else {\n";
      out << indent << "    " << target << ".reserve(" << count << ");\n";
      out << indent << "    for (uint32_t " << index << " = 0; " << index
          << " < " << count << " && r.ok(); ++" << index << ") {\n";
      out << indent << "      " << CppType(s.element) << " " << elem
          << "{};\n";
      EmitRead(out, s.element, elem, indent + "      ", depth + 1);
      out << indent << "      " << target << ".push_back(std::move("
          << elem << "));\n";
      out << indent << "    }\n";
      out << indent << "  }\n";
      out << indent << "}\n";
    }
    void operator()(const ArrayType& a) const {
      const std::string elem = "v" + std::to_string(depth);
      out << indent << "for (auto& " << elem << " : " << target << ") {\n";
      EmitRead(out, a.element, elem, indent + "  ", depth + 1);
      out << indent << "}\n";
    }
    void operator()(const RecordType& rec) const {
      for (const Field& f : rec.fields) {
        EmitRead(out, f.type, target + "." + f.name, indent, depth);
      }
    }
    void operator()(const EnumerationType& e) const {
      // Enumeration targets need their declared C++ type; the caller
      // declared `target` with it, so a cast suffices.
      out << indent << target << " = static_cast<decltype(" << target
          << ")>(r.ReadU16());\n";
      (void)e;
    }
    void operator()(const ChoiceType& c) const {
      const std::string tag = "t" + std::to_string(depth);
      out << indent << "{\n";
      out << indent << "  const uint16_t " << tag
          << " = r.ReadUnionTag();\n";
      out << indent << "  switch (" << tag << ") {\n";
      for (size_t i = 0; i < c.arms.size(); ++i) {
        const std::string arm = "a" + std::to_string(depth);
        out << indent << "    case " << c.arms[i].tag << ": {\n";
        out << indent << "      " << CppType(c.arms[i].type) << " " << arm
            << "{};\n";
        EmitRead(out, c.arms[i].type, arm, indent + "      ", depth + 1);
        out << indent << "      " << target << ".emplace<" << i
            << ">(std::move(" << arm << "));\n";
        out << indent << "      break;\n";
        out << indent << "    }\n";
      }
      out << indent << "    default: r.Poison(); break;\n";
      out << indent << "  }\n";
      out << indent << "}\n";
    }
  };
  std::visit(Visitor{out, target, indent, depth}, type->node);
}

void EmitTypeDecl(std::ostringstream& out, const Program& program,
                  const TypeDecl& decl) {
  (void)program;
  if (const RecordType* rec = std::get_if<RecordType>(&decl.type->node)) {
    out << "struct " << decl.name << " {\n";
    for (const Field& f : rec->fields) {
      out << "  " << CppType(f.type) << " " << f.name << "{};\n";
    }
    out << "  bool operator==(const " << decl.name
        << "&) const = default;\n";
    out << "};\n\n";
    return;
  }
  if (const EnumerationType* e =
          std::get_if<EnumerationType>(&decl.type->node)) {
    out << "enum class " << decl.name << " : uint16_t {\n";
    for (const auto& [name, value] : e->values) {
      out << "  " << name << " = " << value << ",\n";
    }
    out << "};\n\n";
    return;
  }
  if (const ChoiceType* c = std::get_if<ChoiceType>(&decl.type->node)) {
    out << "// CHOICE " << decl.name << ": arms";
    for (const ChoiceArm& arm : c->arms) {
      out << " " << arm.name << "(" << arm.tag << ")";
    }
    out << "\nusing " << decl.name << " = std::variant<";
    for (size_t i = 0; i < c->arms.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << CppType(c->arms[i].type);
    }
    out << ">;\n\n";
    return;
  }
  out << "using " << decl.name << " = " << CppType(decl.type) << ";\n\n";
}

void EmitMarshalFunctions(std::ostringstream& out, const TypeDecl& decl) {
  out << "inline void Write_" << decl.name
      << "(::circus::marshal::Writer& w, const " << decl.name
      << "& v) {\n";
  EmitWrite(out, decl.type, "v", "  ", 0);
  out << "}\n\n";
  out << "inline " << decl.name << " Read_" << decl.name
      << "(::circus::marshal::Reader& r) {\n";
  out << "  " << decl.name << " v{};\n";
  EmitRead(out, decl.type, "v", "  ", 0);
  out << "  return v;\n";
  out << "}\n\n";
}

std::string ArgsStructName(const ProcedureDecl& p) {
  return p.name + "Args";
}
std::string ResultsStructName(const ProcedureDecl& p) {
  return p.name + "Results";
}

void EmitProcedureStructs(std::ostringstream& out,
                          const ProcedureDecl& p) {
  for (const auto* fields : {&p.arguments, &p.results}) {
    const std::string name =
        fields == &p.arguments ? ArgsStructName(p) : ResultsStructName(p);
    out << "struct " << name << " {\n";
    for (const Field& f : *fields) {
      out << "  " << CppType(f.type) << " " << f.name << "{};\n";
    }
    out << "  bool operator==(const " << name << "&) const = default;\n";
    out << "};\n";
    // Marshal functions for the bundle.
    out << "inline void Write_" << name
        << "(::circus::marshal::Writer& w, const " << name << "& v) {\n";
    for (const Field& f : *fields) {
      EmitWrite(out, f.type, "v." + f.name, "  ", 0);
    }
    out << "  (void)w; (void)v;\n";
    out << "}\n";
    out << "inline " << name << " Read_" << name
        << "(::circus::marshal::Reader& r) {\n";
    out << "  " << name << " v{};\n";
    for (const Field& f : *fields) {
      EmitRead(out, f.type, "v." + f.name, "  ", 0);
    }
    out << "  (void)r;\n";
    out << "  return v;\n";
    out << "}\n\n";
  }
}

std::string ParameterList(const ProcedureDecl& p, bool leading_comma) {
  std::string out;
  for (const Field& f : p.arguments) {
    if (leading_comma || !out.empty()) {
      out += ", ";
    }
    out += CppType(f.type) + " " + f.name;
  }
  return out;
}

void EmitClient(std::ostringstream& out, const Program& program) {
  const std::string client = program.name + "Client";
  out << "// Client stubs. Implicit binding uses the troupe set with\n"
      << "// Bind(); explicit binding (the ...At flavour) takes the\n"
      << "// binding handle as an extra parameter (Section 7.3);\n"
      << "// explicit replication (the ...Raw flavour) exposes\n"
      << "// CallOptions so the caller can supply a collator, paired\n"
      << "// with a typed per-reply decoder (Section 7.4).\n";
  out << "class " << client << " {\n";
  out << " public:\n";
  out << "  explicit " << client
      << "(::circus::core::RpcProcess* process) : process_(process) {}\n\n";
  out << "  void Bind(::circus::core::Troupe troupe) { troupe_ = "
         "std::move(troupe); }\n";
  out << "  const ::circus::core::Troupe& binding() const { return "
         "troupe_; }\n\n";
  for (const ProcedureDecl& p : program.procedures) {
    const std::string results = ResultsStructName(p);
    // Implicit binding.
    out << "  ::circus::sim::Task<::circus::StatusOr<" << results << ">> "
        << p.name << "(::circus::core::ThreadId thread"
        << ParameterList(p, /*leading_comma=*/true) << ") {\n";
    out << "    co_return co_await " << p.name << "At(troupe_, thread";
    for (const Field& f : p.arguments) {
      out << ", std::move(" << f.name << ")";
    }
    out << ");\n";
    out << "  }\n\n";
    // Explicit binding.
    out << "  ::circus::sim::Task<::circus::StatusOr<" << results << ">> "
        << p.name
        << "At(const ::circus::core::Troupe& binding, "
           "::circus::core::ThreadId thread"
        << ParameterList(p, true) << ") {\n";
    out << "    ::circus::marshal::Writer w;\n";
    for (const Field& f : p.arguments) {
      EmitWrite(out, f.type, f.name, "    ", 0);
    }
    out << "    ::circus::StatusOr<::circus::Bytes> reply =\n"
        << "        co_await process_->Call(thread, binding, "
           "ModuleNumberOf(binding), "
        << p.number << ", w.Take());\n";
    out << "    if (!reply.ok()) {\n";
    out << "      co_return reply.status();\n";
    out << "    }\n";
    out << "    co_return Decode" << p.name << "Reply(*reply);\n";
    out << "  }\n\n";
    // Explicit replication.
    out << "  ::circus::sim::Task<::circus::StatusOr<::circus::Bytes>> "
        << p.name
        << "Raw(const ::circus::core::Troupe& binding, "
           "::circus::core::ThreadId thread, "
           "::circus::core::CallOptions options"
        << ParameterList(p, true) << ") {\n";
    out << "    ::circus::marshal::Writer w;\n";
    for (const Field& f : p.arguments) {
      EmitWrite(out, f.type, f.name, "    ", 0);
    }
    out << "    co_return co_await process_->Call(thread, binding, "
           "ModuleNumberOf(binding), "
        << p.number << ", w.Take(), std::move(options));\n";
    out << "  }\n\n";
    // Typed reply decoder for custom collators.
    out << "  static ::circus::StatusOr<" << results << "> Decode"
        << p.name << "Reply(const ::circus::Bytes& reply) {\n";
    out << "    ::circus::marshal::Reader r(reply);\n";
    out << "    " << results << " results = Read_" << results << "(r);\n";
    out << "    if (!r.AtEnd()) {\n";
    out << "      return ::circus::Status("
           "::circus::ErrorCode::kProtocolError, \"bad " << p.name
        << " reply\");\n";
    out << "    }\n";
    out << "    return results;\n";
    out << "  }\n\n";
  }
  out << " private:\n";
  out << "  static ::circus::core::ModuleNumber ModuleNumberOf(\n"
      << "      const ::circus::core::Troupe& troupe) {\n"
      << "    return troupe.members.empty() ? 0 : "
         "troupe.members.front().module;\n"
      << "  }\n\n";
  out << "  ::circus::core::RpcProcess* process_;\n";
  out << "  ::circus::core::Troupe troupe_;\n";
  out << "};\n\n";
}

void EmitServer(std::ostringstream& out, const Program& program) {
  const std::string handler = program.name + "Handler";
  out << "// Server skeleton: implement the handler and export it.\n";
  out << "class " << handler << " {\n";
  out << " public:\n";
  out << "  virtual ~" << handler << "() = default;\n";
  for (const ProcedureDecl& p : program.procedures) {
    out << "  virtual ::circus::sim::Task<::circus::StatusOr<"
        << ResultsStructName(p) << ">> " << p.name
        << "(::circus::core::ServerCallContext& ctx, "
        << ArgsStructName(p) << " args) = 0;\n";
  }
  out << "};\n\n";
  out << "inline ::circus::core::ModuleNumber Export" << program.name
      << "(::circus::core::RpcProcess* process, " << handler
      << "* handler) {\n";
  out << "  const ::circus::core::ModuleNumber module = "
         "process->ExportModule(\""
      << program.name << "\");\n";
  for (const ProcedureDecl& p : program.procedures) {
    out << "  process->ExportProcedure(module, " << p.number
        << ",\n"
           "      [handler](::circus::core::ServerCallContext& ctx,\n"
           "                const ::circus::Bytes& raw)\n"
           "          -> ::circus::sim::Task<::circus::StatusOr<"
           "::circus::Bytes>> {\n";
    out << "        ::circus::marshal::Reader r(raw);\n";
    out << "        " << ArgsStructName(p) << " args = Read_"
        << ArgsStructName(p) << "(r);\n";
    out << "        if (!r.AtEnd()) {\n";
    out << "          co_return ::circus::Status("
           "::circus::ErrorCode::kProtocolError, \"bad " << p.name
        << " args\");\n";
    out << "        }\n";
    out << "        ::circus::StatusOr<" << ResultsStructName(p)
        << "> results =\n"
           "            co_await handler->" << p.name
        << "(ctx, std::move(args));\n";
    out << "        if (!results.ok()) {\n";
    out << "          co_return results.status();\n";
    out << "        }\n";
    out << "        ::circus::marshal::Writer w;\n";
    out << "        Write_" << ResultsStructName(p) << "(w, *results);\n";
    out << "        co_return w.Take();\n";
    out << "      });\n";
  }
  out << "  return module;\n";
  out << "}\n\n";
}

void EmitErrors(std::ostringstream& out, const Program& program) {
  if (program.errors.empty()) {
    return;
  }
  out << "// REPORTS errors travel through the error result of the "
         "return\n// message; Report() builds one, GetReportedError() "
         "recognizes one.\n";
  out << "enum class Error : uint16_t {\n";
  for (const ErrorDecl& e : program.errors) {
    out << "  " << e.name << " = " << e.code << ",\n";
  }
  out << "};\n\n";
  out << "inline std::string_view ErrorName(Error e) {\n";
  out << "  switch (e) {\n";
  for (const ErrorDecl& e : program.errors) {
    out << "    case Error::" << e.name << ": return \"" << e.name
        << "\";\n";
  }
  out << "  }\n";
  out << "  return \"?\";\n";
  out << "}\n\n";
  out << "inline ::circus::Status Report(Error e) {\n";
  out << "  return ::circus::Status(::circus::ErrorCode::kRemoteError,\n"
      << "                          std::string(\"" << program.name
      << ".\") + std::string(ErrorName(e)));\n";
  out << "}\n\n";
  out << "inline std::optional<Error> GetReportedError(\n"
      << "    const ::circus::Status& status) {\n";
  out << "  const std::string prefix = \"" << program.name << ".\";\n";
  out << "  if (status.message().rfind(prefix, 0) != 0) {\n";
  out << "    return std::nullopt;\n";
  out << "  }\n";
  out << "  const std::string name = status.message().substr("
         "prefix.size());\n";
  for (const ErrorDecl& e : program.errors) {
    out << "  if (name == \"" << e.name << "\") { return Error::" << e.name
        << "; }\n";
  }
  out << "  return std::nullopt;\n";
  out << "}\n\n";
}

}  // namespace

std::string GenerateHeader(const Program& program,
                           const CodegenOptions& options) {
  std::ostringstream out;
  const std::string guard =
      "CIRCUS_GEN_" + UpperSnake(program.name) + "_H_";
  out << "// Generated by circus_stubgen from " << options.source_name
      << ".\n// PROGRAM " << program.name << " number " << program.number
      << " version " << program.version << ". DO NOT EDIT.\n";
  out << "#ifndef " << guard << "\n#define " << guard << "\n\n";
  out << "#include <array>\n#include <cstdint>\n#include <optional>\n"
         "#include <string>\n#include <string_view>\n#include <variant>\n"
         "#include <vector>\n\n";
  out << "#include \"src/common/bytes.h\"\n";
  out << "#include \"src/common/status.h\"\n";
  out << "#include \"src/core/process.h\"\n";
  out << "#include \"src/marshal/marshal.h\"\n\n";
  out << "namespace circus::idl::" << program.name << " {\n\n";
  out << "inline constexpr int kProgramNumber = " << program.number
      << ";\ninline constexpr int kProgramVersion = " << program.version
      << ";\n\n";
  EmitErrors(out, program);
  for (const TypeDecl& t : program.types) {
    EmitTypeDecl(out, program, t);
  }
  for (const TypeDecl& t : program.types) {
    EmitMarshalFunctions(out, t);
  }
  for (const ProcedureDecl& p : program.procedures) {
    EmitProcedureStructs(out, p);
  }
  EmitClient(out, program);
  EmitServer(out, program);
  out << "}  // namespace circus::idl::" << program.name << "\n\n";
  out << "#endif  // " << guard << "\n";
  return out.str();
}

}  // namespace circus::stubgen
