// Documentation back end for the stub compiler: renders a parsed PROGRAM
// as Markdown interface documentation (types, errors, procedures with
// signatures and REPORTS clauses). A second back end alongside the C++
// generator, in the spirit of the dissertation's multiple stub compilers
// sharing one front end (Section 7.1.4).
#ifndef SRC_STUBGEN_DOCGEN_H_
#define SRC_STUBGEN_DOCGEN_H_

#include <string>

#include "src/stubgen/idl_ast.h"

namespace circus::stubgen {

std::string GenerateMarkdownDocs(const Program& program);

}  // namespace circus::stubgen

#endif  // SRC_STUBGEN_DOCGEN_H_
