// circus_stubgen: the stub compiler command-line tool.
//
//   circus_stubgen <input.idl> <output.h>   generate C++ stubs
//   circus_stubgen --format <input.idl>     print canonical IDL to stdout
//   circus_stubgen --check <input.idl>      parse + semantic checks only
//   circus_stubgen --docs <input.idl>       print Markdown docs to stdout
//
// Reads a Courier-flavoured interface definition and writes a header of
// C++ client and server stubs over the Circus replicated procedure call
// runtime (Chapter 7).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/stubgen/codegen.h"
#include "src/stubgen/docgen.h"
#include "src/stubgen/idl_parser.h"
#include "src/stubgen/printer.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.idl> <output.h>\n"
               "       %s --format <input.idl>\n"
               "       %s --check <input.idl>\n"
               "       %s --docs <input.idl>\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

circus::StatusOr<circus::stubgen::Program> ParseFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return circus::Status(circus::ErrorCode::kNotFound,
                          std::string("cannot open ") + path);
  }
  std::ostringstream source;
  source << in.rdbuf();
  return circus::stubgen::ParseProgram(source.str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    return Usage(argv[0]);
  }
  const std::string first = argv[1];
  if (first == "--format" || first == "--check" || first == "--docs") {
    circus::StatusOr<circus::stubgen::Program> program = ParseFile(argv[2]);
    if (!program.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[2],
                   program.status().ToString().c_str());
      return 1;
    }
    if (first == "--format") {
      std::fputs(circus::stubgen::PrintProgram(*program).c_str(), stdout);
    } else if (first == "--docs") {
      std::fputs(circus::stubgen::GenerateMarkdownDocs(*program).c_str(),
                 stdout);
    }
    return 0;
  }

  circus::StatusOr<circus::stubgen::Program> program = ParseFile(argv[1]);
  if (!program.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[1],
                 program.status().ToString().c_str());
    return 1;
  }
  circus::stubgen::CodegenOptions options;
  options.source_name = argv[1];
  const std::string header =
      circus::stubgen::GenerateHeader(*program, options);

  std::ofstream out(argv[2]);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[2]);
    return 1;
  }
  out << header;
  return 0;
}
