#include "src/stubgen/docgen.h"

#include <sstream>

#include "src/stubgen/printer.h"

namespace circus::stubgen {

namespace {

std::string SignatureOf(const ProcedureDecl& p) {
  std::string out = p.name + "(";
  for (size_t i = 0; i < p.arguments.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += p.arguments[i].name + ": " + PrintType(p.arguments[i].type);
  }
  out += ")";
  if (!p.results.empty()) {
    out += " -> (";
    for (size_t i = 0; i < p.results.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += p.results[i].name + ": " + PrintType(p.results[i].type);
    }
    out += ")";
  }
  return out;
}

}  // namespace

std::string GenerateMarkdownDocs(const Program& program) {
  std::ostringstream out;
  out << "# " << program.name << "\n\n";
  out << "PROGRAM " << program.number << ", VERSION " << program.version
      << ".\n\n";

  if (!program.types.empty()) {
    out << "## Types\n\n";
    out << "| name | definition |\n|---|---|\n";
    for (const TypeDecl& t : program.types) {
      out << "| `" << t.name << "` | `" << PrintType(t.type) << "` |\n";
    }
    out << "\n";
  }

  if (!program.errors.empty()) {
    out << "## Errors\n\n";
    out << "| name | code |\n|---|---|\n";
    for (const ErrorDecl& e : program.errors) {
      out << "| `" << e.name << "` | " << e.code << " |\n";
    }
    out << "\n";
  }

  if (!program.procedures.empty()) {
    out << "## Procedures\n\n";
    for (const ProcedureDecl& p : program.procedures) {
      out << "### `" << SignatureOf(p) << "`\n\n";
      out << "Procedure number " << p.number << ".";
      if (!p.reports.empty()) {
        out << " Reports:";
        for (const std::string& r : p.reports) {
          out << " `" << r << "`";
        }
        out << ".";
      }
      out << "\n\n";
    }
  }
  return out.str();
}

}  // namespace circus::stubgen
