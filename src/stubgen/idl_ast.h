// AST for the Circus interface definition language, a Courier-flavoured
// IDL (Section 7.1.1, Figure 7.2). An interface is a PROGRAM containing
// type, error, and procedure declarations:
//
//   NameServer: PROGRAM 26 VERSION 1 =
//   BEGIN
//     Name: TYPE = STRING;
//     Property: TYPE = RECORD [name: Name, value: SEQUENCE OF UNSPECIFIED];
//     AlreadyExists: ERROR = 0;
//     Register: PROCEDURE [name: Name, properties: Properties]
//       REPORTS [AlreadyExists] = 0;
//     Lookup: PROCEDURE [name: Name] RETURNS [properties: Properties]
//       REPORTS [NotFound] = 1;
//   END.
//
// Predefined types: BOOLEAN, CARDINAL (16-bit), LONG CARDINAL (32-bit),
// INTEGER (16-bit), LONG INTEGER (32-bit), STRING, UNSPECIFIED (16-bit).
// Constructed types: enumerations, arrays, records, variable-length
// sequences, and discriminated unions (CHOICE).
#ifndef SRC_STUBGEN_IDL_AST_H_
#define SRC_STUBGEN_IDL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace circus::stubgen {

struct Type;
using TypePtr = std::shared_ptr<Type>;

// Position of a construct in the IDL source, carried through the AST so
// semantic diagnostics (duplicate numbers, undeclared references) can
// point at the offending declaration, not just fail.
struct SourcePos {
  int line = 0;    // 1-based; 0 = unknown
  int column = 0;  // 1-based byte offset in the line

  std::string ToString() const {
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column);
  }
};

enum class Predefined {
  kBoolean,
  kCardinal,      // 16-bit unsigned
  kLongCardinal,  // 32-bit unsigned
  kInteger,       // 16-bit signed
  kLongInteger,   // 32-bit signed
  kString,
  kUnspecified,   // 16-bit, uninterpreted
};

struct NamedType {
  std::string name;  // reference to a TYPE declaration
  SourcePos pos;     // where the reference appears
};

struct SequenceType {
  TypePtr element;
};

struct ArrayType {
  size_t size = 0;
  TypePtr element;
};

struct Field {
  std::string name;
  TypePtr type;
};

struct RecordType {
  std::vector<Field> fields;
};

struct EnumerationType {
  std::vector<std::pair<std::string, int>> values;
};

struct ChoiceArm {
  std::string name;
  int tag = 0;
  TypePtr type;
};

struct ChoiceType {
  std::vector<ChoiceArm> arms;
};

struct Type {
  std::variant<Predefined, NamedType, SequenceType, ArrayType, RecordType,
               EnumerationType, ChoiceType>
      node;
};

struct TypeDecl {
  std::string name;
  TypePtr type;
  SourcePos pos;
};

struct ErrorDecl {
  std::string name;
  int code = 0;
  SourcePos pos;
};

struct ProcedureDecl {
  std::string name;
  int number = 0;
  std::vector<Field> arguments;
  std::vector<Field> results;
  std::vector<std::string> reports;  // names of ERROR declarations
  SourcePos pos;
};

struct Program {
  std::string name;
  int number = 0;
  int version = 0;
  std::vector<TypeDecl> types;
  std::vector<ErrorDecl> errors;
  std::vector<ProcedureDecl> procedures;

  const TypeDecl* FindType(const std::string& name) const {
    for (const TypeDecl& t : types) {
      if (t.name == name) {
        return &t;
      }
    }
    return nullptr;
  }
  const ErrorDecl* FindError(const std::string& name) const {
    for (const ErrorDecl& e : errors) {
      if (e.name == name) {
        return &e;
      }
    }
    return nullptr;
  }
};

}  // namespace circus::stubgen

#endif  // SRC_STUBGEN_IDL_AST_H_
