#include "src/stubgen/printer.h"

#include <sstream>

namespace circus::stubgen {

namespace {

std::string PrintFields(const std::vector<Field>& fields) {
  std::string out = "[";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += fields[i].name + ": " + PrintType(fields[i].type);
  }
  out += "]";
  return out;
}

bool TypesEqual(const TypePtr& a, const TypePtr& b) {
  // Structural comparison via the canonical printing: simple and exact
  // because printing is deterministic and injective on the AST.
  return PrintType(a) == PrintType(b);
}

}  // namespace

std::string PrintType(const TypePtr& type) {
  struct Visitor {
    std::string operator()(Predefined p) const {
      switch (p) {
        case Predefined::kBoolean:
          return "BOOLEAN";
        case Predefined::kCardinal:
          return "CARDINAL";
        case Predefined::kLongCardinal:
          return "LONG CARDINAL";
        case Predefined::kInteger:
          return "INTEGER";
        case Predefined::kLongInteger:
          return "LONG INTEGER";
        case Predefined::kString:
          return "STRING";
        case Predefined::kUnspecified:
          return "UNSPECIFIED";
      }
      return "?";
    }
    std::string operator()(const NamedType& n) const { return n.name; }
    std::string operator()(const SequenceType& s) const {
      return "SEQUENCE OF " + PrintType(s.element);
    }
    std::string operator()(const ArrayType& a) const {
      return "ARRAY " + std::to_string(a.size) + " OF " +
             PrintType(a.element);
    }
    std::string operator()(const RecordType& r) const {
      return "RECORD " + PrintFields(r.fields);
    }
    std::string operator()(const EnumerationType& e) const {
      std::string out = "ENUMERATION {";
      for (size_t i = 0; i < e.values.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += e.values[i].first + "(" +
               std::to_string(e.values[i].second) + ")";
      }
      out += "}";
      return out;
    }
    std::string operator()(const ChoiceType& c) const {
      std::string out = "CHOICE OF {";
      for (size_t i = 0; i < c.arms.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += c.arms[i].name + "(" + std::to_string(c.arms[i].tag) +
               ") => " + PrintType(c.arms[i].type);
      }
      out += "}";
      return out;
    }
  };
  return std::visit(Visitor{}, type->node);
}

std::string PrintProgram(const Program& program) {
  std::ostringstream out;
  out << program.name << ": PROGRAM " << program.number << " VERSION "
      << program.version << " =\nBEGIN\n";
  for (const TypeDecl& t : program.types) {
    out << "  " << t.name << ": TYPE = " << PrintType(t.type) << ";\n";
  }
  for (const ErrorDecl& e : program.errors) {
    out << "  " << e.name << ": ERROR = " << e.code << ";\n";
  }
  for (const ProcedureDecl& p : program.procedures) {
    out << "  " << p.name << ": PROCEDURE";
    if (!p.arguments.empty()) {
      out << " " << PrintFields(p.arguments);
    }
    if (!p.results.empty()) {
      out << "\n    RETURNS " << PrintFields(p.results);
    }
    if (!p.reports.empty()) {
      out << "\n    REPORTS [";
      for (size_t i = 0; i < p.reports.size(); ++i) {
        if (i > 0) {
          out << ", ";
        }
        out << p.reports[i];
      }
      out << "]";
    }
    out << " = " << p.number << ";\n";
  }
  out << "END.\n";
  return out.str();
}

bool ProgramsEqual(const Program& a, const Program& b) {
  if (a.name != b.name || a.number != b.number || a.version != b.version ||
      a.types.size() != b.types.size() ||
      a.errors.size() != b.errors.size() ||
      a.procedures.size() != b.procedures.size()) {
    return false;
  }
  for (size_t i = 0; i < a.types.size(); ++i) {
    if (a.types[i].name != b.types[i].name ||
        !TypesEqual(a.types[i].type, b.types[i].type)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.errors.size(); ++i) {
    if (a.errors[i].name != b.errors[i].name ||
        a.errors[i].code != b.errors[i].code) {
      return false;
    }
  }
  for (size_t i = 0; i < a.procedures.size(); ++i) {
    const ProcedureDecl& pa = a.procedures[i];
    const ProcedureDecl& pb = b.procedures[i];
    if (pa.name != pb.name || pa.number != pb.number ||
        pa.reports != pb.reports ||
        PrintFields(pa.arguments) != PrintFields(pb.arguments) ||
        PrintFields(pa.results) != PrintFields(pb.results)) {
      return false;
    }
  }
  return true;
}

}  // namespace circus::stubgen
