// Pretty-printer for the IDL: renders a parsed Program back to canonical
// source text. Used as a formatter and, with the parser, as a round-trip
// property check (parse ∘ print ∘ parse preserves the AST).
#ifndef SRC_STUBGEN_PRINTER_H_
#define SRC_STUBGEN_PRINTER_H_

#include <string>

#include "src/stubgen/idl_ast.h"

namespace circus::stubgen {

// Canonical source text of a type expression.
std::string PrintType(const TypePtr& type);

// Canonical source text of a whole PROGRAM.
std::string PrintProgram(const Program& program);

// Structural equality of two programs (declaration-by-declaration).
bool ProgramsEqual(const Program& a, const Program& b);

}  // namespace circus::stubgen

#endif  // SRC_STUBGEN_PRINTER_H_
