#include "src/stubgen/idl_parser.h"

#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

namespace circus::stubgen {

namespace {

struct Token {
  enum Kind {
    kIdent,
    kNumber,
    kColon,
    kSemicolon,
    kComma,
    kEquals,
    kLBracket,
    kRBracket,
    kLBrace,
    kRBrace,
    kLParen,
    kRParen,
    kArrow,  // => (choice arms)
    kDot,
    kEnd,
  } kind;
  std::string text;
  long number = 0;
  int line = 1;
  int column = 1;

  SourcePos pos() const { return SourcePos{line, column}; }
  // How the token reads in a diagnostic: the offending text, quoted.
  std::string Describe() const {
    return kind == kEnd ? "end of input" : "'" + text + "'";
  }
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  circus::StatusOr<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      const int col = Column();
      if (pos_ >= src_.size()) {
        out.push_back({Token::kEnd, "", 0, line_, col});
        return out;
      }
      const char c = src_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c))) {
        const size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
          ++pos_;
        }
        out.push_back({Token::kIdent,
                       std::string(src_.substr(start, pos_ - start)), 0,
                       line_, col});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        const size_t start = pos_;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
        Token t{Token::kNumber,
                std::string(src_.substr(start, pos_ - start)), 0, line_, col};
        t.number = std::stol(t.text);
        out.push_back(t);
        continue;
      }
      switch (c) {
        case ':':
          out.push_back({Token::kColon, ":", 0, line_, col});
          ++pos_;
          continue;
        case ';':
          out.push_back({Token::kSemicolon, ";", 0, line_, col});
          ++pos_;
          continue;
        case ',':
          out.push_back({Token::kComma, ",", 0, line_, col});
          ++pos_;
          continue;
        case '=':
          if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '>') {
            out.push_back({Token::kArrow, "=>", 0, line_, col});
            pos_ += 2;
          } else {
            out.push_back({Token::kEquals, "=", 0, line_, col});
            ++pos_;
          }
          continue;
        case '[':
          out.push_back({Token::kLBracket, "[", 0, line_, col});
          ++pos_;
          continue;
        case ']':
          out.push_back({Token::kRBracket, "]", 0, line_, col});
          ++pos_;
          continue;
        case '{':
          out.push_back({Token::kLBrace, "{", 0, line_, col});
          ++pos_;
          continue;
        case '}':
          out.push_back({Token::kRBrace, "}", 0, line_, col});
          ++pos_;
          continue;
        case '(':
          out.push_back({Token::kLParen, "(", 0, line_, col});
          ++pos_;
          continue;
        case ')':
          out.push_back({Token::kRParen, ")", 0, line_, col});
          ++pos_;
          continue;
        case '.':
          out.push_back({Token::kDot, ".", 0, line_, col});
          ++pos_;
          continue;
        default:
          return circus::Status(
              ErrorCode::kInvalidArgument,
              std::string("unexpected character '") + c + "' at " +
                  SourcePos{line_, col}.ToString());
      }
    }
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '-') {
        while (pos_ < src_.size() && src_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  int Column() const { return static_cast<int>(pos_ - line_start_) + 1; }

  std::string_view src_;
  size_t pos_ = 0;
  size_t line_start_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  circus::StatusOr<Program> Run() {
    Program program;
    // Name: PROGRAM n VERSION v =
    if (Peek().kind != Token::kIdent) {
      return Error("expected program name");
    }
    program.name = Next().text;
    if (!Consume(Token::kColon) || !ConsumeKeyword("PROGRAM")) {
      return Error("expected ': PROGRAM'");
    }
    if (Peek().kind != Token::kNumber) {
      return Error("expected program number");
    }
    program.number = static_cast<int>(Next().number);
    if (!ConsumeKeyword("VERSION") || Peek().kind != Token::kNumber) {
      return Error("expected 'VERSION n'");
    }
    program.version = static_cast<int>(Next().number);
    if (!Consume(Token::kEquals) || !ConsumeKeyword("BEGIN")) {
      return Error("expected '= BEGIN'");
    }
    // Declarations until END.
    while (!PeekKeyword("END")) {
      circus::Status s = ParseDeclaration(program);
      if (!s.ok()) {
        return s;
      }
    }
    ConsumeKeyword("END");
    Consume(Token::kDot);
    if (Peek().kind != Token::kEnd) {
      return Error("trailing input after END.");
    }
    circus::Status semantic = Check(program);
    if (!semantic.ok()) {
      return semantic;
    }
    return program;
  }

 private:
  circus::Status ParseDeclaration(Program& program) {
    if (Peek().kind != Token::kIdent) {
      return Error("expected declaration name");
    }
    const SourcePos decl_pos = Peek().pos();
    const std::string name = Next().text;
    if (!Consume(Token::kColon)) {
      return Error("expected ':' after '" + name + "'");
    }
    if (ConsumeKeyword("TYPE")) {
      if (!Consume(Token::kEquals)) {
        return Error("expected '=' in TYPE declaration");
      }
      circus::StatusOr<TypePtr> type = ParseType();
      if (!type.ok()) {
        return type.status();
      }
      if (!Consume(Token::kSemicolon)) {
        return Error("expected ';' after TYPE declaration");
      }
      program.types.push_back(TypeDecl{name, std::move(*type), decl_pos});
      return circus::Status::Ok();
    }
    if (ConsumeKeyword("ERROR")) {
      if (!Consume(Token::kEquals) || Peek().kind != Token::kNumber) {
        return Error("expected '= n' in ERROR declaration");
      }
      const int code = static_cast<int>(Next().number);
      if (!Consume(Token::kSemicolon)) {
        return Error("expected ';' after ERROR declaration");
      }
      program.errors.push_back(ErrorDecl{name, code, decl_pos});
      return circus::Status::Ok();
    }
    if (ConsumeKeyword("PROCEDURE")) {
      ProcedureDecl proc;
      proc.name = name;
      proc.pos = decl_pos;
      if (Peek().kind == Token::kLBracket) {
        circus::StatusOr<std::vector<Field>> args = ParseFieldList();
        if (!args.ok()) {
          return args.status();
        }
        proc.arguments = std::move(*args);
      }
      if (ConsumeKeyword("RETURNS")) {
        circus::StatusOr<std::vector<Field>> results = ParseFieldList();
        if (!results.ok()) {
          return results.status();
        }
        proc.results = std::move(*results);
      }
      if (ConsumeKeyword("REPORTS")) {
        if (!Consume(Token::kLBracket)) {
          return Error("expected '[' after REPORTS");
        }
        while (Peek().kind == Token::kIdent) {
          proc.reports.push_back(Next().text);
          if (!Consume(Token::kComma)) {
            break;
          }
        }
        if (!Consume(Token::kRBracket)) {
          return Error("expected ']' after REPORTS list");
        }
      }
      if (!Consume(Token::kEquals) || Peek().kind != Token::kNumber) {
        return Error("expected '= n' in PROCEDURE declaration");
      }
      proc.number = static_cast<int>(Next().number);
      if (!Consume(Token::kSemicolon)) {
        return Error("expected ';' after PROCEDURE declaration");
      }
      program.procedures.push_back(std::move(proc));
      return circus::Status::Ok();
    }
    return Error("expected TYPE, ERROR, or PROCEDURE after '" + name +
                 ":'");
  }

  circus::StatusOr<std::vector<Field>> ParseFieldList() {
    std::vector<Field> fields;
    if (!Consume(Token::kLBracket)) {
      return Error("expected '['");
    }
    while (Peek().kind == Token::kIdent) {
      Field f;
      f.name = Next().text;
      if (!Consume(Token::kColon)) {
        return Error("expected ':' after field name");
      }
      circus::StatusOr<TypePtr> t = ParseType();
      if (!t.ok()) {
        return t.status();
      }
      f.type = std::move(*t);
      fields.push_back(std::move(f));
      if (!Consume(Token::kComma)) {
        break;
      }
    }
    if (!Consume(Token::kRBracket)) {
      return Error("expected ']' after field list");
    }
    return fields;
  }

  circus::StatusOr<TypePtr> ParseType() {
    auto make = [](auto node) {
      auto t = std::make_shared<Type>();
      t->node = std::move(node);
      return t;
    };
    if (ConsumeKeyword("BOOLEAN")) {
      return make(Predefined::kBoolean);
    }
    if (ConsumeKeyword("LONG")) {
      if (ConsumeKeyword("CARDINAL")) {
        return make(Predefined::kLongCardinal);
      }
      if (ConsumeKeyword("INTEGER")) {
        return make(Predefined::kLongInteger);
      }
      return Error("expected CARDINAL or INTEGER after LONG");
    }
    if (ConsumeKeyword("CARDINAL")) {
      return make(Predefined::kCardinal);
    }
    if (ConsumeKeyword("INTEGER")) {
      return make(Predefined::kInteger);
    }
    if (ConsumeKeyword("STRING")) {
      return make(Predefined::kString);
    }
    if (ConsumeKeyword("UNSPECIFIED")) {
      return make(Predefined::kUnspecified);
    }
    if (ConsumeKeyword("SEQUENCE")) {
      if (!ConsumeKeyword("OF")) {
        return Error("expected OF after SEQUENCE");
      }
      circus::StatusOr<TypePtr> element = ParseType();
      if (!element.ok()) {
        return element;
      }
      return make(SequenceType{std::move(*element)});
    }
    if (ConsumeKeyword("ARRAY")) {
      if (Peek().kind != Token::kNumber) {
        return Error("expected array size");
      }
      const size_t size = static_cast<size_t>(Next().number);
      if (!ConsumeKeyword("OF")) {
        return Error("expected OF after ARRAY size");
      }
      circus::StatusOr<TypePtr> element = ParseType();
      if (!element.ok()) {
        return element;
      }
      return make(ArrayType{size, std::move(*element)});
    }
    if (ConsumeKeyword("RECORD")) {
      circus::StatusOr<std::vector<Field>> fields = ParseFieldList();
      if (!fields.ok()) {
        return fields.status();
      }
      return make(RecordType{std::move(*fields)});
    }
    if (ConsumeKeyword("ENUMERATION")) {
      if (!Consume(Token::kLBrace)) {
        return Error("expected '{' after ENUMERATION");
      }
      EnumerationType e;
      while (Peek().kind == Token::kIdent) {
        const std::string value_name = Next().text;
        if (!Consume(Token::kLParen) || Peek().kind != Token::kNumber) {
          return Error("expected '(n)' after enumeration value");
        }
        const int value = static_cast<int>(Next().number);
        if (!Consume(Token::kRParen)) {
          return Error("expected ')' after enumeration number");
        }
        e.values.emplace_back(value_name, value);
        if (!Consume(Token::kComma)) {
          break;
        }
      }
      if (!Consume(Token::kRBrace)) {
        return Error("expected '}' after enumeration values");
      }
      return make(std::move(e));
    }
    if (ConsumeKeyword("CHOICE")) {
      if (!ConsumeKeyword("OF") || !Consume(Token::kLBrace)) {
        return Error("expected 'OF {' after CHOICE");
      }
      ChoiceType c;
      while (Peek().kind == Token::kIdent) {
        ChoiceArm arm;
        arm.name = Next().text;
        if (!Consume(Token::kLParen) || Peek().kind != Token::kNumber) {
          return Error("expected '(n)' after choice arm name");
        }
        arm.tag = static_cast<int>(Next().number);
        if (!Consume(Token::kRParen) || !Consume(Token::kArrow)) {
          return Error("expected '(n) =>' in choice arm");
        }
        circus::StatusOr<TypePtr> t = ParseType();
        if (!t.ok()) {
          return t.status();
        }
        arm.type = std::move(*t);
        c.arms.push_back(std::move(arm));
        if (!Consume(Token::kComma)) {
          break;
        }
      }
      if (!Consume(Token::kRBrace)) {
        return Error("expected '}' after choice arms");
      }
      return make(std::move(c));
    }
    if (Peek().kind == Token::kIdent) {
      const SourcePos pos = Peek().pos();
      return make(NamedType{Next().text, pos});
    }
    return Error("expected a type");
  }

  // Semantic checks: unique names/numbers, resolvable references.
  circus::Status Check(const Program& program) {
    std::set<std::string> names;
    for (const TypeDecl& t : program.types) {
      if (!names.insert(t.name).second) {
        return SemanticError("duplicate declaration '" + t.name + "'",
                             t.pos);
      }
    }
    std::set<int> error_codes;
    for (const ErrorDecl& e : program.errors) {
      if (!names.insert(e.name).second) {
        return SemanticError("duplicate declaration '" + e.name + "'",
                             e.pos);
      }
      if (!error_codes.insert(e.code).second) {
        return SemanticError("duplicate error code " +
                                 std::to_string(e.code) + " ('" + e.name +
                                 "')",
                             e.pos);
      }
    }
    std::set<int> proc_numbers;
    for (const ProcedureDecl& p : program.procedures) {
      if (!names.insert(p.name).second) {
        return SemanticError("duplicate declaration '" + p.name + "'",
                             p.pos);
      }
      if (!proc_numbers.insert(p.number).second) {
        return SemanticError("duplicate procedure number " +
                                 std::to_string(p.number) + " ('" + p.name +
                                 "')",
                             p.pos);
      }
      for (const std::string& r : p.reports) {
        if (program.FindError(r) == nullptr) {
          return SemanticError(
              "'" + p.name + "' REPORTS undeclared error '" + r + "'",
              p.pos);
        }
      }
      for (const Field& f : p.arguments) {
        circus::Status s = CheckType(program, f.type);
        if (!s.ok()) {
          return s;
        }
      }
      for (const Field& f : p.results) {
        circus::Status s = CheckType(program, f.type);
        if (!s.ok()) {
          return s;
        }
      }
    }
    for (const TypeDecl& t : program.types) {
      circus::Status s = CheckType(program, t.type);
      if (!s.ok()) {
        return s;
      }
    }
    return circus::Status::Ok();
  }

  circus::Status CheckType(const Program& program, const TypePtr& type) {
    if (const NamedType* n = std::get_if<NamedType>(&type->node)) {
      if (program.FindType(n->name) == nullptr) {
        return SemanticError(
            "reference to undeclared type '" + n->name + "'", n->pos);
      }
      return circus::Status::Ok();
    }
    if (const SequenceType* s = std::get_if<SequenceType>(&type->node)) {
      return CheckType(program, s->element);
    }
    if (const ArrayType* a = std::get_if<ArrayType>(&type->node)) {
      return CheckType(program, a->element);
    }
    if (const RecordType* r = std::get_if<RecordType>(&type->node)) {
      for (const Field& f : r->fields) {
        circus::Status s = CheckType(program, f.type);
        if (!s.ok()) {
          return s;
        }
      }
      return circus::Status::Ok();
    }
    if (const ChoiceType* c = std::get_if<ChoiceType>(&type->node)) {
      for (const ChoiceArm& arm : c->arms) {
        circus::Status s = CheckType(program, arm.type);
        if (!s.ok()) {
          return s;
        }
      }
      return circus::Status::Ok();
    }
    return circus::Status::Ok();
  }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool Consume(Token::Kind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == Token::kIdent && Peek().text == kw;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  circus::Status Error(const std::string& message) const {
    const Token& t = Peek();
    return circus::Status(ErrorCode::kInvalidArgument,
                          message + " at " + t.pos().ToString() + ", found " +
                              t.Describe());
  }
  static circus::Status SemanticError(const std::string& message,
                                      const SourcePos& pos) {
    return circus::Status(ErrorCode::kInvalidArgument,
                          message + " at " + pos.ToString());
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

circus::StatusOr<Program> ParseProgram(std::string_view source) {
  circus::StatusOr<std::vector<Token>> tokens = Lexer(source).Run();
  if (!tokens.ok()) {
    return tokens.status();
  }
  return Parser(std::move(*tokens)).Run();
}

}  // namespace circus::stubgen
