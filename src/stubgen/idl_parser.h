// Parser for the Courier-flavoured IDL. Comments are "-- to end of line"
// as in Courier/Mesa. Keywords are case-sensitive upper case, matching
// the dissertation's Figure 7.2.
#ifndef SRC_STUBGEN_IDL_PARSER_H_
#define SRC_STUBGEN_IDL_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/stubgen/idl_ast.h"

namespace circus::stubgen {

// Parses one PROGRAM. Performs semantic checks: duplicate names,
// duplicate procedure/error numbers, references to undeclared types and
// errors.
circus::StatusOr<Program> ParseProgram(std::string_view source);

}  // namespace circus::stubgen

#endif  // SRC_STUBGEN_IDL_PARSER_H_
