// C++ stub generator (Sections 7.1, 7.3, 7.4). From one parsed PROGRAM it
// emits a single self-contained header with:
//
//  * C++ types for every IDL type declaration (the natural correspondence
//    of Section 7.2: records -> structs, sequences -> std::vector,
//    enumerations -> enum class, choices -> std::variant);
//  * externalize/internalize functions per declared type (Figure 7.1);
//  * a client stub class with three stub flavours per procedure:
//      - implicit binding (uses the troupe bound with Bind()),
//      - explicit binding (binding-handle parameter, Section 7.3),
//      - explicit replication (caller-supplied CallOptions with a custom
//        collator plus a typed per-reply decoder, Section 7.4);
//  * an abstract handler class plus an Export... function producing the
//    server dispatch stubs;
//  * typed error reporting for REPORTS clauses.
#ifndef SRC_STUBGEN_CODEGEN_H_
#define SRC_STUBGEN_CODEGEN_H_

#include <string>

#include "src/stubgen/idl_ast.h"

namespace circus::stubgen {

struct CodegenOptions {
  // Include guard prefix and a comment naming the source file.
  std::string source_name = "<idl>";
};

// Generates the complete header text.
std::string GenerateHeader(const Program& program,
                           const CodegenOptions& options = {});

}  // namespace circus::stubgen

#endif  // SRC_STUBGEN_CODEGEN_H_
