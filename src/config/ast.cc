#include "src/config/ast.h"

#include <cstdio>

namespace circus::config {

std::string ValueToString(const Value& v) {
  if (const std::string* s = std::get_if<std::string>(&v)) {
    return "\"" + *s + "\"";
  }
  if (const double* d = std::get_if<double>(&v)) {
    char buf[32];
    if (*d == static_cast<long long>(*d)) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(*d));
    } else {
      std::snprintf(buf, sizeof(buf), "%g", *d);
    }
    return buf;
  }
  return std::get<bool>(v) ? "true" : "false";
}

std::string CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ExprToString(const Expr& e) {
  struct Visitor {
    std::string operator()(const AndExpr& x) const {
      return "(" + ExprToString(*x.left) + " and " +
             ExprToString(*x.right) + ")";
    }
    std::string operator()(const OrExpr& x) const {
      return "(" + ExprToString(*x.left) + " or " +
             ExprToString(*x.right) + ")";
    }
    std::string operator()(const NotExpr& x) const {
      return "not " + ExprToString(*x.operand);
    }
    std::string operator()(const CompareExpr& x) const {
      return x.variable + "." + x.attribute + " " +
             CompareOpToString(x.op) + " " + ValueToString(x.value);
    }
    std::string operator()(const PropertyExpr& x) const {
      return x.variable + "." + x.attribute;
    }
  };
  return std::visit(Visitor{}, e.node);
}

std::string TroupeSpec::ToString() const {
  std::string out = "troupe (";
  for (size_t i = 0; i < variables.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += variables[i];
  }
  out += ") where ";
  out += formula ? ExprToString(*formula) : "true";
  return out;
}

}  // namespace circus::config
