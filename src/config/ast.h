// AST for the troupe configuration language (Section 7.5.2): an extension
// of propositional logic with variables ranging over the machines of the
// distributed system. Each machine possesses an extensible list of
// attributes (name/value pairs; values are strings, numbers, or truth
// values). Example formula:
//
//   x.name = "UCB-Monet" and x.memory = 10 and x.has-floating-point
//
// A troupe specification binds n distinct machine variables:
//
//   troupe (x, y, z) where x.memory >= 4 and not y.diskless and ...
#ifndef SRC_CONFIG_AST_H_
#define SRC_CONFIG_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace circus::config {

// An attribute value: string, number, or truth value. A Boolean-valued
// attribute is called a property; properties make the Boolean constants
// unnecessary in the language.
using Value = std::variant<std::string, double, bool>;

std::string ValueToString(const Value& v);

enum class CompareOp {
  kEq,   // =
  kNe,   // != (also <>)
  kLt,   // <
  kLe,   // <=
  kGt,   // >
  kGe,   // >=
};

std::string CompareOpToString(CompareOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct AndExpr {
  ExprPtr left, right;
};
struct OrExpr {
  ExprPtr left, right;
};
struct NotExpr {
  ExprPtr operand;
};
// var.attribute <op> value
struct CompareExpr {
  std::string variable;
  std::string attribute;
  CompareOp op;
  Value value;
};
// var.property (true iff the machine has the property with value true)
struct PropertyExpr {
  std::string variable;
  std::string attribute;
};

struct Expr {
  std::variant<AndExpr, OrExpr, NotExpr, CompareExpr, PropertyExpr> node;
};

std::string ExprToString(const Expr& e);

// troupe (x1, ..., xn) where formula. Any troupe satisfying the
// specification has exactly n members; the language deliberately cannot
// specify a troupe of variable size (Section 7.5.2).
struct TroupeSpec {
  std::vector<std::string> variables;
  ExprPtr formula;

  std::string ToString() const;
};

}  // namespace circus::config

#endif  // SRC_CONFIG_AST_H_
