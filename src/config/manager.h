// The machine attribute database and the troupe configuration manager
// (Section 7.5.3). The manager solves the troupe extension problem: given
// a specification phi(x1..xn), a universe U of machines, and a current
// member set M, find M' ⊆ U satisfying phi with |M' ⊕ M| minimal (⊕ is
// symmetric difference). Instantiation is the M = ∅ case. The search is
// exhaustive with backtracking; the exponential worst case is acceptable
// for the small variable counts of real troupe specifications, exactly as
// the dissertation argues.
#ifndef SRC_CONFIG_MANAGER_H_
#define SRC_CONFIG_MANAGER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/config/ast.h"

namespace circus::config {

using MachineId = uint32_t;

class MachineDatabase {
 public:
  // Adds a machine with its attribute list; returns its id. The
  // machine's name, if any, is just another attribute ("name").
  MachineId AddMachine(std::map<std::string, Value> attributes);

  void SetAttribute(MachineId id, const std::string& attribute, Value v);
  void RemoveMachine(MachineId id);

  size_t size() const { return machines_.size(); }
  std::vector<MachineId> AllMachines() const;
  const std::map<std::string, Value>* Attributes(MachineId id) const;
  std::optional<Value> Attribute(MachineId id,
                                 const std::string& attribute) const;
  // Finds the machine whose "name" attribute equals `name`.
  std::optional<MachineId> FindByName(const std::string& name) const;

 private:
  std::map<MachineId, std::map<std::string, Value>> machines_;
  MachineId next_id_ = 1;
};

// Evaluates `formula` under the assignment variable -> machine.
// Comparisons against a missing attribute are false (and so is the
// property test), so partially described machines simply fail to match.
bool EvalFormula(const Expr& formula,
                 const std::map<std::string, MachineId>& assignment,
                 const MachineDatabase& db);

struct SolveResult {
  // variable -> machine, in spec order.
  std::map<std::string, MachineId> assignment;
  std::vector<MachineId> machines;  // in variable order
  size_t symmetric_difference = 0;  // |M' ⊕ M|
};

class ConfigurationManager {
 public:
  explicit ConfigurationManager(const MachineDatabase* db) : db_(db) {}

  // Solves the troupe extension problem. `current` is the existing
  // member set M (empty for initial instantiation). Returns kNotFound if
  // no assignment of distinct machines satisfies the formula.
  circus::StatusOr<SolveResult> ExtendTroupe(
      const TroupeSpec& spec, const std::vector<MachineId>& current) const;

  circus::StatusOr<SolveResult> Instantiate(const TroupeSpec& spec) const {
    return ExtendTroupe(spec, {});
  }

 private:
  const MachineDatabase* db_;
};

}  // namespace circus::config

#endif  // SRC_CONFIG_MANAGER_H_
