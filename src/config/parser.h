// Lexer and recursive-descent parser for the troupe configuration
// language (Figure 7.12). Grammar (precedence: not > and > or):
//
//   spec     ::= "troupe" "(" ident { "," ident } ")" "where" formula
//   formula  ::= conjunct { "or" conjunct }
//   conjunct ::= unary { "and" unary }
//   unary    ::= "not" unary | "(" formula ")" | atom
//   atom     ::= ident "." ident [ cmp value ]        (bare = property)
//   cmp      ::= "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//   value    ::= string-literal | number | "true" | "false"
//
// Identifiers may contain hyphens (e.g. has-floating-point), matching the
// dissertation's examples.
#ifndef SRC_CONFIG_PARSER_H_
#define SRC_CONFIG_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/config/ast.h"

namespace circus::config {

// Parses a full "troupe (...) where ..." specification.
circus::StatusOr<TroupeSpec> ParseTroupeSpec(std::string_view text);

// Parses a bare formula (used by tests and by specs stored without the
// troupe header).
circus::StatusOr<ExprPtr> ParseFormula(std::string_view text);

}  // namespace circus::config

#endif  // SRC_CONFIG_PARSER_H_
