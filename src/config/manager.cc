#include "src/config/manager.h"

#include <algorithm>
#include <set>

namespace circus::config {

MachineId MachineDatabase::AddMachine(
    std::map<std::string, Value> attributes) {
  const MachineId id = next_id_++;
  machines_[id] = std::move(attributes);
  return id;
}

void MachineDatabase::SetAttribute(MachineId id,
                                   const std::string& attribute, Value v) {
  auto it = machines_.find(id);
  if (it != machines_.end()) {
    it->second[attribute] = std::move(v);
  }
}

void MachineDatabase::RemoveMachine(MachineId id) { machines_.erase(id); }

std::vector<MachineId> MachineDatabase::AllMachines() const {
  std::vector<MachineId> out;
  out.reserve(machines_.size());
  for (const auto& [id, attrs] : machines_) {
    out.push_back(id);
  }
  return out;
}

const std::map<std::string, Value>* MachineDatabase::Attributes(
    MachineId id) const {
  auto it = machines_.find(id);
  return it == machines_.end() ? nullptr : &it->second;
}

std::optional<Value> MachineDatabase::Attribute(
    MachineId id, const std::string& attribute) const {
  const std::map<std::string, Value>* attrs = Attributes(id);
  if (attrs == nullptr) {
    return std::nullopt;
  }
  auto it = attrs->find(attribute);
  if (it == attrs->end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<MachineId> MachineDatabase::FindByName(
    const std::string& name) const {
  for (const auto& [id, attrs] : machines_) {
    auto it = attrs.find("name");
    if (it != attrs.end()) {
      const std::string* s = std::get_if<std::string>(&it->second);
      if (s != nullptr && *s == name) {
        return id;
      }
    }
  }
  return std::nullopt;
}

namespace {

bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  // Comparable only within a kind; strings support all orderings
  // (lexicographic), numbers numerically, booleans only (in)equality.
  auto apply = [op](auto cmp) {
    switch (op) {
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
    }
    return false;
  };
  if (const std::string* a = std::get_if<std::string>(&lhs)) {
    const std::string* b = std::get_if<std::string>(&rhs);
    if (b == nullptr) {
      return false;
    }
    return apply(a->compare(*b));
  }
  if (const double* a = std::get_if<double>(&lhs)) {
    const double* b = std::get_if<double>(&rhs);
    if (b == nullptr) {
      return false;
    }
    return apply(*a < *b ? -1 : (*a > *b ? 1 : 0));
  }
  const bool a = std::get<bool>(lhs);
  const bool* b = std::get_if<bool>(&rhs);
  if (b == nullptr || (op != CompareOp::kEq && op != CompareOp::kNe)) {
    return false;
  }
  return apply(a == *b ? 0 : 1);
}

}  // namespace

bool EvalFormula(const Expr& formula,
                 const std::map<std::string, MachineId>& assignment,
                 const MachineDatabase& db) {
  struct Visitor {
    const std::map<std::string, MachineId>& assignment;
    const MachineDatabase& db;
    bool operator()(const AndExpr& e) const {
      return EvalFormula(*e.left, assignment, db) &&
             EvalFormula(*e.right, assignment, db);
    }
    bool operator()(const OrExpr& e) const {
      return EvalFormula(*e.left, assignment, db) ||
             EvalFormula(*e.right, assignment, db);
    }
    bool operator()(const NotExpr& e) const {
      return !EvalFormula(*e.operand, assignment, db);
    }
    bool operator()(const CompareExpr& e) const {
      auto var = assignment.find(e.variable);
      if (var == assignment.end()) {
        return false;
      }
      std::optional<Value> v = db.Attribute(var->second, e.attribute);
      if (!v.has_value()) {
        return false;
      }
      return CompareValues(*v, e.op, e.value);
    }
    bool operator()(const PropertyExpr& e) const {
      auto var = assignment.find(e.variable);
      if (var == assignment.end()) {
        return false;
      }
      std::optional<Value> v = db.Attribute(var->second, e.attribute);
      if (!v.has_value()) {
        return false;
      }
      const bool* b = std::get_if<bool>(&*v);
      return b != nullptr && *b;
    }
  };
  return std::visit(Visitor{assignment, db}, formula.node);
}

circus::StatusOr<SolveResult> ConfigurationManager::ExtendTroupe(
    const TroupeSpec& spec, const std::vector<MachineId>& current) const {
  if (spec.variables.empty()) {
    return circus::Status(ErrorCode::kInvalidArgument,
                          "specification has no machine variables");
  }
  const std::vector<MachineId> universe = db_->AllMachines();
  const std::set<MachineId> current_set(current.begin(), current.end());

  std::optional<SolveResult> best;
  std::map<std::string, MachineId> assignment;
  std::set<MachineId> used;

  // Backtracking over assignments of distinct machines to variables,
  // minimizing the symmetric difference with the current member set.
  // (The formula is evaluated only on full assignments: atoms mentioning
  // unassigned variables cannot be decided earlier in general because of
  // disjunction and negation. Specifications are small, per the paper.)
  auto evaluate_complete = [&]() {
    if (spec.formula != nullptr &&
        !EvalFormula(*spec.formula, assignment, *db_)) {
      return;
    }
    SolveResult candidate;
    candidate.assignment = assignment;
    std::set<MachineId> chosen;
    for (const std::string& v : spec.variables) {
      candidate.machines.push_back(assignment.at(v));
      chosen.insert(assignment.at(v));
    }
    size_t diff = 0;
    for (MachineId m : chosen) {
      if (!current_set.contains(m)) {
        ++diff;  // added
      }
    }
    for (MachineId m : current_set) {
      if (!chosen.contains(m)) {
        ++diff;  // dropped
      }
    }
    candidate.symmetric_difference = diff;
    if (!best.has_value() ||
        candidate.symmetric_difference < best->symmetric_difference ||
        (candidate.symmetric_difference == best->symmetric_difference &&
         candidate.machines < best->machines)) {
      best = std::move(candidate);
    }
  };

  auto search = [&](auto&& self, size_t index) -> void {
    if (index == spec.variables.size()) {
      evaluate_complete();
      return;
    }
    for (MachineId m : universe) {
      if (used.contains(m)) {
        continue;  // troupe members must be distinct machines
      }
      assignment[spec.variables[index]] = m;
      used.insert(m);
      self(self, index + 1);
      used.erase(m);
      assignment.erase(spec.variables[index]);
    }
  };
  search(search, 0);

  if (!best.has_value()) {
    return circus::Status(ErrorCode::kNotFound,
                          "no machine assignment satisfies: " +
                              spec.ToString());
  }
  return *best;
}

}  // namespace circus::config
