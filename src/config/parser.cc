#include "src/config/parser.h"

#include <cctype>
#include <optional>
#include <utility>
#include <vector>

namespace circus::config {

namespace {

enum class TokenKind {
  kIdent,
  kString,
  kNumber,
  kDot,
  kComma,
  kLParen,
  kRParen,
  kCompare,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // ident/string contents
  double number = 0;
  CompareOp op = CompareOp::kEq;
  size_t offset = 0;  // for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  circus::StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      const size_t at = pos_;
      if (pos_ >= text_.size()) {
        out.push_back({TokenKind::kEnd, "", 0, CompareOp::kEq, at});
        return out;
      }
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent(at));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        out.push_back(LexNumber(at));
        continue;
      }
      switch (c) {
        case '"': {
          circus::StatusOr<Token> t = LexString(at);
          if (!t.ok()) {
            return t.status();
          }
          out.push_back(*t);
          continue;
        }
        case '.':
          ++pos_;
          out.push_back({TokenKind::kDot, ".", 0, CompareOp::kEq, at});
          continue;
        case ',':
          ++pos_;
          out.push_back({TokenKind::kComma, ",", 0, CompareOp::kEq, at});
          continue;
        case '(':
          ++pos_;
          out.push_back({TokenKind::kLParen, "(", 0, CompareOp::kEq, at});
          continue;
        case ')':
          ++pos_;
          out.push_back({TokenKind::kRParen, ")", 0, CompareOp::kEq, at});
          continue;
        case '=':
          ++pos_;
          out.push_back(
              {TokenKind::kCompare, "=", 0, CompareOp::kEq, at});
          continue;
        case '!':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            pos_ += 2;
            out.push_back(
                {TokenKind::kCompare, "!=", 0, CompareOp::kNe, at});
            continue;
          }
          return Error(at, "unexpected '!'");
        case '<':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            pos_ += 2;
            out.push_back(
                {TokenKind::kCompare, "<=", 0, CompareOp::kLe, at});
          } else if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
            pos_ += 2;
            out.push_back(
                {TokenKind::kCompare, "<>", 0, CompareOp::kNe, at});
          } else {
            ++pos_;
            out.push_back(
                {TokenKind::kCompare, "<", 0, CompareOp::kLt, at});
          }
          continue;
        case '>':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            pos_ += 2;
            out.push_back(
                {TokenKind::kCompare, ">=", 0, CompareOp::kGe, at});
          } else {
            ++pos_;
            out.push_back(
                {TokenKind::kCompare, ">", 0, CompareOp::kGt, at});
          }
          continue;
        default:
          return Error(at, std::string("unexpected character '") + c +
                               "'");
      }
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Token LexIdent(size_t at) {
    const size_t start = pos_;
    // Hyphens are part of identifiers (has-floating-point), but a
    // trailing hyphen is not consumed.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    size_t end = pos_;
    while (end > start && text_[end - 1] == '-') {
      --end;
    }
    pos_ = end;
    return {TokenKind::kIdent, std::string(text_.substr(start, end - start)),
            0, CompareOp::kEq, at};
  }

  Token LexNumber(size_t at) {
    const size_t start = pos_;
    if (text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    const std::string s(text_.substr(start, pos_ - start));
    return {TokenKind::kNumber, s, std::stod(s), CompareOp::kEq, at};
  }

  circus::StatusOr<Token> LexString(size_t at) {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      value += text_[pos_++];
    }
    if (pos_ >= text_.size()) {
      return Error(at, "unterminated string literal");
    }
    ++pos_;  // closing quote
    return Token{TokenKind::kString, value, 0, CompareOp::kEq, at};
  }

  circus::Status Error(size_t at, const std::string& message) {
    return circus::Status(ErrorCode::kInvalidArgument,
                          message + " at offset " + std::to_string(at));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  circus::StatusOr<TroupeSpec> ParseSpec() {
    TroupeSpec spec;
    if (!ConsumeKeyword("troupe")) {
      return Error("expected 'troupe'");
    }
    if (!Consume(TokenKind::kLParen)) {
      return Error("expected '(' after 'troupe'");
    }
    while (true) {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected machine variable name");
      }
      spec.variables.push_back(Next().text);
      if (Consume(TokenKind::kComma)) {
        continue;
      }
      break;
    }
    if (!Consume(TokenKind::kRParen)) {
      return Error("expected ')' after variable list");
    }
    if (!ConsumeKeyword("where")) {
      return Error("expected 'where'");
    }
    circus::StatusOr<ExprPtr> formula = ParseOr();
    if (!formula.ok()) {
      return formula.status();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after formula");
    }
    spec.formula = std::move(*formula);
    return spec;
  }

  circus::StatusOr<ExprPtr> ParseBareFormula() {
    circus::StatusOr<ExprPtr> f = ParseOr();
    if (!f.ok()) {
      return f;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after formula");
    }
    return f;
  }

 private:
  circus::StatusOr<ExprPtr> ParseOr() {
    circus::StatusOr<ExprPtr> left = ParseAnd();
    if (!left.ok()) {
      return left;
    }
    ExprPtr node = std::move(*left);
    while (ConsumeKeyword("or")) {
      circus::StatusOr<ExprPtr> right = ParseAnd();
      if (!right.ok()) {
        return right;
      }
      auto e = std::make_unique<Expr>();
      e->node = OrExpr{std::move(node), std::move(*right)};
      node = std::move(e);
    }
    return node;
  }

  circus::StatusOr<ExprPtr> ParseAnd() {
    circus::StatusOr<ExprPtr> left = ParseUnary();
    if (!left.ok()) {
      return left;
    }
    ExprPtr node = std::move(*left);
    while (ConsumeKeyword("and")) {
      circus::StatusOr<ExprPtr> right = ParseUnary();
      if (!right.ok()) {
        return right;
      }
      auto e = std::make_unique<Expr>();
      e->node = AndExpr{std::move(node), std::move(*right)};
      node = std::move(e);
    }
    return node;
  }

  circus::StatusOr<ExprPtr> ParseUnary() {
    if (ConsumeKeyword("not")) {
      circus::StatusOr<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      auto e = std::make_unique<Expr>();
      e->node = NotExpr{std::move(*operand)};
      return ExprPtr(std::move(e));
    }
    if (Consume(TokenKind::kLParen)) {
      circus::StatusOr<ExprPtr> inner = ParseOr();
      if (!inner.ok()) {
        return inner;
      }
      if (!Consume(TokenKind::kRParen)) {
        return Error("expected ')'");
      }
      return inner;
    }
    return ParseAtom();
  }

  circus::StatusOr<ExprPtr> ParseAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected variable reference");
    }
    const std::string variable = Next().text;
    if (!Consume(TokenKind::kDot)) {
      return Error("expected '.' after variable '" + variable + "'");
    }
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected attribute name");
    }
    const std::string attribute = Next().text;
    if (Peek().kind != TokenKind::kCompare) {
      // Bare var.attribute is a property test.
      auto e = std::make_unique<Expr>();
      e->node = PropertyExpr{variable, attribute};
      return ExprPtr(std::move(e));
    }
    const CompareOp op = Next().op;
    Value value;
    const Token& v = Peek();
    if (v.kind == TokenKind::kString) {
      value = Next().text;
    } else if (v.kind == TokenKind::kNumber) {
      value = Next().number;
    } else if (v.kind == TokenKind::kIdent &&
               (v.text == "true" || v.text == "false")) {
      value = (Next().text == "true");
    } else {
      return Error("expected value after comparison operator");
    }
    auto e = std::make_unique<Expr>();
    e->node = CompareExpr{variable, attribute, op, std::move(value)};
    return ExprPtr(std::move(e));
  }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool Consume(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().kind == TokenKind::kIdent && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  circus::Status Error(const std::string& message) const {
    return circus::Status(
        ErrorCode::kInvalidArgument,
        message + " at offset " + std::to_string(Peek().offset));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

circus::StatusOr<TroupeSpec> ParseTroupeSpec(std::string_view text) {
  circus::StatusOr<std::vector<Token>> tokens = Lexer(text).Tokenize();
  if (!tokens.ok()) {
    return tokens.status();
  }
  return Parser(std::move(*tokens)).ParseSpec();
}

circus::StatusOr<ExprPtr> ParseFormula(std::string_view text) {
  circus::StatusOr<std::vector<Token>> tokens = Lexer(text).Tokenize();
  if (!tokens.ok()) {
    return tokens.status();
  }
  return Parser(std::move(*tokens)).ParseBareFormula();
}

}  // namespace circus::config
