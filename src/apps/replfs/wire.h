// Conversions between runtime identities (txn::TxnId, core::Troupe)
// and their stub-generated wire representations. All byte-level
// marshaling lives in the generated header ("gen/apps/replfs.h");
// these helpers only move fields between the two type families.
#ifndef SRC_APPS_REPLFS_WIRE_H_
#define SRC_APPS_REPLFS_WIRE_H_

#include "gen/apps/replfs.h"
#include "src/core/types.h"
#include "src/txn/types.h"

namespace circus::apps::replfs {

inline idl::ReplFs::Txn ToWire(const txn::TxnId& id) {
  return idl::ReplFs::Txn{id.thread.machine, id.thread.port,
                          id.thread.local, id.num};
}

inline txn::TxnId FromWire(const idl::ReplFs::Txn& t) {
  txn::TxnId id;
  id.thread.machine = t.machine;
  id.thread.port = t.port;
  id.thread.local = t.local;
  id.num = t.num;
  return id;
}

// The coordinator troupe travels as a plain member list; its troupe id
// is irrelevant for the direct ready_to_commit call-backs (the callee
// set is explicit), matching RunTransaction's default coordinator
// troupe.
inline idl::ReplFs::Coordinators ToWire(const core::Troupe& troupe) {
  idl::ReplFs::Coordinators out;
  out.reserve(troupe.members.size());
  for (const core::ModuleAddress& m : troupe.members) {
    out.push_back(
        idl::ReplFs::Coordinator{m.process.host, m.process.port, m.module});
  }
  return out;
}

inline core::Troupe CoordinatorTroupe(
    const idl::ReplFs::Coordinators& coordinators) {
  core::Troupe troupe;
  for (const idl::ReplFs::Coordinator& c : coordinators) {
    core::ModuleAddress m;
    m.process.host = c.host;
    m.process.port = c.port;
    m.module = c.module;
    troupe.members.push_back(m);
  }
  return troupe;
}

}  // namespace circus::apps::replfs

#endif  // SRC_APPS_REPLFS_WIRE_H_
