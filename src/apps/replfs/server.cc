#include "src/apps/replfs/server.h"

#include <algorithm>
#include <utility>

#include "src/apps/replfs/wire.h"
#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/txn/commit.h"

namespace circus::apps::replfs {

using circus::Status;
using circus::StatusOr;
using core::ServerCallContext;
using sim::Duration;
using sim::Task;

namespace fs = idl::ReplFs;

std::string BlockKey(const std::string& file, uint32_t block) {
  return "f:" + file + ":" + std::to_string(block);
}

Server::Server(core::RpcProcess* process)
    : process_(process), store_(process->host()) {
  module_ = fs::ExportReplFs(process_, this);
  writes_ = std::make_unique<txn::OrderedBroadcastServer>(
      process_, kWritesModuleName);
  CIRCUS_CHECK(writes_->module_number() ==
               static_cast<core::ModuleNumber>(module_ + kWritesModuleOffset));
  process_->SetStateProvider(module_,
                             [this] { return store_.ExternalizeState(); });
}

Task<void> Server::DeliverLoop() {
  while (true) {
    circus::Bytes payload = co_await writes_->NextDelivered();
    marshal::Reader r(payload);
    fs::WriteBlockArgs args = fs::Read_WriteBlockArgs(r);
    if (!r.AtEnd()) {
      continue;  // not a WriteBlock payload; foreign traffic is dropped
    }
    Stage(std::move(args));
  }
}

void Server::Stage(fs::WriteBlockArgs args) {
  const txn::TxnId txn = FromWire(args.txn);
  TxnState& st = staged_[txn];
  // Deliveries carry a dense per-transaction sequence. A gap means this
  // member missed earlier writes (it rejoined mid-transaction): it can
  // no longer apply the transaction faithfully and must vote abort.
  if (args.seq != st.writes.size() + 1) {
    st.damaged = true;
    return;
  }
  auto it = st.open.find(args.fd);
  if (it == st.open.end()) {
    st.damaged = true;
    return;
  }
  st.writes.push_back(
      StagedWrite{it->second, args.block, std::move(args.data)});
}

Task<StatusOr<fs::OpenFileResults>> Server::OpenFile(ServerCallContext&,
                                                     fs::OpenFileArgs args) {
  if (args.name.empty() || args.name.find(':') != std::string::npos) {
    co_return fs::Report(fs::Error::BadRequest);
  }
  TxnState& st = staged_[FromWire(args.txn)];
  const uint16_t fd = ++st.next_fd;
  st.open[fd] = args.name;
  co_return fs::OpenFileResults{fd};
}

Task<StatusOr<fs::WriteBlockResults>> Server::WriteBlock(
    ServerCallContext&, fs::WriteBlockArgs args) {
  // Clients normally propagate writes by ordered broadcast (the
  // DeliverLoop path); the direct procedure stages identically and
  // serves single-member troupes and tests.
  const txn::TxnId txn = FromWire(args.txn);
  const auto it = staged_.find(txn);
  if (it == staged_.end() || !it->second.open.contains(args.fd)) {
    co_return fs::Report(fs::Error::NotOpen);
  }
  Stage(std::move(args));
  co_return fs::WriteBlockResults{};
}

Task<StatusOr<fs::CommitResults>> Server::Commit(ServerCallContext&,
                                                 fs::CommitArgs args) {
  const txn::TxnId txn = FromWire(args.txn);
  const core::Troupe coordinator = CoordinatorTroupe(args.coordinators);
  if (coordinator.members.empty()) {
    co_return fs::Report(fs::Error::BadRequest);
  }
  // Wait (bounded) for the broadcast to deliver the transaction's
  // writes; commit order across members is enforced by the commit
  // protocol itself, not by this wait.
  const sim::TimePoint deadline =
      process_->host()->executor().now() + stage_wait_;
  while (staged_[txn].writes.size() < args.writes &&
         process_->host()->executor().now() < deadline) {
    co_await process_->host()->SleepFor(Duration::Millis(20));
  }
  bool vote = false;
  {
    const TxnState& st = staged_[txn];
    vote = !st.damaged && st.writes.size() >= args.writes;
  }
  if (vote) {
    std::vector<StagedWrite> writes(
        staged_[txn].writes.begin(),
        staged_[txn].writes.begin() + args.writes);
    Status applied = co_await ApplyStaged(txn, writes);
    if (!applied.ok() || store_.Poisoned(txn)) {
      vote = false;
    }
  }
  const bool decision = co_await txn::FinishTransaction(
      process_, &store_, txn, coordinator, vote);
  staged_.erase(txn);
  if (decision) {
    ++committed_;
  } else {
    ++aborted_;
  }
  if (obs::MetricsRegistry* metrics = process_->metrics();
      metrics != nullptr) {
    metrics->GetCounter(decision ? "replfs.commits" : "replfs.aborts")
        ->Increment();
  }
  co_return fs::CommitResults{decision};
}

Task<StatusOr<fs::AbortResults>> Server::Abort(ServerCallContext&,
                                               fs::AbortArgs args) {
  const txn::TxnId txn = FromWire(args.txn);
  store_.Abort(txn);
  staged_.erase(txn);
  co_return fs::AbortResults{};
}

Task<StatusOr<fs::CloseResults>> Server::Close(ServerCallContext&,
                                               fs::CloseArgs args) {
  const auto it = staged_.find(FromWire(args.txn));
  if (it == staged_.end() || it->second.open.erase(args.fd) == 0) {
    co_return fs::Report(fs::Error::NotOpen);
  }
  co_return fs::CloseResults{};
}

Task<StatusOr<fs::ReadBlockResults>> Server::ReadBlock(
    ServerCallContext&, fs::ReadBlockArgs args) {
  const std::optional<circus::Bytes> value =
      store_.Peek(BlockKey(args.name, args.block));
  if (!value.has_value()) {
    co_return fs::Report(fs::Error::NoSuchFile);
  }
  marshal::Reader r(*value);
  fs::BlockData data = fs::Read_BlockData(r);
  if (!r.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "corrupt block " +
                                               BlockKey(args.name, args.block));
  }
  co_return fs::ReadBlockResults{std::move(data)};
}

Task<StatusOr<fs::GetManifestResults>> Server::GetManifest(
    ServerCallContext&, fs::GetManifestArgs) {
  fs::Manifest manifest{std::in_place_index<0>, uint16_t{0}};
  const std::optional<circus::Bytes> raw = store_.Peek(kManifestKey);
  if (raw.has_value()) {
    marshal::Reader r(*raw);
    manifest = fs::Read_Manifest(r);
    if (!r.AtEnd()) {
      co_return Status(ErrorCode::kProtocolError, "corrupt manifest");
    }
  }
  co_return fs::GetManifestResults{std::move(manifest)};
}

Task<Status> Server::ApplyStaged(const txn::TxnId& txn,
                                 const std::vector<StagedWrite>& writes) {
  store_.Begin(txn);
  for (const StagedWrite& sw : writes) {
    marshal::Writer w;
    fs::Write_BlockData(w, sw.data);
    Status s =
        co_await store_.Put(txn, BlockKey(sw.file, sw.block), w.Take());
    if (!s.ok()) {
      co_return s;
    }
  }
  // Catalogue update: merge this transaction's writes into the
  // manifest. Write-locking the manifest serializes transactions that
  // would otherwise race the catalogue (2PL turns the race into a wait
  // or a deadlock-retry).
  fs::Manifest manifest{std::in_place_index<0>, uint16_t{0}};
  StatusOr<circus::Bytes> raw = co_await store_.Get(txn, kManifestKey);
  if (raw.ok()) {
    marshal::Reader r(*raw);
    manifest = fs::Read_Manifest(r);
    if (!r.AtEnd()) {
      co_return Status(ErrorCode::kProtocolError, "corrupt manifest");
    }
  } else if (raw.status().code() != ErrorCode::kNotFound) {
    co_return raw.status();
  }
  std::vector<fs::FileInfo> files;
  if (manifest.index() == 1) {
    files = std::move(std::get<1>(manifest));
  }
  for (const StagedWrite& sw : writes) {
    auto it = std::find_if(
        files.begin(), files.end(),
        [&sw](const fs::FileInfo& f) { return f.name == sw.file; });
    if (it == files.end()) {
      files.push_back(fs::FileInfo{sw.file, 0, {}});
      it = std::prev(files.end());
    }
    it->blocks = std::max(it->blocks, sw.block + 1);
    it->extents.push_back(
        fs::Extent{sw.block, static_cast<uint32_t>(sw.data.size())});
    if (it->extents.size() > kManifestExtentCap) {
      it->extents.erase(it->extents.begin(),
                        it->extents.end() - kManifestExtentCap);
    }
  }
  std::sort(files.begin(), files.end(),
            [](const fs::FileInfo& a, const fs::FileInfo& b) {
              return a.name < b.name;
            });
  marshal::Writer w;
  const fs::Manifest updated{std::in_place_index<1>, std::move(files)};
  fs::Write_Manifest(w, updated);
  co_return co_await store_.Put(txn, kManifestKey, w.Take());
}

}  // namespace circus::apps::replfs
