// One replfs server troupe member: the stub-generated ReplFs module
// (replfs.idl) backed by a transactional store, plus an ordered
// broadcast module through which clients propagate block writes so that
// concurrent transactions stage in the same order at every member.
//
// Write path: OpenFile allocates a per-transaction fd (deterministic,
// so every member hands back the same number), WriteBlock deliveries
// stage in a per-transaction buffer, and Commit waits for the staged
// writes to arrive, applies them to the TxnStore under the transaction,
// and then drives the member's half of the Section 5.3 troupe commit
// protocol via txn::FinishTransaction. Reads (ReadBlock, GetManifest)
// serve committed state only and collate unanimously at the client.
//
// A SIGKILLed member rejoins through the usual get_state path: the
// ReplFs module's state provider externalizes the TxnStore, and the
// rejoining process internalizes it. In-flight transactions are NOT in
// the snapshot -- a rejoined member votes abort for them (missing
// staged writes show up as a sequence gap) and the client's retry, a
// fresh transaction, lands on the healed troupe.
#ifndef SRC_APPS_REPLFS_SERVER_H_
#define SRC_APPS_REPLFS_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gen/apps/replfs.h"
#include "src/core/process.h"
#include "src/txn/ordered_broadcast.h"
#include "src/txn/store.h"
#include "src/txn/types.h"

namespace circus::apps::replfs {

// Module layout of a replfs member: the broadcast module is exported
// immediately after the ReplFs module, so clients can derive the
// broadcast troupe from the bound ReplFs troupe by offsetting the
// member module numbers.
inline constexpr core::ModuleNumber kWritesModuleOffset = 1;
inline constexpr const char* kWritesModuleName = "ReplFs-writes";

// The store key holding the marshaled Manifest catalogue.
inline constexpr const char* kManifestKey = "manifest";

// Extents per file retained in the manifest (most recent first to go).
inline constexpr size_t kManifestExtentCap = 8;

class Server : public idl::ReplFs::ReplFsHandler {
 public:
  explicit Server(core::RpcProcess* process);

  core::RpcProcess* process() const { return process_; }
  core::ModuleNumber module_number() const { return module_; }
  core::ModuleNumber writes_module_number() const {
    return writes_->module_number();
  }
  txn::TxnStore& store() { return store_; }

  // How long Commit waits for the transaction's staged writes to be
  // delivered by the broadcast before voting abort. Keep it below the
  // client's commit decision timeout.
  void set_stage_wait(sim::Duration d) { stage_wait_ = d; }

  // Consumes ordered-broadcast write deliveries forever; spawn on the
  // executor that runs the process (the harness owns the lifetime, as
  // with OrderedBroadcastServer consumers elsewhere).
  sim::Task<void> DeliverLoop();

  // ReplFsHandler:
  sim::Task<StatusOr<idl::ReplFs::OpenFileResults>> OpenFile(
      core::ServerCallContext& ctx, idl::ReplFs::OpenFileArgs args) override;
  sim::Task<StatusOr<idl::ReplFs::WriteBlockResults>> WriteBlock(
      core::ServerCallContext& ctx,
      idl::ReplFs::WriteBlockArgs args) override;
  sim::Task<StatusOr<idl::ReplFs::CommitResults>> Commit(
      core::ServerCallContext& ctx, idl::ReplFs::CommitArgs args) override;
  sim::Task<StatusOr<idl::ReplFs::AbortResults>> Abort(
      core::ServerCallContext& ctx, idl::ReplFs::AbortArgs args) override;
  sim::Task<StatusOr<idl::ReplFs::CloseResults>> Close(
      core::ServerCallContext& ctx, idl::ReplFs::CloseArgs args) override;
  sim::Task<StatusOr<idl::ReplFs::ReadBlockResults>> ReadBlock(
      core::ServerCallContext& ctx,
      idl::ReplFs::ReadBlockArgs args) override;
  sim::Task<StatusOr<idl::ReplFs::GetManifestResults>> GetManifest(
      core::ServerCallContext& ctx,
      idl::ReplFs::GetManifestArgs args) override;

  // Diagnostics.
  size_t staged_transactions() const { return staged_.size(); }
  uint64_t committed_transactions() const { return committed_; }
  uint64_t aborted_transactions() const { return aborted_; }

 private:
  struct StagedWrite {
    std::string file;
    uint32_t block = 0;
    idl::ReplFs::BlockData data;
  };
  struct TxnState {
    uint16_t next_fd = 0;
    std::map<uint16_t, std::string> open;  // fd -> file name
    std::vector<StagedWrite> writes;       // broadcast delivery order
    // Set when a delivery referenced an unknown fd or skipped a
    // sequence number (e.g. this member rejoined mid-transaction and
    // missed earlier deliveries): the member must vote abort.
    bool damaged = false;
  };

  // Stages one WriteBlock delivery (broadcast payload or direct call).
  void Stage(idl::ReplFs::WriteBlockArgs args);
  // Applies the staged writes and the manifest update under `txn`.
  sim::Task<Status> ApplyStaged(const txn::TxnId& txn,
                                const std::vector<StagedWrite>& writes);

  core::RpcProcess* process_;
  core::ModuleNumber module_;
  txn::TxnStore store_;
  std::unique_ptr<txn::OrderedBroadcastServer> writes_;
  std::map<txn::TxnId, TxnState> staged_;
  sim::Duration stage_wait_ = sim::Duration::Millis(1500);
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
};

// The store key of one file block.
std::string BlockKey(const std::string& file, uint32_t block);

}  // namespace circus::apps::replfs

#endif  // SRC_APPS_REPLFS_SERVER_H_
