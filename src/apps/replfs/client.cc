#include "src/apps/replfs/client.h"

#include <algorithm>

#include "src/apps/replfs/server.h"
#include "src/apps/replfs/wire.h"
#include "src/txn/ordered_broadcast.h"

namespace circus::apps::replfs {

using circus::Status;
using circus::StatusOr;
using sim::Duration;
using sim::Task;

namespace fs = idl::ReplFs;

namespace {

// Broadcast message ids must be unique per message and identical
// across replicated client members: derive them from the transaction
// identity (itself deterministic across members) and the write's
// per-transaction sequence number, mixed through a splitmix64 round.
uint64_t WriteMsgId(const txn::TxnId& txn, uint32_t seq) {
  uint64_t x = (static_cast<uint64_t>(txn.thread.machine) << 32) |
               (static_cast<uint64_t>(txn.thread.port) << 16) |
               txn.thread.local;
  x ^= (static_cast<uint64_t>(txn.num) << 32) | seq;
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Task<StatusOr<uint16_t>> Session::Open(const std::string& name) {
  const fs::Txn wire = ToWire(txn_);
  StatusOr<fs::OpenFileResults> r =
      co_await client_->stub_.OpenFile(thread_, wire, name);
  if (!r.ok()) {
    co_return r.status();
  }
  co_return r->fd;
}

Task<Status> Session::Write(uint16_t fd, uint32_t block,
                            fs::BlockData data) {
  const uint32_t seq = ++writes_;
  fs::WriteBlockArgs args;
  args.txn = ToWire(txn_);
  args.fd = fd;
  args.seq = seq;
  args.block = block;
  args.data = std::move(data);
  marshal::Writer w;
  fs::Write_WriteBlockArgs(w, args);
  const core::Troupe& writes_troupe = client_->writes_troupe_;
  if (writes_troupe.members.empty()) {
    co_return Status(ErrorCode::kFailedPrecondition, "client not bound");
  }
  co_return co_await txn::AtomicBroadcast(
      client_->process_, thread_, writes_troupe,
      writes_troupe.members.front().module, WriteMsgId(txn_, seq),
      w.Take());
}

Task<Status> Session::Close(uint16_t fd) {
  const fs::Txn wire = ToWire(txn_);
  StatusOr<fs::CloseResults> r =
      co_await client_->stub_.Close(thread_, wire, fd);
  co_return r.status();
}

Client::Client(core::RpcProcess* process)
    : process_(process), stub_(process), coordinator_(process) {}

void Client::Bind(core::Troupe troupe) {
  writes_troupe_ = troupe;
  for (core::ModuleAddress& m : writes_troupe_.members) {
    m.module = static_cast<core::ModuleNumber>(m.module +
                                               kWritesModuleOffset);
  }
  troupe_ = std::move(troupe);
  stub_.Bind(troupe_);
}

Task<Status> Client::Run(core::ThreadId thread, const Body& body,
                         ClientOptions options) {
  Status last(ErrorCode::kAborted, "transaction never attempted");
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    const txn::TxnId txn{thread, coordinator_.NextTxnNum(thread)};
    coordinator_.Begin(txn, static_cast<int>(troupe_.members.size()),
                       options.decision_timeout);
    Session session(this, thread, txn);
    Status body_status = co_await body(session);
    if (!body_status.ok()) {
      // Abort at the servers, then decide whether to retry.
      const fs::Txn wire = ToWire(txn);
      co_await stub_.Abort(thread, wire);
      last = body_status;
      if (body_status.code() != ErrorCode::kDeadlock &&
          body_status.code() != ErrorCode::kAborted) {
        co_return body_status;  // a real error; do not retry
      }
    } else {
      core::Troupe coordinators;
      if (options.coordinator_troupe.has_value()) {
        coordinators = *options.coordinator_troupe;
      } else {
        coordinators.members.push_back(coordinator_.address());
      }
      const fs::Txn wire = ToWire(txn);
      const fs::Coordinators coords = ToWire(coordinators);
      StatusOr<fs::CommitResults> r =
          co_await stub_.Commit(thread, wire, session.writes(), coords);
      if (r.ok()) {
        if (r->committed) {
          co_return Status::Ok();
        }
        last = Status(ErrorCode::kAborted,
                      "replfs commit aborted " + txn.ToString());
      } else {
        last = r.status();
        if (last.code() != ErrorCode::kDeadlock &&
            last.code() != ErrorCode::kAborted &&
            last.code() != ErrorCode::kDisagreement) {
          co_return last;
        }
      }
    }
    // Binary exponential back-off before retrying (Section 5.3.1).
    Duration delay = options.backoff_base * (1LL << std::min(attempt, 10));
    if (options.rng != nullptr) {
      delay = Duration::Nanos(static_cast<int64_t>(
          delay.nanos() * (0.5 + options.rng->UniformDouble())));
    }
    co_await process_->host()->SleepFor(delay);
  }
  co_return last;
}

Task<StatusOr<fs::BlockData>> Client::ReadBlock(core::ThreadId thread,
                                                const std::string& name,
                                                uint32_t block) {
  StatusOr<fs::ReadBlockResults> r =
      co_await stub_.ReadBlock(thread, name, block);
  if (!r.ok()) {
    co_return r.status();
  }
  co_return std::move(r->data);
}

Task<StatusOr<fs::Manifest>> Client::GetManifest(core::ThreadId thread) {
  StatusOr<fs::GetManifestResults> r = co_await stub_.GetManifest(thread);
  if (!r.ok()) {
    co_return r.status();
  }
  co_return std::move(r->manifest);
}

}  // namespace circus::apps::replfs
