// The replfs client library: wraps the stub-generated ReplFsClient in
// the transactional session protocol. A transaction body opens files,
// stages block writes (ordered atomic broadcast to the troupe's writes
// module), and commits; Run() drives the whole Section 5.3 client
// half -- fresh TxnId per attempt, commit coordinator bookkeeping, and
// retry with binary exponential back-off on deadlock-induced aborts --
// mirroring txn::RunTransaction but speaking the generated stubs.
#ifndef SRC_APPS_REPLFS_CLIENT_H_
#define SRC_APPS_REPLFS_CLIENT_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "gen/apps/replfs.h"
#include "src/core/process.h"
#include "src/sim/random.h"
#include "src/txn/commit.h"
#include "src/txn/types.h"

namespace circus::apps::replfs {

struct ClientOptions {
  int max_attempts = 8;
  sim::Duration decision_timeout = sim::Duration::Seconds(2);
  sim::Duration backoff_base = sim::Duration::Millis(50);
  sim::Rng* rng = nullptr;  // jitter source; deterministic default if null
  // With a replicated client troupe, every member must name the same
  // coordinator troupe (one coordinator per client member); unset means
  // "just this process's coordinator".
  std::optional<core::Troupe> coordinator_troupe;
};

class Client;

// One transaction attempt's file session, passed to the Run() body.
// Writes count per-transaction sequence numbers; the count travels in
// the Commit call so servers know how many broadcast deliveries to
// await.
class Session {
 public:
  const txn::TxnId& txn() const { return txn_; }
  uint32_t writes() const { return writes_; }

  sim::Task<StatusOr<uint16_t>> Open(const std::string& name);
  sim::Task<Status> Write(uint16_t fd, uint32_t block,
                          idl::ReplFs::BlockData data);
  sim::Task<Status> Close(uint16_t fd);

 private:
  friend class Client;
  Session(Client* client, core::ThreadId thread, txn::TxnId txn)
      : client_(client), thread_(thread), txn_(txn) {}

  Client* client_;
  core::ThreadId thread_;
  txn::TxnId txn_;
  uint32_t writes_ = 0;
};

class Client {
 public:
  explicit Client(core::RpcProcess* process);

  // Binds to the replfs server troupe (the ReplFs modules); the writes
  // broadcast troupe is derived by module-number offset.
  void Bind(core::Troupe troupe);
  const core::Troupe& binding() const { return troupe_; }
  txn::CommitCoordinator& coordinator() { return coordinator_; }

  // The body stages operations through the session and returns Ok to
  // request commit or an error to abort. NOTE: callers inside
  // coroutines must hoist the body into a named local before
  // co_awaiting Run() (see the capturing-lambda rule in CLAUDE.md).
  using Body = std::function<sim::Task<Status>(Session&)>;

  // Runs `body` as a replicated transaction; returns Ok once an
  // attempt commits at every troupe member.
  sim::Task<Status> Run(core::ThreadId thread, const Body& body,
                        ClientOptions options = {});

  // Committed-state reads (unanimous collation).
  sim::Task<StatusOr<idl::ReplFs::BlockData>> ReadBlock(
      core::ThreadId thread, const std::string& name, uint32_t block);
  sim::Task<StatusOr<idl::ReplFs::Manifest>> GetManifest(
      core::ThreadId thread);

 private:
  friend class Session;

  core::RpcProcess* process_;
  idl::ReplFs::ReplFsClient stub_;
  txn::CommitCoordinator coordinator_;
  core::Troupe troupe_;
  core::Troupe writes_troupe_;
};

}  // namespace circus::apps::replfs

#endif  // SRC_APPS_REPLFS_CLIENT_H_
