#include "src/obs/export.h"

#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

#include "src/obs/json.h"

namespace circus::obs {

namespace {

using ThreadKey = std::tuple<uint32_t, uint16_t, uint16_t>;

ThreadKey KeyOf(const ThreadRef& t) { return {t.machine, t.port, t.local}; }

bool IsSpanBegin(EventKind k) {
  return k == EventKind::kCallIssue || k == EventKind::kExecuteBegin;
}
bool IsSpanEnd(EventKind k) {
  return k == EventKind::kCallCollate || k == EventKind::kExecuteEnd;
}

}  // namespace

json::Value EventToJson(const Event& e) {
  json::Value obj = json::Value::Object();
  obj.Set("t_ns", e.time_ns);
  obj.Set("kind", EventKindName(e.kind));
  obj.Set("host", static_cast<uint64_t>(e.host));
  if (e.incarnation != 0) {
    obj.Set("inc", e.incarnation);
  }
  if (e.origin != 0) {
    obj.Set("origin", PackedAddressToString(e.origin));
  }
  if (!e.thread.zero()) {
    obj.Set("thread", e.thread.ToString());
    obj.Set("seq", static_cast<uint64_t>(e.thread_seq));
  }
  if (e.a != 0) obj.Set("a", e.a);
  if (e.b != 0) obj.Set("b", e.b);
  if (e.c != 0) obj.Set("c", e.c);
  if (!e.payload.empty()) {
    obj.Set("payload_bytes", static_cast<uint64_t>(e.payload.size()));
  }
  if (!e.detail.empty()) {
    obj.Set("detail", e.detail);
  }
  return obj;
}

std::string ToJsonLines(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    out += EventToJson(e).Dump();
    out += '\n';
  }
  return out;
}

std::string ToChromeTrace(
    const std::vector<Event>& events,
    const std::map<uint32_t, std::string>& host_names) {
  json::Value trace_events = json::Value::Array();

  // tid assignment: one small integer per distinct logical thread, in
  // first-appearance order; tid 0 is the un-attributed (transport) lane.
  std::map<ThreadKey, int> tids;
  std::vector<ThreadRef> tid_threads;
  auto tid_of = [&](const ThreadRef& t) -> int {
    if (t.zero()) {
      return 0;
    }
    auto [it, inserted] =
        tids.emplace(KeyOf(t), static_cast<int>(tids.size()) + 1);
    if (inserted) {
      tid_threads.push_back(t);
    }
    return it->second;
  };

  // Spans: match begin/end per (host, thread, seq, kind) FIFO.
  using SpanKey = std::tuple<uint32_t, uint32_t, uint16_t, uint16_t,
                             uint32_t, bool>;
  std::map<SpanKey, std::vector<size_t>> open;  // -> index into pending
  struct Pending {
    Event begin;
    bool closed = false;
    int64_t end_ns = 0;
  };
  std::vector<Pending> pending;

  std::map<uint32_t, bool> hosts_seen;

  for (const Event& e : events) {
    hosts_seen[e.host] = true;
    if (IsSpanBegin(e.kind)) {
      const SpanKey key{e.host,       e.thread.machine,
                        e.thread.port, e.thread.local,
                        e.thread_seq, e.kind == EventKind::kCallIssue};
      open[key].push_back(pending.size());
      pending.push_back(Pending{e, false, 0});
      continue;
    }
    if (IsSpanEnd(e.kind)) {
      const SpanKey key{e.host,       e.thread.machine,
                        e.thread.port, e.thread.local,
                        e.thread_seq, e.kind == EventKind::kCallCollate};
      auto it = open.find(key);
      if (it != open.end() && !it->second.empty()) {
        Pending& p = pending[it->second.front()];
        it->second.erase(it->second.begin());
        p.closed = true;
        p.end_ns = e.time_ns;
        continue;
      }
      // Unmatched end: fall through and emit as an instant.
    }
    json::Value inst = json::Value::Object();
    inst.Set("name", EventKindName(e.kind));
    inst.Set("ph", "i");
    inst.Set("s", "t");
    inst.Set("ts", static_cast<double>(e.time_ns) / 1000.0);
    inst.Set("pid", static_cast<uint64_t>(e.host));
    inst.Set("tid", static_cast<int64_t>(tid_of(e.thread)));
    json::Value args = json::Value::Object();
    if (e.a != 0) args.Set("a", e.a);
    if (e.b != 0) args.Set("b", e.b);
    if (e.c != 0) args.Set("c", e.c);
    if (e.origin != 0) args.Set("origin", PackedAddressToString(e.origin));
    if (!e.detail.empty()) args.Set("detail", e.detail);
    inst.Set("args", std::move(args));
    trace_events.Append(std::move(inst));
  }

  for (const Pending& p : pending) {
    const Event& e = p.begin;
    json::Value span = json::Value::Object();
    char name[64];
    std::snprintf(name, sizeof(name), "%s %llu:%llu",
                  e.kind == EventKind::kCallIssue ? "call" : "exec",
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    span.Set("name", name);
    span.Set("ph", "X");
    span.Set("ts", static_cast<double>(e.time_ns) / 1000.0);
    // An unclosed span (crashed host) renders as zero-width.
    const int64_t dur = p.closed ? p.end_ns - e.time_ns : 0;
    span.Set("dur", static_cast<double>(dur) / 1000.0);
    span.Set("pid", static_cast<uint64_t>(e.host));
    span.Set("tid", static_cast<int64_t>(tid_of(e.thread)));
    json::Value args = json::Value::Object();
    args.Set("thread", e.thread.ToString());
    args.Set("seq", static_cast<uint64_t>(e.thread_seq));
    if (!p.closed) args.Set("unclosed", true);
    span.Set("args", std::move(args));
    trace_events.Append(std::move(span));
  }

  for (const auto& [host, seen] : hosts_seen) {
    auto it = host_names.find(host);
    if (it == host_names.end()) {
      continue;
    }
    json::Value meta = json::Value::Object();
    meta.Set("name", "process_name");
    meta.Set("ph", "M");
    meta.Set("pid", static_cast<uint64_t>(host));
    meta.Set("tid", 0);
    json::Value args = json::Value::Object();
    args.Set("name", it->second);
    meta.Set("args", std::move(args));
    trace_events.Append(std::move(meta));
  }
  // Thread names: the same logical thread appears on every host it
  // touched, so emit one metadata record per (host, tid) pair in use.
  // For simplicity (and determinism) name the tid lanes per host 0.
  for (size_t i = 0; i < tid_threads.size(); ++i) {
    for (const auto& [host, seen] : hosts_seen) {
      json::Value meta = json::Value::Object();
      meta.Set("name", "thread_name");
      meta.Set("ph", "M");
      meta.Set("pid", static_cast<uint64_t>(host));
      meta.Set("tid", static_cast<int64_t>(i) + 1);
      json::Value args = json::Value::Object();
      args.Set("name", tid_threads[i].ToString());
      meta.Set("args", std::move(args));
      trace_events.Append(std::move(meta));
    }
  }

  json::Value root = json::Value::Object();
  root.Set("traceEvents", std::move(trace_events));
  root.Set("displayTimeUnit", "ms");
  return root.Dump();
}

circus::Status WriteStringToFile(const std::string& path,
                                 const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return circus::Status(circus::ErrorCode::kUnavailable,
                          "cannot open " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return circus::Status(circus::ErrorCode::kUnavailable,
                          "short write to " + path);
  }
  return circus::Status::Ok();
}

}  // namespace circus::obs
