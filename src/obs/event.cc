#include "src/obs/event.h"

#include <cstdio>

namespace circus::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kPacketSend:
      return "packet_send";
    case EventKind::kSegmentSend:
      return "segment_send";
    case EventKind::kSegmentRetransmit:
      return "segment_retransmit";
    case EventKind::kAckSend:
      return "ack_send";
    case EventKind::kProbeSend:
      return "probe_send";
    case EventKind::kMessageDelivered:
      return "message_delivered";
    case EventKind::kDuplicateSuppressed:
      return "duplicate_suppressed";
    case EventKind::kPeerCrashDetected:
      return "peer_crash_detected";
    case EventKind::kCallIssue:
      return "call_issue";
    case EventKind::kCallCollate:
      return "call_collate";
    case EventKind::kExecuteBegin:
      return "execute_begin";
    case EventKind::kExecuteEnd:
      return "execute_end";
    case EventKind::kLateReplyServed:
      return "late_reply_served";
    case EventKind::kStaleBindingReject:
      return "stale_binding_reject";
    case EventKind::kTxnVote:
      return "txn_vote";
    case EventKind::kTxnDecision:
      return "txn_decision";
    case EventKind::kTxnRetry:
      return "txn_retry";
    case EventKind::kTxnResolved:
      return "txn_resolved";
    case EventKind::kBroadcastPropose:
      return "broadcast_propose";
    case EventKind::kBroadcastAccept:
      return "broadcast_accept";
    case EventKind::kBroadcastDeliver:
      return "broadcast_deliver";
    case EventKind::kTroupeRegistered:
      return "troupe_registered";
    case EventKind::kTroupeMemberAdded:
      return "troupe_member_added";
    case EventKind::kTroupeMemberRemoved:
      return "troupe_member_removed";
    case EventKind::kReconfigSweep:
      return "reconfig_sweep";
    case EventKind::kLoopWakeup:
      return "loop_wakeup";
    case EventKind::kSocketStall:
      return "socket_stall";
    case EventKind::kCallFanout:
      return "call_fanout";
    case EventKind::kCallAdmit:
      return "call_admit";
    case EventKind::kSlowCall:
      return "slow_call";
    case EventKind::kSaturation:
      return "saturation";
  }
  return "unknown";
}

bool EventKindFromName(std::string_view name, EventKind* out) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(EventKind::kSaturation);
       ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == EventKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string ThreadRef::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "thread:%08x:%u:%u", machine, port, local);
  return buf;
}

std::string PackedAddressToString(uint64_t packed) {
  const uint32_t host = PackedAddressHost(packed);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (host >> 24) & 0xFF,
                (host >> 16) & 0xFF, (host >> 8) & 0xFF, host & 0xFF,
                PackedAddressPort(packed));
  return buf;
}

}  // namespace circus::obs
