// Wire-level decode and audit of Fabric packet captures (src/net/tap.h).
//
// The decoder parses each captured datagram back into a msg::Segment
// and attributes it to the local party that sent or received it; the
// auditor then reconstructs per-(pair, call_number) conversation state
// machines and replays every conversation against the Section 4.2
// rules of the paired message protocol, reporting violations:
//
//   * ack for a segment the peer never sent (either direction),
//   * retransmission before the (jittered) retransmit timeout,
//   * a return sent for a call that never fully arrived (sequence gap
//     at delivery),
//   * call identifier reuse — the same (call_number, segment) carrying
//     different payload bytes across an incarnation,
//   * probe storms — probes faster than the probe interval, or more
//     consecutive unanswered probes than the silence budget allows
//     before the peer must be declared crashed,
//   * troupe-member-to-member packets (Section 4.3.3), when the member
//     address set is supplied.
//
// It also rolls up per-call wire cost (packets, bytes, retransmits,
// explicit acks, and acks saved by piggybacking — the Section 4.2.4
// postponed-acknowledgment win), which EXPERIMENTS.md E17 uses to
// reproduce the packet-count analysis.
//
// The auditor is deliberately conservative: checks that would need a
// complete view of the traffic (ack validity, delivery gaps, probe
// silence budgets) are skipped for nodes whose capture recorded drops,
// so a bounded capture never manufactures violations.
#ifndef SRC_OBS_WIRE_H_
#define SRC_OBS_WIRE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/msg/paired_endpoint.h"
#include "src/msg/segment.h"
#include "src/net/address.h"
#include "src/net/tap.h"

namespace circus::obs::wire {

// Timing floors and budgets the audited run was configured with,
// derived from its msg::EndpointOptions. The floors carry a 5% safety
// margin below the minimum jittered timer so rounding at the clock
// seam never flags a legal retransmission.
struct AuditOptions {
  int64_t retransmit_floor_ns = 0;
  int64_t probe_floor_ns = 0;
  int max_silent_probes = 5;
  // Troupe member process addresses; non-empty enables the
  // member-to-member check (Section 4.3.3: members of one troupe never
  // talk to each other directly).
  std::vector<net::NetAddress> member_addresses;
};

// Options matching a run that used `options` (AuditOptions{} is NOT a
// usable default — floors of 0 disable the timing checks).
AuditOptions AuditOptionsFor(const msg::EndpointOptions& options);

// One capture record decoded back into a segment, attributed to the
// capturing party: `node` is the local endpoint (source on a send,
// destination on a delivery) and `remote` the other side (which is the
// group address on a multicast send).
struct WireSegment {
  net::WirePacket packet;
  msg::Segment segment;
  net::NetAddress node;
  net::NetAddress remote;
};

// Parses records into segments. Non-segment datagrams (e.g. the rt
// stats endpoint's text replies sharing a tapped process) bump
// `*undecodable` and are skipped.
std::vector<WireSegment> DecodeRecords(
    const std::vector<net::WirePacket>& records, uint64_t* undecodable);

// Wire cost of one conversation, seen from its node.
struct WireCost {
  uint64_t packets_sent = 0;
  uint64_t packets_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t data_segments = 0;  // distinct data segments first sent
  uint64_t retransmits = 0;    // transmissions beyond the first, per dest
  uint64_t probes = 0;
  uint64_t acks_sent = 0;
  uint64_t acks_received = 0;
  // Completions acknowledged implicitly (by the return, or by a later
  // call) instead of by an explicit ack segment: the acks piggybacking
  // saved (Section 4.2.4).
  uint64_t implicit_acks = 0;
};

// One reconstructed conversation: the view one node's capture gives of
// the exchange with call number `call_number`. A caller-view
// conversation covers the outbound call and inbound return; a
// callee-view conversation the inverse. In a whole-world capture a
// replicated call appears as one caller view on the client node plus
// one callee view per member.
struct Conversation {
  enum class Phase {
    kCalling,        // call message in flight
    kCallDelivered,  // every call segment accounted for
    kReturning,      // return message in flight (callee view)
    kDone,           // return delivered / return acknowledged
  };

  net::NetAddress node;
  uint32_t call_number = 0;
  bool caller = false;  // true: node issued the call; false: it served it
  Phase phase = Phase::kCalling;
  std::vector<net::NetAddress> remotes;  // peers seen, sorted (a group
                                         // address for multicast sends)
  WireCost cost;
};

struct AuditReport {
  std::vector<std::string> violations;
  // Sorted by (node, call_number, caller-view-first).
  std::vector<Conversation> conversations;
  uint64_t records = 0;
  uint64_t packets = 0;  // send records
  uint64_t bytes = 0;    // send payload bytes
  uint64_t undecodable = 0;
  // False when any audited capture recorded drops; completeness-
  // dependent checks were skipped for the affected nodes.
  bool complete = true;

  WireCost Totals() const;
  size_t CompletedCalls() const;  // caller-view conversations at kDone

  // Deterministic multi-line rendering: summary, totals, violations,
  // then one line per conversation. Byte-identical for byte-identical
  // captures; `max_violations` bounds the violation listing (the full
  // list stays in `violations`).
  std::string Render(size_t max_violations = 50,
                     bool include_conversations = true) const;
};

// Streaming auditor: feed record batches (a whole-world sim capture,
// or one per-process capture per call), then Finish().
class WireAuditor {
 public:
  explicit WireAuditor(AuditOptions options);

  // `complete` is false when the source capture dropped records; the
  // nodes appearing in this batch then keep only their drop-tolerant
  // checks. Records must be in capture order (time order per node).
  void AddRecords(const std::vector<net::WirePacket>& records,
                  bool complete = true);
  void AddCapture(const net::WireCaptureFile& capture);

  AuditReport Finish();

 private:
  struct SentMessage {
    uint8_t total_segments = 0;
    std::map<uint8_t, circus::Bytes> payloads;
  };
  struct ReceivedMessage {
    uint8_t total_segments = 0;
    std::set<uint8_t> segments;
    bool Complete() const {
      return total_segments != 0 && segments.size() >= total_segments;
    }
  };
  struct ProbeState {
    int64_t last_ns = 0;
    int silent_streak = 0;
    bool storm_flagged = false;
  };
  struct NodeState {
    bool complete = true;
    // Sent data, keyed (type, call, dest) — dest collapsed to one key
    // for calls, whose multicast blast and unicast fallback carry the
    // same logical message to different destinations.
    std::map<std::tuple<int, uint32_t, net::NetAddress>, SentMessage> sent;
    // Highest data segment sent per (type, call), across destinations.
    std::map<std::pair<int, uint32_t>, uint8_t> max_sent;
    // Last transmission per (dest, type, call, segment).
    std::map<std::tuple<net::NetAddress, int, uint32_t, uint8_t>, int64_t>
        last_send;
    std::map<std::tuple<net::NetAddress, int, uint32_t>, ReceivedMessage>
        received;
    std::map<std::pair<net::NetAddress, uint32_t>, ProbeState> probes;
    std::map<net::NetAddress, int64_t> last_heard;
    std::map<std::pair<uint32_t, bool>, Conversation> conversations;
    // Calls whose final segment got an explicit ack (so the return did
    // not double as one) and returns still awaiting any ack per peer —
    // the implicit-ack bookkeeping (Section 4.2.4).
    std::set<uint32_t> final_call_ack;
    std::map<net::NetAddress, std::set<uint32_t>> pending_returns;
  };

  Conversation& ConversationFor(NodeState& state,
                                const net::NetAddress& node,
                                const WireSegment& ws, bool caller);
  void ObserveSendRecord(NodeState& state, const WireSegment& ws);
  void ObserveRecvRecord(NodeState& state, const WireSegment& ws);
  void AddViolation(const WireSegment& ws, const std::string& what);

  AuditOptions options_;
  std::set<net::NetAddress> members_;
  std::set<std::pair<net::NetAddress, net::NetAddress>> member_pairs_seen_;
  std::map<net::NetAddress, NodeState> nodes_;
  AuditReport report_;
};

// Convenience: audit one in-memory batch (the chaos harness's
// whole-world ring capture).
AuditReport AuditRecords(const std::vector<net::WirePacket>& records,
                         const AuditOptions& options, bool complete = true);

// Convenience: read and audit capture files together (the circus_wire
// CLI path). Fails if any file cannot be read or is not a capture.
circus::StatusOr<AuditReport> AuditCaptureFiles(
    const std::vector<std::string>& paths, const AuditOptions& options);

}  // namespace circus::obs::wire

#endif  // SRC_OBS_WIRE_H_
