#include "src/obs/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace circus::obs::json {

namespace {

// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when
// the bytes there are not a valid sequence (RFC 3629 ranges: no
// overlongs, no surrogates, nothing above U+10FFFF).
size_t Utf8SequenceLength(std::string_view s, size_t i) {
  const auto byte = [&](size_t k) -> unsigned {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned b0 = byte(i);
  if (b0 < 0x80) {
    return 1;
  }
  const auto cont = [&](size_t k) {
    return k < s.size() && (byte(k) & 0xC0) == 0x80;
  };
  if (b0 >= 0xC2 && b0 <= 0xDF) {
    return cont(i + 1) ? 2 : 0;
  }
  if (b0 == 0xE0) {
    return (i + 1 < s.size() && byte(i + 1) >= 0xA0 && byte(i + 1) <= 0xBF &&
            cont(i + 2))
               ? 3
               : 0;
  }
  if (b0 == 0xED) {  // exclude the surrogate range U+D800..U+DFFF
    return (i + 1 < s.size() && byte(i + 1) >= 0x80 && byte(i + 1) <= 0x9F &&
            cont(i + 2))
               ? 3
               : 0;
  }
  if (b0 >= 0xE1 && b0 <= 0xEF) {
    return (cont(i + 1) && cont(i + 2)) ? 3 : 0;
  }
  if (b0 == 0xF0) {
    return (i + 1 < s.size() && byte(i + 1) >= 0x90 && byte(i + 1) <= 0xBF &&
            cont(i + 2) && cont(i + 3))
               ? 4
               : 0;
  }
  if (b0 >= 0xF1 && b0 <= 0xF3) {
    return (cont(i + 1) && cont(i + 2) && cont(i + 3)) ? 4 : 0;
  }
  if (b0 == 0xF4) {
    return (i + 1 < s.size() && byte(i + 1) >= 0x80 && byte(i + 1) <= 0x8F &&
            cont(i + 2) && cont(i + 3))
               ? 4
               : 0;
  }
  return 0;
}

}  // namespace

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    const char ch = s[i];
    const auto byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\b':
        out += "\\b";
        ++i;
        continue;
      case '\f':
        out += "\\f";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      default:
        break;
    }
    if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
      out += buf;
      ++i;
      continue;
    }
    if (byte < 0x80) {
      out += ch;
      ++i;
      continue;
    }
    // Non-ASCII: pass well-formed UTF-8 through, replace anything else
    // with U+FFFD so the output is always a valid RFC 8259 string.
    if (const size_t len = Utf8SequenceLength(s, i); len != 0) {
      out.append(s.substr(i, len));
      i += len;
    } else {
      out += "\\ufffd";
      ++i;
    }
  }
  return out;
}

Value& Value::Set(std::string key, Value value) {
  type_ = Type::kObject;
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Value& Value::Append(Value value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

const Value* Value::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

size_t Value::size() const {
  return type_ == Type::kObject ? members_.size() : items_.size();
}

double Value::as_double() const {
  switch (type_) {
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    default:
      return double_;
  }
}

int64_t Value::AsI64() const {
  switch (type_) {
    case Type::kUint:
      return static_cast<int64_t>(uint_);
    case Type::kDouble:
      return static_cast<int64_t>(double_);
    default:
      return int_;
  }
}

uint64_t Value::AsU64() const {
  switch (type_) {
    case Type::kInt:
      return static_cast<uint64_t>(int_);
    case Type::kDouble:
      return static_cast<uint64_t>(double_);
    default:
      return uint_;
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

void Value::DumpTo(std::string& out) const {
  char buf[40];
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      out += buf;
      break;
    case Type::kUint:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    case Type::kDouble:
      if (std::isfinite(double_)) {
        std::snprintf(buf, sizeof(buf), "%.12g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    case Type::kString:
      out += '"';
      out += Escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& v : items_) {
        if (!first) out += ',';
        first = false;
        v.DumpTo(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += Escape(k);
        out += "\":";
        v.DumpTo(out);
      }
      out += '}';
      break;
    }
  }
}

// ------------------------------------------------------------- parsing --

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  circus::StatusOr<Value> Run() {
    SkipWhitespace();
    circus::StatusOr<Value> v = ParseValue(0);
    if (!v.ok()) {
      return v;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return v;
  }

 private:
  circus::Status Error(const std::string& what) const {
    return circus::Status(circus::ErrorCode::kInvalidArgument,
                          "json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  circus::StatusOr<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    switch (text_[pos_]) {
      case 'n':
        return ConsumeWord("null") ? circus::StatusOr<Value>(Value())
                                   : Error("bad literal");
      case 't':
        return ConsumeWord("true") ? circus::StatusOr<Value>(Value(true))
                                   : Error("bad literal");
      case 'f':
        return ConsumeWord("false") ? circus::StatusOr<Value>(Value(false))
                                    : Error("bad literal");
      case '"': {
        circus::StatusOr<std::string> s = ParseString();
        if (!s.ok()) {
          return s.status();
        }
        return Value(std::move(*s));
      }
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  circus::StatusOr<Value> ParseArray(int depth) {
    ++pos_;  // '['
    Value out = Value::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return out;
    }
    for (;;) {
      circus::StatusOr<Value> v = ParseValue(depth + 1);
      if (!v.ok()) {
        return v;
      }
      out.Append(std::move(*v));
      SkipWhitespace();
      if (Consume(']')) {
        return out;
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']'");
      }
    }
  }

  circus::StatusOr<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    Value out = Value::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return out;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      circus::StatusOr<std::string> key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      circus::StatusOr<Value> v = ParseValue(depth + 1);
      if (!v.ok()) {
        return v;
      }
      out.Set(std::move(*key), std::move(*v));
      SkipWhitespace();
      if (Consume('}')) {
        return out;
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}'");
      }
    }
  }

  // Appends code point `cp` to `out` as UTF-8.
  static void AppendCodePoint(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  circus::StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  circus::StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) {
        return Error("truncated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          circus::StatusOr<uint32_t> cp = ParseHex4();
          if (!cp.ok()) {
            return cp.status();
          }
          uint32_t code = *cp;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!ConsumeWord("\\u")) {
              return Error("unpaired high surrogate");
            }
            circus::StatusOr<uint32_t> low = ParseHex4();
            if (!low.ok()) {
              return low.status();
            }
            if (*low < 0xDC00 || *low > 0xDFFF) {
              return Error("bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (*low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendCodePoint(out, code);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  circus::StatusOr<Value> ParseNumber() {
    const size_t start = pos_;
    bool is_double = false;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") {
      return Error("bad number");
    }
    char* end = nullptr;
    if (is_double) {
      const double d = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size()) {
        return Error("bad number");
      }
      return Value(d);
    }
    errno = 0;
    if (token[0] == '-') {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        return Error("bad number");
      }
      return Value(static_cast<int64_t>(v));
    }
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return Error("bad number");
    }
    if (v <= static_cast<unsigned long long>(INT64_MAX)) {
      return Value(static_cast<int64_t>(v));
    }
    return Value(static_cast<uint64_t>(v));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

circus::StatusOr<Value> Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace circus::obs::json
