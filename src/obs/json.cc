#include "src/obs/json.h"

#include <cmath>
#include <cstdio>

namespace circus::obs::json {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto byte = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

Value& Value::Set(std::string key, Value value) {
  type_ = Type::kObject;
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Value& Value::Append(Value value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

const Value* Value::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

size_t Value::size() const {
  return type_ == Type::kObject ? members_.size() : items_.size();
}

double Value::as_double() const {
  switch (type_) {
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    default:
      return double_;
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

void Value::DumpTo(std::string& out) const {
  char buf[40];
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      out += buf;
      break;
    case Type::kUint:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    case Type::kDouble:
      if (std::isfinite(double_)) {
        std::snprintf(buf, sizeof(buf), "%.12g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    case Type::kString:
      out += '"';
      out += Escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& v : items_) {
        if (!first) out += ',';
        first = false;
        v.DumpTo(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += Escape(k);
        out += "\":";
        v.DumpTo(out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace circus::obs::json
